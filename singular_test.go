package mrinverse

import (
	"errors"
	"testing"

	"repro/internal/core"
)

// blockSingularButInvertible builds an invertible matrix whose leading
// diagonal block is singular — the block-local-pivoting failure case.
func blockSingularButInvertible(n, nb int) *Matrix {
	a := NewMatrix(n, n)
	// Leading nb x nb block all zero; off-diagonal blocks are identities,
	// giving an anti-block-diagonal permutation-like matrix (invertible).
	for i := 0; i < n; i++ {
		j := (i + nb) % n
		a.Set(i, j, 1)
	}
	return a
}

func TestSingularBlockTypedError(t *testing.T) {
	n, nb := 32, 8
	a := blockSingularButInvertible(n, nb)
	// Sanity: the matrix itself is invertible.
	if _, err := InvertLocal(a); err != nil {
		t.Fatalf("input unexpectedly singular: %v", err)
	}
	opts := DefaultOptions(2)
	opts.NB = nb
	_, _, err := Invert(a, opts)
	if !errors.Is(err, core.ErrSingularBlock) {
		t.Fatalf("err = %v, want ErrSingularBlock", err)
	}
}

func TestInvertWithFallbackOnSingularBlock(t *testing.T) {
	n := 32
	a := blockSingularButInvertible(n, 8)
	opts := DefaultOptions(2)
	opts.NB = 8
	inv, fellBack, err := invertWithFallback(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !fellBack {
		t.Fatal("fallback did not trigger")
	}
	if r := Residual(a, inv); r > 1e-12 {
		t.Fatalf("residual %g after fallback", r)
	}
	// A well-behaved input must not fall back.
	good := DiagonallyDominant(32, 5)
	_, fellBack, err = invertWithFallback(good, opts)
	if err != nil || fellBack {
		t.Fatalf("unexpected fallback (%v) or error (%v)", fellBack, err)
	}
}
