package mrinverse

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/spark"
)

// The paper's Section 8 future-work features, implemented:
//
//   - InvertSpark: the block-LU algorithm on a Spark-style in-memory
//     engine with lineage-based fault tolerance (internal/spark), keeping
//     every intermediate in memory instead of HDFS;
//   - AutoInvert: adaptive selection of the best inversion technique for
//     an input matrix, driven by the calibrated cost model.

// InvertSpark computes A^-1 on the in-memory RDD engine: same recursion
// as Invert, intermediates held as cached RDD partitions, lost partitions
// recomputed from lineage.
func InvertSpark(a *Matrix, workers, nb int) (*Matrix, error) {
	if workers < 1 {
		workers = 1
	}
	if nb < 1 {
		nb = 64
	}
	iv := spark.NewInverter(spark.NewContext(workers), nb, workers)
	return iv.Invert(a)
}

// ClusterSpec describes the hypothetical deployment AutoInvert plans for:
// a homogeneous cluster of EC2-2013-style nodes.
type ClusterSpec struct {
	Nodes int
	// Large selects the paper's m1.large profile instead of m1.medium.
	Large bool
}

// EngineChoice reports which inverter AutoInvert selected and why.
type EngineChoice struct {
	Engine string
	Reason string
}

// PlanEngine models all three techniques for an order-n inversion on the
// given cluster and returns the choice without executing anything — the
// planning half of the Section 8 adaptive system.
func PlanEngine(n int, cluster ClusterSpec, nb int) EngineChoice {
	node := costmodel.Medium
	if cluster.Large {
		node = costmodel.Large
	}
	if cluster.Nodes < 1 {
		cluster.Nodes = 1
	}
	c := costmodel.NewCluster(node, cluster.Nodes)
	if nb <= 0 {
		nb = costmodel.OptimalNB(c, n)
	}
	choice := costmodel.ChooseEngine(c, n, nb)
	return EngineChoice{Engine: string(choice.Engine), Reason: choice.Reason}
}

// AutoInvert implements the paper's Section 8 adaptive system: it models
// all three techniques for the given cluster and matrix order, picks the
// fastest feasible one, and executes that technique on this machine's
// simulated substrate. nb <= 0 selects the model's optimal bound value.
func AutoInvert(a *Matrix, cluster ClusterSpec, nb int) (*Matrix, EngineChoice, error) {
	node := costmodel.Medium
	if cluster.Large {
		node = costmodel.Large
	}
	if cluster.Nodes < 1 {
		cluster.Nodes = 1
	}
	c := costmodel.NewCluster(node, cluster.Nodes)
	if nb <= 0 {
		nb = costmodel.OptimalNB(c, a.Rows)
	}
	choice := costmodel.ChooseEngine(c, a.Rows, nb)
	ec := EngineChoice{Engine: string(choice.Engine), Reason: choice.Reason}

	// Execute the chosen technique at this machine's scale. The simulated
	// node count is capped to keep task granularity sensible for small
	// inputs.
	nodes := cluster.Nodes
	if nodes > a.Rows {
		nodes = maxInt(2, a.Rows)
	}
	execNB := nb
	if execNB > a.Rows {
		execNB = maxInt(16, a.Rows/2)
	}
	switch choice.Engine {
	case costmodel.EngineLocal:
		inv, err := InvertLocal(a)
		return inv, ec, err
	case costmodel.EngineScaLAPACK:
		inv, _, err := InvertScaLAPACK(a, ScaLAPACKConfig{Procs: nodes, BlockSize: 128})
		return inv, ec, err
	case costmodel.EngineMapReduce:
		opts := DefaultOptions(nodes)
		opts.NB = execNB
		inv, fellBack, err := invertWithFallback(a, opts)
		if fellBack {
			ec.Engine = "local"
			ec.Reason += "; fell back to local after a singular diagonal block"
		}
		return inv, ec, err
	}
	return nil, ec, fmt.Errorf("mrinverse: unknown engine %q", choice.Engine)
}

// invertWithFallback runs the MapReduce pipeline and, if it fails on a
// singular diagonal block (an artifact of block-local pivoting, not
// necessarily a singular input), retries with the fully pivoted local
// inverter. The returned flag reports whether the fallback ran.
func invertWithFallback(a *Matrix, opts Options) (*Matrix, bool, error) {
	inv, _, err := Invert(a, opts)
	if errors.Is(err, core.ErrSingularBlock) {
		inv2, err2 := InvertLocal(a)
		return inv2, true, err2
	}
	return inv, false, err
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
