package mrinverse

import (
	"errors"
	"math"
	"testing"
)

func tridiag(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 2)
		if i > 0 {
			m.Set(i, i-1, -1)
		}
		if i < n-1 {
			m.Set(i, i+1, -1)
		}
	}
	return m
}

func TestInverseIterationSmallestEigenvalue(t *testing.T) {
	n := 48
	a := tridiag(n)
	opts := DefaultOptions(4)
	opts.NB = 16
	res, err := InverseIteration(a, 0, 1e-12, 100, opts)
	if err != nil {
		t.Fatal(err)
	}
	exact := 2 - 2*math.Cos(math.Pi/float64(n+1))
	if math.Abs(res.Eigenvalue-exact) > 1e-9 {
		t.Fatalf("lambda = %v, want %v", res.Eigenvalue, exact)
	}
	// Verify the eigenpair: ||A v - lambda v|| small.
	var worst float64
	for i := 0; i < n; i++ {
		var av float64
		for j := 0; j < n; j++ {
			av += a.At(i, j) * res.Eigenvector[j]
		}
		if d := math.Abs(av - res.Eigenvalue*res.Eigenvector[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-8 {
		t.Fatalf("eigenpair residual %g", worst)
	}
	if res.Iterations < 1 {
		t.Fatal("iterations not counted")
	}
}

func TestInverseIterationWithShift(t *testing.T) {
	// Target an interior eigenvalue of the tridiagonal operator.
	n := 32
	a := tridiag(n)
	k := 5 // 0-based fifth eigenvalue
	exact := 2 - 2*math.Cos(float64(k+1)*math.Pi/float64(n+1))
	opts := DefaultOptions(2)
	opts.NB = 16
	res, err := InverseIteration(a, exact+1e-3, 1e-12, 200, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Eigenvalue-exact) > 1e-8 {
		t.Fatalf("lambda = %v, want %v", res.Eigenvalue, exact)
	}
}

func TestInverseIterationErrors(t *testing.T) {
	opts := DefaultOptions(2)
	if _, err := InverseIteration(NewMatrix(2, 3), 0, 0, 0, opts); err == nil {
		t.Fatal("non-square accepted")
	}
	if _, err := InverseIteration(NewMatrix(0, 0), 0, 0, 0, opts); err == nil {
		t.Fatal("empty accepted")
	}
	// Singular shifted matrix (mu exactly an eigenvalue of a diagonal
	// matrix) must surface an inversion error.
	d := Identity(8)
	if _, err := InverseIteration(d, 1.0, 0, 0, opts); err == nil {
		t.Fatal("exactly-singular shift accepted")
	}
}

func TestRayleighQuotient(t *testing.T) {
	a := FromRows([][]float64{{2, 0}, {0, 5}})
	l, err := RayleighQuotient(a, []float64{1, 0})
	if err != nil || l != 2 {
		t.Fatalf("rq = %v, %v", l, err)
	}
	if _, err := RayleighQuotient(a, []float64{0, 0}); err == nil {
		t.Fatal("zero vector accepted")
	}
	if _, err := RayleighQuotient(a, []float64{1}); err == nil {
		t.Fatal("wrong length accepted")
	}
}

func TestReconstructImage(t *testing.T) {
	n := 40
	m := DiagonallyDominant(n, 61)
	img := make([]float64, n)
	for i := range img {
		img[i] = math.Exp(-0.1 * float64(i-20) * float64(i-20))
	}
	reading := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			reading[i] += m.At(i, j) * img[j]
		}
	}
	opts := DefaultOptions(2)
	opts.NB = 16
	got, err := ReconstructImage(m, reading, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range img {
		if math.Abs(got[i]-img[i]) > 1e-8 {
			t.Fatalf("pixel %d: %v vs %v", i, got[i], img[i])
		}
	}
}

func TestConditionNumber(t *testing.T) {
	opts := DefaultOptions(2)
	opts.NB = 8
	// kappa(I) = 1.
	k, err := ConditionNumber(Identity(16), opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k-1) > 1e-12 {
		t.Fatalf("kappa(I) = %v", k)
	}
	// A diagonal matrix with spread [1, 100] has kappa = 100.
	d := NewMatrix(16, 16)
	for i := 0; i < 16; i++ {
		d.Set(i, i, 1)
	}
	d.Set(0, 0, 100)
	k, err = ConditionNumber(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k-100) > 1e-9 {
		t.Fatalf("kappa = %v, want 100", k)
	}
	if _, err := ConditionNumber(NewMatrix(4, 4), opts); err == nil {
		t.Fatal("singular accepted")
	}
	_ = errors.Is
}
