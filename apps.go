package mrinverse

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/matrix"
)

// Application-level helpers built on the inverters — the paper's
// Section 1 motivating applications as reusable library calls: solving
// linear systems (Solve, in mrinverse.go), eigenpairs by inverse
// iteration, image reconstruction, and condition estimation.

// ErrNoConvergence is returned when an iterative method stalls.
var ErrNoConvergence = errors.New("mrinverse: iteration did not converge")

// InverseIterationResult reports a converged eigenpair.
type InverseIterationResult struct {
	Eigenvalue  float64
	Eigenvector []float64
	Iterations  int
}

// InverseIteration finds the eigenvalue of A closest to the shift mu (and
// its eigenvector) by the paper's Section 1 method: invert (A - mu I)
// once through the MapReduce pipeline, then iterate
// v <- (A - mu I)^-1 v / ||...|| with Rayleigh-quotient eigenvalue
// estimates until the estimate stabilizes to tol.
func InverseIteration(a *Matrix, mu float64, tol float64, maxIter int, opts Options) (*InverseIterationResult, error) {
	if !a.IsSquare() {
		return nil, fmt.Errorf("mrinverse: InverseIteration: %dx%d not square", a.Rows, a.Cols)
	}
	n := a.Rows
	if n == 0 {
		return nil, fmt.Errorf("mrinverse: InverseIteration: empty matrix")
	}
	if maxIter < 1 {
		maxIter = 50
	}
	if tol <= 0 {
		tol = 1e-12
	}
	shifted := a.Clone()
	for i := 0; i < n; i++ {
		shifted.Set(i, i, shifted.At(i, i)-mu)
	}
	inv, _, err := Invert(shifted, opts)
	if err != nil {
		return nil, fmt.Errorf("mrinverse: InverseIteration: %w", err)
	}

	v := make([]float64, n)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(n))
	}
	prev := math.Inf(1)
	for k := 1; k <= maxIter; k++ {
		w, err := matrix.MulVec(inv, v)
		if err != nil {
			return nil, err
		}
		norm := matrix.VecNorm2(w)
		if norm == 0 {
			return nil, ErrNoConvergence
		}
		for i := range w {
			w[i] /= norm
		}
		v = w
		lambda, err := RayleighQuotient(a, v)
		if err != nil {
			return nil, err
		}
		if math.Abs(lambda-prev) <= tol*(1+math.Abs(lambda)) {
			return &InverseIterationResult{Eigenvalue: lambda, Eigenvector: v, Iterations: k}, nil
		}
		prev = lambda
	}
	return nil, fmt.Errorf("mrinverse: after %d iterations: %w", maxIter, ErrNoConvergence)
}

// RayleighQuotient returns v^T A v / v^T v, the eigenvalue estimate the
// paper quotes for the inverse iteration method ("lambda = v^T A v / v^T v").
func RayleighQuotient(a *Matrix, v []float64) (float64, error) {
	av, err := matrix.MulVec(a, v)
	if err != nil {
		return 0, err
	}
	den := matrix.Dot(v, v)
	if den == 0 {
		return 0, fmt.Errorf("mrinverse: RayleighQuotient of zero vector")
	}
	return matrix.Dot(v, av) / den, nil
}

// ReconstructImage solves the paper's computed-tomography application: a
// detector reading t = M s is inverted to recover the original image
// s = M^-1 t (Section 1, "T = MS ... we can simply invert the projection
// matrix").
func ReconstructImage(projection *Matrix, reading []float64, opts Options) ([]float64, error) {
	return Solve(projection, reading, opts)
}

// ConditionNumber estimates kappa_inf(A) = ||A||_inf ||A^-1||_inf using
// the MapReduce inverse — large values explain residual growth in the
// Section 7.2 accuracy check.
func ConditionNumber(a *Matrix, opts Options) (float64, error) {
	inv, _, err := Invert(a, opts)
	if err != nil {
		return 0, err
	}
	return matrix.NormInf(a) * matrix.NormInf(inv), nil
}
