# Convenience targets; everything is plain `go` underneath (stdlib only).

GO ?= go

.PHONY: all build test race cover cover-check bench bench-smoke chaos-smoke fleet-smoke lstsq-smoke incr-smoke transfer-check experiments examples trace serve load fmt vet lint mrlint clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# The measured benchmark suite (one line per paper table/figure plus
# kernel micro-benchmarks).
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every evaluation artifact (Tables 1-3, Figures 6-8, §7.4,
# §7.2, §5 nb tuning, §8 engines/spark).
experiments:
	$(GO) run repro/cmd/mrbench -exp all

# Run every example end to end.
examples:
	$(GO) run repro/examples/quickstart
	$(GO) run repro/examples/linsolve
	$(GO) run repro/examples/inverseiteration
	$(GO) run repro/examples/tomography
	$(GO) run repro/examples/adaptive
	$(GO) run repro/examples/faulttolerance
	$(GO) run repro/examples/observability -o trace.json

# Capture a Chrome trace of one traced inversion (internal/obs): generate
# a matrix, invert it with -trace, and leave trace.json for
# chrome://tracing or ui.perfetto.dev.
trace:
	$(GO) run repro/cmd/matgen -n 256 -o /tmp/matinv-trace-input.bin
	$(GO) run repro/cmd/matinv -in /tmp/matinv-trace-input.bin -nodes 8 -nb 64 -trace trace.json -metrics
	@echo "trace written to trace.json — open it in chrome://tracing or ui.perfetto.dev"

# Start the inversion server on :8723 (POST matrices to /invert; see
# /statz and /metricz for the serving counters).
serve:
	$(GO) run repro/cmd/matserve -addr :8723 -metrics

# Self-contained load run: loadgen starts an in-process matserve and
# drives the default request mix, printing a JSONL latency summary.
load:
	$(GO) run repro/cmd/loadgen -mode closed -concurrency 8 -requests 64 -seed 1
	$(GO) run repro/cmd/loadgen -mode open -rate 50 -requests 64 -seed 1

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

# Mirror of the CI lint gate: gofmt, vet, the repository's own invariant
# checkers (cmd/mrlint, stdlib-only), and staticcheck. staticcheck is
# skipped gracefully when not installed locally; CI always runs it,
# pinned to the same version as the workflow
# (honnef.co/go/tools/cmd/staticcheck@2024.1.1).
lint:
	test -z "$$(gofmt -l .)"
	$(GO) vet ./...
	$(GO) run repro/cmd/mrlint ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (CI runs it)"; fi

# The invariant checkers alone (determinism, ctxflow, boundedalloc,
# obsnames, lockscope — see internal/analysis). -vet chains the
# relevant go vet passes behind the same exit code.
mrlint:
	$(GO) run repro/cmd/mrlint -vet ./...

# Mirror of the CI coverage gate: total ./internal/... statement coverage
# must not drop below ci/coverage_floor.txt.
cover-check:
	$(GO) test -coverprofile=cover.out ./internal/...
	@floor="$$(cat ci/coverage_floor.txt)"; \
	total="$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}')"; \
	echo "total coverage: $$total% (floor: $$floor%)"; \
	awk -v t="$$total" -v f="$$floor" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }' || \
	{ echo "coverage $$total% fell below floor $$floor%"; exit 1; }

# Seeded perf smoke, as run by CI: one closed-loop serving load run plus
# the seeded benchmark experiments, collected as JSONL in
# BENCH_report.json (uploaded as a workflow artifact — the repository's
# perf trajectory).
bench-smoke:
	$(GO) run repro/cmd/loadgen -mode closed -concurrency 4 -requests 32 -seed 1 -mix 24:5,40:3,64:2 -dup 0.25 > BENCH_report.json
	$(GO) run repro/cmd/loadgen -shards 4 -mode closed -concurrency 8 -requests 48 -seed 1 -mix 24:5,40:3,64:2 -dup 0.4 -tenant-mix gold:3,free:1 -tenants-quota 'gold=16:5,free=8:0' >> BENCH_report.json
	$(GO) run repro/cmd/loadgen -mode closed -concurrency 4 -requests 32 -seed 1 -mix 256x8:3,192x6:2,24:5 -dup 0.25 -verify >> BENCH_report.json
	$(GO) run repro/cmd/mrbench -exp all -seed 1 -json >> BENCH_report.json
	$(GO) run repro/cmd/mrbench -kill-nodes 2 -n 96 -nb 24 -seed 1 -json >> BENCH_report.json
	grep -q '"experiment":"multiround"' BENCH_report.json
	grep -q '"strategy":"replicated"' BENCH_report.json
	grep -q '"beats_single":true' BENCH_report.json
	grep -q '"experiment":"incr"' BENCH_report.json
	grep -q '"update_wins":true' BENCH_report.json

# Shuffle-bytes regression gate, as run by CI: seeded multiply per
# strategy on the gated shape, bit-identity against the sequential
# reference, and measured transfer within +5% of ci/transfer_baseline.txt
# (with the replicated strategy required to keep beating single-round).
transfer-check:
	$(GO) run repro/cmd/transfercheck

# Seeded fleet smoke, as run by CI: drive a saturating skewed mix at an
# in-process 4-shard federated fleet with two tenant classes and tight
# per-shard queues. The gate requires zero failed requests AND the
# overflow-spill path to have engaged (home shards saturate, the router
# reroutes to the least-loaded live shard instead of returning 429).
fleet-smoke:
	$(GO) run repro/cmd/loadgen -shards 4 -serve-concurrency 1 -serve-queue 2 \
		-concurrency 12 -requests 96 -seed 1 -mix 40:3,64:3,96:2 -dup 0.2 \
		-hot-keys 2 -hot-frac 0.3 -tenant-mix gold:1,free:1 \
		-tenants-quota 'gold=16:5,free=16:0' \
		-assert-error-rate 0 -assert-min-spills 1

# Seeded least-squares smoke, as run by CI: a blended square/tall mix
# against a single in-process server and a 4-shard fleet. Tall entries
# hit /lstsq through the TSQR pipeline; -verify checks every returned
# solution against the sequential QR reference (1e-8), and the gate
# requires zero failures of any kind.
lstsq-smoke:
	$(GO) run repro/cmd/loadgen -mode closed -concurrency 8 -requests 64 -seed 1 \
		-mix 24:4,40:2,256x8:3,192x6:1 -dup 0.3 -verify -assert-error-rate 0
	$(GO) run repro/cmd/loadgen -shards 4 -mode closed -concurrency 8 -requests 64 -seed 2 \
		-mix 24:4,40:2,256x8:3,192x6:1 -dup 0.3 -hot-keys 2 -hot-frac 0.25 \
		-verify -assert-error-rate 0

# Seeded incremental-inversion smoke, as run by CI: a hot-key mix where
# 30% of requests are rank-2 row mutations of hot bases, served by an
# in-process fleet with the SMW update path enabled. The gate requires
# zero errors, at least one incrementally served request, and the
# incremental p50 beating the full-pipeline p50.
incr-smoke:
	$(GO) run repro/cmd/loadgen -mode closed -concurrency 4 -requests 96 -seed 7 		-mix 64:3,96:1 -dup 0.2 -hot-keys 3 -hot-frac 0.35 		-delta-frac 0.3 -delta-rank 2 -incr 		-assert-error-rate 0 -assert-min-incremental 1 -assert-incr-faster

# Seeded chaos smoke, as run by CI: replay the §7.4 failure-recovery
# experiment under the race detector — kill 2 of 8 nodes mid-pipeline and
# require a bit-identical inverse with every failure mode exercised.
chaos-smoke:
	$(GO) run -race repro/cmd/chaosrun -n 192 -nb 48 -nodes 8 -kill 2 -seed 1 -assert

# Record the final outputs the repository ships with.
record:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem -run='^$$' ./... 2>&1 | tee bench_output.txt
