package mrinverse_test

import (
	"fmt"

	mrinverse "repro"
)

// The godoc quickstart: invert a small matrix through the MapReduce
// pipeline and verify it.
func Example() {
	a := mrinverse.FromRows([][]float64{
		{4, 7},
		{2, 6},
	})
	opts := mrinverse.DefaultOptions(2)
	opts.NB = 2
	inv, rep, err := mrinverse.Invert(a, opts)
	if err != nil {
		panic(err)
	}
	fmt.Printf("jobs: %d\n", rep.JobsRun)
	fmt.Printf("inverse:\n%v\n", inv)
	fmt.Printf("residual below 1e-12: %v\n", mrinverse.Residual(a, inv) < 1e-12)
	// Output:
	// jobs: 2
	// inverse:
	// [0.6 -0.7]
	// [-0.2 0.4]
	// residual below 1e-12: true
}

// Solving a linear system through the inverse (the paper's first
// Section 1 application).
func ExampleSolve() {
	a := mrinverse.FromRows([][]float64{
		{2, 1},
		{1, 3},
	})
	opts := mrinverse.DefaultOptions(2)
	opts.NB = 2
	x, err := mrinverse.Solve(a, []float64{5, 10}, opts)
	if err != nil {
		panic(err)
	}
	fmt.Printf("x = [%.0f %.0f]\n", x[0], x[1])
	// Output:
	// x = [1 3]
}

// Determinants through the pipeline's decomposition.
func ExampleDeterminant() {
	a := mrinverse.FromRows([][]float64{
		{3, 0},
		{0, 5},
	})
	opts := mrinverse.DefaultOptions(2)
	opts.NB = 2
	det, err := mrinverse.Determinant(a, opts)
	if err != nil {
		panic(err)
	}
	fmt.Printf("det = %.0f\n", det)
	// Output:
	// det = 15
}

// Job-count planning: the paper's Table 3 law.
func ExamplePipelineJobs() {
	// M4 (n = 102400) with the paper's bound value 3200.
	fmt.Println(mrinverse.PipelineJobs(102400, 3200))
	// Output:
	// 33
}
