// Package workload generates the input matrices used by tests, examples and
// the benchmark harness, and records the descriptors of the paper's
// evaluation matrices (Table 3).
//
// The paper generated its matrices "randomly using the Random class in Java"
// and notes that performance depends only on the order of the matrix, not
// its values. We use seeded math/rand generators so every experiment is
// reproducible, and provide diagonally-dominant variants so that inverses
// are well-conditioned at test scale.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/matrix"
)

// Random returns an n x n matrix with i.i.d. Uniform(-1, 1) entries, the
// direct analog of the paper's randomly generated inputs.
func Random(n int, seed int64) *matrix.Dense {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.New(n, n)
	for i := range m.Data {
		m.Data[i] = 2*rng.Float64() - 1
	}
	return m
}

// RandomRect returns an r x c matrix with i.i.d. Uniform(-1, 1) entries.
func RandomRect(r, c int, seed int64) *matrix.Dense {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.New(r, c)
	for i := range m.Data {
		m.Data[i] = 2*rng.Float64() - 1
	}
	return m
}

// DiagonallyDominant returns a random n x n matrix with its diagonal
// inflated so that |a_ii| exceeds the off-diagonal row sum. Such matrices
// are nonsingular (Gershgorin) and well conditioned, which keeps residual
// checks meaningful at small orders.
func DiagonallyDominant(n int, seed int64) *matrix.Dense {
	m := Random(n, seed)
	for i := 0; i < n; i++ {
		var s float64
		row := m.Row(i)
		for j, v := range row {
			if j != i {
				if v < 0 {
					s -= v
				} else {
					s += v
				}
			}
		}
		sign := 1.0
		if row[i] < 0 {
			sign = -1.0
		}
		row[i] = sign * (s + 1)
	}
	return m
}

// MutatedRows returns the row indices MutateRows perturbs for an order-n
// matrix under (k, seed) — exposed so callers (tests, delta-aware
// clients) can predict which rows a mutation touched without diffing.
func MutatedRows(n, k int, seed int64) []int {
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	return rng.Perm(n)[:k]
}

// MutateRows returns a copy of base with k distinct rows perturbed, the
// generator behind delta-mutation serving traffic: the off-diagonal
// entries of each chosen row shift by Uniform(-1,1) and the diagonal is
// re-anchored just above the row's absolute off-diagonal sum, so a
// mutated DiagonallyDominant matrix stays diagonally dominant (hence
// invertible) while differing from its base by an exactly rank-k row
// delta. Equal (base, k, seed) triples yield bit-identical results.
func MutateRows(base *matrix.Dense, k int, seed int64) *matrix.Dense {
	next := base.Clone()
	n := base.Rows
	if k > n {
		k = n
	}
	if k <= 0 {
		return next
	}
	rng := rand.New(rand.NewSource(seed))
	for _, r := range rng.Perm(n)[:k] {
		var offsum float64
		row := next.Row(r)
		for j := range row {
			if j == r {
				continue
			}
			row[j] += rng.Float64()*2 - 1
			if row[j] < 0 {
				offsum -= row[j]
			} else {
				offsum += row[j]
			}
		}
		sign := 1.0
		if row[r] < 0 {
			sign = -1
		}
		row[r] = sign * (offsum + 1)
	}
	return next
}

// SPD returns a random symmetric positive definite matrix B*B^T + n*I.
// Used by tests exercising the special-matrix discussion of Section 3.
func SPD(n int, seed int64) *matrix.Dense {
	b := Random(n, seed)
	bbt, err := matrix.MulTransB(b, b)
	if err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		bbt.Set(i, i, bbt.At(i, i)+float64(n))
	}
	return bbt
}

// Tridiagonal returns the classic [-1, 2, -1] tridiagonal matrix: a
// well-understood, nonsingular test input whose inverse is known in closed
// form ([A^-1]ij = min(i+1,j+1) - (i+1)(j+1)/(n+1) for the 2,-1 matrix).
func Tridiagonal(n int) *matrix.Dense {
	m := matrix.New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 2)
		if i > 0 {
			m.Set(i, i-1, -1)
		}
		if i < n-1 {
			m.Set(i, i+1, -1)
		}
	}
	return m
}

// TridiagonalInverse returns the closed-form inverse of Tridiagonal(n):
// [A^-1]ij = min(i,j)+1 - (i+1)(j+1)/(n+1) ... concretely
// [A^-1]ij = (min(i,j)+1) * (n - max(i,j)) / (n+1) for 0-based indices.
func TridiagonalInverse(n int) *matrix.Dense {
	m := matrix.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			lo, hi := i, j
			if lo > hi {
				lo, hi = hi, lo
			}
			m.Set(i, j, float64(lo+1)*float64(n-hi)/float64(n+1))
		}
	}
	return m
}

// ProjectionMatrix builds a synthetic computed-tomography projection matrix
// M for an image of pixels pixels (Section 1's CT application, T = M S).
// Each row accumulates weighted contributions along a pseudo-ray; a ridge is
// added on the diagonal so M is invertible.
func ProjectionMatrix(pixels int, seed int64) *matrix.Dense {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.New(pixels, pixels)
	for ray := 0; ray < pixels; ray++ {
		// Each pseudo-ray touches a contiguous window of pixels with
		// random attenuation weights.
		width := 1 + rng.Intn(pixels/2+1)
		start := rng.Intn(pixels)
		for k := 0; k < width; k++ {
			j := (start + k) % pixels
			m.Set(ray, j, m.At(ray, j)+rng.Float64())
		}
		m.Set(ray, ray, m.At(ray, ray)+float64(pixels))
	}
	return m
}

// Orthogonal returns a random n x n orthogonal matrix built from a
// product of n random Householder reflections. Orthogonal matrices have
// condition number 1, so inversion (= transposition) is maximally stable —
// the opposite end of the spectrum from Hilbert.
func Orthogonal(n int, seed int64) *matrix.Dense {
	rng := rand.New(rand.NewSource(seed))
	q := matrix.Identity(n)
	v := make([]float64, n)
	for k := 0; k < n; k++ {
		var norm2 float64
		for i := range v {
			v[i] = rng.NormFloat64()
			norm2 += v[i] * v[i]
		}
		if norm2 == 0 {
			continue
		}
		// Q <- Q (I - 2 v v^T / |v|^2)
		for i := 0; i < n; i++ {
			row := q.Row(i)
			var dot float64
			for j := 0; j < n; j++ {
				dot += row[j] * v[j]
			}
			scale := 2 * dot / norm2
			for j := 0; j < n; j++ {
				row[j] -= scale * v[j]
			}
		}
	}
	return q
}

// Banded returns a random diagonally dominant band matrix with the given
// half-bandwidth: a_ij = 0 whenever |i-j| > halfBand.
func Banded(n, halfBand int, seed int64) *matrix.Dense {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.New(n, n)
	for i := 0; i < n; i++ {
		var off float64
		for j := maxI(0, i-halfBand); j <= minI(n-1, i+halfBand); j++ {
			if j == i {
				continue
			}
			v := 2*rng.Float64() - 1
			m.Set(i, j, v)
			if v < 0 {
				off -= v
			} else {
				off += v
			}
		}
		m.Set(i, i, off+1)
	}
	return m
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Hilbert returns the n x n Hilbert matrix H[i][j] = 1/(i+j+1): the
// classic ill-conditioned test input (condition number grows like
// e^{3.5n}), used by the numerical-stability investigation the paper
// defers to future work (Section 5).
func Hilbert(n int) *matrix.Dense {
	m := matrix.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, 1/float64(i+j+1))
		}
	}
	return m
}

// MatrixSpec describes one of the paper's evaluation matrices (Table 3).
type MatrixSpec struct {
	Name     string
	Order    int     // n
	Elements float64 // billions, as printed in Table 3
	TextGB   float64 // size in text format, GB
	BinaryGB float64 // size in binary format, GB
	Jobs     int     // number of MapReduce jobs at nb = 3200
}

// Table3 lists the five matrices of the paper's Table 3.
var Table3 = []MatrixSpec{
	{Name: "M1", Order: 20480, Elements: 0.42, TextGB: 8, BinaryGB: 3.2, Jobs: 9},
	{Name: "M2", Order: 32768, Elements: 1.07, TextGB: 20, BinaryGB: 8, Jobs: 17},
	{Name: "M3", Order: 40960, Elements: 1.68, TextGB: 40, BinaryGB: 16, Jobs: 17},
	{Name: "M4", Order: 102400, Elements: 10.49, TextGB: 200, BinaryGB: 80, Jobs: 33},
	{Name: "M5", Order: 16384, Elements: 0.26, TextGB: 5, BinaryGB: 2, Jobs: 9},
}

// SpecByName returns the Table 3 descriptor with the given name.
func SpecByName(name string) (MatrixSpec, error) {
	for _, s := range Table3 {
		if s.Name == name {
			return s, nil
		}
	}
	return MatrixSpec{}, fmt.Errorf("workload: unknown matrix %q", name)
}

// PaperNB is the bound value n_b used throughout the paper's experiments:
// the order of the largest matrix LU-decomposed on the master node.
const PaperNB = 3200
