package workload

import (
	"math"
	"testing"

	"repro/internal/matrix"
)

func TestRandomDeterministic(t *testing.T) {
	a := Random(16, 42)
	b := Random(16, 42)
	if !matrix.Equal(a, b, 0) {
		t.Fatal("same seed must give same matrix")
	}
	c := Random(16, 43)
	if matrix.Equal(a, c, 0) {
		t.Fatal("different seeds gave identical matrices")
	}
}

func TestRandomRange(t *testing.T) {
	m := Random(32, 7)
	for _, v := range m.Data {
		if v < -1 || v > 1 {
			t.Fatalf("value %v out of (-1, 1)", v)
		}
	}
}

func TestRandomRect(t *testing.T) {
	m := RandomRect(3, 9, 1)
	if m.Rows != 3 || m.Cols != 9 {
		t.Fatalf("dims %dx%d", m.Rows, m.Cols)
	}
}

func TestDiagonallyDominant(t *testing.T) {
	m := DiagonallyDominant(24, 11)
	for i := 0; i < m.Rows; i++ {
		var off float64
		for j, v := range m.Row(i) {
			if j != i {
				off += math.Abs(v)
			}
		}
		if math.Abs(m.At(i, i)) <= off {
			t.Fatalf("row %d not dominant: |%v| <= %v", i, m.At(i, i), off)
		}
	}
}

func TestSPDIsSymmetric(t *testing.T) {
	m := SPD(12, 13)
	if !matrix.Equal(m, m.Transpose(), 1e-12) {
		t.Fatal("SPD output not symmetric")
	}
	// Positive diagonal is necessary for positive definiteness.
	for i := 0; i < m.Rows; i++ {
		if m.At(i, i) <= 0 {
			t.Fatalf("diagonal %d not positive", i)
		}
	}
}

func TestTridiagonalInverseClosedForm(t *testing.T) {
	n := 12
	a := Tridiagonal(n)
	inv := TridiagonalInverse(n)
	prod, err := matrix.Mul(a, inv)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(prod, matrix.Identity(n)); d > 1e-12 {
		t.Fatalf("closed-form inverse wrong by %g", d)
	}
}

func TestProjectionMatrixInvertible(t *testing.T) {
	m := ProjectionMatrix(20, 5)
	// Strong diagonal ridge keeps it nonsingular; verify dominance-ish
	// structure: diagonal at least the pixel count.
	for i := 0; i < m.Rows; i++ {
		if m.At(i, i) < float64(20) {
			t.Fatalf("ridge missing at %d: %v", i, m.At(i, i))
		}
	}
	if !matrix.IsFinite(m) {
		t.Fatal("non-finite entries")
	}
}

func TestOrthogonal(t *testing.T) {
	q := Orthogonal(24, 17)
	qtq, err := matrix.Mul(q.Transpose(), q)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(qtq, matrix.Identity(24)); d > 1e-12 {
		t.Fatalf("Q^T Q deviates from I by %g", d)
	}
}

func TestBanded(t *testing.T) {
	n, hb := 30, 3
	m := Banded(n, hb, 18)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d := i - j
			if d < 0 {
				d = -d
			}
			if d > hb && m.At(i, j) != 0 {
				t.Fatalf("nonzero outside band at (%d,%d)", i, j)
			}
		}
	}
	// Diagonally dominant, hence nonsingular.
	for i := 0; i < n; i++ {
		var off float64
		for j, v := range m.Row(i) {
			if j != i {
				off += math.Abs(v)
			}
		}
		if m.At(i, i) <= off {
			t.Fatalf("row %d not dominant", i)
		}
	}
}

func TestHilbertSymmetricAndDecaying(t *testing.T) {
	h := Hilbert(8)
	if !matrix.Equal(h, h.Transpose(), 0) {
		t.Fatal("Hilbert not symmetric")
	}
	if h.At(0, 0) != 1 || h.At(7, 7) != 1.0/15 {
		t.Fatalf("corner values wrong: %v %v", h.At(0, 0), h.At(7, 7))
	}
}

func TestTable3Specs(t *testing.T) {
	if len(Table3) != 5 {
		t.Fatalf("Table3 has %d entries", len(Table3))
	}
	spec, err := SpecByName("M4")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Order != 102400 || spec.Jobs != 33 {
		t.Fatalf("M4 = %+v", spec)
	}
	if _, err := SpecByName("M9"); err == nil {
		t.Fatal("unknown spec accepted")
	}
	// Element counts consistent with order (Table 3's "Elements" column
	// is n^2 in billions).
	for _, s := range Table3 {
		billions := float64(s.Order) * float64(s.Order) / 1e9
		if math.Abs(billions-s.Elements) > 0.011 {
			t.Fatalf("%s: n^2 = %.2fG, table says %.2fG", s.Name, billions, s.Elements)
		}
	}
}

func TestPaperNB(t *testing.T) {
	if PaperNB != 3200 {
		t.Fatalf("PaperNB = %d", PaperNB)
	}
}
