package workload

import (
	"testing"

	"repro/internal/matrix"
)

func TestMixStreamDeterministic(t *testing.T) {
	mix := Mix{Entries: []MixEntry{{32, 5}, {64, 3}, {128, 2}}, DupProb: 0.3}
	a := mix.Stream(42).Take(200)
	b := mix.Stream(42).Take(200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs under same seed: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := mix.Stream(43).Take(200)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestMixStreamEntryOrderIrrelevant(t *testing.T) {
	// The same distribution written in a different entry order must give
	// the same stream — reproducibility should not hinge on flag order.
	m1 := Mix{Entries: []MixEntry{{32, 5}, {64, 3}}, DupProb: 0.2}
	m2 := Mix{Entries: []MixEntry{{64, 3}, {32, 5}}, DupProb: 0.2}
	a, b := m1.Stream(7).Take(100), m2.Stream(7).Take(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d depends on entry order: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestMixStreamRespectsOrdersAndDuplicates(t *testing.T) {
	mix := Mix{Entries: []MixEntry{{16, 1}, {24, 1}}, DupProb: 0.5, History: 4}
	specs := mix.Stream(1).Take(400)
	seen := map[RequestSpec]bool{}
	dups := 0
	for _, sp := range specs {
		if sp.Order != 16 && sp.Order != 24 {
			t.Fatalf("order %d not in mix", sp.Order)
		}
		if sp.Dup {
			dups++
			fresh := sp
			fresh.Dup = false
			if !seen[fresh] {
				t.Fatalf("duplicate %+v never issued fresh", sp)
			}
		} else {
			seen[sp] = true
		}
	}
	if dups == 0 {
		t.Fatal("DupProb 0.5 produced no duplicates in 400 requests")
	}
	if dups > 300 {
		t.Fatalf("implausible duplicate count %d/400", dups)
	}
}

func TestMixZeroDupProbHasNoDuplicates(t *testing.T) {
	mix := Mix{Entries: []MixEntry{{16, 1}}, DupProb: 0}
	for _, sp := range mix.Stream(9).Take(100) {
		if sp.Dup {
			t.Fatal("duplicate emitted with DupProb 0")
		}
	}
}

func TestRequestSpecBuildDeterministic(t *testing.T) {
	a := RequestSpec{Order: 24, Seed: 11}.Build()
	b := RequestSpec{Order: 24, Seed: 11}.Build()
	if !matrix.Equal(a, b, 0) {
		t.Fatal("same spec built different matrices")
	}
	if a.Rows != 24 || a.Cols != 24 {
		t.Fatalf("dims %dx%d", a.Rows, a.Cols)
	}
}

func TestParseMix(t *testing.T) {
	entries, err := ParseMix(" 32:5, 64:3 ,128:2")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 || entries[0].Order != 32 || entries[2].Weight != 2 {
		t.Fatalf("parsed %+v", entries)
	}
	for _, bad := range []string{"", "32", "0:1", "32:-1", "x:y"} {
		if _, err := ParseMix(bad); err == nil {
			t.Fatalf("ParseMix(%q) accepted", bad)
		}
	}
}

func TestMixHotKeysSkewStream(t *testing.T) {
	m := Mix{
		Entries: []MixEntry{{Order: 24, Weight: 1}, {Order: 40, Weight: 1}},
		HotKeys: 2,
		HotProb: 0.6,
	}
	const n = 2000
	specs := m.Stream(5).Take(n)
	hotSeen := map[[2]int64]int{}
	hotDraws := 0
	for _, sp := range specs {
		if sp.Hot {
			hotDraws++
			if !sp.Dup {
				t.Fatal("hot draw not marked Dup")
			}
			hotSeen[[2]int64{int64(sp.Order), sp.Seed}]++
		}
	}
	if len(hotSeen) != 2 {
		t.Fatalf("hot draws used %d distinct keys, want 2", len(hotSeen))
	}
	frac := float64(hotDraws) / n
	if frac < 0.5 || frac > 0.7 {
		t.Fatalf("hot fraction %.3f, want ~0.6", frac)
	}
	// Determinism: same (mix, seed) gives the same hot set and sequence.
	again := m.Stream(5).Take(n)
	for i := range specs {
		if specs[i] != again[i] {
			t.Fatalf("stream diverged at %d: %+v vs %+v", i, specs[i], again[i])
		}
	}
	// A different seed draws a different hot set.
	other := m.Stream(6).Take(n)
	diff := false
	for _, sp := range other {
		if sp.Hot && hotSeen[[2]int64{int64(sp.Order), sp.Seed}] == 0 {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("hot set identical across seeds")
	}
}

func TestMixWithoutHotKeysUnchanged(t *testing.T) {
	for _, sp := range DefaultMix().Stream(1).Take(500) {
		if sp.Hot {
			t.Fatal("Hot spec from a mix with no hot keys")
		}
	}
}
