package workload

import (
	"math"
	"testing"

	"repro/internal/matrix"
)

func TestMixStreamDeterministic(t *testing.T) {
	mix := Mix{Entries: []MixEntry{{Order: 32, Weight: 5}, {Order: 64, Weight: 3}, {Order: 128, Weight: 2}}, DupProb: 0.3}
	a := mix.Stream(42).Take(200)
	b := mix.Stream(42).Take(200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs under same seed: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := mix.Stream(43).Take(200)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestMixStreamEntryOrderIrrelevant(t *testing.T) {
	// The same distribution written in a different entry order must give
	// the same stream — reproducibility should not hinge on flag order.
	m1 := Mix{Entries: []MixEntry{{Order: 32, Weight: 5}, {Order: 64, Weight: 3}}, DupProb: 0.2}
	m2 := Mix{Entries: []MixEntry{{Order: 64, Weight: 3}, {Order: 32, Weight: 5}}, DupProb: 0.2}
	a, b := m1.Stream(7).Take(100), m2.Stream(7).Take(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d depends on entry order: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestMixStreamRespectsOrdersAndDuplicates(t *testing.T) {
	mix := Mix{Entries: []MixEntry{{Order: 16, Weight: 1}, {Order: 24, Weight: 1}}, DupProb: 0.5, History: 4}
	specs := mix.Stream(1).Take(400)
	seen := map[RequestSpec]bool{}
	dups := 0
	for _, sp := range specs {
		if sp.Order != 16 && sp.Order != 24 {
			t.Fatalf("order %d not in mix", sp.Order)
		}
		if sp.Dup {
			dups++
			fresh := sp
			fresh.Dup = false
			if !seen[fresh] {
				t.Fatalf("duplicate %+v never issued fresh", sp)
			}
		} else {
			seen[sp] = true
		}
	}
	if dups == 0 {
		t.Fatal("DupProb 0.5 produced no duplicates in 400 requests")
	}
	if dups > 300 {
		t.Fatalf("implausible duplicate count %d/400", dups)
	}
}

func TestMixZeroDupProbHasNoDuplicates(t *testing.T) {
	mix := Mix{Entries: []MixEntry{{Order: 16, Weight: 1}}, DupProb: 0}
	for _, sp := range mix.Stream(9).Take(100) {
		if sp.Dup {
			t.Fatal("duplicate emitted with DupProb 0")
		}
	}
}

func TestRequestSpecBuildDeterministic(t *testing.T) {
	a := RequestSpec{Order: 24, Seed: 11}.Build()
	b := RequestSpec{Order: 24, Seed: 11}.Build()
	if !matrix.Equal(a, b, 0) {
		t.Fatal("same spec built different matrices")
	}
	if a.Rows != 24 || a.Cols != 24 {
		t.Fatalf("dims %dx%d", a.Rows, a.Cols)
	}
}

func TestParseMix(t *testing.T) {
	entries, err := ParseMix(" 32:5, 64:3 ,128:2")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 || entries[0].Order != 32 || entries[2].Weight != 2 {
		t.Fatalf("parsed %+v", entries)
	}
	for _, bad := range []string{"", "32", "0:1", "32:-1", "x:y"} {
		if _, err := ParseMix(bad); err == nil {
			t.Fatalf("ParseMix(%q) accepted", bad)
		}
	}
}

func TestMixHotKeysSkewStream(t *testing.T) {
	m := Mix{
		Entries: []MixEntry{{Order: 24, Weight: 1}, {Order: 40, Weight: 1}},
		HotKeys: 2,
		HotProb: 0.6,
	}
	const n = 2000
	specs := m.Stream(5).Take(n)
	hotSeen := map[[2]int64]int{}
	hotDraws := 0
	for _, sp := range specs {
		if sp.Hot {
			hotDraws++
			if !sp.Dup {
				t.Fatal("hot draw not marked Dup")
			}
			hotSeen[[2]int64{int64(sp.Order), sp.Seed}]++
		}
	}
	if len(hotSeen) != 2 {
		t.Fatalf("hot draws used %d distinct keys, want 2", len(hotSeen))
	}
	frac := float64(hotDraws) / n
	if frac < 0.5 || frac > 0.7 {
		t.Fatalf("hot fraction %.3f, want ~0.6", frac)
	}
	// Determinism: same (mix, seed) gives the same hot set and sequence.
	again := m.Stream(5).Take(n)
	for i := range specs {
		if specs[i] != again[i] {
			t.Fatalf("stream diverged at %d: %+v vs %+v", i, specs[i], again[i])
		}
	}
	// A different seed draws a different hot set.
	other := m.Stream(6).Take(n)
	diff := false
	for _, sp := range other {
		if sp.Hot && hotSeen[[2]int64{int64(sp.Order), sp.Seed}] == 0 {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("hot set identical across seeds")
	}
}

func TestParseMixRectangular(t *testing.T) {
	entries, err := ParseMix("32:5,512x8:2,64x64:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("parsed %+v", entries)
	}
	if entries[1].Order != 512 || entries[1].Cols != 8 {
		t.Fatalf("tall entry %+v", entries[1])
	}
	// An n x n shape normalizes to the square entry (Cols 0) so it shares
	// identity with the plain-order spelling.
	if entries[2].Order != 64 || entries[2].Cols != 0 {
		t.Fatalf("square-spelled-rect entry %+v", entries[2])
	}
	for _, bad := range []string{"8x512:1", "0x4:1", "32x0:1", "ax4:1", "4xb:1"} {
		if _, err := ParseMix(bad); err == nil {
			t.Fatalf("ParseMix(%q) accepted", bad)
		}
	}
}

func TestMixTallStreamDeterministic(t *testing.T) {
	mix := Mix{
		Entries: []MixEntry{{Order: 24, Weight: 1}, {Order: 256, Cols: 6, Weight: 1}},
		DupProb: 0.3,
	}
	a := mix.Stream(11).Take(300)
	b := mix.Stream(11).Take(300)
	talls := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs under same seed: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Tall() {
			talls++
			m := a[i].Build()
			if m.Rows != 256 || m.Cols != 6 {
				t.Fatalf("tall build %dx%d", m.Rows, m.Cols)
			}
			rhs := a[i].Rhs()
			if rhs.Rows != 256 || rhs.Cols != 1 {
				t.Fatalf("rhs %dx%d", rhs.Rows, rhs.Cols)
			}
			if !matrix.Equal(rhs, a[i].Rhs(), 0) {
				t.Fatal("Rhs not deterministic")
			}
		}
	}
	if talls == 0 {
		t.Fatal("no tall requests drawn from a 50% tall mix")
	}
}

// TestMixHotKeysComposeWithTallShapes proves the hot-key skew machinery
// and rectangular shapes compose: hot draws cover both square and tall
// specs, and no tall spec can collide with a square one on the
// (Order, Cols, Seed) identity even when rows and seed agree.
func TestMixHotKeysComposeWithTallShapes(t *testing.T) {
	m := Mix{
		Entries: []MixEntry{{Order: 32, Weight: 1}, {Order: 32, Cols: 4, Weight: 1}},
		HotKeys: 6,
		HotProb: 0.5,
	}
	specs := m.Stream(3).Take(3000)
	hotSquare, hotTall := 0, 0
	for _, sp := range specs {
		if !sp.Hot {
			continue
		}
		if sp.Tall() {
			hotTall++
		} else {
			hotSquare++
		}
	}
	if hotSquare == 0 || hotTall == 0 {
		t.Fatalf("hot draws did not cover both shapes: square %d tall %d", hotSquare, hotTall)
	}
	// Same rows, same seed, different shape: distinct identities, so the
	// serving digests (which cover the shape header) can never collide.
	sq := RequestSpec{Order: 32, Seed: 99}
	tall := RequestSpec{Order: 32, Cols: 4, Seed: 99}
	if sq == tall {
		t.Fatal("square and tall specs share an identity")
	}
	a, b := sq.Build(), tall.Build()
	if a.Rows == b.Rows && a.Cols == b.Cols {
		t.Fatalf("shapes collide: %dx%d", a.Rows, a.Cols)
	}
}

func TestMixWithoutHotKeysUnchanged(t *testing.T) {
	for _, sp := range DefaultMix().Stream(1).Take(500) {
		if sp.Hot {
			t.Fatal("Hot spec from a mix with no hot keys")
		}
	}
}

func TestMutateRowsPerturbsExactlyK(t *testing.T) {
	base := DiagonallyDominant(32, 17)
	next := MutateRows(base, 4, 99)
	want := map[int]bool{}
	for _, r := range MutatedRows(32, 4, 99) {
		want[r] = true
	}
	changed := 0
	for i := 0; i < 32; i++ {
		diff := false
		for j := 0; j < 32; j++ {
			if base.At(i, j) != next.At(i, j) {
				diff = true
				break
			}
		}
		if diff {
			changed++
			if !want[i] {
				t.Fatalf("row %d changed but was not in MutatedRows", i)
			}
		}
	}
	if changed != 4 {
		t.Fatalf("%d rows changed, want 4", changed)
	}
	// Mutation preserves diagonal dominance (hence invertibility).
	for i := 0; i < 32; i++ {
		var off float64
		for j := 0; j < 32; j++ {
			if j != i {
				off += math.Abs(next.At(i, j))
			}
		}
		if math.Abs(next.At(i, i)) <= off {
			t.Fatalf("row %d lost diagonal dominance", i)
		}
	}
	// Deterministic, and the base is untouched.
	if !matrix.Equal(next, MutateRows(base, 4, 99), 0) {
		t.Fatal("same (base, k, seed) mutated differently")
	}
	if !matrix.Equal(base, DiagonallyDominant(32, 17), 0) {
		t.Fatal("MutateRows modified its input")
	}
	if !matrix.Equal(base, MutateRows(base, 0, 99), 0) {
		t.Fatal("k=0 mutation is not the identity")
	}
}

func TestMixDeltaStream(t *testing.T) {
	m := Mix{
		Entries:   []MixEntry{{Order: 24, Weight: 1}, {Order: 40, Weight: 1}},
		HotKeys:   3,
		HotProb:   0.3,
		DeltaProb: 0.4,
		DeltaRank: 2,
	}
	const n = 1000
	specs := m.Stream(8).Take(n)
	// Collect every plainly issued square base over the whole stream
	// first: a hot key may be delta-mutated before its own first plain
	// draw, but over 1000 requests each hot key is issued many times.
	bases := map[[2]int64]bool{}
	for _, sp := range specs {
		if !sp.Delta() && !sp.Tall() {
			bases[[2]int64{int64(sp.Order), sp.Seed}] = true
		}
	}
	deltas := 0
	for _, sp := range specs {
		if !sp.Delta() {
			continue
		}
		deltas++
		if sp.DeltaRank != 2 {
			t.Fatalf("delta rank %d, want 2", sp.DeltaRank)
		}
		if sp.Dup || sp.Hot {
			t.Fatalf("delta spec carries traffic markers: %+v", sp)
		}
		b := sp.Base()
		if b.Delta() {
			t.Fatal("Base() of a delta spec is still a delta")
		}
		if !bases[[2]int64{int64(b.Order), b.Seed}] {
			t.Fatalf("delta %+v derives from a base never issued", sp)
		}
		// The delta matrix differs from its base by exactly DeltaRank rows.
		got, want := sp.Build(), MutateRows(b.Build(), sp.DeltaRank, sp.DeltaSeed)
		if !matrix.Equal(got, want, 0) {
			t.Fatal("delta Build() does not match MutateRows of the base")
		}
	}
	frac := float64(deltas) / n
	if frac < 0.3 || frac > 0.5 {
		t.Fatalf("delta fraction %.3f, want ~0.4", frac)
	}
	// Determinism under the same seed.
	again := m.Stream(8).Take(n)
	for i := range specs {
		if specs[i] != again[i] {
			t.Fatalf("stream diverged at %d: %+v vs %+v", i, specs[i], again[i])
		}
	}
}

func TestMixDeltaRankClampedToBudget(t *testing.T) {
	m := Mix{
		Entries:   []MixEntry{{Order: 16, Weight: 1}},
		HotKeys:   1,
		HotProb:   0.2,
		DeltaProb: 0.5,
		DeltaRank: 32, // far beyond 16/4
	}
	for _, sp := range m.Stream(3).Take(200) {
		if sp.Delta() && sp.DeltaRank != 4 {
			t.Fatalf("delta rank %d not clamped to order/4", sp.DeltaRank)
		}
	}
}

func TestMixZeroDeltaProbUnchangedStream(t *testing.T) {
	// DeltaProb 0 must not consume rng draws: streams are byte-identical
	// to pre-delta ones, so recorded benchmark seeds stay comparable.
	base := Mix{Entries: []MixEntry{{Order: 16, Weight: 1}}, DupProb: 0.3}
	withField := base
	withField.DeltaRank = 5 // rank without probability is inert
	a, b := base.Stream(4).Take(100), withField.Stream(4).Take(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("inert delta config changed the stream at %d", i)
		}
	}
}
