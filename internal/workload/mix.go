package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/matrix"
)

// This file generates serving workloads: streams of inversion requests
// with a weighted size distribution and a controlled duplicate rate, the
// knobs that exercise a serving layer's admission, dedup, and cache
// paths. Streams are deterministic under a seed so a benchmark run is
// reproducible request-for-request.

// RequestSpec describes one generated request: a matrix identified by
// (Order, Cols, Seed). Two specs with equal fields materialize
// bit-identical matrices, which is what makes duplicates dedupable
// server-side.
type RequestSpec struct {
	// Order is the row count; Cols is the column count, with 0 meaning
	// square (an inversion request). Cols > 0 marks a tall least-squares
	// request of shape Order x Cols.
	Order int
	Cols  int
	Seed  int64
	// Dup marks specs that were drawn from the duplicate history rather
	// than freshly generated.
	Dup bool
	// Hot marks specs drawn from the mix's fixed hot-key set (skewed
	// traffic); hot draws are also duplicates by construction.
	Hot bool
	// DeltaRank, when > 0, marks an update request: the matrix is the
	// (Order, Seed) base with DeltaRank rows perturbed under DeltaSeed
	// (see MutateRows). The base spec — and hence its serving digest —
	// is recoverable via Base(), which is what lets a delta-aware client
	// attach an X-Base-Digest hint.
	DeltaRank int
	DeltaSeed int64
}

// Delta reports whether the spec is a mutated-base (update) request.
func (r RequestSpec) Delta() bool { return r.DeltaRank > 0 }

// Base returns the unmutated spec a delta request derives from; for
// non-delta specs it returns the spec itself with traffic markers
// cleared.
func (r RequestSpec) Base() RequestSpec {
	r.DeltaRank, r.DeltaSeed = 0, 0
	r.Dup, r.Hot = false, false
	return r
}

// Tall reports whether the spec is a rectangular (least-squares) request.
func (r RequestSpec) Tall() bool { return r.Cols > 0 && r.Cols != r.Order }

// Build materializes the request's matrix. Square specs are diagonally
// dominant, hence guaranteed invertible and well conditioned at serving
// scale; tall specs draw i.i.d. Uniform(-1,1) entries, which are
// full-rank and well conditioned with overwhelming probability at these
// aspect ratios.
func (r RequestSpec) Build() *matrix.Dense {
	if r.Tall() {
		return RandomRect(r.Order, r.Cols, r.Seed)
	}
	base := DiagonallyDominant(r.Order, r.Seed)
	if r.Delta() {
		return MutateRows(base, r.DeltaRank, r.DeltaSeed)
	}
	return base
}

// Rhs materializes the right-hand side paired with a tall spec's matrix:
// an Order x 1 vector drawn from a seed offset so it never aliases the
// matrix stream. Equal specs yield equal right-hand sides, preserving
// digest-level deduplication for /lstsq traffic.
func (r RequestSpec) Rhs() *matrix.Dense {
	return RandomRect(r.Order, 1, r.Seed^0x5eed51de)
}

// MixEntry weights one matrix shape in a request mix: Order rows by Cols
// columns, with Cols = 0 meaning square.
type MixEntry struct {
	Order  int
	Cols   int
	Weight float64
}

// Mix is a request-mix distribution: weighted matrix sizes plus a
// duplicate probability. With probability DupProb a request repeats one of
// the previous History requests (same order and seed); otherwise it draws
// a fresh seed.
type Mix struct {
	Entries []MixEntry
	DupProb float64
	History int // duplicate look-back window; default 8
	// HotKeys, when > 0, carves out a fixed set of that many matrices
	// drawn once at stream start; each request is one of them with
	// probability HotProb. This is the skewed "hot key" traffic shape:
	// a handful of matrices dominating the stream, concentrating load on
	// their digest-home shards in a federated deployment.
	HotKeys int
	HotProb float64
	// DeltaProb, when > 0, makes each request a delta mutation with that
	// probability: a previously issued square matrix (hot keys first,
	// falling back to the recent window) perturbed on DeltaRank rows.
	// This is the update-traffic shape the incremental inversion path
	// serves: the base inverse is already cached, the mutated matrix is
	// a rank-k row delta away.
	DeltaProb float64
	// DeltaRank is the number of rows each delta mutation perturbs;
	// 0 means 1. Ranks are clamped to a quarter of the base order, the
	// serving layer's own update budget.
	DeltaRank int
}

// DefaultMix is a serving-scale mix: mostly small matrices with a heavy
// tail, one request in four repeating recent work.
func DefaultMix() Mix {
	return Mix{
		Entries: []MixEntry{{Order: 24, Weight: 0.5}, {Order: 40, Weight: 0.3}, {Order: 64, Weight: 0.2}},
		DupProb: 0.25,
		History: 8,
	}
}

// ParseMix parses "shape:weight,shape:weight,...", where shape is either
// a square order ("64") or an explicit rowsxcols pair ("512x8") for tall
// least-squares entries — e.g. "32:5,64:3,512x8:2". Weights need not sum
// to 1; they are normalized on use.
func ParseMix(s string) ([]MixEntry, error) {
	var out []MixEntry
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ow := strings.SplitN(part, ":", 2)
		if len(ow) != 2 {
			return nil, fmt.Errorf("workload: mix entry %q: want shape:weight", part)
		}
		shape := strings.TrimSpace(ow[0])
		var order, cols int
		var err error
		if rc := strings.SplitN(shape, "x", 2); len(rc) == 2 {
			order, err = strconv.Atoi(strings.TrimSpace(rc[0]))
			if err != nil || order < 1 {
				return nil, fmt.Errorf("workload: mix entry %q: bad rows", part)
			}
			cols, err = strconv.Atoi(strings.TrimSpace(rc[1]))
			if err != nil || cols < 1 {
				return nil, fmt.Errorf("workload: mix entry %q: bad cols", part)
			}
			if cols > order {
				return nil, fmt.Errorf("workload: mix entry %q: wide shapes (cols > rows) are not servable", part)
			}
			if cols == order {
				cols = 0 // normalize: an n x n entry is the square entry
			}
		} else {
			order, err = strconv.Atoi(shape)
			if err != nil || order < 1 {
				return nil, fmt.Errorf("workload: mix entry %q: bad order", part)
			}
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(ow[1]), 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("workload: mix entry %q: bad weight", part)
		}
		out = append(out, MixEntry{Order: order, Cols: cols, Weight: w})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload: empty mix %q", s)
	}
	return out, nil
}

// MixStream draws a deterministic sequence of RequestSpecs from a Mix.
type MixStream struct {
	mix    Mix
	rng    *rand.Rand
	cum    []float64 // cumulative normalized weights, aligned with Entries
	recent []RequestSpec
	hot    []RequestSpec
}

// Stream starts a request stream; equal (mix, seed) pairs yield equal
// request sequences.
func (m Mix) Stream(seed int64) *MixStream {
	if m.History <= 0 {
		m.History = 8
	}
	if len(m.Entries) == 0 {
		m.Entries = DefaultMix().Entries
	}
	// Sort by shape so the cumulative table (and hence the stream) does
	// not depend on caller-side entry ordering of the same distribution.
	entries := append([]MixEntry(nil), m.Entries...)
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Order != entries[j].Order {
			return entries[i].Order < entries[j].Order
		}
		return entries[i].Cols < entries[j].Cols
	})
	m.Entries = entries
	var total float64
	for _, e := range m.Entries {
		total += e.Weight
	}
	cum := make([]float64, len(m.Entries))
	acc := 0.0
	for i, e := range m.Entries {
		acc += e.Weight / total
		cum[i] = acc
	}
	st := &MixStream{mix: m, rng: rand.New(rand.NewSource(seed)), cum: cum}
	// The hot-key set is drawn first so it is a pure function of
	// (mix, seed) and does not shift as the stream advances.
	for i := 0; i < m.HotKeys; i++ {
		order, cols := st.drawShape()
		st.hot = append(st.hot, RequestSpec{
			Order: order, Cols: cols, Seed: st.rng.Int63(), Hot: true, Dup: true,
		})
	}
	return st
}

// drawShape samples one matrix shape from the weighted distribution;
// cols is 0 for square entries.
func (st *MixStream) drawShape() (order, cols int) {
	u := st.rng.Float64()
	last := st.mix.Entries[len(st.mix.Entries)-1]
	order, cols = last.Order, last.Cols
	for i, c := range st.cum {
		if u <= c {
			order, cols = st.mix.Entries[i].Order, st.mix.Entries[i].Cols
			break
		}
	}
	return order, cols
}

// nextDelta draws a delta-mutation request derived from an already
// issued square spec, preferring the hot set (whose bases the server has
// almost certainly inverted and cached) over the recent window. It
// reports false when no square base exists yet.
func (st *MixStream) nextDelta() (RequestSpec, bool) {
	cands := squareSpecs(st.hot)
	if len(cands) == 0 {
		cands = squareSpecs(st.recent)
	}
	if len(cands) == 0 {
		return RequestSpec{}, false
	}
	base := cands[st.rng.Intn(len(cands))]
	k := st.mix.DeltaRank
	if k <= 0 {
		k = 1
	}
	if budget := base.Order / 4; budget >= 1 && k > budget {
		k = budget
	}
	spec := base.Base()
	spec.DeltaRank = k
	spec.DeltaSeed = st.rng.Int63()
	return spec, true
}

func squareSpecs(specs []RequestSpec) []RequestSpec {
	var out []RequestSpec
	for _, sp := range specs {
		if !sp.Tall() {
			out = append(out, sp)
		}
	}
	return out
}

// Next draws the next request of the stream.
func (st *MixStream) Next() RequestSpec {
	// The delta branch draws from the rng only when enabled, so streams
	// with DeltaProb 0 are byte-identical to pre-delta streams.
	if st.mix.DeltaProb > 0 && st.rng.Float64() < st.mix.DeltaProb {
		if spec, ok := st.nextDelta(); ok {
			return spec
		}
	}
	if len(st.hot) > 0 && st.rng.Float64() < st.mix.HotProb {
		return st.hot[st.rng.Intn(len(st.hot))]
	}
	if len(st.recent) > 0 && st.rng.Float64() < st.mix.DupProb {
		spec := st.recent[st.rng.Intn(len(st.recent))]
		spec.Dup = true
		return spec
	}
	order, cols := st.drawShape()
	spec := RequestSpec{Order: order, Cols: cols, Seed: st.rng.Int63()}
	st.recent = append(st.recent, spec)
	if len(st.recent) > st.mix.History {
		st.recent = st.recent[1:]
	}
	return spec
}

// Take draws the next n requests.
func (st *MixStream) Take(n int) []RequestSpec {
	out := make([]RequestSpec, n)
	for i := range out {
		out[i] = st.Next()
	}
	return out
}
