package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/matrix"
)

// This file generates serving workloads: streams of inversion requests
// with a weighted size distribution and a controlled duplicate rate, the
// knobs that exercise a serving layer's admission, dedup, and cache
// paths. Streams are deterministic under a seed so a benchmark run is
// reproducible request-for-request.

// RequestSpec describes one generated request: a matrix identified by
// (Order, Seed). Two specs with equal fields materialize bit-identical
// matrices, which is what makes duplicates dedupable server-side.
type RequestSpec struct {
	Order int
	Seed  int64
	// Dup marks specs that were drawn from the duplicate history rather
	// than freshly generated.
	Dup bool
	// Hot marks specs drawn from the mix's fixed hot-key set (skewed
	// traffic); hot draws are also duplicates by construction.
	Hot bool
}

// Build materializes the request's matrix: diagonally dominant, hence
// guaranteed invertible and well conditioned at serving scale.
func (r RequestSpec) Build() *matrix.Dense {
	return DiagonallyDominant(r.Order, r.Seed)
}

// MixEntry weights one matrix order in a request mix.
type MixEntry struct {
	Order  int
	Weight float64
}

// Mix is a request-mix distribution: weighted matrix sizes plus a
// duplicate probability. With probability DupProb a request repeats one of
// the previous History requests (same order and seed); otherwise it draws
// a fresh seed.
type Mix struct {
	Entries []MixEntry
	DupProb float64
	History int // duplicate look-back window; default 8
	// HotKeys, when > 0, carves out a fixed set of that many matrices
	// drawn once at stream start; each request is one of them with
	// probability HotProb. This is the skewed "hot key" traffic shape:
	// a handful of matrices dominating the stream, concentrating load on
	// their digest-home shards in a federated deployment.
	HotKeys int
	HotProb float64
}

// DefaultMix is a serving-scale mix: mostly small matrices with a heavy
// tail, one request in four repeating recent work.
func DefaultMix() Mix {
	return Mix{
		Entries: []MixEntry{{Order: 24, Weight: 0.5}, {Order: 40, Weight: 0.3}, {Order: 64, Weight: 0.2}},
		DupProb: 0.25,
		History: 8,
	}
}

// ParseMix parses "order:weight,order:weight,..." (e.g. "32:5,64:3,128:2").
// Weights need not sum to 1; they are normalized on use.
func ParseMix(s string) ([]MixEntry, error) {
	var out []MixEntry
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ow := strings.SplitN(part, ":", 2)
		if len(ow) != 2 {
			return nil, fmt.Errorf("workload: mix entry %q: want order:weight", part)
		}
		order, err := strconv.Atoi(strings.TrimSpace(ow[0]))
		if err != nil || order < 1 {
			return nil, fmt.Errorf("workload: mix entry %q: bad order", part)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(ow[1]), 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("workload: mix entry %q: bad weight", part)
		}
		out = append(out, MixEntry{Order: order, Weight: w})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload: empty mix %q", s)
	}
	return out, nil
}

// MixStream draws a deterministic sequence of RequestSpecs from a Mix.
type MixStream struct {
	mix    Mix
	rng    *rand.Rand
	cum    []float64 // cumulative normalized weights, aligned with Entries
	recent []RequestSpec
	hot    []RequestSpec
}

// Stream starts a request stream; equal (mix, seed) pairs yield equal
// request sequences.
func (m Mix) Stream(seed int64) *MixStream {
	if m.History <= 0 {
		m.History = 8
	}
	if len(m.Entries) == 0 {
		m.Entries = DefaultMix().Entries
	}
	// Sort by order so the cumulative table (and hence the stream) does
	// not depend on caller-side entry ordering of the same distribution.
	entries := append([]MixEntry(nil), m.Entries...)
	sort.Slice(entries, func(i, j int) bool { return entries[i].Order < entries[j].Order })
	m.Entries = entries
	var total float64
	for _, e := range m.Entries {
		total += e.Weight
	}
	cum := make([]float64, len(m.Entries))
	acc := 0.0
	for i, e := range m.Entries {
		acc += e.Weight / total
		cum[i] = acc
	}
	st := &MixStream{mix: m, rng: rand.New(rand.NewSource(seed)), cum: cum}
	// The hot-key set is drawn first so it is a pure function of
	// (mix, seed) and does not shift as the stream advances.
	for i := 0; i < m.HotKeys; i++ {
		st.hot = append(st.hot, RequestSpec{
			Order: st.drawOrder(), Seed: st.rng.Int63(), Hot: true, Dup: true,
		})
	}
	return st
}

// drawOrder samples one matrix order from the weighted size distribution.
func (st *MixStream) drawOrder() int {
	u := st.rng.Float64()
	order := st.mix.Entries[len(st.mix.Entries)-1].Order
	for i, c := range st.cum {
		if u <= c {
			order = st.mix.Entries[i].Order
			break
		}
	}
	return order
}

// Next draws the next request of the stream.
func (st *MixStream) Next() RequestSpec {
	if len(st.hot) > 0 && st.rng.Float64() < st.mix.HotProb {
		return st.hot[st.rng.Intn(len(st.hot))]
	}
	if len(st.recent) > 0 && st.rng.Float64() < st.mix.DupProb {
		spec := st.recent[st.rng.Intn(len(st.recent))]
		spec.Dup = true
		return spec
	}
	spec := RequestSpec{Order: st.drawOrder(), Seed: st.rng.Int63()}
	st.recent = append(st.recent, spec)
	if len(st.recent) > st.mix.History {
		st.recent = st.recent[1:]
	}
	return spec
}

// Take draws the next n requests.
func (st *MixStream) Take(n int) []RequestSpec {
	out := make([]RequestSpec, n)
	for i := range out {
		out[i] = st.Next()
	}
	return out
}
