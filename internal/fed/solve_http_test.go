package fed

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/matrix"
	"repro/internal/tsqr"
	"repro/internal/workload"
)

func postSolve(t *testing.T, client *http.Client, url string, a, b *matrix.Dense) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if err := matrix.WriteBinary(&buf, a); err != nil {
		t.Fatal(err)
	}
	if b != nil {
		if err := matrix.WriteBinary(&buf, b); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := client.Post(url, "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestFleetLstsqEndToEnd is the federated acceptance path: a 4-shard
// fleet serves /lstsq with the solution matching the sequential
// reference, the repeated digest routes to the same home shard and hits
// its cache, and /pinv rides the same ring.
func TestFleetLstsqEndToEnd(t *testing.T) {
	f := mustFleet(t, Config{Shards: 4, Shard: shardConfig()})
	ts := httptest.NewServer(NewHandler(f))
	defer ts.Close()
	client := ts.Client()

	a := workload.RandomRect(192, 6, 1201)
	b := workload.RandomRect(192, 1, 1202)
	resp := postSolve(t, client, ts.URL+"/lstsq", a, b)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lstsq status %d", resp.StatusCode)
	}
	firstShard := resp.Header.Get("X-Shard")
	if firstShard == "" || resp.Header.Get("X-Fed-Route") != "home" {
		t.Fatalf("routing headers: X-Shard=%q X-Fed-Route=%q",
			firstShard, resp.Header.Get("X-Fed-Route"))
	}
	x, err := matrix.ReadBinary(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := tsqr.SequentialLstsq(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(x, ref); d > 1e-8 {
		t.Fatalf("|x - x_seq| = %g, want <= 1e-8", d)
	}

	// The duplicate solve must land on the same home shard and hit its
	// cache — digest routing covers the solve kinds too.
	resp = postSolve(t, client, ts.URL+"/lstsq", a, b)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Shard"); got != firstShard {
		t.Fatalf("duplicate served by shard %s, first by %s", got, firstShard)
	}
	if src := resp.Header.Get("X-Source"); src != "cache" {
		t.Fatalf("duplicate X-Source = %q", src)
	}
	resp.Body.Close()

	// /pinv on the same A is a different digest (kind discriminator), but
	// equally servable through the ring.
	resp = postSolve(t, client, ts.URL+"/pinv", a, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pinv status %d", resp.StatusCode)
	}
	pinv, err := matrix.ReadBinary(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	pa, err := matrix.Mul(pinv, a)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(pa, matrix.Identity(6)); d > 1e-8 {
		t.Fatalf("|A+ A - I| = %g", d)
	}

	// Error mapping passes through the fed layer: wide input -> 422.
	resp = postSolve(t, client, ts.URL+"/lstsq",
		workload.RandomRect(3, 9, 1), workload.RandomRect(3, 1, 2))
	var msg bytes.Buffer
	msg.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("wide via fed: status %d body %q", resp.StatusCode, msg.String())
	}
	if !strings.Contains(msg.String(), "3x9") {
		t.Fatalf("wide error %q lacks shape", msg.String())
	}
}
