package fed

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"repro/internal/chaos"
	"repro/internal/matrix"
	"repro/internal/serve"
	"repro/internal/workload"
)

// The §7.4 drill, one level up: one shard of the fleet loses nodes
// mid-load while concurrent requests keep arriving. Every request must
// either recover in place (task re-execution + DFS re-replication inside
// the shard) or route elsewhere — and every returned inverse must be
// bit-identical to the fault-free answer. Zero wrong answers, zero
// failures.
func TestFleetSurvivesShardChaosBitIdentical(t *testing.T) {
	const shards = 2

	// Fault-free reference fleet: same shard shape, no chaos. Digest
	// routing is deterministic, so request i runs under identical pipeline
	// options in both fleets and must produce identical bits.
	clean := mustFleet(t, Config{Shards: shards, Shard: shardConfig()})

	sc := shardConfig()
	sc.Chaos = &chaos.Plan{
		Seed: 17,
		Events: []chaos.Event{
			{Tick: 5, Kind: chaos.Kill, On: chaos.OnAttempt, Node: chaos.VictimCurrent},
			{Tick: 40, Kind: chaos.Kill, On: chaos.OnAttempt, Node: chaos.VictimCurrent},
			{Tick: 70, Kind: chaos.Restart, On: chaos.OnAny, Node: chaos.VictimOldestDead},
		},
	}
	faulty := mustFleet(t, Config{Shards: shards, Shard: sc, ChaosShard: 0})

	// A duplicate-heavy request set: half the orders repeat so the dedup
	// and cache paths run under chaos too.
	specs := []struct {
		order int
		seed  int64
	}{
		{40, 1}, {48, 2}, {40, 1}, {56, 3}, {48, 2}, {40, 4},
		{64, 5}, {40, 1}, {56, 3}, {48, 6},
	}

	ctx := context.Background()
	want := make([]*matrix.Dense, len(specs))
	for i, sp := range specs {
		a := workload.DiagonallyDominant(sp.order, sp.seed)
		res, err := clean.Do(ctx, Request{Request: serve.Request{A: a}})
		if err != nil {
			t.Fatalf("reference request %d: %v", i, err)
		}
		want[i] = res.Out
	}

	var wg sync.WaitGroup
	got := make([]*matrix.Dense, len(specs))
	errs := make([]error, len(specs))
	for i, sp := range specs {
		wg.Add(1)
		go func(i int, order int, seed int64) {
			defer wg.Done()
			a := workload.DiagonallyDominant(order, seed)
			res, err := faulty.Do(ctx, Request{Request: serve.Request{A: a}})
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = res.Out
		}(i, sp.order, sp.seed)
	}
	wg.Wait()

	for i := range specs {
		if errs[i] != nil {
			t.Fatalf("request %d failed under shard chaos: %v", i, errs[i])
		}
		if !bitIdentical(want[i], got[i]) {
			t.Fatalf("request %d: inverse under chaos differs from fault-free bits", i)
		}
	}

	// The drill must actually have hurt something: the chaos shard's
	// engine injected kills.
	st := faulty.Snapshot()
	cs := st.Shards[0].Serve.Chaos
	if cs == nil || cs.Kills == 0 {
		t.Fatalf("chaos shard injected no kills: %+v", cs)
	}
	if st.Failed != 0 {
		t.Fatalf("fleet reported %d failed requests", st.Failed)
	}
}

func bitIdentical(a, b *matrix.Dense) bool {
	if a == nil || b == nil || a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	ab, bb := new(bytes.Buffer), new(bytes.Buffer)
	if err := matrix.WriteBinary(ab, a); err != nil {
		return false
	}
	if err := matrix.WriteBinary(bb, b); err != nil {
		return false
	}
	return bytes.Equal(ab.Bytes(), bb.Bytes())
}
