package fed

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ErrTenantQuota reports that a tenant has exhausted its in-flight
// admission quota; the caller should back off and retry (HTTP 429).
var ErrTenantQuota = errors.New("fed: tenant quota exhausted")

// ErrUnknownTenant reports a tenant not present in the fleet's tenant
// table when the table has no "*" default class (HTTP 403).
var ErrUnknownTenant = errors.New("fed: unknown tenant")

// DefaultTenant is the accounting identity for requests that carry no
// tenant at all.
const DefaultTenant = "default"

// TenantSpec is one tenant's admission contract: Quota bounds how many
// of its requests may be in flight across the whole fleet at once
// (<= 0 means unlimited), and Priority is the QoS class mapped onto the
// fair-share scheduler — when nonzero it overrides whatever priority the
// request itself claims, so a tenant cannot self-promote past its class.
type TenantSpec struct {
	Quota    int `json:"quota"`
	Priority int `json:"priority"`
}

// ParseTenants parses a tenant table from "name=quota:priority,..."
// (e.g. "gold=16:5,free=4:0,*=2:0"). The ":priority" part is optional
// and defaults to 0. The "*" entry is the class applied to tenants not
// named; without it, unknown tenants are rejected with ErrUnknownTenant.
// An empty spec yields a nil table: every tenant unlimited at priority 0.
func ParseTenants(s string) (map[string]TenantSpec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	out := make(map[string]TenantSpec)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		nv := strings.SplitN(part, "=", 2)
		if len(nv) != 2 || strings.TrimSpace(nv[0]) == "" {
			return nil, fmt.Errorf("fed: tenant entry %q: want name=quota[:priority]", part)
		}
		name := strings.TrimSpace(nv[0])
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("fed: tenant %q listed twice", name)
		}
		qp := strings.SplitN(nv[1], ":", 2)
		quota, err := strconv.Atoi(strings.TrimSpace(qp[0]))
		if err != nil {
			return nil, fmt.Errorf("fed: tenant %q: bad quota %q", name, qp[0])
		}
		spec := TenantSpec{Quota: quota}
		if len(qp) == 2 {
			if spec.Priority, err = strconv.Atoi(strings.TrimSpace(qp[1])); err != nil {
				return nil, fmt.Errorf("fed: tenant %q: bad priority %q", name, qp[1])
			}
		}
		out[name] = spec
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("fed: empty tenant spec %q", s)
	}
	return out, nil
}

// tenants is the runtime tenant-admission state: per-tenant in-flight
// counts checked against quotas, plus the counters surfaced in /statz.
type tenants struct {
	specs map[string]TenantSpec // nil = everything unlimited

	mu    sync.Mutex
	state map[string]*tenantState
}

type tenantState struct {
	spec      TenantSpec
	inflight  int
	requests  int64
	rejected  int64
	spills    int64
	completed int64
	failed    int64
}

func newTenants(specs map[string]TenantSpec) *tenants {
	return &tenants{specs: specs, state: make(map[string]*tenantState)}
}

// lookup resolves a tenant name to its runtime state, falling back to the
// "*" class for unnamed tenants. Must be called with t.mu held.
func (t *tenants) lookup(name string) (*tenantState, error) {
	if st, ok := t.state[name]; ok {
		return st, nil
	}
	spec, ok := t.specs[name]
	if !ok {
		if t.specs == nil {
			spec = TenantSpec{} // unlimited, priority 0
		} else if def, hasDef := t.specs["*"]; hasDef {
			spec = def
		} else {
			return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
		}
	}
	st := &tenantState{spec: spec}
	t.state[name] = st
	return st, nil
}

// acquire admits one request for the tenant, returning the effective
// fair-share priority for it (the tenant's QoS class when nonzero, the
// request's own claim otherwise) and a release closure that records the
// outcome. reqPriority is the priority the request asked for itself.
func (t *tenants) acquire(name string, reqPriority int) (priority int, release func(ok bool), err error) {
	if name == "" {
		name = DefaultTenant
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st, err := t.lookup(name)
	if err != nil {
		return 0, nil, err
	}
	st.requests++
	if st.spec.Quota > 0 && st.inflight >= st.spec.Quota {
		st.rejected++
		return 0, nil, fmt.Errorf("%w: %q at %d in flight", ErrTenantQuota, name, st.inflight)
	}
	st.inflight++
	priority = reqPriority
	if st.spec.Priority != 0 {
		priority = st.spec.Priority
	}
	release = func(ok bool) {
		t.mu.Lock()
		defer t.mu.Unlock()
		st.inflight--
		if ok {
			st.completed++
		} else {
			st.failed++
		}
	}
	return priority, release, nil
}

// noteSpill records that one of the tenant's requests left its home
// shard.
func (t *tenants) noteSpill(name string) {
	if name == "" {
		name = DefaultTenant
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if st, ok := t.state[name]; ok {
		st.spills++
	}
}

// TenantStats is one tenant's /statz row.
type TenantStats struct {
	Name      string `json:"name"`
	Quota     int    `json:"quota"`
	Priority  int    `json:"priority"`
	Inflight  int    `json:"inflight"`
	Requests  int64  `json:"requests"`
	Rejected  int64  `json:"rejected"`
	Spills    int64  `json:"spills"`
	Completed int64  `json:"completed"`
	Failed    int64  `json:"failed"`
}

// stats snapshots every tenant seen so far, sorted by name.
func (t *tenants) stats() []TenantStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TenantStats, 0, len(t.state))
	for name, st := range t.state {
		out = append(out, TenantStats{
			Name: name, Quota: st.spec.Quota, Priority: st.spec.Priority,
			Inflight: st.inflight, Requests: st.requests, Rejected: st.rejected,
			Spills: st.spills, Completed: st.completed, Failed: st.failed,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
