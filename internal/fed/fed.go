// Package fed is the federated serving tier: it runs N independent
// cluster shards — each a full serve.Server with its own simulated DFS,
// slot scheduler, singleflight table, and LRU result cache — behind a
// consistent-hash ring keyed by the request digest. Identical and
// duplicate matrices therefore always land on the same shard, so the
// dedup and cache wins the single-server layer earns stay shard-local
// instead of being diluted across the fleet.
//
// On top of placement the router owns fleet-level admission:
//
//   - tenancy: each request carries a tenant ID; the tenant table maps it
//     to a QoS class (a fair-share Priority the request cannot exceed)
//     and an in-flight quota enforced before any shard is touched;
//   - overflow spill: when a request's home shard reports a saturated
//     admission queue (or is unhealthy — draining, or all datanodes
//     dead under chaos), the router forfeits cache locality and sends
//     the request to the least-loaded live shard instead of returning
//     429. Spills are counted per tenant and fleet-wide (fed.spill).
//
// The paper scales one inversion across one cluster; this layer is the
// step the ROADMAP calls the "millions of users" architecture — routing
// each request to the right cluster so the fleet behaves like one big
// cache-coherent service.
package fed

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
)

// ErrNoShard reports that no live shard could take the request: the home
// shard is down and every other shard is unhealthy too (HTTP 503).
var ErrNoShard = errors.New("fed: no live shard available")

// Routing policies.
const (
	// RouteDigest places each request on its digest's home shard
	// (consistent hashing) — the default, and the policy that keeps
	// caches hot.
	RouteDigest = "digest"
	// RouteRandom scatters requests uniformly — the locality-free
	// baseline the EXPERIMENTS fleet runs compare against.
	RouteRandom = "random"
)

// Config sizes the fleet.
type Config struct {
	// Shards is the number of independent cluster shards; default 1.
	Shards int
	// VNodes is the consistent-hash virtual-node count per shard;
	// default DefaultVNodes.
	VNodes int
	// Route selects the placement policy: RouteDigest (default) or
	// RouteRandom.
	Route string
	// Seed drives RouteRandom placement; fixed seed, fixed scatter.
	Seed int64
	// Tenants is the admission table (see ParseTenants); nil admits every
	// tenant unlimited at priority 0.
	Tenants map[string]TenantSpec
	// Shard is the per-shard serve configuration template. Its Metrics
	// field is ignored: every shard gets its own registry so /statz can
	// tell them apart. Its Chaos plan, when set, is applied only to shard
	// ChaosShard — the fleet-level failure drill is "one shard degrades,
	// the rest absorb".
	Shard serve.Config
	// ChaosShard picks which shard runs under Shard.Chaos; default 0.
	ChaosShard int
	// Metrics receives the fleet-level fed.* counters; one is created
	// when nil.
	Metrics *obs.Registry
}

// Request is one federated inversion: the serving request plus the
// tenant it bills to.
type Request struct {
	serve.Request
	Tenant string
}

// Result is a completed federated inversion.
type Result struct {
	*serve.Result
	// Shard is the shard that served the request; Home is the shard the
	// ring assigned. They differ exactly when the request spilled.
	Shard int `json:"shard"`
	Home  int `json:"home"`
	// Route tells how placement went: "home" (digest-owned shard),
	// "spill" (home saturated or down, rerouted to the least-loaded live
	// shard), or "random" (RouteRandom policy).
	Route string `json:"route"`
}

// Fleet routes requests across the shard set.
type Fleet struct {
	cfg     Config
	shards  []*serve.Server
	ring    *Ring
	tenants *tenants
	met     *obs.Registry
	base    core.Options

	mu  sync.Mutex // guards rng
	rng *rand.Rand
}

// New builds the fleet and starts every shard. Callers must Drain (or
// Close) it when done.
func New(cfg Config) (*Fleet, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	switch cfg.Route {
	case "":
		cfg.Route = RouteDigest
	case RouteDigest, RouteRandom:
	default:
		return nil, fmt.Errorf("fed: unknown route policy %q", cfg.Route)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	f := &Fleet{
		cfg:     cfg,
		ring:    NewRing(cfg.VNodes),
		tenants: newTenants(cfg.Tenants),
		met:     cfg.Metrics,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	chaosPlan := cfg.Shard.Chaos
	for i := 0; i < cfg.Shards; i++ {
		sc := cfg.Shard
		sc.Metrics = nil // one registry per shard
		sc.Chaos = nil
		if chaosPlan != nil && i == cfg.ChaosShard {
			sc.Chaos = chaosPlan
		}
		s, err := serve.New(sc)
		if err != nil {
			for _, prev := range f.shards {
				prev.Close()
			}
			return nil, err
		}
		f.shards = append(f.shards, s)
		f.ring.Add(i)
	}
	f.base = f.shards[0].BaseOptions()
	return f, nil
}

// NumShards returns the fleet size.
func (f *Fleet) NumShards() int { return len(f.shards) }

// Shard returns shard i's server (tests and /statz aggregation).
func (f *Fleet) Shard(i int) *serve.Server { return f.shards[i] }

// Ring returns the placement ring.
func (f *Fleet) Ring() *Ring { return f.ring }

// Metrics returns the fleet-level registry (fed.* counters only; each
// shard keeps its own).
func (f *Fleet) Metrics() *obs.Registry { return f.met }

// Home computes the digest and home shard the ring assigns to a request,
// without admitting it — the same digest serve.Server.Do will use for
// dedup and caching on that shard. A request carrying an X-Base-Digest
// hint is placed by that base digest instead of its own: a mutated
// matrix hashes nowhere near its base, so without the hint the delta
// probe would land on a shard whose index has never seen the base.
// Routing by the base digest keeps mutation chains shard-local while
// dedup and caching still use the request's own digest.
func (f *Fleet) Home(req Request) (digest string, shard int) {
	digest = serve.KeyFor(req.Request, f.base)
	key := digest
	if req.BaseDigest != "" {
		key = req.BaseDigest
	}
	return digest, f.ring.Owner(key)
}

// Do routes one request through the federation lifecycle: tenant
// admission, ring placement, saturation probe with overflow spill, and
// execution on the chosen shard. It is safe for concurrent use.
func (f *Fleet) Do(ctx context.Context, req Request) (*Result, error) {
	f.met.Counter("fed.requests").Add(1)
	prio, release, err := f.tenants.acquire(req.Tenant, req.Priority)
	if err != nil {
		f.met.Counter("fed.tenant_rejected").Add(1)
		return nil, err
	}
	req.Priority = prio

	_, home := f.Home(req)
	if req.BaseDigest != "" {
		f.met.Counter("fed.base_routed").Add(1)
	}
	target, route := home, "home"
	if f.cfg.Route == RouteRandom {
		f.mu.Lock()
		target = f.rng.Intn(len(f.shards))
		f.mu.Unlock()
		route = "random"
	} else if !f.healthyAndOpen(home) {
		if alt, ok := f.leastLoaded(home); ok {
			target, route = alt, "spill"
		} else if !f.shards[home].Healthy() {
			// Home is down and there is nowhere live to go.
			release(false)
			f.met.Counter("fed.no_shard").Add(1)
			return nil, ErrNoShard
		}
		// Every alternative is saturated too: stay home and let its
		// admission queue arbitrate (a 429 surfaces honestly).
	}

	res, err := f.shards[target].Do(ctx, req.Request)
	if errors.Is(err, serve.ErrOverloaded) && route == "home" {
		// Lost the race for home's last queue slot; spill late.
		if alt, ok := f.leastLoaded(target); ok {
			target, route = alt, "spill"
			res, err = f.shards[target].Do(ctx, req.Request)
		}
	}
	if route == "spill" {
		f.met.Counter("fed.spill").Add(1)
		f.tenants.noteSpill(req.Tenant)
	} else {
		//mrlint:allow obsnames -- route is the closed enum home/random/spill
		f.met.Counter("fed." + route).Add(1)
	}
	//mrlint:allow obsnames -- one counter per shard, fixed at fleet construction; dashboards enumerate shards deliberately
	f.met.Counter(fmt.Sprintf("fed.shard.%d.requests", target)).Add(1)
	release(err == nil)
	if err != nil {
		f.met.Counter("fed.failed").Add(1)
		return nil, err
	}
	return &Result{Result: res, Shard: target, Home: home, Route: route}, nil
}

// healthyAndOpen reports whether shard i can take one more request
// without rejecting: live, not draining, and admission queue not full.
func (f *Fleet) healthyAndOpen(i int) bool {
	if !f.shards[i].Healthy() {
		return false
	}
	depth, capacity := f.shards[i].QueueLoad()
	return depth < capacity
}

// leastLoaded picks the spill target: the healthy, unsaturated shard
// (excluding exclude) with the shallowest admission queue, ties to the
// lowest index. ok is false when no such shard exists.
func (f *Fleet) leastLoaded(exclude int) (int, bool) {
	best, bestDepth, ok := 0, 0, false
	for i := range f.shards {
		if i == exclude || !f.shards[i].Healthy() {
			continue
		}
		depth, capacity := f.shards[i].QueueLoad()
		if depth >= capacity {
			continue
		}
		if !ok || depth < bestDepth {
			best, bestDepth, ok = i, depth, true
		}
	}
	return best, ok
}

// Drain stops admission on every shard and waits (bounded by ctx) for
// in-flight work to finish, draining shards concurrently.
func (f *Fleet) Drain(ctx context.Context) error {
	errs := make([]error, len(f.shards))
	var wg sync.WaitGroup
	for i, s := range f.shards {
		wg.Add(1)
		go func(i int, s *serve.Server) {
			defer wg.Done()
			errs[i] = s.Drain(ctx)
		}(i, s)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Close drains the fleet with a short grace period.
func (f *Fleet) Close() error {
	errs := make([]error, len(f.shards))
	var wg sync.WaitGroup
	for i, s := range f.shards {
		wg.Add(1)
		go func(i int, s *serve.Server) {
			defer wg.Done()
			errs[i] = s.Close()
		}(i, s)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// ShardStats is one shard's row in the fleet /statz view.
type ShardStats struct {
	ID int `json:"id"`
	// RingFraction is the share of the digest space the shard owns — its
	// expected share of uniform traffic under RouteDigest.
	RingFraction float64 `json:"ring_fraction"`
	// Requests counts requests the router sent here (home + spill-in +
	// random).
	Requests int64 `json:"requests"`
	// Healthy mirrors serve.Server.Healthy at snapshot time.
	Healthy bool `json:"healthy"`
	// Serve is the shard's own serving snapshot: admission, cache,
	// scheduler, chaos counters.
	Serve serve.Stats `json:"serve"`
}

// Stats is the fleet-wide /statz document.
type Stats struct {
	Route    string        `json:"route"`
	VNodes   int           `json:"vnodes"`
	Shards   []ShardStats  `json:"shards"`
	Tenants  []TenantStats `json:"tenants"`
	Requests int64         `json:"requests"`
	// HomeHits counts requests served on their digest-home shard; Spills
	// those that overflowed elsewhere; Random the RouteRandom placements.
	HomeHits       int64 `json:"home_hits"`
	Spills         int64 `json:"spills"`
	Random         int64 `json:"random"`
	TenantRejected int64 `json:"tenant_rejected"`
	NoShard        int64 `json:"no_shard"`
	Failed         int64 `json:"failed"`
	// BaseRouted counts requests placed on the ring by their
	// X-Base-Digest hint (delta traffic pinned to its base's shard).
	BaseRouted int64 `json:"base_routed"`
	// Fleet-wide rollups summed over shards.
	CacheHits int64 `json:"cache_hits"`
	DedupHits int64 `json:"dedup_hits"`
	Completed int64 `json:"completed"`
	// IncrUpdates sums the shards' successful incremental updates.
	IncrUpdates int64 `json:"incr_updates"`
	NodesAlive  int   `json:"nodes_alive"`
}

// Snapshot returns current fleet stats, including every shard's own
// serving snapshot and ring ownership.
func (f *Fleet) Snapshot() Stats {
	own := f.ring.Ownership()
	st := Stats{
		Route:          f.cfg.Route,
		VNodes:         f.ring.VNodes(),
		Tenants:        f.tenants.stats(),
		Requests:       f.met.Counter("fed.requests").Value(),
		HomeHits:       f.met.Counter("fed.home").Value(),
		Spills:         f.met.Counter("fed.spill").Value(),
		Random:         f.met.Counter("fed.random").Value(),
		TenantRejected: f.met.Counter("fed.tenant_rejected").Value(),
		NoShard:        f.met.Counter("fed.no_shard").Value(),
		Failed:         f.met.Counter("fed.failed").Value(),
		BaseRouted:     f.met.Counter("fed.base_routed").Value(),
	}
	for i, s := range f.shards {
		ss := s.Snapshot()
		st.Shards = append(st.Shards, ShardStats{
			ID:           i,
			RingFraction: own[i],
			//mrlint:allow obsnames -- reads back the per-shard counters registered above; same bounded family
			Requests: f.met.Counter(fmt.Sprintf("fed.shard.%d.requests", i)).Value(),
			Healthy:  s.Healthy(),
			Serve:    ss,
		})
		st.CacheHits += ss.CacheHits
		st.DedupHits += ss.DedupHits
		st.Completed += ss.Completed
		if ss.Incr != nil {
			st.IncrUpdates += ss.Incr.Updates
		}
		st.NodesAlive += ss.NodesAlive
	}
	return st
}
