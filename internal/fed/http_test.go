package fed

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/matrix"
	"repro/internal/workload"
)

func postMatrix(t *testing.T, client *http.Client, url string, a *matrix.Dense, tenant string) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if err := matrix.WriteBinary(&buf, a); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestFleetHTTPEndToEnd(t *testing.T) {
	f := mustFleet(t, Config{
		Shards:  3,
		Tenants: map[string]TenantSpec{"gold": {Quota: 8, Priority: 5}, "*": {Quota: 0}},
		Shard:   shardConfig(),
	})
	ts := httptest.NewServer(NewHandler(f))
	defer ts.Close()
	client := ts.Client()

	a := workload.DiagonallyDominant(32, 5)
	resp := postMatrix(t, client, ts.URL+"/invert", a, "gold")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	firstShard := resp.Header.Get("X-Shard")
	if firstShard == "" || resp.Header.Get("X-Fed-Home") != firstShard {
		t.Fatalf("shard headers: X-Shard=%q X-Fed-Home=%q",
			firstShard, resp.Header.Get("X-Fed-Home"))
	}
	if resp.Header.Get("X-Fed-Route") != "home" {
		t.Fatalf("X-Fed-Route = %q", resp.Header.Get("X-Fed-Route"))
	}
	inv, err := matrix.ReadBinary(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	checkInverse(t, a, inv)

	// The duplicate must hit the same shard's cache.
	resp = postMatrix(t, client, ts.URL+"/invert", a, "gold")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Shard"); got != firstShard {
		t.Fatalf("duplicate served by shard %s, first by %s", got, firstShard)
	}
	if src := resp.Header.Get("X-Source"); src != "cache" {
		t.Fatalf("duplicate X-Source = %q", src)
	}
	resp.Body.Close()

	// /statz decodes as fleet stats and reflects the traffic.
	resp, err = client.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Requests != 2 || len(st.Shards) != 3 || st.CacheHits != 1 {
		t.Fatalf("stats: requests=%d shards=%d cache_hits=%d", st.Requests, len(st.Shards), st.CacheHits)
	}
	shardID, _ := strconv.Atoi(firstShard)
	if st.Shards[shardID].Requests != 2 {
		t.Fatalf("per-shard requests: %+v", st.Shards[shardID])
	}
	var frac float64
	for _, ss := range st.Shards {
		frac += ss.RingFraction
	}
	if frac < 0.999 || frac > 1.001 {
		t.Fatalf("ring fractions sum to %v", frac)
	}
	found := false
	for _, tn := range st.Tenants {
		if tn.Name == "gold" && tn.Requests == 2 && tn.Priority == 5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("gold tenant row missing: %+v", st.Tenants)
	}

	// /healthz and /metricz respond.
	resp, err = client.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	resp, err = client.Get(ts.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	buf := make([]byte, 1<<16)
	for {
		n, rerr := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	resp.Body.Close()
	if !strings.Contains(sb.String(), "fed.requests") || !strings.Contains(sb.String(), "# shard 2") {
		t.Fatalf("metricz missing fleet or shard sections:\n%s", sb.String())
	}
}

func TestFleetHTTPTenantErrors(t *testing.T) {
	f := mustFleet(t, Config{
		Shards:  2,
		Tenants: map[string]TenantSpec{"gold": {Quota: 8}},
		Shard:   shardConfig(),
	})
	ts := httptest.NewServer(NewHandler(f))
	defer ts.Close()

	a := workload.DiagonallyDominant(24, 1)
	// Unknown tenant without a "*" class: 403.
	resp := postMatrix(t, ts.Client(), ts.URL+"/invert", a, "stranger")
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("unknown tenant status %d, want 403", resp.StatusCode)
	}
	resp.Body.Close()
	// No tenant header resolves to DefaultTenant, which is unknown here
	// too.
	resp = postMatrix(t, ts.Client(), ts.URL+"/invert", a, "")
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("anonymous status %d, want 403", resp.StatusCode)
	}
	resp.Body.Close()
	// The tenant query parameter works as the header's fallback.
	resp = postMatrix(t, ts.Client(), ts.URL+"/invert?tenant=gold", a, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query-param tenant status %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
}
