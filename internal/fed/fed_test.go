package fed

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/incr"
	"repro/internal/matrix"
	"repro/internal/serve"
	"repro/internal/workload"
)

func shardConfig() serve.Config {
	opts := core.DefaultOptions(4)
	opts.NB = 16
	return serve.Config{Concurrency: 2, QueueDepth: 16, CacheBytes: 16 << 20, Opts: opts}
}

func mustFleet(t *testing.T, cfg Config) *Fleet {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func checkInverse(t *testing.T, a, inv *matrix.Dense) {
	t.Helper()
	res, err := matrix.IdentityResidual(a, inv)
	if err != nil {
		t.Fatal(err)
	}
	if res > 1e-8 {
		t.Fatalf("residual %g", res)
	}
}

func TestParseTenants(t *testing.T) {
	specs, err := ParseTenants("gold=16:5, free=4 , *=2:1")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]TenantSpec{
		"gold": {Quota: 16, Priority: 5},
		"free": {Quota: 4},
		"*":    {Quota: 2, Priority: 1},
	}
	if len(specs) != len(want) {
		t.Fatalf("parsed %v", specs)
	}
	for name, w := range want {
		if specs[name] != w {
			t.Fatalf("tenant %s = %+v, want %+v", name, specs[name], w)
		}
	}
	if nilSpecs, err := ParseTenants("  "); err != nil || nilSpecs != nil {
		t.Fatalf("empty spec: %v %v", nilSpecs, err)
	}
	for _, bad := range []string{"=4", "gold", "gold=x", "gold=4:y", "gold=1,gold=2", ","} {
		if _, err := ParseTenants(bad); err == nil {
			t.Fatalf("spec %q parsed without error", bad)
		}
	}
}

func TestTenantAcquirePriorityAndQuota(t *testing.T) {
	tt := newTenants(map[string]TenantSpec{
		"gold": {Quota: 2, Priority: 5},
		"*":    {Quota: 1},
	})
	// QoS class overrides the request's own priority claim.
	prio, rel1, err := tt.acquire("gold", 9)
	if err != nil || prio != 5 {
		t.Fatalf("gold acquire: prio=%d err=%v, want 5 nil", prio, err)
	}
	// A zero-priority class keeps the request's claim (back-compat with
	// the client -priority flag).
	prio, rel2, err := tt.acquire("someone", 3)
	if err != nil || prio != 3 {
		t.Fatalf("default-class acquire: prio=%d err=%v, want 3 nil", prio, err)
	}
	// someone is at its "*" quota of 1.
	if _, _, err := tt.acquire("someone", 0); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("over-quota acquire: %v, want ErrTenantQuota", err)
	}
	rel2(true)
	if _, rel3, err := tt.acquire("someone", 0); err != nil {
		t.Fatalf("post-release acquire: %v", err)
	} else {
		rel3(false)
	}
	rel1(true)

	st := tt.stats()
	if len(st) != 2 {
		t.Fatalf("stats rows: %+v", st)
	}
	for _, row := range st {
		if row.Name == "someone" {
			if row.Requests != 3 || row.Rejected != 1 || row.Completed != 1 || row.Failed != 1 {
				t.Fatalf("someone stats %+v", row)
			}
		}
	}
}

func TestUnknownTenantRejectedWithoutDefaultClass(t *testing.T) {
	tt := newTenants(map[string]TenantSpec{"gold": {Quota: 1}})
	if _, _, err := tt.acquire("stranger", 0); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("got %v, want ErrUnknownTenant", err)
	}
}

// Digest routing: the same matrix always lands on the same shard, so the
// second request is a shard-local cache hit; distinct matrices spread
// across shards.
func TestDigestRoutingKeepsCacheShardLocal(t *testing.T) {
	f := mustFleet(t, Config{Shards: 4, Shard: shardConfig()})
	ctx := context.Background()

	a := workload.DiagonallyDominant(32, 7)
	first, err := f.Do(ctx, Request{Request: serve.Request{A: a}})
	if err != nil {
		t.Fatal(err)
	}
	if first.Route != "home" || first.Shard != first.Home {
		t.Fatalf("first request route=%s shard=%d home=%d", first.Route, first.Shard, first.Home)
	}
	checkInverse(t, a, first.Out)

	second, err := f.Do(ctx, Request{Request: serve.Request{A: a}})
	if err != nil {
		t.Fatal(err)
	}
	if second.Shard != first.Shard {
		t.Fatalf("duplicate routed to shard %d, first went to %d", second.Shard, first.Shard)
	}
	if second.Source != "cache" {
		t.Fatalf("duplicate source %q, want shard-local cache hit", second.Source)
	}

	// Distinct matrices should use more than one shard.
	used := map[int]bool{first.Shard: true}
	for i := 0; i < 8; i++ {
		res, err := f.Do(ctx, Request{Request: serve.Request{A: workload.DiagonallyDominant(24, int64(100+i))}})
		if err != nil {
			t.Fatal(err)
		}
		used[res.Shard] = true
	}
	if len(used) < 2 {
		t.Fatalf("9 distinct matrices all routed to one shard: %v", used)
	}
}

func TestRandomRoutePolicy(t *testing.T) {
	f := mustFleet(t, Config{Shards: 4, Route: RouteRandom, Seed: 3, Shard: shardConfig()})
	ctx := context.Background()
	used := map[int]bool{}
	for i := 0; i < 8; i++ {
		res, err := f.Do(ctx, Request{Request: serve.Request{A: workload.DiagonallyDominant(24, int64(i))}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Route != "random" {
			t.Fatalf("route %q under RouteRandom", res.Route)
		}
		used[res.Shard] = true
	}
	if len(used) < 2 {
		t.Fatal("random routing used a single shard for 8 requests")
	}
}

// Saturate a request's home shard and check the router spills it to
// another live shard instead of surfacing 429.
func TestOverflowSpillFromSaturatedHomeShard(t *testing.T) {
	sc := shardConfig()
	sc.Concurrency = 1
	sc.QueueDepth = 1
	f := mustFleet(t, Config{Shards: 3, Shard: sc})
	ctx := context.Background()

	target := Request{Request: serve.Request{A: workload.DiagonallyDominant(32, 1)}}
	_, home := f.Home(target)

	// Occupy home's single worker and single queue slot with big
	// inversions homed there (submitted directly to the shard, bypassing
	// the router so they cannot spill away).
	blockers := 0
	done := make(chan error, 4)
	for seed := int64(1000); blockers < 2 && seed < 1600; seed++ {
		req := Request{Request: serve.Request{A: workload.DiagonallyDominant(96, seed)}}
		if _, h := f.Home(req); h != home {
			continue
		}
		blockers++
		go func(r serve.Request) {
			_, err := f.Shard(home).Do(ctx, r)
			done <- err
		}(req.Request)
	}
	if blockers != 2 {
		t.Fatalf("found only %d blocker matrices homed to shard %d", blockers, home)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		depth, capacity := f.Shard(home).QueueLoad()
		if depth >= capacity {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("home shard %d never saturated (depth %d / cap %d)", home, depth, capacity)
		}
		time.Sleep(time.Millisecond)
	}

	res, err := f.Do(ctx, target)
	if err != nil {
		t.Fatalf("request failed instead of spilling: %v", err)
	}
	if res.Route != "spill" {
		t.Fatalf("route %q, want spill (home %d, served by %d)", res.Route, res.Home, res.Shard)
	}
	if res.Shard == home {
		t.Fatal("spill stayed on the saturated home shard")
	}
	checkInverse(t, target.A, res.Out)

	st := f.Snapshot()
	if st.Spills != 1 {
		t.Fatalf("Snapshot().Spills = %d, want 1", st.Spills)
	}
	for _, row := range st.Tenants {
		if row.Name == DefaultTenant && row.Spills != 1 {
			t.Fatalf("tenant spill counter %+v", row)
		}
	}
	for i := 0; i < blockers; i++ {
		if err := <-done; err != nil {
			t.Fatalf("blocker failed: %v", err)
		}
	}
}

func TestFleetQuotaEnforcedAcrossShards(t *testing.T) {
	f := mustFleet(t, Config{
		Shards:  2,
		Tenants: map[string]TenantSpec{"free": {Quota: 1}, "*": {Quota: 0}},
		Shard:   shardConfig(),
	})
	ctx := context.Background()

	slow := make(chan error, 1)
	go func() {
		_, err := f.Do(ctx, Request{
			Request: serve.Request{A: workload.DiagonallyDominant(96, 42)},
			Tenant:  "free",
		})
		slow <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var inflight int
		for _, row := range f.Snapshot().Tenants {
			if row.Name == "free" {
				inflight = row.Inflight
			}
		}
		if inflight == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("free tenant never went in flight")
		}
		time.Sleep(time.Millisecond)
	}

	_, err := f.Do(ctx, Request{
		Request: serve.Request{A: workload.DiagonallyDominant(24, 43)},
		Tenant:  "free",
	})
	if !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("second in-flight free request: %v, want ErrTenantQuota", err)
	}
	// Other tenants are unaffected by free's quota.
	if _, err := f.Do(ctx, Request{
		Request: serve.Request{A: workload.DiagonallyDominant(24, 44)},
		Tenant:  "other",
	}); err != nil {
		t.Fatalf("other tenant blocked by free's quota: %v", err)
	}
	if err := <-slow; err != nil {
		t.Fatalf("slow free request: %v", err)
	}
}

func TestFleetDrainRejectsNewWork(t *testing.T) {
	f := mustFleet(t, Config{Shards: 2, Shard: shardConfig()})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := f.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	_, err := f.Do(context.Background(), Request{Request: serve.Request{A: workload.DiagonallyDominant(24, 1)}})
	if !errors.Is(err, serve.ErrDraining) && !errors.Is(err, ErrNoShard) {
		t.Fatalf("post-drain request: %v", err)
	}
}

func incrShardConfig() serve.Config {
	cfg := shardConfig()
	cfg.Incr = incr.Config{Enabled: true}
	return cfg
}

// A mutated matrix hashes nowhere near its base, so only the
// X-Base-Digest hint can land it on the shard whose base index holds
// the inverse it needs. This is the federation half of the incremental
// path: hinted deltas route to the base's home shard and serve as SMW
// updates; unhinted ones land wherever their own digest says and fall
// back to the full pipeline there.
func TestBaseDigestRoutingServesIncrementally(t *testing.T) {
	f := mustFleet(t, Config{Shards: 4, Shard: incrShardConfig()})
	ctx := context.Background()

	base := workload.DiagonallyDominant(48, 4242)
	baseDigest, _ := f.Home(Request{Request: serve.Request{A: base}})
	first, err := f.Do(ctx, Request{Request: serve.Request{A: base}})
	if err != nil {
		t.Fatal(err)
	}
	checkInverse(t, base, first.Out)

	// Find a mutation whose own digest homes on a different shard, so a
	// correct routing decision is observable.
	var mut *matrix.Dense
	var natural int
	for seed := int64(1); ; seed++ {
		m := workload.MutateRows(base, 2, seed)
		_, home := f.Home(Request{Request: serve.Request{A: m}})
		if home != first.Shard {
			mut, natural = m, home
			break
		}
		if seed > 64 {
			t.Fatal("no mutation homed away from the base shard in 64 seeds")
		}
	}

	hinted, err := f.Do(ctx, Request{Request: serve.Request{A: mut, BaseDigest: baseDigest}})
	if err != nil {
		t.Fatal(err)
	}
	if hinted.Shard != first.Shard {
		t.Fatalf("hinted delta routed to shard %d, base lives on %d", hinted.Shard, first.Shard)
	}
	if hinted.Source != "incremental" {
		t.Fatalf("hinted delta source %q, want incremental", hinted.Source)
	}
	checkInverse(t, mut, hinted.Out)

	// The same mutation unhinted goes to its natural shard, whose index
	// has never seen the base: full pipeline, still correct.
	unhinted, err := f.Do(ctx, Request{Request: serve.Request{A: mut.Clone()}})
	if err != nil {
		t.Fatal(err)
	}
	if unhinted.Shard != natural {
		t.Fatalf("unhinted delta routed to shard %d, want natural home %d", unhinted.Shard, natural)
	}
	if unhinted.Source == "incremental" {
		t.Fatal("unhinted delta on a cold shard cannot be incremental")
	}
	checkInverse(t, mut, unhinted.Out)

	st := f.Snapshot()
	if st.BaseRouted != 1 {
		t.Fatalf("base_routed %d, want 1", st.BaseRouted)
	}
	if st.IncrUpdates != 1 {
		t.Fatalf("incr_updates %d, want 1", st.IncrUpdates)
	}
}

// The hint changes placement only, never the dedup/cache digest: the
// same delta posted twice with the hint is a cache hit the second time.
func TestBaseDigestHintKeepsCacheDigest(t *testing.T) {
	f := mustFleet(t, Config{Shards: 2, Shard: incrShardConfig()})
	ctx := context.Background()
	base := workload.DiagonallyDominant(32, 515)
	baseDigest, _ := f.Home(Request{Request: serve.Request{A: base}})
	if _, err := f.Do(ctx, Request{Request: serve.Request{A: base}}); err != nil {
		t.Fatal(err)
	}
	mut := workload.MutateRows(base, 1, 9)
	r1, err := f.Do(ctx, Request{Request: serve.Request{A: mut, BaseDigest: baseDigest}})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := f.Do(ctx, Request{Request: serve.Request{A: mut.Clone(), BaseDigest: baseDigest}})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Source != "cache" {
		t.Fatalf("repeat delta source %q, want cache", r2.Source)
	}
	if r2.Shard != r1.Shard {
		t.Fatal("repeat delta left its shard")
	}
}
