package fed

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVNodes is the virtual-node count per shard. 64 points per shard
// keeps the maximum/minimum ownership skew of an 8-shard ring within a
// few tens of percent, which the ring tests bound explicitly.
const DefaultVNodes = 64

// Ring is a consistent-hash ring mapping request digests to shard IDs.
// Each shard contributes vnodes points hashed from its identity; a key is
// owned by the first point at or clockwise of the key's hash. Adding or
// removing one shard therefore remaps only the keys on the arcs its
// points owned (~1/N of the space) instead of reshuffling everything —
// the property that keeps shard-local caches hot across fleet resizes.
//
// A Ring is built once and then read concurrently; Add and Remove are not
// safe to interleave with Owner.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by hash
	shards map[int]bool
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds an empty ring with the given virtual-node count per
// shard (DefaultVNodes when <= 0).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, shards: make(map[int]bool)}
}

// VNodes returns the per-shard virtual-node count.
func (r *Ring) VNodes() int { return r.vnodes }

// Add inserts a shard's virtual nodes; adding a present shard is a no-op.
func (r *Ring) Add(shard int) {
	if r.shards[shard] {
		return
	}
	r.shards[shard] = true
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{hash: pointHash(shard, v), shard: shard})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a shard's virtual nodes; absent shards are a no-op.
func (r *Ring) Remove(shard int) {
	if !r.shards[shard] {
		return
	}
	delete(r.shards, shard)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.shard != shard {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Owner returns the shard owning key: the first ring point at or
// clockwise of the key's hash, wrapping at the top of the space. It
// panics on an empty ring — a fleet always has at least one shard.
func (r *Ring) Owner(key string) int {
	if len(r.points) == 0 {
		panic("fed: Owner on empty ring")
	}
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// Shards returns the member shard IDs in ascending order.
func (r *Ring) Shards() []int {
	out := make([]int, 0, len(r.shards))
	for s := range r.shards {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Ownership returns each shard's fraction of the hash space — the
// expected share of uniformly distributed keys it will own. Fractions
// sum to 1 on a non-empty ring.
func (r *Ring) Ownership() map[int]float64 {
	out := make(map[int]float64, len(r.shards))
	n := len(r.points)
	if n == 0 {
		return out
	}
	if n == 1 {
		out[r.points[0].shard] = 1
		return out
	}
	const space = float64(1<<63) * 2 // 2^64
	for i, p := range r.points {
		// The point at points[i] owns the arc from the previous point
		// (exclusive) to itself (inclusive); unsigned subtraction wraps the
		// first point's arc around the top of the space.
		arc := p.hash - r.points[(i+n-1)%n].hash
		out[p.shard] += float64(arc) / space
	}
	return out
}

// pointHash places one virtual node: a stable hash of the shard and
// vnode identity, independent of insertion order.
func pointHash(shard, vnode int) uint64 {
	sum := sha256.Sum256([]byte(fmt.Sprintf("fed/shard-%d/vnode-%d", shard, vnode)))
	return binary.BigEndian.Uint64(sum[:8])
}

// keyHash maps a request digest onto the ring. The digest is already a
// uniform sha256 hex string, but it is re-hashed so ring placement does
// not depend on the digest's own encoding.
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}
