package fed

import (
	"fmt"
	"math"
	"testing"
)

// testKeys fabricates n digest-like keys. Real keys are sha256 hex
// strings; any distinct strings work because Owner re-hashes them.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("digest-%d", i)
	}
	return keys
}

func TestRingDistributionBalanced(t *testing.T) {
	const shards, n = 8, 20000
	r := NewRing(128)
	for s := 0; s < shards; s++ {
		r.Add(s)
	}
	counts := make(map[int]int)
	for _, k := range testKeys(n) {
		counts[r.Owner(k)]++
	}
	mean := float64(n) / shards
	for s := 0; s < shards; s++ {
		c := counts[s]
		if c == 0 {
			t.Fatalf("shard %d owns no keys", s)
		}
		if skew := float64(c) / mean; skew < 0.5 || skew > 2.0 {
			t.Fatalf("shard %d owns %d keys (mean %.0f, skew %.2fx): distribution unbalanced: %v",
				s, c, mean, skew, counts)
		}
	}
}

func TestRingOwnershipMatchesEmpiricalShare(t *testing.T) {
	const shards, n = 4, 20000
	r := NewRing(128)
	for s := 0; s < shards; s++ {
		r.Add(s)
	}
	own := r.Ownership()
	var total float64
	for _, frac := range own {
		total += frac
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("ownership fractions sum to %v, want 1", total)
	}
	counts := make(map[int]int)
	for _, k := range testKeys(n) {
		counts[r.Owner(k)]++
	}
	for s := 0; s < shards; s++ {
		emp := float64(counts[s]) / n
		if math.Abs(emp-own[s]) > 0.03 {
			t.Fatalf("shard %d: empirical share %.3f vs ring fraction %.3f", s, emp, own[s])
		}
	}
}

// Adding one shard to an N-shard ring must remap only roughly 1/(N+1) of
// the keys — the consistent-hashing property that keeps the other shards'
// caches hot across a fleet resize.
func TestRingAddRemapsBoundedFraction(t *testing.T) {
	const shards, n = 8, 20000
	r := NewRing(128)
	for s := 0; s < shards; s++ {
		r.Add(s)
	}
	keys := testKeys(n)
	before := make([]int, n)
	for i, k := range keys {
		before[i] = r.Owner(k)
	}
	r.Add(shards) // shard 8 joins
	moved := 0
	for i, k := range keys {
		after := r.Owner(k)
		if after != before[i] {
			moved++
			// Every remapped key must move TO the new shard, never
			// between old shards.
			if after != shards {
				t.Fatalf("key %q moved from shard %d to old shard %d", k, before[i], after)
			}
		}
	}
	ideal := float64(n) / float64(shards+1)
	if moved == 0 {
		t.Fatal("no keys moved to the new shard")
	}
	if f := float64(moved); f > 2.5*ideal {
		t.Fatalf("%d keys moved (ideal ~%.0f): full reshuffle, not consistent hashing", moved, ideal)
	}
}

// Removing a shard must remap only the keys that shard owned; everyone
// else's placement is untouched — exactly, not approximately.
func TestRingRemoveOnlyRemapsVictimKeys(t *testing.T) {
	const shards, n = 8, 20000
	r := NewRing(128)
	for s := 0; s < shards; s++ {
		r.Add(s)
	}
	keys := testKeys(n)
	before := make([]int, n)
	for i, k := range keys {
		before[i] = r.Owner(k)
	}
	const victim = 3
	r.Remove(victim)
	for i, k := range keys {
		after := r.Owner(k)
		if before[i] == victim {
			if after == victim {
				t.Fatalf("key %q still owned by removed shard", k)
			}
		} else if after != before[i] {
			t.Fatalf("key %q moved from surviving shard %d to %d on unrelated removal",
				k, before[i], after)
		}
	}
}

func TestRingOwnerDeterministic(t *testing.T) {
	build := func() *Ring {
		r := NewRing(64)
		// Insertion order must not matter.
		for _, s := range []int{2, 0, 3, 1} {
			r.Add(s)
		}
		return r
	}
	a, b := build(), build()
	for _, k := range testKeys(1000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %q: owner differs between identical rings", k)
		}
	}
}
