package fed

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/serve"
)

// NewHandler exposes the fleet over HTTP with the same surface as a
// single serve.Server, plus tenancy and shard visibility:
//
//	POST /invert    body and query params as in serve.NewHandler; the
//	                tenant is taken from the X-Tenant header (or the
//	                tenant query param). Responds with the inverse plus
//	                X-Shard / X-Fed-Home / X-Fed-Route headers on top of
//	                the per-shard X-Source/X-Jobs/X-Slot-Wait.
//	POST /lstsq     least-squares solve, body as in serve.NewHandler
//	POST /pinv      pseudo-inverse, body as in serve.NewHandler
//	                (both routed through the same digest ring, so repeat
//	                solves hit their home shard's cache)
//	GET  /healthz   liveness: 503 only when no shard is healthy
//	GET  /statz     JSON fleet stats (per-shard serving snapshots, ring
//	                ownership, tenant table)
//	GET  /metricz   fleet fed.* counters followed by each shard's registry
//
// Extra error mappings over the serve set: tenant quota exhausted 429,
// unknown tenant 403, no live shard 503.
func NewHandler(f *Fleet) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/invert", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		f.handleInvert(w, r)
	})
	mux.HandleFunc("/lstsq", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		f.handleSolve(w, r, serve.KindLstsq)
	})
	mux.HandleFunc("/pinv", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		f.handleSolve(w, r, serve.KindPinv)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		for i := range f.shards {
			if f.shards[i].Healthy() {
				fmt.Fprintln(w, "ok")
				return
			}
		}
		http.Error(w, "no live shard", http.StatusServiceUnavailable)
	})
	mux.HandleFunc("/statz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(f.Snapshot())
	})
	mux.HandleFunc("/metricz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		f.met.Render(w)
		for i, s := range f.shards {
			fmt.Fprintf(w, "\n# shard %d\n", i)
			s.Metrics().Render(w)
		}
	})
	return mux
}

func (f *Fleet) handleInvert(w http.ResponseWriter, r *http.Request) {
	sreq, ctx, cancel, text, ok := serve.DecodeInvertRequest(w, r)
	if !ok {
		return
	}
	defer cancel()
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = r.URL.Query().Get("tenant")
	}
	res, err := f.Do(ctx, Request{Request: sreq, Tenant: tenant})
	if err != nil {
		writeFedError(w, err)
		return
	}
	w.Header().Set("X-Shard", strconv.Itoa(res.Shard))
	w.Header().Set("X-Fed-Home", strconv.Itoa(res.Home))
	w.Header().Set("X-Fed-Route", res.Route)
	serve.EncodeInvertResponse(w, text, res.Result)
}

func (f *Fleet) handleSolve(w http.ResponseWriter, r *http.Request, kind serve.Kind) {
	sreq, ctx, cancel, ok := serve.DecodeSolveRequest(w, r, kind)
	if !ok {
		return
	}
	defer cancel()
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = r.URL.Query().Get("tenant")
	}
	res, err := f.Do(ctx, Request{Request: sreq, Tenant: tenant})
	if err != nil {
		writeFedError(w, err)
		return
	}
	w.Header().Set("X-Shard", strconv.Itoa(res.Shard))
	w.Header().Set("X-Fed-Home", strconv.Itoa(res.Home))
	w.Header().Set("X-Fed-Route", res.Route)
	serve.EncodeInvertResponse(w, false, res.Result)
}

// writeFedError maps federation errors first, then falls back to the
// serve-layer mapping.
func writeFedError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrTenantQuota):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, ErrUnknownTenant):
		http.Error(w, err.Error(), http.StatusForbidden)
	case errors.Is(err, ErrNoShard):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		serve.WriteError(w, err)
	}
}
