package dfs

import (
	"testing"

	"repro/internal/workload"
)

func TestWriteFromPlacesOnRequestedNodes(t *testing.T) {
	fs := New(8, 3)
	fs.WriteFrom("p", []byte("data"), 2, []int{2, 5, 5, 7})
	reps, err := fs.Replicas("p")
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 || reps[0] != 2 || reps[1] != 5 || reps[2] != 7 {
		t.Fatalf("replicas = %v, want [2 5 7] (deduplicated, in order)", reps)
	}
	got, err := fs.Read("p")
	if err != nil || string(got) != "data" {
		t.Fatalf("Read = %q, %v", got, err)
	}
}

func TestWriteFromTransferAccounting(t *testing.T) {
	data := make([]byte, 1000)
	// Writer among the replicas: only the other copies cross the network.
	fs := New(8, 3)
	fs.WriteFrom("a", data, 1, []int{1, 2, 3})
	if tr := fs.Stats().BytesTransferred; tr != 2000 {
		t.Fatalf("writer-local transfer = %d, want 2000", tr)
	}
	// Writer elsewhere: every copy crosses.
	fs.ResetStats()
	fs.WriteFrom("b", data, 0, []int{1, 2})
	if tr := fs.Stats().BytesTransferred; tr != 2000 {
		t.Fatalf("writer-remote transfer = %d, want 2000", tr)
	}
	// Master writer (-1): pipeline accounting, first copy free.
	fs.ResetStats()
	fs.WriteFrom("c", data, -1, []int{1, 2, 3})
	if tr := fs.Stats().BytesTransferred; tr != 2000 {
		t.Fatalf("master-writer transfer = %d, want 2000", tr)
	}
	// A reader on a replica node then reads for free.
	fs.ResetStats()
	if _, err := fs.ReadFrom("a", 2); err != nil {
		t.Fatal(err)
	}
	if tr := fs.Stats().BytesTransferred; tr != 0 {
		t.Fatalf("replica-local read transferred %d bytes", tr)
	}
}

func TestWriteFromRewriteReplaces(t *testing.T) {
	fs := New(8, 3)
	fs.WriteFrom("p", []byte("one"), 0, []int{0, 1})
	fs.WriteFrom("p", []byte("two"), 4, []int{4, 5})
	reps, err := fs.Replicas("p")
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 || reps[0] != 4 || reps[1] != 5 {
		t.Fatalf("replicas after rewrite = %v, want [4 5]", reps)
	}
	if fs.FileCount() != 1 {
		t.Fatalf("FileCount = %d", fs.FileCount())
	}
	got, _ := fs.Read("p")
	if string(got) != "two" {
		t.Fatalf("Read = %q", got)
	}
}

func TestWriteFromSkipsDeadAndInvalidNodes(t *testing.T) {
	fs := New(4, 3)
	fs.KillNode(1)
	fs.WriteFrom("p", []byte("x"), -1, []int{-3, 1, 2, 9})
	reps, err := fs.Replicas("p")
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || reps[0] != 2 {
		t.Fatalf("replicas = %v, want [2]", reps)
	}
	// All-dead request falls back to round-robin placement on live nodes.
	fs.WriteFrom("q", []byte("y"), -1, []int{1})
	reps, err = fs.Replicas("q")
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) == 0 {
		t.Fatal("no fallback placement")
	}
	for _, r := range reps {
		if r == 1 {
			t.Fatalf("replica on dead node: %v", reps)
		}
	}
}

func TestWriteMatrixFromRoundTrip(t *testing.T) {
	fs := New(4, 2)
	m := workload.RandomRect(7, 5, 3)
	if err := fs.WriteMatrixFrom("m", m, 0, []int{0, 3}); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadMatrixFrom("m", 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != 7 || got.Cols != 5 {
		t.Fatalf("shape %dx%d", got.Rows, got.Cols)
	}
	for i, v := range got.Data {
		if v != m.Data[i] {
			t.Fatal("matrix corrupted through WriteMatrixFrom")
		}
	}
}
