package dfs

import (
	"errors"
	"fmt"
	"testing"
)

func TestKillNodeDropsReplicasAndRereplicates(t *testing.T) {
	fs := New(5, 3)
	for i := 0; i < 10; i++ {
		fs.Write(fmt.Sprintf("d/%d", i), make([]byte, 1000))
	}
	if err := fs.CheckPlacement(); err != nil {
		t.Fatal(err)
	}
	before := fs.Stats()
	if err := fs.KillNode(2); err != nil {
		t.Fatal(err)
	}
	after := fs.Stats()
	if after.ReplicasLost == before.ReplicasLost {
		t.Fatal("no replicas lost by killing a populated node")
	}
	// Every file must still be readable from the surviving replicas.
	for i := 0; i < 10; i++ {
		if _, err := fs.Read(fmt.Sprintf("d/%d", i)); err != nil {
			t.Fatalf("read after kill: %v", err)
		}
	}
	copies, bytes := fs.ReReplicate()
	if copies == 0 || bytes == 0 {
		t.Fatalf("ReReplicate() = %d copies, %d bytes; want > 0", copies, bytes)
	}
	if got := fs.Stats().BytesReReplicated; got != bytes {
		t.Fatalf("BytesReReplicated = %d, want %d", got, bytes)
	}
	// Healed back to factor 3, with the invariants intact: distinct nodes,
	// none dead.
	for i := 0; i < 10; i++ {
		reps, err := fs.Replicas(fmt.Sprintf("d/%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if len(reps) != 3 {
			t.Fatalf("d/%d has %d replicas after heal, want 3", i, len(reps))
		}
	}
	if err := fs.CheckPlacement(); err != nil {
		t.Fatal(err)
	}
	// A second ReReplicate is a no-op: nothing under-replicated.
	if copies, _ := fs.ReReplicate(); copies != 0 {
		t.Fatalf("second ReReplicate made %d copies", copies)
	}
}

func TestPlacementAvoidsDeadNodesAndNeverDoublesUp(t *testing.T) {
	fs := New(6, 3)
	if err := fs.KillNode(1); err != nil {
		t.Fatal(err)
	}
	if err := fs.KillNode(4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		fs.Write(fmt.Sprintf("p/%d", i), []byte("data"))
	}
	for i := 0; i < 50; i++ {
		reps, err := fs.Replicas(fmt.Sprintf("p/%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if len(reps) != 3 {
			t.Fatalf("p/%d: %d replicas, want 3", i, len(reps))
		}
		seen := map[int]bool{}
		for _, r := range reps {
			if r == 1 || r == 4 {
				t.Fatalf("p/%d placed on dead node %d", i, r)
			}
			if seen[r] {
				t.Fatalf("p/%d holds two replicas on node %d", i, r)
			}
			seen[r] = true
		}
	}
	if err := fs.CheckPlacement(); err != nil {
		t.Fatal(err)
	}
}

func TestAllReplicasLostThenRewrite(t *testing.T) {
	fs := New(3, 2)
	fs.Write("x", []byte("payload"))
	reps, _ := fs.Replicas("x")
	for _, r := range reps {
		if err := fs.KillNode(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fs.Read("x"); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("read of fully-lost file = %v, want ErrNoReplica", err)
	}
	// ReReplicate cannot resurrect a file with zero sources.
	if copies, _ := fs.ReReplicate(); copies != 0 {
		t.Fatalf("ReReplicate resurrected a dead file (%d copies)", copies)
	}
	// A rewrite places it fresh on the survivors.
	fs.Write("x", []byte("payload2"))
	got, err := fs.Read("x")
	if err != nil || string(got) != "payload2" {
		t.Fatalf("read after rewrite = %q, %v", got, err)
	}
	if err := fs.CheckPlacement(); err != nil {
		t.Fatal(err)
	}
}

func TestKillRestartTransitions(t *testing.T) {
	fs := New(2, 1)
	if err := fs.KillNode(0); err != nil {
		t.Fatal(err)
	}
	if err := fs.KillNode(0); !errors.Is(err, ErrNodeState) {
		t.Fatalf("double kill = %v, want ErrNodeState", err)
	}
	if err := fs.KillNode(1); !errors.Is(err, ErrLastNode) {
		t.Fatalf("killing last node = %v, want ErrLastNode", err)
	}
	if err := fs.RestartNode(1); !errors.Is(err, ErrNodeState) {
		t.Fatalf("restarting live node = %v, want ErrNodeState", err)
	}
	if err := fs.RestartNode(0); err != nil {
		t.Fatal(err)
	}
	if !fs.NodeAlive(0) || fs.AliveNodes() != 2 {
		t.Fatalf("node 0 alive=%v, alive count=%d", fs.NodeAlive(0), fs.AliveNodes())
	}
	if err := fs.KillNode(7); !errors.Is(err, ErrNodeState) {
		t.Fatalf("killing unknown node = %v, want ErrNodeState", err)
	}
}

func TestNodeStatsAccountStorageAndFlow(t *testing.T) {
	fs := New(4, 2)
	fs.Write("a", make([]byte, 100))
	fs.Write("b", make([]byte, 50))
	stats := fs.NodeStats()
	if len(stats) != 4 {
		t.Fatalf("NodeStats len = %d", len(stats))
	}
	var files int
	var bytes int64
	for _, ns := range stats {
		if !ns.Alive {
			t.Fatalf("node %d reported dead", ns.Node)
		}
		files += ns.Files
		bytes += ns.Bytes
	}
	if files != 4 { // 2 files x 2 replicas
		t.Fatalf("total replicas = %d, want 4", files)
	}
	if bytes != 300 { // (100+50) x 2
		t.Fatalf("total stored bytes = %d, want 300", bytes)
	}
	// Killing a node moves its storage accounting to zero.
	if err := fs.KillNode(stats[0].Node); err != nil {
		t.Fatal(err)
	}
	if got := fs.NodeStats()[stats[0].Node]; got.Files != 0 || got.Bytes != 0 || got.Alive {
		t.Fatalf("dead node still accounts storage: %+v", got)
	}
}

func TestRestartedNodeIsEmptyButPlaceable(t *testing.T) {
	fs := New(3, 3)
	fs.Write("f", make([]byte, 10))
	if err := fs.KillNode(1); err != nil {
		t.Fatal(err)
	}
	fs.ReReplicate() // want capped at 2 live nodes; nothing to do beyond that
	if err := fs.RestartNode(1); err != nil {
		t.Fatal(err)
	}
	if got := fs.NodeStats()[1]; got.Files != 0 {
		t.Fatalf("restarted node retained %d replicas", got.Files)
	}
	// Now under-replicated relative to 3 live nodes: heal tops it back up.
	copies, _ := fs.ReReplicate()
	if copies != 1 {
		t.Fatalf("heal after restart made %d copies, want 1", copies)
	}
	reps, _ := fs.Replicas("f")
	if len(reps) != 3 {
		t.Fatalf("replicas after restart+heal = %d, want 3", len(reps))
	}
	if err := fs.CheckPlacement(); err != nil {
		t.Fatal(err)
	}
}
