package dfs

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
	"repro/internal/workload"
)

func TestWriteReadRoundTrip(t *testing.T) {
	fs := New(4, 2)
	fs.Write("Root/a.txt", []byte("hello"))
	got, err := fs.Read("Root/a.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("Read = %q", got)
	}
}

func TestReadNotFound(t *testing.T) {
	fs := New(1, 1)
	if _, err := fs.Read("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestCleanPaths(t *testing.T) {
	if got := Clean("/Root//A1/./a.txt/"); got != "Root/A1/a.txt" {
		t.Fatalf("Clean = %q", got)
	}
	fs := New(1, 1)
	fs.Write("/Root//x", []byte("v"))
	if !fs.Exists("Root/x") {
		t.Fatal("path normalization failed")
	}
}

func TestCreateExisting(t *testing.T) {
	fs := New(1, 1)
	if err := fs.Create("f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("f"); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v", err)
	}
}

func TestOverwriteKeepsOneFile(t *testing.T) {
	fs := New(2, 1)
	fs.Write("f", []byte("one"))
	fs.Write("f", []byte("two"))
	if fs.FileCount() != 1 {
		t.Fatalf("FileCount = %d", fs.FileCount())
	}
	if wc, _ := fs.WriteCount("f"); wc != 2 {
		t.Fatalf("WriteCount = %d", wc)
	}
	data, _ := fs.Read("f")
	if string(data) != "two" {
		t.Fatalf("contents = %q", data)
	}
}

func TestReplicationAccounting(t *testing.T) {
	fs := New(5, 3)
	payload := make([]byte, 1000)
	fs.Write("big", payload)
	st := fs.Stats()
	if st.BytesWritten != 1000 {
		t.Fatalf("BytesWritten = %d", st.BytesWritten)
	}
	if st.BytesReplicated != 3000 {
		t.Fatalf("BytesReplicated = %d", st.BytesReplicated)
	}
	// Two replica copies cross the network.
	if st.BytesTransferred != 2000 {
		t.Fatalf("BytesTransferred = %d", st.BytesTransferred)
	}
	reps, err := fs.Replicas("big")
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 {
		t.Fatalf("replicas = %v", reps)
	}
}

func TestReplicationCappedAtNodes(t *testing.T) {
	fs := New(2, 3)
	fs.Write("f", []byte("xy"))
	reps, _ := fs.Replicas("f")
	if len(reps) != 2 {
		t.Fatalf("replicas = %v, want 2 (capped)", reps)
	}
}

func TestLocalVsRemoteRead(t *testing.T) {
	fs := New(4, 1)
	fs.Write("f", make([]byte, 100))
	reps, _ := fs.Replicas("f")
	local := reps[0]
	remote := (local + 1) % 4

	fs.ResetStats()
	if _, err := fs.ReadFrom("f", local); err != nil {
		t.Fatal(err)
	}
	if tr := fs.Stats().BytesTransferred; tr != 0 {
		t.Fatalf("local read transferred %d bytes", tr)
	}
	if _, err := fs.ReadFrom("f", remote); err != nil {
		t.Fatal(err)
	}
	if tr := fs.Stats().BytesTransferred; tr != 100 {
		t.Fatalf("remote read transferred %d bytes", tr)
	}
}

func TestListAndDeleteTree(t *testing.T) {
	fs := New(1, 1)
	for _, p := range []string{"Root/A1/a", "Root/A1/b", "Root/A2/c", "Other/d"} {
		fs.Write(p, []byte("x"))
	}
	got := fs.List("Root/A1")
	if len(got) != 2 || got[0] != "Root/A1/a" || got[1] != "Root/A1/b" {
		t.Fatalf("List = %v", got)
	}
	if all := fs.List(""); len(all) != 4 {
		t.Fatalf("List(all) = %v", all)
	}
	if n := fs.DeleteTree("Root"); n != 3 {
		t.Fatalf("DeleteTree removed %d", n)
	}
	if fs.FileCount() != 1 {
		t.Fatalf("FileCount = %d", fs.FileCount())
	}
}

func TestDeleteMissing(t *testing.T) {
	fs := New(1, 1)
	if err := fs.Delete("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestSize(t *testing.T) {
	fs := New(1, 1)
	fs.Write("f", make([]byte, 321))
	sz, err := fs.Size("f")
	if err != nil || sz != 321 {
		t.Fatalf("Size = %d, %v", sz, err)
	}
	if _, err := fs.Size("g"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentWritersDistinctFiles(t *testing.T) {
	// The paper's layout has every worker write its own file; the FS must
	// be safe and lose nothing under that pattern.
	fs := New(8, 2)
	var wg sync.WaitGroup
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				fs.Write(fmt.Sprintf("L2/L.%d.%d", w, i), []byte{byte(w), byte(i)})
			}
		}(w)
	}
	wg.Wait()
	if fs.FileCount() != 32*20 {
		t.Fatalf("FileCount = %d", fs.FileCount())
	}
	for w := 0; w < 32; w++ {
		data, err := fs.Read(fmt.Sprintf("L2/L.%d.19", w))
		if err != nil || data[0] != byte(w) {
			t.Fatalf("worker %d file corrupted: %v %v", w, data, err)
		}
	}
}

func TestMaxConcurrentReaders(t *testing.T) {
	fs := New(1, 1)
	fs.Write("f", []byte("z"))
	for i := 0; i < 3; i++ {
		if _, err := fs.Read("f"); err != nil {
			t.Fatal(err)
		}
	}
	// Reads under a single mutex are serialized, so the max is 1 —
	// matching the layout's design goal.
	mr, err := fs.MaxConcurrentReaders("f")
	if err != nil {
		t.Fatal(err)
	}
	if mr != 1 {
		t.Fatalf("MaxConcurrentReaders = %d", mr)
	}
	if _, err := fs.MaxConcurrentReaders("g"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestMatrixRoundTrip(t *testing.T) {
	fs := New(4, 3)
	m := workload.Random(17, 55)
	if err := fs.WriteMatrix("Root/A1/A.0", m); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadMatrix("Root/A1/A.0")
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(got, m, 0) {
		t.Fatal("matrix round-trip not exact")
	}
	got2, err := fs.ReadMatrixFrom("Root/A1/A.0", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(got2, m, 0) {
		t.Fatal("ReadMatrixFrom mismatch")
	}
}

func TestMatrixTextRoundTrip(t *testing.T) {
	fs := New(1, 1)
	m := workload.Random(9, 56)
	if err := fs.WriteMatrixText("a.txt", m); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadMatrixText("a.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(got, m, 0) {
		t.Fatal("text matrix round-trip not exact")
	}
}

func TestReadMatrixCorrupt(t *testing.T) {
	fs := New(1, 1)
	fs.Write("bad", []byte("not a matrix"))
	if _, err := fs.ReadMatrix("bad"); err == nil {
		t.Fatal("corrupt matrix accepted")
	}
	if _, err := fs.ReadMatrixText("bad"); err == nil {
		t.Fatal("corrupt text matrix accepted")
	}
}

func TestResetStats(t *testing.T) {
	fs := New(2, 2)
	fs.Write("f", []byte("abc"))
	fs.ResetStats()
	if st := fs.Stats(); st != (Stats{}) {
		t.Fatalf("stats not reset: %+v", st)
	}
	if !fs.Exists("f") {
		t.Fatal("ResetStats must keep files")
	}
}

// Property: bytes written/read accounting is exact for arbitrary payloads.
func TestQuickByteAccounting(t *testing.T) {
	f := func(sizes []uint16) bool {
		fs := New(3, 2)
		var total int64
		for i, s := range sizes {
			n := int(s % 4096)
			fs.Write(fmt.Sprintf("f%d", i), make([]byte, n))
			total += int64(n)
		}
		st := fs.Stats()
		if st.BytesWritten != total || st.BytesReplicated != 2*total {
			return false
		}
		for i, s := range sizes {
			if _, err := fs.Read(fmt.Sprintf("f%d", i)); err != nil {
				return false
			}
			_ = s
		}
		return fs.Stats().BytesRead == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
