// Package dfs is an in-memory stand-in for HDFS: a concurrency-safe
// distributed file system simulator with a hierarchical namespace,
// replication, block placement across simulated datanodes, and precise
// byte-level accounting of reads, writes, and network transfer.
//
// The HPDC 2014 paper's implementation stores every input, intermediate,
// and output matrix in HDFS files under a work directory (Figure 4), and
// its I/O optimizations (Section 6) are claims about how many bytes cross
// this file system and how many workers touch each file. This package
// reproduces those observable properties; it does not persist anything to
// the local disk.
package dfs

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"
	"sync"

	"repro/internal/obs"
)

// Common errors.
var (
	ErrNotFound = errors.New("dfs: file not found")
	ErrExists   = errors.New("dfs: file already exists")
	ErrIsDir    = errors.New("dfs: path is a directory")
	// ErrCorrupt is returned when every replica of a file fails its
	// checksum.
	ErrCorrupt = errors.New("dfs: all replicas corrupt")
)

// DefaultReplication mirrors HDFS's default replication factor of 3, which
// the paper uses ("matrices are stored in HDFS with the default replication
// factor of 3").
const DefaultReplication = 3

// file is one stored object. Each replica holds its own copy of the data
// so corruption can hit one replica without touching the others, as on
// real HDFS datanodes; sum is the CRC-32 checksum HDFS verifies on read.
type file struct {
	copies   [][]byte
	sum      uint32
	replicas []int // datanode ids holding a replica
	// readers tracks the current and maximum number of simultaneous
	// readers, supporting the paper's Section 5.2 claim that its layout
	// never has two mappers reading or writing the same file at once.
	readers    int
	maxReaders int
	writes     int   // number of times this path was (re)written
	bytesRead  int64 // cumulative bytes served from this path
}

// Stats is a snapshot of the accumulated I/O accounting.
type Stats struct {
	BytesWritten     int64 // logical bytes written by clients
	BytesReplicated  int64 // bytes written including replication copies
	BytesRead        int64 // bytes read by clients
	BytesTransferred int64 // bytes that crossed the simulated network
	FilesCreated     int64
	ReadOps          int64
	WriteOps         int64
	// CorruptionsHealed counts reads that found a corrupt replica and
	// served (and restored it from) a healthy one.
	CorruptionsHealed int64
}

// FS is the simulated distributed file system.
type FS struct {
	mu          sync.Mutex
	files       map[string]*file
	nodes       int
	replication int
	nextNode    int
	stats       Stats
	// nodeRead[i] / nodeWritten[i] are the byte flows through datanode i:
	// bytes read by a task running on node i, and bytes landed on node i
	// as a replica. masterRead accounts node-less (driver) reads.
	nodeRead    []int64
	nodeWritten []int64
	masterRead  int64
	// metrics, when non-nil, mirrors the accounting into an obs registry.
	metrics struct {
		bytesRead, bytesWritten, bytesTransferred *obs.Counter
		readOps, writeOps                         *obs.Counter
	}
	// injectReadErr, when non-nil, is consulted on every read; a non-nil
	// return aborts the read (a transient datanode failure). Set with
	// InjectReadErrors.
	injectReadErr func(path string) error
}

// SetMetrics mirrors the file system's byte accounting into reg (nil
// detaches). Counters are resolved once here so the read/write paths pay
// no map lookups.
func (fs *FS) SetMetrics(reg *obs.Registry) {
	fs.mu.Lock()
	fs.metrics.bytesRead = reg.Counter("dfs.bytes_read")
	fs.metrics.bytesWritten = reg.Counter("dfs.bytes_written")
	fs.metrics.bytesTransferred = reg.Counter("dfs.bytes_transferred")
	fs.metrics.readOps = reg.Counter("dfs.read_ops")
	fs.metrics.writeOps = reg.Counter("dfs.write_ops")
	fs.mu.Unlock()
}

// NodeIO is one datanode's cumulative byte flow.
type NodeIO struct {
	Node         int
	BytesRead    int64 // bytes read by tasks executing on this node
	BytesWritten int64 // bytes landed on this node as a replica
}

// PerNodeIO returns the byte flow through every datanode, in node order.
func (fs *FS) PerNodeIO() []NodeIO {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]NodeIO, fs.nodes)
	for i := range out {
		out[i] = NodeIO{Node: i, BytesRead: fs.nodeRead[i], BytesWritten: fs.nodeWritten[i]}
	}
	return out
}

// MasterBytesRead returns the bytes read without a node identity (the
// MapReduce master / pipeline driver).
func (fs *FS) MasterBytesRead() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.masterRead
}

// FileIO is one file's cumulative read volume.
type FileIO struct {
	Path      string
	BytesRead int64
}

// HotFiles returns the k most-read files, by bytes served, descending
// (ties broken by path). It answers "which file bounded the shuffle" the
// way the paper's Section 6 reasons about per-file I/O.
func (fs *FS) HotFiles(k int) []FileIO {
	fs.mu.Lock()
	out := make([]FileIO, 0, len(fs.files))
	for p, f := range fs.files {
		if f.bytesRead > 0 {
			out = append(out, FileIO{Path: p, BytesRead: f.bytesRead})
		}
	}
	fs.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].BytesRead != out[j].BytesRead {
			return out[i].BytesRead > out[j].BytesRead
		}
		return out[i].Path < out[j].Path
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// InjectReadErrors installs a read fault injector (nil disables). The
// MapReduce engine's task retry turns such transient failures into
// re-executed attempts, like Hadoop re-reading from HDFS.
func (fs *FS) InjectReadErrors(f func(path string) error) {
	fs.mu.Lock()
	fs.injectReadErr = f
	fs.mu.Unlock()
}

// New creates a file system simulator with the given number of datanodes
// and replication factor. Replication is capped at the node count.
func New(nodes, replication int) *FS {
	if nodes < 1 {
		nodes = 1
	}
	if replication < 1 {
		replication = 1
	}
	if replication > nodes {
		replication = nodes
	}
	return &FS{
		files:       make(map[string]*file),
		nodes:       nodes,
		replication: replication,
		nodeRead:    make([]int64, nodes),
		nodeWritten: make([]int64, nodes),
	}
}

// Clean normalizes a path: no leading/trailing slashes, no empty segments.
func Clean(path string) string {
	parts := strings.Split(path, "/")
	out := parts[:0]
	for _, p := range parts {
		if p != "" && p != "." {
			out = append(out, p)
		}
	}
	return strings.Join(out, "/")
}

// Write stores data at path, overwriting any existing file. Replicas are
// placed round-robin across datanodes, charging replicated bytes and
// (replication-1)/replication of them as network transfer — the pipeline
// copies HDFS makes to the other replica holders.
func (fs *FS) Write(path string, data []byte) {
	path = Clean(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		f = &file{replicas: fs.placeLocked()}
		fs.files[path] = f
		fs.stats.FilesCreated++
	}
	f.copies = make([][]byte, len(f.replicas))
	for i := range f.copies {
		f.copies[i] = append([]byte(nil), data...)
	}
	f.sum = crc32.ChecksumIEEE(data)
	f.writes++
	fs.stats.WriteOps++
	fs.stats.BytesWritten += int64(len(data))
	fs.stats.BytesReplicated += int64(len(data) * len(f.replicas))
	fs.stats.BytesTransferred += int64(len(data) * (len(f.replicas) - 1))
	for _, r := range f.replicas {
		fs.nodeWritten[r] += int64(len(data))
	}
	fs.metrics.writeOps.Add(1)
	fs.metrics.bytesWritten.Add(int64(len(data)))
	fs.metrics.bytesTransferred.Add(int64(len(data) * (len(f.replicas) - 1)))
}

// placeLocked chooses replica nodes for a new file round-robin.
func (fs *FS) placeLocked() []int {
	reps := make([]int, fs.replication)
	for i := range reps {
		reps[i] = (fs.nextNode + i) % fs.nodes
	}
	fs.nextNode = (fs.nextNode + 1) % fs.nodes
	return reps
}

// Create stores an empty file at path, failing if it already exists.
func (fs *FS) Create(path string) error {
	path = Clean(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[path]; ok {
		return fmt.Errorf("%s: %w", path, ErrExists)
	}
	reps := fs.placeLocked()
	fs.files[path] = &file{replicas: reps, copies: make([][]byte, len(reps)), sum: crc32.ChecksumIEEE(nil)}
	fs.stats.FilesCreated++
	fs.stats.WriteOps++
	return nil
}

// Read returns a copy of the file's contents, charging a local read
// (no transfer). Equivalent to ReadFrom with a node holding a replica.
func (fs *FS) Read(path string) ([]byte, error) {
	return fs.readInternal(path, -1)
}

// ReadFrom returns the file's contents as read by the given datanode.
// If the node does not hold a replica, the bytes are charged as network
// transfer — this is how data-locality effects become visible in Stats.
func (fs *FS) ReadFrom(path string, node int) ([]byte, error) {
	return fs.readInternal(path, node)
}

func (fs *FS) readInternal(path string, node int) ([]byte, error) {
	path = Clean(path)
	fs.mu.Lock()
	if fs.injectReadErr != nil {
		if err := fs.injectReadErr(path); err != nil {
			fs.mu.Unlock()
			return nil, fmt.Errorf("dfs: injected read failure on %s: %w", path, err)
		}
	}
	f, ok := fs.files[path]
	if !ok {
		fs.mu.Unlock()
		return nil, fmt.Errorf("%s: %w", path, ErrNotFound)
	}
	f.readers++
	if f.readers > f.maxReaders {
		f.maxReaders = f.readers
	}
	// Checksum verification: serve the first healthy replica; heal any
	// corrupt copies from it (HDFS re-replicates on checksum failure).
	good := -1
	corrupt := 0
	for i, c := range f.copies {
		if crc32.ChecksumIEEE(c) == f.sum {
			good = i
		} else {
			corrupt++
		}
	}
	if good < 0 {
		f.readers--
		fs.mu.Unlock()
		return nil, fmt.Errorf("%s: %w", path, ErrCorrupt)
	}
	if corrupt > 0 {
		for i, c := range f.copies {
			if crc32.ChecksumIEEE(c) != f.sum {
				f.copies[i] = append([]byte(nil), f.copies[good]...)
				// Healing copies the block across the network.
				fs.stats.BytesTransferred += int64(len(f.copies[good]))
			}
		}
		fs.stats.CorruptionsHealed += int64(corrupt)
	}
	data := f.copies[good]
	fs.stats.ReadOps++
	fs.stats.BytesRead += int64(len(data))
	f.bytesRead += int64(len(data))
	fs.metrics.readOps.Add(1)
	fs.metrics.bytesRead.Add(int64(len(data)))
	if node >= 0 && node < len(fs.nodeRead) {
		fs.nodeRead[node] += int64(len(data))
	} else {
		fs.masterRead += int64(len(data))
	}
	if node >= 0 {
		local := false
		for _, r := range f.replicas {
			if r == node {
				local = true
				break
			}
		}
		if !local {
			fs.stats.BytesTransferred += int64(len(data))
			fs.metrics.bytesTransferred.Add(int64(len(data)))
		}
	}
	out := append([]byte(nil), data...)
	f.readers--
	fs.mu.Unlock()
	return out, nil
}

// Corrupt flips a byte in one replica of the file — the fault-injection
// hook for checksum/healing tests. It fails if the replica index is out
// of range or the file is empty.
func (fs *FS) Corrupt(path string, replica int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[Clean(path)]
	if !ok {
		return fmt.Errorf("%s: %w", Clean(path), ErrNotFound)
	}
	if replica < 0 || replica >= len(f.copies) {
		return fmt.Errorf("dfs: Corrupt %s: replica %d of %d", path, replica, len(f.copies))
	}
	if len(f.copies[replica]) == 0 {
		return fmt.Errorf("dfs: Corrupt %s: empty file", path)
	}
	cp := append([]byte(nil), f.copies[replica]...)
	cp[len(cp)/2] ^= 0xff
	f.copies[replica] = cp
	return nil
}

// Exists reports whether path holds a file.
func (fs *FS) Exists(path string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[Clean(path)]
	return ok
}

// Size returns the byte size of the file at path.
func (fs *FS) Size(path string) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[Clean(path)]
	if !ok {
		return 0, fmt.Errorf("%s: %w", path, ErrNotFound)
	}
	if len(f.copies) == 0 {
		return 0, nil
	}
	return int64(len(f.copies[0])), nil
}

// Replicas returns the datanode ids holding the file.
func (fs *FS) Replicas(path string) ([]int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[Clean(path)]
	if !ok {
		return nil, fmt.Errorf("%s: %w", path, ErrNotFound)
	}
	return append([]int(nil), f.replicas...), nil
}

// MaxConcurrentReaders returns the largest number of simultaneous readers
// the file has seen. The paper's file layout keeps this at 1 for all
// intermediate files (Section 5.2).
func (fs *FS) MaxConcurrentReaders(path string) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[Clean(path)]
	if !ok {
		return 0, fmt.Errorf("%s: %w", path, ErrNotFound)
	}
	return f.maxReaders, nil
}

// WriteCount returns how many times path has been written. The layout's
// no-synchronization claim implies 1 for every intermediate file.
func (fs *FS) WriteCount(path string) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[Clean(path)]
	if !ok {
		return 0, fmt.Errorf("%s: %w", path, ErrNotFound)
	}
	return f.writes, nil
}

// Delete removes the file at path.
func (fs *FS) Delete(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	path = Clean(path)
	if _, ok := fs.files[path]; !ok {
		return fmt.Errorf("%s: %w", path, ErrNotFound)
	}
	delete(fs.files, path)
	return nil
}

// DeleteTree removes every file under the directory prefix.
func (fs *FS) DeleteTree(dir string) int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir = Clean(dir)
	prefix := dir + "/"
	n := 0
	for p := range fs.files {
		if p == dir || strings.HasPrefix(p, prefix) {
			delete(fs.files, p)
			n++
		}
	}
	return n
}

// List returns the sorted paths of all files under the directory prefix.
func (fs *FS) List(dir string) []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir = Clean(dir)
	prefix := dir + "/"
	if dir == "" {
		prefix = ""
	}
	var out []string
	for p := range fs.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Du returns the total bytes stored under the directory prefix (logical
// size of the primary copies, not counting replication).
func (fs *FS) Du(dir string) int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir = Clean(dir)
	prefix := dir + "/"
	if dir == "" {
		prefix = ""
	}
	var total int64
	for p, f := range fs.files {
		if strings.HasPrefix(p, prefix) && len(f.copies) > 0 {
			total += int64(len(f.copies[0]))
		}
	}
	return total
}

// FileCount returns the total number of files, a metric the Section 6.1
// separate-files optimization reasons about (N(d) files per triangular
// factor).
func (fs *FS) FileCount() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.files)
}

// Stats returns a snapshot of the accounting counters.
func (fs *FS) Stats() Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.stats
}

// ResetStats zeroes the accounting counters, including the per-node byte
// flows (files are kept).
func (fs *FS) ResetStats() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.stats = Stats{}
	fs.nodeRead = make([]int64, fs.nodes)
	fs.nodeWritten = make([]int64, fs.nodes)
	fs.masterRead = 0
}

// Nodes returns the number of simulated datanodes.
func (fs *FS) Nodes() int { return fs.nodes }
