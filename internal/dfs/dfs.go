// Package dfs is an in-memory stand-in for HDFS: a concurrency-safe
// distributed file system simulator with a hierarchical namespace,
// replication, block placement across simulated datanodes, and precise
// byte-level accounting of reads, writes, and network transfer.
//
// The HPDC 2014 paper's implementation stores every input, intermediate,
// and output matrix in HDFS files under a work directory (Figure 4), and
// its I/O optimizations (Section 6) are claims about how many bytes cross
// this file system and how many workers touch each file. This package
// reproduces those observable properties; it does not persist anything to
// the local disk.
package dfs

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"
	"sync"

	"repro/internal/obs"
)

// Common errors.
var (
	ErrNotFound = errors.New("dfs: file not found")
	ErrExists   = errors.New("dfs: file already exists")
	ErrIsDir    = errors.New("dfs: path is a directory")
	// ErrCorrupt is returned when every replica of a file fails its
	// checksum.
	ErrCorrupt = errors.New("dfs: all replicas corrupt")
	// ErrNoReplica is returned when every datanode holding the file has
	// died before re-replication could restore a copy — the data is gone,
	// as it would be on HDFS after losing all replica holders.
	ErrNoReplica = errors.New("dfs: no live replica")
	// ErrLastNode rejects killing the only live datanode: a cluster with
	// zero nodes cannot make progress or heal.
	ErrLastNode = errors.New("dfs: cannot kill the last live node")
	// ErrNodeState reports an invalid kill/restart transition (killing a
	// dead node, restarting a live one, or an out-of-range node id).
	ErrNodeState = errors.New("dfs: invalid node state transition")
)

// DefaultReplication mirrors HDFS's default replication factor of 3, which
// the paper uses ("matrices are stored in HDFS with the default replication
// factor of 3").
const DefaultReplication = 3

// file is one stored object. Each replica holds its own copy of the data
// so corruption can hit one replica without touching the others, as on
// real HDFS datanodes; sum is the CRC-32 checksum HDFS verifies on read.
type file struct {
	copies   [][]byte
	sum      uint32
	replicas []int // datanode ids holding a replica
	// readers tracks the current and maximum number of simultaneous
	// readers, supporting the paper's Section 5.2 claim that its layout
	// never has two mappers reading or writing the same file at once.
	readers    int
	maxReaders int
	writes     int   // number of times this path was (re)written
	bytesRead  int64 // cumulative bytes served from this path
}

// Stats is a snapshot of the accumulated I/O accounting.
type Stats struct {
	BytesWritten     int64 // logical bytes written by clients
	BytesReplicated  int64 // bytes written including replication copies
	BytesRead        int64 // bytes read by clients
	BytesTransferred int64 // bytes that crossed the simulated network
	FilesCreated     int64
	ReadOps          int64
	WriteOps         int64
	// CorruptionsHealed counts reads that found a corrupt replica and
	// served (and restored it from) a healthy one.
	CorruptionsHealed int64
	// ReplicasLost counts replicas dropped because their datanode died.
	ReplicasLost int64
	// ReReplications counts replica copies made by ReReplicate to restore
	// the replication factor after node deaths.
	ReReplications int64
	// BytesReReplicated counts the bytes those healing copies moved across
	// the network (also charged to BytesTransferred).
	BytesReReplicated int64
}

// FS is the simulated distributed file system.
type FS struct {
	mu          sync.Mutex
	files       map[string]*file
	nodes       int
	replication int
	nextNode    int
	stats       Stats
	// alive[i] reports whether datanode i is up. Dead nodes hold no
	// replicas (their copies are dropped when they die, like blocks on a
	// dead HDFS datanode) and receive no new placements until restarted.
	alive []bool
	// nodeRead[i] / nodeWritten[i] are the byte flows through datanode i:
	// bytes read by a task running on node i, and bytes landed on node i
	// as a replica. masterRead accounts node-less (driver) reads.
	nodeRead    []int64
	nodeWritten []int64
	masterRead  int64
	// metrics, when non-nil, mirrors the accounting into an obs registry.
	metrics struct {
		bytesRead, bytesWritten, bytesTransferred *obs.Counter
		readOps, writeOps                         *obs.Counter
		bytesReReplicated                         *obs.Counter
	}
	// injectReadErr, when non-nil, is consulted on every read; a non-nil
	// return aborts the read (a transient datanode failure). Set with
	// InjectReadErrors.
	injectReadErr func(path string) error
}

// SetMetrics mirrors the file system's byte accounting into reg (nil
// detaches). Counters are resolved once here so the read/write paths pay
// no map lookups.
func (fs *FS) SetMetrics(reg *obs.Registry) {
	fs.mu.Lock()
	fs.metrics.bytesRead = reg.Counter("dfs.bytes_read")
	fs.metrics.bytesWritten = reg.Counter("dfs.bytes_written")
	fs.metrics.bytesTransferred = reg.Counter("dfs.bytes_transferred")
	fs.metrics.readOps = reg.Counter("dfs.read_ops")
	fs.metrics.writeOps = reg.Counter("dfs.write_ops")
	fs.metrics.bytesReReplicated = reg.Counter("dfs.bytes_rereplicated")
	fs.mu.Unlock()
}

// NodeIO is one datanode's cumulative byte flow.
type NodeIO struct {
	Node         int
	BytesRead    int64 // bytes read by tasks executing on this node
	BytesWritten int64 // bytes landed on this node as a replica
}

// PerNodeIO returns the byte flow through every datanode, in node order.
func (fs *FS) PerNodeIO() []NodeIO {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]NodeIO, fs.nodes)
	for i := range out {
		out[i] = NodeIO{Node: i, BytesRead: fs.nodeRead[i], BytesWritten: fs.nodeWritten[i]}
	}
	return out
}

// MasterBytesRead returns the bytes read without a node identity (the
// MapReduce master / pipeline driver).
func (fs *FS) MasterBytesRead() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.masterRead
}

// FileIO is one file's cumulative read volume.
type FileIO struct {
	Path      string
	BytesRead int64
}

// HotFiles returns the k most-read files, by bytes served, descending
// (ties broken by path). It answers "which file bounded the shuffle" the
// way the paper's Section 6 reasons about per-file I/O.
func (fs *FS) HotFiles(k int) []FileIO {
	fs.mu.Lock()
	out := make([]FileIO, 0, len(fs.files))
	for p, f := range fs.files {
		if f.bytesRead > 0 {
			out = append(out, FileIO{Path: p, BytesRead: f.bytesRead})
		}
	}
	fs.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].BytesRead != out[j].BytesRead {
			return out[i].BytesRead > out[j].BytesRead
		}
		return out[i].Path < out[j].Path
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// InjectReadErrors installs a read fault injector (nil disables). The
// MapReduce engine's task retry turns such transient failures into
// re-executed attempts, like Hadoop re-reading from HDFS.
func (fs *FS) InjectReadErrors(f func(path string) error) {
	fs.mu.Lock()
	fs.injectReadErr = f
	fs.mu.Unlock()
}

// New creates a file system simulator with the given number of datanodes
// and replication factor. Replication is capped at the node count.
func New(nodes, replication int) *FS {
	if nodes < 1 {
		nodes = 1
	}
	if replication < 1 {
		replication = 1
	}
	if replication > nodes {
		replication = nodes
	}
	alive := make([]bool, nodes)
	for i := range alive {
		alive[i] = true
	}
	return &FS{
		files:       make(map[string]*file),
		nodes:       nodes,
		replication: replication,
		nodeRead:    make([]int64, nodes),
		nodeWritten: make([]int64, nodes),
		alive:       alive,
	}
}

// Clean normalizes a path: no leading/trailing slashes, no empty segments.
func Clean(path string) string {
	parts := strings.Split(path, "/")
	out := parts[:0]
	for _, p := range parts {
		if p != "" && p != "." {
			out = append(out, p)
		}
	}
	return strings.Join(out, "/")
}

// Write stores data at path, overwriting any existing file. Replicas are
// placed round-robin across datanodes, charging replicated bytes and
// (replication-1)/replication of them as network transfer — the pipeline
// copies HDFS makes to the other replica holders.
func (fs *FS) Write(path string, data []byte) {
	path = Clean(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		f = &file{replicas: fs.placeLocked()}
		fs.files[path] = f
		fs.stats.FilesCreated++
	}
	if len(f.replicas) == 0 {
		// Every holder died since the file was written; a rewrite places
		// it fresh on live nodes.
		f.replicas = fs.placeLocked()
	}
	f.copies = make([][]byte, len(f.replicas))
	for i := range f.copies {
		f.copies[i] = append([]byte(nil), data...)
	}
	f.sum = crc32.ChecksumIEEE(data)
	f.writes++
	fs.stats.WriteOps++
	fs.stats.BytesWritten += int64(len(data))
	fs.stats.BytesReplicated += int64(len(data) * len(f.replicas))
	fs.stats.BytesTransferred += int64(len(data) * (len(f.replicas) - 1))
	for _, r := range f.replicas {
		fs.nodeWritten[r] += int64(len(data))
	}
	fs.metrics.writeOps.Add(1)
	fs.metrics.bytesWritten.Add(int64(len(data)))
	fs.metrics.bytesTransferred.Add(int64(len(data) * (len(f.replicas) - 1)))
}

// WriteFrom stores data at path with an explicit replica placement —
// HDFS's favored-nodes write path. The file's replicas land exactly on
// the requested nodes (deduplicated, dead nodes skipped, falling back to
// round-robin placement when none survive). writer is the datanode
// producing the bytes (-1 for the master): every replica on a node other
// than the writer is charged as network transfer, so placing replicas on
// the nodes that will read the file converts read-side shuffle into the
// one-time pipelined copy the write already pays for. Unlike Write, a
// rewrite re-places the file on the requested nodes, keeping layouts
// deterministic across task retries.
func (fs *FS) WriteFrom(path string, data []byte, writer int, nodes []int) {
	path = Clean(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var reps []int
	for _, n := range nodes {
		if n < 0 || n >= fs.nodes || !fs.alive[n] {
			continue
		}
		dup := false
		for _, r := range reps {
			if r == n {
				dup = true
				break
			}
		}
		if !dup {
			reps = append(reps, n)
		}
	}
	if len(reps) == 0 {
		reps = fs.placeLocked()
	}
	f, ok := fs.files[path]
	if !ok {
		f = &file{}
		fs.files[path] = f
		fs.stats.FilesCreated++
	}
	f.replicas = reps
	f.copies = make([][]byte, len(reps))
	for i := range f.copies {
		f.copies[i] = append([]byte(nil), data...)
	}
	f.sum = crc32.ChecksumIEEE(data)
	f.writes++
	transfers := len(reps) - 1
	if writer >= 0 {
		transfers = 0
		for _, r := range reps {
			if r != writer {
				transfers++
			}
		}
	}
	fs.stats.WriteOps++
	fs.stats.BytesWritten += int64(len(data))
	fs.stats.BytesReplicated += int64(len(data) * len(reps))
	fs.stats.BytesTransferred += int64(len(data) * transfers)
	for _, r := range reps {
		fs.nodeWritten[r] += int64(len(data))
	}
	fs.metrics.writeOps.Add(1)
	fs.metrics.bytesWritten.Add(int64(len(data)))
	fs.metrics.bytesTransferred.Add(int64(len(data) * transfers))
}

// placeLocked chooses replica nodes for a new file round-robin over the
// live datanodes, never placing two replicas of one file on the same node
// and never on a dead one. The replica count is capped at the live node
// count.
func (fs *FS) placeLocked() []int {
	return fs.placeAvoidingLocked(fs.replication, nil)
}

// placeAvoidingLocked picks up to want distinct live nodes, skipping any
// node in avoid (existing replica holders, during re-replication). Scans
// round-robin from nextNode so placements stay spread.
func (fs *FS) placeAvoidingLocked(want int, avoid []int) []int {
	avoided := func(n int) bool {
		for _, a := range avoid {
			if a == n {
				return true
			}
		}
		return false
	}
	var reps []int
	for off := 0; off < fs.nodes && len(reps) < want; off++ {
		n := (fs.nextNode + off) % fs.nodes
		if fs.alive[n] && !avoided(n) {
			reps = append(reps, n)
		}
	}
	fs.nextNode = (fs.nextNode + 1) % fs.nodes
	return reps
}

// Create stores an empty file at path, failing if it already exists.
func (fs *FS) Create(path string) error {
	path = Clean(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[path]; ok {
		return fmt.Errorf("%s: %w", path, ErrExists)
	}
	reps := fs.placeLocked()
	fs.files[path] = &file{replicas: reps, copies: make([][]byte, len(reps)), sum: crc32.ChecksumIEEE(nil)}
	fs.stats.FilesCreated++
	fs.stats.WriteOps++
	return nil
}

// Read returns a copy of the file's contents, charging a local read
// (no transfer). Equivalent to ReadFrom with a node holding a replica.
func (fs *FS) Read(path string) ([]byte, error) {
	return fs.readInternal(path, -1)
}

// ReadFrom returns the file's contents as read by the given datanode.
// If the node does not hold a replica, the bytes are charged as network
// transfer — this is how data-locality effects become visible in Stats.
func (fs *FS) ReadFrom(path string, node int) ([]byte, error) {
	return fs.readInternal(path, node)
}

func (fs *FS) readInternal(path string, node int) ([]byte, error) {
	path = Clean(path)
	fs.mu.Lock()
	if fs.injectReadErr != nil {
		if err := fs.injectReadErr(path); err != nil {
			fs.mu.Unlock()
			return nil, fmt.Errorf("dfs: injected read failure on %s: %w", path, err)
		}
	}
	f, ok := fs.files[path]
	if !ok {
		fs.mu.Unlock()
		return nil, fmt.Errorf("%s: %w", path, ErrNotFound)
	}
	if len(f.replicas) == 0 {
		fs.mu.Unlock()
		return nil, fmt.Errorf("%s: %w", path, ErrNoReplica)
	}
	f.readers++
	if f.readers > f.maxReaders {
		f.maxReaders = f.readers
	}
	// Checksum verification: serve the first healthy replica; heal any
	// corrupt copies from it (HDFS re-replicates on checksum failure).
	good := -1
	corrupt := 0
	for i, c := range f.copies {
		if crc32.ChecksumIEEE(c) == f.sum {
			good = i
		} else {
			corrupt++
		}
	}
	if good < 0 {
		f.readers--
		fs.mu.Unlock()
		return nil, fmt.Errorf("%s: %w", path, ErrCorrupt)
	}
	if corrupt > 0 {
		for i, c := range f.copies {
			if crc32.ChecksumIEEE(c) != f.sum {
				f.copies[i] = append([]byte(nil), f.copies[good]...)
				// Healing copies the block across the network.
				fs.stats.BytesTransferred += int64(len(f.copies[good]))
			}
		}
		fs.stats.CorruptionsHealed += int64(corrupt)
	}
	data := f.copies[good]
	fs.stats.ReadOps++
	fs.stats.BytesRead += int64(len(data))
	f.bytesRead += int64(len(data))
	fs.metrics.readOps.Add(1)
	fs.metrics.bytesRead.Add(int64(len(data)))
	if node >= 0 && node < len(fs.nodeRead) {
		fs.nodeRead[node] += int64(len(data))
	} else {
		fs.masterRead += int64(len(data))
	}
	if node >= 0 {
		local := false
		for _, r := range f.replicas {
			if r == node {
				local = true
				break
			}
		}
		if !local {
			fs.stats.BytesTransferred += int64(len(data))
			fs.metrics.bytesTransferred.Add(int64(len(data)))
		}
	}
	out := append([]byte(nil), data...)
	f.readers--
	fs.mu.Unlock()
	return out, nil
}

// Corrupt flips a byte in one replica of the file — the fault-injection
// hook for checksum/healing tests. It fails if the replica index is out
// of range or the file is empty.
func (fs *FS) Corrupt(path string, replica int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[Clean(path)]
	if !ok {
		return fmt.Errorf("%s: %w", Clean(path), ErrNotFound)
	}
	if replica < 0 || replica >= len(f.copies) {
		return fmt.Errorf("dfs: Corrupt %s: replica %d of %d", path, replica, len(f.copies))
	}
	if len(f.copies[replica]) == 0 {
		return fmt.Errorf("dfs: Corrupt %s: empty file", path)
	}
	cp := append([]byte(nil), f.copies[replica]...)
	cp[len(cp)/2] ^= 0xff
	f.copies[replica] = cp
	return nil
}

// Exists reports whether path holds a file.
func (fs *FS) Exists(path string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[Clean(path)]
	return ok
}

// Size returns the byte size of the file at path.
func (fs *FS) Size(path string) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[Clean(path)]
	if !ok {
		return 0, fmt.Errorf("%s: %w", path, ErrNotFound)
	}
	if len(f.copies) == 0 {
		return 0, nil
	}
	return int64(len(f.copies[0])), nil
}

// Replicas returns the datanode ids holding the file.
func (fs *FS) Replicas(path string) ([]int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[Clean(path)]
	if !ok {
		return nil, fmt.Errorf("%s: %w", path, ErrNotFound)
	}
	return append([]int(nil), f.replicas...), nil
}

// MaxConcurrentReaders returns the largest number of simultaneous readers
// the file has seen. The paper's file layout keeps this at 1 for all
// intermediate files (Section 5.2).
func (fs *FS) MaxConcurrentReaders(path string) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[Clean(path)]
	if !ok {
		return 0, fmt.Errorf("%s: %w", path, ErrNotFound)
	}
	return f.maxReaders, nil
}

// WriteCount returns how many times path has been written. The layout's
// no-synchronization claim implies 1 for every intermediate file.
func (fs *FS) WriteCount(path string) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[Clean(path)]
	if !ok {
		return 0, fmt.Errorf("%s: %w", path, ErrNotFound)
	}
	return f.writes, nil
}

// Delete removes the file at path.
func (fs *FS) Delete(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	path = Clean(path)
	if _, ok := fs.files[path]; !ok {
		return fmt.Errorf("%s: %w", path, ErrNotFound)
	}
	delete(fs.files, path)
	return nil
}

// DeleteTree removes every file under the directory prefix.
func (fs *FS) DeleteTree(dir string) int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir = Clean(dir)
	prefix := dir + "/"
	n := 0
	for p := range fs.files {
		if p == dir || strings.HasPrefix(p, prefix) {
			delete(fs.files, p)
			n++
		}
	}
	return n
}

// List returns the sorted paths of all files under the directory prefix.
func (fs *FS) List(dir string) []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir = Clean(dir)
	prefix := dir + "/"
	if dir == "" {
		prefix = ""
	}
	var out []string
	for p := range fs.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Du returns the total bytes stored under the directory prefix (logical
// size of the primary copies, not counting replication).
func (fs *FS) Du(dir string) int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir = Clean(dir)
	prefix := dir + "/"
	if dir == "" {
		prefix = ""
	}
	var total int64
	for p, f := range fs.files {
		if strings.HasPrefix(p, prefix) && len(f.copies) > 0 {
			total += int64(len(f.copies[0]))
		}
	}
	return total
}

// FileCount returns the total number of files, a metric the Section 6.1
// separate-files optimization reasons about (N(d) files per triangular
// factor).
func (fs *FS) FileCount() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.files)
}

// Stats returns a snapshot of the accounting counters.
func (fs *FS) Stats() Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.stats
}

// ResetStats zeroes the accounting counters, including the per-node byte
// flows (files are kept).
func (fs *FS) ResetStats() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.stats = Stats{}
	fs.nodeRead = make([]int64, fs.nodes)
	fs.nodeWritten = make([]int64, fs.nodes)
	fs.masterRead = 0
}

// Nodes returns the number of simulated datanodes.
func (fs *FS) Nodes() int { return fs.nodes }

// ---- Node failure model ----
//
// The paper's Section 7.4 robustness claim rests on HDFS surviving
// datanode deaths: replicas on a dead node are lost, the namenode notices
// under-replicated blocks and copies them back up to the replication
// factor on the surviving nodes, and new placements avoid dead nodes. The
// methods below reproduce exactly that observable contract; the chaos
// engine drives them on a deterministic schedule.

// KillNode marks datanode n dead and drops every replica it held (the
// blocks die with the machine). Files whose last replica was on n become
// unreadable (ErrNoReplica) until rewritten. Killing the only live node
// is rejected with ErrLastNode.
func (fs *FS) KillNode(n int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if n < 0 || n >= fs.nodes || !fs.alive[n] {
		return fmt.Errorf("dfs: KillNode %d: %w", n, ErrNodeState)
	}
	if fs.aliveCountLocked() <= 1 {
		return fmt.Errorf("dfs: KillNode %d: %w", n, ErrLastNode)
	}
	fs.alive[n] = false
	for _, f := range fs.files {
		for i := 0; i < len(f.replicas); i++ {
			if f.replicas[i] == n {
				f.replicas = append(f.replicas[:i], f.replicas[i+1:]...)
				f.copies = append(f.copies[:i], f.copies[i+1:]...)
				fs.stats.ReplicasLost++
				i--
			}
		}
	}
	return nil
}

// RestartNode brings datanode n back up, empty: its pre-death replicas
// are gone (they were dropped at kill time), but it can hold new
// placements and re-replication targets again.
func (fs *FS) RestartNode(n int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if n < 0 || n >= fs.nodes || fs.alive[n] {
		return fmt.Errorf("dfs: RestartNode %d: %w", n, ErrNodeState)
	}
	fs.alive[n] = true
	return nil
}

// NodeAlive reports whether datanode n is up.
func (fs *FS) NodeAlive(n int) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return n >= 0 && n < fs.nodes && fs.alive[n]
}

// AliveNodes returns the number of live datanodes.
func (fs *FS) AliveNodes() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.aliveCountLocked()
}

func (fs *FS) aliveCountLocked() int {
	n := 0
	for _, a := range fs.alive {
		if a {
			n++
		}
	}
	return n
}

// ReReplicate restores every under-replicated file back up to the
// replication factor (capped at the live node count) by copying from a
// surviving replica — HDFS's namenode-driven background healing, run
// synchronously here so chaos schedules stay deterministic. Files are
// healed in sorted path order; each copy is charged to ReReplications,
// BytesReReplicated, and BytesTransferred. Returns the number of replica
// copies made and the bytes moved.
func (fs *FS) ReReplicate() (copies int, bytes int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	want := fs.replication
	if live := fs.aliveCountLocked(); want > live {
		want = live
	}
	paths := make([]string, 0, len(fs.files))
	for p := range fs.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		f := fs.files[p]
		if len(f.replicas) == 0 || len(f.replicas) >= want {
			continue // lost entirely, or already at factor
		}
		targets := fs.placeAvoidingLocked(want-len(f.replicas), f.replicas)
		for _, t := range targets {
			data := append([]byte(nil), f.copies[0]...)
			f.replicas = append(f.replicas, t)
			f.copies = append(f.copies, data)
			fs.nodeWritten[t] += int64(len(data))
			fs.stats.ReReplications++
			fs.stats.BytesReReplicated += int64(len(data))
			fs.stats.BytesTransferred += int64(len(data))
			fs.metrics.bytesReReplicated.Add(int64(len(data)))
			fs.metrics.bytesTransferred.Add(int64(len(data)))
			copies++
			bytes += int64(len(data))
		}
	}
	return copies, bytes
}

// NodeStat is one datanode's stored state and cumulative byte flow.
type NodeStat struct {
	Node  int   `json:"node"`
	Alive bool  `json:"alive"`
	Files int   `json:"files"` // replicas currently held
	Bytes int64 `json:"bytes"` // bytes currently stored
	// BytesRead / BytesWritten are the flow counters also reported by
	// PerNodeIO: bytes read by tasks on this node, bytes landed on it.
	BytesRead    int64 `json:"bytes_read"`
	BytesWritten int64 `json:"bytes_written"`
}

// NodeStats returns per-node storage and flow accounting, in node order —
// the view that validates re-replication really moved data off dead nodes
// and spread it over the survivors.
func (fs *FS) NodeStats() []NodeStat {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]NodeStat, fs.nodes)
	for i := range out {
		out[i] = NodeStat{Node: i, Alive: fs.alive[i],
			BytesRead: fs.nodeRead[i], BytesWritten: fs.nodeWritten[i]}
	}
	for _, f := range fs.files {
		for i, r := range f.replicas {
			out[r].Files++
			out[r].Bytes += int64(len(f.copies[i]))
		}
	}
	return out
}

// CheckPlacement verifies the replica placement invariants: no file holds
// two replicas on the same node, and no replica sits on a dead node.
// Returns the first violation found (nil when clean).
func (fs *FS) CheckPlacement() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	paths := make([]string, 0, len(fs.files))
	for p := range fs.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		f := fs.files[p]
		seen := map[int]bool{}
		for _, r := range f.replicas {
			if seen[r] {
				return fmt.Errorf("dfs: %s: two replicas on node %d", p, r)
			}
			seen[r] = true
			if !fs.alive[r] {
				return fmt.Errorf("dfs: %s: replica on dead node %d", p, r)
			}
		}
	}
	return nil
}
