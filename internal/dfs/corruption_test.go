package dfs

import (
	"bytes"
	"errors"
	"testing"
)

func TestCorruptReplicaHealedOnRead(t *testing.T) {
	fs := New(4, 3)
	payload := bytes.Repeat([]byte("matrix"), 100)
	fs.Write("f", payload)

	if err := fs.Corrupt("f", 1); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("read served corrupt data")
	}
	if fs.Stats().CorruptionsHealed != 1 {
		t.Fatalf("healed = %d", fs.Stats().CorruptionsHealed)
	}
	// Healing is durable: subsequent reads detect nothing.
	if _, err := fs.Read("f"); err != nil {
		t.Fatal(err)
	}
	if fs.Stats().CorruptionsHealed != 1 {
		t.Fatal("replica not actually healed")
	}
}

func TestAllReplicasCorrupt(t *testing.T) {
	fs := New(2, 2)
	fs.Write("f", []byte("abcdef"))
	for r := 0; r < 2; r++ {
		if err := fs.Corrupt("f", r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fs.Read("f"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v", err)
	}
}

func TestCorruptErrors(t *testing.T) {
	fs := New(2, 2)
	if err := fs.Corrupt("missing", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	fs.Write("f", []byte("x"))
	if err := fs.Corrupt("f", 5); err == nil {
		t.Fatal("replica out of range accepted")
	}
	if err := fs.Corrupt("f", -1); err == nil {
		t.Fatal("negative replica accepted")
	}
	fs.Write("empty", nil)
	if err := fs.Corrupt("empty", 0); err == nil {
		t.Fatal("empty file corruption accepted")
	}
}

func TestHealingChargesTransfer(t *testing.T) {
	fs := New(3, 3)
	fs.Write("f", make([]byte, 500))
	fs.ResetStats()
	if err := fs.Corrupt("f", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Read("f"); err != nil {
		t.Fatal(err)
	}
	if tr := fs.Stats().BytesTransferred; tr != 500 {
		t.Fatalf("healing transferred %d bytes, want 500", tr)
	}
}

func TestRewriteClearsCorruption(t *testing.T) {
	fs := New(2, 2)
	fs.Write("f", []byte("one"))
	if err := fs.Corrupt("f", 0); err != nil {
		t.Fatal(err)
	}
	fs.Write("f", []byte("two"))
	got, err := fs.Read("f")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "two" {
		t.Fatalf("got %q", got)
	}
	if fs.Stats().CorruptionsHealed != 0 {
		t.Fatal("rewrite should not count as healing")
	}
}
