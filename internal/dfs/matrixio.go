package dfs

import (
	"bytes"
	"fmt"

	"repro/internal/matrix"
)

// Matrix helpers: the pipeline stores every submatrix as one binary-format
// file (Section 5.2's "each of which is stored in a separate file").

// WriteMatrix stores m at path in the binary matrix format.
func (fs *FS) WriteMatrix(path string, m *matrix.Dense) error {
	var buf bytes.Buffer
	if err := matrix.WriteBinary(&buf, m); err != nil {
		return fmt.Errorf("dfs: WriteMatrix %s: %w", path, err)
	}
	fs.Write(path, buf.Bytes())
	return nil
}

// WriteMatrixFrom stores m at path with an explicit replica placement
// (see WriteFrom): writer is the producing datanode (-1 for the master)
// and nodes the favored replica holders.
func (fs *FS) WriteMatrixFrom(path string, m *matrix.Dense, writer int, nodes []int) error {
	var buf bytes.Buffer
	if err := matrix.WriteBinary(&buf, m); err != nil {
		return fmt.Errorf("dfs: WriteMatrixFrom %s: %w", path, err)
	}
	fs.WriteFrom(path, buf.Bytes(), writer, nodes)
	return nil
}

// ReadMatrix loads the matrix stored at path.
func (fs *FS) ReadMatrix(path string) (*matrix.Dense, error) {
	data, err := fs.Read(path)
	if err != nil {
		return nil, err
	}
	m, err := matrix.ReadBinary(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("dfs: ReadMatrix %s: %w", path, err)
	}
	return m, nil
}

// ReadMatrixFrom loads the matrix at path as read by the given datanode,
// charging network transfer if the node holds no replica.
func (fs *FS) ReadMatrixFrom(path string, node int) (*matrix.Dense, error) {
	data, err := fs.ReadFrom(path, node)
	if err != nil {
		return nil, err
	}
	m, err := matrix.ReadBinary(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("dfs: ReadMatrixFrom %s: %w", path, err)
	}
	return m, nil
}

// WriteMatrixText stores m at path in the text ("a.txt") format.
func (fs *FS) WriteMatrixText(path string, m *matrix.Dense) error {
	var buf bytes.Buffer
	if err := matrix.WriteText(&buf, m); err != nil {
		return fmt.Errorf("dfs: WriteMatrixText %s: %w", path, err)
	}
	fs.Write(path, buf.Bytes())
	return nil
}

// ReadMatrixText loads a text-format matrix from path.
func (fs *FS) ReadMatrixText(path string) (*matrix.Dense, error) {
	data, err := fs.Read(path)
	if err != nil {
		return nil, err
	}
	m, err := matrix.ReadText(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("dfs: ReadMatrixText %s: %w", path, err)
	}
	return m, nil
}
