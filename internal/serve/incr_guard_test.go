package serve_test

import (
	"bytes"
	"net/http"
	"testing"

	"repro/internal/core"
	"repro/internal/incr"
	"repro/internal/lu"
	"repro/internal/matrix"
	"repro/internal/serve"
	"repro/internal/workload"
)

// An update the residual guardrail rejects is transparently recomputed
// by the full pipeline: with an impossibly tight tolerance every SMW
// update fails the sampled ‖A'·X − I‖ check, so the delta request must
// come back correct, marked "pipeline", with the reject and fallback
// counters ticked and no update counted.
func TestHTTPIncrementalResidualReject(t *testing.T) {
	opts := core.DefaultOptions(4)
	opts.NB = 16
	s, hs := startServer(t, serve.Config{
		Concurrency: 2,
		QueueDepth:  16,
		CacheBytes:  32 << 20,
		Opts:        opts,
		Incr:        incr.Config{Enabled: true, ResidualTol: 1e-300},
	})
	client := hs.Client()
	invertURL := hs.URL + "/invert"

	base := workload.DiagonallyDominant(48, 9300)
	if resp, _ := postInvert(t, client, invertURL, base, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("base invert: status %d", resp.StatusCode)
	}
	digest := serve.KeyFor(serve.Request{A: base}, opts)
	mut := workload.MutateRows(base, 1, 42)
	resp, body := postInvert(t, client, invertURL, mut, map[string]string{"X-Base-Digest": digest})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta invert: status %d", resp.StatusCode)
	}
	if src := resp.Header.Get("X-Serve-Source"); src != "pipeline" {
		t.Fatalf("guard-rejected delta served from %q, want pipeline fallback", src)
	}
	got, err := matrix.ReadBinary(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	want, err := lu.Invert(mut)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(got, want); d > 1e-8 {
		t.Fatalf("fallback inverse off by %g", d)
	}

	st := s.Snapshot()
	if st.Incr == nil {
		t.Fatal("stats missing incr section")
	}
	if st.Incr.Updates != 0 {
		t.Fatalf("rejected update still counted: %+v", st.Incr)
	}
	if st.Incr.ResidualRejects != 1 || st.Incr.Fallbacks != 1 {
		t.Fatalf("want 1 residual reject and 1 fallback, got %+v", st.Incr)
	}

	// The router-facing probes the federation layer leans on.
	if got := s.BaseOptions(); got.Nodes != opts.Nodes || got.NB != opts.NB {
		t.Fatalf("BaseOptions = %+v, want nodes=%d nb=%d", got, opts.Nodes, opts.NB)
	}
	if depth, capacity := s.QueueLoad(); depth != 0 || capacity != 16 {
		t.Fatalf("QueueLoad = %d/%d, want 0/16", depth, capacity)
	}
	if !s.Healthy() {
		t.Fatal("idle server reports unhealthy")
	}
}
