package serve

import (
	"context"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestConcurrentRequestsRespectClusterSlots is the serving-layer half of
// the scheduler's acceptance criterion: four worker pipelines driving
// distinct requests on one shared cluster never exceed Cluster.Slots
// (= Opts.Nodes) concurrently executing task attempts. Runs under -race
// in the suite's race step.
func TestConcurrentRequestsRespectClusterSlots(t *testing.T) {
	opts := core.DefaultOptions(4)
	opts.NB = 16
	s := mustServer(t, Config{Concurrency: 4, QueueDepth: 32, Opts: opts})

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct seeds: no dedup/cache shortcuts, 8 real pipelines.
			a := workload.DiagonallyDominant(40, int64(100+i))
			res, err := s.Do(context.Background(), Request{A: a, Priority: i % 3})
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			checkInverse(t, a, res.Out)
		}(i)
	}
	wg.Wait()

	st := s.Snapshot()
	if st.Scheduler.Capacity != opts.Nodes {
		t.Fatalf("slot capacity = %d, want %d", st.Scheduler.Capacity, opts.Nodes)
	}
	if st.Scheduler.Peak > opts.Nodes {
		t.Fatalf("peak executing attempts = %d exceeds the %d-slot cluster", st.Scheduler.Peak, opts.Nodes)
	}
	if st.Scheduler.Grants == 0 {
		t.Fatal("no slot grants recorded for 8 pipeline runs")
	}
	if st.Scheduler.InUse != 0 {
		t.Fatalf("slots still held after drain of work: %d", st.Scheduler.InUse)
	}
	// 8 concurrent pipelines on 4 slots must have queued at least once.
	if st.SlotWaitCount == 0 {
		t.Fatal("slot-wait histogram empty under 2x overcommit")
	}
	if st.SlotWaitMeanMs < 0 {
		t.Fatalf("negative mean slot wait %v", st.SlotWaitMeanMs)
	}
}

// TestMaxConcurrentJobsConfig: the tenancy knob reaches the cluster and
// still lets every request complete.
func TestMaxConcurrentJobsConfig(t *testing.T) {
	opts := core.DefaultOptions(4)
	opts.NB = 16
	s := mustServer(t, Config{
		Concurrency: 3, QueueDepth: 16,
		MaxConcurrentJobs: 1, SlotQuota: 2,
		Opts: opts,
	})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a := workload.DiagonallyDominant(32, int64(200+i))
			res, err := s.Do(context.Background(), Request{A: a})
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			checkInverse(t, a, res.Out)
		}(i)
	}
	wg.Wait()
	if st := s.Snapshot(); st.Scheduler.Peak > opts.Nodes {
		t.Fatalf("peak %d exceeds slots %d", st.Scheduler.Peak, opts.Nodes)
	}
}

// TestReportCarriesSlotWait: the pipeline report surfaces the scheduler's
// per-request wait accounting (zero is fine on an idle cluster; the
// field must simply be non-negative and grants populated).
func TestReportCarriesSlotWait(t *testing.T) {
	s := mustServer(t, testConfig())
	a := workload.DiagonallyDominant(32, 7)
	res, err := s.Do(context.Background(), Request{A: a})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rep == nil {
		t.Fatal("no report")
	}
	if res.Rep.SlotWait < 0 {
		t.Fatalf("negative slot wait %v", res.Rep.SlotWait)
	}
	if res.Rep.SlotGrants == 0 {
		t.Fatal("pipeline ran with zero slot grants")
	}
}
