package serve

import (
	"context"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/workload"
)

// A server configured with a chaos plan keeps answering correctly while a
// node dies mid-request, and surfaces the injected faults in its stats.
func TestServerSurvivesChaosPlan(t *testing.T) {
	cfg := testConfig()
	cfg.Chaos = &chaos.Plan{
		Seed: 11,
		Events: []chaos.Event{
			{Tick: 6, Kind: chaos.Kill, On: chaos.OnAttempt, Node: chaos.VictimCurrent},
		},
	}
	s := mustServer(t, cfg)

	for i := 0; i < 3; i++ {
		a := workload.DiagonallyDominant(40+8*i, int64(20+i))
		res, err := s.Do(context.Background(), Request{A: a})
		if err != nil {
			t.Fatalf("request %d under chaos: %v", i, err)
		}
		checkInverse(t, a, res.Out)
	}

	st := s.Snapshot()
	if st.Chaos == nil {
		t.Fatal("Snapshot().Chaos nil despite a configured plan")
	}
	if st.Chaos.Kills != 1 {
		t.Fatalf("Kills = %d, want 1", st.Chaos.Kills)
	}
	if st.Chaos.CrashedAttempts == 0 {
		t.Fatal("kill fired but crashed no attempt")
	}
	if st.NodesAlive != cfg.Opts.Nodes-1 {
		t.Fatalf("NodesAlive = %d, want %d", st.NodesAlive, cfg.Opts.Nodes-1)
	}
	if st.Chaos.BytesReReplicated == 0 {
		t.Fatal("killed node's replicas were not re-replicated")
	}
}

// Without a plan the chaos stats stay absent and every node stays up.
func TestSnapshotWithoutChaos(t *testing.T) {
	s := mustServer(t, testConfig())
	a := workload.DiagonallyDominant(32, 9)
	if _, err := s.Do(context.Background(), Request{A: a}); err != nil {
		t.Fatal(err)
	}
	st := s.Snapshot()
	if st.Chaos != nil {
		t.Fatalf("Chaos = %+v on a chaos-free server", st.Chaos)
	}
	if st.NodesAlive != s.cfg.Opts.Nodes {
		t.Fatalf("NodesAlive = %d, want %d", st.NodesAlive, s.cfg.Opts.Nodes)
	}
}

// Chaos-mode servers still drain cleanly with requests in flight.
func TestChaosServerDrains(t *testing.T) {
	cfg := testConfig()
	cfg.Chaos = &chaos.Plan{
		Seed: 4,
		Events: []chaos.Event{
			{Tick: 4, Kind: chaos.Kill, On: chaos.OnAttempt, Node: chaos.VictimCurrent},
			{Tick: 9, Kind: chaos.Restart, On: chaos.OnAny, Node: chaos.VictimOldestDead},
		},
	}
	s := mustServer(t, cfg)

	type outcome struct {
		i   int
		res *Result
		err error
	}
	done := make(chan outcome, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			a := workload.DiagonallyDominant(48, int64(40+i))
			res, err := s.Do(context.Background(), Request{A: a})
			done <- outcome{i: i, res: res, err: err}
		}(i)
	}
	for n := 0; n < 2; n++ {
		select {
		case o := <-done:
			if o.err != nil {
				t.Fatalf("in-flight request under chaos: %v", o.err)
			}
			checkInverse(t, workload.DiagonallyDominant(48, int64(40+o.i)), o.res.Out)
		case <-time.After(30 * time.Second):
			t.Fatal("request under chaos did not finish")
		}
	}
	dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	st := s.Snapshot()
	if st.Chaos.Kills != 1 || st.Chaos.Restarts != 1 {
		t.Fatalf("chaos stats after drain: %+v, want 1 kill + 1 restart", *st.Chaos)
	}
}
