// Package serve is the inversion-as-a-service layer: it multiplexes many
// concurrent inversion requests onto one simulated MapReduce cluster,
// owning the request lifecycle the batch API does not have — bounded
// admission with backpressure, singleflight deduplication of identical
// in-flight matrices, a digest-keyed LRU cache of computed inverses,
// per-request deadlines threaded as context cancellation down to the job
// loop, and graceful drain on shutdown.
//
// The substitution argument mirrors the rest of the repository: a real
// deployment would put a cluster front-end (YARN gateway, job server) in
// front of shared Hadoop capacity; here a goroutine worker pool stands in
// for the front-end and the simulated cluster for the shared capacity.
// The control-plane decisions — admit, reject, dedup, cache, cancel,
// drain — are the real thing.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/dfs"
	"repro/internal/incr"
	"repro/internal/mapreduce"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/tsqr"
)

// ErrOverloaded reports that the admission queue is full; the caller
// should back off and retry (HTTP 429).
var ErrOverloaded = errors.New("serve: admission queue full")

// ErrDraining reports that the server is shutting down and accepts no new
// requests (HTTP 503).
var ErrDraining = errors.New("serve: server draining")

// Config sizes the serving layer.
type Config struct {
	// Concurrency is the number of pipelines executed at once (worker
	// goroutines). Default 2.
	Concurrency int
	// QueueDepth bounds how many admitted requests may wait beyond the
	// ones executing; an arrival finding the queue full is rejected with
	// ErrOverloaded. Default 16.
	QueueDepth int
	// CacheBytes is the inverse-result cache budget; <= 0 disables
	// caching.
	CacheBytes int64
	// DefaultTimeout is applied to requests whose context carries no
	// deadline; 0 means no default.
	DefaultTimeout time.Duration
	// MaxConcurrentJobs, when > 0, caps how many MapReduce jobs may hold
	// cluster slots at once — the tenancy knob that stops one request's
	// pipeline from starving every other tenant of the shared cluster.
	MaxConcurrentJobs int
	// SlotQuota, when > 0, caps the slots one job may hold while other
	// jobs wait (work-conserving per-job share bound).
	SlotQuota int
	// Opts is the base pipeline configuration (cluster shape, nb,
	// Section 6 toggles). A zero value selects core.DefaultOptions(8).
	Opts core.Options
	// Metrics receives serving and engine counters; one is created when
	// nil.
	Metrics *obs.Registry
	// Chaos, when non-nil, runs the server's shared cluster under the
	// given fault schedule: node kills/restarts, replica loss with
	// re-replication, stragglers, transient fetch errors. Speculative
	// execution is enabled so injected stragglers are recovered, and the
	// injected-fault counters are surfaced in /statz.
	Chaos *chaos.Plan
	// Tracer, when non-nil, records spans for the shared cluster's jobs
	// and the TSQR pipelines (tsqr.* spans), exportable as a Chrome
	// trace. Nil disables tracing at zero cost.
	Tracer *obs.Tracer
	// Incr configures the rank-k incremental inversion path
	// (internal/incr): on a cache miss, a recently inverted base matrix
	// within Incr.KMax changed rows is turned into the requested
	// inverse by a Sherman–Morrison–Woodbury update instead of a full
	// pipeline run. The zero value disables the path.
	Incr incr.Config
}

// Kind selects the computation a request asks for. The zero value is
// inversion, so existing callers are untouched.
type Kind string

const (
	// KindInvert runs the square block-LU inversion pipeline.
	KindInvert Kind = ""
	// KindLstsq solves min ||A x - b|| for a tall A via TSQR (or the
	// sequential QR kernel when the cost model prefers it).
	KindLstsq Kind = "lstsq"
	// KindPinv computes the pseudo-inverse A^+ of a tall full-rank A.
	KindPinv Kind = "pinv"
)

// Request is one computation to perform: a square inversion (the zero
// Kind), a tall least-squares solve (Kind = KindLstsq, with B the
// right-hand side), or a tall pseudo-inverse (Kind = KindPinv). Nodes
// and NB, when non-zero, override the server's base options for this
// request (and take part in the dedup/cache key). Priority is the
// request's fair-share scheduling class on the shared cluster: when
// slots are contended, higher-priority requests' tasks are granted slots
// first. It is deliberately not part of the dedup/cache key — the same
// matrix at any priority yields the same result, and a joiner inherits
// the leader's priority.
type Request struct {
	A        *matrix.Dense
	B        *matrix.Dense // KindLstsq right-hand side (m x k); nil otherwise
	Kind     Kind
	Nodes    int
	NB       int
	Priority int
	// BaseDigest is an optional client hint (HTTP X-Base-Digest): the
	// digest of a previously served base matrix this request is a
	// low-rank mutation of. It steers the incremental path's probe
	// straight to that base and, in the federation tier, routes the
	// request to the base's home shard. It is deliberately NOT part of
	// the dedup/cache key — the same matrix with or without the hint
	// yields the same result, and existing digests stay byte-compatible.
	BaseDigest string
}

// Result is a completed computation.
type Result struct {
	// Out is the computed matrix — the inverse, the least-squares
	// solution, or the pseudo-inverse, by request kind. It is shared with
	// the cache and other waiters: read-only.
	Out *matrix.Dense
	Rep *core.Report // nil on a cache hit
	// Source tells how the result was obtained: "pipeline" (this request
	// led the computation), "dedup" (attached to an identical in-flight
	// request), or "cache".
	Source string
}

// flight is one in-progress pipeline run shared by every concurrent
// request with the same key. Its execution context stays alive while at
// least one participant is still interested; when the last waiter leaves,
// the run is canceled at the next job boundary.
type flight struct {
	key      string
	req      Request
	opts     core.Options
	enqueued time.Time

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
	out    *matrix.Dense
	rep    *core.Report
	err    error
	// src is set by execute() when the leader's computation took a
	// non-default path ("incremental"); empty means the pipeline ran.
	src string

	mu   sync.Mutex
	refs int
}

// tryAcquire adds a waiter, failing if the flight is already dead: the
// last waiter left (refs hit 0, which cancels the context) but execute()
// has not yet removed the flight from the server map. Joining such a
// flight would hand a live request a spurious context.Canceled.
func (f *flight) tryAcquire() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.refs == 0 || f.ctx.Err() != nil {
		return false
	}
	f.refs++
	return true
}

func (f *flight) release() {
	f.mu.Lock()
	f.refs--
	last := f.refs == 0
	f.mu.Unlock()
	if last {
		f.cancel()
	}
}

// Server multiplexes inversion requests onto one simulated cluster.
type Server struct {
	cfg     Config
	fs      *dfs.FS
	cluster *mapreduce.Cluster
	met     *obs.Registry
	cache   *resultCache
	chaos   *chaos.Engine   // nil unless Config.Chaos is set
	bases   *incr.BaseIndex // nil unless Config.Incr.Enabled

	queue    chan *flight
	stop     chan struct{}
	workers  sync.WaitGroup
	inflight sync.WaitGroup
	seq      atomic.Int64

	mu       sync.Mutex
	flights  map[string]*flight
	draining bool
}

// New builds a server with its own simulated cluster and starts its
// workers. Callers must Drain (or Close) it when done.
func New(cfg Config) (*Server, error) {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.Opts.Nodes == 0 && cfg.Opts.NB == 0 {
		cfg.Opts = core.DefaultOptions(8)
		cfg.Opts.NB = 64
	}
	if err := cfg.Opts.Validate(); err != nil {
		return nil, err
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.Incr.Enabled {
		cfg.Incr = cfg.Incr.WithDefaults()
	}
	fs := dfs.New(cfg.Opts.Nodes, dfs.DefaultReplication)
	cl := mapreduce.NewCluster(fs, cfg.Opts.Nodes)
	cl.Metrics = cfg.Metrics
	cl.Tracer = cfg.Tracer
	cl.MaxConcurrentJobs = cfg.MaxConcurrentJobs
	cl.SlotQuota = cfg.SlotQuota
	fs.SetMetrics(cfg.Metrics)
	var eng *chaos.Engine
	if cfg.Chaos != nil {
		eng = chaos.New(fs, *cfg.Chaos)
		eng.SetObs(nil, cfg.Metrics)
		cl.Faults = eng
		// Injected stragglers must be recoverable, as on a real cluster.
		cl.Speculative = true
		cl.SpeculativeRatio = 2
		cl.SpeculativeSlack = 8 * time.Millisecond
	}
	s := &Server{
		cfg:     cfg,
		fs:      fs,
		cluster: cl,
		chaos:   eng,
		met:     cfg.Metrics,
		cache:   newResultCache(cfg.CacheBytes),
		queue:   make(chan *flight, cfg.QueueDepth),
		stop:    make(chan struct{}),
		flights: make(map[string]*flight),
	}
	if cfg.Incr.Enabled {
		s.bases = incr.NewBaseIndex(cfg.Incr.MaxBases)
	}
	for i := 0; i < cfg.Concurrency; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s, nil
}

// Metrics returns the server's registry.
func (s *Server) Metrics() *obs.Registry { return s.met }

// BaseOptions returns the server's base pipeline options (before
// per-request overrides). The federation router digests requests against
// these to compute the same routing key Do will use.
func (s *Server) BaseOptions() core.Options { return s.cfg.Opts }

// QueueLoad reports the admission queue's current depth and capacity —
// the federation router's saturation probe. depth == capacity means the
// next leader-creating arrival would be rejected with ErrOverloaded.
func (s *Server) QueueLoad() (depth, capacity int) { return len(s.queue), cap(s.queue) }

// Healthy reports whether the server can take new work: not draining and
// at least one simulated datanode alive. A chaos plan that kills nodes
// flips this until restarts land.
func (s *Server) Healthy() bool { return !s.isDraining() && s.fs.AliveNodes() > 0 }

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// optsFor resolves the effective pipeline options for a request: the base
// configuration with per-request overrides and a unique work directory.
func (s *Server) optsFor(req Request) (core.Options, error) {
	opts := s.cfg.Opts
	if req.Nodes > 0 {
		opts.Nodes = req.Nodes
	}
	if req.NB > 0 {
		opts.NB = req.NB
	}
	opts.Priority = req.Priority
	opts.Root = fmt.Sprintf("srv/r%06d", s.seq.Add(1))
	err := opts.Validate()
	return opts, err
}

// validate checks a request's inputs by kind: square inversion inputs go
// through core.ValidateInput; tall solve inputs through the TSQR shape
// rules (rows >= cols, matching right-hand side).
func validate(req Request) error {
	switch req.Kind {
	case KindLstsq:
		if req.A == nil {
			return core.ErrNilMatrix
		}
		if req.A.Rows == 0 || req.A.Cols == 0 {
			return fmt.Errorf("%dx%d: %w", req.A.Rows, req.A.Cols, core.ErrEmptyMatrix)
		}
		if err := tsqr.ValidateTall(req.A); err != nil {
			return err
		}
		if req.B == nil {
			return fmt.Errorf("missing right-hand side: %w", core.ErrNilMatrix)
		}
		if req.B.Rows != req.A.Rows || req.B.Cols == 0 {
			return fmt.Errorf("A %dx%d, b %dx%d: %w",
				req.A.Rows, req.A.Cols, req.B.Rows, req.B.Cols, tsqr.ErrShapeMismatch)
		}
		return nil
	case KindPinv:
		if req.A == nil {
			return core.ErrNilMatrix
		}
		if req.A.Rows == 0 || req.A.Cols == 0 {
			return fmt.Errorf("%dx%d: %w", req.A.Rows, req.A.Cols, core.ErrEmptyMatrix)
		}
		return tsqr.ValidateTall(req.A)
	default:
		return core.ValidateInput(req.A)
	}
}

// Do runs one request through the serving lifecycle: validation,
// deadline check, cache lookup, singleflight join, bounded admission,
// pipeline execution, cache fill. It is safe for concurrent use.
func (s *Server) Do(ctx context.Context, req Request) (*Result, error) {
	start := time.Now()
	s.met.Counter("serve.requests").Add(1)
	switch req.Kind {
	case KindLstsq:
		s.met.Counter("serve.requests_lstsq").Add(1)
	case KindPinv:
		s.met.Counter("serve.requests_pinv").Add(1)
	}
	if err := validate(req); err != nil {
		s.met.Counter("serve.invalid").Add(1)
		return nil, err
	}
	opts, err := s.optsFor(req)
	if err != nil {
		s.met.Counter("serve.invalid").Add(1)
		return nil, err
	}
	if s.cfg.DefaultTimeout > 0 {
		if _, ok := ctx.Deadline(); !ok {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.DefaultTimeout)
			defer cancel()
		}
	}
	// An already-dead request must not touch the cluster at all.
	if err := ctx.Err(); err != nil {
		s.met.Counter("serve.expired").Add(1)
		return nil, err
	}
	// A draining server refuses all new work, cache hits included, so
	// callers move to another instance instead of lingering.
	if s.isDraining() {
		s.met.Counter("serve.drain_rejected").Add(1)
		return nil, ErrDraining
	}
	key := KeyFor(req, s.cfg.Opts)
	if out, ok := s.cache.Get(key); ok {
		s.met.Counter("serve.cache_hits").Add(1)
		s.met.Histogram("serve.e2e_latency").Observe(time.Since(start))
		return &Result{Out: out, Source: "cache"}, nil
	}
	s.met.Counter("serve.cache_misses").Add(1)

	f, leader, err := s.join(key, req, opts)
	if err != nil {
		return nil, err
	}
	defer f.release()
	if !leader {
		s.met.Counter("serve.dedup_hits").Add(1)
	}

	select {
	case <-ctx.Done():
		s.met.Counter("serve.canceled").Add(1)
		return nil, ctx.Err()
	case <-f.done:
	}
	if f.err != nil {
		s.met.Counter("serve.failed").Add(1)
		return nil, f.err
	}
	// The leader reports how the computation actually ran (execute()
	// upgrades src to "incremental" when the SMW path served it);
	// joiners attached to an in-flight computation regardless of path.
	source := "dedup"
	if leader {
		source = "pipeline"
		if f.src != "" {
			source = f.src
		}
	}
	s.met.Counter("serve.completed").Add(1)
	s.met.Histogram("serve.e2e_latency").Observe(time.Since(start))
	return &Result{Out: f.out, Rep: f.rep, Source: source}, nil
}

// join attaches the request to an identical in-flight computation, or
// creates one and submits it to the bounded admission queue. Waiters on an
// existing flight never consume a queue slot — deduplication is free
// capacity.
func (s *Server) join(key string, req Request, opts core.Options) (*flight, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.met.Counter("serve.drain_rejected").Add(1)
		return nil, false, ErrDraining
	}
	if f, ok := s.flights[key]; ok {
		if f.tryAcquire() {
			return f, false, nil
		}
		// Dead flight still in the map: start a fresh one in its place.
		// The overwrite below is safe because execute() only deletes the
		// map entry if it still points at its own flight.
	}
	fctx, cancel := context.WithCancel(context.Background())
	f := &flight{key: key, req: req, opts: opts, ctx: fctx, cancel: cancel,
		done: make(chan struct{}), refs: 1, enqueued: time.Now()}
	select {
	case s.queue <- f:
	default:
		cancel()
		s.met.Counter("serve.rejected").Add(1)
		return nil, false, ErrOverloaded
	}
	s.flights[key] = f
	s.inflight.Add(1)
	s.met.Counter("serve.admitted").Add(1)
	s.met.Gauge("serve.queue_depth").Set(int64(len(s.queue)))
	return f, true, nil
}

func (s *Server) worker() {
	defer s.workers.Done()
	for {
		select {
		case <-s.stop:
			return
		case f := <-s.queue:
			s.execute(f)
		}
	}
}

// execute runs one flight's pipeline on the shared cluster, fills the
// cache, and publishes the result to every waiter.
func (s *Server) execute(f *flight) {
	defer s.inflight.Done()
	s.met.Gauge("serve.queue_depth").Set(int64(len(s.queue)))
	s.met.Histogram("serve.queue_wait").Observe(time.Since(f.enqueued))
	if err := f.ctx.Err(); err != nil {
		// Every waiter left while the flight sat in the queue.
		f.err = err
	} else {
		begin := time.Now()
		switch f.req.Kind {
		case KindLstsq, KindPinv:
			f.out, f.rep, f.err = s.executeSolve(f)
		default:
			if out, rep, ok := s.tryIncremental(f); ok {
				f.out, f.rep, f.src = out, rep, "incremental"
			} else if p, perr := core.NewPipelineOn(f.opts, s.fs, s.cluster); perr != nil {
				f.err = perr
			} else {
				f.out, f.rep, f.err = p.InvertCtx(f.ctx, f.req.A)
			}
			if f.err == nil && s.bases != nil {
				// Every served inverse — pipeline or update — becomes a
				// probe candidate, so mutation chains A → A' → A'' keep
				// finding a rank-k-near base.
				s.bases.Add(f.key, f.req.A, f.out)
			}
		}
		s.met.Histogram("serve.pipeline_latency").Observe(time.Since(begin))
		if f.rep != nil {
			s.met.Histogram("serve.slot_wait").Observe(f.rep.SlotWait)
		}
	}
	// The run's intermediate files are dead weight on the shared DFS.
	s.fs.DeleteTree(f.opts.Root)
	if f.err == nil {
		s.met.Counter("serve.cache_evictions").Add(int64(s.cache.Put(f.key, f.out)))
	}
	s.mu.Lock()
	// A dead flight may have been replaced by a revival in join(); only
	// remove the entry if it is still ours.
	if s.flights[f.key] == f {
		delete(s.flights, f.key)
	}
	s.mu.Unlock()
	close(f.done)
}

// tryIncremental attempts to serve a cache-missed inversion as a
// rank-k Sherman–Morrison–Woodbury update against a recently served
// base inverse. The attempt is strictly best-effort: any failure —
// no base within KMax rows, a cost-model decline, a singular or
// ill-conditioned capacitance, a residual-guardrail reject, or a
// distributed-pass error — returns ok=false and the caller runs the
// full pipeline, so the incremental path can only ever add latency,
// never wrong answers.
func (s *Server) tryIncremental(f *flight) (*matrix.Dense, *core.Report, bool) {
	if s.bases == nil {
		return nil, nil, false
	}
	n := f.req.A.Rows
	kmax := s.cfg.Incr.EffectiveKMax(n)
	s.met.Counter("incr.probes").Add(1)
	base, ok := s.probeBase(f.req, kmax)
	if !ok {
		return nil, nil, false
	}
	// The sketch proposed the base; the exact diff is authoritative
	// (a fingerprint collision could hide a changed row — the guardrail
	// below catches the resulting bad update).
	rows, ok := incr.DiffRowsExact(base.A, f.req.A, kmax)
	if !ok || len(rows) == 0 {
		s.met.Counter("incr.delta_too_large").Add(1)
		return nil, nil, false
	}
	s.met.Counter("incr.probe_hits").Add(1)
	choice := costmodel.ChooseUpdate(costmodel.ServingCluster(f.opts.Nodes),
		n, len(rows), f.opts.NB, len(s.queue))
	if !choice.Incremental() {
		s.met.Counter("incr.declined").Add(1)
		return nil, nil, false
	}
	u, v := incr.RowDelta(base.A, f.req.A, rows)
	begin := time.Now()
	var x *matrix.Dense
	irep := &incr.Report{Rank: len(rows)}
	var err error
	if choice.Strategy == costmodel.UpdateDistributed {
		eng := &incr.Engine{FS: s.fs, Cluster: s.cluster, Tracer: s.cfg.Tracer, Metrics: s.met}
		x, irep, err = eng.UpdateCtx(f.ctx, base.Inv, u, v, s.cfg.Incr.CondMax, f.opts)
	} else {
		x, err = incr.Update(base.Inv, u, v, s.cfg.Incr.CondMax)
	}
	if err == nil {
		err = incr.Guard(f.req.A, x, s.cfg.Incr.ResidualTol, s.cfg.Incr.SampleCols)
	}
	if err != nil {
		if errors.Is(err, incr.ErrResidual) {
			s.met.Counter("incr.residual_rejects").Add(1)
		}
		s.met.Counter("incr.fallbacks").Add(1)
		return nil, nil, false
	}
	s.met.Counter("incr.updates").Add(1)
	if irep.Distributed {
		s.met.Counter("incr.distributed").Add(1)
	}
	elapsed := time.Since(begin)
	s.met.Histogram("incr.update_latency").Observe(elapsed)
	rep := &core.Report{Order: n, NB: f.opts.NB, Nodes: f.opts.Nodes,
		JobsRun: irep.JobsRun, Elapsed: elapsed}
	return x, rep, true
}

// probeBase resolves the update candidate: the client-named base when
// the X-Base-Digest hint matches an indexed same-shape entry, else a
// fingerprint scan of the whole index.
func (s *Server) probeBase(req Request, kmax int) (*incr.Base, bool) {
	if req.BaseDigest != "" {
		if b, ok := s.bases.Lookup(req.BaseDigest); ok &&
			b.A.Rows == req.A.Rows && b.A.Cols == req.A.Cols {
			return b, true
		}
		// A stale or foreign hint degrades to the scan, never to an error.
	}
	b, _, ok := s.bases.Probe(req.A, kmax)
	return b, ok
}

// executeSolve runs a tall-matrix request (lstsq or pinv): the cost
// model picks, from the request shape alone (so equal digests always
// take the same path), between the two-round MapReduce TSQR pipeline on
// the shared cluster and the single-node sequential QR kernel.
func (s *Server) executeSolve(f *flight) (*matrix.Dense, *core.Report, error) {
	m, n := f.req.A.Dims()
	choice := costmodel.ChooseQR(costmodel.ServingCluster(f.opts.Nodes), m, n)
	rep := &core.Report{Order: m, NB: f.opts.NB, Nodes: f.opts.Nodes}
	if choice.Strategy == costmodel.QRSequential {
		s.met.Counter("serve.qr_sequential").Add(1)
		var out *matrix.Dense
		var err error
		if f.req.Kind == KindLstsq {
			out, err = tsqr.SequentialLstsq(f.req.A, f.req.B)
		} else {
			out, err = tsqr.SequentialPInv(f.req.A)
		}
		return out, rep, err
	}
	s.met.Counter("serve.qr_tsqr").Add(1)
	eng := &tsqr.Engine{FS: s.fs, Cluster: s.cluster, Tracer: s.cfg.Tracer, Metrics: s.met}
	cfg := tsqr.Config{Blocks: choice.Blocks, Root: f.opts.Root, Priority: f.opts.Priority}
	var out *matrix.Dense
	var trep *tsqr.Report
	var err error
	if f.req.Kind == KindLstsq {
		out, trep, err = eng.LeastSquaresCtx(f.ctx, f.req.A, f.req.B, cfg)
	} else {
		out, trep, err = eng.PInvCtx(f.ctx, f.req.A, cfg)
	}
	if trep != nil {
		rep.JobsRun = trep.JobsRun
		rep.MapTasks = trep.MapTasks
		rep.ReduceTasks = trep.ReduceTasks
		rep.Elapsed = trep.Elapsed
		rep.SlotWait = trep.SlotWait
		rep.SlotGrants = trep.SlotGrants
	}
	return out, rep, err
}

// Drain stops admission, waits (bounded by ctx) for in-flight work to
// finish, then stops the workers. Requests still queued when ctx expires
// are failed with ErrDraining. Drain is idempotent; after it returns the
// server accepts no work.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if already {
		return nil
	}
	finished := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(finished)
	}()
	var err error
	select {
	case <-finished:
	case <-ctx.Done():
		err = ctx.Err()
		// Fail whatever is still queued so no waiter hangs.
		for {
			select {
			case f := <-s.queue:
				f.err = ErrDraining
				s.mu.Lock()
				if s.flights[f.key] == f {
					delete(s.flights, f.key)
				}
				s.mu.Unlock()
				close(f.done)
				s.inflight.Done()
			default:
				// The queue is empty, so every flight left in the map is
				// executing. Cancel them so their pipelines stop at the
				// next job boundary and workers.Wait() returns within the
				// grace period's spirit instead of riding each run to
				// natural completion.
				s.mu.Lock()
				for _, f := range s.flights {
					f.cancel()
				}
				s.mu.Unlock()
				close(s.stop)
				s.workers.Wait()
				return err
			}
		}
	}
	close(s.stop)
	s.workers.Wait()
	return err
}

// Close drains with a short grace period.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.Drain(ctx)
}

// Stats is a point-in-time snapshot of the serving layer for /statz.
type Stats struct {
	QueueDepth   int   `json:"queue_depth"`
	QueueCap     int   `json:"queue_cap"`
	CacheEntries int   `json:"cache_entries"`
	CacheBytes   int64 `json:"cache_bytes"`
	CacheBudget  int64 `json:"cache_budget"`
	Requests     int64 `json:"requests"`
	Admitted     int64 `json:"admitted"`
	Rejected     int64 `json:"rejected"`
	DedupHits    int64 `json:"dedup_hits"`
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	// CacheHitRate is hits / (hits + misses), 0 before any lookup.
	CacheHitRate float64 `json:"cache_hit_rate"`
	Completed    int64   `json:"completed"`
	Failed       int64   `json:"failed"`
	Canceled     int64   `json:"canceled"`
	Expired      int64   `json:"expired"`
	Draining     bool    `json:"draining"`
	// Scheduler is the shared cluster's slot-pool snapshot: capacity is
	// m0, peak is the concurrency high-water mark (never above capacity
	// by the scheduler invariant), and queue_depth counts task attempts
	// waiting for a slot right now.
	Scheduler mapreduce.SchedStats `json:"scheduler"`
	// SlotWaitCount / SlotWaitMeanMs summarize the per-attempt slot-wait
	// histogram: how often attempts queued for the shared cluster and
	// for how long on average.
	SlotWaitCount  int64   `json:"slot_wait_count"`
	SlotWaitMeanMs float64 `json:"slot_wait_mean_ms"`
	// NodesAlive is how many simulated datanodes are currently up (equals
	// the cluster size unless chaos is injecting kills).
	NodesAlive int `json:"nodes_alive"`
	// Chaos reports injected-fault counters when the server runs under a
	// chaos plan; nil otherwise.
	Chaos *chaos.Stats `json:"chaos,omitempty"`
	// Incr reports the incremental-inversion counters when the path is
	// enabled; nil otherwise.
	Incr *incr.Stats `json:"incr,omitempty"`
}

// Snapshot returns current serving stats.
func (s *Server) Snapshot() Stats {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	sw := s.met.Histogram("mapreduce.slot_wait").Snapshot()
	meanMs := 0.0
	if sw.Count > 0 {
		meanMs = float64(sw.Sum.Microseconds()) / float64(sw.Count) / 1000
	}
	var chaosStats *chaos.Stats
	if s.chaos != nil {
		st := s.chaos.Stats()
		chaosStats = &st
	}
	var incrStats *incr.Stats
	if s.bases != nil {
		incrStats = &incr.Stats{
			Probes:          s.met.Counter("incr.probes").Value(),
			ProbeHits:       s.met.Counter("incr.probe_hits").Value(),
			Updates:         s.met.Counter("incr.updates").Value(),
			Distributed:     s.met.Counter("incr.distributed").Value(),
			Declined:        s.met.Counter("incr.declined").Value(),
			Fallbacks:       s.met.Counter("incr.fallbacks").Value(),
			ResidualRejects: s.met.Counter("incr.residual_rejects").Value(),
			BasesIndexed:    s.bases.Len(),
		}
	}
	hits := s.met.Counter("serve.cache_hits").Value()
	misses := s.met.Counter("serve.cache_misses").Value()
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	return Stats{
		NodesAlive:     s.fs.AliveNodes(),
		Chaos:          chaosStats,
		QueueDepth:     len(s.queue),
		QueueCap:       cap(s.queue),
		CacheEntries:   s.cache.Len(),
		CacheBytes:     s.cache.Bytes(),
		CacheBudget:    s.cfg.CacheBytes,
		Requests:       s.met.Counter("serve.requests").Value(),
		Admitted:       s.met.Counter("serve.admitted").Value(),
		Rejected:       s.met.Counter("serve.rejected").Value(),
		DedupHits:      s.met.Counter("serve.dedup_hits").Value(),
		CacheHits:      hits,
		CacheMisses:    misses,
		CacheHitRate:   hitRate,
		Incr:           incrStats,
		Completed:      s.met.Counter("serve.completed").Value(),
		Failed:         s.met.Counter("serve.failed").Value(),
		Canceled:       s.met.Counter("serve.canceled").Value(),
		Expired:        s.met.Counter("serve.expired").Value(),
		Draining:       draining,
		Scheduler:      s.cluster.Scheduler().Stats(),
		SlotWaitCount:  sw.Count,
		SlotWaitMeanMs: meanMs,
	}
}
