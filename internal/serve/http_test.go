package serve_test

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/serve"
	"repro/internal/workload"
)

func startServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(serve.NewHandler(s))
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs
}

func postMatrix(t *testing.T, client *http.Client, url string, a *matrix.Dense) (*http.Response, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := matrix.WriteBinary(&buf, a); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestServingIntegration is the end-to-end acceptance test: an in-process
// matserve (the same Server + Handler cmd/matserve runs) under 32+
// concurrent mixed-size requests with duplicates, plus deadline and
// overload behavior.
func TestServingIntegration(t *testing.T) {
	opts := core.DefaultOptions(4)
	opts.NB = 16
	s, hs := startServer(t, serve.Config{
		Concurrency: 2,
		QueueDepth:  64,
		CacheBytes:  32 << 20,
		Opts:        opts,
	})
	client := hs.Client()
	invertURL := hs.URL + "/invert"

	// Warm the cache with one matrix so the burst's repeats of it are
	// guaranteed cache hits.
	warm := workload.DiagonallyDominant(24, 7001)
	if resp, _ := postMatrix(t, client, invertURL, warm); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm request: status %d", resp.StatusCode)
	}

	// Build the burst: 26 mixed-size requests from a seeded stream (some
	// duplicated by the mix itself), 3 repeats of the warmed matrix, and
	// 3 copies of one fresh matrix (in-flight duplicates). 32 total.
	mix := workload.Mix{
		Entries: []workload.MixEntry{{Order: 16, Weight: 5}, {Order: 24, Weight: 3}, {Order: 40, Weight: 2}},
		DupProb: 0.3,
	}
	specs := mix.Stream(42).Take(26)
	inputs := make([]*matrix.Dense, 0, 32)
	for _, sp := range specs {
		inputs = append(inputs, sp.Build())
	}
	for i := 0; i < 3; i++ {
		inputs = append(inputs, warm)
	}
	rand.New(rand.NewSource(1)).Shuffle(len(inputs), func(i, j int) {
		inputs[i], inputs[j] = inputs[j], inputs[i]
	})
	// The fresh matrix's three copies stay at the tail: copy 1 is posted
	// alone (below) and its admission awaited while the blockers pin both
	// workers, so copies 2 and 3 are guaranteed to join the leader's
	// flight in the queue — a deterministic singleflight dedup instead of
	// a race between the copies and the leader's completion.
	fresh := workload.DiagonallyDominant(32, 7002)
	for i := 0; i < 3; i++ {
		inputs = append(inputs, fresh)
	}
	if len(inputs) != 32 {
		t.Fatalf("burst size %d", len(inputs))
	}

	// Pin both workers with big blockers so the burst's duplicates pile
	// up behind them and must dedup in flight.
	var blockers sync.WaitGroup
	for i := 0; i < 2; i++ {
		blockers.Add(1)
		go func(seed int64) {
			defer blockers.Done()
			resp, _ := postMatrix(t, client, invertURL, workload.DiagonallyDominant(160, seed))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("blocker: status %d", resp.StatusCode)
			}
		}(int64(8000 + i))
	}
	for s.Metrics().Counter("serve.admitted").Value() < 3 { // warm + 2 blockers
		time.Sleep(200 * time.Microsecond)
	}

	type outcome struct {
		status int
		source string
		inv    *matrix.Dense
	}
	outcomes := make([]outcome, len(inputs))
	var wg sync.WaitGroup
	post := func(i int, a *matrix.Dense) {
		defer wg.Done()
		resp, body := postMatrix(t, client, invertURL, a)
		o := outcome{status: resp.StatusCode, source: resp.Header.Get("X-Source")}
		if resp.StatusCode == http.StatusOK {
			inv, err := matrix.ReadBinary(bytes.NewReader(body))
			if err != nil {
				t.Errorf("request %d: bad body: %v", i, err)
			} else {
				o.inv = inv
			}
		}
		outcomes[i] = o
	}
	// Post the fresh leader first and wait for its admission: with both
	// workers pinned it sits in the queue, so the two copies posted with
	// the rest of the burst must dedup against it in flight.
	leader := len(inputs) - 3
	wg.Add(1)
	go post(leader, inputs[leader])
	for s.Metrics().Counter("serve.admitted").Value() < 4 { // + fresh leader
		time.Sleep(200 * time.Microsecond)
	}
	for i, a := range inputs {
		if i == leader {
			continue
		}
		wg.Add(1)
		go post(i, a)
	}
	wg.Wait()
	blockers.Wait()

	// Every request succeeded and every inverse is numerically correct.
	for i, o := range outcomes {
		if o.status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, o.status)
		}
		res, err := matrix.IdentityResidual(inputs[i], o.inv)
		if err != nil {
			t.Fatal(err)
		}
		if res > 1e-8 {
			t.Fatalf("request %d (order %d): residual %g", i, inputs[i].Rows, res)
		}
	}
	met := s.Metrics()
	if got := met.Counter("serve.dedup_hits").Value(); got == 0 {
		t.Fatal("no singleflight dedup despite in-flight duplicates")
	}
	if got := met.Counter("serve.cache_hits").Value(); got == 0 {
		t.Fatal("no cache hits despite repeated matrices")
	}

	// An already-expired deadline is rejected before any pipeline work.
	jobsBefore := met.Counter("mapreduce.jobs").Value()
	resp, body := postMatrix(t, client, invertURL+"?timeout=-1s", workload.DiagonallyDominant(24, 9999))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline: status %d body %q", resp.StatusCode, body)
	}
	if got := met.Counter("serve.expired").Value(); got == 0 {
		t.Fatal("serve.expired not incremented")
	}
	if got := met.Counter("mapreduce.jobs").Value(); got != jobsBefore {
		t.Fatalf("expired request ran %d jobs", got-jobsBefore)
	}

	// Observability endpoints serve the run's counters.
	hresp, err := client.Get(hs.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	statz, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if !strings.Contains(string(statz), "\"dedup_hits\"") {
		t.Fatalf("statz missing fields: %s", statz)
	}
	hresp, err = client.Get(hs.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	metricz, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if !strings.Contains(string(metricz), "serve.e2e_latency") {
		t.Fatalf("metricz missing serving histograms: %s", metricz)
	}
}

// TestServingIntegrationOverload drives a deliberately tiny server over
// capacity: over-quota requests must get 429 and the server must keep
// serving afterwards.
func TestServingIntegrationOverload(t *testing.T) {
	opts := core.DefaultOptions(4)
	opts.NB = 16
	s, hs := startServer(t, serve.Config{
		Concurrency: 1,
		QueueDepth:  1,
		CacheBytes:  1 << 20,
		Opts:        opts,
	})
	client := hs.Client()
	invertURL := hs.URL + "/invert"

	const burst = 16
	statuses := make([]int, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := postMatrix(t, client, invertURL, workload.DiagonallyDominant(32, int64(500+i)))
			statuses[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	counts := map[int]int{}
	for _, st := range statuses {
		counts[st]++
	}
	if counts[http.StatusTooManyRequests] == 0 {
		t.Fatalf("no 429s from a burst of %d on queue depth 1: %v", burst, counts)
	}
	if counts[http.StatusOK]+counts[http.StatusTooManyRequests] != burst {
		t.Fatalf("unexpected statuses: %v", counts)
	}
	if got := s.Metrics().Counter("serve.rejected").Value(); got == 0 {
		t.Fatal("serve.rejected not incremented")
	}

	// Healthy afterwards: healthz is 200 and a fresh request inverts.
	hresp, err := client.Get(hs.URL + "/healthz")
	if err != nil || hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after burst: %v %v", hresp.StatusCode, err)
	}
	hresp.Body.Close()
	a := workload.DiagonallyDominant(24, 4242)
	resp, body := postMatrix(t, client, invertURL, a)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-burst request: status %d", resp.StatusCode)
	}
	inv, err := matrix.ReadBinary(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if res, _ := matrix.IdentityResidual(a, inv); res > 1e-8 {
		t.Fatalf("post-burst residual %g", res)
	}
}

// TestHTTPHostileHeaderRejected: a 12-byte binary header claiming huge
// dimensions must get a 413 from the size check, not trigger a multi-PiB
// allocation (MaxBytesReader cannot help — the allocation would happen
// before any payload byte is read).
func TestHTTPHostileHeaderRejected(t *testing.T) {
	opts := core.DefaultOptions(4)
	opts.NB = 16
	_, hs := startServer(t, serve.Config{Opts: opts})

	var buf bytes.Buffer
	for _, v := range []uint32{0x4d585236, 1 << 24, 1 << 24} { // magic, rows, cols
		binary.Write(&buf, binary.LittleEndian, v)
	}
	resp, err := hs.Client().Post(hs.URL+"/invert", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("hostile header: status %d, want 413", resp.StatusCode)
	}
}

// TestHTTPValidationErrors maps the typed facade sentinels to 400s
// (malformed) and 422s (parses but semantically unusable).
func TestHTTPValidationErrors(t *testing.T) {
	opts := core.DefaultOptions(4)
	opts.NB = 16
	_, hs := startServer(t, serve.Config{Opts: opts})
	client := hs.Client()

	// Rectangular matrix: structurally valid upload that cannot be
	// inverted -> 422, with the observed shape in the message.
	resp, body := postMatrix(t, client, hs.URL+"/invert", matrix.New(3, 5))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("non-square: status %d body %q", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "not square") {
		t.Fatalf("non-square error body %q", body)
	}
	if !strings.Contains(string(body), "3x5") {
		t.Fatalf("non-square error body %q lacks observed shape", body)
	}

	// Empty matrix -> 400 (ErrEmptyMatrix), not a 500.
	resp, body = postMatrix(t, client, hs.URL+"/invert", matrix.New(0, 0))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty: status %d body %q", resp.StatusCode, body)
	}

	// Garbage body -> 400.
	gresp, err := client.Post(hs.URL+"/invert", "application/octet-stream", strings.NewReader("not a matrix"))
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage: status %d", gresp.StatusCode)
	}

	// Bad query parameter -> 400.
	qresp, err := client.Post(hs.URL+"/invert?timeout=banana", "application/octet-stream", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	qresp.Body.Close()
	if qresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad timeout: status %d", qresp.StatusCode)
	}
}
