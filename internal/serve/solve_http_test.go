package serve_test

import (
	"bytes"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/tsqr"
	"repro/internal/workload"
)

// solveBody encodes the /lstsq wire format: matrix A immediately
// followed by the right-hand side b (omitted for /pinv).
func solveBody(t *testing.T, a, b *matrix.Dense) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := matrix.WriteBinary(&buf, a); err != nil {
		t.Fatal(err)
	}
	if b != nil {
		if err := matrix.WriteBinary(&buf, b); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func postSolve(t *testing.T, client *http.Client, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// TestLstsqEndpoint is the single-server acceptance path: a tall solve
// over HTTP matches the sequential reference to 1e-8, the repeat of the
// same body is a cache hit, and the TSQR pipeline's spans reach the
// Chrome-trace export.
func TestLstsqEndpoint(t *testing.T) {
	tracer := obs.New()
	opts := core.DefaultOptions(8)
	opts.NB = 64
	_, hs := startServer(t, serve.Config{Opts: opts, CacheBytes: 8 << 20, Tracer: tracer})
	client := hs.Client()

	// 256x8 is far past the cost model's crossover on 8 nodes, so this
	// request exercises the distributed TSQR path, not the sequential
	// fallback.
	a := workload.RandomRect(256, 8, 901)
	b := workload.RandomRect(256, 1, 902)
	body := solveBody(t, a, b)

	resp, payload := postSolve(t, client, hs.URL+"/lstsq", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lstsq: status %d body %q", resp.StatusCode, payload)
	}
	if got := resp.Header.Get("X-Source"); got != "pipeline" {
		t.Fatalf("first solve source %q, want pipeline", got)
	}
	x, err := matrix.ReadBinary(bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	if x.Rows != 8 || x.Cols != 1 {
		t.Fatalf("solution is %dx%d, want 8x1", x.Rows, x.Cols)
	}
	ref, err := tsqr.SequentialLstsq(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(x, ref); d > 1e-8 {
		t.Fatalf("|x - x_seq| = %g, want <= 1e-8", d)
	}

	// Same body, same digest: served from cache.
	resp2, payload2 := postSolve(t, client, hs.URL+"/lstsq", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat: status %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Source"); got != "cache" {
		t.Fatalf("repeat solve source %q, want cache", got)
	}
	if !bytes.Equal(payload, payload2) {
		t.Fatal("cached solution differs from computed one")
	}

	// Same A with a different rhs is a different digest — not a cache hit.
	other := solveBody(t, a, workload.RandomRect(256, 1, 903))
	resp3, _ := postSolve(t, client, hs.URL+"/lstsq", other)
	if got := resp3.Header.Get("X-Source"); got != "pipeline" {
		t.Fatalf("different-rhs source %q, want pipeline", got)
	}

	// The distributed path must have traced: tsqr.* spans in the export.
	var trace bytes.Buffer
	if err := obs.WriteChromeTrace(&trace, tracer.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trace.String(), "tsqr.lstsq") {
		t.Fatal("Chrome-trace export lacks tsqr.lstsq spans")
	}
}

// TestPinvEndpoint: pseudo-inverse over HTTP, against the sequential
// reference, with the repeat served from cache.
func TestPinvEndpoint(t *testing.T) {
	opts := core.DefaultOptions(8)
	opts.NB = 64
	_, hs := startServer(t, serve.Config{Opts: opts, CacheBytes: 8 << 20})
	client := hs.Client()

	a := workload.RandomRect(200, 6, 911)
	body := solveBody(t, a, nil)
	resp, payload := postSolve(t, client, hs.URL+"/pinv", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pinv: status %d body %q", resp.StatusCode, payload)
	}
	pinv, err := matrix.ReadBinary(bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	if pinv.Rows != 6 || pinv.Cols != 200 {
		t.Fatalf("A+ is %dx%d, want 6x200", pinv.Rows, pinv.Cols)
	}
	ref, err := tsqr.SequentialPInv(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(pinv, ref); d > 1e-8 {
		t.Fatalf("|A+ - A+_seq| = %g", d)
	}
	resp2, _ := postSolve(t, client, hs.URL+"/pinv", body)
	if got := resp2.Header.Get("X-Source"); got != "cache" {
		t.Fatalf("repeat pinv source %q, want cache", got)
	}
}

// TestSolveEndpointErrors pins the solve endpoints' error mapping: wide
// input 422, mismatched rhs 422, missing rhs 400, text body 415,
// near-square /lstsq still accepted (sequential path).
func TestSolveEndpointErrors(t *testing.T) {
	opts := core.DefaultOptions(4)
	opts.NB = 16
	_, hs := startServer(t, serve.Config{Opts: opts})
	client := hs.Client()

	// Wide A -> 422 with the observed shape.
	wide := solveBody(t, workload.RandomRect(4, 12, 1), workload.RandomRect(4, 1, 2))
	resp, body := postSolve(t, client, hs.URL+"/lstsq", wide)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("wide: status %d body %q", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "4x12") {
		t.Fatalf("wide error body %q lacks shape", body)
	}

	// Right-hand side with the wrong row count -> 422.
	mism := solveBody(t, workload.RandomRect(32, 4, 3), workload.RandomRect(31, 1, 4))
	resp, body = postSolve(t, client, hs.URL+"/lstsq", mism)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("mismatch: status %d body %q", resp.StatusCode, body)
	}

	// Missing rhs entirely -> 400 (malformed body, not semantics).
	noRhs := solveBody(t, workload.RandomRect(32, 4, 5), nil)
	resp, body = postSolve(t, client, hs.URL+"/lstsq", noRhs)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing rhs: status %d body %q", resp.StatusCode, body)
	}

	// Text bodies are not accepted on solve endpoints -> 415.
	tresp, err := client.Post(hs.URL+"/lstsq", "text/plain", strings.NewReader("1 2\n3 4\n"))
	if err != nil {
		t.Fatal(err)
	}
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("text body: status %d", tresp.StatusCode)
	}

	// Rank-deficient input -> 422 (typed ErrRankDeficient).
	rd := workload.RandomRect(40, 4, 6)
	for i := 0; i < rd.Rows; i++ {
		rd.Set(i, 3, rd.At(i, 1))
	}
	resp, body = postSolve(t, client, hs.URL+"/pinv", solveBody(t, rd, nil))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("rank deficient: status %d body %q", resp.StatusCode, body)
	}

	// GET is not allowed.
	gresp, err := client.Get(hs.URL + "/lstsq")
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d", gresp.StatusCode)
	}
}
