package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/workload"
)

// referenceKey is the original element-at-a-time digest: 8 bytes per
// hash.Write. The bulk-chunked requestKey must produce byte-identical
// digests or every cached inverse and every ring placement would move.
func referenceKey(a *matrix.Dense, nodes, nb int, separate, wrap, transpose, stream bool) string {
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(a.Rows))
	put(uint64(a.Cols))
	for _, v := range a.Data {
		put(math.Float64bits(v))
	}
	put(uint64(nodes))
	put(uint64(nb))
	var flags uint64
	for i, b := range []bool{separate, wrap, transpose, stream} {
		if b {
			flags |= 1 << uint(i)
		}
	}
	put(flags)
	return hex.EncodeToString(h.Sum(nil))
}

func TestRequestKeyMatchesReference(t *testing.T) {
	// Orders straddle the 512-float chunk boundary: 16 (under), 23²=529
	// floats (just over), 64 (several chunks), plus a non-square remnant.
	for _, n := range []int{1, 16, 23, 64} {
		a := workload.DiagonallyDominant(n, int64(n))
		for _, flags := range [][4]bool{
			{false, false, false, false},
			{true, true, true, true},
			{true, false, true, false},
		} {
			got := requestKey(a, 8, 64, flags[0], flags[1], flags[2], flags[3])
			want := referenceKey(a, 8, 64, flags[0], flags[1], flags[2], flags[3])
			if got != want {
				t.Fatalf("n=%d flags=%v: bulk digest %s != reference %s", n, flags, got, want)
			}
		}
	}
}

func TestKeyForResolvesOverrides(t *testing.T) {
	a := workload.DiagonallyDominant(16, 1)
	base := core.DefaultOptions(8)
	base.NB = 64
	// No overrides: digest under base options.
	if KeyFor(Request{A: a}, base) != requestKey(a, 8, 64,
		base.SeparateFiles, base.BlockWrap, base.TransposeU, base.StreamingInversion) {
		t.Fatal("KeyFor without overrides diverges from requestKey")
	}
	// Overrides must shift the key exactly as Do would resolve them.
	if KeyFor(Request{A: a, Nodes: 4, NB: 32}, base) != requestKey(a, 4, 32,
		base.SeparateFiles, base.BlockWrap, base.TransposeU, base.StreamingInversion) {
		t.Fatal("KeyFor ignores Nodes/NB overrides")
	}
	// Priority is deliberately not part of the key.
	if KeyFor(Request{A: a, Priority: 9}, base) != KeyFor(Request{A: a}, base) {
		t.Fatal("priority leaked into the digest")
	}
}

// The digest sits on the routing hot path of every federated request;
// compare the bulk-chunked encoder against the original per-element
// baseline with `go test -bench RequestKey ./internal/serve`.
func BenchmarkRequestKey(b *testing.B) {
	a := workload.DiagonallyDominant(256, 1)
	b.SetBytes(int64(len(a.Data)) * 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		requestKey(a, 8, 64, false, true, false, false)
	}
}

func BenchmarkRequestKeyPerElement(b *testing.B) {
	a := workload.DiagonallyDominant(256, 1)
	b.SetBytes(int64(len(a.Data)) * 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		referenceKey(a, 8, 64, false, true, false, false)
	}
}
