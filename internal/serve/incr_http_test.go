package serve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"repro/internal/core"
	"repro/internal/incr"
	"repro/internal/lu"
	"repro/internal/matrix"
	"repro/internal/serve"
	"repro/internal/workload"
)

// postInvert posts one matrix to /invert with optional extra headers and
// returns the response plus decoded body bytes.
func postInvert(t *testing.T, client *http.Client, url string, a *matrix.Dense, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := matrix.WriteBinary(&buf, a); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// The incremental end-to-end path: invert a base, then post a rank-k row
// mutation of it — with the X-Base-Digest hint and without — and get a
// correct inverse back marked X-Serve-Source: incremental, with the
// /statz counters accounting for every probe and update.
func TestHTTPIncrementalServing(t *testing.T) {
	opts := core.DefaultOptions(4)
	opts.NB = 16
	s, hs := startServer(t, serve.Config{
		Concurrency: 2,
		QueueDepth:  16,
		CacheBytes:  32 << 20,
		Opts:        opts,
		Incr:        incr.Config{Enabled: true},
	})
	client := hs.Client()
	invertURL := hs.URL + "/invert"

	const n = 64
	base := workload.DiagonallyDominant(n, 9001)
	resp, _ := postInvert(t, client, invertURL, base, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("base invert: status %d", resp.StatusCode)
	}
	if src := resp.Header.Get("X-Serve-Source"); src != "pipeline" {
		t.Fatalf("base invert source %q, want pipeline", src)
	}

	check := func(mut *matrix.Dense, body []byte) {
		t.Helper()
		got, err := matrix.ReadBinary(bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		want, err := lu.Invert(mut)
		if err != nil {
			t.Fatal(err)
		}
		if d := matrix.MaxAbsDiff(got, want); d > 1e-8 {
			t.Fatalf("incremental inverse off by %g", d)
		}
	}

	// With the hint: the server looks the base up by digest.
	digest := serve.KeyFor(serve.Request{A: base}, opts)
	mut := workload.MutateRows(base, 2, 77)
	resp, body := postInvert(t, client, invertURL, mut, map[string]string{"X-Base-Digest": digest})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta invert: status %d", resp.StatusCode)
	}
	if src := resp.Header.Get("X-Serve-Source"); src != "incremental" {
		t.Fatalf("hinted delta served from %q, want incremental", src)
	}
	check(mut, body)

	// Without the hint: the fingerprint probe finds the base on its own.
	mut2 := workload.MutateRows(base, 3, 78)
	resp, body = postInvert(t, client, invertURL, mut2, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unhinted delta invert: status %d", resp.StatusCode)
	}
	if src := resp.Header.Get("X-Serve-Source"); src != "incremental" {
		t.Fatalf("unhinted delta served from %q, want incremental", src)
	}
	check(mut2, body)

	// A stale hint degrades to the probe, never errors.
	mut3 := workload.MutateRows(base, 1, 79)
	resp, body = postInvert(t, client, invertURL, mut3, map[string]string{"X-Base-Digest": "no-such-digest"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale-hint invert: status %d", resp.StatusCode)
	}
	if src := resp.Header.Get("X-Serve-Source"); src != "incremental" {
		t.Fatalf("stale-hint delta served from %q, want incremental", src)
	}
	check(mut3, body)

	// Statz carries the incremental and cache-rate counters.
	st := s.Snapshot()
	if st.Incr == nil {
		t.Fatal("stats missing incr section")
	}
	if st.Incr.Updates != 3 {
		t.Fatalf("incr updates %d, want 3", st.Incr.Updates)
	}
	if st.Incr.Probes < 2 {
		t.Fatalf("incr probes %d, want >= 2 (unhinted + stale-hint)", st.Incr.Probes)
	}
	if st.Incr.BasesIndexed == 0 {
		t.Fatal("no bases indexed after successful inversions")
	}
	if st.CacheMisses == 0 {
		t.Fatal("cache misses not counted")
	}
	hr, err := client.Get(hs.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var wire serve.Stats
	if err := json.NewDecoder(hr.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	if wire.Incr == nil || wire.Incr.Updates != st.Incr.Updates {
		t.Fatalf("statz incr section %+v does not match snapshot", wire.Incr)
	}

	// An exact repeat of a delta request is a plain cache hit, not a
	// second update.
	resp, _ = postInvert(t, client, invertURL, mut, map[string]string{"X-Base-Digest": digest})
	if src := resp.Header.Get("X-Serve-Source"); src != "cache" {
		t.Fatalf("repeated delta served from %q, want cache", src)
	}
}

// A delta beyond the configured KMax is transparently recomputed by the
// full pipeline: correct answer, source "pipeline", declined counter.
func TestHTTPIncrementalFallbackBeyondKMax(t *testing.T) {
	opts := core.DefaultOptions(4)
	opts.NB = 16
	s, hs := startServer(t, serve.Config{
		Concurrency: 2,
		QueueDepth:  16,
		CacheBytes:  32 << 20,
		Opts:        opts,
		Incr:        incr.Config{Enabled: true, KMax: 1},
	})
	client := hs.Client()
	invertURL := hs.URL + "/invert"

	base := workload.DiagonallyDominant(48, 9100)
	if resp, _ := postInvert(t, client, invertURL, base, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("base invert: status %d", resp.StatusCode)
	}
	digest := serve.KeyFor(serve.Request{A: base}, opts)
	mut := workload.MutateRows(base, 4, 5) // rank 4 > KMax 1
	resp, body := postInvert(t, client, invertURL, mut, map[string]string{"X-Base-Digest": digest})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("oversize delta: status %d", resp.StatusCode)
	}
	if src := resp.Header.Get("X-Serve-Source"); src != "pipeline" {
		t.Fatalf("oversize delta served from %q, want pipeline fallback", src)
	}
	got, err := matrix.ReadBinary(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	want, err := lu.Invert(mut)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(got, want); d > 1e-8 {
		t.Fatalf("fallback inverse off by %g", d)
	}
	st := s.Snapshot()
	if st.Incr == nil || st.Incr.Updates != 0 {
		t.Fatalf("oversize delta still updated: %+v", st.Incr)
	}
}

// With Incr disabled the hint header is inert: requests serve normally
// and no incr section appears in stats.
func TestHTTPIncrementalDisabled(t *testing.T) {
	opts := core.DefaultOptions(4)
	opts.NB = 16
	s, hs := startServer(t, serve.Config{
		Concurrency: 1,
		QueueDepth:  8,
		Opts:        opts,
	})
	client := hs.Client()
	base := workload.DiagonallyDominant(32, 9200)
	if resp, _ := postInvert(t, client, hs.URL+"/invert", base, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	mut := workload.MutateRows(base, 1, 1)
	digest := serve.KeyFor(serve.Request{A: base}, opts)
	resp, _ := postInvert(t, client, hs.URL+"/invert", mut, map[string]string{"X-Base-Digest": digest})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if src := resp.Header.Get("X-Serve-Source"); src != "pipeline" {
		t.Fatalf("source %q with incr disabled", src)
	}
	if st := s.Snapshot(); st.Incr != nil {
		t.Fatalf("incr stats present while disabled: %+v", st.Incr)
	}
}
