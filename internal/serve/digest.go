package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"

	"repro/internal/core"
	"repro/internal/matrix"
)

// requestKey identifies an inversion request for deduplication and result
// caching: two requests share a key exactly when they would produce the
// bit-identical inverse. That means the key covers the input matrix and
// every pipeline parameter that changes the floating-point evaluation
// order (nb and the node count change the block recursion; the Section 6
// toggles change the kernels), not just the matrix bytes.
//
// The digest is also the federation tier's routing key (internal/fed
// hashes it onto the shard ring), so it sits on the hot path of every
// request: the matrix payload is encoded into a chunk buffer and fed to
// the hash in bulk writes rather than one 8-byte Write per element.
func requestKey(a *matrix.Dense, nodes, nb int, separate, wrap, transpose, stream bool) string {
	h := sha256.New()
	hashMatrix(h, a)
	var tail [24]byte
	binary.LittleEndian.PutUint64(tail[0:8], uint64(nodes))
	binary.LittleEndian.PutUint64(tail[8:16], uint64(nb))
	var flags uint64
	for i, b := range []bool{separate, wrap, transpose, stream} {
		if b {
			flags |= 1 << uint(i)
		}
	}
	binary.LittleEndian.PutUint64(tail[16:24], flags)
	h.Write(tail[:])
	return hex.EncodeToString(h.Sum(nil))
}

// hashMatrix feeds one matrix into the digest: a 16-byte rows/cols
// header (shape-aware — a 12x3 tall payload and a 6x6 square one with
// equal element bytes can never collide) followed by the float64 data in
// 512-element chunks.
func hashMatrix(h hash.Hash, m *matrix.Dense) {
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(m.Rows))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(m.Cols))
	h.Write(hdr[:])
	const chunkFloats = 512
	var buf [chunkFloats * 8]byte
	data := m.Data
	for len(data) > 0 {
		n := len(data)
		if n > chunkFloats {
			n = chunkFloats
		}
		for i, v := range data[:n] {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
		}
		h.Write(buf[:n*8])
		data = data[n:]
	}
}

// solveKey digests a tall-matrix request (lstsq / pinv). The kind
// discriminator makes /lstsq and /pinv on the same A distinct, the
// matrix headers make the key shape-aware, and the right-hand side (when
// present) is part of the key — so the LRU cache and singleflight dedup
// work unchanged across the mixed request population. The Section 6
// toggles are excluded: they parameterize the block-LU pipeline only.
func solveKey(kind Kind, a, b *matrix.Dense, nodes, nb int) string {
	h := sha256.New()
	h.Write([]byte("tsqr/" + string(kind) + "\x00"))
	hashMatrix(h, a)
	if b != nil {
		hashMatrix(h, b)
	}
	var tail [16]byte
	binary.LittleEndian.PutUint64(tail[0:8], uint64(nodes))
	binary.LittleEndian.PutUint64(tail[8:16], uint64(nb))
	h.Write(tail[:])
	return hex.EncodeToString(h.Sum(nil))
}

// KeyFor resolves a request's dedup/cache digest against a base option
// set: the per-request Nodes/NB overrides apply first, exactly as
// Server.Do resolves them. The federation router computes the same digest
// to place the request on the shard ring, which is what keeps identical
// matrices singleflight- and cache-local to one shard. Invert digests
// are unchanged from previous releases; solve kinds get their own keyed
// namespace.
func KeyFor(req Request, base core.Options) string {
	nodes, nb := base.Nodes, base.NB
	if req.Nodes > 0 {
		nodes = req.Nodes
	}
	if req.NB > 0 {
		nb = req.NB
	}
	if req.Kind == KindLstsq || req.Kind == KindPinv {
		return solveKey(req.Kind, req.A, req.B, nodes, nb)
	}
	return requestKey(req.A, nodes, nb,
		base.SeparateFiles, base.BlockWrap, base.TransposeU, base.StreamingInversion)
}

// matrixBytes is the in-memory footprint a cached inverse is charged
// against the cache's byte budget: the float64 payload plus the header.
func matrixBytes(m *matrix.Dense) int64 {
	return int64(len(m.Data))*8 + 16
}
