package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"repro/internal/matrix"
)

// requestKey identifies an inversion request for deduplication and result
// caching: two requests share a key exactly when they would produce the
// bit-identical inverse. That means the key covers the input matrix and
// every pipeline parameter that changes the floating-point evaluation
// order (nb and the node count change the block recursion; the Section 6
// toggles change the kernels), not just the matrix bytes.
func requestKey(a *matrix.Dense, nodes, nb int, separate, wrap, transpose, stream bool) string {
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(a.Rows))
	put(uint64(a.Cols))
	for _, v := range a.Data {
		put(math.Float64bits(v))
	}
	put(uint64(nodes))
	put(uint64(nb))
	var flags uint64
	for i, b := range []bool{separate, wrap, transpose, stream} {
		if b {
			flags |= 1 << uint(i)
		}
	}
	put(flags)
	return hex.EncodeToString(h.Sum(nil))
}

// matrixBytes is the in-memory footprint a cached inverse is charged
// against the cache's byte budget: the float64 payload plus the header.
func matrixBytes(m *matrix.Dense) int64 {
	return int64(len(m.Data))*8 + 16
}
