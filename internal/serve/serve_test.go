package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/workload"
)

func testConfig() Config {
	opts := core.DefaultOptions(4)
	opts.NB = 16
	return Config{Concurrency: 2, QueueDepth: 16, CacheBytes: 16 << 20, Opts: opts}
}

func mustServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func checkInverse(t *testing.T, a, inv *matrix.Dense) {
	t.Helper()
	res, err := matrix.IdentityResidual(a, inv)
	if err != nil {
		t.Fatal(err)
	}
	if res > 1e-8 {
		t.Fatalf("residual %g", res)
	}
}

func TestDoInvertsCorrectly(t *testing.T) {
	s := mustServer(t, testConfig())
	a := workload.DiagonallyDominant(48, 3)
	res, err := s.Do(context.Background(), Request{A: a})
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "pipeline" {
		t.Fatalf("source %q", res.Source)
	}
	if res.Rep == nil || res.Rep.JobsRun == 0 {
		t.Fatal("no job report from a pipeline run")
	}
	checkInverse(t, a, res.Out)
}

func TestCacheHitOnRepeat(t *testing.T) {
	s := mustServer(t, testConfig())
	a := workload.DiagonallyDominant(32, 5)
	if _, err := s.Do(context.Background(), Request{A: a}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Do(context.Background(), Request{A: a})
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "cache" {
		t.Fatalf("second identical request source %q, want cache", res.Source)
	}
	checkInverse(t, a, res.Out)
	if got := s.Metrics().Counter("serve.cache_hits").Value(); got != 1 {
		t.Fatalf("cache_hits = %d", got)
	}
	// A different nb is a different floating-point computation: no hit.
	if res, err = s.Do(context.Background(), Request{A: a, NB: 8}); err != nil {
		t.Fatal(err)
	} else if res.Source == "cache" {
		t.Fatal("request with different nb must not share the cache entry")
	}
}

func TestValidationSentinels(t *testing.T) {
	s := mustServer(t, testConfig())
	cases := []struct {
		a    *matrix.Dense
		want error
	}{
		{nil, core.ErrNilMatrix},
		{matrix.New(0, 0), core.ErrEmptyMatrix},
		{matrix.New(2, 3), core.ErrNotSquare},
	}
	for _, c := range cases {
		_, err := s.Do(context.Background(), Request{A: c.a})
		if !errors.Is(err, c.want) {
			t.Fatalf("Do(%v) = %v, want %v", c.a, err, c.want)
		}
	}
	if got := s.Metrics().Counter("serve.invalid").Value(); got != 3 {
		t.Fatalf("serve.invalid = %d", got)
	}
	if got := s.Metrics().Counter("mapreduce.jobs").Value(); got != 0 {
		t.Fatalf("invalid inputs ran %d jobs", got)
	}
}

func TestExpiredDeadlineSkipsPipeline(t *testing.T) {
	s := mustServer(t, testConfig())
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := s.Do(ctx, Request{A: workload.DiagonallyDominant(32, 9)})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	met := s.Metrics()
	if got := met.Counter("serve.expired").Value(); got != 1 {
		t.Fatalf("serve.expired = %d", got)
	}
	if got := met.Counter("serve.admitted").Value(); got != 0 {
		t.Fatalf("expired request was admitted (%d)", got)
	}
	if got := met.Counter("mapreduce.jobs").Value(); got != 0 {
		t.Fatalf("expired request ran %d jobs", got)
	}
}

func TestDeadlineCancelsMidPipeline(t *testing.T) {
	s := mustServer(t, testConfig())
	// Deep pipeline (order 192, nb 8) so a 2ms budget expires long before
	// the run completes; the flight must stop at a job boundary.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	_, err := s.Do(ctx, Request{A: workload.DiagonallyDominant(192, 4), NB: 8})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if got := s.Metrics().Counter("serve.canceled").Value(); got != 1 {
		t.Fatalf("serve.canceled = %d", got)
	}
}

func TestSingleflightDedupConcurrentIdentical(t *testing.T) {
	cfg := testConfig()
	cfg.Concurrency = 1 // one worker: the blocker pins it while joiners pile up
	s := mustServer(t, cfg)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Do(context.Background(), Request{A: workload.DiagonallyDominant(128, 99)}); err != nil {
			t.Errorf("blocker: %v", err)
		}
	}()
	// Wait until the blocker owns the worker before offering duplicates.
	for s.Metrics().Counter("serve.admitted").Value() == 0 {
		time.Sleep(100 * time.Microsecond)
	}

	a := workload.DiagonallyDominant(32, 7)
	const dupes = 8
	results := make([]*Result, dupes)
	errs := make([]error, dupes)
	for i := 0; i < dupes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Do(context.Background(), Request{A: a})
		}(i)
	}
	wg.Wait()

	for i := 0; i < dupes; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		checkInverse(t, a, results[i].Out)
		if results[i].Out != results[0].Out {
			t.Fatal("deduplicated requests must share one inverse")
		}
	}
	met := s.Metrics()
	if got := met.Counter("serve.dedup_hits").Value(); got != dupes-1 {
		t.Fatalf("dedup_hits = %d, want %d", got, dupes-1)
	}
	// Two pipelines total: the blocker and one leader for all duplicates.
	if got := met.Counter("serve.admitted").Value(); got != 2 {
		t.Fatalf("admitted = %d, want 2", got)
	}
}

// TestJoinRevivesDeadFlight reproduces the singleflight revival race: the
// last waiter of a flight has released it (refs 0, context canceled) but
// execute() has not yet removed it from the map. A new request arriving in
// that window must start a fresh flight, not inherit the canceled one and
// fail with a spurious context.Canceled.
func TestJoinRevivesDeadFlight(t *testing.T) {
	s := mustServer(t, testConfig())
	a := workload.DiagonallyDominant(24, 42)
	opts, err := s.optsFor(Request{A: a})
	if err != nil {
		t.Fatal(err)
	}
	key := requestKey(a, opts.Nodes, opts.NB,
		opts.SeparateFiles, opts.BlockWrap, opts.TransposeU, opts.StreamingInversion)

	fctx, cancel := context.WithCancel(context.Background())
	cancel()
	dead := &flight{key: key, ctx: fctx, cancel: cancel, done: make(chan struct{})}
	s.mu.Lock()
	s.flights[key] = dead
	s.mu.Unlock()

	res, err := s.Do(context.Background(), Request{A: a})
	if err != nil {
		t.Fatalf("request joining a dead flight: %v", err)
	}
	if res.Source != "pipeline" {
		t.Fatalf("source %q, want pipeline (fresh flight, not the dead one)", res.Source)
	}
	checkInverse(t, a, res.Out)
	if got := s.Metrics().Counter("serve.dedup_hits").Value(); got != 0 {
		t.Fatalf("dedup_hits = %d on a dead flight", got)
	}
}

// TestDrainCancelsExecutingFlights: when the drain grace expires, running
// pipelines must be canceled at the next job boundary so Drain returns
// promptly instead of riding each run to natural completion.
func TestDrainCancelsExecutingFlights(t *testing.T) {
	cfg := testConfig()
	cfg.Concurrency = 1
	s := mustServer(t, cfg)

	var wg sync.WaitGroup
	var doErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Deep pipeline: many jobs left once the drain deadline fires. The
		// order is large enough that even a test goroutine starved by a
		// loaded machine drains while dozens of jobs still remain.
		_, doErr = s.Do(context.Background(), Request{A: workload.DiagonallyDominant(320, 11), NB: 8})
	}()
	// Wait until the pipeline is actually executing (past admission).
	for s.Metrics().Counter("mapreduce.jobs").Value() == 0 {
		time.Sleep(100 * time.Microsecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain = %v, want DeadlineExceeded", err)
	}
	wg.Wait()
	if doErr == nil {
		t.Fatal("pipeline ran to completion past the drain grace period")
	}
}

func TestOverloadRejectsAndStaysHealthy(t *testing.T) {
	cfg := testConfig()
	cfg.Concurrency = 1
	cfg.QueueDepth = 1
	s := mustServer(t, cfg)

	const burst = 12
	var wg sync.WaitGroup
	errs := make([]error, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct matrices: no dedup relief, pure admission pressure.
			_, errs[i] = s.Do(context.Background(), Request{A: workload.DiagonallyDominant(32, int64(100+i))})
		}(i)
	}
	wg.Wait()

	rejected, ok := 0, 0
	for _, err := range errs {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrOverloaded):
			rejected++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if rejected == 0 {
		t.Fatalf("no rejections from a burst of %d on queue depth 1", burst)
	}
	if ok+rejected != burst {
		t.Fatalf("ok %d + rejected %d != %d", ok, rejected, burst)
	}
	if got := s.Metrics().Counter("serve.rejected").Value(); got != int64(rejected) {
		t.Fatalf("serve.rejected = %d, want %d", got, rejected)
	}
	// The server must stay healthy: the next request succeeds.
	a := workload.DiagonallyDominant(24, 999)
	res, err := s.Do(context.Background(), Request{A: a})
	if err != nil {
		t.Fatalf("post-burst request failed: %v", err)
	}
	checkInverse(t, a, res.Out)
}

func TestDrainRejectsNewWork(t *testing.T) {
	s := mustServer(t, testConfig())
	a := workload.DiagonallyDominant(24, 1)
	if _, err := s.Do(context.Background(), Request{A: a}); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Do(context.Background(), Request{A: a}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Do after drain = %v, want ErrDraining", err)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	if !s.Snapshot().Draining {
		t.Fatal("snapshot not draining")
	}
}

func TestCacheEvictionByteBudget(t *testing.T) {
	sz := matrixBytes(matrix.New(8, 8))
	c := newResultCache(3*sz + 8)
	for i := 0; i < 5; i++ {
		inv := workload.DiagonallyDominant(8, int64(i))
		if ev := c.Put(fmt.Sprintf("k%d", i), inv); i < 3 && ev != 0 {
			t.Fatalf("early eviction at insert %d", i)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	if c.Bytes() > 3*sz+8 {
		t.Fatalf("Bytes %d over budget", c.Bytes())
	}
	if _, ok := c.Get("k0"); ok {
		t.Fatal("oldest entry survived over-budget inserts")
	}
	if _, ok := c.Get("k4"); !ok {
		t.Fatal("newest entry missing")
	}
	// LRU promotion: touching k2 must make k3 the eviction victim.
	if _, ok := c.Get("k2"); !ok {
		t.Fatal("k2 missing")
	}
	c.Put("k5", workload.DiagonallyDominant(8, 5))
	if _, ok := c.Get("k2"); !ok {
		t.Fatal("recently used k2 evicted")
	}
	if _, ok := c.Get("k3"); ok {
		t.Fatal("least recently used k3 survived")
	}
}

func TestCacheRejectsOversizedEntry(t *testing.T) {
	c := newResultCache(64) // smaller than any 8x8
	if ev := c.Put("big", matrix.New(8, 8)); ev != 0 || c.Len() != 0 {
		t.Fatalf("oversized entry admitted (len %d, evicted %d)", c.Len(), ev)
	}
}

func TestRequestKeySensitivity(t *testing.T) {
	a := workload.DiagonallyDominant(16, 1)
	b := workload.DiagonallyDominant(16, 2)
	base := requestKey(a, 8, 64, true, true, true, false)
	if requestKey(a, 8, 64, true, true, true, false) != base {
		t.Fatal("key not deterministic")
	}
	for name, other := range map[string]string{
		"matrix": requestKey(b, 8, 64, true, true, true, false),
		"nodes":  requestKey(a, 4, 64, true, true, true, false),
		"nb":     requestKey(a, 8, 32, true, true, true, false),
		"toggle": requestKey(a, 8, 64, true, false, true, false),
	} {
		if other == base {
			t.Fatalf("key ignores %s", name)
		}
	}
}
