package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/mapreduce"
	"repro/internal/matrix"
)

// DefaultMaxBodyBytes bounds the request body (a binary matrix): 64 MiB
// holds an order-2896 double matrix, far beyond simulation scale.
const DefaultMaxBodyBytes = 64 << 20

// NewHandler exposes the server over HTTP:
//
//	POST /invert    body = matrix (binary by default, text with
//	                Content-Type: text/plain); query params timeout
//	                (Go duration), nodes, nb, priority. Responds with the
//	                inverse in the same format, plus X-Source/X-Jobs/
//	                X-Slot-Wait headers.
//	GET  /healthz   liveness (503 while draining)
//	GET  /statz     JSON serving stats
//	GET  /metricz   plain-text metrics registry
//
// Error mapping: invalid input 400, queue overflow 429, draining 503,
// deadline/cancellation 504, singular input 422, body too large 413.
func NewHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/invert", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		s.handleInvert(w, r)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.Snapshot().Draining {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Snapshot())
	})
	mux.HandleFunc("/metricz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.met.Render(w)
	})
	return mux
}

func (s *Server) handleInvert(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	req := Request{}
	var err error
	if v := q.Get("nodes"); v != "" {
		if req.Nodes, err = strconv.Atoi(v); err != nil {
			http.Error(w, "bad nodes: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	if v := q.Get("nb"); v != "" {
		if req.NB, err = strconv.Atoi(v); err != nil {
			http.Error(w, "bad nb: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	if v := q.Get("priority"); v != "" {
		if req.Priority, err = strconv.Atoi(v); err != nil {
			http.Error(w, "bad priority: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	ctx := r.Context()
	if v := q.Get("timeout"); v != "" {
		d, derr := time.ParseDuration(v)
		if derr != nil {
			http.Error(w, "bad timeout: "+derr.Error(), http.StatusBadRequest)
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	text := strings.HasPrefix(r.Header.Get("Content-Type"), "text/plain")
	body := http.MaxBytesReader(w, r.Body, DefaultMaxBodyBytes)
	var a *matrix.Dense
	if text {
		a, err = matrix.ReadText(body)
	} else {
		// The limit must reach inside the decoder: MaxBytesReader only
		// bounds bytes read, and the header-declared dimensions would be
		// allocated before any payload byte is consumed.
		a, err = matrix.ReadBinaryLimit(body, DefaultMaxBodyBytes)
	}
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) || errors.Is(err, matrix.ErrTooLarge) {
			http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "unreadable matrix: "+err.Error(), http.StatusBadRequest)
		return
	}
	req.A = a

	res, err := s.Do(ctx, req)
	if err != nil {
		writeDoError(w, err)
		return
	}
	w.Header().Set("X-Source", res.Source)
	if res.Rep != nil {
		w.Header().Set("X-Jobs", strconv.Itoa(res.Rep.JobsRun))
		w.Header().Set("X-Elapsed", res.Rep.Elapsed.String())
		w.Header().Set("X-Slot-Wait", res.Rep.SlotWait.String())
	}
	if text {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		err = matrix.WriteText(w, res.Inv)
	} else {
		w.Header().Set("Content-Type", "application/octet-stream")
		err = matrix.WriteBinary(w, res.Inv)
	}
	_ = err // headers are out; nothing sensible left to report
}

// writeDoError maps a serving error to its HTTP status. The typed
// validation sentinels become 400s — client mistakes, not server faults.
func writeDoError(w http.ResponseWriter, err error) {
	var status int
	switch {
	case errors.Is(err, core.ErrNilMatrix),
		errors.Is(err, core.ErrEmptyMatrix),
		errors.Is(err, core.ErrNotSquare),
		errors.Is(err, core.ErrBadOptions):
		status = http.StatusBadRequest
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled),
		errors.Is(err, mapreduce.ErrJobCanceled):
		status = http.StatusGatewayTimeout
	case errors.Is(err, core.ErrSingularBlock):
		status = http.StatusUnprocessableEntity
	default:
		status = http.StatusInternalServerError
	}
	http.Error(w, err.Error(), status)
}
