package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/mapreduce"
	"repro/internal/matrix"
	"repro/internal/tsqr"
)

// DefaultMaxBodyBytes bounds the request body (a binary matrix): 64 MiB
// holds an order-2896 double matrix, far beyond simulation scale.
const DefaultMaxBodyBytes = 64 << 20

// NewHandler exposes the server over HTTP:
//
//	POST /invert    body = square matrix (binary by default, text with
//	                Content-Type: text/plain); query params timeout
//	                (Go duration), nodes, nb, priority; optional
//	                X-Base-Digest header naming a previously served base
//	                matrix this request mutates. Responds with the
//	                inverse in the same format, plus X-Source/
//	                X-Serve-Source/X-Jobs/X-Slot-Wait headers.
//	POST /lstsq     body = tall matrix A immediately followed by the
//	                right-hand side b, both in the binary format (the
//	                fixed-size header makes the boundary self-describing;
//	                text bodies are rejected with 415). Responds with the
//	                least-squares solution x = R^-1 Q^T b in binary.
//	POST /pinv      body = tall matrix A in the binary format. Responds
//	                with the pseudo-inverse A^+ = R^-1 Q^T in binary.
//	GET  /healthz   liveness (503 while draining)
//	GET  /statz     JSON serving stats
//	GET  /metricz   plain-text metrics registry
//
// Error mapping: malformed input 400, queue overflow 429, draining 503,
// deadline/cancellation 504, body too large 413, and 422 for inputs
// that parse but are semantically unusable — a rectangular /invert body
// (with the observed shape in the message), a wide or rank-deficient
// solve input, a right-hand-side shape mismatch, a singular inversion.
func NewHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/invert", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		s.handleInvert(w, r)
	})
	mux.HandleFunc("/lstsq", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		s.handleSolve(w, r, KindLstsq)
	})
	mux.HandleFunc("/pinv", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		s.handleSolve(w, r, KindPinv)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.Snapshot().Draining {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Snapshot())
	})
	mux.HandleFunc("/metricz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.met.Render(w)
	})
	return mux
}

// DecodeInvertRequest parses a POST /invert into a Request: query
// parameters (timeout, nodes, nb, priority) and the matrix body (binary
// by default, text with Content-Type: text/plain). On failure it writes
// the error response itself and reports ok = false. The returned context
// carries the request deadline; cancel must be called when the request
// finishes. text reports the body format, so the response can mirror it.
// Both the single-server handler and the federation tier's shard router
// decode requests through here.
func DecodeInvertRequest(w http.ResponseWriter, r *http.Request) (req Request, ctx context.Context, cancel context.CancelFunc, text, ok bool) {
	req, ctx, cancel, ok = decodeParams(w, r)
	if !ok {
		return Request{}, nil, nil, false, false
	}

	// An optional X-Base-Digest names a previously served base matrix
	// this request is a low-rank mutation of: it steers the incremental
	// path's probe and the federation tier's routing. A stale hint is
	// harmless (the probe falls back to a fingerprint scan).
	req.BaseDigest = r.Header.Get("X-Base-Digest")

	text = strings.HasPrefix(r.Header.Get("Content-Type"), "text/plain")
	body := http.MaxBytesReader(w, r.Body, DefaultMaxBodyBytes)
	var a *matrix.Dense
	var err error
	if text {
		a, err = matrix.ReadText(body)
	} else {
		// The limit must reach inside the decoder: MaxBytesReader only
		// bounds bytes read, and the header-declared dimensions would be
		// allocated before any payload byte is consumed.
		a, err = matrix.ReadBinaryLimit(body, DefaultMaxBodyBytes)
	}
	if err != nil {
		cancel()
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) || errors.Is(err, matrix.ErrTooLarge) {
			http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
			return Request{}, nil, nil, false, false
		}
		http.Error(w, "unreadable matrix: "+err.Error(), http.StatusBadRequest)
		return Request{}, nil, nil, false, false
	}
	req.A = a
	return req, ctx, cancel, text, true
}

// decodeParams parses the query parameters shared by every POST
// endpoint (timeout, nodes, nb, priority) and derives the request
// context. On failure it writes the error response and reports !ok.
func decodeParams(w http.ResponseWriter, r *http.Request) (req Request, ctx context.Context, cancel context.CancelFunc, ok bool) {
	q := r.URL.Query()
	var err error
	if v := q.Get("nodes"); v != "" {
		if req.Nodes, err = strconv.Atoi(v); err != nil {
			http.Error(w, "bad nodes: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	if v := q.Get("nb"); v != "" {
		if req.NB, err = strconv.Atoi(v); err != nil {
			http.Error(w, "bad nb: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	if v := q.Get("priority"); v != "" {
		if req.Priority, err = strconv.Atoi(v); err != nil {
			http.Error(w, "bad priority: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	ctx, cancel = r.Context(), func() {}
	if v := q.Get("timeout"); v != "" {
		d, derr := time.ParseDuration(v)
		if derr != nil {
			http.Error(w, "bad timeout: "+derr.Error(), http.StatusBadRequest)
			return Request{}, nil, nil, false
		}
		ctx, cancel = context.WithTimeout(ctx, d)
	}
	return req, ctx, cancel, true
}

// DecodeSolveRequest parses a POST /lstsq or /pinv into a Request. The
// body is binary-only: matrix A and, for lstsq, the right-hand side b
// immediately after it — the binary header is fixed-size, so the
// boundary is computed from A's declared shape rather than trusted from
// the client. Query parameters match /invert. On failure it writes the
// error response itself and reports ok = false.
func DecodeSolveRequest(w http.ResponseWriter, r *http.Request, kind Kind) (req Request, ctx context.Context, cancel context.CancelFunc, ok bool) {
	req, ctx, cancel, ok = decodeParams(w, r)
	if !ok {
		return Request{}, nil, nil, false
	}
	req.Kind = kind
	fail := func(status int, msg string) (Request, context.Context, context.CancelFunc, bool) {
		cancel()
		http.Error(w, msg, status)
		return Request{}, nil, nil, false
	}
	if strings.HasPrefix(r.Header.Get("Content-Type"), "text/plain") {
		return fail(http.StatusUnsupportedMediaType, "solve endpoints accept the binary matrix format only")
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, DefaultMaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return fail(http.StatusRequestEntityTooLarge, err.Error())
		}
		return fail(http.StatusBadRequest, "unreadable body: "+err.Error())
	}
	a, err := matrix.ReadBinaryLimit(bytes.NewReader(body), DefaultMaxBodyBytes)
	if err != nil {
		if errors.Is(err, matrix.ErrTooLarge) {
			return fail(http.StatusRequestEntityTooLarge, err.Error())
		}
		return fail(http.StatusBadRequest, "unreadable matrix: "+err.Error())
	}
	req.A = a
	if kind == KindLstsq {
		// ReadBinaryLimit buffers ahead, so the rhs offset comes from A's
		// declared shape, not from the reader's position.
		off := matrix.BinarySize(a.Rows, a.Cols)
		if int64(len(body)) <= off {
			return fail(http.StatusBadRequest, "missing right-hand side after matrix A")
		}
		b, err := matrix.ReadBinaryLimit(bytes.NewReader(body[off:]), DefaultMaxBodyBytes)
		if err != nil {
			return fail(http.StatusBadRequest, "unreadable right-hand side: "+err.Error())
		}
		req.B = b
	}
	return req, ctx, cancel, true
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request, kind Kind) {
	req, ctx, cancel, ok := DecodeSolveRequest(w, r, kind)
	if !ok {
		return
	}
	defer cancel()
	res, err := s.Do(ctx, req)
	if err != nil {
		WriteError(w, err)
		return
	}
	EncodeInvertResponse(w, false, res)
}

// EncodeInvertResponse writes a completed inversion in the request's
// format with the X-Source / X-Jobs / X-Elapsed / X-Slot-Wait headers.
func EncodeInvertResponse(w http.ResponseWriter, text bool, res *Result) {
	w.Header().Set("X-Source", res.Source)
	// X-Serve-Source duplicates X-Source under the name the incremental
	// path's clients and smoke tests assert on ("pipeline", "cache",
	// "dedup", "incremental"); both are kept for compatibility.
	w.Header().Set("X-Serve-Source", res.Source)
	if res.Rep != nil {
		w.Header().Set("X-Jobs", strconv.Itoa(res.Rep.JobsRun))
		w.Header().Set("X-Elapsed", res.Rep.Elapsed.String())
		w.Header().Set("X-Slot-Wait", res.Rep.SlotWait.String())
	}
	var err error
	if text {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		err = matrix.WriteText(w, res.Out)
	} else {
		w.Header().Set("Content-Type", "application/octet-stream")
		err = matrix.WriteBinary(w, res.Out)
	}
	_ = err // headers are out; nothing sensible left to report
}

func (s *Server) handleInvert(w http.ResponseWriter, r *http.Request) {
	req, ctx, cancel, text, ok := DecodeInvertRequest(w, r)
	if !ok {
		return
	}
	defer cancel()
	res, err := s.Do(ctx, req)
	if err != nil {
		WriteError(w, err)
		return
	}
	EncodeInvertResponse(w, text, res)
}

// WriteError maps a serving error to its HTTP status. Malformed inputs
// (nil, empty, bad options) are 400s — client mistakes. Inputs that
// parse but are semantically unusable for the requested computation — a
// rectangular /invert body, a wide or rank-deficient solve input, a
// right-hand-side shape mismatch, a singular matrix, a failed residual
// guardrail — are 422s, with the observed shape carried in the message
// by the validators.
func WriteError(w http.ResponseWriter, err error) {
	var status int
	switch {
	case errors.Is(err, core.ErrNilMatrix),
		errors.Is(err, core.ErrEmptyMatrix),
		errors.Is(err, core.ErrBadOptions):
		status = http.StatusBadRequest
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled),
		errors.Is(err, mapreduce.ErrJobCanceled):
		status = http.StatusGatewayTimeout
	case errors.Is(err, core.ErrNotSquare),
		errors.Is(err, core.ErrSingularBlock),
		errors.Is(err, tsqr.ErrNotTall),
		errors.Is(err, tsqr.ErrShapeMismatch),
		errors.Is(err, tsqr.ErrRankDeficient),
		errors.Is(err, tsqr.ErrResidual):
		status = http.StatusUnprocessableEntity
	default:
		status = http.StatusInternalServerError
	}
	http.Error(w, err.Error(), status)
}
