package serve

import (
	"container/list"
	"sync"

	"repro/internal/matrix"
)

// resultCache is a byte-budgeted LRU of computed inverses keyed by request
// digest. Matrices handed out by Get are shared — callers must treat them
// as immutable (the serving layer only serializes them).
type resultCache struct {
	mu     sync.Mutex
	budget int64 // <= 0 disables the cache entirely
	used   int64
	ll     *list.List // front = most recently used
	items  map[string]*list.Element
}

type cacheEntry struct {
	key   string
	inv   *matrix.Dense
	bytes int64
}

func newResultCache(budget int64) *resultCache {
	return &resultCache{budget: budget, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached inverse for key, promoting it to most recently
// used.
func (c *resultCache) Get(key string) (*matrix.Dense, bool) {
	if c == nil || c.budget <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).inv, true
}

// Put inserts (or refreshes) key's inverse and evicts from the LRU tail
// until the byte budget holds again. It returns how many entries were
// evicted. An inverse bigger than the whole budget is not admitted —
// caching it would just flush everything else.
func (c *resultCache) Put(key string, inv *matrix.Dense) (evicted int) {
	if c == nil || c.budget <= 0 {
		return 0
	}
	sz := matrixBytes(inv)
	if sz > c.budget {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.used += sz - e.bytes
		e.inv, e.bytes = inv, sz
	} else {
		el := c.ll.PushFront(&cacheEntry{key: key, inv: inv, bytes: sz})
		c.items[key] = el
		c.used += sz
	}
	for c.used > c.budget {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		e := tail.Value.(*cacheEntry)
		c.ll.Remove(tail)
		delete(c.items, e.key)
		c.used -= e.bytes
		evicted++
	}
	return evicted
}

// Len returns the number of cached inverses.
func (c *resultCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the bytes currently charged against the budget.
func (c *resultCache) Bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}
