package mapreduce

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dfs"
)

// wordCountJob builds the canonical test job over the given documents.
func wordCountJob(docs []string, reducers int) *Job {
	splits := make([]InputSplit, len(docs))
	for i, d := range docs {
		splits[i] = InputSplit{ID: i, Data: []byte(d)}
	}
	return &Job{
		Name:   "wordcount",
		Splits: splits,
		Map: func(ctx *TaskContext, split InputSplit, emit Emitter) error {
			for _, w := range strings.Fields(string(split.Data)) {
				emit.Emit(w, []byte("1"))
			}
			return nil
		},
		Reduce: func(ctx *TaskContext, key string, values [][]byte, emit Emitter) error {
			emit.Emit(key, []byte(strconv.Itoa(len(values))))
			return nil
		},
		NumReduce: reducers,
	}
}

func outputMap(t *testing.T, res *JobResult) map[string]string {
	t.Helper()
	m := make(map[string]string)
	for _, kv := range res.Output {
		m[kv.Key] = string(kv.Value)
	}
	return m
}

func TestWordCount(t *testing.T) {
	c := NewCluster(dfs.New(4, 2), 4)
	res, err := c.Run(wordCountJob([]string{"a b a", "b c", "a"}, 3))
	if err != nil {
		t.Fatal(err)
	}
	got := outputMap(t, res)
	want := map[string]string{"a": "3", "b": "2", "c": "1"}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count[%s] = %s, want %s (all: %v)", k, got[k], v, got)
		}
	}
	if res.MapTasks != 3 || res.ReduceTasks != 3 {
		t.Fatalf("tasks = %d/%d", res.MapTasks, res.ReduceTasks)
	}
	if res.ShuffledKVs != 6 {
		t.Fatalf("shuffled = %d", res.ShuffledKVs)
	}
	if c.JobsRun() != 1 {
		t.Fatalf("JobsRun = %d", c.JobsRun())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	docs := []string{"x y z x", "y z", "z q r s t", "m n o p q"}
	var first []KV
	for trial := 0; trial < 5; trial++ {
		c := NewCluster(dfs.New(8, 3), 7)
		res, err := c.Run(wordCountJob(docs, 4))
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			first = res.Output
			continue
		}
		if len(res.Output) != len(first) {
			t.Fatalf("trial %d: output length changed", trial)
		}
		for i := range first {
			if res.Output[i].Key != first[i].Key || string(res.Output[i].Value) != string(first[i].Value) {
				t.Fatalf("trial %d: output[%d] = %v, want %v", trial, i, res.Output[i], first[i])
			}
		}
	}
}

func TestMapOnlyJob(t *testing.T) {
	c := NewCluster(dfs.New(2, 1), 2)
	job := &Job{
		Name:   "maponly",
		Splits: ControlSplits(4),
		Map: func(ctx *TaskContext, split InputSplit, emit Emitter) error {
			// Like the partition job: write directly to the FS, emit a
			// control pair only.
			ctx.FS.Write(fmt.Sprintf("out/part-%d", split.ID), split.Data)
			emit.Emit(fmt.Sprintf("%02d", split.ID), nil)
			return nil
		},
	}
	res, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 4 || res.Output[0].Key != "00" {
		t.Fatalf("output = %v", res.Output)
	}
	for i := 0; i < 4; i++ {
		data, err := c.FS.Read(fmt.Sprintf("out/part-%d", i))
		if err != nil || string(data) != strconv.Itoa(i) {
			t.Fatalf("part-%d = %q, %v", i, data, err)
		}
	}
}

func TestRetryOnInjectedFailure(t *testing.T) {
	c := NewCluster(dfs.New(2, 1), 2)
	var mu sync.Mutex
	failed := map[string]bool{}
	// Fail the first attempt of every map task and of reduce task 0.
	c.InjectFailure = func(job string, taskID, attempt int, isMap bool) error {
		mu.Lock()
		defer mu.Unlock()
		key := fmt.Sprintf("%s/%v/%d", job, isMap, taskID)
		if attempt == 0 && (isMap || taskID == 0) && !failed[key] {
			failed[key] = true
			return errors.New("injected")
		}
		return nil
	}
	res, err := c.Run(wordCountJob([]string{"a b", "b"}, 2))
	if err != nil {
		t.Fatal(err)
	}
	got := outputMap(t, res)
	if got["a"] != "1" || got["b"] != "2" {
		t.Fatalf("retried job wrong: %v", got)
	}
	if res.TaskFailures == 0 {
		t.Fatal("failures not recorded")
	}
	if c.TaskFailures() != res.TaskFailures {
		t.Fatal("cluster failure counter mismatch")
	}
}

func TestFailureDoesNotDuplicateOutput(t *testing.T) {
	// A map attempt that emits and then fails must contribute nothing.
	c := NewCluster(dfs.New(1, 1), 1)
	c.InjectFailure = nil
	attempts := map[int]int{}
	var mu sync.Mutex
	job := &Job{
		Name:   "emit-then-fail",
		Splits: ControlSplits(3),
		Map: func(ctx *TaskContext, split InputSplit, emit Emitter) error {
			emit.Emit("k", []byte("x"))
			mu.Lock()
			attempts[split.ID]++
			first := attempts[split.ID] == 1
			mu.Unlock()
			if first {
				return errors.New("fail after emitting")
			}
			return nil
		},
		Reduce: func(ctx *TaskContext, key string, values [][]byte, emit Emitter) error {
			emit.Emit(key, []byte(strconv.Itoa(len(values))))
			return nil
		},
		NumReduce: 1,
	}
	res, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if got := outputMap(t, res)["k"]; got != "3" {
		t.Fatalf("k = %s, want 3 (failed attempts must not double-emit)", got)
	}
}

func TestTooManyFailures(t *testing.T) {
	c := NewCluster(dfs.New(1, 1), 2)
	c.DefaultMaxAttempts = 3
	c.InjectFailure = func(job string, taskID, attempt int, isMap bool) error {
		if isMap && taskID == 1 {
			return errors.New("always fails")
		}
		return nil
	}
	_, err := c.Run(wordCountJob([]string{"a", "b", "c"}, 1))
	if !errors.Is(err, ErrTooManyFailures) {
		t.Fatalf("err = %v", err)
	}
}

func TestPanicIsTaskFailure(t *testing.T) {
	c := NewCluster(dfs.New(1, 1), 1)
	first := true
	var mu sync.Mutex
	job := &Job{
		Name:   "panicky",
		Splits: ControlSplits(1),
		Map: func(ctx *TaskContext, split InputSplit, emit Emitter) error {
			mu.Lock()
			f := first
			first = false
			mu.Unlock()
			if f {
				panic("boom")
			}
			emit.Emit("ok", nil)
			return nil
		},
	}
	res, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0].Key != "ok" {
		t.Fatalf("output = %v", res.Output)
	}
	if res.TaskFailures != 1 {
		t.Fatalf("failures = %d", res.TaskFailures)
	}
}

func TestBadPartitioner(t *testing.T) {
	c := NewCluster(dfs.New(1, 1), 1)
	job := wordCountJob([]string{"a"}, 2)
	job.Partition = func(key string, n int) int { return n + 5 }
	if _, err := c.Run(job); err == nil {
		t.Fatal("out-of-range partitioner accepted")
	}
}

func TestCustomPartitioner(t *testing.T) {
	// The pipeline's jobs route key j to reducer j (Figure 5); verify that
	// identity partitioning works.
	c := NewCluster(dfs.New(2, 1), 2)
	var mu sync.Mutex
	seen := map[string]int{} // key -> reducer task id
	job := &Job{
		Name:   "identity-partition",
		Splits: ControlSplits(4),
		Map: func(ctx *TaskContext, split InputSplit, emit Emitter) error {
			emit.Emit(strconv.Itoa(split.ID), nil)
			return nil
		},
		Reduce: func(ctx *TaskContext, key string, values [][]byte, emit Emitter) error {
			mu.Lock()
			seen[key] = ctx.TaskID
			mu.Unlock()
			return nil
		},
		NumReduce: 4,
		Partition: func(key string, n int) int {
			v, _ := strconv.Atoi(key)
			return v % n
		},
	}
	if _, err := c.Run(job); err != nil {
		t.Fatal(err)
	}
	for k, r := range seen {
		v, _ := strconv.Atoi(k)
		if v != r {
			t.Fatalf("key %s handled by reducer %d", k, r)
		}
	}
}

func TestPipeline(t *testing.T) {
	fsim := dfs.New(2, 1)
	c := NewCluster(fsim, 2)
	j1 := &Job{
		Name:   "stage1",
		Splits: ControlSplits(2),
		Map: func(ctx *TaskContext, split InputSplit, emit Emitter) error {
			ctx.FS.Write(fmt.Sprintf("stage1/%d", split.ID), split.Data)
			return nil
		},
	}
	j2 := &Job{
		Name:   "stage2",
		Splits: ControlSplits(2),
		Map: func(ctx *TaskContext, split InputSplit, emit Emitter) error {
			data, err := ctx.FS.Read(fmt.Sprintf("stage1/%d", split.ID))
			if err != nil {
				return err
			}
			emit.Emit(string(data), nil)
			return nil
		},
	}
	results, err := c.Pipeline([]*Job{j1, j2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if len(results[1].Output) != 2 {
		t.Fatalf("stage2 output = %v", results[1].Output)
	}
	if c.JobsRun() != 2 {
		t.Fatalf("JobsRun = %d", c.JobsRun())
	}
}

func TestPipelineStopsOnError(t *testing.T) {
	c := NewCluster(dfs.New(1, 1), 1)
	c.DefaultMaxAttempts = 1
	bad := &Job{
		Name:   "bad",
		Splits: ControlSplits(1),
		Map: func(ctx *TaskContext, split InputSplit, emit Emitter) error {
			return errors.New("nope")
		},
	}
	never := &Job{
		Name:   "never",
		Splits: ControlSplits(1),
		Map: func(ctx *TaskContext, split InputSplit, emit Emitter) error {
			t.Error("job after failure must not run")
			return nil
		},
	}
	results, err := c.Pipeline([]*Job{bad, never})
	if err == nil {
		t.Fatal("pipeline error swallowed")
	}
	if len(results) != 0 {
		t.Fatalf("results = %d", len(results))
	}
}

func TestLaunchOverheadAccounted(t *testing.T) {
	c := NewCluster(dfs.New(1, 1), 1)
	c.LaunchOverhead = 30 * time.Second // accounted, not slept
	start := time.Now()
	res, err := c.Run(wordCountJob([]string{"a"}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("overhead was slept despite SleepOnLaunch=false")
	}
	if res.Elapsed < 30*time.Second {
		t.Fatalf("Elapsed = %v, want >= overhead", res.Elapsed)
	}
}

func TestControlSplits(t *testing.T) {
	splits := ControlSplits(3)
	if len(splits) != 3 {
		t.Fatalf("len = %d", len(splits))
	}
	for i, s := range splits {
		if s.ID != i || string(s.Data) != strconv.Itoa(i) {
			t.Fatalf("split %d = %+v", i, s)
		}
		if !strings.Contains(s.Path, "MapInput") {
			t.Fatalf("split path = %s", s.Path)
		}
	}
}

func TestDefaultPartitionerInRange(t *testing.T) {
	for i := 0; i < 1000; i++ {
		p := DefaultPartitioner(strconv.Itoa(i), 7)
		if p < 0 || p >= 7 {
			t.Fatalf("partition %d out of range", p)
		}
	}
}

func TestManyTasksFewSlots(t *testing.T) {
	// More tasks than slots exercises queueing.
	docs := make([]string, 50)
	for i := range docs {
		docs[i] = fmt.Sprintf("w%d common", i)
	}
	c := NewCluster(dfs.New(4, 2), 3)
	res, err := c.Run(wordCountJob(docs, 5))
	if err != nil {
		t.Fatal(err)
	}
	if got := outputMap(t, res)["common"]; got != "50" {
		t.Fatalf("common = %s", got)
	}
}

func TestZeroSplitJob(t *testing.T) {
	c := NewCluster(dfs.New(1, 1), 1)
	res, err := c.Run(&Job{Name: "empty", Map: func(ctx *TaskContext, split InputSplit, emit Emitter) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 0 {
		t.Fatalf("output = %v", res.Output)
	}
}
