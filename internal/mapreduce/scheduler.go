package mapreduce

import (
	"context"
	"sync"
	"time"

	"repro/internal/obs"
)

// SlotPool is the cluster-wide task scheduler: a shared pool of Slots
// execution tokens that every task attempt — map, reduce, and speculative
// backup — must hold while it runs. It is the piece Hadoop provides as the
// JobTracker/ResourceManager: a single arbiter over the cluster's m0 task
// slots, so that N concurrently submitted jobs share m0 slots instead of
// each conjuring its own m0 (which would break the paper's per-node
// accounting the moment the serving layer runs pipelines concurrently).
//
// Arbitration is fair-share: when a slot frees, it goes to the waiting job
// with the highest priority; among equal priorities, jobs are served
// round-robin, so two equal jobs each hold about half the cluster while
// both have demand. Two tenancy knobs bound a single tenant's reach:
//
//   - maxJobs caps how many jobs may hold slots at once (extra jobs queue
//     whole, FIFO within priority);
//   - quota caps how many slots one job may hold while other jobs are
//     waiting. The cap is work-conserving: a lone job may still use the
//     whole cluster.
//
// The pool also carries the scheduler's observability: a high-water mark
// of concurrently held slots (the invariant tests probe), grant counts,
// and per-acquire wait durations fed to the cluster's metrics registry.
type SlotPool struct {
	capacity int
	maxJobs  int
	quota    int
	met      *obs.Registry

	mu      sync.Mutex
	free    []int // FIFO queue of slot tokens
	jobs    []*SchedJob
	rr      int // index into jobs of the last job granted a slot
	inUse   int
	peak    int
	grants  int64
	waiting int
}

// NewSlotPool builds a pool of capacity slots. maxJobs <= 0 means no cap
// on concurrently admitted jobs; quota <= 0 means no per-job slot cap.
// met may be nil (no-op instruments).
func NewSlotPool(capacity, maxJobs, quota int, met *obs.Registry) *SlotPool {
	if capacity < 1 {
		capacity = 1
	}
	free := make([]int, capacity)
	for i := range free {
		free[i] = i
	}
	p := &SlotPool{capacity: capacity, maxJobs: maxJobs, quota: quota, met: met, free: free}
	p.met.Gauge("mapreduce.slots").Set(int64(capacity))
	return p
}

// SchedJob is one job's handle on the pool: the unit of fair-share
// arbitration. All task attempts of a job acquire through its handle.
type SchedJob struct {
	pool     *SlotPool
	name     string
	priority int
	admitted bool
	closed   bool
	held     int
	waiters  []*slotWaiter

	grants int64
	wait   time.Duration
}

// slotWaiter is one blocked Acquire. The channel has capacity 1 so
// dispatch never blocks while holding the pool lock; a grant of -1 means
// the job was closed under the waiter.
type slotWaiter struct {
	ch chan int
	at time.Time
}

// Register adds a job to the arbitration ring. Higher priority values win
// slots first. Under maxJobs, a job past the cap is registered but not
// admitted: its acquires queue until a running job closes.
func (p *SlotPool) Register(name string, priority int) *SchedJob {
	j := &SchedJob{pool: p, name: name, priority: priority}
	p.mu.Lock()
	j.admitted = p.maxJobs <= 0 || p.admittedCount() < p.maxJobs
	p.jobs = append(p.jobs, j)
	p.mu.Unlock()
	return j
}

func (p *SlotPool) admittedCount() int {
	n := 0
	for _, j := range p.jobs {
		if j.admitted {
			n++
		}
	}
	return n
}

// Acquire blocks until the job is granted a slot, the context is
// canceled, or stop closes. It returns the slot token (to be handed back
// via Release), the time spent waiting, and whether a slot was actually
// granted.
func (j *SchedJob) Acquire(ctx context.Context, stop <-chan struct{}) (slot int, wait time.Duration, ok bool) {
	p := j.pool
	w := &slotWaiter{ch: make(chan int, 1), at: time.Now()} //mrlint:allow determinism(time.Now) -- slot-wait accounting only; scheduling order is priority+round-robin, not time
	p.mu.Lock()
	if j.closed {
		p.mu.Unlock()
		return 0, 0, false
	}
	j.waiters = append(j.waiters, w)
	p.waiting++
	p.dispatch()
	p.mu.Unlock()

	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case s := <-w.ch:
		return j.granted(w, s)
	case <-stop:
	case <-done:
	}
	// Canceled: withdraw the waiter — unless dispatch already granted it,
	// in which case the slot must go straight back to the pool.
	p.mu.Lock()
	for i, q := range j.waiters {
		if q == w {
			j.waiters = append(j.waiters[:i], j.waiters[i+1:]...)
			p.waiting--
			p.mu.Unlock()
			return 0, 0, false
		}
	}
	p.mu.Unlock()
	if s := <-w.ch; s >= 0 {
		j.Release(s)
	}
	return 0, 0, false
}

// granted finalizes a successful grant: a -1 means the job was closed
// while the waiter was queued.
func (j *SchedJob) granted(w *slotWaiter, s int) (int, time.Duration, bool) {
	if s < 0 {
		return 0, 0, false
	}
	d := time.Since(w.at)
	p := j.pool
	p.mu.Lock()
	j.wait += d
	p.mu.Unlock()
	p.met.Histogram("mapreduce.slot_wait").Observe(d)
	return s, d, true
}

// Release returns a slot to the pool and hands it to the next waiter
// under the fair-share policy. Safe to call after Close: a straggler
// attempt outliving its job still gives its slot back.
func (j *SchedJob) Release(slot int) {
	p := j.pool
	p.mu.Lock()
	j.held--
	p.inUse--
	p.free = append(p.free, slot)
	p.dispatch()
	p.mu.Unlock()
}

// Close removes the job from arbitration, denies its pending waiters, and
// — under maxJobs — admits the next queued job. Idempotent.
func (j *SchedJob) Close() {
	p := j.pool
	p.mu.Lock()
	if j.closed {
		p.mu.Unlock()
		return
	}
	j.closed = true
	for _, w := range j.waiters {
		w.ch <- -1
		p.waiting--
	}
	j.waiters = nil
	for i, q := range p.jobs {
		if q == j {
			p.jobs = append(p.jobs[:i], p.jobs[i+1:]...)
			if p.rr >= i && p.rr > 0 {
				p.rr--
			}
			break
		}
	}
	if j.admitted && p.maxJobs > 0 {
		p.admitNext()
	}
	p.dispatch()
	p.mu.Unlock()
}

// admitNext promotes the highest-priority unadmitted job (registration
// order breaking ties). Caller holds p.mu.
func (p *SlotPool) admitNext() {
	if p.admittedCount() >= p.maxJobs {
		return
	}
	var best *SchedJob
	for _, j := range p.jobs {
		if !j.admitted && (best == nil || j.priority > best.priority) {
			best = j
		}
	}
	if best != nil {
		best.admitted = true
	}
}

// dispatch hands free slots to waiting jobs: highest priority first,
// round-robin within a priority class, per-job quota enforced only while
// another job is waiting. Caller holds p.mu.
func (p *SlotPool) dispatch() {
	for len(p.free) > 0 {
		j := p.pick()
		if j == nil {
			break
		}
		w := j.waiters[0]
		j.waiters = j.waiters[1:]
		p.waiting--
		s := p.free[0]
		p.free = p.free[1:]
		j.held++
		j.grants++
		p.inUse++
		p.grants++
		if p.inUse > p.peak {
			p.peak = p.inUse
		}
		w.ch <- s
	}
	p.met.Gauge("mapreduce.slots_in_use").Set(int64(p.inUse))
	p.met.Gauge("mapreduce.sched_queue_depth").Set(int64(p.waiting))
}

// pick selects the next job to grant to, or nil if no admitted job can
// take a slot. Caller holds p.mu.
func (p *SlotPool) pick() *SchedJob {
	eligible := func(j *SchedJob, enforceQuota bool) bool {
		if !j.admitted || len(j.waiters) == 0 {
			return false
		}
		if enforceQuota && p.quota > 0 && j.held >= p.quota {
			return false
		}
		return true
	}
	othersWaiting := 0
	for _, j := range p.jobs {
		if j.admitted && len(j.waiters) > 0 {
			othersWaiting++
		}
	}
	// The quota binds only under contention (othersWaiting > 1): a lone
	// job may use the whole cluster.
	for _, enforceQuota := range []bool{othersWaiting > 1, false} {
		maxPri, found := 0, false
		for _, j := range p.jobs {
			if eligible(j, enforceQuota) && (!found || j.priority > maxPri) {
				maxPri, found = j.priority, true
			}
		}
		if !found {
			continue
		}
		n := len(p.jobs)
		for k := 1; k <= n; k++ {
			j := p.jobs[(p.rr+k)%n]
			if eligible(j, enforceQuota) && j.priority == maxPri {
				for i, q := range p.jobs {
					if q == j {
						p.rr = i
						break
					}
				}
				return j
			}
		}
	}
	return nil
}

// SchedStats is a point-in-time snapshot of the pool for /statz and
// tests.
type SchedStats struct {
	Capacity   int   `json:"capacity"`
	InUse      int   `json:"in_use"`
	Peak       int   `json:"peak"`
	Grants     int64 `json:"grants"`
	QueueDepth int   `json:"queue_depth"`
	Jobs       int   `json:"jobs"`
}

// Stats snapshots the pool.
func (p *SlotPool) Stats() SchedStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return SchedStats{
		Capacity:   p.capacity,
		InUse:      p.inUse,
		Peak:       p.peak,
		Grants:     p.grants,
		QueueDepth: p.waiting,
		Jobs:       len(p.jobs),
	}
}

// ResetPeak clears the high-water mark (test probe).
func (p *SlotPool) ResetPeak() {
	p.mu.Lock()
	p.peak = p.inUse
	p.mu.Unlock()
}

// Grants returns how many slots this job has been granted.
func (j *SchedJob) Grants() int64 {
	j.pool.mu.Lock()
	defer j.pool.mu.Unlock()
	return j.grants
}

// WaitTotal returns the cumulative time this job's attempts spent waiting
// for slots.
func (j *SchedJob) WaitTotal() time.Duration {
	j.pool.mu.Lock()
	defer j.pool.mu.Unlock()
	return j.wait
}
