package mapreduce

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dfs"
)

// PreferReduce pins reduce tasks the way Prefer pins map tasks: on an
// idle cluster, delay scheduling grants every reduce task its preferred
// node, so reads of files placed there stay local.
func TestPreferReducePinsReduceTasks(t *testing.T) {
	const nodes = 8
	fs := dfs.New(nodes, 1)
	c := NewCluster(fs, nodes)
	var mu sync.Mutex
	ran := make(map[int]int)
	job := &Job{
		Name:      "pin-reduce",
		Splits:    ControlSplits(nodes),
		NumReduce: nodes,
		Partition: func(key string, n int) int {
			var v int
			fmt.Sscanf(key, "%d", &v)
			return v % n
		},
		Prefer:       func(task int) []int { return []int{task % nodes} },
		PreferReduce: func(task int) []int { return []int{task % nodes} },
		Map: func(ctx *TaskContext, split InputSplit, emit Emitter) error {
			emit.Emit(fmt.Sprintf("%d", split.ID), nil)
			return nil
		},
		Reduce: func(ctx *TaskContext, key string, values [][]byte, emit Emitter) error {
			var v int
			if _, err := fmt.Sscanf(key, "%d", &v); err != nil {
				return err
			}
			mu.Lock()
			ran[v] = ctx.Node
			mu.Unlock()
			return nil
		},
	}
	if _, err := c.Run(job); err != nil {
		t.Fatal(err)
	}
	if len(ran) != nodes {
		t.Fatalf("%d reduce keys ran, want %d", len(ran), nodes)
	}
	for task, node := range ran {
		if node != task%nodes {
			t.Errorf("reduce task %d ran on node %d, want %d", task, node, task%nodes)
		}
	}
}

// StrictLocality must hold every task for its preferred node even when
// there are far more tasks than workers and each task occupies its node
// long enough to burn the ordinary delay-scheduling budget — the
// property the shuffle-bytes gate's determinism rests on.
func TestStrictLocalityPinsUnderContention(t *testing.T) {
	const nodes = 4
	const tasks = 64
	fs := dfs.New(nodes, 1)
	c := NewCluster(fs, nodes)
	var mu sync.Mutex
	ran := make(map[int]int)
	_, err := c.Run(&Job{
		Name:           "strict-pin",
		Splits:         ControlSplits(tasks),
		Prefer:         func(task int) []int { return []int{task % nodes} },
		StrictLocality: true,
		Map: func(ctx *TaskContext, split InputSplit, emit Emitter) error {
			time.Sleep(time.Millisecond)
			mu.Lock()
			ran[split.ID] = ctx.Node
			mu.Unlock()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ran) != tasks {
		t.Fatalf("%d tasks ran, want %d", len(ran), tasks)
	}
	for task, node := range ran {
		if node != task%nodes {
			t.Errorf("strict task %d ran on node %d, want %d", task, node, task%nodes)
		}
	}
}

// A strict preference no worker can ever satisfy is waived rather than
// deadlocking the phase.
func TestStrictLocalityWaivesUnsatisfiable(t *testing.T) {
	const nodes = 4
	fs := dfs.New(nodes, 1)
	c := NewCluster(fs, nodes)
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, err = c.Run(&Job{
			Name:           "strict-waive",
			Splits:         ControlSplits(nodes),
			Prefer:         func(task int) []int { return []int{99} },
			StrictLocality: true,
			Map: func(ctx *TaskContext, split InputSplit, emit Emitter) error {
				return nil
			},
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("strict job with unsatisfiable preference deadlocked")
	}
	if err != nil {
		t.Fatal(err)
	}
}

// JobResult carries the per-job DFS byte accounting: the deltas over the
// job must match the file system's own counters when the job is the only
// traffic source.
func TestJobResultByteAccounting(t *testing.T) {
	const nodes = 4
	fs := dfs.New(nodes, 2)
	c := NewCluster(fs, nodes)
	payload := make([]byte, 5000)
	before := fs.Stats()
	jr, err := c.Run(&Job{
		Name:   "bytes",
		Splits: ControlSplits(nodes),
		Map: func(ctx *TaskContext, split InputSplit, emit Emitter) error {
			fs.Write(fmt.Sprintf("out/%d", split.ID), payload)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	after := fs.Stats()
	if jr.BytesWritten != after.BytesWritten-before.BytesWritten {
		t.Errorf("BytesWritten = %d, FS delta %d", jr.BytesWritten, after.BytesWritten-before.BytesWritten)
	}
	if jr.TransferredBytes != after.BytesTransferred-before.BytesTransferred {
		t.Errorf("TransferredBytes = %d, FS delta %d", jr.TransferredBytes, after.BytesTransferred-before.BytesTransferred)
	}
	// Replication 2 pipelines one extra copy per write.
	if want := int64(nodes * len(payload)); jr.TransferredBytes != want {
		t.Errorf("TransferredBytes = %d, want %d", jr.TransferredBytes, want)
	}
	if jr.BytesWritten != int64(nodes*len(payload)) {
		t.Errorf("BytesWritten = %d", jr.BytesWritten)
	}
}

// stubFaults is a minimal FaultPlane with a fixed set of dead nodes.
type stubFaults struct{ dead map[int]bool }

func (s stubFaults) NodeAlive(node int) bool                          { return !s.dead[node] }
func (s stubFaults) NodeEpoch(node int) int64                         { return 0 }
func (s stubFaults) FetchError(job string, task, node, try int) error { return nil }
func (s stubFaults) AttemptStart(job string, task, attempt, node int, isMap bool) (time.Duration, error) {
	return 0, nil
}

func TestStrictSatisfiable(t *testing.T) {
	c := NewCluster(dfs.New(4, 1), 4)
	if !c.strictSatisfiable([]int{2}) {
		t.Fatal("live in-range node reported unsatisfiable")
	}
	if c.strictSatisfiable([]int{-1, 9}) {
		t.Fatal("out-of-range nodes reported satisfiable")
	}
	c.Faults = stubFaults{dead: map[int]bool{2: true}}
	if c.strictSatisfiable([]int{2}) {
		t.Fatal("dead node reported satisfiable")
	}
	if !c.strictSatisfiable([]int{2, 3}) {
		t.Fatal("live fallback node not found")
	}
	// Fewer slots than datanodes: nodes beyond the worker range can never
	// run a task, so preferring them must be waived.
	few := NewCluster(dfs.New(8, 1), 2)
	if few.strictSatisfiable([]int{5}) {
		t.Fatal("node outside the worker range reported satisfiable")
	}
	if !few.strictSatisfiable([]int{1}) {
		t.Fatal("in-range node reported unsatisfiable")
	}
}
