package mapreduce

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dfs"
)

func TestRunCtxPreCanceled(t *testing.T) {
	fs := dfs.New(2, 1)
	c := NewCluster(fs, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	_, err := c.RunCtx(ctx, &Job{
		Name:   "pre-canceled",
		Splits: ControlSplits(2),
		Map: func(tc *TaskContext, s InputSplit, e Emitter) error {
			ran.Add(1)
			return nil
		},
	})
	if !errors.Is(err, ErrJobCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrJobCanceled wrapping context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d map tasks ran on a pre-canceled job", ran.Load())
	}
}

func TestRunCtxCancelMidJob(t *testing.T) {
	fs := dfs.New(2, 1)
	c := NewCluster(fs, 1) // one slot: tasks strictly sequential
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	_, err := c.RunCtx(ctx, &Job{
		Name:   "cancel-mid",
		Splits: ControlSplits(16),
		Map: func(tc *TaskContext, s InputSplit, e Emitter) error {
			if ran.Add(1) == 1 {
				cancel() // cancel while the phase still has 15 tasks queued
			}
			time.Sleep(time.Millisecond)
			return nil
		},
	})
	if !errors.Is(err, ErrJobCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrJobCanceled wrapping context.Canceled", err)
	}
	// Cooperative cancel: the running attempt finishes, queued ones do not.
	if got := ran.Load(); got >= 16 {
		t.Fatalf("all %d tasks ran despite cancellation", got)
	}
}

func TestRunCtxDeadlineBetweenPhases(t *testing.T) {
	fs := dfs.New(2, 1)
	c := NewCluster(fs, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var reduced atomic.Int64
	_, err := c.RunCtx(ctx, &Job{
		Name:      "cancel-at-shuffle",
		Splits:    ControlSplits(2),
		NumReduce: 2,
		Map: func(tc *TaskContext, s InputSplit, e Emitter) error {
			e.Emit("k", []byte("v"))
			if tc.TaskID == 0 {
				cancel()
			}
			return nil
		},
		Reduce: func(tc *TaskContext, key string, vs [][]byte, e Emitter) error {
			reduced.Add(1)
			return nil
		},
	})
	if !errors.Is(err, ErrJobCanceled) {
		t.Fatalf("err = %v, want ErrJobCanceled", err)
	}
	if reduced.Load() != 0 {
		t.Fatal("reduce phase ran after cancellation during map")
	}
}

func TestRunBackgroundUnaffected(t *testing.T) {
	// Run (no ctx) must behave exactly as before the RunCtx refactor.
	fs := dfs.New(2, 1)
	c := NewCluster(fs, 2)
	res, err := c.Run(&Job{
		Name:   "plain",
		Splits: ControlSplits(4),
		Map: func(tc *TaskContext, s InputSplit, e Emitter) error {
			e.Emit(s.Path, nil)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MapTasks != 4 || len(res.Output) != 4 {
		t.Fatalf("map tasks %d, output %d", res.MapTasks, len(res.Output))
	}
}
