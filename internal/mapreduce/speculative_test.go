package mapreduce

import (
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/dfs"
)

func TestCountersAggregated(t *testing.T) {
	c := NewCluster(dfs.New(2, 1), 2)
	job := &Job{
		Name:   "counted",
		Splits: ControlSplits(4),
		Map: func(ctx *TaskContext, split InputSplit, emit Emitter) error {
			ctx.IncrCounter("records", 10)
			ctx.IncrCounter("bytes", int64(split.ID))
			emit.Emit("k", split.Data)
			return nil
		},
		Reduce: func(ctx *TaskContext, key string, values [][]byte, emit Emitter) error {
			ctx.IncrCounter("groups", 1)
			return nil
		},
		NumReduce: 2,
	}
	res, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters["records"] != 40 {
		t.Fatalf("records = %d", res.Counters["records"])
	}
	if res.Counters["bytes"] != 0+1+2+3 {
		t.Fatalf("bytes = %d", res.Counters["bytes"])
	}
	if res.Counters["groups"] != 1 {
		t.Fatalf("groups = %d", res.Counters["groups"])
	}
}

func TestCountersFromFailedAttemptsDiscarded(t *testing.T) {
	c := NewCluster(dfs.New(1, 1), 1)
	var mu sync.Mutex
	attempts := map[int]int{}
	job := &Job{
		Name:   "retry-counted",
		Splits: ControlSplits(3),
		Map: func(ctx *TaskContext, split InputSplit, emit Emitter) error {
			ctx.IncrCounter("work", 1)
			mu.Lock()
			attempts[split.ID]++
			first := attempts[split.ID] == 1
			mu.Unlock()
			if first {
				return errTest
			}
			return nil
		},
	}
	res, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	// Each of the 3 tasks succeeded exactly once; the failed attempts'
	// counters must not leak in.
	if res.Counters["work"] != 3 {
		t.Fatalf("work = %d, want 3", res.Counters["work"])
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test failure" }

func TestSpeculativeExecutionRescuesStraggler(t *testing.T) {
	c := NewCluster(dfs.New(4, 1), 4)
	c.Speculative = true
	c.SpeculativeSlack = 20 * time.Millisecond
	c.SpeculativeRatio = 2

	var mu sync.Mutex
	launches := map[int]int{}
	job := &Job{
		Name:   "straggler",
		Splits: ControlSplits(6),
		Map: func(ctx *TaskContext, split InputSplit, emit Emitter) error {
			mu.Lock()
			launches[split.ID]++
			n := launches[split.ID]
			mu.Unlock()
			// Task 0's first attempt hangs far beyond the others; its
			// speculative copy is fast.
			if split.ID == 0 && n == 1 {
				time.Sleep(2 * time.Second)
			} else {
				time.Sleep(2 * time.Millisecond)
			}
			emit.Emit(strconv.Itoa(split.ID), nil)
			return nil
		},
	}
	start := time.Now()
	res, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 1500*time.Millisecond {
		t.Fatalf("speculation did not rescue the straggler (took %v)", time.Since(start))
	}
	if res.SpeculativeTasks == 0 {
		t.Fatal("no speculative task recorded")
	}
	if len(res.Output) != 6 {
		t.Fatalf("output = %d keys", len(res.Output))
	}
	// Exactly one speculative duplicate for task 0.
	mu.Lock()
	defer mu.Unlock()
	if launches[0] < 2 {
		t.Fatalf("straggler launched %d times", launches[0])
	}
}

func TestSpeculativeLoserOutputDiscarded(t *testing.T) {
	// Both attempts of the straggler eventually finish; the job output
	// must contain the key exactly once and counters must count one
	// attempt only.
	c := NewCluster(dfs.New(2, 1), 2)
	c.Speculative = true
	c.SpeculativeSlack = 10 * time.Millisecond
	c.SpeculativeRatio = 2

	var mu sync.Mutex
	launches := 0
	job := &Job{
		Name:   "dup",
		Splits: ControlSplits(2),
		Map: func(ctx *TaskContext, split InputSplit, emit Emitter) error {
			ctx.IncrCounter("attempts-finished", 1)
			if split.ID == 0 {
				mu.Lock()
				launches++
				mu.Unlock()
				time.Sleep(80 * time.Millisecond)
			}
			emit.Emit(strconv.Itoa(split.ID), nil)
			return nil
		},
		Reduce: func(ctx *TaskContext, key string, values [][]byte, emit Emitter) error {
			emit.Emit(key, []byte(strconv.Itoa(len(values))))
			return nil
		},
		NumReduce: 1,
	}
	res, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	for _, kv := range res.Output {
		if string(kv.Value) != "1" {
			t.Fatalf("key %s emitted %s times — duplicate output leaked", kv.Key, kv.Value)
		}
	}
}

func TestSpeculationOffByDefault(t *testing.T) {
	c := NewCluster(dfs.New(2, 1), 2)
	job := &Job{
		Name:   "slow-but-fine",
		Splits: ControlSplits(3),
		Map: func(ctx *TaskContext, split InputSplit, emit Emitter) error {
			if split.ID == 0 {
				time.Sleep(30 * time.Millisecond)
			}
			return nil
		},
	}
	res, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpeculativeTasks != 0 {
		t.Fatalf("speculation ran while disabled: %d", res.SpeculativeTasks)
	}
}
