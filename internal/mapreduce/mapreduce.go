// Package mapreduce is a from-scratch MapReduce engine reproducing the
// execution contract the HPDC 2014 paper relies on from Hadoop:
//
//   - a job is a set of independent map tasks over input splits, a shuffle
//     that groups emitted (key, value) pairs by key, and a set of
//     independent reduce tasks;
//   - tasks communicate only through their inputs and outputs (here: the
//     simulated distributed file system and the shuffled pairs);
//   - failed task attempts are re-executed (fault tolerance), and only a
//     successful attempt's output is visible;
//   - jobs are chained into pipelines, each launch paying a fixed
//     scheduling overhead — the constant the paper's nb tuning balances
//     against master-node decomposition time (Section 5).
//
// Tasks execute on a pool of simulated cluster nodes backed by goroutines.
// The engine is deterministic for deterministic task functions: shuffle
// output is sorted by key and, within a key, by map task order.
package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/dfs"
	"repro/internal/obs"
)

// ErrTooManyFailures is returned when a task exhausts its attempts.
var ErrTooManyFailures = errors.New("mapreduce: task failed too many times")

// ErrJobCanceled is returned by RunCtx when the job's context is canceled
// or its deadline expires before the job completes. The underlying
// context error (context.Canceled or context.DeadlineExceeded) is wrapped
// alongside it, so errors.Is matches either.
var ErrJobCanceled = errors.New("mapreduce: job canceled")

// ErrNodeLost marks a task attempt whose simulated node died (or died and
// restarted — either way the attempt's output is gone) before the attempt
// finished. Such attempts are charged as ordinary task failures and
// re-executed elsewhere, the Hadoop TaskTracker-lost semantics.
var ErrNodeLost = errors.New("mapreduce: node lost during attempt")

// FaultPlane is the engine's view of a fault injector (internal/chaos
// provides the real one). All methods must be safe for concurrent use.
//
// The engine consults it at three points:
//
//   - workers skip dead nodes (NodeAlive) instead of launching attempts
//     there, the way a JobTracker stops granting slots on a lost tracker;
//   - every task attempt calls AttemptStart when it begins — the injector
//     may delay the attempt (straggler injection) or fail it outright
//     (crash injection) — and on completion the attempt is failed with
//     ErrNodeLost if its node's epoch changed while it ran;
//   - before the shuffle consumes a map output, FetchError simulates the
//     reducer's HTTP fetch of that output from the node that produced it;
//     errors are retried with bounded backoff and a node that stays
//     unreachable loses the output, forcing map re-execution.
type FaultPlane interface {
	// NodeAlive reports whether the node is currently up.
	NodeAlive(node int) bool
	// NodeEpoch returns the node's incarnation number; it changes every
	// time the node is killed, so an attempt that spans a change knows its
	// output died with the old incarnation.
	NodeEpoch(node int) int64
	// AttemptStart is called as a task attempt begins executing on node.
	// It returns an artificial execution delay (straggler injection) and,
	// when non-nil, an error that fails the attempt immediately.
	AttemptStart(job string, task, attempt, node int, isMap bool) (time.Duration, error)
	// FetchError simulates one shuffle fetch of task's map output from
	// node; try counts retries of the same fetch (0 = first). A non-nil
	// error makes the engine back off and retry, up to maxFetchTries.
	FetchError(job string, task, node, try int) error
}

// KV is one key/value pair flowing through the shuffle.
type KV struct {
	Key   string
	Value []byte
}

// Emitter collects pairs from map and reduce functions.
type Emitter interface {
	Emit(key string, value []byte)
}

// InputSplit is the unit of map-task input. The paper's jobs use one tiny
// control file per mapper containing the worker index (Section 5.1); Data
// carries such inline payloads and Path optionally points into the DFS.
type InputSplit struct {
	ID   int
	Path string
	Data []byte
}

// TaskContext is passed to every map and reduce invocation.
type TaskContext struct {
	JobName string
	TaskID  int
	Attempt int
	// Node is the simulated cluster node executing this attempt; tasks
	// use it for locality-aware DFS reads.
	Node int
	// FS is the shared distributed file system.
	FS *dfs.FS
	// Config carries job-level parameters.
	Config map[string]string

	// counters accumulates this attempt's Hadoop-style counters; they are
	// folded into the job's totals only if the attempt succeeds.
	counters map[string]int64
}

// IncrCounter adds delta to a named job counter (Hadoop's
// Reporter.incrCounter). Counters from failed or superseded attempts are
// discarded, matching Hadoop's successful-attempt accounting.
func (ctx *TaskContext) IncrCounter(name string, delta int64) {
	if ctx.counters == nil {
		ctx.counters = map[string]int64{}
	}
	ctx.counters[name] += delta
}

// MapFunc processes one input split.
type MapFunc func(ctx *TaskContext, split InputSplit, emit Emitter) error

// ReduceFunc processes one key group.
type ReduceFunc func(ctx *TaskContext, key string, values [][]byte, emit Emitter) error

// Partitioner maps a key to a reduce task index.
type Partitioner func(key string, numReduce int) int

// DefaultPartitioner hashes the key (FNV-1a), Hadoop's default behaviour.
func DefaultPartitioner(key string, numReduce int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32()) % numReduce
}

// CombineFunc merges the values of one key on the map side before the
// shuffle (Hadoop's combiner). It must be associative and commutative.
type CombineFunc func(key string, values [][]byte) []byte

// Job describes one MapReduce job.
type Job struct {
	Name      string
	Splits    []InputSplit
	Map       MapFunc
	Reduce    ReduceFunc // nil means a map-only job (like the partition job)
	NumReduce int
	// Combine, when non-nil, collapses each map task's output per key
	// before the shuffle, cutting ShuffledKVs (the classic wordcount
	// optimization).
	Combine    CombineFunc
	Partition  Partitioner // nil selects DefaultPartitioner
	Config     map[string]string
	MaxAttempt int // per-task attempt budget; 0 selects the cluster default
	// Prefer, when non-nil, lists the datanodes holding map task i's
	// input. The scheduler practices delay scheduling: a worker on a
	// non-preferred node defers such a task (a bounded number of times)
	// so a local worker can pick it up, reproducing Hadoop's data-local
	// task placement.
	Prefer func(task int) []int
	// PreferReduce, when non-nil, lists the datanodes that should run
	// reduce task r — the reduce-side counterpart of Prefer. The
	// multi-round multiply strategies pin reducers to the nodes holding
	// their favored-placement input pieces so reads stay local; the same
	// delay-scheduling budget applies, and a dead preferred node simply
	// falls back to any worker.
	PreferReduce func(task int) []int
	// StrictLocality removes the bounded delay-scheduling budget: a task
	// with a preference waits for a preferred worker indefinitely instead
	// of spilling to whichever node's budget expires first. A preference
	// is waived only when no live worker can ever satisfy it (every
	// preferred node dead or outside the worker range), so strict jobs
	// degrade like budget expiry rather than deadlocking. The multiply
	// strategies set this to make their DFS transfer accounting
	// deterministic — the shuffle-bytes CI gate depends on it.
	StrictLocality bool
	// Priority is the job's fair-share scheduling priority: when slots
	// are contended, higher-priority jobs are granted slots first, and
	// equal priorities share round-robin. Zero is the default class.
	Priority int
	// TraceParent, when non-nil, parents this job's trace span under an
	// enclosing span (the pipeline span). When nil, the cluster's Tracer
	// (if any) records the job as a root span.
	TraceParent *obs.Span
}

// JobResult reports one executed job.
type JobResult struct {
	Job          string
	Output       []KV // reduce output (or map output for map-only jobs), sorted
	MapTasks     int
	ReduceTasks  int
	TaskFailures int
	// SpeculativeTasks counts backup attempts launched for stragglers.
	SpeculativeTasks int
	// LostMapOutputs counts completed map outputs that became unreadable
	// (their node died) and forced the map task to re-execute.
	LostMapOutputs int
	// FetchRetries counts shuffle-fetch retries caused by transient fetch
	// errors or dying nodes.
	FetchRetries int
	ShuffledKVs  int
	// BytesRead, BytesWritten and TransferredBytes are the cluster DFS's
	// byte-counter deltas over this job's run — the per-job shuffle-bytes
	// accounting the transfer gate and the multiply strategy comparison
	// are built from. On a cluster running concurrent jobs the deltas are
	// wall-clock attributed (bytes moved by overlapping jobs land in
	// whichever job's window they occur), exactly like per-job HDFS
	// counters scraped from a shared namenode.
	BytesRead        int64
	BytesWritten     int64
	TransferredBytes int64
	// Counters aggregates TaskContext.IncrCounter values from successful
	// attempts.
	Counters map[string]int64
	Elapsed  time.Duration
	// SlotWait is the cumulative time this job's task attempts spent
	// waiting for a cluster slot — the queueing cost of sharing the
	// cluster with concurrent jobs (zero on an idle cluster).
	SlotWait time.Duration
	// SlotGrants counts the slots granted to this job's attempts.
	SlotGrants int64
}

// FailureInjector decides whether a given task attempt should fail
// artificially; used by tests and the Section 7.4 failure-recovery
// experiment. isMap distinguishes map from reduce attempts.
type FailureInjector func(job string, taskID, attempt int, isMap bool) error

// Cluster executes jobs on a fixed pool of simulated nodes.
type Cluster struct {
	FS *dfs.FS
	// Slots is the number of task slots executing concurrently — the
	// paper's m0 compute nodes.
	Slots int
	// LaunchOverhead is charged (as recorded time, and optionally slept)
	// once per job, reproducing Hadoop's constant job-launch latency.
	LaunchOverhead time.Duration
	// SleepOnLaunch makes LaunchOverhead real wall-clock time; tests leave
	// it false so overhead is only accounted, not suffered.
	SleepOnLaunch bool
	// DefaultMaxAttempts bounds task retries (Hadoop's
	// mapred.map.max.attempts, default 4).
	DefaultMaxAttempts int
	// InjectFailure, when non-nil, is consulted before each task attempt.
	InjectFailure FailureInjector
	// Faults, when non-nil, injects node-level failures (crashes,
	// restarts, stragglers, shuffle-fetch errors); see FaultPlane.
	Faults FaultPlane
	// Speculative enables Hadoop-style speculative execution: when idle
	// slots exist, a backup attempt is launched for any task that has run
	// longer than SpeculativeSlack and longer than SpeculativeRatio times
	// the median completed-task time. The first attempt to finish wins;
	// the loser's output and counters are discarded.
	Speculative      bool
	SpeculativeSlack time.Duration
	SpeculativeRatio float64
	// Tracer, when non-nil, records one span per job, per map/reduce
	// phase, and per task attempt (on the executing node's track). All
	// instrumented paths are no-ops when it is nil.
	Tracer *obs.Tracer
	// Metrics, when non-nil, accumulates engine counters and task/job
	// latency histograms.
	Metrics *obs.Registry
	// MaxConcurrentJobs, when > 0, caps how many jobs may hold task
	// slots at once; excess jobs queue whole (highest priority first).
	// Set before the first Run, like Slots.
	MaxConcurrentJobs int
	// SlotQuota, when > 0, caps how many slots one job may hold while
	// other jobs are waiting (work-conserving: a lone job still uses the
	// whole cluster). Set before the first Run.
	SlotQuota int

	mu       sync.Mutex
	jobsRun  int
	failures int

	schedOnce sync.Once
	sched     *SlotPool
}

// NewCluster builds a cluster with the given slot count over fs.
func NewCluster(fs *dfs.FS, slots int) *Cluster {
	if slots < 1 {
		slots = 1
	}
	return &Cluster{FS: fs, Slots: slots, DefaultMaxAttempts: 4}
}

// JobsRun returns how many jobs the cluster has executed.
func (c *Cluster) JobsRun() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.jobsRun
}

// TaskFailures returns the cumulative number of failed task attempts.
func (c *Cluster) TaskFailures() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failures
}

// Scheduler returns the cluster's shared slot pool, creating it on first
// use from the cluster's Slots, MaxConcurrentJobs, SlotQuota, and Metrics
// (all of which must therefore be configured before the first job runs).
// Every task attempt of every job executes while holding one of its
// slots, so concurrently running jobs share the same m0 — the Hadoop
// JobTracker contract the serving layer depends on.
func (c *Cluster) Scheduler() *SlotPool {
	c.schedOnce.Do(func() {
		c.sched = NewSlotPool(c.Slots, c.MaxConcurrentJobs, c.SlotQuota, c.Metrics)
	})
	return c.sched
}

// emitBuffer is a private Emitter accumulating pairs in order.
type emitBuffer struct {
	kvs []KV
}

func (b *emitBuffer) Emit(key string, value []byte) {
	v := append([]byte(nil), value...)
	b.kvs = append(b.kvs, KV{Key: key, Value: v})
}

// jobSpan opens the trace span for one job: a child of the job's
// TraceParent when set, otherwise a root span on the cluster tracer.
// Returns nil (a no-op span) when neither is configured.
func (c *Cluster) jobSpan(job *Job) *obs.Span {
	if job.TraceParent != nil {
		//mrlint:allow obsnames -- the job name is the span's identity; cardinality is the pipeline's fixed job set
		return job.TraceParent.Child(job.Name, obs.KindJob)
	}
	//mrlint:allow obsnames -- the job name is the span's identity; cardinality is the pipeline's fixed job set
	return c.Tracer.StartSpan(job.Name, obs.KindJob)
}

// Run executes the job to completion and returns its result.
func (c *Cluster) Run(job *Job) (*JobResult, error) {
	return c.RunCtx(context.Background(), job)
}

// cancelErr wraps a context error so callers can match either the engine's
// ErrJobCanceled or the underlying context sentinel.
func cancelErr(jobName string, cause error) error {
	return fmt.Errorf("mapreduce: job %s: %w (%w)", jobName, ErrJobCanceled, cause)
}

// RunCtx executes the job to completion unless ctx is canceled first.
// Cancellation is cooperative, in the Hadoop kill-job style: it is
// observed before the job starts, between the map, shuffle, and reduce
// phases, and between task launches inside a phase — a task attempt that
// has already started runs to completion (its output is simply discarded),
// exactly like a task JVM that has not yet processed its kill signal.
func (c *Cluster) RunCtx(ctx context.Context, job *Job) (*JobResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, cancelErr(job.Name, err)
	}
	//mrlint:allow determinism(time.Now) -- job wall time feeds JobResult timings and spans; task outputs are clock-free
	start := time.Now()
	jobSpan := c.jobSpan(job)
	var fsBefore dfs.Stats
	if c.FS != nil {
		fsBefore = c.FS.Stats()
	}
	if c.SleepOnLaunch && c.LaunchOverhead > 0 {
		time.Sleep(c.LaunchOverhead)
	}
	maxAttempts := job.MaxAttempt
	if maxAttempts <= 0 {
		maxAttempts = c.DefaultMaxAttempts
	}
	if maxAttempts <= 0 {
		maxAttempts = 1
	}
	part := job.Partition
	if part == nil {
		part = DefaultPartitioner
	}
	sj := c.Scheduler().Register(job.Name, job.Priority)
	defer sj.Close()

	// ---- Map phase ----
	// mapAttempt is shared by the initial map phase and any lost-output
	// recovery waves, so a re-executed map runs exactly the original code.
	mapAttempt := func(i, attempt, node int) (any, map[string]int64, error) {
		if c.InjectFailure != nil {
			if ferr := c.InjectFailure(job.Name, i, attempt, true); ferr != nil {
				return nil, nil, ferr
			}
		}
		tctx := &TaskContext{JobName: job.Name, TaskID: i, Attempt: attempt, Node: node, FS: c.FS, Config: job.Config}
		buf := &emitBuffer{}
		if err := job.Map(tctx, job.Splits[i], buf); err != nil {
			return nil, nil, err
		}
		kvs := buf.kvs
		if job.Combine != nil {
			kvs = combineLocal(kvs, job.Combine)
		}
		return kvs, tctx.counters, nil
	}
	mapSpan := jobSpan.Child("map", obs.KindPhase)
	mapPhase, err := c.runPhaseLocal(ctx, sj, len(job.Splits), maxAttempts, job.Prefer, job.StrictLocality, mapSpan, "map", mapAttempt)
	mapSpan.Finish()
	if err != nil {
		jobSpan.SetLabel("error", err.Error())
		jobSpan.Finish()
		return nil, fmt.Errorf("mapreduce: job %s map phase: %w", job.Name, err)
	}
	var lostOutputs, fetchRetries int
	if job.Reduce != nil && job.NumReduce > 0 && c.Faults != nil {
		lostOutputs, fetchRetries, err = c.recoverMapOutputs(ctx, sj, job, maxAttempts, mapAttempt, mapPhase, jobSpan)
		if err != nil {
			jobSpan.SetLabel("error", err.Error())
			jobSpan.Finish()
			return nil, fmt.Errorf("mapreduce: job %s map recovery: %w", job.Name, err)
		}
	}
	mapOutputs := make([][]KV, len(job.Splits))
	for i, r := range mapPhase.results {
		if r != nil {
			mapOutputs[i] = r.([]KV)
		}
	}
	totalFailures := mapPhase.failures

	res := &JobResult{
		Job:              job.Name,
		MapTasks:         len(job.Splits),
		Counters:         mapPhase.counters,
		SpeculativeTasks: mapPhase.speculative,
		LostMapOutputs:   lostOutputs,
		FetchRetries:     fetchRetries,
	}

	if job.Reduce == nil || job.NumReduce <= 0 {
		// Map-only job: output is the concatenated, sorted map output.
		var out []KV
		for _, kvs := range mapOutputs {
			out = append(out, kvs...)
		}
		sortKVs(out)
		res.Output = out
		res.TaskFailures = totalFailures
		res.Elapsed = time.Since(start) + c.LaunchOverhead
		res.SlotWait = sj.WaitTotal()
		res.SlotGrants = sj.Grants()
		c.finishJob(totalFailures)
		c.finishJobObs(jobSpan, res, fsBefore)
		return res, nil
	}

	// ---- Shuffle ----
	if cerr := ctx.Err(); cerr != nil {
		err = cancelErr(job.Name, cerr)
		jobSpan.SetLabel("error", err.Error())
		jobSpan.Finish()
		return nil, err
	}
	// Partition map output; within each partition group values by key.
	// Iterating map tasks in index order keeps grouped values in a
	// deterministic order independent of scheduling.
	shuffleSpan := jobSpan.Child("shuffle", obs.KindPhase)
	buckets := make([]map[string][][]byte, job.NumReduce)
	for i := range buckets {
		buckets[i] = make(map[string][][]byte)
	}
	shuffled := 0
	for _, kvs := range mapOutputs {
		for _, kv := range kvs {
			p := part(kv.Key, job.NumReduce)
			if p < 0 || p >= job.NumReduce {
				return nil, fmt.Errorf("mapreduce: job %s: partitioner returned %d for %d reducers", job.Name, p, job.NumReduce)
			}
			buckets[p][kv.Key] = append(buckets[p][kv.Key], kv.Value)
			shuffled++
		}
	}
	res.ShuffledKVs = shuffled
	shuffleSpan.SetAttr("shuffled_kvs", int64(shuffled))
	shuffleSpan.Finish()

	// ---- Reduce phase ----
	redSpan := jobSpan.Child("reduce", obs.KindPhase)
	redPhase, err := c.runPhaseLocal(ctx, sj, job.NumReduce, maxAttempts, job.PreferReduce, job.StrictLocality, redSpan, "reduce", func(r, attempt, node int) (any, map[string]int64, error) {
		if c.InjectFailure != nil {
			if ferr := c.InjectFailure(job.Name, r, attempt, false); ferr != nil {
				return nil, nil, ferr
			}
		}
		ctx := &TaskContext{JobName: job.Name, TaskID: r, Attempt: attempt, Node: node, FS: c.FS, Config: job.Config}
		keys := make([]string, 0, len(buckets[r]))
		for k := range buckets[r] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		buf := &emitBuffer{}
		for _, k := range keys {
			if err := job.Reduce(ctx, k, buckets[r][k], buf); err != nil {
				return nil, nil, err
			}
		}
		return buf.kvs, ctx.counters, nil
	})
	redSpan.Finish()
	if err != nil {
		jobSpan.SetLabel("error", err.Error())
		jobSpan.Finish()
		return nil, fmt.Errorf("mapreduce: job %s reduce phase: %w", job.Name, err)
	}
	totalFailures += redPhase.failures
	res.SpeculativeTasks += redPhase.speculative
	for k, v := range redPhase.counters {
		res.Counters[k] += v
	}

	var out []KV
	for _, r := range redPhase.results {
		if r != nil {
			out = append(out, r.([]KV)...)
		}
	}
	sortKVs(out)
	res.Output = out
	res.ReduceTasks = job.NumReduce
	res.TaskFailures = totalFailures
	res.Elapsed = time.Since(start) + c.LaunchOverhead
	res.SlotWait = sj.WaitTotal()
	res.SlotGrants = sj.Grants()
	c.finishJob(totalFailures)
	c.finishJobObs(jobSpan, res, fsBefore)
	return res, nil
}

func (c *Cluster) finishJob(failures int) {
	c.mu.Lock()
	c.jobsRun++
	c.failures += failures
	c.mu.Unlock()
}

// finishJobObs closes the job span with the run's summary attributes —
// including the job's DFS byte deltas, so every trace carries the byte
// attribution the paper's tables are built from — and feeds the metrics
// registry.
func (c *Cluster) finishJobObs(jobSpan *obs.Span, res *JobResult, fsBefore dfs.Stats) {
	if c.FS != nil {
		after := c.FS.Stats()
		res.BytesRead = after.BytesRead - fsBefore.BytesRead
		res.BytesWritten = after.BytesWritten - fsBefore.BytesWritten
		res.TransferredBytes = after.BytesTransferred - fsBefore.BytesTransferred
	}
	if jobSpan != nil {
		jobSpan.SetAttr("map_tasks", int64(res.MapTasks))
		jobSpan.SetAttr("reduce_tasks", int64(res.ReduceTasks))
		jobSpan.SetAttr("task.failures", int64(res.TaskFailures))
		jobSpan.SetAttr("task.speculative", int64(res.SpeculativeTasks))
		if res.LostMapOutputs > 0 {
			jobSpan.SetAttr("task.lost_map_outputs", int64(res.LostMapOutputs))
		}
		if res.FetchRetries > 0 {
			jobSpan.SetAttr("task.fetch_retries", int64(res.FetchRetries))
		}
		jobSpan.SetAttr("shuffled_kvs", int64(res.ShuffledKVs))
		jobSpan.SetAttr("launch_overhead_us", c.LaunchOverhead.Microseconds())
		jobSpan.SetAttr("slot_wait_us", res.SlotWait.Microseconds())
		jobSpan.SetAttr("slot_grants", res.SlotGrants)
		if c.FS != nil {
			jobSpan.SetAttr("dfs.bytes_read", res.BytesRead)
			jobSpan.SetAttr("dfs.bytes_written", res.BytesWritten)
			jobSpan.SetAttr("dfs.bytes_transferred", res.TransferredBytes)
			jobSpan.SetAttr("dfs.files_created", c.FS.Stats().FilesCreated-fsBefore.FilesCreated)
		}
		jobSpan.Finish()
	}
	if c.Metrics != nil {
		c.Metrics.Counter("mapreduce.jobs").Add(1)
		c.Metrics.Counter("mapreduce.map_tasks").Add(int64(res.MapTasks))
		c.Metrics.Counter("mapreduce.reduce_tasks").Add(int64(res.ReduceTasks))
		c.Metrics.Counter("mapreduce.task_failures").Add(int64(res.TaskFailures))
		c.Metrics.Counter("mapreduce.speculative_tasks").Add(int64(res.SpeculativeTasks))
		c.Metrics.Counter("mapreduce.shuffled_kvs").Add(int64(res.ShuffledKVs))
		c.Metrics.Histogram("mapreduce.job_latency").Observe(res.Elapsed)
		c.Metrics.Histogram("mapreduce.job_slot_wait").Observe(res.SlotWait)
	}
}

// taskFn computes one task attempt, returning its published result and
// its counters.
type taskFn func(task, attempt, node int) (any, map[string]int64, error)

// deferBudgetPerSlot bounds how many times a task may be deferred for
// locality before any worker runs it (Hadoop's delay-scheduling timeout).
const deferBudgetPerSlot = 8

// phaseResult carries one phase's outcome. nodes, epochs, and perTask
// record, for each task, which node incarnation produced the published
// result and that attempt's counters — what lost-output recovery needs to
// detect a dead output and retire its accounting.
type phaseResult struct {
	results     []any
	counters    map[string]int64
	perTask     []map[string]int64
	nodes       []int
	epochs      []int64
	failures    int
	speculative int
}

// runPhaseLocal executes n tasks with per-task retry (up to maxAttempts
// failures), optional locality preference, and optional speculative
// execution. Every task attempt executes while holding a slot acquired
// from the cluster's shared SlotPool through sj, so concurrent jobs on
// the same cluster never exceed Slots executing attempts in total. Only
// the first successful attempt of a task publishes its result and
// counters. When phaseSpan is non-nil, every attempt records a task span
// (named "<label>:<task>") on its node's track. Cancellation of ctx stops
// workers from launching further task attempts; attempts already running
// finish in the background without touching the phase result.
func (c *Cluster) runPhaseLocal(ctx context.Context, sj *SchedJob, n, maxAttempts int, prefer func(task int) []int, strict bool, phaseSpan *obs.Span, label string, run taskFn) (*phaseResult, error) {
	pr := &phaseResult{
		results:  make([]any, n),
		counters: map[string]int64{},
		perTask:  make([]map[string]int64, n),
		nodes:    make([]int, n),
		epochs:   make([]int64, n),
	}
	if n == 0 {
		return pr, nil
	}
	type try struct {
		id       int
		attempt  int
		deferred int
	}
	work := make(chan try, n*(maxAttempts+3)+16)
	for i := 0; i < n; i++ {
		work <- try{id: i, attempt: 0}
	}
	deferBudget := deferBudgetPerSlot * c.Slots
	isPreferred := func(task, node int) bool {
		if prefer == nil {
			return true
		}
		nodes := prefer(task)
		if len(nodes) == 0 {
			return true
		}
		for _, p := range nodes {
			if p == node {
				return true
			}
		}
		return false
	}
	var (
		mu        sync.Mutex
		done      = make([]bool, n)
		running   = make([]int, n)
		started   = make([]time.Time, n)
		failCount = make([]int, n)
		specDone  = make([]bool, n) // one backup attempt per task at most
		remaining = n
		durations []float64
		fatal     error
		closed    bool // phase finished; stragglers must not touch pr
	)
	stop := make(chan struct{})
	var stopOnce sync.Once
	closeStop := func() { stopOnce.Do(func() { close(stop) }) }

	for s := 0; s < c.Slots; s++ {
		go func(node int) {
			for {
				select {
				case <-stop:
					return
				case <-ctx.Done():
					return
				case t := <-work:
					mu.Lock()
					if done[t.id] || fatal != nil {
						mu.Unlock()
						continue
					}
					mu.Unlock()
					// A dead node runs nothing: its worker surrenders the
					// task (briefly parking, like delay scheduling) so a
					// live node's worker picks it up — no attempt is
					// consumed, mirroring a JobTracker that simply stops
					// granting slots on a lost TaskTracker.
					if c.Faults != nil && !c.Faults.NodeAlive(node) {
						work <- t
						time.Sleep(200 * time.Microsecond)
						continue
					}
					// Every attempt executes while holding a cluster-wide
					// slot, so concurrent jobs on one cluster never exceed
					// Slots executing attempts in total. The worker's node
					// identity stays fixed (as in the single-job engine);
					// the slot is purely the capacity token.
					slot, _, ok := sj.Acquire(ctx, stop)
					if !ok {
						// Phase over or job canceled while queued.
						return
					}
					mu.Lock()
					if done[t.id] || fatal != nil {
						mu.Unlock()
						sj.Release(slot)
						continue
					}
					// Delay scheduling: give a local worker a chance. The
					// short sleep is the "delay" — budget expiry must cost
					// wall-clock time, or a busy local worker never gets
					// its turn before the budget burns out. The slot goes
					// back to the pool while we wait, so deferral never
					// idles shared cluster capacity.
					if !isPreferred(t.id, node) &&
						(t.deferred < deferBudget || strict && c.strictSatisfiable(prefer(t.id))) {
						mu.Unlock()
						sj.Release(slot)
						t.deferred++
						work <- t
						time.Sleep(200 * time.Microsecond)
						continue
					}
					running[t.id]++
					if running[t.id] == 1 {
						started[t.id] = time.Now() //mrlint:allow determinism(time.Now) -- speculative-execution timing only; which attempt wins never changes task output
					}
					mu.Unlock()

					var taskSpan *obs.Span
					if phaseSpan != nil {
						//mrlint:allow obsnames -- per-task trace spans carry the task id; bounded by the phase's task count
						taskSpan = phaseSpan.Child(label+":"+strconv.Itoa(t.id), obs.KindTask)
						taskSpan.SetTrack(node)
						taskSpan.SetAttr("attempt", int64(t.attempt))
						if t.attempt >= maxAttempts {
							taskSpan.SetLabel("speculative", "true")
						}
					}
					// The node's epoch is read before AttemptStart so a
					// kill fired by this very attempt's start is seen as
					// an epoch change and fails the attempt.
					var fpEpoch int64
					var fpDelay time.Duration
					var fpErr error
					if c.Faults != nil {
						fpEpoch = c.Faults.NodeEpoch(node)
						fpDelay, fpErr = c.Faults.AttemptStart(sj.name, t.id, t.attempt, node, label == "map")
					}
					begin := time.Now() //mrlint:allow determinism(time.Now) -- per-task duration for speculation medians and spans; not part of task output
					var result any
					var counters map[string]int64
					var err error
					if fpErr != nil {
						err = fpErr
					} else {
						if fpDelay > 0 {
							time.Sleep(fpDelay)
						}
						result, counters, err = runSafely(func() (any, map[string]int64, error) {
							return run(t.id, t.attempt, node)
						})
						if err == nil && c.Faults != nil && (!c.Faults.NodeAlive(node) || c.Faults.NodeEpoch(node) != fpEpoch) {
							err = fmt.Errorf("%s task %d attempt %d on node %d: %w", label, t.id, t.attempt, node, ErrNodeLost)
						}
					}
					if taskSpan != nil {
						if err != nil {
							taskSpan.SetLabel("error", err.Error())
						}
						taskSpan.Finish()
					}
					sj.Release(slot)
					if c.Metrics != nil {
						c.Metrics.Histogram("mapreduce.task_latency").Observe(time.Since(begin))
					}

					mu.Lock()
					running[t.id]--
					if closed {
						mu.Unlock() // phase already over; abandoned attempt
						return
					}
					if done[t.id] {
						mu.Unlock() // a faster attempt already won
						continue
					}
					if err != nil {
						pr.failures++
						failCount[t.id]++
						if failCount[t.id] >= maxAttempts {
							if running[t.id] == 0 && fatal == nil {
								fatal = fmt.Errorf("task %d attempt %d: %v: %w", t.id, t.attempt, err, ErrTooManyFailures)
								closeStop()
							}
							mu.Unlock()
							continue
						}
						mu.Unlock()
						work <- try{id: t.id, attempt: t.attempt + 1}
						continue
					}
					done[t.id] = true
					pr.results[t.id] = result
					pr.perTask[t.id] = counters
					pr.nodes[t.id] = node
					pr.epochs[t.id] = fpEpoch
					for k, v := range counters {
						pr.counters[k] += v
					}
					durations = append(durations, time.Since(begin).Seconds())
					remaining--
					if remaining == 0 {
						closeStop()
					}
					mu.Unlock()
				}
			}
		}(s % maxInt(1, c.nodesForScheduling()))
	}

	// Speculative monitor: duplicate stragglers onto idle capacity.
	if c.Speculative {
		go func() {
			ticker := time.NewTicker(2 * time.Millisecond)
			defer ticker.Stop()
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
					mu.Lock()
					med := median(durations)
					ratio := c.SpeculativeRatio
					if ratio <= 1 {
						ratio = 2
					}
					for i := 0; i < n; i++ {
						if done[i] || specDone[i] || running[i] != 1 {
							continue
						}
						el := time.Since(started[i])
						if el < c.SpeculativeSlack {
							continue
						}
						if med > 0 && el.Seconds() < ratio*med {
							continue
						}
						if med == 0 && len(durations) == 0 && c.SpeculativeSlack <= 0 {
							continue
						}
						specDone[i] = true
						pr.speculative++
						//mrlint:allow lockscope(send) -- work is sized n*(maxAttempts+3)+16, enough for every possible enqueue; the send can never block
						work <- try{id: i, attempt: maxAttempts} // distinct attempt id
					}
					mu.Unlock()
				}
			}
		}()
	}

	// Wait for the phase outcome (all tasks done, a fatal failure, or
	// cancellation) — not for every attempt goroutine: a superseded
	// straggler keeps running in the background like a Hadoop attempt
	// awaiting its kill, but the `closed` flag bars it from touching the
	// phase result.
	select {
	case <-stop:
	case <-ctx.Done():
		closeStop()
	}
	mu.Lock()
	closed = true
	f := fatal
	incomplete := remaining > 0
	mu.Unlock()
	if f != nil {
		return pr, f
	}
	if cerr := ctx.Err(); cerr != nil && incomplete {
		return pr, fmt.Errorf("%w (%w)", ErrJobCanceled, cerr)
	}
	return pr, nil
}

// maxFetchTries bounds how many times one shuffle fetch of a map output
// is retried before the output is declared lost; fetchBackoff is the base
// of the linear backoff between retries (Hadoop's reduce-copy backoff,
// scaled to simulation time).
const (
	maxFetchTries = 4
	fetchBackoff  = 50 * time.Microsecond
)

// recoverMapOutputs reproduces Hadoop's lost-map-output handling. Before
// the shuffle consumes map outputs, each output is "fetched" from the node
// that produced it: transient fetch errors retry with bounded backoff, and
// an output whose node died or restarted since the attempt ran (its epoch
// changed — the output files died with the old incarnation) is declared
// lost and its map task re-executed on a live node. Re-execution proceeds
// in waves — a node can die *during* recovery and lose freshly recovered
// outputs — until every output fetches cleanly. Lost outputs are charged
// as task failures, the way Hadoop charges re-executed maps to the job,
// and the lost attempt's counters are retired so successful-attempt
// accounting still holds. mp is updated in place.
func (c *Cluster) recoverMapOutputs(ctx context.Context, sj *SchedJob, job *Job, maxAttempts int, mapAttempt taskFn, mp *phaseResult, jobSpan *obs.Span) (lostTotal, retries int, err error) {
	n := len(job.Splits)
	// Each wave re-executes at least one lost output and plan-driven
	// injectors are finite, so waves terminate; the cap only guards
	// against a FaultPlane that kills nodes unboundedly.
	maxWaves := n + 4
	for wave := 0; ; wave++ {
		if wave > maxWaves {
			return lostTotal, retries, fmt.Errorf("map output recovery did not converge after %d waves", wave)
		}
		if cerr := ctx.Err(); cerr != nil {
			return lostTotal, retries, cancelErr(job.Name, cerr)
		}
		var lost []int
		for i := 0; i < n; i++ {
			node := mp.nodes[i]
			var ferr error
			for try := 0; try < maxFetchTries; try++ {
				ferr = c.Faults.FetchError(job.Name, i, node, try)
				if ferr == nil {
					break
				}
				retries++
				time.Sleep(time.Duration(try+1) * fetchBackoff)
			}
			if ferr == nil && c.Faults.NodeAlive(node) && c.Faults.NodeEpoch(node) == mp.epochs[i] {
				continue
			}
			lost = append(lost, i)
		}
		if len(lost) == 0 {
			if c.Metrics != nil && retries > 0 {
				c.Metrics.Counter("mapreduce.fetch_retries").Add(int64(retries))
			}
			return lostTotal, retries, nil
		}
		lostTotal += len(lost)
		if c.Metrics != nil {
			c.Metrics.Counter("mapreduce.lost_map_outputs").Add(int64(len(lost)))
		}
		recSpan := jobSpan.Child("map_recovery", obs.KindPhase)
		recSpan.SetAttr("lost_outputs", int64(len(lost)))
		var prefer func(int) []int
		if job.Prefer != nil {
			prefer = func(j int) []int { return job.Prefer(lost[j]) }
		}
		sub, rerr := c.runPhaseLocal(ctx, sj, len(lost), maxAttempts, prefer, job.StrictLocality, recSpan, "map", func(j, attempt, node int) (any, map[string]int64, error) {
			return mapAttempt(lost[j], attempt, node)
		})
		recSpan.Finish()
		if rerr != nil {
			return lostTotal, retries, rerr
		}
		mp.failures += len(lost) + sub.failures
		mp.speculative += sub.speculative
		for j, id := range lost {
			for k, v := range mp.perTask[id] {
				mp.counters[k] -= v
			}
			for k, v := range sub.perTask[j] {
				mp.counters[k] += v
			}
			mp.perTask[id] = sub.perTask[j]
			mp.results[id] = sub.results[j]
			mp.nodes[id] = sub.nodes[j]
			mp.epochs[id] = sub.epochs[j]
		}
	}
}

// combineLocal applies the combiner to one map task's output: values are
// grouped by key (preserving first-occurrence order) and collapsed to a
// single pair per key.
func combineLocal(kvs []KV, combine CombineFunc) []KV {
	groups := map[string][][]byte{}
	var order []string
	for _, kv := range kvs {
		if _, ok := groups[kv.Key]; !ok {
			order = append(order, kv.Key)
		}
		groups[kv.Key] = append(groups[kv.Key], kv.Value)
	}
	out := make([]KV, 0, len(order))
	for _, k := range order {
		out = append(out, KV{Key: k, Value: combine(k, groups[k])})
	}
	return out
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return cp[len(cp)/2]
}

// strictSatisfiable reports whether a strict-locality preference can
// still be honored: some preferred node maps to a live worker. When none
// does, the preference is waived so strict jobs fall back like an
// expired delay budget instead of deadlocking.
func (c *Cluster) strictSatisfiable(nodes []int) bool {
	workers := maxInt(1, c.nodesForScheduling())
	if c.Slots < workers {
		workers = c.Slots
	}
	for _, p := range nodes {
		if p < 0 || p >= workers {
			continue
		}
		if c.Faults != nil && !c.Faults.NodeAlive(p) {
			continue
		}
		return true
	}
	return false
}

// nodesForScheduling maps slots onto DFS datanodes for locality accounting.
func (c *Cluster) nodesForScheduling() int {
	if c.FS != nil {
		return c.FS.Nodes()
	}
	return c.Slots
}

// runSafely converts a panic inside task code into a task error so the
// fault-tolerance machinery treats it as a failed attempt, the way Hadoop
// treats a crashed task JVM.
func runSafely(f func() (any, map[string]int64, error)) (result any, counters map[string]int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			result, counters = nil, nil
			err = fmt.Errorf("task panic: %v", r)
		}
	}()
	return f()
}

func sortKVs(kvs []KV) {
	sort.SliceStable(kvs, func(i, j int) bool { return kvs[i].Key < kvs[j].Key })
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Pipeline runs jobs sequentially, as the paper's Figure 2 chain of
// MapReduce jobs, stopping at the first error.
func (c *Cluster) Pipeline(jobs []*Job) ([]*JobResult, error) {
	results := make([]*JobResult, 0, len(jobs))
	for _, j := range jobs {
		r, err := c.Run(j)
		if err != nil {
			return results, err
		}
		results = append(results, r)
	}
	return results, nil
}

// ControlSplits builds the paper's Section 5.1 control inputs: m0 splits,
// the i-th containing just the integer i, so each mapper learns its role
// from its input file.
func ControlSplits(m0 int) []InputSplit {
	splits := make([]InputSplit, m0)
	for i := range splits {
		splits[i] = InputSplit{ID: i, Path: fmt.Sprintf("Root/MapInput/A.%d", i), Data: []byte(fmt.Sprintf("%d", i))}
	}
	return splits
}
