package mapreduce

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/dfs"
)

// localityJob reads one per-task input file from the DFS using the
// executing node, so non-local placements show up as transfer bytes.
func localityJob(fs *dfs.FS, tasks int, withPrefer bool) *Job {
	job := &Job{
		Name:   "locality",
		Splits: ControlSplits(tasks),
		Map: func(ctx *TaskContext, split InputSplit, emit Emitter) error {
			_, err := ctx.FS.ReadFrom(fmt.Sprintf("in/%d", split.ID), ctx.Node)
			return err
		},
	}
	if withPrefer {
		job.Prefer = func(task int) []int {
			reps, err := fs.Replicas(fmt.Sprintf("in/%d", task))
			if err != nil {
				return nil
			}
			return reps
		}
	}
	return job
}

func runLocality(t *testing.T, withPrefer bool) int64 {
	t.Helper()
	const nodes, tasks = 8, 64
	fs := dfs.New(nodes, 1) // replication 1: exactly one local node per file
	for i := 0; i < tasks; i++ {
		fs.Write(fmt.Sprintf("in/%d", i), make([]byte, 10_000))
	}
	fs.ResetStats()
	c := NewCluster(fs, nodes)
	if _, err := c.Run(localityJob(fs, tasks, withPrefer)); err != nil {
		t.Fatal(err)
	}
	return fs.Stats().BytesTransferred
}

func TestDelaySchedulingImprovesLocality(t *testing.T) {
	withoutTotal, withTotal := int64(0), int64(0)
	// Average over a few runs; scheduling is nondeterministic.
	for trial := 0; trial < 3; trial++ {
		withoutTotal += runLocality(t, false)
		withTotal += runLocality(t, true)
	}
	// With delay scheduling almost every read should be local.
	if withTotal >= withoutTotal/2 {
		t.Fatalf("locality did not help: %d vs %d transferred bytes", withTotal, withoutTotal)
	}
}

func TestPreferEmptyAndUnknownIsHarmless(t *testing.T) {
	fs := dfs.New(2, 1)
	c := NewCluster(fs, 2)
	job := &Job{
		Name:   "prefer-nil",
		Splits: ControlSplits(4),
		Prefer: func(task int) []int {
			if task%2 == 0 {
				return nil // unknown placement: run anywhere
			}
			return []int{99} // node that does not exist: deferral budget expires
		},
		Map: func(ctx *TaskContext, split InputSplit, emit Emitter) error {
			emit.Emit(fmt.Sprintf("%d", split.ID), nil)
			return nil
		},
	}
	res, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 4 {
		t.Fatalf("output = %d", len(res.Output))
	}
}

func TestPreferWithRetries(t *testing.T) {
	fs := dfs.New(4, 2)
	for i := 0; i < 8; i++ {
		fs.Write(fmt.Sprintf("in/%d", i), []byte("x"))
	}
	c := NewCluster(fs, 4)
	var mu sync.Mutex
	first := map[int]bool{}
	c.InjectFailure = func(job string, task, attempt int, isMap bool) error {
		mu.Lock()
		defer mu.Unlock()
		if attempt == 0 && !first[task] {
			first[task] = true
			return fmt.Errorf("crash")
		}
		return nil
	}
	res, err := c.Run(localityJob(fs, 8, true))
	if err != nil {
		t.Fatal(err)
	}
	if res.TaskFailures != 8 {
		t.Fatalf("failures = %d", res.TaskFailures)
	}
}
