package mapreduce

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dfs"
)

// fakePlane is a scriptable FaultPlane for engine-level tests: node
// liveness and epochs live behind a mutex, and the onAttempt/onFetch hooks
// script when faults fire.
type fakePlane struct {
	mu        sync.Mutex
	alive     []bool
	epoch     []int64
	onAttempt func(p *fakePlane, job string, task, attempt, node int, isMap bool) (time.Duration, error)
	onFetch   func(p *fakePlane, job string, task, node, try int) error
}

func newFakePlane(nodes int) *fakePlane {
	p := &fakePlane{alive: make([]bool, nodes), epoch: make([]int64, nodes)}
	for i := range p.alive {
		p.alive[i] = true
	}
	return p
}

// killLocked marks a node dead and bumps its epoch. Callers hold p.mu
// (the hooks run under it).
func (p *fakePlane) killLocked(node int) {
	p.alive[node] = false
	p.epoch[node]++
}

func (p *fakePlane) NodeAlive(node int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.alive[node]
}

func (p *fakePlane) NodeEpoch(node int) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch[node]
}

func (p *fakePlane) AttemptStart(job string, task, attempt, node int, isMap bool) (time.Duration, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.onAttempt != nil {
		return p.onAttempt(p, job, task, attempt, node, isMap)
	}
	return 0, nil
}

func (p *fakePlane) FetchError(job string, task, node, try int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.onFetch != nil {
		return p.onFetch(p, job, task, node, try)
	}
	return nil
}

// countedWordCount is wordCountJob plus per-phase counters, so tests can
// assert successful-attempt accounting under re-execution.
func countedWordCount(docs []string, reducers int) *Job {
	job := wordCountJob(docs, reducers)
	innerMap := job.Map
	job.Map = func(ctx *TaskContext, split InputSplit, emit Emitter) error {
		ctx.IncrCounter("maps", 1)
		return innerMap(ctx, split, emit)
	}
	innerReduce := job.Reduce
	job.Reduce = func(ctx *TaskContext, key string, values [][]byte, emit Emitter) error {
		ctx.IncrCounter("reduce_keys", 1)
		return innerReduce(ctx, key, values, emit)
	}
	return job
}

// Satellite: the reduce-phase retry path. A reduce attempt that fails via
// InjectFailure must be retried and the job must still produce correct
// output with the failure accounted.
func TestReduceRetryOnInjectedFailure(t *testing.T) {
	c := NewCluster(dfs.New(4, 2), 4)
	c.InjectFailure = func(job string, taskID, attempt int, isMap bool) error {
		if !isMap && taskID == 1 && attempt == 0 {
			return fmt.Errorf("injected reduce failure")
		}
		return nil
	}
	res, err := c.Run(countedWordCount([]string{"a b a", "b c", "a c c"}, 3))
	if err != nil {
		t.Fatal(err)
	}
	got := outputMap(t, res)
	want := map[string]string{"a": "3", "b": "2", "c": "3"}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count[%s] = %s, want %s (all: %v)", k, got[k], v, got)
		}
	}
	if res.TaskFailures != 1 {
		t.Fatalf("TaskFailures = %d, want 1", res.TaskFailures)
	}
	// Counters from the failed reduce attempt are discarded.
	if res.Counters["reduce_keys"] != 3 {
		t.Fatalf("reduce_keys counter = %d, want 3", res.Counters["reduce_keys"])
	}
}

// Satellite: reduce-phase attempt exhaustion surfaces ErrTooManyFailures
// wrapped in a reduce-phase error.
func TestReduceTooManyFailures(t *testing.T) {
	c := NewCluster(dfs.New(4, 2), 4)
	c.DefaultMaxAttempts = 3
	c.InjectFailure = func(job string, taskID, attempt int, isMap bool) error {
		if !isMap && taskID == 0 {
			return fmt.Errorf("persistent reduce failure")
		}
		return nil
	}
	_, err := c.Run(wordCountJob([]string{"a b", "c d"}, 2))
	if !errors.Is(err, ErrTooManyFailures) {
		t.Fatalf("err = %v, want ErrTooManyFailures", err)
	}
	if want := "reduce phase"; err == nil || !strings.Contains(err.Error(), want) {
		t.Fatalf("err = %v, want mention of %q", err, want)
	}
}

// A node that is dead before the job starts must execute nothing; the
// remaining nodes absorb its work.
func TestDeadNodeRunsNothing(t *testing.T) {
	c := NewCluster(dfs.New(4, 2), 4)
	plane := newFakePlane(4)
	plane.killLocked(2)
	c.Faults = plane

	var mu sync.Mutex
	nodesUsed := map[int]bool{}
	job := wordCountJob([]string{"a b", "c d", "e f", "g h", "i j", "k l"}, 3)
	innerMap := job.Map
	job.Map = func(ctx *TaskContext, split InputSplit, emit Emitter) error {
		mu.Lock()
		nodesUsed[ctx.Node] = true
		mu.Unlock()
		return innerMap(ctx, split, emit)
	}
	innerReduce := job.Reduce
	job.Reduce = func(ctx *TaskContext, key string, values [][]byte, emit Emitter) error {
		mu.Lock()
		nodesUsed[ctx.Node] = true
		mu.Unlock()
		return innerReduce(ctx, key, values, emit)
	}
	res, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 12 {
		t.Fatalf("output = %d keys, want 12", len(res.Output))
	}
	mu.Lock()
	defer mu.Unlock()
	if nodesUsed[2] {
		t.Fatal("an attempt executed on the dead node")
	}
	if len(nodesUsed) == 0 {
		t.Fatal("no attempts recorded")
	}
}

// An attempt whose node dies while it runs fails with ErrNodeLost and is
// re-executed on a surviving node.
func TestNodeLostMidAttemptRetried(t *testing.T) {
	c := NewCluster(dfs.New(4, 2), 4)
	plane := newFakePlane(4)
	killed := false
	plane.onAttempt = func(p *fakePlane, job string, task, attempt, node int, isMap bool) (time.Duration, error) {
		// The first map attempt's own start kills its node: the epoch
		// changes under the running attempt, which must then fail.
		if isMap && !killed {
			killed = true
			p.killLocked(node)
		}
		return 0, nil
	}
	c.Faults = plane
	res, err := c.Run(countedWordCount([]string{"a b a", "b c", "a"}, 3))
	if err != nil {
		t.Fatal(err)
	}
	got := outputMap(t, res)
	want := map[string]string{"a": "3", "b": "2", "c": "1"}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count[%s] = %s, want %s", k, got[k], v)
		}
	}
	if res.TaskFailures < 1 {
		t.Fatal("node loss not charged as a task failure")
	}
	// The killed attempt's counters were discarded: exactly one successful
	// attempt per map task is counted.
	if res.Counters["maps"] != 3 {
		t.Fatalf("maps counter = %d, want 3", res.Counters["maps"])
	}
}

// A completed map output whose node dies before the shuffle is lost; the
// map task re-executes and the job still produces correct output, with the
// loss accounted in LostMapOutputs/TaskFailures and the superseded
// attempt's counters retired.
func TestLostMapOutputReexecuted(t *testing.T) {
	c := NewCluster(dfs.New(4, 2), 4)
	plane := newFakePlane(4)
	killed := false
	plane.onFetch = func(p *fakePlane, job string, task, node, try int) error {
		// The first fetch of map output 0 discovers its node crashed.
		if task == 0 && !killed {
			killed = true
			p.killLocked(node)
		}
		if !p.alive[node] {
			return fmt.Errorf("fetch: node %d unreachable", node)
		}
		return nil
	}
	c.Faults = plane
	res, err := c.Run(countedWordCount([]string{"a b a", "b c", "a c c"}, 3))
	if err != nil {
		t.Fatal(err)
	}
	got := outputMap(t, res)
	want := map[string]string{"a": "3", "b": "2", "c": "3"}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count[%s] = %s, want %s (all: %v)", k, got[k], v, got)
		}
	}
	// At least output 0 is lost; other outputs produced by the same node
	// (scheduling-dependent) are lost with it.
	if res.LostMapOutputs < 1 || res.LostMapOutputs > res.MapTasks {
		t.Fatalf("LostMapOutputs = %d, want 1..%d", res.LostMapOutputs, res.MapTasks)
	}
	if res.FetchRetries < 1 {
		t.Fatal("no fetch retries recorded")
	}
	if res.TaskFailures < 1 {
		t.Fatal("lost output not charged as a task failure")
	}
	// Retirement: the re-executed map replaces the lost attempt's
	// counters instead of double counting.
	if res.Counters["maps"] != 3 {
		t.Fatalf("maps counter = %d, want 3 (lost attempt not retired?)", res.Counters["maps"])
	}
}

// Transient fetch errors are retried with backoff and do not lose outputs
// or re-execute maps.
func TestTransientFetchErrorsRetryInPlace(t *testing.T) {
	c := NewCluster(dfs.New(4, 2), 4)
	plane := newFakePlane(4)
	plane.onFetch = func(p *fakePlane, job string, task, node, try int) error {
		if try < 2 {
			return fmt.Errorf("transient fetch error")
		}
		return nil
	}
	c.Faults = plane
	res, err := c.Run(wordCountJob([]string{"a b a", "b c", "a"}, 3))
	if err != nil {
		t.Fatal(err)
	}
	// Each of the 3 map outputs errors on tries 0 and 1, succeeds on 2.
	if res.FetchRetries != 6 {
		t.Fatalf("FetchRetries = %d, want 6", res.FetchRetries)
	}
	if res.LostMapOutputs != 0 || res.TaskFailures != 0 {
		t.Fatalf("transient errors escalated: lost=%d failures=%d", res.LostMapOutputs, res.TaskFailures)
	}
	got := outputMap(t, res)
	if got["a"] != "3" || got["b"] != "2" || got["c"] != "1" {
		t.Fatalf("wrong output: %v", got)
	}
}

// Straggler injection through AttemptStart delay drives the existing
// speculative-execution path.
func TestInjectedStragglerDrivesSpeculation(t *testing.T) {
	c := NewCluster(dfs.New(4, 1), 4)
	c.Speculative = true
	c.SpeculativeSlack = 20 * time.Millisecond
	c.SpeculativeRatio = 2
	plane := newFakePlane(4)
	plane.onAttempt = func(p *fakePlane, job string, task, attempt, node int, isMap bool) (time.Duration, error) {
		if isMap && task == 0 && attempt == 0 {
			return 2 * time.Second, nil
		}
		return 0, nil
	}
	c.Faults = plane

	job := &Job{
		Name:   "chaos-straggler",
		Splits: ControlSplits(6),
		Map: func(ctx *TaskContext, split InputSplit, emit Emitter) error {
			time.Sleep(2 * time.Millisecond)
			emit.Emit(strconv.Itoa(split.ID), nil)
			return nil
		},
	}
	start := time.Now()
	res, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 1500*time.Millisecond {
		t.Fatalf("speculation did not rescue the injected straggler (took %v)", time.Since(start))
	}
	if res.SpeculativeTasks == 0 {
		t.Fatal("no speculative task recorded")
	}
	if len(res.Output) != 6 {
		t.Fatalf("output = %d keys, want 6", len(res.Output))
	}
}
