package mapreduce

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dfs"
)

// raisePeak folds n into a compare-and-swap high-water mark.
func raisePeak(peak *atomic.Int64, n int64) {
	for {
		p := peak.Load()
		if n <= p || peak.CompareAndSwap(p, n) {
			return
		}
	}
}

// probeJob returns a job whose every task attempt records itself in a
// shared concurrency probe while it executes.
func probeJob(name string, tasks, reducers int, cur, peak *atomic.Int64) *Job {
	touch := func() {
		raisePeak(peak, cur.Add(1))
		time.Sleep(time.Millisecond)
		cur.Add(-1)
	}
	return &Job{
		Name:   name,
		Splits: ControlSplits(tasks),
		Map: func(ctx *TaskContext, split InputSplit, emit Emitter) error {
			touch()
			emit.Emit(fmt.Sprintf("k%d", split.ID%reducers), []byte("x"))
			return nil
		},
		Reduce: func(ctx *TaskContext, key string, values [][]byte, emit Emitter) error {
			touch()
			emit.Emit(key, []byte("y"))
			return nil
		},
		NumReduce: reducers,
	}
}

// TestConcurrentPipelinesShareSlots is the scheduler's core invariant:
// four pipelines (two jobs each) running concurrently on one shared
// cluster never exceed Cluster.Slots concurrently executing task
// attempts — the m0 accounting the paper's evaluation depends on. Run
// under -race by the suite's race step.
func TestConcurrentPipelinesShareSlots(t *testing.T) {
	const slots = 4
	fs := dfs.New(slots, 1)
	c := NewCluster(fs, slots)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < 2; j++ {
				if _, err := c.Run(probeJob(fmt.Sprintf("p%d-j%d", w, j), 8, 4, &cur, &peak)); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()
	if p := peak.Load(); p > slots {
		t.Fatalf("peak concurrently executing attempts = %d, want <= %d", p, slots)
	}
	st := c.Scheduler().Stats()
	if st.Peak > slots {
		t.Fatalf("pool peak = %d, want <= %d", st.Peak, slots)
	}
	// 8 jobs x (8 maps + 4 reduces) successful attempts at minimum.
	if st.Grants < 8*(8+4) {
		t.Fatalf("grants = %d, want >= %d", st.Grants, 8*(8+4))
	}
	if st.InUse != 0 {
		t.Fatalf("slots still in use after all jobs done: %d", st.InUse)
	}
}

// TestSharedClusterSlotWaitReported checks that contention shows up in
// the per-job slot-wait accounting surfaced through JobResult.
func TestSharedClusterSlotWaitReported(t *testing.T) {
	fs := dfs.New(2, 1)
	c := NewCluster(fs, 2)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	var totalWait time.Duration
	var totalGrants int64
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res, err := c.Run(probeJob(fmt.Sprintf("w%d", w), 6, 2, &cur, &peak))
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			totalWait += res.SlotWait
			totalGrants += res.SlotGrants
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if totalGrants < 3*(6+2) {
		t.Fatalf("grants = %d, want >= %d", totalGrants, 3*(6+2))
	}
	// 24 attempts of ~1ms on 2 slots: some attempt must have queued.
	if totalWait <= 0 {
		t.Fatalf("expected nonzero cumulative slot wait, got %v", totalWait)
	}
}

// TestMaxConcurrentJobs: with the tenancy knob at 1, two concurrent jobs
// on a 4-slot cluster never execute task attempts at the same time.
func TestMaxConcurrentJobs(t *testing.T) {
	fs := dfs.New(2, 1)
	c := NewCluster(fs, 4)
	c.MaxConcurrentJobs = 1
	var aIn, bIn atomic.Int64
	var overlap atomic.Bool
	mk := func(name string, self, other *atomic.Int64) *Job {
		return &Job{
			Name:   name,
			Splits: ControlSplits(6),
			Map: func(ctx *TaskContext, split InputSplit, emit Emitter) error {
				self.Add(1)
				if other.Load() > 0 {
					overlap.Store(true)
				}
				time.Sleep(500 * time.Microsecond)
				self.Add(-1)
				return nil
			},
		}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); c.Run(mk("a", &aIn, &bIn)) }()
	go func() { defer wg.Done(); c.Run(mk("b", &bIn, &aIn)) }()
	wg.Wait()
	if overlap.Load() {
		t.Fatal("MaxConcurrentJobs=1 allowed two jobs to execute attempts concurrently")
	}
}

// TestFairShareBoundedSkew: two equal jobs contending for two slots make
// comparable progress — when the first finishes its fixed work, the
// other is well past a quarter of its own (round-robin arbitration; a
// job-FIFO scheduler would leave the loser near zero).
func TestFairShareBoundedSkew(t *testing.T) {
	p := NewSlotPool(2, 0, 0, nil)
	const perJob = 30
	run := func(j *SchedJob, done *atomic.Int64, fin chan<- struct{}) {
		var wg sync.WaitGroup
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perJob/2; i++ {
					s, _, ok := j.Acquire(context.Background(), nil)
					if !ok {
						t.Error("acquire denied")
						return
					}
					time.Sleep(300 * time.Microsecond)
					done.Add(1)
					j.Release(s)
				}
			}()
		}
		wg.Wait()
		close(fin)
	}
	a := p.Register("a", 0)
	b := p.Register("b", 0)
	var aDone, bDone atomic.Int64
	aFin, bFin := make(chan struct{}), make(chan struct{})
	go run(a, &aDone, aFin)
	go run(b, &bDone, bFin)
	var laggard int64
	select {
	case <-aFin:
		laggard = bDone.Load()
	case <-bFin:
		laggard = aDone.Load()
	}
	<-aFin
	<-bFin
	a.Close()
	b.Close()
	if laggard < perJob/4 {
		t.Fatalf("unfair share: laggard had finished only %d/%d when winner completed", laggard, perJob)
	}
	if g := a.Grants() + b.Grants(); g != 2*perJob {
		t.Fatalf("grants = %d, want %d", g, 2*perJob)
	}
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestPriorityWinsContendedSlot: with one slot held and two waiters
// queued, the higher-priority job is granted first regardless of queue
// order.
func TestPriorityWinsContendedSlot(t *testing.T) {
	p := NewSlotPool(1, 0, 0, nil)
	hold := p.Register("hold", 0)
	lo := p.Register("lo", 0)
	hi := p.Register("hi", 5)
	s, _, ok := hold.Acquire(context.Background(), nil)
	if !ok {
		t.Fatal("initial acquire failed")
	}
	got := make(chan string, 2)
	go func() {
		if sl, _, ok := lo.Acquire(context.Background(), nil); ok {
			got <- "lo"
			lo.Release(sl)
		}
	}()
	waitFor(t, func() bool { return p.Stats().QueueDepth == 1 })
	go func() {
		if sl, _, ok := hi.Acquire(context.Background(), nil); ok {
			got <- "hi"
			hi.Release(sl)
		}
	}()
	waitFor(t, func() bool { return p.Stats().QueueDepth == 2 })
	hold.Release(s)
	if first := <-got; first != "hi" {
		t.Fatalf("first grant went to %q, want hi", first)
	}
	<-got
	hold.Close()
	lo.Close()
	hi.Close()
}

// TestSlotQuotaRedirectsToWaitingJob: a freed slot skips a job at its
// quota while another job is waiting.
func TestSlotQuotaRedirectsToWaitingJob(t *testing.T) {
	p := NewSlotPool(4, 0, 2, nil)
	a := p.Register("a", 0)
	b := p.Register("b", 0)
	acq := func(j *SchedJob) int {
		t.Helper()
		s, _, ok := j.Acquire(context.Background(), nil)
		if !ok {
			t.Fatal("acquire failed")
		}
		return s
	}
	sa0, sa1 := acq(a), acq(a)
	sb0, sb1 := acq(b), acq(b) // pool now full: a holds 2, b holds 2
	_, _, _ = sa0, sa1, sb1
	aGot := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			if s, _, ok := a.Acquire(context.Background(), nil); ok {
				aGot <- s
			}
		}()
	}
	waitFor(t, func() bool { return p.Stats().QueueDepth == 2 })
	bGot := make(chan int, 1)
	go func() {
		if s, _, ok := b.Acquire(context.Background(), nil); ok {
			bGot <- s
		}
	}()
	waitFor(t, func() bool { return p.Stats().QueueDepth == 3 })
	// b gives one back: a is at quota (holds 2) with b waiting, so the
	// slot must return to b, not to a's earlier-queued waiters.
	b.Release(sb0)
	select {
	case <-bGot:
	case s := <-aGot:
		t.Fatalf("slot %d went to job a past its quota", s)
	case <-time.After(5 * time.Second):
		t.Fatal("freed slot granted to nobody")
	}
	a.Close() // denies a's pending waiters
	b.Close()
}

// TestAcquireCancellation: a waiter withdrawn by context cancellation or
// stop-channel close releases nothing and leaves the pool consistent.
func TestAcquireCancellation(t *testing.T) {
	p := NewSlotPool(1, 0, 0, nil)
	j := p.Register("j", 0)
	s, _, ok := j.Acquire(context.Background(), nil)
	if !ok {
		t.Fatal("acquire failed")
	}
	ctx, cancel := context.WithCancel(context.Background())
	res := make(chan bool, 1)
	go func() {
		_, _, ok := j.Acquire(ctx, nil)
		res <- ok
	}()
	waitFor(t, func() bool { return p.Stats().QueueDepth == 1 })
	cancel()
	if <-res {
		t.Fatal("canceled acquire reported success")
	}
	if st := p.Stats(); st.QueueDepth != 0 {
		t.Fatalf("queue depth = %d after withdrawal", st.QueueDepth)
	}
	j.Release(s)
	if st := p.Stats(); st.InUse != 0 {
		t.Fatalf("in use = %d after release", st.InUse)
	}
	j.Close()
}

// TestCloseDeniesWaiters: closing a job wakes its queued acquires with
// ok=false instead of leaving them blocked.
func TestCloseDeniesWaiters(t *testing.T) {
	p := NewSlotPool(1, 0, 0, nil)
	holder := p.Register("holder", 0)
	s, _, _ := holder.Acquire(context.Background(), nil)
	j := p.Register("j", 0)
	res := make(chan bool, 1)
	go func() {
		_, _, ok := j.Acquire(context.Background(), nil)
		res <- ok
	}()
	waitFor(t, func() bool { return p.Stats().QueueDepth == 1 })
	j.Close()
	if <-res {
		t.Fatal("acquire on closed job reported success")
	}
	holder.Release(s)
	holder.Close()
	if st := p.Stats(); st.Jobs != 0 || st.InUse != 0 || st.QueueDepth != 0 {
		t.Fatalf("pool not quiescent after close: %+v", st)
	}
}
