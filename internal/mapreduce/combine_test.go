package mapreduce

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/dfs"
)

// sumCombiner merges numeric string values by addition.
func sumCombiner(key string, values [][]byte) []byte {
	total := 0
	for _, v := range values {
		n, _ := strconv.Atoi(string(v))
		total += n
	}
	return []byte(strconv.Itoa(total))
}

func wordCountWithCombiner(docs []string, reducers int) *Job {
	job := wordCountJob(docs, reducers)
	// Map emits "1" per word; rewrite reduce to sum numeric values so the
	// combiner composes correctly.
	job.Combine = sumCombiner
	job.Reduce = func(ctx *TaskContext, key string, values [][]byte, emit Emitter) error {
		total := 0
		for _, v := range values {
			n, err := strconv.Atoi(string(v))
			if err != nil {
				return err
			}
			total += n
		}
		emit.Emit(key, []byte(strconv.Itoa(total)))
		return nil
	}
	return job
}

func TestCombinerCorrectAndReducesShuffle(t *testing.T) {
	docs := []string{
		strings.Repeat("alpha ", 20) + "beta",
		strings.Repeat("alpha ", 10) + strings.Repeat("beta ", 5),
	}
	run := func(combine bool) *JobResult {
		c := NewCluster(dfs.New(2, 1), 2)
		job := wordCountWithCombiner(docs, 2)
		if !combine {
			job.Combine = nil
		}
		res, err := c.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	with := run(true)
	without := run(false)

	// Same answers.
	wm, wo := outputMap(t, with), outputMap(t, without)
	if wm["alpha"] != "30" || wm["beta"] != "6" {
		t.Fatalf("combined counts wrong: %v", wm)
	}
	for k, v := range wo {
		if wm[k] != v {
			t.Fatalf("combiner changed %s: %s vs %s", k, wm[k], v)
		}
	}
	// Far fewer shuffled pairs: 2 keys x 2 map tasks vs 36 raw pairs.
	if with.ShuffledKVs >= without.ShuffledKVs {
		t.Fatalf("combiner did not reduce shuffle: %d vs %d", with.ShuffledKVs, without.ShuffledKVs)
	}
	if with.ShuffledKVs > 4 {
		t.Fatalf("shuffled %d pairs, want <= keys x mapTasks = 4", with.ShuffledKVs)
	}
}

func TestCombinerOnMapOnlyJobIgnoredSafely(t *testing.T) {
	c := NewCluster(dfs.New(1, 1), 1)
	job := &Job{
		Name:    "maponly-combine",
		Splits:  ControlSplits(2),
		Combine: sumCombiner,
		Map: func(ctx *TaskContext, split InputSplit, emit Emitter) error {
			emit.Emit("k", []byte("1"))
			emit.Emit("k", []byte("2"))
			return nil
		},
	}
	res, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	// Map-only output is still combined per map task: one pair per task.
	if len(res.Output) != 2 {
		t.Fatalf("output = %v", res.Output)
	}
	for _, kv := range res.Output {
		if string(kv.Value) != "3" {
			t.Fatalf("combined value = %s", kv.Value)
		}
	}
}
