package lu

import (
	"fmt"
	"math"

	"repro/internal/matrix"
)

// Triangular solves used by the block LU MapReduce job (Equation 6 of the
// paper). Computing U2 from L1 U2 = P1 A2 is a forward substitution with a
// unit lower triangular matrix; computing L2' from L2' U1 = A3 is a
// row-wise substitution against an upper triangular matrix. Both have the
// independence property the paper exploits: each column of U2 (and each
// row of L2') depends only on the corresponding column (row) of the right
// hand side, so distinct workers can compute distinct bands.

// ForwardSubstMatrix solves L X = B for X, where l is lower triangular.
// If unitDiagonal is true the diagonal of l is taken as all ones.
func ForwardSubstMatrix(l, b *matrix.Dense, unitDiagonal bool) (*matrix.Dense, error) {
	if !l.IsSquare() || l.Rows != b.Rows {
		return nil, fmt.Errorf("lu: ForwardSubstMatrix L %dx%d, B %dx%d: %w", l.Rows, l.Cols, b.Rows, b.Cols, ErrNotSquare)
	}
	n, w := b.Rows, b.Cols
	x := b.Clone()
	for i := 0; i < n; i++ {
		xrow := x.Row(i)
		lrow := l.Row(i)
		for k := 0; k < i; k++ {
			lik := lrow[k]
			if lik == 0 {
				continue
			}
			xk := x.Row(k)
			for j := 0; j < w; j++ {
				xrow[j] -= lik * xk[j]
			}
		}
		if !unitDiagonal {
			d := lrow[i]
			if math.Abs(d) < pivotTol {
				return nil, fmt.Errorf("lu: ForwardSubstMatrix zero diagonal at %d: %w", i, ErrSingular)
			}
			inv := 1 / d
			for j := 0; j < w; j++ {
				xrow[j] *= inv
			}
		}
	}
	return x, nil
}

// SolveRowsUpper solves X U = B for X, where u is upper triangular with a
// general (non-unit) diagonal: row r of X satisfies X[r]·U = B[r]. This is
// Equation 6's L2' computation with B = A3.
func SolveRowsUpper(u, b *matrix.Dense) (*matrix.Dense, error) {
	if !u.IsSquare() || u.Rows != b.Cols {
		return nil, fmt.Errorf("lu: SolveRowsUpper U %dx%d, B %dx%d: %w", u.Rows, u.Cols, b.Rows, b.Cols, ErrNotSquare)
	}
	n := u.Rows
	for i := 0; i < n; i++ {
		if math.Abs(u.At(i, i)) < pivotTol {
			return nil, fmt.Errorf("lu: SolveRowsUpper zero diagonal at %d: %w", i, ErrSingular)
		}
	}
	x := matrix.New(b.Rows, b.Cols)
	for r := 0; r < b.Rows; r++ {
		brow := b.Row(r)
		xrow := x.Row(r)
		// x[j] = (b[j] - sum_{k<j} x[k] U[k][j]) / U[j][j], left to right.
		for j := 0; j < n; j++ {
			s := brow[j]
			for k := 0; k < j; k++ {
				s -= xrow[k] * u.At(k, j)
			}
			xrow[j] = s / u.At(j, j)
		}
	}
	return x, nil
}

// SolveRowsUpperTrans is SolveRowsUpper when U is stored transposed
// (Section 6.3): ut holds U^T, so U[k][j] = ut[j][k] and every inner loop
// walks rows of row-major storage.
func SolveRowsUpperTrans(ut, b *matrix.Dense) (*matrix.Dense, error) {
	if !ut.IsSquare() || ut.Rows != b.Cols {
		return nil, fmt.Errorf("lu: SolveRowsUpperTrans U^T %dx%d, B %dx%d: %w", ut.Rows, ut.Cols, b.Rows, b.Cols, ErrNotSquare)
	}
	n := ut.Rows
	for i := 0; i < n; i++ {
		if math.Abs(ut.At(i, i)) < pivotTol {
			return nil, fmt.Errorf("lu: SolveRowsUpperTrans zero diagonal at %d: %w", i, ErrSingular)
		}
	}
	x := matrix.New(b.Rows, b.Cols)
	for r := 0; r < b.Rows; r++ {
		brow := b.Row(r)
		xrow := x.Row(r)
		for j := 0; j < n; j++ {
			urow := ut.Row(j)
			s := brow[j]
			for k := 0; k < j; k++ {
				s -= xrow[k] * urow[k]
			}
			xrow[j] = s / urow[j]
		}
	}
	return x, nil
}
