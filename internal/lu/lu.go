// Package lu implements single-node LU decomposition with partial pivoting
// (Algorithm 1 of the HPDC 2014 paper), triangular-matrix inversion
// (Equation 4), and full matrix inversion via A^-1 = U^-1 L^-1 P.
//
// This is the kernel the MapReduce pipeline runs on the master node for
// submatrices of order <= nb (the "bound value", 3200 in the paper's
// experiments), and it also serves as the ground-truth reference for the
// distributed implementations.
package lu

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/matrix"
)

// ErrSingular is returned when a pivot column has no usable (nonzero) pivot,
// i.e. the input matrix is singular to working precision.
var ErrSingular = errors.New("lu: matrix is singular")

// ErrNotSquare is returned for non-square inputs.
var ErrNotSquare = errors.New("lu: matrix is not square")

// pivotTol is the magnitude below which a pivot is considered zero.
const pivotTol = 1e-300

// Factorization holds a combined LU factorization with partial pivoting:
// P*A = L*U where L is unit lower triangular and U is upper triangular.
//
// As in Algorithm 1, L and U share one matrix: the strict lower triangle of
// LU holds L (unit diagonal implied, not stored) and the upper triangle
// including the diagonal holds U. P is stored compactly as a matrix.Perm.
type Factorization struct {
	LU *matrix.Dense
	P  matrix.Perm
	// swaps counts row exchanges, fixing the determinant's sign.
	swaps int
}

// Order returns the order n of the factored matrix.
func (f *Factorization) Order() int { return f.LU.Rows }

// Decompose computes the pivoted LU factorization of a square matrix A
// following Algorithm 1. A is not modified.
func Decompose(a *matrix.Dense) (*Factorization, error) {
	if !a.IsSquare() {
		return nil, fmt.Errorf("lu: Decompose %dx%d: %w", a.Rows, a.Cols, ErrNotSquare)
	}
	lu := a.Clone()
	n := lu.Rows
	p := matrix.IdentityPerm(n)
	swaps := 0
	for i := 0; i < n; i++ {
		// Pivot selection: the row with maximum |element| in column i among
		// rows i..n-1 (Algorithm 1 line 3).
		piv, best := i, math.Abs(lu.At(i, i))
		for r := i + 1; r < n; r++ {
			if v := math.Abs(lu.At(r, i)); v > best {
				piv, best = r, v
			}
		}
		if best < pivotTol {
			return nil, fmt.Errorf("lu: zero pivot at column %d: %w", i, ErrSingular)
		}
		if piv != i {
			swapRows(lu, i, piv)
			p[i], p[piv] = p[piv], p[i]
			swaps++
		}
		// Scale the subcolumn (Algorithm 1 lines 6-8) and update the
		// trailing submatrix (lines 9-13).
		inv := 1 / lu.At(i, i)
		for j := i + 1; j < n; j++ {
			lji := lu.At(j, i) * inv
			lu.Set(j, i, lji)
			if lji == 0 {
				continue
			}
			urow := lu.Row(i)[i+1:]
			jrow := lu.Row(j)[i+1:]
			for k, uv := range urow {
				jrow[k] -= lji * uv
			}
		}
	}
	return &Factorization{LU: lu, P: p, swaps: swaps}, nil
}

func swapRows(m *matrix.Dense, i, j int) {
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// L returns the unit lower triangular factor as an explicit matrix.
func (f *Factorization) L() *matrix.Dense {
	n := f.Order()
	l := matrix.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			l.Set(i, j, f.LU.At(i, j))
		}
		l.Set(i, i, 1)
	}
	return l
}

// U returns the upper triangular factor as an explicit matrix.
func (f *Factorization) U() *matrix.Dense {
	n := f.Order()
	u := matrix.New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			u.Set(i, j, f.LU.At(i, j))
		}
	}
	return u
}

// Det returns the determinant of the original matrix: the product of U's
// diagonal with sign (-1)^swaps.
func (f *Factorization) Det() float64 {
	d := 1.0
	for i := 0; i < f.Order(); i++ {
		d *= f.LU.At(i, i)
	}
	if f.swaps%2 == 1 {
		d = -d
	}
	return d
}

// SolveVec solves A x = b using the factorization: forward substitution with
// L on the pivoted right-hand side, then back substitution with U.
func (f *Factorization) SolveVec(b []float64) ([]float64, error) {
	n := f.Order()
	if len(b) != n {
		return nil, fmt.Errorf("lu: SolveVec rhs length %d, want %d", len(b), n)
	}
	// y = L^-1 (P b)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[f.P[i]]
		row := f.LU.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		y[i] = s
	}
	// x = U^-1 y
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		row := f.LU.Row(i)
		for k := i + 1; k < n; k++ {
			s -= row[k] * x[k]
		}
		x[i] = s / row[i]
	}
	return x, nil
}

// Solve solves A X = B column-by-column.
func (f *Factorization) Solve(b *matrix.Dense) (*matrix.Dense, error) {
	if b.Rows != f.Order() {
		return nil, fmt.Errorf("lu: Solve rhs has %d rows, want %d", b.Rows, f.Order())
	}
	out := matrix.New(b.Rows, b.Cols)
	for j := 0; j < b.Cols; j++ {
		x, err := f.SolveVec(b.Col(j))
		if err != nil {
			return nil, err
		}
		for i, v := range x {
			out.Set(i, j, v)
		}
	}
	return out, nil
}

// Inverse computes A^-1 = U^-1 L^-1 P from the factorization, the paper's
// Section 4.3 procedure: invert both triangular factors via Equation 4,
// multiply, and undo pivoting by permuting columns.
func (f *Factorization) Inverse() (*matrix.Dense, error) {
	linv := LowerInverse(f.L(), true)
	uinv, err := UpperInverse(f.U())
	if err != nil {
		return nil, err
	}
	prod, err := matrix.Mul(uinv, linv)
	if err != nil {
		return nil, err
	}
	return f.P.ApplyCols(prod), nil
}

// Invert is the convenience single-node inversion: Decompose + Inverse.
func Invert(a *matrix.Dense) (*matrix.Dense, error) {
	f, err := Decompose(a)
	if err != nil {
		return nil, err
	}
	return f.Inverse()
}

// LowerInverse inverts a lower triangular matrix by Equation 4:
//
//	[L^-1]ij = 0                                  for i < j
//	[L^-1]ii = 1/[L]ii
//	[L^-1]ij = -1/[L]ii * sum_{k=j}^{i-1} [L]ik [L^-1]kj   for i > j
//
// If unitDiagonal is true the diagonal of l is assumed to be all ones
// regardless of the stored values (the paper's convention lii = 1.0).
// Column j of the inverse depends only on column j — the independence the
// paper exploits to parallelize triangular inversion across mappers.
func LowerInverse(l *matrix.Dense, unitDiagonal bool) *matrix.Dense {
	n := l.Rows
	inv := matrix.New(n, n)
	for j := 0; j < n; j++ {
		InvertLowerColumn(l, j, unitDiagonal, inv)
	}
	return inv
}

// InvertLowerColumn computes column j of the inverse of lower-triangular l
// directly into dst. It is the per-task unit of the triangular-inversion
// MapReduce job (Section 5.4): distinct columns can be computed by distinct
// workers with no communication.
func InvertLowerColumn(l *matrix.Dense, j int, unitDiagonal bool, dst *matrix.Dense) {
	n := l.Rows
	diag := func(i int) float64 {
		if unitDiagonal {
			return 1
		}
		return l.At(i, i)
	}
	dst.Set(j, j, 1/diag(j))
	for i := j + 1; i < n; i++ {
		var s float64
		row := l.Row(i)
		for k := j; k < i; k++ {
			s += row[k] * dst.At(k, j)
		}
		dst.Set(i, j, -s/diag(i))
	}
}

// UpperInverse inverts an upper triangular matrix. Following the paper's
// Section 4.1 optimization, it transposes U (giving a lower triangular
// matrix), inverts that with Equation 4, and transposes back — keeping every
// inner loop walking rows of row-major storage.
func UpperInverse(u *matrix.Dense) (*matrix.Dense, error) {
	n := u.Rows
	for i := 0; i < n; i++ {
		if math.Abs(u.At(i, i)) < pivotTol {
			return nil, fmt.Errorf("lu: zero diagonal at %d: %w", i, ErrSingular)
		}
	}
	ut := u.Transpose()
	inv := LowerInverse(ut, false)
	return inv.Transpose(), nil
}
