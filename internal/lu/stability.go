package lu

import (
	"math"

	"repro/internal/matrix"
)

// Numerical-stability instrumentation. The paper validates accuracy
// empirically (every element of I - M M^-1 below 1e-5, Section 7.2) and
// defers "a deeper investigation of numerical stability" to future work
// (Section 5). These helpers implement the standard tools of that
// investigation for the LU kernel.

// GrowthFactor returns the pivot growth factor of the factorization:
// max|U| / max|A|. Partial pivoting keeps it bounded by 2^(n-1) in the
// worst case but ~n^(2/3) on average for random matrices; large growth
// signals accuracy loss.
func GrowthFactor(a *matrix.Dense) (float64, error) {
	f, err := Decompose(a)
	if err != nil {
		return 0, err
	}
	maxA := matrix.MaxAbs(a)
	if maxA == 0 {
		return 0, nil
	}
	// Combined storage: the upper triangle (incl. diagonal) holds U.
	var maxU float64
	n := f.Order()
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			if v := math.Abs(f.LU.At(i, j)); v > maxU {
				maxU = v
			}
		}
	}
	return maxU / maxA, nil
}

// BackwardError returns the normwise relative backward error of a
// computed inverse X: ||A X - I||_inf / (||A||_inf ||X||_inf). Values
// near machine epsilon indicate a backward-stable computation.
func BackwardError(a, x *matrix.Dense) (float64, error) {
	ax, err := matrix.Mul(a, x)
	if err != nil {
		return 0, err
	}
	n := a.Rows
	for i := 0; i < n; i++ {
		ax.Set(i, i, ax.At(i, i)-1)
	}
	denom := matrix.NormInf(a) * matrix.NormInf(x)
	if denom == 0 {
		return 0, nil
	}
	return matrix.NormInf(ax) / denom, nil
}

// ConditionInf estimates the infinity-norm condition number by computing
// the inverse explicitly: kappa = ||A||_inf ||A^-1||_inf.
func ConditionInf(a *matrix.Dense) (float64, error) {
	inv, err := Invert(a)
	if err != nil {
		return 0, err
	}
	return matrix.NormInf(a) * matrix.NormInf(inv), nil
}

// ForwardErrorBound returns the standard first-order forward error bound
// for the computed inverse: kappa * eps. The measured residual should not
// exceed this by a large factor for a stable implementation.
func ForwardErrorBound(kappa float64) float64 {
	const eps = 2.220446049250313e-16
	return kappa * eps
}
