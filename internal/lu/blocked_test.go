package lu

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
	"repro/internal/workload"
)

func TestDecomposeBlockedIdenticalToScalar(t *testing.T) {
	// Panel pivoting sees full column height, so blocked and scalar
	// factorizations must agree exactly — pivots, L, U, bit for bit.
	for _, tc := range []struct{ n, bs int }{
		{1, 4}, {7, 4}, {16, 4}, {33, 8}, {64, 48}, {100, 0}, {50, 200},
	} {
		a := workload.Random(tc.n, int64(tc.n*3+tc.bs))
		scalar, err := Decompose(a)
		if err != nil {
			t.Fatal(err)
		}
		blocked, err := DecomposeBlocked(a, tc.bs)
		if err != nil {
			t.Fatalf("n=%d bs=%d: %v", tc.n, tc.bs, err)
		}
		if !matrix.Equal(scalar.LU, blocked.LU, 1e-13) {
			t.Fatalf("n=%d bs=%d: LU differs by %g", tc.n, tc.bs, matrix.MaxAbsDiff(scalar.LU, blocked.LU))
		}
		for i := range scalar.P {
			if scalar.P[i] != blocked.P[i] {
				t.Fatalf("n=%d bs=%d: pivots differ at %d", tc.n, tc.bs, i)
			}
		}
		if scalar.Det()*blocked.Det() < 0 {
			t.Fatalf("n=%d bs=%d: determinant signs differ", tc.n, tc.bs)
		}
	}
}

func TestDecomposeBlockedErrors(t *testing.T) {
	if _, err := DecomposeBlocked(matrix.New(2, 3), 4); !errors.Is(err, ErrNotSquare) {
		t.Fatalf("err = %v", err)
	}
	sing := matrix.FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := DecomposeBlocked(sing, 1); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v", err)
	}
}

func TestInvertBlocked(t *testing.T) {
	a := workload.Random(96, 811)
	inv, err := InvertBlocked(a, 32)
	if err != nil {
		t.Fatal(err)
	}
	res, err := matrix.IdentityResidual(a, inv)
	if err != nil {
		t.Fatal(err)
	}
	if res > 1e-8 {
		t.Fatalf("residual %g", res)
	}
}

func TestQuickBlockedMatchesScalar(t *testing.T) {
	f := func(seed int64, nRaw, bsRaw uint8) bool {
		n := int(nRaw%48) + 1
		bs := int(bsRaw%16) + 1
		a := workload.DiagonallyDominant(n, seed)
		s, err1 := Decompose(a)
		b, err2 := DecomposeBlocked(a, bs)
		if err1 != nil || err2 != nil {
			return false
		}
		return matrix.Equal(s.LU, b.LU, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
