package lu

import (
	"math"
	"testing"

	"repro/internal/matrix"
	"repro/internal/workload"
)

func TestRefineInverseImprovesPerturbedInverse(t *testing.T) {
	n := 40
	a := workload.DiagonallyDominant(n, 701)
	exact, err := Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb the inverse enough to be visible but keep ||I - AX|| < 1.
	noisy := exact.Clone()
	noisy.Apply(func(i, j int, v float64) float64 {
		return v * (1 + 1e-4*math.Sin(float64(i*n+j)))
	})
	before, err := matrix.IdentityResidual(a, noisy)
	if err != nil {
		t.Fatal(err)
	}
	refined, after, err := RefineInverse(a, noisy, 5)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before/100 {
		t.Fatalf("refinement too weak: %g -> %g", before, after)
	}
	if d := matrix.MaxAbsDiff(refined, exact); d > 1e-8 {
		t.Fatalf("refined inverse differs from exact by %g", d)
	}
}

func TestRefineInverseIdempotentAtMachinePrecision(t *testing.T) {
	a := workload.DiagonallyDominant(24, 702)
	inv, err := Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	refined, res, err := RefineInverse(a, inv, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res > 1e-13 {
		t.Fatalf("residual %g", res)
	}
	if d := matrix.MaxAbsDiff(refined, inv); d > 1e-12 {
		t.Fatalf("refinement moved a converged inverse by %g", d)
	}
}

func TestRefineInverseShapeErrors(t *testing.T) {
	if _, _, err := RefineInverse(matrix.New(2, 3), matrix.New(2, 2), 1); err == nil {
		t.Fatal("non-square accepted")
	}
	if _, _, err := RefineInverse(matrix.New(2, 2), matrix.New(3, 3), 1); err == nil {
		t.Fatal("mismatched orders accepted")
	}
}

func TestSolveRefined(t *testing.T) {
	n := 32
	a := workload.DiagonallyDominant(n, 703)
	f, err := Decompose(a)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, n)
	for i := range want {
		want[i] = math.Cos(float64(i))
	}
	b, err := matrix.MulVec(a, want)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.SolveRefined(a, b)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i := range want {
		if d := math.Abs(x[i] - want[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-12 {
		t.Fatalf("refined solve error %g", worst)
	}
}
