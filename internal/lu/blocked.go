package lu

import (
	"fmt"
	"math"

	"repro/internal/matrix"
)

// Blocked (right-looking, BLAS-3 style) LU factorization with partial
// pivoting — the single-node analog of the tile LU algorithm the paper
// cites as prior art (Agullo et al., Section 4.2). It produces exactly
// the same factors and pivots as Decompose: panels see the full column
// height, so pivot selection is identical; only the update order changes
// to matrix-matrix operations.
//
// Measured note: with this package's already-contiguous ikj scalar kernel
// the blocked variant does NOT win on this hardware
// (BenchmarkKernelLUDecompose) — the Block() copies outweigh the cache
// reuse. It is kept as the faithful tile-style formulation and as the
// hook for a future SIMD/assembly trailing-update kernel, where the
// BLAS-3 structure is what pays.

// DefaultPanel is the default panel width for DecomposeBlocked.
const DefaultPanel = 48

// DecomposeBlocked computes the pivoted LU factorization with panel width
// bs (bs <= 0 selects DefaultPanel). A is not modified.
func DecomposeBlocked(a *matrix.Dense, bs int) (*Factorization, error) {
	if !a.IsSquare() {
		return nil, fmt.Errorf("lu: DecomposeBlocked %dx%d: %w", a.Rows, a.Cols, ErrNotSquare)
	}
	if bs <= 0 {
		bs = DefaultPanel
	}
	lu := a.Clone()
	n := lu.Rows
	p := matrix.IdentityPerm(n)
	swaps := 0

	for k := 0; k < n; k += bs {
		kend := k + bs
		if kend > n {
			kend = n
		}
		// --- Panel factorization: columns [k, kend) over rows [k, n). ---
		for j := k; j < kend; j++ {
			piv, best := j, math.Abs(lu.At(j, j))
			for r := j + 1; r < n; r++ {
				if v := math.Abs(lu.At(r, j)); v > best {
					piv, best = r, v
				}
			}
			if best < pivotTol {
				return nil, fmt.Errorf("lu: blocked zero pivot at column %d: %w", j, ErrSingular)
			}
			if piv != j {
				swapRows(lu, j, piv)
				p[j], p[piv] = p[piv], p[j]
				swaps++
			}
			inv := 1 / lu.At(j, j)
			for r := j + 1; r < n; r++ {
				lrj := lu.At(r, j) * inv
				lu.Set(r, j, lrj)
				if lrj == 0 {
					continue
				}
				// Update only the remaining panel columns here; the
				// trailing matrix is updated in one BLAS-3 sweep below.
				urow := lu.Row(j)[j+1 : kend]
				rrow := lu.Row(r)[j+1 : kend]
				for c, uv := range urow {
					rrow[c] -= lrj * uv
				}
			}
		}
		if kend == n {
			break
		}
		// --- U12 = L11^-1 A12 (unit forward substitution). ---
		for j := k + 1; j < kend; j++ {
			ljRow := lu.Row(j)[k:j]
			target := lu.Row(j)[kend:]
			for t, ljt := range ljRow {
				if ljt == 0 {
					continue
				}
				src := lu.Row(k + t)[kend:]
				for c := range target {
					target[c] -= ljt * src[c]
				}
			}
		}
		// --- Trailing update: A22 -= L21 * U12 (BLAS-3). ---
		l21 := lu.Block(kend, n, k, kend)
		u12 := lu.Block(k, kend, kend, n)
		prod, err := matrix.MulBlocked(l21, u12, 0)
		if err != nil {
			return nil, err
		}
		for i := kend; i < n; i++ {
			row := lu.Row(i)[kend:]
			prow := prod.Row(i - kend)
			for c := range row {
				row[c] -= prow[c]
			}
		}
	}
	return &Factorization{LU: lu, P: p, swaps: swaps}, nil
}

// InvertBlocked is Invert using the blocked factorization kernel.
func InvertBlocked(a *matrix.Dense, bs int) (*matrix.Dense, error) {
	f, err := DecomposeBlocked(a, bs)
	if err != nil {
		return nil, err
	}
	return f.Inverse()
}
