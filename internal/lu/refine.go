package lu

import (
	"fmt"

	"repro/internal/matrix"
)

// Iterative refinement of a computed inverse — the natural follow-up to
// the paper's Section 7.2 accuracy check. Newton-Schulz iteration
//
//	X' = X (2I - A X)
//
// converges quadratically to A^-1 whenever ||I - A X|| < 1 in any
// submultiplicative norm, so one or two sweeps repair the accuracy a long
// distributed pipeline loses on ill-conditioned inputs.

// RefineInverse improves an approximate inverse x of a. It iterates until
// the identity residual stops improving or maxIter sweeps have run, and
// returns the refined inverse with its final residual.
func RefineInverse(a, x *matrix.Dense, maxIter int) (*matrix.Dense, float64, error) {
	if !a.IsSquare() || !x.IsSquare() || a.Rows != x.Rows {
		return nil, 0, fmt.Errorf("lu: RefineInverse shapes %dx%d vs %dx%d: %w", a.Rows, a.Cols, x.Rows, x.Cols, ErrNotSquare)
	}
	if maxIter < 1 {
		maxIter = 2
	}
	n := a.Rows
	cur := x.Clone()
	res, err := matrix.IdentityResidual(a, cur)
	if err != nil {
		return nil, 0, err
	}
	for iter := 0; iter < maxIter; iter++ {
		if res == 0 {
			break
		}
		// R = 2I - A X
		ax, err := matrix.Mul(a, cur)
		if err != nil {
			return nil, 0, err
		}
		r := matrix.Scale(-1, ax)
		for i := 0; i < n; i++ {
			r.Set(i, i, r.At(i, i)+2)
		}
		next, err := matrix.Mul(cur, r)
		if err != nil {
			return nil, 0, err
		}
		nextRes, err := matrix.IdentityResidual(a, next)
		if err != nil {
			return nil, 0, err
		}
		if nextRes >= res {
			break // stagnated at working precision
		}
		cur, res = next, nextRes
	}
	return cur, res, nil
}

// SolveRefined solves A x = b with one step of classical iterative
// refinement: solve, compute the residual r = b - A x in working
// precision, solve the correction, and add it.
func (f *Factorization) SolveRefined(a *matrix.Dense, b []float64) ([]float64, error) {
	x, err := f.SolveVec(b)
	if err != nil {
		return nil, err
	}
	ax, err := matrix.MulVec(a, x)
	if err != nil {
		return nil, err
	}
	r := make([]float64, len(b))
	for i := range r {
		r[i] = b[i] - ax[i]
	}
	d, err := f.SolveVec(r)
	if err != nil {
		return nil, err
	}
	for i := range x {
		x[i] += d[i]
	}
	return x, nil
}
