package lu

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
	"repro/internal/workload"
)

func TestDecomposeReconstructsPA(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 16, 33, 64} {
		a := workload.Random(n, int64(n))
		f, err := Decompose(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		lu, err := matrix.Mul(f.L(), f.U())
		if err != nil {
			t.Fatal(err)
		}
		pa := f.P.ApplyRows(a)
		if d := matrix.MaxAbsDiff(lu, pa); d > 1e-10 {
			t.Fatalf("n=%d: max|LU - PA| = %g", n, d)
		}
	}
}

func TestDecomposeNotSquare(t *testing.T) {
	_, err := Decompose(matrix.New(2, 3))
	if !errors.Is(err, ErrNotSquare) {
		t.Fatalf("err = %v", err)
	}
}

func TestDecomposeSingular(t *testing.T) {
	// Two identical rows.
	a := matrix.FromRows([][]float64{{1, 2}, {1, 2}})
	if _, err := Decompose(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v", err)
	}
	// All-zero matrix.
	if _, err := Decompose(matrix.New(3, 3)); !errors.Is(err, ErrSingular) {
		t.Fatal("zero matrix accepted")
	}
}

func TestPivotingSelectsMaxElement(t *testing.T) {
	// Without pivoting this matrix has a tiny leading pivot; with partial
	// pivoting the factorization stays accurate.
	a := matrix.FromRows([][]float64{
		{1e-14, 1},
		{1, 1},
	})
	f, err := Decompose(a)
	if err != nil {
		t.Fatal(err)
	}
	if f.P[0] != 1 {
		t.Fatalf("pivot did not swap: P = %v", f.P)
	}
	inv, err := f.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	res, err := matrix.IdentityResidual(a, inv)
	if err != nil {
		t.Fatal(err)
	}
	if res > 1e-12 {
		t.Fatalf("residual = %g", res)
	}
}

func TestLUnitDiagonal(t *testing.T) {
	a := workload.Random(10, 99)
	f, err := Decompose(a)
	if err != nil {
		t.Fatal(err)
	}
	l := f.L()
	for i := 0; i < 10; i++ {
		if l.At(i, i) != 1 {
			t.Fatalf("L[%d][%d] = %v, want 1", i, i, l.At(i, i))
		}
		for j := i + 1; j < 10; j++ {
			if l.At(i, j) != 0 {
				t.Fatal("L has entries above diagonal")
			}
		}
	}
	u := f.U()
	for i := 1; i < 10; i++ {
		for j := 0; j < i; j++ {
			if u.At(i, j) != 0 {
				t.Fatal("U has entries below diagonal")
			}
		}
	}
}

func TestDet(t *testing.T) {
	a := matrix.FromRows([][]float64{{4, 3}, {6, 3}})
	f, err := Decompose(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); math.Abs(d-(-6)) > 1e-12 {
		t.Fatalf("det = %v, want -6", d)
	}
	// det of identity is 1 regardless of order.
	f2, _ := Decompose(matrix.Identity(7))
	if d := f2.Det(); math.Abs(d-1) > 1e-12 {
		t.Fatalf("det(I) = %v", d)
	}
}

func TestSolveVec(t *testing.T) {
	a := workload.DiagonallyDominant(24, 5)
	f, err := Decompose(a)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, 24)
	for i := range want {
		want[i] = float64(i) - 11.5
	}
	b, err := matrix.MulVec(a, want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.SolveVec(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("x[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := f.SolveVec(make([]float64, 3)); err == nil {
		t.Fatal("short rhs accepted")
	}
}

func TestSolveMatrixRHS(t *testing.T) {
	a := workload.DiagonallyDominant(12, 6)
	f, err := Decompose(a)
	if err != nil {
		t.Fatal(err)
	}
	x := workload.RandomRect(12, 4, 7)
	b, err := matrix.Mul(a, x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(got, x); d > 1e-9 {
		t.Fatalf("Solve residual %g", d)
	}
	if _, err := f.Solve(matrix.New(3, 3)); err == nil {
		t.Fatal("wrong-shape rhs accepted")
	}
}

func TestInverseResidual(t *testing.T) {
	for _, n := range []int{1, 2, 4, 10, 32, 100} {
		a := workload.Random(n, int64(100+n))
		inv, err := Invert(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		res, err := matrix.IdentityResidual(a, inv)
		if err != nil {
			t.Fatal(err)
		}
		// The paper's Section 7.2 criterion at much larger scale is 1e-5;
		// at our orders double precision does far better.
		if res > 1e-8 {
			t.Fatalf("n=%d: residual %g", n, res)
		}
		// Also the left inverse: A^-1 A = I.
		res2, err := matrix.IdentityResidual(inv, a)
		if err != nil {
			t.Fatal(err)
		}
		if res2 > 1e-8 {
			t.Fatalf("n=%d: left residual %g", n, res2)
		}
	}
}

func TestInvertTridiagonalClosedForm(t *testing.T) {
	n := 40
	inv, err := Invert(workload.Tridiagonal(n))
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(inv, workload.TridiagonalInverse(n)); d > 1e-9 {
		t.Fatalf("closed-form mismatch %g", d)
	}
}

func TestInvertIdentityAndDiagonal(t *testing.T) {
	inv, err := Invert(matrix.Identity(9))
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(inv, matrix.Identity(9), 1e-14) {
		t.Fatal("I^-1 != I")
	}
	d := matrix.New(3, 3)
	d.Set(0, 0, 2)
	d.Set(1, 1, -4)
	d.Set(2, 2, 0.5)
	inv, err = Invert(d)
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.New(3, 3)
	want.Set(0, 0, 0.5)
	want.Set(1, 1, -0.25)
	want.Set(2, 2, 2)
	if !matrix.Equal(inv, want, 1e-14) {
		t.Fatalf("diag inverse = %v", inv)
	}
}

func TestLowerInverse(t *testing.T) {
	l := matrix.FromRows([][]float64{
		{2, 0, 0},
		{1, 3, 0},
		{4, 5, 6},
	})
	inv := LowerInverse(l, false)
	prod, _ := matrix.Mul(l, inv)
	if d := matrix.MaxAbsDiff(prod, matrix.Identity(3)); d > 1e-14 {
		t.Fatalf("L L^-1 residual %g", d)
	}
	// Result must be lower triangular.
	if inv.At(0, 1) != 0 || inv.At(0, 2) != 0 || inv.At(1, 2) != 0 {
		t.Fatal("inverse of lower triangular not lower triangular")
	}
}

func TestLowerInverseUnitDiagonal(t *testing.T) {
	// With unitDiagonal, stored diagonal values must be ignored — this is
	// how the combined LU storage is interpreted.
	l := matrix.FromRows([][]float64{
		{42, 0},
		{3, 42},
	})
	inv := LowerInverse(l, true)
	want := matrix.FromRows([][]float64{
		{1, 0},
		{-3, 1},
	})
	if !matrix.Equal(inv, want, 1e-14) {
		t.Fatalf("unit-diag inverse = %v", inv)
	}
}

func TestUpperInverse(t *testing.T) {
	u := matrix.FromRows([][]float64{
		{2, 7, -1},
		{0, 3, 4},
		{0, 0, 5},
	})
	inv, err := UpperInverse(u)
	if err != nil {
		t.Fatal(err)
	}
	prod, _ := matrix.Mul(u, inv)
	if d := matrix.MaxAbsDiff(prod, matrix.Identity(3)); d > 1e-14 {
		t.Fatalf("U U^-1 residual %g", d)
	}
	if inv.At(1, 0) != 0 || inv.At(2, 0) != 0 || inv.At(2, 1) != 0 {
		t.Fatal("inverse of upper triangular not upper triangular")
	}
}

func TestUpperInverseSingular(t *testing.T) {
	u := matrix.FromRows([][]float64{{1, 2}, {0, 0}})
	if _, err := UpperInverse(u); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v", err)
	}
}

func TestInvertLowerColumnIndependence(t *testing.T) {
	// Computing columns in any order must give the same matrix — the
	// property that makes the triangular inversion job partitionable.
	l := workload.DiagonallyDominant(20, 8)
	// Zero the upper triangle so l is lower triangular.
	for i := 0; i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			l.Set(i, j, 0)
		}
	}
	seq := LowerInverse(l, false)
	scattered := matrix.New(20, 20)
	for _, j := range []int{19, 3, 0, 11, 7, 15, 1, 2, 4, 5, 6, 8, 9, 10, 12, 13, 14, 16, 17, 18} {
		InvertLowerColumn(l, j, false, scattered)
	}
	if !matrix.Equal(seq, scattered, 0) {
		t.Fatal("column order affected result")
	}
}

func TestInverseOfInverse(t *testing.T) {
	a := workload.DiagonallyDominant(16, 9)
	inv, err := Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Invert(inv)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(back, a); d > 1e-8 {
		t.Fatalf("(A^-1)^-1 differs from A by %g", d)
	}
}

// Property: for random diagonally-dominant matrices, PA = LU holds and the
// inverse satisfies the residual criterion.
func TestQuickDecomposeInvert(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%24) + 1
		a := workload.DiagonallyDominant(n, seed)
		fac, err := Decompose(a)
		if err != nil {
			return false
		}
		lu, err := matrix.Mul(fac.L(), fac.U())
		if err != nil {
			return false
		}
		if matrix.MaxAbsDiff(lu, fac.P.ApplyRows(a)) > 1e-9 {
			return false
		}
		inv, err := fac.Inverse()
		if err != nil {
			return false
		}
		res, err := matrix.IdentityResidual(a, inv)
		return err == nil && res < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: det(A)*det(A^-1) == 1.
func TestQuickDetInverse(t *testing.T) {
	f := func(seed int64) bool {
		a := workload.DiagonallyDominant(8, seed)
		fa, err := Decompose(a)
		if err != nil {
			return false
		}
		inv, err := fa.Inverse()
		if err != nil {
			return false
		}
		fi, err := Decompose(inv)
		if err != nil {
			return false
		}
		return math.Abs(fa.Det()*fi.Det()-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
