package lu

import (
	"errors"
	"testing"

	"repro/internal/matrix"
	"repro/internal/workload"
)

// lowerFrom extracts a well-conditioned lower triangular matrix from a
// diagonally dominant source.
func lowerFrom(n int, seed int64, unit bool) *matrix.Dense {
	l := workload.DiagonallyDominant(n, seed)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			l.Set(i, j, 0)
		}
		if unit {
			l.Set(i, i, 1)
		}
	}
	return l
}

func upperFrom(n int, seed int64) *matrix.Dense {
	return lowerFrom(n, seed, false).Transpose()
}

func TestForwardSubstMatrix(t *testing.T) {
	n := 20
	l := lowerFrom(n, 61, false)
	x := workload.RandomRect(n, 7, 62)
	b, err := matrix.Mul(l, x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ForwardSubstMatrix(l, b, false)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(got, x); d > 1e-9 {
		t.Fatalf("residual %g", d)
	}
}

func TestForwardSubstMatrixUnitDiagonal(t *testing.T) {
	n := 16
	l := lowerFrom(n, 63, true)
	x := workload.RandomRect(n, 5, 64)
	b, _ := matrix.Mul(l, x)
	// Scribble on the stored diagonal; unitDiagonal must ignore it.
	for i := 0; i < n; i++ {
		l.Set(i, i, 1234)
	}
	got, err := ForwardSubstMatrix(l, b, true)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(got, x); d > 1e-9 {
		t.Fatalf("residual %g", d)
	}
}

func TestForwardSubstMatrixErrors(t *testing.T) {
	if _, err := ForwardSubstMatrix(matrix.New(2, 3), matrix.New(2, 2), false); err == nil {
		t.Fatal("non-square L accepted")
	}
	if _, err := ForwardSubstMatrix(matrix.New(3, 3), matrix.New(2, 2), false); err == nil {
		t.Fatal("mismatched B accepted")
	}
	zero := matrix.New(2, 2)
	if _, err := ForwardSubstMatrix(zero, matrix.New(2, 2), false); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v", err)
	}
}

func TestSolveRowsUpper(t *testing.T) {
	n := 18
	u := upperFrom(n, 65)
	x := workload.RandomRect(6, n, 66)
	b, err := matrix.Mul(x, u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SolveRowsUpper(u, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(got, x); d > 1e-9 {
		t.Fatalf("residual %g", d)
	}
}

func TestSolveRowsUpperTransAgrees(t *testing.T) {
	n := 14
	u := upperFrom(n, 67)
	x := workload.RandomRect(4, n, 68)
	b, _ := matrix.Mul(x, u)
	want, err := SolveRowsUpper(u, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SolveRowsUpperTrans(u.Transpose(), b)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(got, want); d > 1e-12 {
		t.Fatalf("transposed kernel differs by %g", d)
	}
}

func TestSolveRowsUpperErrors(t *testing.T) {
	if _, err := SolveRowsUpper(matrix.New(3, 3), matrix.New(2, 2)); err == nil {
		t.Fatal("mismatched shapes accepted")
	}
	sing := matrix.FromRows([][]float64{{1, 2}, {0, 0}})
	if _, err := SolveRowsUpper(sing, matrix.New(2, 2)); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v", err)
	}
	if _, err := SolveRowsUpperTrans(sing.Transpose(), matrix.New(2, 2)); !errors.Is(err, ErrSingular) {
		t.Fatalf("trans err = %v", err)
	}
}

// TestEquation6RoundTrip ties the solves back to the block decomposition:
// starting from a random A split in quadrants, L2' and U2 computed by the
// solves satisfy Equation 5 exactly.
func TestEquation6RoundTrip(t *testing.T) {
	n, h := 24, 12
	a := workload.DiagonallyDominant(n, 69)
	a1 := a.Block(0, h, 0, h)
	a2 := a.Block(0, h, h, n)
	a3 := a.Block(h, n, 0, h)

	f, err := Decompose(a1)
	if err != nil {
		t.Fatal(err)
	}
	l1, u1 := f.L(), f.U()

	// U2 from L1 U2 = P1 A2.
	u2, err := ForwardSubstMatrix(l1, f.P.ApplyRows(a2), true)
	if err != nil {
		t.Fatal(err)
	}
	lhs, _ := matrix.Mul(l1, u2)
	if d := matrix.MaxAbsDiff(lhs, f.P.ApplyRows(a2)); d > 1e-10 {
		t.Fatalf("L1 U2 != P1 A2 by %g", d)
	}

	// L2' from L2' U1 = A3.
	l2p, err := SolveRowsUpper(u1, a3)
	if err != nil {
		t.Fatal(err)
	}
	lhs2, _ := matrix.Mul(l2p, u1)
	if d := matrix.MaxAbsDiff(lhs2, a3); d > 1e-10 {
		t.Fatalf("L2' U1 != A3 by %g", d)
	}
}
