package lu

import (
	"math"
	"testing"

	"repro/internal/matrix"
	"repro/internal/workload"
)

func TestGrowthFactorModestForRandom(t *testing.T) {
	// Partial pivoting keeps growth small on random inputs (~n^(2/3)).
	for _, n := range []int{16, 64, 128} {
		g, err := GrowthFactor(workload.Random(n, int64(n)))
		if err != nil {
			t.Fatal(err)
		}
		if g < 1 || g > 100 {
			t.Fatalf("n=%d: growth factor %g out of the expected modest range", n, g)
		}
	}
}

func TestGrowthFactorWilkinsonWorstCase(t *testing.T) {
	// The Wilkinson matrix (1 on diagonal, -1 below, 1 in last column)
	// achieves the 2^(n-1) worst case under partial pivoting.
	n := 20
	w := matrix.New(n, n)
	for i := 0; i < n; i++ {
		w.Set(i, i, 1)
		w.Set(i, n-1, 1)
		for j := 0; j < i; j++ {
			w.Set(i, j, -1)
		}
	}
	g, err := GrowthFactor(w)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(2, float64(n-1))
	if math.Abs(g-want)/want > 1e-9 {
		t.Fatalf("Wilkinson growth = %g, want 2^%d = %g", g, n-1, want)
	}
}

func TestBackwardErrorNearEps(t *testing.T) {
	a := workload.Random(100, 500)
	inv, err := Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	be, err := BackwardError(a, inv)
	if err != nil {
		t.Fatal(err)
	}
	// Backward stability: within a few orders of magnitude of eps, far
	// below 1e-10.
	if be > 1e-12 {
		t.Fatalf("backward error %g too large", be)
	}
}

func TestHilbertConditionExplodes(t *testing.T) {
	// The Hilbert matrix's condition number grows exponentially; measured
	// residuals degrade proportionally, exactly the behaviour a stability
	// investigation must surface.
	k6, err := ConditionInf(workload.Hilbert(6))
	if err != nil {
		t.Fatal(err)
	}
	k10, err := ConditionInf(workload.Hilbert(10))
	if err != nil {
		t.Fatal(err)
	}
	if k6 < 1e6 || k10 < 1e12 {
		t.Fatalf("Hilbert conditions too small: k6=%g k10=%g", k6, k10)
	}
	if k10 < 1e4*k6 {
		t.Fatalf("condition growth too slow: k6=%g k10=%g", k6, k10)
	}
}

func TestResidualTracksConditionBound(t *testing.T) {
	// The measured identity residual should stay within a moderate factor
	// of the first-order bound kappa*eps for well- and mid-conditioned
	// inputs.
	for _, src := range []struct {
		name string
		m    *matrix.Dense
	}{
		{"random", workload.Random(64, 600)},
		{"diagdom", workload.DiagonallyDominant(64, 601)},
		{"hilbert6", workload.Hilbert(6)},
	} {
		inv, err := Invert(src.m)
		if err != nil {
			t.Fatal(err)
		}
		res, err := matrix.IdentityResidual(src.m, inv)
		if err != nil {
			t.Fatal(err)
		}
		kappa, err := ConditionInf(src.m)
		if err != nil {
			t.Fatal(err)
		}
		bound := ForwardErrorBound(kappa)
		// Allow three orders of slack over the first-order bound.
		if res > 1e3*bound+1e-14 {
			t.Fatalf("%s: residual %g exceeds 1e3 * bound %g", src.name, res, bound)
		}
	}
}

func TestBackwardErrorShapeMismatch(t *testing.T) {
	if _, err := BackwardError(matrix.New(2, 2), matrix.New(3, 3)); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestGrowthFactorZeroMatrixAndSingular(t *testing.T) {
	if _, err := GrowthFactor(matrix.New(3, 3)); err == nil {
		t.Fatal("singular matrix accepted")
	}
}
