package matrix

import (
	"math/rand"
	"strings"
	"testing"
)

func randDense(rng *rand.Rand, r, c int) *Dense {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewZeroInitialized(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("dims = %dx%d, want 3x4", m.Rows, m.Cols)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestNewFromData(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	m := NewFromData(2, 3, d)
	if m.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v, want 6", m.At(1, 2))
	}
	m.Set(0, 0, 42)
	if d[0] != 42 {
		t.Fatal("NewFromData must wrap, not copy")
	}
}

func TestNewFromDataPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFromData(2, 3, []float64{1})
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("dims = %dx%d", m.Rows, m.Cols)
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %v", m.At(2, 1))
	}
	if got := FromRows(nil); got.Rows != 0 || got.Cols != 0 {
		t.Fatalf("FromRows(nil) = %dx%d", got.Rows, got.Cols)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1.0
			}
			if id.At(i, j) != want {
				t.Fatalf("I[%d][%d] = %v", i, j, id.At(i, j))
			}
		}
	}
}

func TestAtSetBounds(t *testing.T) {
	m := New(2, 2)
	for _, tc := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("At(%d,%d) did not panic", tc[0], tc[1])
				}
			}()
			m.At(tc[0], tc[1])
		}()
	}
}

func TestRowIsView(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(1)
	r[0] = 99
	if m.At(1, 0) != 99 {
		t.Fatal("Row must alias backing storage")
	}
}

func TestColIsCopy(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Col(0)
	if c[0] != 1 || c[1] != 3 {
		t.Fatalf("Col(0) = %v", c)
	}
	c[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("Col must copy")
	}
}

func TestClone(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 77)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestBlockAndSetBlock(t *testing.T) {
	m := FromRows([][]float64{
		{1, 2, 3, 4},
		{5, 6, 7, 8},
		{9, 10, 11, 12},
		{13, 14, 15, 16},
	})
	b := m.Block(1, 3, 2, 4)
	want := FromRows([][]float64{{7, 8}, {11, 12}})
	if !Equal(b, want, 0) {
		t.Fatalf("Block = %v", b)
	}
	// Mutating the block must not touch the parent (Block copies).
	b.Set(0, 0, -1)
	if m.At(1, 2) != 7 {
		t.Fatal("Block must copy")
	}

	m.SetBlock(0, 0, want)
	if m.At(0, 0) != 7 || m.At(1, 1) != 12 {
		t.Fatalf("SetBlock result:\n%v", m)
	}
}

func TestBlockRoundTripsWholeMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randDense(rng, 7, 5)
	// Partition into quadrants the way Figure 1 splits A, then reassemble.
	h, w := 3, 2
	a1 := m.Block(0, h, 0, w)
	a2 := m.Block(0, h, w, m.Cols)
	a3 := m.Block(h, m.Rows, 0, w)
	a4 := m.Block(h, m.Rows, w, m.Cols)
	re := New(m.Rows, m.Cols)
	re.SetBlock(0, 0, a1)
	re.SetBlock(0, w, a2)
	re.SetBlock(h, 0, a3)
	re.SetBlock(h, w, a4)
	if !Equal(m, re, 0) {
		t.Fatal("quadrant partition + reassembly must be lossless")
	}
}

func TestBlockBoundsPanic(t *testing.T) {
	m := New(3, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Block(0, 4, 0, 1)
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.Transpose()
	if mt.Rows != 3 || mt.Cols != 2 {
		t.Fatalf("dims %dx%d", mt.Rows, mt.Cols)
	}
	if mt.At(2, 1) != 6 || mt.At(0, 1) != 4 {
		t.Fatalf("transpose wrong:\n%v", mt)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randDense(rng, 9, 4)
	if !Equal(m, m.Transpose().Transpose(), 0) {
		t.Fatal("(A^T)^T != A")
	}
}

func TestFillAndApply(t *testing.T) {
	m := New(2, 2)
	m.Fill(3)
	if m.At(1, 1) != 3 {
		t.Fatal("Fill failed")
	}
	m.Apply(func(i, j int, v float64) float64 { return v + float64(i*10+j) })
	if m.At(1, 1) != 14 {
		t.Fatalf("Apply failed: %v", m.At(1, 1))
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := FromRows([][]float64{{1, 2}, {3, 4}})
	if s := small.String(); !strings.Contains(s, "1") || !strings.Contains(s, "4") {
		t.Fatalf("String() = %q", s)
	}
	large := New(20, 20)
	if s := large.String(); !strings.Contains(s, "20x20") {
		t.Fatalf("large String() = %q", s)
	}
}

func TestIsSquareDims(t *testing.T) {
	m := New(3, 4)
	if m.IsSquare() {
		t.Fatal("3x4 reported square")
	}
	r, c := m.Dims()
	if r != 3 || c != 4 {
		t.Fatalf("Dims = %d,%d", r, c)
	}
	if !New(5, 5).IsSquare() {
		t.Fatal("5x5 not square")
	}
}
