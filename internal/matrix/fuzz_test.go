package matrix

import (
	"bytes"
	"testing"
)

// Native fuzz targets for the three on-disk codecs. Under plain `go test`
// these run the seed corpus; `go test -fuzz=FuzzReadBinary ./internal/matrix`
// explores further. The invariant in each: arbitrary input must never
// panic, and when parsing succeeds the value must re-encode and re-parse
// to the same matrix.

func FuzzReadText(f *testing.F) {
	f.Add("1 2\n3 4\n")
	f.Add("")
	f.Add("1.5e308 -0\n")
	f.Add("nan inf\n")
	f.Add("x y\n")
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ReadText(bytes.NewReader([]byte(s)))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, m); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if again.Rows != m.Rows || again.Cols != m.Cols {
			t.Fatalf("round-trip changed shape: %dx%d vs %dx%d", again.Rows, again.Cols, m.Rows, m.Cols)
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteBinary(&seed, FromRows([][]float64{{1, 2}, {3, 4}}))
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x36, 0x52, 0x58, 0x4d, 1, 0, 0, 0, 1, 0, 0, 0}) // header, no payload
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, m); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if !Equal(again, m, 0) && IsFinite(m) {
			t.Fatal("round-trip changed finite values")
		}
	})
}

func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n")
	f.Add("%%MatrixMarket matrix array real general\n% c\n1 1\n1\n")
	f.Add("junk")
	f.Add("%%MatrixMarket matrix array real general\n-1 -1\n")
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ReadMatrixMarket(bytes.NewReader([]byte(s)))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, m); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if _, err := ReadMatrixMarket(&buf); err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
	})
}
