package matrix

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestAddSub(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{10, 20}, {30, 40}})
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(sum, FromRows([][]float64{{11, 22}, {33, 44}}), 0) {
		t.Fatalf("Add = %v", sum)
	}
	diff, err := Sub(sum, b)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(diff, a, 0) {
		t.Fatalf("Sub = %v", diff)
	}
}

func TestAddShapeError(t *testing.T) {
	_, err := Add(New(2, 2), New(2, 3))
	if !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
	_, err = Sub(New(1, 2), New(2, 2))
	if !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestSubInPlace(t *testing.T) {
	a := FromRows([][]float64{{5, 6}, {7, 8}})
	b := FromRows([][]float64{{1, 1}, {1, 1}})
	if err := SubInPlace(a, b); err != nil {
		t.Fatal(err)
	}
	if !Equal(a, FromRows([][]float64{{4, 5}, {6, 7}}), 0) {
		t.Fatalf("SubInPlace = %v", a)
	}
	if err := SubInPlace(a, New(3, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v", err)
	}
}

func TestScale(t *testing.T) {
	a := FromRows([][]float64{{1, -2}})
	s := Scale(-3, a)
	if !Equal(s, FromRows([][]float64{{-3, 6}}), 0) {
		t.Fatalf("Scale = %v", s)
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	y, err := MulVec(a, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MulVec = %v", y)
	}
	if _, err := MulVec(a, []float64{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v", err)
	}
}

func TestDotAndVecNorm2(t *testing.T) {
	if d := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); d != 32 {
		t.Fatalf("Dot = %v", d)
	}
	if n := VecNorm2([]float64{3, 4}); n != 5 {
		t.Fatalf("VecNorm2 = %v", n)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Dot length mismatch must panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestEqualTolerance(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{1.0005, 2}})
	if Equal(a, b, 1e-4) {
		t.Fatal("should differ at tol 1e-4")
	}
	if !Equal(a, b, 1e-3) {
		t.Fatal("should match at tol 1e-3")
	}
	if Equal(a, New(1, 3), 1) {
		t.Fatal("different shapes must not be equal")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{1, 2.5}, {3, 4}})
	if d := MaxAbsDiff(a, b); d != 0.5 {
		t.Fatalf("MaxAbsDiff = %v", d)
	}
	if d := MaxAbsDiff(a, New(1, 1)); !math.IsInf(d, 1) {
		t.Fatalf("shape mismatch diff = %v", d)
	}
}

func TestIsFinite(t *testing.T) {
	m := New(2, 2)
	if !IsFinite(m) {
		t.Fatal("zero matrix must be finite")
	}
	m.Set(0, 1, math.NaN())
	if IsFinite(m) {
		t.Fatal("NaN not detected")
	}
	m.Set(0, 1, math.Inf(-1))
	if IsFinite(m) {
		t.Fatal("Inf not detected")
	}
}

func TestIdentityResidual(t *testing.T) {
	a := FromRows([][]float64{{2, 0}, {0, 4}})
	ainv := FromRows([][]float64{{0.5, 0}, {0, 0.25}})
	res, err := IdentityResidual(a, ainv)
	if err != nil {
		t.Fatal(err)
	}
	if res != 0 {
		t.Fatalf("residual = %v", res)
	}
	// A wrong inverse must show a visible residual.
	res, err = IdentityResidual(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if res < 1 {
		t.Fatalf("residual for wrong inverse = %v", res)
	}
	if _, err := IdentityResidual(a, New(3, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v", err)
	}
}

func TestAddCommutesAndAssociates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b, c := randDense(rng, 6, 6), randDense(rng, 6, 6), randDense(rng, 6, 6)
	ab, _ := Add(a, b)
	ba, _ := Add(b, a)
	if !Equal(ab, ba, 0) {
		t.Fatal("A+B != B+A")
	}
	abc1, _ := Add(ab, c)
	bc, _ := Add(b, c)
	abc2, _ := Add(a, bc)
	if !Equal(abc1, abc2, 1e-12) {
		t.Fatal("(A+B)+C != A+(B+C)")
	}
}
