package matrix

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// The on-disk formats mirror the paper's Table 3: a text format ("a.txt",
// one matrix row per line, space-separated decimal values) and a binary
// format (little-endian float64, 8 bytes/element plus a small header).

// WriteText writes m in the text format: each row on its own line, elements
// separated by single spaces, formatted with %.17g so values round-trip.
func WriteText(w io.Writer, m *Dense) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			if j > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', 17, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the text format. Every line must contain the same number
// of values; blank lines are ignored.
func ReadText(r io.Reader) (*Dense, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var rows [][]float64
	cols := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if cols == -1 {
			cols = len(fields)
		} else if len(fields) != cols {
			return nil, fmt.Errorf("matrix: ReadText line %d has %d values, want %d", lineNo, len(fields), cols)
		}
		row := make([]float64, len(fields))
		for j, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("matrix: ReadText line %d field %d: %w", lineNo, j, err)
			}
			row[j] = v
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return FromRows(rows), nil
}

// binaryMagic identifies the binary matrix format.
const binaryMagic = uint32(0x4d585236) // "MXR6"

// WriteBinary writes m in the binary format: magic, rows, cols (uint32 LE)
// followed by rows*cols little-endian float64 values in row-major order.
func WriteBinary(w io.Writer, m *Dense) error {
	bw := bufio.NewWriter(w)
	hdr := []uint32{binaryMagic, uint32(m.Rows), uint32(m.Cols)}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	buf := make([]byte, 8)
	for _, v := range m.Data {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ErrTooLarge reports a binary matrix whose encoded size exceeds the
// limit passed to ReadBinaryLimit. It is returned before any element
// storage is allocated, so callers reading untrusted input can bound
// memory by the limit alone.
var ErrTooLarge = errors.New("matrix: encoded size exceeds limit")

// ReadBinary parses the binary format written by WriteBinary. The input
// is trusted: dimensions are taken from the header (capped only at the
// format's 1<<24 bound each). For untrusted readers use ReadBinaryLimit.
func ReadBinary(r io.Reader) (*Dense, error) {
	return ReadBinaryLimit(r, 0)
}

// ReadBinaryLimit parses the binary format, rejecting any matrix whose
// total encoded size (header plus payload, per BinarySize) exceeds
// maxBytes with ErrTooLarge. The check runs before element storage is
// allocated: the header's dimensions are untrusted, so a hostile
// 12-byte request cannot demand a rows*cols*8 allocation larger than
// the caller's bound. maxBytes <= 0 means no limit beyond the format's
// own dimension cap.
func ReadBinaryLimit(r io.Reader, maxBytes int64) (*Dense, error) {
	br := bufio.NewReader(r)
	var magic, rows, cols uint32
	for _, p := range []*uint32{&magic, &rows, &cols} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("matrix: ReadBinary header: %w", err)
		}
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("matrix: ReadBinary bad magic %#x", magic)
	}
	if rows > 1<<24 || cols > 1<<24 {
		return nil, fmt.Errorf("matrix: ReadBinary implausible dims %dx%d", rows, cols)
	}
	if maxBytes > 0 && BinarySize(int(rows), int(cols)) > maxBytes {
		return nil, fmt.Errorf("matrix: ReadBinary %dx%d needs %d bytes, limit %d: %w",
			rows, cols, BinarySize(int(rows), int(cols)), maxBytes, ErrTooLarge)
	}
	m := New(int(rows), int(cols))
	buf := make([]byte, 8)
	for i := range m.Data {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("matrix: ReadBinary element %d: %w", i, err)
		}
		m.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	}
	return m, nil
}

// BinarySize returns the exact byte size of an r x c matrix in the binary
// format. Used for Table 3 style size reporting.
func BinarySize(r, c int) int64 { return 12 + 8*int64(r)*int64(c) }

// TextSizeEstimate estimates the byte size of an r x c random matrix in the
// text format, assuming the paper's ~20 characters per element (Table 3
// shows text ≈ 2.5x binary for double precision values).
func TextSizeEstimate(r, c int) int64 { return 20 * int64(r) * int64(c) }
