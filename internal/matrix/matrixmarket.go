package matrix

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// MatrixMarket array-format I/O, for interoperability with the standard
// test-matrix collections (NIST Matrix Market / SuiteSparse). Only the
// dense ("array") real general format is supported — the natural exchange
// format for the dense inversion workloads this repository targets.

const mmHeader = "%%MatrixMarket matrix array real general"

// WriteMatrixMarket writes m in MatrixMarket array format: the header
// line, a dimension line, then column-major values one per line.
func WriteMatrixMarket(w io.Writer, m *Dense) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s\n%d %d\n", mmHeader, m.Rows, m.Cols); err != nil {
		return err
	}
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < m.Rows; i++ {
			if _, err := bw.WriteString(strconv.FormatFloat(m.At(i, j), 'g', 17, 64)); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a dense real general MatrixMarket stream.
func ReadMatrixMarket(r io.Reader) (*Dense, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)

	// Header.
	if !sc.Scan() {
		return nil, fmt.Errorf("matrix: MatrixMarket: empty input")
	}
	header := strings.ToLower(strings.Join(strings.Fields(sc.Text()), " "))
	if !strings.HasPrefix(header, "%%matrixmarket") {
		return nil, fmt.Errorf("matrix: MatrixMarket: bad header %q", sc.Text())
	}
	for _, want := range []string{"matrix", "array", "real", "general"} {
		if !strings.Contains(header, want) {
			return nil, fmt.Errorf("matrix: MatrixMarket: unsupported format %q (need array real general)", sc.Text())
		}
	}

	// Dimension line (comments skipped).
	var rows, cols int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscanf(line, "%d %d", &rows, &cols); err != nil {
			return nil, fmt.Errorf("matrix: MatrixMarket: bad size line %q: %v", line, err)
		}
		break
	}
	if rows < 0 || cols < 0 || rows > 1<<24 || cols > 1<<24 {
		return nil, fmt.Errorf("matrix: MatrixMarket: implausible dims %dx%d", rows, cols)
	}

	m := New(rows, cols)
	// Values, column-major.
	idx := 0
	total := rows * cols
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		for _, field := range strings.Fields(line) {
			if idx >= total {
				return nil, fmt.Errorf("matrix: MatrixMarket: more than %d values", total)
			}
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("matrix: MatrixMarket value %d: %v", idx, err)
			}
			m.Set(idx%rows, idx/rows, v)
			idx++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if idx != total {
		return nil, fmt.Errorf("matrix: MatrixMarket: %d of %d values present", idx, total)
	}
	return m, nil
}
