package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormsKnownValues(t *testing.T) {
	m := FromRows([][]float64{{1, -2}, {-3, 4}})
	if got := NormFrobenius(m); math.Abs(got-math.Sqrt(30)) > 1e-15 {
		t.Fatalf("Frobenius = %v", got)
	}
	if got := NormInf(m); got != 7 {
		t.Fatalf("Inf = %v", got)
	}
	if got := NormOne(m); got != 6 {
		t.Fatalf("One = %v", got)
	}
	if got := MaxAbs(m); got != 4 {
		t.Fatalf("MaxAbs = %v", got)
	}
}

func TestTrace(t *testing.T) {
	m := FromRows([][]float64{{1, 9}, {9, 2}})
	if got := Trace(m); got != 3 {
		t.Fatalf("Trace = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Trace of non-square must panic")
		}
	}()
	Trace(New(2, 3))
}

func TestNormOneIsInfOfTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := randDense(rng, 8, 5)
	if math.Abs(NormOne(m)-NormInf(m.Transpose())) > 1e-12 {
		t.Fatal("||A||_1 != ||A^T||_inf")
	}
}

func TestConditionEstimate(t *testing.T) {
	a := FromRows([][]float64{{2, 0}, {0, 0.5}})
	ainv := FromRows([][]float64{{0.5, 0}, {0, 2}})
	if got := ConditionEstimateInf(a, ainv); got != 4 {
		t.Fatalf("cond = %v", got)
	}
}

// Property: norms are absolutely homogeneous, ||sA|| = |s| ||A||.
func TestQuickNormHomogeneity(t *testing.T) {
	f := func(seed int64, sRaw int8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randDense(rng, 6, 6)
		s := float64(sRaw) / 8
		sm := Scale(s, m)
		abs := math.Abs(s)
		ok := func(x, y float64) bool { return math.Abs(x-y) <= 1e-9*(1+math.Abs(y)) }
		return ok(NormFrobenius(sm), abs*NormFrobenius(m)) &&
			ok(NormInf(sm), abs*NormInf(m)) &&
			ok(NormOne(sm), abs*NormOne(m))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: triangle inequality on the Frobenius norm.
func TestQuickTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randDense(rng, 5, 7)
		b := randDense(rng, 5, 7)
		sum, err := Add(a, b)
		if err != nil {
			return false
		}
		return NormFrobenius(sum) <= NormFrobenius(a)+NormFrobenius(b)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: submultiplicativity ||AB||_F <= ||A||_F ||B||_F.
func TestQuickFrobeniusSubmultiplicative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randDense(rng, 4, 6)
		b := randDense(rng, 6, 3)
		ab, err := Mul(a, b)
		if err != nil {
			return false
		}
		return NormFrobenius(ab) <= NormFrobenius(a)*NormFrobenius(b)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
