package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSignKnownPerms(t *testing.T) {
	cases := []struct {
		p    Perm
		want int
	}{
		{Perm{0}, 1},
		{Perm{0, 1, 2}, 1},
		{Perm{1, 0}, -1},
		{Perm{1, 0, 2}, -1},
		{Perm{1, 2, 0}, 1},  // 3-cycle: even
		{Perm{2, 1, 0}, -1}, // one transposition
		{Perm{1, 0, 3, 2}, 1},
	}
	for _, c := range cases {
		if got := c.p.Sign(); got != c.want {
			t.Errorf("Sign(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestSignMatchesDeterminantOfPermMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 20; trial++ {
		p := Perm(rng.Perm(8))
		// Compute det of P by cofactor-free method: count inversions.
		inversions := 0
		for i := 0; i < len(p); i++ {
			for j := i + 1; j < len(p); j++ {
				if p[i] > p[j] {
					inversions++
				}
			}
		}
		want := 1
		if inversions%2 == 1 {
			want = -1
		}
		if got := p.Sign(); got != want {
			t.Fatalf("Sign(%v) = %d, inversion parity says %d", p, got, want)
		}
	}
}

// Property: sign is a homomorphism, sign(p∘q) = sign(p)·sign(q).
func TestQuickSignHomomorphism(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%10) + 2
		rng := rand.New(rand.NewSource(seed))
		p := Perm(rng.Perm(n))
		q := Perm(rng.Perm(n))
		return p.Compose(q).Sign() == p.Sign()*q.Sign()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
