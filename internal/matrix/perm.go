package matrix

import "fmt"

// Perm is a row permutation stored compactly as the paper's array S
// (Section 4.1): a permutation matrix P has exactly one 1 per row and
// column, so it is represented by p where row i of P*A is row p[i] of A.
type Perm []int

// IdentityPerm returns the identity permutation of order n.
func IdentityPerm(n int) Perm {
	p := make(Perm, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// IsValid reports whether p is a bijection on [0, len(p)).
func (p Perm) IsValid() bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Clone returns a copy of p.
func (p Perm) Clone() Perm {
	out := make(Perm, len(p))
	copy(out, p)
	return out
}

// Inverse returns q with q[p[i]] = i, the inverse permutation.
func (p Perm) Inverse() Perm {
	out := make(Perm, len(p))
	for i, v := range p {
		out[v] = i
	}
	return out
}

// Compose returns the permutation r = p∘q, meaning r[i] = q[p[i]]:
// applying r permutes like applying q first... — concretely, if
// B = ApplyRows(q, A) and C = ApplyRows(p, B), then C = ApplyRows(r, A).
func (p Perm) Compose(q Perm) Perm {
	if len(p) != len(q) {
		panic(fmt.Sprintf("matrix: Compose length mismatch %d vs %d", len(p), len(q)))
	}
	out := make(Perm, len(p))
	for i := range p {
		out[i] = q[p[i]]
	}
	return out
}

// Matrix returns the explicit permutation matrix P with P*A == ApplyRows.
func (p Perm) Matrix() *Dense {
	n := len(p)
	m := New(n, n)
	for i, v := range p {
		m.Set(i, v, 1)
	}
	return m
}

// ApplyRows returns P*A: row i of the result is row p[i] of a.
func (p Perm) ApplyRows(a *Dense) *Dense {
	if len(p) != a.Rows {
		panic(fmt.Sprintf("matrix: ApplyRows order %d vs %d rows", len(p), a.Rows))
	}
	out := New(a.Rows, a.Cols)
	for i, src := range p {
		copy(out.Row(i), a.Row(src))
	}
	return out
}

// ApplyCols returns A*P: column j of the result is column p[j] of a. This is
// the final pipeline step U^-1 L^-1 P of the paper (Section 4.1): pivoting
// during decomposition is undone by permuting the columns of U^-1 L^-1.
func (p Perm) ApplyCols(a *Dense) *Dense {
	if len(p) != a.Cols {
		panic(fmt.Sprintf("matrix: ApplyCols order %d vs %d cols", len(p), a.Cols))
	}
	out := New(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		src := a.Row(i)
		dst := out.Row(i)
		for j, pj := range p {
			dst[pj] = src[j]
		}
	}
	return out
}

// Sign returns the permutation's parity: +1 for even, -1 for odd. It is
// det(P) for the corresponding permutation matrix.
func (p Perm) Sign() int {
	seen := make([]bool, len(p))
	sign := 1
	for i := range p {
		if seen[i] {
			continue
		}
		// Walk the cycle containing i; a cycle of length L contributes
		// (-1)^(L-1).
		length := 0
		for j := i; !seen[j]; j = p[j] {
			seen[j] = true
			length++
		}
		if length%2 == 0 {
			sign = -sign
		}
	}
	return sign
}

// Shift returns the permutation acting on rows [off, off+len(p)) of a larger
// matrix: each entry is increased by off. Used when augmenting P1 and P2 of
// the block decomposition (Algorithm 2, line 11).
func (p Perm) Shift(off int) Perm {
	out := make(Perm, len(p))
	for i, v := range p {
		out[i] = v + off
	}
	return out
}

// Augment builds the block-diagonal permutation diag(p, q) of the paper's
// "P is obtained by augmenting P1 and P2" step: p acts on the first len(p)
// rows, q on the remaining rows.
func Augment(p, q Perm) Perm {
	out := make(Perm, 0, len(p)+len(q))
	out = append(out, p...)
	out = append(out, q.Shift(len(p))...)
	return out
}
