package matrix

import (
	"errors"
	"math/rand"
	"testing"
)

func TestMulKnownProduct(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !Equal(got, want, 0) {
		t.Fatalf("Mul =\n%v", got)
	}
}

func TestMulShapeError(t *testing.T) {
	_, err := Mul(New(2, 3), New(2, 3))
	if !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v", err)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randDense(rng, 12, 12)
	id := Identity(12)
	left, _ := Mul(id, a)
	right, _ := Mul(a, id)
	if !Equal(left, a, 0) || !Equal(right, a, 0) {
		t.Fatal("identity must be neutral")
	}
}

func TestMulVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randDense(rng, 17, 9)
	b := randDense(rng, 9, 13)
	want, _ := MulNaiveColumnOrder(a, b)

	got, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, want, 1e-12) {
		t.Fatal("Mul disagrees with naive kernel")
	}

	gotPar, err := MulParallel(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(gotPar, want, 1e-12) {
		t.Fatal("MulParallel disagrees with naive kernel")
	}

	gotT, err := MulTransB(a, b.Transpose())
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(gotT, want, 1e-12) {
		t.Fatal("MulTransB disagrees with naive kernel")
	}
}

func TestMulBlockedAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randDense(rng, 33, 29)
	b := randDense(rng, 29, 41)
	want, _ := Mul(a, b)
	for _, tile := range []int{1, 4, 16, 64, 1000, 0, -1} {
		got, err := MulBlocked(a, b, tile)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(got, want, 1e-12) {
			t.Fatalf("tile=%d disagrees", tile)
		}
	}
	if _, err := MulBlocked(New(2, 3), New(2, 3), 8); !errors.Is(err, ErrShape) {
		t.Fatal("shape mismatch accepted")
	}
}

func TestMulTransBShapeError(t *testing.T) {
	// a is 2x3, bT must have Cols == 3.
	_, err := MulTransB(New(2, 3), New(4, 2))
	if !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v", err)
	}
}

func TestMulParallelShapeError(t *testing.T) {
	_, err := MulParallel(New(2, 3), New(2, 3))
	if !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v", err)
	}
}

func TestMulAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randDense(rng, 8, 6)
	b := randDense(rng, 6, 7)
	c := randDense(rng, 7, 5)
	ab, _ := Mul(a, b)
	abc1, _ := Mul(ab, c)
	bc, _ := Mul(b, c)
	abc2, _ := Mul(a, bc)
	if !Equal(abc1, abc2, 1e-10) {
		t.Fatal("(AB)C != A(BC)")
	}
}

func TestMulTransposeRule(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randDense(rng, 5, 8)
	b := randDense(rng, 8, 4)
	ab, _ := Mul(a, b)
	btat, _ := Mul(b.Transpose(), a.Transpose())
	if !Equal(ab.Transpose(), btat, 1e-12) {
		t.Fatal("(AB)^T != B^T A^T")
	}
}

func TestMulZeroDimensions(t *testing.T) {
	// 0-dim edges must not panic and must produce consistent shapes.
	got, err := Mul(New(0, 4), New(4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != 0 || got.Cols != 3 {
		t.Fatalf("dims %dx%d", got.Rows, got.Cols)
	}
	got, err = Mul(New(2, 0), New(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != 2 || got.Cols != 3 || MaxAbs(got) != 0 {
		t.Fatalf("empty-inner product wrong: %v", got)
	}
}

func TestMulParallelSingleRow(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randDense(rng, 1, 64)
	b := randDense(rng, 64, 3)
	want, _ := Mul(a, b)
	got, err := MulParallel(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, want, 1e-13) {
		t.Fatal("single-row parallel product wrong")
	}
}
