package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randPerm(rng *rand.Rand, n int) Perm {
	return Perm(rng.Perm(n))
}

func TestIdentityPerm(t *testing.T) {
	p := IdentityPerm(5)
	if !p.IsValid() {
		t.Fatal("identity perm invalid")
	}
	m := FromRows([][]float64{{1}, {2}, {3}, {4}, {5}})
	if !Equal(p.ApplyRows(m), m, 0) {
		t.Fatal("identity perm must not move rows")
	}
}

func TestPermIsValid(t *testing.T) {
	if !(Perm{2, 0, 1}).IsValid() {
		t.Fatal("valid perm rejected")
	}
	for _, bad := range []Perm{{0, 0, 1}, {0, 1, 3}, {-1, 0, 1}} {
		if bad.IsValid() {
			t.Fatalf("invalid perm %v accepted", bad)
		}
	}
}

func TestPermInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := randPerm(rng, 16)
	inv := p.Inverse()
	comp := p.Compose(inv)
	for i, v := range comp {
		if v != i {
			t.Fatalf("p∘p⁻¹ not identity at %d: %v", i, comp)
		}
	}
}

func TestPermComposeMatchesSequentialApply(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	p := randPerm(rng, 10)
	q := randPerm(rng, 10)
	a := randDense(rng, 10, 4)
	// Compose doc: C = ApplyRows(p, ApplyRows(q, A)) = ApplyRows(p.Compose(q), A).
	seq := p.ApplyRows(q.ApplyRows(a))
	once := p.Compose(q).ApplyRows(a)
	if !Equal(seq, once, 0) {
		t.Fatal("Compose disagrees with sequential application")
	}
}

func TestPermMatrixAgreesWithApplyRows(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := randPerm(rng, 9)
	a := randDense(rng, 9, 9)
	viaMatrix, err := Mul(p.Matrix(), a)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(viaMatrix, p.ApplyRows(a), 0) {
		t.Fatal("P*A != ApplyRows(P, A)")
	}
}

func TestPermApplyColsAgreesWithMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	p := randPerm(rng, 8)
	a := randDense(rng, 6, 8)
	viaMatrix, err := Mul(a, p.Matrix())
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(viaMatrix, p.ApplyCols(a), 0) {
		t.Fatal("A*P != ApplyCols(P, A)")
	}
}

// TestPermPivotUndo verifies the paper's Section 4.1 claim: if PA = LU then
// A^-1 = U^-1 L^-1 P. With X = U^-1 L^-1 = (PA)^-1 the claim is the pure
// permutation identity (X·P)·A == X·(P·A): column-permuting X by P
// (ApplyCols) composes with row-pivoting A by P (ApplyRows).
func TestPermPivotUndo(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	p := randPerm(rng, 7)
	x := randDense(rng, 7, 7)
	a := randDense(rng, 7, 7)
	left, _ := Mul(p.ApplyCols(x), a)
	right, _ := Mul(x, p.ApplyRows(a))
	if !Equal(left, right, 1e-12) {
		t.Fatal("(XP)A != X(PA) for permutation P")
	}
}

func TestAugment(t *testing.T) {
	p := Perm{1, 0}
	q := Perm{2, 0, 1}
	aug := Augment(p, q)
	want := Perm{1, 0, 4, 2, 3}
	if len(aug) != 5 {
		t.Fatalf("len = %d", len(aug))
	}
	for i := range want {
		if aug[i] != want[i] {
			t.Fatalf("Augment = %v, want %v", aug, want)
		}
	}
	if !aug.IsValid() {
		t.Fatal("augmented perm invalid")
	}
}

func TestShift(t *testing.T) {
	p := Perm{1, 0}
	s := p.Shift(3)
	if s[0] != 4 || s[1] != 3 {
		t.Fatalf("Shift = %v", s)
	}
}

func TestCloneIndependent(t *testing.T) {
	p := Perm{1, 0, 2}
	c := p.Clone()
	c[0] = 2
	if p[0] != 1 {
		t.Fatal("Clone must copy")
	}
}

// Property: inverse of inverse is the original, for arbitrary sizes.
func TestQuickPermInverseInvolution(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%32) + 1
		p := randPerm(rand.New(rand.NewSource(seed)), n)
		inv2 := p.Inverse().Inverse()
		for i := range p {
			if p[i] != inv2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Augment of two valid perms is always a valid perm.
func TestQuickAugmentValid(t *testing.T) {
	f := func(seed int64, aRaw, bRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randPerm(rng, int(aRaw%16)+1)
		q := randPerm(rng, int(bRaw%16)+1)
		return Augment(p, q).IsValid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
