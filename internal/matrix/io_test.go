package matrix

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTextRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	m := randDense(rng, 13, 7)
	var buf bytes.Buffer
	if err := WriteText(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, m, 0) {
		t.Fatal("text round-trip not exact")
	}
}

func TestTextRoundTripExtremeValues(t *testing.T) {
	m := FromRows([][]float64{
		{0, -0, 1e-308, -1e308},
		{math.Pi, 1.0 / 3.0, math.SmallestNonzeroFloat64, math.MaxFloat64},
	})
	var buf bytes.Buffer
	if err := WriteText(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, m, 0) {
		t.Fatal("extreme values must round-trip exactly through 17-digit formatting")
	}
}

func TestReadTextErrors(t *testing.T) {
	if _, err := ReadText(strings.NewReader("1 2\n3\n")); err == nil {
		t.Fatal("ragged input accepted")
	}
	if _, err := ReadText(strings.NewReader("1 x\n")); err == nil {
		t.Fatal("non-numeric input accepted")
	}
}

func TestReadTextSkipsBlankLines(t *testing.T) {
	m, err := ReadText(strings.NewReader("1 2\n\n3 4\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 2 || m.At(1, 1) != 4 {
		t.Fatalf("parsed %v", m)
	}
}

func TestReadTextEmpty(t *testing.T) {
	m, err := ReadText(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 0 || m.Cols != 0 {
		t.Fatalf("empty input gave %dx%d", m.Rows, m.Cols)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	m := randDense(rng, 9, 17)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != BinarySize(9, 17) {
		t.Fatalf("binary size = %d, want %d", buf.Len(), BinarySize(9, 17))
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, m, 0) {
		t.Fatal("binary round-trip not exact")
	}
}

func TestReadBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte{1, 2, 3, 4, 0, 0, 0, 0, 0, 0, 0, 0})); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReadBinaryLimit(t *testing.T) {
	// A hostile 12-byte header claiming huge dimensions must be rejected
	// by the size check alone, before any element storage is allocated.
	hdr := func(rows, cols uint32) []byte {
		var buf bytes.Buffer
		for _, v := range []uint32{binaryMagic, rows, cols} {
			b := make([]byte, 4)
			binary.LittleEndian.PutUint32(b, v)
			buf.Write(b)
		}
		return buf.Bytes()
	}
	_, err := ReadBinaryLimit(bytes.NewReader(hdr(1<<24, 1<<24)), 64<<20)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("2 PiB claim under a 64 MiB limit: err = %v, want ErrTooLarge", err)
	}

	// A matrix exactly at the limit still round-trips.
	rng := rand.New(rand.NewSource(34))
	m := randDense(rng, 6, 6)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinaryLimit(bytes.NewReader(buf.Bytes()), BinarySize(6, 6))
	if err != nil {
		t.Fatalf("exact-size limit rejected: %v", err)
	}
	if !Equal(got, m, 0) {
		t.Fatal("limited read not exact")
	}
	// One byte under the encoded size must reject.
	if _, err := ReadBinaryLimit(bytes.NewReader(buf.Bytes()), BinarySize(6, 6)-1); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("undersized limit: err = %v, want ErrTooLarge", err)
	}
}

func TestReadBinaryTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	m := randDense(rng, 4, 4)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestSizeEstimates(t *testing.T) {
	// Table 3 sanity: binary is 8 bytes/element, text roughly 2.5x that.
	if BinarySize(1000, 1000) != 12+8_000_000 {
		t.Fatalf("BinarySize = %d", BinarySize(1000, 1000))
	}
	if TextSizeEstimate(1000, 1000) <= BinarySize(1000, 1000) {
		t.Fatal("text estimate should exceed binary size")
	}
}

// Property: write/read composition is the identity for both codecs.
func TestQuickIORoundTrip(t *testing.T) {
	f := func(seed int64, rRaw, cRaw uint8) bool {
		r := int(rRaw%12) + 1
		c := int(cRaw%12) + 1
		m := randDense(rand.New(rand.NewSource(seed)), r, c)
		var tb, bb bytes.Buffer
		if WriteText(&tb, m) != nil || WriteBinary(&bb, m) != nil {
			return false
		}
		fromText, err1 := ReadText(&tb)
		fromBin, err2 := ReadBinary(&bb)
		return err1 == nil && err2 == nil && Equal(fromText, m, 0) && Equal(fromBin, m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
