// Package matrix provides the dense matrix substrate used throughout the
// repository: a row-major float64 matrix type, arithmetic kernels,
// permutations, norms, and the text/binary on-disk formats used by the
// MapReduce matrix-inversion pipeline.
//
// The package corresponds to the numerical groundwork of Xiang, Meng and
// Aboulnaga, "Scalable Matrix Inversion Using MapReduce" (HPDC 2014): all
// higher layers (single-node LU, the block-LU MapReduce pipeline, and the
// ScaLAPACK-style baseline) operate on matrix.Dense values.
package matrix

import (
	"errors"
	"fmt"
)

// ErrShape is returned (wrapped) when operand dimensions are incompatible.
var ErrShape = errors.New("matrix: incompatible shapes")

// Dense is a dense, row-major matrix of float64 values.
//
// The element at row i, column j (both 0-based) is stored at
// Data[i*Cols+j]. Rows and Cols are always non-negative; Data has length
// Rows*Cols. The zero value is an empty 0x0 matrix ready to use.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zero-initialized r x c matrix.
// It panics if r or c is negative.
func New(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewFromData wraps the given backing slice as an r x c matrix without
// copying. It panics if len(data) != r*c.
func NewFromData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("matrix: data length %d does not match %dx%d", len(data), r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: data}
}

// FromRows builds a matrix from a slice of equal-length rows, copying the
// values. It panics if the rows are ragged.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("matrix: ragged row %d (len %d, want %d)", i, len(row), c))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns the element at row i, column j. Bounds are checked by the
// underlying slice access in conjunction with the column check.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns v to the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Row returns the i-th row as a subslice of the backing array (not a copy).
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("matrix: row %d out of range %d", i, m.Rows))
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Col returns a copy of the j-th column.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("matrix: col %d out of range %d", j, m.Cols))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// IsSquare reports whether m has the same number of rows and columns.
func (m *Dense) IsSquare() bool { return m.Rows == m.Cols }

// Dims returns the row and column counts.
func (m *Dense) Dims() (r, c int) { return m.Rows, m.Cols }

// Block returns a copy of the submatrix [r0, r1) x [c0, c1), following the
// paper's [A][x1...x2][y1...y2] half-open block notation (Section 2).
func (m *Dense) Block(r0, r1, c0, c1 int) *Dense {
	if r0 < 0 || c0 < 0 || r1 > m.Rows || c1 > m.Cols || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("matrix: block [%d:%d,%d:%d] out of range %dx%d", r0, r1, c0, c1, m.Rows, m.Cols))
	}
	out := New(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(out.Row(i-r0), m.Data[i*m.Cols+c0:i*m.Cols+c1])
	}
	return out
}

// SetBlock copies src into m starting at row r0, column c0.
// It panics if src does not fit.
func (m *Dense) SetBlock(r0, c0 int, src *Dense) {
	if r0 < 0 || c0 < 0 || r0+src.Rows > m.Rows || c0+src.Cols > m.Cols {
		panic(fmt.Sprintf("matrix: SetBlock %dx%d at (%d,%d) out of range %dx%d",
			src.Rows, src.Cols, r0, c0, m.Rows, m.Cols))
	}
	for i := 0; i < src.Rows; i++ {
		copy(m.Data[(r0+i)*m.Cols+c0:(r0+i)*m.Cols+c0+src.Cols], src.Row(i))
	}
}

// Transpose returns a newly allocated transpose of m.
func (m *Dense) Transpose() *Dense {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*out.Cols+i] = v
		}
	}
	return out
}

// Fill sets every element of m to v.
func (m *Dense) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Apply replaces each element with f(i, j, element).
func (m *Dense) Apply(f func(i, j int, v float64) float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = f(i, j, row[j])
		}
	}
}

// String renders small matrices fully and large matrices as a summary.
func (m *Dense) String() string {
	const maxRender = 8
	if m.Rows > maxRender || m.Cols > maxRender {
		return fmt.Sprintf("Dense{%dx%d}", m.Rows, m.Cols)
	}
	s := ""
	for i := 0; i < m.Rows; i++ {
		s += "["
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.6g", m.At(i, j))
		}
		s += "]"
		if i != m.Rows-1 {
			s += "\n"
		}
	}
	return s
}

// shapeErr builds a wrapped ErrShape with context.
func shapeErr(op string, a, b *Dense) error {
	return fmt.Errorf("%s: %dx%d vs %dx%d: %w", op, a.Rows, a.Cols, b.Rows, b.Cols, ErrShape)
}
