package matrix

import (
	"runtime"
	"sync"
)

// Mul returns the matrix product a*b using a cache-friendly kernel.
//
// The inner kernel iterates a row of a against rows of b (i-k-j order), so b
// is accessed row-major — the same access-pattern argument the paper makes
// for storing U transposed (Section 6.3).
func Mul(a, b *Dense) (*Dense, error) {
	if a.Cols != b.Rows {
		return nil, shapeErr("matrix: Mul", a, b)
	}
	out := New(a.Rows, b.Cols)
	mulInto(out, a, b, 0, a.Rows)
	return out, nil
}

// mulInto computes rows [r0, r1) of out = a*b.
func mulInto(out, a, b *Dense, r0, r1 int) {
	n, p := a.Cols, b.Cols
	for i := r0; i < r1; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < n; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Data[k*p : (k+1)*p]
			for j, bv := range brow {
				orow[j] += aik * bv
			}
		}
	}
}

// MulTransB returns a * bT.Transpose(), i.e. the product of a with the
// transpose of bT, without materializing the transpose. This is the paper's
// Equation 8 kernel: when U is stored transposed, [L'2 U2]ij reduces to a
// dot product of two rows, avoiding strided column walks (Section 6.3).
func MulTransB(a, bT *Dense) (*Dense, error) {
	if a.Cols != bT.Cols {
		return nil, shapeErr("matrix: MulTransB", a, bT)
	}
	out := New(a.Rows, bT.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < bT.Rows; j++ {
			orow[j] = Dot(arow, bT.Row(j))
		}
	}
	return out, nil
}

// MulNaiveColumnOrder multiplies with the textbook i-j-k loop that walks b
// by column. It exists as the unoptimized comparator for the Section 6.3
// transposed-storage optimization; production code should use Mul or
// MulTransB.
func MulNaiveColumnOrder(a, b *Dense) (*Dense, error) {
	if a.Cols != b.Rows {
		return nil, shapeErr("matrix: MulNaiveColumnOrder", a, b)
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.Data[i*a.Cols+k] * b.Data[k*b.Cols+j]
			}
			out.Data[i*out.Cols+j] = s
		}
	}
	return out, nil
}

// DefaultTile is the cache-blocking tile edge for MulBlocked: 64x64
// float64 tiles (32 KiB per operand tile) fit comfortably in L1/L2.
const DefaultTile = 64

// MulBlocked returns a*b with classic cache blocking: the iteration space
// is walked in tile x tile blocks so each operand tile stays resident
// while it is reused — the single-node analog of the paper's block-wrap
// distribution argument (Section 6.2 cites Dackland et al.'s block LU
// kernels). tile <= 0 selects DefaultTile.
func MulBlocked(a, b *Dense, tile int) (*Dense, error) {
	if a.Cols != b.Rows {
		return nil, shapeErr("matrix: MulBlocked", a, b)
	}
	if tile <= 0 {
		tile = DefaultTile
	}
	out := New(a.Rows, b.Cols)
	n, p := a.Cols, b.Cols
	for i0 := 0; i0 < a.Rows; i0 += tile {
		i1 := minT(i0+tile, a.Rows)
		for k0 := 0; k0 < n; k0 += tile {
			k1 := minT(k0+tile, n)
			for j0 := 0; j0 < p; j0 += tile {
				j1 := minT(j0+tile, p)
				for i := i0; i < i1; i++ {
					arow := a.Row(i)
					orow := out.Row(i)
					for k := k0; k < k1; k++ {
						aik := arow[k]
						if aik == 0 {
							continue
						}
						brow := b.Data[k*p : (k+1)*p]
						for j := j0; j < j1; j++ {
							orow[j] += aik * brow[j]
						}
					}
				}
			}
		}
	}
	return out, nil
}

func minT(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// MulParallel returns a*b computing disjoint row bands concurrently, one
// goroutine per available CPU (capped at the row count).
func MulParallel(a, b *Dense) (*Dense, error) {
	if a.Cols != b.Rows {
		return nil, shapeErr("matrix: MulParallel", a, b)
	}
	out := New(a.Rows, b.Cols)
	workers := runtime.GOMAXPROCS(0)
	if workers > a.Rows {
		workers = a.Rows
	}
	if workers <= 1 {
		mulInto(out, a, b, 0, a.Rows)
		return out, nil
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		r0 := w * a.Rows / workers
		r1 := (w + 1) * a.Rows / workers
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			mulInto(out, a, b, r0, r1)
		}(r0, r1)
	}
	wg.Wait()
	return out, nil
}
