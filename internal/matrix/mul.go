package matrix

import (
	"fmt"
	"runtime"
	"sync"
)

// Mul returns the matrix product a*b using a cache-friendly kernel.
//
// The inner kernel iterates a row of a against rows of b (i-k-j order), so b
// is accessed row-major — the same access-pattern argument the paper makes
// for storing U transposed (Section 6.3).
func Mul(a, b *Dense) (*Dense, error) {
	if a.Cols != b.Rows {
		return nil, shapeErr("matrix: Mul", a, b)
	}
	out := New(a.Rows, b.Cols)
	mulInto(out, a, b, 0, a.Rows)
	return out, nil
}

// mulInto computes rows [r0, r1) of out = a*b.
func mulInto(out, a, b *Dense, r0, r1 int) {
	n, p := a.Cols, b.Cols
	for i := r0; i < r1; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < n; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Data[k*p : (k+1)*p]
			for j, bv := range brow {
				orow[j] += aik * bv
			}
		}
	}
}

// MulTransB returns a * bT.Transpose(), i.e. the product of a with the
// transpose of bT, without materializing the transpose. This is the paper's
// Equation 8 kernel: when U is stored transposed, [L'2 U2]ij reduces to a
// dot product of two rows, avoiding strided column walks (Section 6.3).
func MulTransB(a, bT *Dense) (*Dense, error) {
	if a.Cols != bT.Cols {
		return nil, shapeErr("matrix: MulTransB", a, bT)
	}
	out := New(a.Rows, bT.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < bT.Rows; j++ {
			orow[j] = Dot(arow, bT.Row(j))
		}
	}
	return out, nil
}

// MulAddTransB accumulates dst += a * bT.Transpose() with the same
// row-dot kernel as MulTransB. It is the accumulation step of the
// multi-round multiply strategies: each round adds one inner-dimension
// segment's partial product into the running block, and because every
// segment's dot product is formed exactly as MulTransB forms it, the
// distributed accumulation is bit-identical to MulSegTransB's sequential
// left fold.
func MulAddTransB(dst, a, bT *Dense) error {
	if a.Cols != bT.Cols {
		return shapeErr("matrix: MulAddTransB", a, bT)
	}
	if dst.Rows != a.Rows || dst.Cols != bT.Rows {
		return shapeErr("matrix: MulAddTransB dst", dst, a)
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < bT.Rows; j++ {
			drow[j] += Dot(arow, bT.Row(j))
		}
	}
	return nil
}

// MulSegTransB is the sequential reference for the multi-round multiply
// strategies: a * bT.Transpose() computed one inner-dimension segment at
// a time, accumulating segments in ascending order (a left fold). bounds
// holds the segment edges, bounds[0] = 0 and bounds[len-1] = a.Cols.
// With a single segment the result is bit-identical to MulTransB; with
// more, floating-point non-associativity makes the segmented fold the
// ground truth the distributed strategies must match bit for bit.
func MulSegTransB(a, bT *Dense, bounds []int) (*Dense, error) {
	if a.Cols != bT.Cols {
		return nil, shapeErr("matrix: MulSegTransB", a, bT)
	}
	if len(bounds) < 2 || bounds[0] != 0 || bounds[len(bounds)-1] != a.Cols {
		return nil, fmt.Errorf("matrix: MulSegTransB: bad segment bounds %v for inner dim %d", bounds, a.Cols)
	}
	out := New(a.Rows, bT.Rows)
	for s := 0; s+1 < len(bounds); s++ {
		k0, k1 := bounds[s], bounds[s+1]
		if k1 < k0 {
			return nil, fmt.Errorf("matrix: MulSegTransB: descending segment bounds %v", bounds)
		}
		if k0 == k1 {
			continue
		}
		aseg := a.Block(0, a.Rows, k0, k1)
		bseg := bT.Block(0, bT.Rows, k0, k1)
		if err := MulAddTransB(out, aseg, bseg); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// MulNaiveColumnOrder multiplies with the textbook i-j-k loop that walks b
// by column. It exists as the unoptimized comparator for the Section 6.3
// transposed-storage optimization; production code should use Mul or
// MulTransB.
func MulNaiveColumnOrder(a, b *Dense) (*Dense, error) {
	if a.Cols != b.Rows {
		return nil, shapeErr("matrix: MulNaiveColumnOrder", a, b)
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.Data[i*a.Cols+k] * b.Data[k*b.Cols+j]
			}
			out.Data[i*out.Cols+j] = s
		}
	}
	return out, nil
}

// DefaultTile is the cache-blocking tile edge for MulBlocked: 64x64
// float64 tiles (32 KiB per operand tile) fit comfortably in L1/L2.
const DefaultTile = 64

// MulBlocked returns a*b with classic cache blocking: the iteration space
// is walked in tile x tile blocks so each operand tile stays resident
// while it is reused — the single-node analog of the paper's block-wrap
// distribution argument (Section 6.2 cites Dackland et al.'s block LU
// kernels). tile <= 0 selects DefaultTile.
func MulBlocked(a, b *Dense, tile int) (*Dense, error) {
	if a.Cols != b.Rows {
		return nil, shapeErr("matrix: MulBlocked", a, b)
	}
	if tile <= 0 {
		tile = DefaultTile
	}
	out := New(a.Rows, b.Cols)
	n, p := a.Cols, b.Cols
	for i0 := 0; i0 < a.Rows; i0 += tile {
		i1 := minT(i0+tile, a.Rows)
		for k0 := 0; k0 < n; k0 += tile {
			k1 := minT(k0+tile, n)
			for j0 := 0; j0 < p; j0 += tile {
				j1 := minT(j0+tile, p)
				for i := i0; i < i1; i++ {
					arow := a.Row(i)
					orow := out.Row(i)
					for k := k0; k < k1; k++ {
						aik := arow[k]
						if aik == 0 {
							continue
						}
						brow := b.Data[k*p : (k+1)*p]
						for j := j0; j < j1; j++ {
							orow[j] += aik * brow[j]
						}
					}
				}
			}
		}
	}
	return out, nil
}

func minT(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// MulParallel returns a*b computing disjoint row bands concurrently, one
// goroutine per available CPU (capped at the row count).
func MulParallel(a, b *Dense) (*Dense, error) {
	if a.Cols != b.Rows {
		return nil, shapeErr("matrix: MulParallel", a, b)
	}
	out := New(a.Rows, b.Cols)
	workers := runtime.GOMAXPROCS(0)
	if workers > a.Rows {
		workers = a.Rows
	}
	if workers <= 1 {
		mulInto(out, a, b, 0, a.Rows)
		return out, nil
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		r0 := w * a.Rows / workers
		r1 := (w + 1) * a.Rows / workers
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			mulInto(out, a, b, r0, r1)
		}(r0, r1)
	}
	wg.Wait()
	return out, nil
}
