package matrix

import "math"

// Add returns a + b.
func Add(a, b *Dense) (*Dense, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, shapeErr("matrix: Add", a, b)
	}
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v + b.Data[i]
	}
	return out, nil
}

// Sub returns a - b.
func Sub(a, b *Dense) (*Dense, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, shapeErr("matrix: Sub", a, b)
	}
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v - b.Data[i]
	}
	return out, nil
}

// AddInPlace adds b into a, storing the result in a. The multi-round
// multiply sum rounds use it to fold partial products in ascending
// segment order.
func AddInPlace(a, b *Dense) error {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return shapeErr("matrix: AddInPlace", a, b)
	}
	for i, v := range b.Data {
		a.Data[i] += v
	}
	return nil
}

// SubInPlace subtracts b from a, storing the result in a.
func SubInPlace(a, b *Dense) error {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return shapeErr("matrix: SubInPlace", a, b)
	}
	for i, v := range b.Data {
		a.Data[i] -= v
	}
	return nil
}

// Scale returns s * a in a new matrix.
func Scale(s float64, a *Dense) *Dense {
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = s * v
	}
	return out
}

// MulVec returns the matrix-vector product a*x.
func MulVec(a *Dense, x []float64) ([]float64, error) {
	if a.Cols != len(x) {
		return nil, shapeErr("matrix: MulVec", a, &Dense{Rows: len(x), Cols: 1})
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Dot returns the inner product of x and y. It panics if lengths differ.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("matrix: Dot length mismatch")
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// VecNorm2 returns the Euclidean norm of x.
func VecNorm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Equal reports whether a and b have the same shape and all elements within
// tol of each other (absolute difference).
func Equal(a, b *Dense, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute elementwise difference between a
// and b, or +Inf if the shapes differ.
func MaxAbsDiff(a, b *Dense) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return math.Inf(1)
	}
	var m float64
	for i, v := range a.Data {
		if d := math.Abs(v - b.Data[i]); d > m {
			m = d
		}
	}
	return m
}

// IsFinite reports whether every element of m is finite (no NaN or Inf).
func IsFinite(m *Dense) bool {
	for _, v := range m.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// IdentityResidual returns max |I - A*B|, the paper's Section 7.2 acceptance
// metric (every element of I_n - M M^-1 must be small). A and B must be
// square with equal order.
func IdentityResidual(a, b *Dense) (float64, error) {
	if !a.IsSquare() || !b.IsSquare() || a.Rows != b.Rows {
		return 0, shapeErr("matrix: IdentityResidual", a, b)
	}
	prod, err := Mul(a, b)
	if err != nil {
		return 0, err
	}
	n := a.Rows
	var worst float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if i == j {
				want = 1.0
			}
			if d := math.Abs(prod.At(i, j) - want); d > worst {
				worst = d
			}
		}
	}
	return worst, nil
}
