package matrix

import "math"

// NormFrobenius returns the Frobenius norm sqrt(sum a_ij^2).
func NormFrobenius(m *Dense) float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// NormInf returns the infinity norm: the maximum absolute row sum.
func NormInf(m *Dense) float64 {
	var worst float64
	for i := 0; i < m.Rows; i++ {
		var s float64
		for _, v := range m.Row(i) {
			s += math.Abs(v)
		}
		if s > worst {
			worst = s
		}
	}
	return worst
}

// NormOne returns the one norm: the maximum absolute column sum.
func NormOne(m *Dense) float64 {
	sums := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j, v := range m.Row(i) {
			sums[j] += math.Abs(v)
		}
	}
	var worst float64
	for _, s := range sums {
		if s > worst {
			worst = s
		}
	}
	return worst
}

// MaxAbs returns the largest absolute element value.
func MaxAbs(m *Dense) float64 {
	var worst float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > worst {
			worst = a
		}
	}
	return worst
}

// Trace returns the sum of diagonal elements of a square matrix.
func Trace(m *Dense) float64 {
	if !m.IsSquare() {
		panic("matrix: Trace of non-square matrix")
	}
	var s float64
	for i := 0; i < m.Rows; i++ {
		s += m.At(i, i)
	}
	return s
}

// ConditionEstimateInf returns ||A||_inf * ||Ainv||_inf, the infinity-norm
// condition number given a computed inverse. Large values explain loss of
// accuracy in the Section 7.2 residual check.
func ConditionEstimateInf(a, ainv *Dense) float64 {
	return NormInf(a) * NormInf(ainv)
}
