package matrix

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	m := randDense(rng, 7, 5)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "%%MatrixMarket") {
		t.Fatalf("header missing: %q", buf.String()[:40])
	}
	got, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, m, 0) {
		t.Fatal("round-trip not exact")
	}
}

func TestReadMatrixMarketWithComments(t *testing.T) {
	src := `%%MatrixMarket matrix array real general
% a comment
2 2
1
2
3
4
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	// Column-major: first column (1,2), second (3,4).
	want := FromRows([][]float64{{1, 3}, {2, 4}})
	if !Equal(m, want, 0) {
		t.Fatalf("parsed %v", m)
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",
		"not a header\n1 1\n1\n",
		"%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 1\n",
		"%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n", // short
		"%%MatrixMarket matrix array real general\n1 1\n1\n2\n",    // long
		"%%MatrixMarket matrix array real general\nx y\n",
		"%%MatrixMarket matrix array real general\n1 1\nnotanumber\n",
	}
	for i, src := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(src)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestMatrixMarketEmptyMatrix(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, New(0, 0)); err != nil {
		t.Fatal(err)
	}
	m, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 0 || m.Cols != 0 {
		t.Fatalf("dims %dx%d", m.Rows, m.Cols)
	}
}
