// Package gaussjordan implements matrix inversion by Gauss-Jordan
// elimination with partial pivoting — the classical row-elimination method
// described in Section 2 of the HPDC 2014 paper.
//
// The paper rejects this method for MapReduce because its n sequential
// elimination steps would require a pipeline of ~n MapReduce jobs (versus
// ~n/nb for block LU). It is implemented here as an independent
// ground-truth reference for the LU-based inverses and as the sequential
// comparator for the job-count analysis.
package gaussjordan

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/matrix"
)

// ErrSingular is returned when elimination encounters a column with no
// usable pivot.
var ErrSingular = errors.New("gaussjordan: matrix is singular")

// ErrNotSquare is returned for non-square inputs.
var ErrNotSquare = errors.New("gaussjordan: matrix is not square")

const pivotTol = 1e-300

// Invert computes A^-1 via Gauss-Jordan elimination on the augmented matrix
// [A | I], using row switching, row multiplication and row addition exactly
// as Section 2 describes: first reduce the left side to upper triangular
// form (forward phase, with pivoting), then to the identity (backward
// phase), leaving the inverse on the right.
func Invert(a *matrix.Dense) (*matrix.Dense, error) {
	if !a.IsSquare() {
		return nil, fmt.Errorf("gaussjordan: %dx%d: %w", a.Rows, a.Cols, ErrNotSquare)
	}
	n := a.Rows
	// Build the augmented matrix [A | I].
	aug := matrix.New(n, 2*n)
	for i := 0; i < n; i++ {
		copy(aug.Row(i)[:n], a.Row(i))
		aug.Row(i)[n+i] = 1
	}

	// Forward phase: for each column k, pivot, normalize row k, eliminate
	// below (Section 2, "In the k-th step...").
	for k := 0; k < n; k++ {
		piv, best := k, math.Abs(aug.At(k, k))
		for r := k + 1; r < n; r++ {
			if v := math.Abs(aug.At(r, k)); v > best {
				piv, best = r, v
			}
		}
		if best < pivotTol {
			return nil, fmt.Errorf("gaussjordan: zero pivot in column %d: %w", k, ErrSingular)
		}
		if piv != k {
			rk, rp := aug.Row(k), aug.Row(piv)
			for c := range rk {
				rk[c], rp[c] = rp[c], rk[c]
			}
		}
		// Normalize row k so the pivot element becomes 1.
		inv := 1 / aug.At(k, k)
		rk := aug.Row(k)
		for c := k; c < 2*n; c++ {
			rk[c] *= inv
		}
		// Eliminate entries below the pivot.
		for r := k + 1; r < n; r++ {
			f := aug.At(r, k)
			if f == 0 {
				continue
			}
			rr := aug.Row(r)
			for c := k; c < 2*n; c++ {
				rr[c] -= f * rk[c]
			}
		}
	}

	// Backward phase: clear entries above each pivot, converting the upper
	// triangular left side into the identity.
	for k := n - 1; k >= 0; k-- {
		rk := aug.Row(k)
		for r := 0; r < k; r++ {
			f := aug.At(r, k)
			if f == 0 {
				continue
			}
			rr := aug.Row(r)
			for c := k; c < 2*n; c++ {
				rr[c] -= f * rk[c]
			}
		}
	}

	// Extract the right half.
	out := matrix.New(n, n)
	for i := 0; i < n; i++ {
		copy(out.Row(i), aug.Row(i)[n:])
	}
	return out, nil
}

// SequentialSteps returns the number of dependent elimination steps the
// method performs for an order-n matrix: n forward plus n backward. The
// paper's point (Section 2) is that a MapReduce port would need a pipeline
// of this many jobs, versus BlockJobs for block LU.
func SequentialSteps(n int) int { return 2 * n }
