package gaussjordan

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/lu"
	"repro/internal/matrix"
	"repro/internal/workload"
)

func TestInvertResidual(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16, 50} {
		a := workload.Random(n, int64(n)*3)
		inv, err := Invert(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		res, err := matrix.IdentityResidual(a, inv)
		if err != nil {
			t.Fatal(err)
		}
		if res > 1e-8 {
			t.Fatalf("n=%d: residual %g", n, res)
		}
	}
}

func TestInvertAgreesWithLU(t *testing.T) {
	a := workload.Random(30, 77)
	gj, err := Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	viaLU, err := lu.Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(gj, viaLU); d > 1e-8 {
		t.Fatalf("Gauss-Jordan and LU inverses differ by %g", d)
	}
}

func TestInvertErrors(t *testing.T) {
	if _, err := Invert(matrix.New(2, 3)); !errors.Is(err, ErrNotSquare) {
		t.Fatalf("err = %v", err)
	}
	singular := matrix.FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Invert(singular); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v", err)
	}
}

func TestInvertNeedsPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	a := matrix.FromRows([][]float64{{0, 1}, {1, 0}})
	inv, err := Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(inv, a, 1e-14) {
		t.Fatalf("swap matrix is its own inverse, got %v", inv)
	}
}

func TestSequentialSteps(t *testing.T) {
	if SequentialSteps(100) != 200 {
		t.Fatalf("steps = %d", SequentialSteps(100))
	}
}

func TestQuickInverseMatchesLU(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%16) + 1
		a := workload.DiagonallyDominant(n, seed)
		gj, err1 := Invert(a)
		viaLU, err2 := lu.Invert(a)
		return err1 == nil && err2 == nil && matrix.MaxAbsDiff(gj, viaLU) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
