package chaos

import (
	"strings"
	"testing"
	"time"

	"repro/internal/dfs"
)

func TestRandomPlanDeterministic(t *testing.T) {
	cfg := PlanConfig{Nodes: 8, Kills: 3, Horizon: 40, Restart: true, SlowDelay: 50 * time.Millisecond, FetchFailEvery: 3}
	p1 := RandomPlan(7, cfg)
	p2 := RandomPlan(7, cfg)
	if p1.String() != p2.String() {
		t.Fatalf("same seed, different plans:\n%s\nvs\n%s", p1, p2)
	}
	if len(p1.Events) != 3+3+2 { // 3 kills + 3 restarts + slow/heal pair
		t.Fatalf("plan has %d events, want 8:\n%s", len(p1.Events), p1)
	}
	// Kills alternate attempt- and fetch-triggered.
	var kills []Event
	for _, ev := range p1.Events {
		if ev.Kind == Kill {
			kills = append(kills, ev)
		}
	}
	onAttempt, onFetch := 0, 0
	for _, k := range kills {
		switch k.On {
		case OnAttempt:
			onAttempt++
		case OnFetch:
			onFetch++
		}
	}
	if onAttempt == 0 || onFetch == 0 {
		t.Fatalf("kills do not alternate triggers: %v", kills)
	}
	if p3 := RandomPlan(8, cfg); p3.String() == p1.String() {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestKillOnAttemptFailsTriggeringAttempt(t *testing.T) {
	fs := dfs.New(4, 2)
	fs.Write("f", make([]byte, 100))
	plan := Plan{Events: []Event{{Tick: 2, Kind: Kill, On: OnAttempt, Node: VictimCurrent}}}
	eng := New(fs, plan)

	if _, err := eng.AttemptStart("j", 0, 0, 0, true); err != nil {
		t.Fatalf("tick 1 attempt failed early: %v", err)
	}
	// Tick 2: the kill fires against this attempt's node and must fail it.
	if _, err := eng.AttemptStart("j", 1, 0, 3, true); err == nil {
		t.Fatal("attempt on freshly killed node did not fail")
	}
	if eng.NodeAlive(3) {
		t.Fatal("victim still alive")
	}
	if fs.NodeAlive(3) {
		t.Fatal("kill did not propagate to the DFS")
	}
	st := eng.Stats()
	if st.Kills != 1 || st.CrashedAttempts != 1 {
		t.Fatalf("stats = %+v, want 1 kill, 1 crashed attempt", st)
	}
	// Replicas that lived on node 3 were healed onto survivors.
	if err := fs.CheckPlacement(); err != nil {
		t.Fatal(err)
	}
}

func TestKillNeverTakesLastNode(t *testing.T) {
	fs := dfs.New(2, 1)
	plan := Plan{Events: []Event{
		{Tick: 1, Kind: Kill, On: OnAttempt, Node: VictimCurrent},
		{Tick: 2, Kind: Kill, On: OnAttempt, Node: VictimCurrent},
	}}
	eng := New(fs, plan)
	if _, err := eng.AttemptStart("j", 0, 0, 0, true); err == nil {
		t.Fatal("first kill did not fire")
	}
	// The second kill is due but would take the last live node: deferred
	// forever, every later attempt runs unharmed.
	for i := 0; i < 5; i++ {
		if _, err := eng.AttemptStart("j", i, 0, 1, true); err != nil {
			t.Fatalf("attempt on last live node failed: %v", err)
		}
	}
	st := eng.Stats()
	if st.Kills != 1 {
		t.Fatalf("Kills = %d, want 1", st.Kills)
	}
	if !eng.NodeAlive(1) {
		t.Fatal("last node died")
	}
}

func TestKillOnFetchLosesOutputAndRestartRevives(t *testing.T) {
	fs := dfs.New(4, 2)
	plan := Plan{Events: []Event{
		{Tick: 1, Kind: Kill, On: OnFetch, Node: VictimCurrent},
		{Tick: 2, Kind: Restart, On: OnAny, Node: VictimOldestDead},
	}}
	eng := New(fs, plan)
	epoch := eng.NodeEpoch(2)
	// The fetch of an output held by node 2 kills node 2: the fetch errors.
	if err := eng.FetchError("j", 0, 2, 0); err == nil {
		t.Fatal("fetch from freshly killed node succeeded")
	}
	if eng.NodeAlive(2) {
		t.Fatal("fetch-triggered kill did not land")
	}
	// Retries of the same fetch do not advance the clock; they keep failing
	// against the dead node.
	if err := eng.FetchError("j", 0, 2, 1); err == nil {
		t.Fatal("retry against dead node succeeded")
	}
	if eng.NodeAlive(2) {
		t.Fatal("restart fired on a retry (clock advanced without a new fetch)")
	}
	// The next clock advance fires the restart.
	if err := eng.FetchError("j", 1, 0, 0); err != nil {
		t.Fatalf("fetch from healthy node failed: %v", err)
	}
	if !eng.NodeAlive(2) {
		t.Fatal("restart did not revive the node")
	}
	if eng.NodeEpoch(2) == epoch {
		t.Fatal("epoch unchanged across kill+restart — stale outputs would be trusted")
	}
	st := eng.Stats()
	if st.Kills != 1 || st.Restarts != 1 {
		t.Fatalf("stats = %+v, want 1 kill and 1 restart", st)
	}
}

func TestSlowThenHeal(t *testing.T) {
	plan := Plan{Events: []Event{
		{Tick: 1, Kind: Slow, On: OnAttempt, Node: VictimCurrent, Delay: 30 * time.Millisecond},
		{Tick: 2, Kind: Heal, On: OnAny, Node: VictimAll},
	}}
	eng := New(nil, plan)
	d, err := eng.AttemptStart("j", 0, 0, 5, true)
	if err != nil || d != 30*time.Millisecond {
		t.Fatalf("triggering attempt delay = %v, %v; want 30ms", d, err)
	}
	// Next tick heals; same node runs full speed again.
	d, err = eng.AttemptStart("j", 1, 0, 5, true)
	if err != nil || d != 0 {
		t.Fatalf("post-heal delay = %v, %v; want 0", d, err)
	}
	if st := eng.Stats(); st.SlowAttempts != 1 {
		t.Fatalf("SlowAttempts = %d, want 1", st.SlowAttempts)
	}
}

func TestTransientFetchSelectionDeterministic(t *testing.T) {
	plan := Plan{Seed: 3, FetchFailEvery: 2}
	eng := New(nil, plan)
	eng2 := New(nil, plan)
	hits := 0
	for task := 0; task < 16; task++ {
		e1 := eng.FetchError("job", task, 1, 0)
		e2 := eng2.FetchError("job", task, 1, 0)
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("task %d: selection differs between engines", task)
		}
		if e1 != nil {
			hits++
			// Transient: the same fetch succeeds within the retry bound.
			if err := eng.FetchError("job", task, 1, transientFetchFails); err != nil {
				t.Fatalf("task %d still failing at try %d: %v", task, transientFetchFails, err)
			}
		}
	}
	if hits == 0 || hits == 16 {
		t.Fatalf("hash selection hit %d/16 tasks, want a strict subset", hits)
	}
}

// The acceptance-criteria integration test: kill 2 of 8 nodes mid-pipeline
// (one via a task attempt, one via a shuffle fetch — losing completed map
// outputs), inject a straggler and transient fetch errors, and require a
// bit-identical inverse with every failure mode accounted.
func TestSection74ExperimentEndToEnd(t *testing.T) {
	res, err := RunExperiment(ExperimentConfig{
		N: 96, NB: 24, Nodes: 8, Kill: 2, Seed: 1,
		Restart: true, FetchFailEvery: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Fatalf("inverse under chaos differs from fault-free run:\nbase %s\nchaos %s", res.Baseline.SHA256, res.Faulty.SHA256)
	}
	if res.Faulty.Residual > 1e-8 {
		t.Fatalf("residual %g too large", res.Faulty.Residual)
	}
	if res.Chaos.Kills != 2 {
		t.Fatalf("Kills = %d, want 2\nplan:\n%s", res.Chaos.Kills, res.Plan)
	}
	if res.Faulty.TaskFailures == 0 {
		t.Fatal("no task failures under a 2-node kill schedule")
	}
	if res.Faulty.LostMapOutputs == 0 {
		t.Fatal("fetch-triggered kill lost no completed map outputs")
	}
	if res.Faulty.SpeculativeTasks == 0 {
		t.Fatal("injected straggler drove no speculative attempt")
	}
	if res.Faulty.FetchRetries == 0 {
		t.Fatal("no fetch retries recorded")
	}
	if res.Chaos.BytesReReplicated == 0 || res.Faulty.BytesReReplicated == 0 {
		t.Fatalf("no re-replication accounted (engine %d, report %d bytes)",
			res.Chaos.BytesReReplicated, res.Faulty.BytesReReplicated)
	}
	if res.Faulty.ReplicasLost == 0 {
		t.Fatal("no replica loss accounted")
	}
	if res.Chaos.Restarts == 0 {
		t.Fatal("no restart fired despite Restart: true")
	}
	if res.Slowdown <= 0 {
		t.Fatalf("slowdown = %v", res.Slowdown)
	}
	if !strings.Contains(res.Plan, "kill") {
		t.Fatalf("plan dump missing kills:\n%s", res.Plan)
	}
}

// Same seed, same experiment: identical fault schedule and bit-identical
// inverse across invocations.
func TestExperimentDeterministicAcrossRuns(t *testing.T) {
	cfg := ExperimentConfig{N: 48, NB: 12, Nodes: 4, Kill: 1, Seed: 5, FetchFailEvery: 4}
	r1, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Plan != r2.Plan {
		t.Fatalf("plans differ:\n%s\nvs\n%s", r1.Plan, r2.Plan)
	}
	if r1.Faulty.SHA256 != r2.Faulty.SHA256 {
		t.Fatal("same seed produced different inverses under chaos")
	}
	if !r1.Identical || !r2.Identical {
		t.Fatalf("runs not bit-identical to baseline: %v %v", r1.Identical, r2.Identical)
	}
}

func TestSlowdownCurve(t *testing.T) {
	res, err := SlowdownCurve(ExperimentConfig{N: 48, NB: 12, Nodes: 4, Seed: 2}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("curve has %d points, want 2", len(res))
	}
	for _, r := range res {
		if !r.Identical {
			t.Fatalf("kill=%d: inverse differs from baseline", r.Config.Kill)
		}
	}
	if res[1].Chaos.Kills != 1 {
		t.Fatalf("kill=1 point recorded %d kills", res[1].Chaos.Kills)
	}
}
