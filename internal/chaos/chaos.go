// Package chaos is a seeded, deterministic fault-injection orchestrator
// for the simulated cluster: it schedules node crashes and restarts (a
// dead node's in-flight attempts fail and its completed map outputs become
// unreadable, forcing re-execution — the Hadoop semantics the paper's
// Section 7.4 experiment relies on), DFS replica loss with background
// re-replication, straggler injection that drives the engine's
// speculative-execution path, and transient shuffle-fetch errors.
//
// Determinism is clock-free: the engine keeps a logical clock that
// advances on the events the MapReduce engine reports — one tick per task
// attempt start and one per shuffle-fetch check — and a Plan's events fire
// when the clock crosses their tick. The same seed therefore produces the
// same fault schedule on every run regardless of wall-clock speed, and
// because the engine's shuffle is sorted and its task functions are
// deterministic, the inverse computed under chaos is bit-identical to the
// fault-free one.
package chaos

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/dfs"
	"repro/internal/mapreduce"
	"repro/internal/obs"
)

// EventKind classifies one scheduled fault.
type EventKind int

const (
	// Kill crashes a node: its worker stops receiving tasks, in-flight
	// attempts fail, its DFS replicas are dropped (surviving replicas are
	// re-replicated), and its completed map outputs become unreadable.
	Kill EventKind = iota
	// Restart brings a dead node back, empty (a fresh incarnation).
	Restart
	// Slow makes every attempt starting on the victim node take an extra
	// Delay — a straggler, food for speculative execution.
	Slow
	// Heal clears slowdowns (from the victim, or all nodes with VictimAll).
	Heal
)

func (k EventKind) String() string {
	switch k {
	case Kill:
		return "kill"
	case Restart:
		return "restart"
	case Slow:
		return "slow"
	case Heal:
		return "heal"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Trigger restricts which logical-clock advance may fire an event.
type Trigger int

const (
	// OnAny fires at the first clock advance past the event's tick.
	OnAny Trigger = iota
	// OnAttempt fires only on a task-attempt start, so a VictimCurrent
	// kill is guaranteed to fail an in-flight attempt.
	OnAttempt
	// OnFetch fires only on a shuffle-fetch check, so a VictimCurrent
	// kill is guaranteed to lose a completed map output.
	OnFetch
)

func (tr Trigger) String() string {
	switch tr {
	case OnAny:
		return "any"
	case OnAttempt:
		return "attempt"
	case OnFetch:
		return "fetch"
	}
	return fmt.Sprintf("trigger(%d)", int(tr))
}

// Victim selectors for Event.Node (values >= 0 name a fixed node).
const (
	// VictimCurrent targets the node of the triggering attempt or fetch —
	// a node guaranteed to have work (or output) to lose.
	VictimCurrent = -1
	// VictimOldestDead targets the longest-dead node (FIFO restarts).
	VictimOldestDead = -2
	// VictimAll targets every node (Heal only).
	VictimAll = -3
)

func victimString(v int) string {
	switch v {
	case VictimCurrent:
		return "current"
	case VictimOldestDead:
		return "oldest-dead"
	case VictimAll:
		return "all"
	}
	return fmt.Sprintf("%d", v)
}

// Event is one scheduled fault. It fires at the first clock advance of the
// matching Trigger kind at or after Tick; events fire strictly in plan
// order. A Kill (or Slow) whose victim cannot be resolved to a live node
// is deferred — it stays pending until a matching trigger supplies one —
// and a Kill that would take down the last live node waits the same way.
type Event struct {
	Tick  int64         `json:"tick"`
	Kind  EventKind     `json:"kind"`
	On    Trigger       `json:"on"`
	Node  int           `json:"node"`            // fixed node or a Victim* selector
	Delay time.Duration `json:"delay,omitempty"` // Slow only
}

func (ev Event) String() string {
	s := fmt.Sprintf("@%d %s on=%s victim=%s", ev.Tick, ev.Kind, ev.On, victimString(ev.Node))
	if ev.Delay > 0 {
		s += fmt.Sprintf(" delay=%s", ev.Delay)
	}
	return s
}

// Plan is a complete, seed-deterministic fault schedule.
type Plan struct {
	Seed   int64   `json:"seed"`
	Events []Event `json:"events"`
	// FetchFailEvery, when > 0, injects transient fetch errors (failing
	// the first two tries, succeeding after) for roughly one in every
	// FetchFailEvery (job, map task) pairs, selected by seeded hash so the
	// choice is independent of scheduling order.
	FetchFailEvery int `json:"fetch_fail_every,omitempty"`
}

// String renders the plan in a canonical form; two runs with the same seed
// produce byte-identical strings, which chaosrun prints and the
// determinism test compares.
func (p Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan seed=%d events=%d fetch_fail_every=%d\n", p.Seed, len(p.Events), p.FetchFailEvery)
	for _, ev := range p.Events {
		fmt.Fprintf(&b, "  %s\n", ev)
	}
	return b.String()
}

// PlanConfig shapes RandomPlan's schedule.
type PlanConfig struct {
	Nodes int // cluster size (victim selectors still bound kills to live nodes)
	Kills int // node crashes to schedule
	// Horizon is the logical-clock span the schedule targets; kills land
	// in its first half so they hit mid-pipeline. Callers estimate it from
	// the workload (the harness uses PipelineJobs(n, nb) * nodes).
	Horizon int64
	// Restart revives each killed node (FIFO) later in the schedule.
	Restart bool
	// SlowDelay, when > 0, schedules one straggler injection of this
	// length (plus a Heal shortly after, bounding the damage).
	SlowDelay time.Duration
	// FetchFailEvery is copied to the plan; see Plan.FetchFailEvery.
	FetchFailEvery int
}

// RandomPlan builds a deterministic schedule from a seed: kill events
// alternate attempt- and fetch-triggered (so both in-flight attempts and
// completed map outputs are provably lost), an optional straggler fires
// early, and optional restarts revive the oldest dead node. Same seed and
// config, same plan — byte for byte.
func RandomPlan(seed int64, cfg PlanConfig) Plan {
	rng := rand.New(rand.NewSource(seed))
	horizon := cfg.Horizon
	if horizon < 16 {
		horizon = 16
	}
	var evs []Event
	if cfg.SlowDelay > 0 {
		st := 1 + rng.Int63n(horizon/8+1)
		evs = append(evs,
			Event{Tick: st, Kind: Slow, On: OnAttempt, Node: VictimCurrent, Delay: cfg.SlowDelay},
			Event{Tick: st + 2, Kind: Heal, On: OnAny, Node: VictimAll})
	}
	for i := 0; i < cfg.Kills; i++ {
		// Spread kills over the first half of the horizon, jittered.
		tick := horizon*int64(i+1)/int64(2*(cfg.Kills+1)) + rng.Int63n(horizon/8+1)
		on := OnAttempt
		if i%2 == 1 {
			on = OnFetch
		}
		evs = append(evs, Event{Tick: tick, Kind: Kill, On: on, Node: VictimCurrent})
		if cfg.Restart {
			evs = append(evs, Event{Tick: tick + horizon/5 + 1, Kind: Restart, On: OnAny, Node: VictimOldestDead})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Tick < evs[j].Tick })
	return Plan{Seed: seed, Events: evs, FetchFailEvery: cfg.FetchFailEvery}
}

// Stats counts what the engine actually injected and healed.
type Stats struct {
	Ticks               int64 `json:"ticks"`
	Kills               int   `json:"kills"`
	Restarts            int   `json:"restarts"`
	CrashedAttempts     int   `json:"crashed_attempts"`
	SlowAttempts        int   `json:"slow_attempts"`
	FetchErrorsInjected int   `json:"fetch_errors_injected"`
	ReplicasHealed      int   `json:"replicas_healed"`
	BytesReReplicated   int64 `json:"bytes_rereplicated"`
}

// Engine executes a Plan against a cluster. It implements
// mapreduce.FaultPlane; wire it up with cluster.Faults = engine. All
// methods are safe for concurrent use.
type Engine struct {
	fs      *dfs.FS
	plan    Plan
	tracer  *obs.Tracer
	metrics *obs.Registry

	mu        sync.Mutex
	tick      int64
	next      int // index of the first unfired plan event
	alive     []bool
	epoch     []int64
	slow      []time.Duration
	deadOrder []int
	stats     Stats
}

var _ mapreduce.FaultPlane = (*Engine)(nil)

// New builds an engine over fs (node count and replica loss/heal flow
// through it; fs may be nil for engine-only tests, with nodes inferred as
// the highest fixed victim + 1 or 8).
func New(fs *dfs.FS, plan Plan) *Engine {
	nodes := 8
	if fs != nil {
		nodes = fs.Nodes()
	}
	e := &Engine{
		fs:    fs,
		plan:  plan,
		alive: make([]bool, nodes),
		epoch: make([]int64, nodes),
		slow:  make([]time.Duration, nodes),
	}
	for i := range e.alive {
		e.alive[i] = true
	}
	sort.SliceStable(e.plan.Events, func(i, j int) bool { return e.plan.Events[i].Tick < e.plan.Events[j].Tick })
	return e
}

// SetObs attaches a tracer (kill/restart/slow/heal point spans, KindChaos)
// and a metrics registry (chaos.* counters). Call before the run starts.
func (e *Engine) SetObs(tracer *obs.Tracer, metrics *obs.Registry) {
	e.tracer = tracer
	e.metrics = metrics
}

// Stats returns a snapshot of the injected-fault counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// NodeAlive implements mapreduce.FaultPlane.
func (e *Engine) NodeAlive(node int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return node >= 0 && node < len(e.alive) && e.alive[node]
}

// NodeEpoch implements mapreduce.FaultPlane.
func (e *Engine) NodeEpoch(node int) int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if node < 0 || node >= len(e.epoch) {
		return 0
	}
	return e.epoch[node]
}

// AttemptStart implements mapreduce.FaultPlane: it advances the logical
// clock, fires due events, fails the attempt if its node just died, and
// returns any straggler delay in force on the node.
func (e *Engine) AttemptStart(job string, task, attempt, node int, isMap bool) (time.Duration, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if node < 0 || node >= len(e.alive) {
		return 0, nil
	}
	e.tick++
	e.stats.Ticks = e.tick
	epochBefore := e.epoch[node]
	e.applyLocked(OnAttempt, node)
	if !e.alive[node] || e.epoch[node] != epochBefore {
		e.stats.CrashedAttempts++
		e.counterAdd("chaos.crashed_attempts", 1)
		phase := "reduce"
		if isMap {
			phase = "map"
		}
		return 0, fmt.Errorf("chaos: node %d crashed at tick %d under %s %s task %d attempt %d", node, e.tick, job, phase, task, attempt)
	}
	if d := e.slow[node]; d > 0 {
		e.stats.SlowAttempts++
		e.counterAdd("chaos.slow_attempts", 1)
		return d, nil
	}
	return 0, nil
}

// transientFetchFails is how many consecutive tries a hash-selected
// transient fetch error survives — below the engine's retry bound, so
// transient errors cost retries but never lose outputs.
const transientFetchFails = 2

// FetchError implements mapreduce.FaultPlane: the first try of each fetch
// advances the logical clock (retries do not — one fetch, one tick), fires
// due events, and errors if the source node is dead or the (job, task)
// pair is hash-selected for a transient error.
func (e *Engine) FetchError(job string, task, node, try int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if node < 0 || node >= len(e.alive) {
		return nil
	}
	if try == 0 {
		e.tick++
		e.stats.Ticks = e.tick
		e.applyLocked(OnFetch, node)
	}
	if !e.alive[node] {
		e.stats.FetchErrorsInjected++
		e.counterAdd("chaos.fetch_errors", 1)
		return fmt.Errorf("chaos: fetch of %s map output %d: node %d is dead", job, task, node)
	}
	if e.plan.FetchFailEvery > 0 && try < transientFetchFails && hashSelect(e.plan.Seed, job, task, e.plan.FetchFailEvery) {
		e.stats.FetchErrorsInjected++
		e.counterAdd("chaos.fetch_errors", 1)
		return fmt.Errorf("chaos: transient fetch error for %s map output %d (try %d)", job, task, try)
	}
	return nil
}

// hashSelect deterministically picks ~1/every of the (job, task) space,
// independent of scheduling order.
func hashSelect(seed int64, job string, task, every int) bool {
	h := fnv.New32a()
	fmt.Fprintf(h, "%d/%s/%d", seed, job, task)
	return h.Sum32()%uint32(every) == 0
}

// applyLocked fires plan events that are due at the current tick, in plan
// order. An event whose Trigger does not match blocks later events until
// its own trigger kind arrives (order is part of the schedule); a Kill or
// Slow that cannot resolve a live victim stays pending the same way.
func (e *Engine) applyLocked(trig Trigger, trigNode int) {
	for e.next < len(e.plan.Events) {
		ev := e.plan.Events[e.next]
		if ev.Tick > e.tick {
			return
		}
		if ev.On != OnAny && ev.On != trig {
			return
		}
		if !e.fireLocked(ev, trigNode) {
			return
		}
		e.next++
	}
}

// fireLocked applies one event; false means the event stays pending.
func (e *Engine) fireLocked(ev Event, trigNode int) bool {
	switch ev.Kind {
	case Kill:
		v := e.resolveLocked(ev.Node, trigNode)
		if v < 0 || !e.alive[v] || e.aliveCountLocked() <= 1 {
			return false // defer: no live victim, or it is the last live node
		}
		e.alive[v] = false
		e.epoch[v]++
		e.slow[v] = 0
		e.deadOrder = append(e.deadOrder, v)
		e.stats.Kills++
		e.counterAdd("chaos.kills", 1)
		var healed int64
		if e.fs != nil {
			if err := e.fs.KillNode(v); err == nil {
				copies, bytes := e.fs.ReReplicate()
				e.stats.ReplicasHealed += copies
				e.stats.BytesReReplicated += bytes
				e.counterAdd("chaos.bytes_rereplicated", bytes)
				healed = bytes
			}
		}
		e.pointSpan("chaos.kill", v, healed)
	case Restart:
		v := ev.Node
		if v == VictimOldestDead {
			if len(e.deadOrder) == 0 {
				return false // defer until a kill lands
			}
			v = e.deadOrder[0]
		}
		if v < 0 || v >= len(e.alive) || e.alive[v] {
			return true // nothing to revive; drop
		}
		for i, d := range e.deadOrder {
			if d == v {
				e.deadOrder = append(e.deadOrder[:i], e.deadOrder[i+1:]...)
				break
			}
		}
		e.alive[v] = true
		e.stats.Restarts++
		e.counterAdd("chaos.restarts", 1)
		var healed int64
		if e.fs != nil {
			if err := e.fs.RestartNode(v); err == nil {
				// The revived node is empty; top files back up to the
				// replication factor now that it can hold replicas again.
				copies, bytes := e.fs.ReReplicate()
				e.stats.ReplicasHealed += copies
				e.stats.BytesReReplicated += bytes
				e.counterAdd("chaos.bytes_rereplicated", bytes)
				healed = bytes
			}
		}
		e.pointSpan("chaos.restart", v, healed)
	case Slow:
		v := e.resolveLocked(ev.Node, trigNode)
		if v < 0 || !e.alive[v] {
			return false
		}
		e.slow[v] = ev.Delay
		e.pointSpan("chaos.slow", v, 0)
	case Heal:
		if ev.Node == VictimAll {
			for i := range e.slow {
				e.slow[i] = 0
			}
			e.pointSpan("chaos.heal", VictimAll, 0)
			return true
		}
		if v := e.resolveLocked(ev.Node, trigNode); v >= 0 {
			e.slow[v] = 0
			e.pointSpan("chaos.heal", v, 0)
		}
	}
	return true
}

func (e *Engine) resolveLocked(v, trigNode int) int {
	switch {
	case v == VictimCurrent:
		v = trigNode
	case v == VictimOldestDead:
		if len(e.deadOrder) == 0 {
			return -1
		}
		v = e.deadOrder[0]
	}
	if v < 0 || v >= len(e.alive) {
		return -1
	}
	return v
}

func (e *Engine) aliveCountLocked() int {
	n := 0
	for _, a := range e.alive {
		if a {
			n++
		}
	}
	return n
}

func (e *Engine) counterAdd(name string, delta int64) {
	if e.metrics != nil {
		e.metrics.Counter(name).Add(delta)
	}
}

// pointSpan records an instantaneous chaos event in the trace.
func (e *Engine) pointSpan(name string, node int, bytes int64) {
	if e.tracer == nil {
		return
	}
	sp := e.tracer.StartSpan(name, obs.KindChaos)
	if sp != nil {
		if node >= 0 {
			sp.SetTrack(node)
			sp.SetAttr("node", int64(node))
		}
		sp.SetAttr("tick", e.tick)
		if bytes > 0 {
			sp.SetAttr("bytes_rereplicated", bytes)
		}
		sp.Finish()
	}
}
