package chaos

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/mapreduce"
	"repro/internal/matrix"
	"repro/internal/workload"
)

// A multi-round multiply under a one-kill plan must be bit-identical to
// the clean run: the partial products and round states carry backup
// replicas under fault injection, recovered mappers re-place their
// pieces deterministically, and the sum round folds segments in a fixed
// order regardless of which attempt produced them.
func TestMultiRoundMultiplyDeterministicUnderKill(t *testing.T) {
	const n, nodes = 96, 8
	a := workload.Random(n, 501)
	b := workload.Random(n, 502)

	run := func(strategy core.MultiplyStrategy, eng *Engine, fs *dfs.FS) *matrix.Dense {
		t.Helper()
		opts := core.DefaultOptions(nodes)
		opts.Multiply = strategy
		cl := mapreduce.NewCluster(fs, nodes)
		if eng != nil {
			cl.Faults = eng
		}
		p, err := core.NewPipelineOn(opts, fs, cl)
		if err != nil {
			t.Fatal(err)
		}
		out, _, err := p.MultiplyWithReport(a, b)
		if err != nil {
			t.Fatalf("%s: %v", strategy, err)
		}
		return out
	}

	for _, strategy := range []core.MultiplyStrategy{core.MultiplyReplicated, core.MultiplySpaceRound} {
		clean := run(strategy, nil, dfs.New(nodes, dfs.DefaultReplication))
		for seed := int64(1); seed <= 3; seed++ {
			plan := RandomPlan(seed, PlanConfig{Nodes: nodes, Kills: 1, Horizon: 24, Restart: true})
			fs := dfs.New(nodes, dfs.DefaultReplication)
			eng := New(fs, plan)
			faulty := run(strategy, eng, fs)
			if faulty.Rows != clean.Rows || faulty.Cols != clean.Cols {
				t.Fatalf("%s seed %d: shape changed", strategy, seed)
			}
			for i, v := range faulty.Data {
				if math.Float64bits(v) != math.Float64bits(clean.Data[i]) {
					t.Fatalf("%s seed %d: element %d differs: %g vs %g (plan: %s)",
						strategy, seed, i, v, clean.Data[i], plan)
				}
			}
			if eng.Stats().Kills == 0 {
				t.Fatalf("%s seed %d: plan injected no kill", strategy, seed)
			}
		}
	}
}
