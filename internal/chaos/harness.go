package chaos

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/mapreduce"
	"repro/internal/matrix"
	"repro/internal/workload"
)

// ExperimentConfig parameterizes one Section 7.4 failure-recovery replay:
// invert a seeded diagonally-dominant matrix fault-free, invert it again
// with Kill nodes crashing mid-pipeline, and compare.
type ExperimentConfig struct {
	N     int   `json:"n"`     // matrix order
	NB    int   `json:"nb"`    // block size
	Nodes int   `json:"nodes"` // cluster size (m0)
	Kill  int   `json:"kill"`  // nodes to crash mid-pipeline
	Seed  int64 `json:"seed"`  // matrix + fault-schedule seed
	// Restart revives killed nodes later in the run.
	Restart bool `json:"restart,omitempty"`
	// SlowDelay > 0 additionally injects one straggler of this length to
	// drive speculative execution. Zero disables straggler injection.
	SlowDelay time.Duration `json:"slow_delay,omitempty"`
	// FetchFailEvery > 0 injects transient shuffle-fetch errors for ~1 in
	// that many (job, map task) pairs.
	FetchFailEvery int `json:"fetch_fail_every,omitempty"`
}

// RunStats summarizes one pipeline run inside the experiment.
type RunStats struct {
	ElapsedMs         float64 `json:"elapsed_ms"`
	Jobs              int     `json:"jobs"`
	TaskFailures      int     `json:"task_failures"`
	SpeculativeTasks  int     `json:"speculative_tasks"`
	LostMapOutputs    int     `json:"lost_map_outputs"`
	FetchRetries      int     `json:"fetch_retries"`
	Residual          float64 `json:"residual"`
	SHA256            string  `json:"sha256"`
	ReplicasLost      int64   `json:"replicas_lost,omitempty"`
	BytesReReplicated int64   `json:"bytes_rereplicated,omitempty"`
}

// ExperimentResult is the full Section 7.4 comparison.
type ExperimentResult struct {
	Config   ExperimentConfig `json:"config"`
	Plan     string           `json:"plan"`
	Baseline RunStats         `json:"baseline"`
	Faulty   RunStats         `json:"faulty"`
	Chaos    Stats            `json:"chaos"`
	// Slowdown is faulty elapsed over baseline elapsed — the paper's §7.4
	// headline number.
	Slowdown float64 `json:"slowdown"`
	// Identical reports whether the inverse computed under chaos is
	// bit-identical to the fault-free one.
	Identical bool `json:"identical"`
}

// DefaultSlowDelay is the straggler length RunExperiment injects when the
// config leaves SlowDelay zero but chaos is otherwise on: long enough that
// the speculative monitor (2ms period) reliably fires a backup, short
// enough not to dominate a smoke run.
const DefaultSlowDelay = 60 * time.Millisecond

// Horizon estimates the logical-clock span of one inversion: each of the
// pipeline's jobs contributes about Nodes attempt ticks per phase plus
// fetch ticks; targeting jobs*nodes lands scheduled faults mid-pipeline.
func Horizon(n, nb, nodes int) int64 {
	return int64(core.PipelineJobs(n, nb)) * int64(nodes)
}

// RunExperiment replays the paper's Section 7.4 failure-recovery
// experiment: a fault-free baseline inversion, then the same inversion
// under a seeded fault schedule (node kills, optional restarts, one
// straggler, transient fetch errors), verifying the faulty run's inverse
// bit-identical to the baseline's.
func RunExperiment(cfg ExperimentConfig) (*ExperimentResult, error) {
	opts := core.DefaultOptions(cfg.Nodes)
	opts.NB = cfg.NB
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if cfg.Kill >= opts.Nodes {
		return nil, fmt.Errorf("chaos: cannot kill %d of %d nodes (at least one must survive)", cfg.Kill, opts.Nodes)
	}
	if cfg.SlowDelay == 0 {
		cfg.SlowDelay = DefaultSlowDelay
	}
	a := workload.DiagonallyDominant(cfg.N, cfg.Seed)

	baseline, err := runOnce(opts, a, nil)
	if err != nil {
		return nil, fmt.Errorf("chaos: baseline run: %w", err)
	}

	plan := RandomPlan(cfg.Seed, PlanConfig{
		Nodes:          opts.Nodes,
		Kills:          cfg.Kill,
		Horizon:        Horizon(cfg.N, cfg.NB, opts.Nodes),
		Restart:        cfg.Restart,
		SlowDelay:      cfg.SlowDelay,
		FetchFailEvery: cfg.FetchFailEvery,
	})
	fs := dfs.New(opts.Nodes, dfs.DefaultReplication)
	eng := New(fs, plan)
	faulty, err := runOnceOn(opts, a, fs, eng)
	if err != nil {
		return nil, fmt.Errorf("chaos: faulty run: %w", err)
	}

	res := &ExperimentResult{
		Config:    cfg,
		Plan:      plan.String(),
		Baseline:  *baseline,
		Faulty:    *faulty,
		Chaos:     eng.Stats(),
		Identical: baseline.SHA256 == faulty.SHA256,
	}
	if baseline.ElapsedMs > 0 {
		res.Slowdown = faulty.ElapsedMs / baseline.ElapsedMs
	}
	return res, nil
}

// runOnce executes one inversion on a fresh cluster; eng may be nil for a
// fault-free run.
func runOnce(opts core.Options, a *matrix.Dense, eng *Engine) (*RunStats, error) {
	fs := dfs.New(opts.Nodes, dfs.DefaultReplication)
	return runOnceOn(opts, a, fs, eng)
}

func runOnceOn(opts core.Options, a *matrix.Dense, fs *dfs.FS, eng *Engine) (*RunStats, error) {
	cl := mapreduce.NewCluster(fs, opts.Nodes)
	// Speculative execution is on in both runs (as in Hadoop), so the
	// baseline pays the same monitoring and the slowdown isolates faults.
	cl.Speculative = true
	cl.SpeculativeRatio = 2
	cl.SpeculativeSlack = 8 * time.Millisecond
	if eng != nil {
		cl.Faults = eng
		if d := maxDelay(eng.plan); d > 0 {
			// The monitor must see the injected straggler as an outlier
			// well before it completes.
			if s := d / 8; s < cl.SpeculativeSlack {
				cl.SpeculativeSlack = s
			}
		}
	}
	p, err := core.NewPipelineOn(opts, fs, cl)
	if err != nil {
		return nil, err
	}
	//mrlint:allow determinism(time.Now) -- measures experiment wall time for the slowdown ratio; never enters the replayed inverse
	start := time.Now()
	inv, rep, err := p.Invert(a)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	resid, err := matrix.IdentityResidual(a, inv)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := matrix.WriteBinary(&buf, inv); err != nil {
		return nil, err
	}
	sum := sha256.Sum256(buf.Bytes())
	return &RunStats{
		ElapsedMs:         float64(elapsed.Microseconds()) / 1000,
		Jobs:              rep.JobsRun,
		TaskFailures:      rep.TaskFailures,
		SpeculativeTasks:  rep.Speculative,
		LostMapOutputs:    rep.LostMapOutputs,
		FetchRetries:      rep.FetchRetries,
		Residual:          resid,
		SHA256:            hex.EncodeToString(sum[:]),
		ReplicasLost:      rep.FS.ReplicasLost,
		BytesReReplicated: rep.FS.BytesReReplicated,
	}, nil
}

func maxDelay(p Plan) time.Duration {
	var d time.Duration
	for _, ev := range p.Events {
		if ev.Kind == Slow && ev.Delay > d {
			d = ev.Delay
		}
	}
	return d
}

// SlowdownCurve runs the experiment across kill counts (the paper's §7.4
// x-axis), reusing one config otherwise.
func SlowdownCurve(cfg ExperimentConfig, kills []int) ([]*ExperimentResult, error) {
	out := make([]*ExperimentResult, 0, len(kills))
	for _, k := range kills {
		c := cfg
		c.Kill = k
		r, err := RunExperiment(c)
		if err != nil {
			return out, fmt.Errorf("chaos: kill=%d: %w", k, err)
		}
		out = append(out, r)
	}
	return out, nil
}
