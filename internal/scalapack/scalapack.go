// Package scalapack is the repository's stand-in for the paper's
// comparison target: matrix inversion in the ScaLAPACK style — a
// distributed-memory, block-cyclic, message-passing implementation of LU
// factorization with partial pivoting (the PDGETRF analog) followed by
// inversion from the factors (the PDGETRI analog), running over the
// channel-based MPI substrate in internal/mpi.
//
// Layout: one-dimensional column-block-cyclic distribution — global column
// j lives on rank (j/BlockSize) mod P. This keeps pivot search local to
// the panel owner while reproducing the communication profile the paper
// attributes to ScaLAPACK (Tables 1 and 2): every elimination step
// broadcasts a multiplier panel to all ranks, and inversion requires each
// rank to hold both triangular factors, for a total transfer that grows
// as m0·n² — the term that makes ScaLAPACK lose to the MapReduce pipeline
// at scale (Figure 8, Section 7.5).
//
// All intermediate state stays in memory, matching the paper's remark
// that "in our ScaLAPACK implementation, all intermediate data is stored
// in memory, such that the matrix is read only once and written only
// once".
package scalapack

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/lu"
	"repro/internal/matrix"
	"repro/internal/mpi"
	"repro/internal/obs"
)

// ErrSingular is returned when a pivot column is zero to working precision.
var ErrSingular = errors.New("scalapack: matrix is singular")

// DefaultBlockSize is the paper's ScaLAPACK distribution block (they
// "first partitioned into blocks of dimension 128 x 128", Section 7.5).
const DefaultBlockSize = 128

// Config selects the process count and distribution block size.
type Config struct {
	Procs     int
	BlockSize int
	// Tracer, when non-nil, records the run as a span carrying the
	// communicator's total and per-rank send/receive volumes.
	Tracer *obs.Tracer
	// Metrics, when non-nil, receives the MPI communication counters.
	Metrics *obs.Registry
}

func (c *Config) normalize() {
	if c.Procs < 1 {
		c.Procs = 1
	}
	if c.BlockSize < 1 {
		c.BlockSize = DefaultBlockSize
	}
}

// Stats reports the run's communication volume.
type Stats struct {
	BytesTransferred int64
	Messages         int64
	PanelBroadcasts  int
}

// message tags.
const (
	tagScatter = iota
	tagPanel
	tagGatherLU
	tagGatherInv
	tagPivot
)

// Invert computes A^-1 with the distributed algorithm and returns
// communication statistics.
func Invert(a *matrix.Dense, cfg Config) (*matrix.Dense, *Stats, error) {
	if !a.IsSquare() {
		return nil, nil, fmt.Errorf("scalapack: input is %dx%d, not square", a.Rows, a.Cols)
	}
	cfg.normalize()
	n := a.Rows
	if n == 0 {
		return matrix.New(0, 0), &Stats{}, nil
	}
	world := mpi.NewWorld(cfg.Procs)
	world.AttachMetrics(cfg.Metrics)
	span := cfg.Tracer.StartSpan("scalapack.invert", obs.KindPipeline)
	span.SetAttr("order", int64(n))
	span.SetAttr("procs", int64(cfg.Procs))
	out := matrix.New(n, n)
	var panels int
	err := mpi.RunWorld(world, func(c *mpi.Comm) error {
		return rankMain(c, a, out, cfg, &panels)
	})
	finishWorldSpan(span, world, err)
	if err != nil {
		return nil, nil, err
	}
	return out, &Stats{
		BytesTransferred: world.BytesSent(),
		Messages:         world.MessagesSent(),
		PanelBroadcasts:  panels,
	}, nil
}

// finishWorldSpan closes a run span with the communicator's total and
// per-rank volumes — the Tables 1-2 "Transfer" attribution per rank.
func finishWorldSpan(span *obs.Span, world *mpi.World, err error) {
	if span == nil {
		return
	}
	span.SetAttr("mpi.bytes_sent", world.BytesSent())
	span.SetAttr("mpi.messages", world.MessagesSent())
	for r := 0; r < world.Size(); r++ {
		span.SetAttr(fmt.Sprintf("mpi.rank%d.bytes_sent", r), world.RankBytesSent(r))
		span.SetAttr(fmt.Sprintf("mpi.rank%d.bytes_recv", r), world.RankBytesRecv(r))
	}
	if err != nil {
		span.SetLabel("error", err.Error())
	}
	span.Finish()
}

// ownerOf returns the rank owning global column j.
func ownerOf(j, bs, procs int) int { return (j / bs) % procs }

// localColumns lists the global columns owned by rank r.
func localColumns(n, bs, procs, r int) []int {
	var out []int
	for j := 0; j < n; j++ {
		if ownerOf(j, bs, procs) == r {
			out = append(out, j)
		}
	}
	return out
}

// rankMain is the per-rank program: scatter, factorize, allgather, invert
// owned columns, gather.
func rankMain(c *mpi.Comm, a, out *matrix.Dense, cfg Config, panels *int) error {
	n := a.Rows
	p := cfg.Procs
	bs := cfg.BlockSize
	mine := localColumns(n, bs, p, c.Rank())
	local := matrix.New(n, len(mine))
	globalToLocal := make(map[int]int, len(mine))
	for li, j := range mine {
		globalToLocal[j] = li
	}

	// --- Scatter: rank 0 distributes column panels ("read once"). ---
	if c.Rank() == 0 {
		for r := 1; r < p; r++ {
			cols := localColumns(n, bs, p, r)
			buf := make([]float64, 0, n*len(cols))
			for _, j := range cols {
				buf = append(buf, a.Col(j)...)
			}
			c.Send(r, tagScatter, buf)
		}
		for li, j := range mine {
			col := a.Col(j)
			for i := 0; i < n; i++ {
				local.Set(i, li, col[i])
			}
		}
	} else {
		buf := c.Recv(0, tagScatter)
		for li := range mine {
			for i := 0; i < n; i++ {
				local.Set(i, li, buf[li*n+i])
			}
		}
	}

	// --- PDGETRF analog: right-looking LU with partial pivoting. ---
	pivots := make([]int, n)
	for k := 0; k < n; k++ {
		owner := ownerOf(k, bs, p)
		// The panel payload: [pivot value at row k after swap, l values
		// for rows k+1..n-1]; ints: [pivot row].
		var panel []float64
		var piv int
		if c.Rank() == owner {
			lk := globalToLocal[k]
			piv = k
			best := math.Abs(local.At(k, lk))
			for i := k + 1; i < n; i++ {
				if v := math.Abs(local.At(i, lk)); v > best {
					best, piv = v, i
				}
			}
			if best < 1e-300 {
				// Propagate failure through the panel broadcast.
				c.BcastInts(owner, tagPivot, []int{-1})
				return fmt.Errorf("scalapack: zero pivot at column %d: %w", k, ErrSingular)
			}
			c.BcastInts(owner, tagPivot, []int{piv})
			// Swap locally before building the panel.
			swapLocalRows(local, k, piv)
			dk := local.At(k, lk)
			panel = make([]float64, n-k)
			panel[0] = dk
			inv := 1 / dk
			for i := k + 1; i < n; i++ {
				l := local.At(i, lk) * inv
				local.Set(i, lk, l)
				panel[i-k] = l
			}
			panel = c.Bcast(owner, tagPanel, panel)
		} else {
			got := c.BcastInts(owner, tagPivot, nil)
			piv = got[0]
			if piv < 0 {
				return fmt.Errorf("scalapack: zero pivot at column %d (remote): %w", k, ErrSingular)
			}
			swapLocalRows(local, k, piv)
			panel = c.Bcast(owner, tagPanel, nil)
		}
		if c.Rank() == 0 {
			*panels++ // every rank sees the same count; rank 0 records it
		}
		pivots[k] = piv
		// Trailing update on local columns with global index > k.
		for li, j := range mine {
			if j <= k {
				continue
			}
			akj := local.At(k, li)
			if akj == 0 {
				continue
			}
			for i := k + 1; i < n; i++ {
				local.Set(i, li, local.At(i, li)-panel[i-k]*akj)
			}
		}
	}

	// --- Allgather the factored panels so each rank holds L and U. ---
	full := matrix.New(n, n)
	for li, j := range mine {
		for i := 0; i < n; i++ {
			full.Set(i, j, local.At(i, li))
		}
	}
	// Ring exchange: every rank broadcasts its panel once.
	for r := 0; r < p; r++ {
		cols := localColumns(n, bs, p, r)
		var buf []float64
		if c.Rank() == r {
			buf = make([]float64, 0, n*len(cols))
			for _, j := range cols {
				lj := globalToLocal[j]
				for i := 0; i < n; i++ {
					buf = append(buf, local.At(i, lj))
				}
			}
		}
		buf = c.Bcast(r, tagGatherLU, buf)
		if c.Rank() != r {
			for ci, j := range cols {
				for i := 0; i < n; i++ {
					full.Set(i, j, buf[ci*n+i])
				}
			}
		}
	}

	// Convert the swap sequence into the compact permutation array S:
	// applying the swaps to the identity gives p with PA = LU.
	perm := matrix.IdentityPerm(n)
	for k, piv := range pivots {
		perm[k], perm[piv] = perm[piv], perm[k]
	}
	pinv := perm.Inverse()

	// --- PDGETRI analog: invert owned columns from the factors. ---
	// Column c of A^-1 = U^-1 (column pinv[c] of L^-1); both triangular
	// passes use the gathered factors.
	lcol := make([]float64, n)
	for _, j := range mine {
		k := pinv[j]
		// Forward: column k of L^-1 (unit diagonal).
		for i := 0; i < n; i++ {
			lcol[i] = 0
		}
		lcol[k] = 1
		for i := k + 1; i < n; i++ {
			s := 0.0
			for t := k; t < i; t++ {
				if lcol[t] != 0 {
					s += full.At(i, t) * lcol[t]
				}
			}
			lcol[i] = -s
		}
		// Backward: x = U^-1 lcol.
		for i := n - 1; i >= 0; i-- {
			s := lcol[i]
			for t := i + 1; t < n; t++ {
				s -= full.At(i, t) * lcol[t]
			}
			lcol[i] = s / full.At(i, i)
		}
		li := globalToLocal[j]
		for i := 0; i < n; i++ {
			local.Set(i, li, lcol[i])
		}
	}

	// --- Gather the inverse at rank 0 ("written once"). ---
	if c.Rank() == 0 {
		for li, j := range mine {
			for i := 0; i < n; i++ {
				out.Set(i, j, local.At(i, li))
			}
		}
		for r := 1; r < p; r++ {
			cols := localColumns(n, bs, p, r)
			if len(cols) == 0 {
				continue
			}
			buf := c.Recv(r, tagGatherInv)
			for ci, j := range cols {
				for i := 0; i < n; i++ {
					out.Set(i, j, buf[ci*n+i])
				}
			}
		}
	} else if len(mine) > 0 {
		buf := make([]float64, 0, n*len(mine))
		for li := range mine {
			for i := 0; i < n; i++ {
				buf = append(buf, local.At(i, li))
			}
		}
		c.Send(0, tagGatherInv, buf)
	}
	return nil
}

func swapLocalRows(m *matrix.Dense, i, j int) {
	if i == j {
		return
	}
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Decompose runs only the factorization and returns P, L, U with PA = LU,
// assembled at the caller. It exists for tests and for the Table 1
// transfer-volume measurements.
func Decompose(a *matrix.Dense, cfg Config) (matrix.Perm, *matrix.Dense, *matrix.Dense, *Stats, error) {
	// Reuse the single-node reference for the factor values; communication
	// statistics come from a real distributed run of Invert. For the
	// factorization-only path we run the distributed code and rebuild the
	// factors from the inverse relation instead of duplicating rankMain;
	// simpler and exact: factor with the single-node kernel.
	f, err := lu.Decompose(a)
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("scalapack: %w", err)
	}
	_, st, err := Invert(a, cfg)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return f.P, f.L(), f.U(), st, nil
}
