package scalapack

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/lu"
	"repro/internal/matrix"
	"repro/internal/workload"
)

func TestInvert2DMatchesReference(t *testing.T) {
	for _, tc := range []struct {
		n, procs, bs int
	}{
		{16, 1, 4},
		{24, 2, 4},  // 2x1 grid
		{32, 4, 4},  // 2x2 grid
		{33, 4, 4},  // odd order
		{48, 6, 8},  // 3x2 grid
		{40, 9, 2},  // 3x3 grid
		{20, 4, 64}, // block larger than matrix share
	} {
		a := workload.Random(tc.n, int64(tc.n*7+tc.procs))
		got, st, err := Invert2D(a, Grid2D{Procs: tc.procs, BlockSize: tc.bs})
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		want, err := lu.Invert(a)
		if err != nil {
			t.Fatal(err)
		}
		if d := matrix.MaxAbsDiff(got, want); d > 1e-8 {
			t.Fatalf("%+v: differs from reference by %g", tc, d)
		}
		if tc.procs > 1 && st.BytesTransferred == 0 {
			t.Fatalf("%+v: no communication recorded", tc)
		}
	}
}

func TestInvert2DPivoting(t *testing.T) {
	// A permutation-like matrix needing swaps at every step.
	a := matrix.FromRows([][]float64{
		{0, 0, 3, 0},
		{2, 0, 0, 0},
		{0, 0, 0, 5},
		{0, 7, 0, 0},
	})
	inv, _, err := Invert2D(a, Grid2D{Procs: 4, BlockSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := matrix.IdentityResidual(a, inv)
	if err != nil {
		t.Fatal(err)
	}
	if res > 1e-12 {
		t.Fatalf("residual %g", res)
	}
}

func TestInvert2DSingular(t *testing.T) {
	sing := matrix.FromRows([][]float64{{1, 2}, {2, 4}})
	if _, _, err := Invert2D(sing, Grid2D{Procs: 4, BlockSize: 1}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v", err)
	}
}

func TestInvert2DNonSquareAndEmpty(t *testing.T) {
	if _, _, err := Invert2D(matrix.New(2, 3), Grid2D{Procs: 2}); err == nil {
		t.Fatal("non-square accepted")
	}
	inv, _, err := Invert2D(matrix.New(0, 0), Grid2D{Procs: 2})
	if err != nil || inv.Rows != 0 {
		t.Fatalf("empty: %v %v", inv, err)
	}
}

func TestGrid2DFactorization(t *testing.T) {
	for _, tc := range []struct{ procs, pr, pc int }{
		{1, 1, 1}, {2, 2, 1}, {4, 2, 2}, {6, 3, 2}, {8, 4, 2}, {12, 4, 3}, {16, 4, 4},
	} {
		g := Grid2D{Procs: tc.procs, BlockSize: 8}
		pr, pc := g.normalize()
		if pr != tc.pr || pc != tc.pc {
			t.Errorf("Procs=%d: grid %dx%d, want %dx%d", tc.procs, pr, pc, tc.pr, tc.pc)
		}
	}
}

// Test2DTransfersLessThan1D demonstrates why ScaLAPACK uses 2-D grids:
// for the same process count, the factorization's per-step broadcasts
// touch pr+pc ranks instead of m0, so total communication drops.
func Test2DTransfersLessThan1D(t *testing.T) {
	n, procs := 64, 16
	a := workload.Random(n, 4001)

	_, st1d, err := Invert(a, Config{Procs: procs, BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, st2d, err := Invert2D(a, Grid2D{Procs: procs, BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st2d.BytesTransferred >= st1d.BytesTransferred {
		t.Fatalf("2-D grid transferred %d >= 1-D %d", st2d.BytesTransferred, st1d.BytesTransferred)
	}
}

// TestQuick1DMatches2D cross-checks the two layouts on random
// configurations — both must produce the same inverse.
func TestQuick1DMatches2D(t *testing.T) {
	f := func(seed int64, nRaw, pRaw, bsRaw uint8) bool {
		n := int(nRaw%24) + 8
		procs := int(pRaw%4)*2 + 1 // 1,3,5,7
		bs := int(bsRaw%6) + 1
		a := workload.DiagonallyDominant(n, seed)
		one, _, err1 := Invert(a, Config{Procs: procs, BlockSize: bs})
		two, _, err2 := Invert2D(a, Grid2D{Procs: procs, BlockSize: bs})
		return err1 == nil && err2 == nil && matrix.MaxAbsDiff(one, two) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestInvert2DResidualCriterion(t *testing.T) {
	a := workload.Random(60, 4002)
	inv, _, err := Invert2D(a, Grid2D{Procs: 6, BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := matrix.IdentityResidual(a, inv)
	if err != nil {
		t.Fatal(err)
	}
	if res > 1e-8 {
		t.Fatalf("residual %g", res)
	}
}
