package scalapack

import (
	"fmt"
	"math"

	"repro/internal/matrix"
	"repro/internal/mpi"
	"repro/internal/obs"
)

// Two-dimensional block-cyclic LU factorization and inversion — the
// process-grid configuration the paper actually uses for its ScaLAPACK
// runs: "we set the process grid to f1 x f2, where m0 = f1 x f2 is the
// number of compute nodes" with 128 x 128 distribution blocks
// (Section 7.5). Element (i, j) lives on process
// (⌊i/bs⌋ mod pr, ⌊j/bs⌋ mod pc).
//
// Compared to the 1-D column layout in scalapack.go, the 2-D grid
// broadcasts each elimination step's multiplier column along process rows
// and its pivot row along process columns, cutting per-step transfer from
// O(n) x m0 to O(n) x (pr + pc) — the classical reason ScaLAPACK scales
// as well as it does before its global terms bite.

// Grid2D configures the two-dimensional solver.
type Grid2D struct {
	// Procs is the total process count; the grid is the FactorPair-style
	// near-square factorization pr x pc computed internally.
	Procs     int
	BlockSize int
	// Tracer/Metrics mirror Config's observability hooks.
	Tracer  *obs.Tracer
	Metrics *obs.Registry
}

func (g *Grid2D) normalize() (pr, pc int) {
	if g.Procs < 1 {
		g.Procs = 1
	}
	if g.BlockSize < 1 {
		g.BlockSize = DefaultBlockSize
	}
	// Near-square grid with pr >= pc.
	for f := 1; f*f <= g.Procs; f++ {
		if g.Procs%f == 0 {
			pc = f
		}
	}
	pr = g.Procs / pc
	return pr, pc
}

// message tags for the 2-D program; each step k offsets tags by k*16 so
// rounds never collide.
const (
	tag2dPivCand = iota
	tag2dPivDecision
	tag2dSwap
	tag2dAkk
	tag2dLseg
	tag2dUseg
	tag2dGather
	tag2dResult
	tag2dStride
)

// Invert2D computes A^-1 on a pr x pc process grid and reports
// communication statistics.
func Invert2D(a *matrix.Dense, cfg Grid2D) (*matrix.Dense, *Stats, error) {
	if !a.IsSquare() {
		return nil, nil, fmt.Errorf("scalapack: Invert2D: input is %dx%d, not square", a.Rows, a.Cols)
	}
	pr, pc := cfg.normalize()
	n := a.Rows
	if n == 0 {
		return matrix.New(0, 0), &Stats{}, nil
	}
	world := mpi.NewWorld(cfg.Procs)
	world.AttachMetrics(cfg.Metrics)
	span := cfg.Tracer.StartSpan("scalapack.invert2d", obs.KindPipeline)
	span.SetAttr("order", int64(n))
	span.SetAttr("grid_rows", int64(pr))
	span.SetAttr("grid_cols", int64(pc))
	out := matrix.New(n, n)
	err := mpi.RunWorld(world, func(c *mpi.Comm) error {
		return rank2D(c, a, out, n, pr, pc, cfg.BlockSize)
	})
	finishWorldSpan(span, world, err)
	if err != nil {
		return nil, nil, err
	}
	return out, &Stats{
		BytesTransferred: world.BytesSent(),
		Messages:         world.MessagesSent(),
		PanelBroadcasts:  n,
	}, nil
}

// grid2d holds one rank's view of the grid.
type grid2d struct {
	c          *mpi.Comm
	n, pr, pc  int
	bs         int
	myRow      int
	myCol      int
	local      *matrix.Dense // full-size buffer; only owned elements valid
	rowOwned   []bool
	colOwned   []bool
	tagCounter int
}

func (g *grid2d) rowOwner(i int) int        { return (i / g.bs) % g.pr }
func (g *grid2d) colOwner(j int) int        { return (j / g.bs) % g.pc }
func (g *grid2d) rankOf(prow, pcol int) int { return prow*g.pc + pcol }

// tags returns a fresh tag block for one communication round.
func (g *grid2d) tags() int {
	g.tagCounter += tag2dStride
	return g.tagCounter
}

func rank2D(c *mpi.Comm, a, out *matrix.Dense, n, pr, pc, bs int) error {
	g := &grid2d{
		c: c, n: n, pr: pr, pc: pc, bs: bs,
		myRow: c.Rank() / pc, myCol: c.Rank() % pc,
		local:    matrix.New(n, n),
		rowOwned: make([]bool, n),
		colOwned: make([]bool, n),
	}
	for i := 0; i < n; i++ {
		g.rowOwned[i] = g.rowOwner(i) == g.myRow
	}
	for j := 0; j < n; j++ {
		g.colOwned[j] = g.colOwner(j) == g.myCol
	}
	// Every rank initializes its owned elements from the driver-held
	// input (a scatter in spirit; byte accounting focuses on the solver's
	// own communication, as the paper's Tables do for the factorization).
	for i := 0; i < n; i++ {
		if !g.rowOwned[i] {
			continue
		}
		for j := 0; j < n; j++ {
			if g.colOwned[j] {
				g.local.Set(i, j, a.At(i, j))
			}
		}
	}

	perm := matrix.IdentityPerm(n)
	for k := 0; k < n; k++ {
		piv, err := g.step(k)
		if err != nil {
			return err
		}
		perm[k], perm[piv] = perm[piv], perm[k]
	}

	// Allgather the factored matrix so every rank holds L and U, then
	// invert owned columns (same Table 2 m0 n^2 profile as the 1-D code).
	full, err := g.allgather()
	if err != nil {
		return err
	}
	return g.invertColumns(full, perm, out)
}

// step performs elimination step k and returns the pivot row.
func (g *grid2d) step(k int) (int, error) {
	base := g.tags()
	co := g.colOwner(k)
	coordinator := g.rankOf(0, co)

	// --- pivot search within process column co ---
	if g.myCol == co {
		bestV, bestI := 0.0, -1
		for i := k; i < g.n; i++ {
			if g.rowOwned[i] {
				if v := math.Abs(g.local.At(i, k)); v > bestV {
					bestV, bestI = v, i
				}
			}
		}
		if g.c.Rank() == coordinator {
			for r := 1; r < g.pr; r++ {
				m := g.c.Recv(g.rankOf(r, co), base+tag2dPivCand)
				cand := g.c.RecvInts(g.rankOf(r, co), base+tag2dPivCand)
				if m[0] > bestV {
					bestV, bestI = m[0], cand[0]
				}
			}
			if bestV < 1e-300 {
				bestI = -1
			}
			// Decision goes to every rank in the world.
			for r := 0; r < g.c.Size(); r++ {
				if r != g.c.Rank() {
					g.c.SendInts(r, base+tag2dPivDecision, []int{bestI})
				}
			}
			if bestI < 0 {
				return 0, fmt.Errorf("scalapack: 2d zero pivot at column %d: %w", k, ErrSingular)
			}
			return g.finishStep(k, bestI, base)
		}
		g.c.Send(coordinator, base+tag2dPivCand, []float64{bestV})
		g.c.SendInts(coordinator, base+tag2dPivCand, []int{bestI})
	}
	dec := g.c.RecvInts(coordinator, base+tag2dPivDecision)
	if dec[0] < 0 {
		return 0, fmt.Errorf("scalapack: 2d zero pivot at column %d (remote): %w", k, ErrSingular)
	}
	return g.finishStep(k, dec[0], base)
}

// finishStep applies the row swap, computes multipliers, broadcasts the
// panels, and updates the trailing submatrix for step k.
func (g *grid2d) finishStep(k, piv, base int) (int, error) {
	n := g.n
	// --- row swap k <-> piv across all owned columns ---
	if piv != k {
		rk, rp := g.rowOwner(k), g.rowOwner(piv)
		switch {
		case rk == rp:
			if g.myRow == rk {
				for j := 0; j < n; j++ {
					if g.colOwned[j] {
						vk, vp := g.local.At(k, j), g.local.At(piv, j)
						g.local.Set(k, j, vp)
						g.local.Set(piv, j, vk)
					}
				}
			}
		case g.myRow == rk || g.myRow == rp:
			myI, otherRow := k, rp
			if g.myRow == rp {
				myI, otherRow = piv, rk
			}
			partner := g.rankOf(otherRow, g.myCol)
			seg := g.collectRowSegment(myI)
			g.c.Send(partner, base+tag2dSwap, seg)
			theirs := g.c.Recv(partner, base+tag2dSwap)
			g.scatterRowSegment(myI, theirs)
		}
	}

	co := g.colOwner(k)
	rowK := g.rowOwner(k)

	// --- multipliers in column k (process column co only) ---
	if g.myCol == co {
		var akk float64
		holder := g.rankOf(rowK, co)
		if g.c.Rank() == holder {
			akk = g.local.At(k, k)
			for r := 0; r < g.pr; r++ {
				if dst := g.rankOf(r, co); dst != holder {
					g.c.Send(dst, base+tag2dAkk, []float64{akk})
				}
			}
		} else {
			akk = g.c.Recv(holder, base+tag2dAkk)[0]
		}
		inv := 1 / akk
		for i := k + 1; i < n; i++ {
			if g.rowOwned[i] {
				g.local.Set(i, k, g.local.At(i, k)*inv)
			}
		}
	}

	// --- broadcast l segments along process rows ---
	// The rank in my process row that sits in column co owns exactly my
	// rows' multipliers.
	lsrc := g.rankOf(g.myRow, co)
	lseg := make([]float64, 0, n-k-1)
	if g.c.Rank() == lsrc {
		for i := k + 1; i < n; i++ {
			if g.rowOwned[i] {
				lseg = append(lseg, g.local.At(i, k))
			}
		}
		for pcj := 0; pcj < g.pc; pcj++ {
			if dst := g.rankOf(g.myRow, pcj); dst != lsrc {
				g.c.Send(dst, base+tag2dLseg, lseg)
			}
		}
	} else {
		lseg = g.c.Recv(lsrc, base+tag2dLseg)
	}
	lvals := make([]float64, n) // indexed by global row
	idx := 0
	for i := k + 1; i < n; i++ {
		if g.rowOwned[i] {
			lvals[i] = lseg[idx]
			idx++
		}
	}

	// --- broadcast u segments (row k) along process columns ---
	usrc := g.rankOf(rowK, g.myCol)
	useg := make([]float64, 0, n-k-1)
	if g.c.Rank() == usrc {
		for j := k + 1; j < n; j++ {
			if g.colOwned[j] {
				useg = append(useg, g.local.At(k, j))
			}
		}
		for pri := 0; pri < g.pr; pri++ {
			if dst := g.rankOf(pri, g.myCol); dst != usrc {
				g.c.Send(dst, base+tag2dUseg, useg)
			}
		}
	} else {
		useg = g.c.Recv(usrc, base+tag2dUseg)
	}
	uvals := make([]float64, n) // indexed by global col
	idx = 0
	for j := k + 1; j < n; j++ {
		if g.colOwned[j] {
			uvals[j] = useg[idx]
			idx++
		}
	}

	// --- trailing update on owned elements ---
	for i := k + 1; i < n; i++ {
		if !g.rowOwned[i] || lvals[i] == 0 {
			continue
		}
		li := lvals[i]
		row := g.local.Row(i)
		for j := k + 1; j < n; j++ {
			if g.colOwned[j] && uvals[j] != 0 {
				row[j] -= li * uvals[j]
			}
		}
	}
	return piv, nil
}

// collectRowSegment gathers row i's owned-column values in column order.
func (g *grid2d) collectRowSegment(i int) []float64 {
	seg := make([]float64, 0, g.n/g.pc+g.bs)
	for j := 0; j < g.n; j++ {
		if g.colOwned[j] {
			seg = append(seg, g.local.At(i, j))
		}
	}
	return seg
}

// scatterRowSegment writes owned-column values back into row i.
func (g *grid2d) scatterRowSegment(i int, seg []float64) {
	idx := 0
	for j := 0; j < g.n; j++ {
		if g.colOwned[j] {
			g.local.Set(i, j, seg[idx])
			idx++
		}
	}
}

// allgather assembles the full factored matrix on every rank.
func (g *grid2d) allgather() (*matrix.Dense, error) {
	base := g.tags()
	n := g.n
	full := matrix.New(n, n)
	// Pack my owned elements.
	mine := make([]float64, 0, n*n/(g.pr*g.pc)+n)
	for i := 0; i < n; i++ {
		if !g.rowOwned[i] {
			continue
		}
		for j := 0; j < n; j++ {
			if g.colOwned[j] {
				mine = append(mine, g.local.At(i, j))
			}
		}
	}
	size := g.c.Size()
	for r := 0; r < size; r++ {
		var buf []float64
		if r == g.c.Rank() {
			buf = mine
			for dst := 0; dst < size; dst++ {
				if dst != r {
					g.c.Send(dst, base+tag2dGather, buf)
				}
			}
		} else {
			buf = g.c.Recv(r, base+tag2dGather)
		}
		// Unpack rank r's elements.
		rRow, rCol := r/g.pc, r%g.pc
		idx := 0
		for i := 0; i < n; i++ {
			if (i/g.bs)%g.pr != rRow {
				continue
			}
			for j := 0; j < n; j++ {
				if (j/g.bs)%g.pc == rCol {
					full.Set(i, j, buf[idx])
					idx++
				}
			}
		}
	}
	return full, nil
}

// invertColumns computes this rank's interleaved columns of A^-1 from the
// gathered factors and sends them to rank 0, which assembles out.
func (g *grid2d) invertColumns(full *matrix.Dense, perm matrix.Perm, out *matrix.Dense) error {
	base := g.tags()
	n := g.n
	size := g.c.Size()
	pinv := perm.Inverse()
	me := g.c.Rank()

	colOf := func(j int) int { return j % size }
	lcol := make([]float64, n)
	var mine []float64
	var myCols []int
	for j := 0; j < n; j++ {
		if colOf(j) != me {
			continue
		}
		k := pinv[j]
		for i := 0; i < n; i++ {
			lcol[i] = 0
		}
		lcol[k] = 1
		for i := k + 1; i < n; i++ {
			s := 0.0
			for t := k; t < i; t++ {
				if lcol[t] != 0 {
					s += full.At(i, t) * lcol[t]
				}
			}
			lcol[i] = -s
		}
		for i := n - 1; i >= 0; i-- {
			s := lcol[i]
			for t := i + 1; t < n; t++ {
				s -= full.At(i, t) * lcol[t]
			}
			lcol[i] = s / full.At(i, i)
		}
		myCols = append(myCols, j)
		mine = append(mine, lcol...)
	}

	if me == 0 {
		place := func(cols []int, data []float64) {
			for ci, j := range cols {
				for i := 0; i < n; i++ {
					out.Set(i, j, data[ci*n+i])
				}
			}
		}
		place(myCols, mine)
		for r := 1; r < size; r++ {
			var cols []int
			for j := 0; j < n; j++ {
				if colOf(j) == r {
					cols = append(cols, j)
				}
			}
			if len(cols) == 0 {
				continue
			}
			data := g.c.Recv(r, base+tag2dResult)
			place(cols, data)
		}
		return nil
	}
	if len(myCols) > 0 {
		g.c.Send(0, base+tag2dResult, mine)
	}
	return nil
}
