package scalapack

import (
	"errors"
	"testing"

	"repro/internal/lu"
	"repro/internal/matrix"
	"repro/internal/workload"
)

func TestInvertMatchesSingleNode(t *testing.T) {
	for _, tc := range []struct {
		n, procs, bs int
	}{
		{1, 1, 1},
		{16, 1, 4},
		{32, 2, 4},
		{33, 3, 4}, // odd order, uneven panels
		{48, 4, 8},
		{64, 4, 128}, // block size larger than panel share
		{40, 8, 2},
	} {
		a := workload.Random(tc.n, int64(tc.n*tc.procs+tc.bs))
		got, st, err := Invert(a, Config{Procs: tc.procs, BlockSize: tc.bs})
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		want, err := lu.Invert(a)
		if err != nil {
			t.Fatal(err)
		}
		if d := matrix.MaxAbsDiff(got, want); d > 1e-8 {
			t.Fatalf("%+v: differs from reference by %g", tc, d)
		}
		if st.PanelBroadcasts == 0 && tc.n > 0 {
			t.Fatalf("%+v: no panel broadcasts recorded", tc)
		}
	}
}

func TestInvertResidual(t *testing.T) {
	a := workload.Random(50, 1001)
	inv, _, err := Invert(a, Config{Procs: 4, BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := matrix.IdentityResidual(a, inv)
	if err != nil {
		t.Fatal(err)
	}
	if res > 1e-8 {
		t.Fatalf("residual %g", res)
	}
}

func TestInvertSingular(t *testing.T) {
	sing := matrix.FromRows([][]float64{{1, 2}, {2, 4}})
	if _, _, err := Invert(sing, Config{Procs: 2, BlockSize: 1}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v", err)
	}
}

func TestInvertNonSquare(t *testing.T) {
	if _, _, err := Invert(matrix.New(2, 3), Config{Procs: 1}); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestInvertEmpty(t *testing.T) {
	inv, _, err := Invert(matrix.New(0, 0), Config{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if inv.Rows != 0 {
		t.Fatal("not empty")
	}
}

func TestInvertNeedsPivoting(t *testing.T) {
	a := matrix.FromRows([][]float64{
		{0, 1, 0},
		{0, 0, 2},
		{4, 0, 0},
	})
	inv, _, err := Invert(a, Config{Procs: 3, BlockSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := matrix.IdentityResidual(a, inv)
	if err != nil {
		t.Fatal(err)
	}
	if res > 1e-12 {
		t.Fatalf("residual %g", res)
	}
}

func TestTransferGrowsWithProcs(t *testing.T) {
	// The paper's Table 2 point: ScaLAPACK's transfer volume grows with
	// the node count (m0 n^2), which is why it loses at scale.
	a := workload.Random(48, 1002)
	volume := func(procs int) int64 {
		_, st, err := Invert(a, Config{Procs: procs, BlockSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		return st.BytesTransferred
	}
	v2, v4, v8 := volume(2), volume(4), volume(8)
	if !(v2 < v4 && v4 < v8) {
		t.Fatalf("transfer not increasing with procs: %d, %d, %d", v2, v4, v8)
	}
}

func TestSingleProcNoTransferGrowth(t *testing.T) {
	a := workload.Random(24, 1003)
	_, st, err := Invert(a, Config{Procs: 1, BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	// One process: no scatter, no panels to others, no gather — only the
	// self-addressed broadcast copies, which our Bcast does not send.
	if st.BytesTransferred != 0 {
		t.Fatalf("single-proc transfer = %d", st.BytesTransferred)
	}
}

func TestLocalColumnsPartition(t *testing.T) {
	n, bs, procs := 29, 3, 4
	seen := make([]bool, n)
	for r := 0; r < procs; r++ {
		for _, j := range localColumns(n, bs, procs, r) {
			if seen[j] {
				t.Fatalf("column %d owned twice", j)
			}
			seen[j] = true
			if ownerOf(j, bs, procs) != r {
				t.Fatalf("column %d: owner mismatch", j)
			}
		}
	}
	for j, ok := range seen {
		if !ok {
			t.Fatalf("column %d unowned", j)
		}
	}
}

func TestDecompose(t *testing.T) {
	a := workload.Random(24, 1004)
	p, l, u, st, err := Decompose(a, Config{Procs: 2, BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	luProd, err := matrix.Mul(l, u)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(luProd, p.ApplyRows(a)); d > 1e-9 {
		t.Fatalf("PA != LU by %g", d)
	}
	if st.BytesTransferred == 0 {
		t.Fatal("no transfer recorded")
	}
}

func TestConfigNormalize(t *testing.T) {
	c := Config{}
	c.normalize()
	if c.Procs != 1 || c.BlockSize != DefaultBlockSize {
		t.Fatalf("normalized = %+v", c)
	}
}
