package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// All returns every analyzer in the suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		CtxFlow,
		BoundedAlloc,
		ObsNames,
		LockScope,
	}
}

// replayCriticalPkgs are the packages whose behavior must replay
// bit-identically under the §7.4 chaos harness: a faulty run and a
// clean run must produce the same bytes, so nothing on these paths may
// depend on wall clocks, unseeded randomness, or map iteration order.
var replayCriticalPkgs = []string{
	"internal/chaos",
	"internal/mapreduce",
	"internal/dfs",
	"internal/tsqr",
	"internal/core",
	"internal/incr",
}

// lockSensitivePkgs are the concurrent serving-path packages where
// holding a mutex across a blocking operation has already caused real
// bugs (the dead-singleflight race).
var lockSensitivePkgs = []string{
	"internal/serve",
	"internal/fed",
	"internal/mapreduce",
}

// pkgInScope reports whether path belongs to one of the scope entries,
// matching on whole path-segment boundaries so "internal/core" matches
// "repro/internal/core" and "x/internal/core/sub" but not
// "internal/coretools". Fixture packages under the analysistest tree
// pick scoped or unscoped paths to exercise both sides.
func pkgInScope(path string, scope []string) bool {
	for _, s := range scope {
		if segmentMatch(path, s) {
			return true
		}
	}
	return false
}

func segmentMatch(path, want string) bool {
	idx := 0
	for {
		i := strings.Index(path[idx:], want)
		if i < 0 {
			return false
		}
		start := idx + i
		end := start + len(want)
		startOK := start == 0 || path[start-1] == '/'
		endOK := end == len(path) || path[end] == '/'
		if startOK && endOK {
			return true
		}
		idx = start + 1
	}
}

// funcObj resolves the called function object for a call expression,
// unwrapping parenthesization. Returns nil for calls through function
// values, type conversions, and builtins.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isPkgFunc reports whether call is a direct call to pkgBase.name,
// where pkgBase is the callee package's base name (e.g. "rand",
// "time", "context"). Matching on the base name rather than the full
// import path lets analysistest fixtures stand in fake packages for
// repo-internal ones.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgBase, name string) bool {
	f := funcObj(info, call)
	if f == nil || f.Name() != name {
		return false
	}
	pkg := f.Pkg()
	return pkg != nil && pathBase(pkg.Path()) == pkgBase && f.Type().(*types.Signature).Recv() == nil
}

func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// hasCtxParam reports whether sig takes a context.Context anywhere in
// its (non-receiver) parameter list.
func hasCtxParam(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
