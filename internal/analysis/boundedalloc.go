package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// BoundedAlloc encodes the hostile-allocation invariant from the PR-2
// review: a size decoded from a wire or file header is attacker- (or
// corruption-) controlled and must be bounded before element storage
// is allocated. The serving layer once turned a hostile 12-byte
// request into a PiB allocation because ReadBinary trusted its header;
// matrix.ReadBinaryLimit exists precisely to close that hole.
//
// The analysis is a per-function forward taint pass:
//
//   - sources: binary.LittleEndian/BigEndian.UintXX(...) results, and
//     variables whose address is taken in a function that calls
//     binary.Read (covering the `for _, p := range []*uint32{&a, &b}`
//     header-decode idiom);
//   - propagation: assignments whose right-hand side mentions a
//     tainted variable (conversions, arithmetic);
//   - sanitizers: an if-condition comparing the tainted variable
//     before the allocation, or deriving the value through a call
//     whose name contains Limit/Bound/Cap/Min/Max;
//   - sinks: make() with a tainted length/capacity, and matrix.New
//     with tainted dimensions.
//
// Anything flagged either needs a bound check between decode and
// allocation, or a //mrlint:allow boundedalloc -- <why the value is
// trusted> directive.
var BoundedAlloc = &Analyzer{
	Name: "boundedalloc",
	Doc: "require header-decoded sizes to be bounds-checked before they size an " +
		"allocation (the hostile PiB-alloc class)",
	Run: runBoundedAlloc,
}

func runBoundedAlloc(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			boundedAllocFunc(pass, fn.Body)
			return true
		})
	}
	return nil
}

type taintState struct {
	pass *Pass
	// tainted maps a variable to the position where it became
	// tainted; sanitizedAt records the end of the earliest bound
	// check mentioning it.
	tainted     map[types.Object]token.Pos
	sanitizedAt map[types.Object]token.Pos
}

func boundedAllocFunc(pass *Pass, body *ast.BlockStmt) {
	st := &taintState{
		pass:        pass,
		tainted:     map[types.Object]token.Pos{},
		sanitizedAt: map[types.Object]token.Pos{},
	}
	callsBinaryRead := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if ok && isPkgFunc(pass.TypesInfo, call, "binary", "Read") {
			callsBinaryRead = true
		}
		return !callsBinaryRead
	})

	// Pass 1: collect sources and sanitizers (position-aware).
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if callsBinaryRead && n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					st.markTainted(id, n.Pos())
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				if rhs == nil {
					continue
				}
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && st.exprTainted(rhs) {
					st.markTainted(id, n.Pos())
				}
			}
		case *ast.IfStmt:
			st.recordComparisons(n.Cond)
		case *ast.SwitchStmt:
			if n.Tag != nil {
				st.recordComparisons(n.Tag)
			}
		case *ast.CaseClause:
			// Tagless switch: the case expressions are the comparisons.
			for _, e := range n.List {
				st.recordComparisons(e)
			}
		}
		return true
	})

	// Pass 2: flag sinks whose size is tainted and not yet sanitized.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var sizeArgs []ast.Expr
		if fid, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent && fid.Name == "make" && len(call.Args) >= 2 {
			if _, isBuiltin := pass.TypesInfo.Uses[fid].(*types.Builtin); isBuiltin {
				sizeArgs = call.Args[1:]
			}
		} else if f := funcObj(pass.TypesInfo, call); f != nil && f.Pkg() != nil &&
			pathBase(f.Pkg().Path()) == "matrix" && f.Name() == "New" {
			sizeArgs = call.Args
		}
		for _, arg := range sizeArgs {
			if obj, pos := st.taintedIn(arg, call.Pos()); obj != nil {
				pass.Reportf(call.Pos(), "wire-size",
					"allocation sized by %q, which was decoded from wire/header bytes at %s without a bound check: cap it (compare against a limit, or read through matrix.ReadBinaryLimit)",
					obj.Name(), pass.Fset.Position(pos))
			}
		}
		return true
	})
}

func (st *taintState) markTainted(id *ast.Ident, pos token.Pos) {
	obj := st.pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return
	}
	if basic, ok := obj.Type().Underlying().(*types.Basic); !ok || basic.Info()&types.IsInteger == 0 {
		return
	}
	if _, already := st.tainted[obj]; !already {
		st.tainted[obj] = pos
	}
}

// exprTainted reports whether e mentions a tainted variable or is a
// direct wire-decode call. Derivations through bounding helpers
// (min/max, names containing Limit/Bound/Cap) are treated as clean.
func (st *taintState) exprTainted(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isByteOrderDecode(st.pass.TypesInfo, n) {
				found = true
				return false
			}
			if isBoundingCall(st.pass.TypesInfo, n) {
				return false // pruned: the helper bounds its result
			}
		case *ast.Ident:
			if obj := st.pass.TypesInfo.ObjectOf(n); obj != nil {
				if _, ok := st.tainted[obj]; ok {
					found = true
					return false
				}
			}
		}
		return !found
	})
	return found
}

// recordComparisons marks every tainted variable appearing under a
// comparison operator in cond as sanitized from cond's end onward.
func (st *taintState) recordComparisons(cond ast.Expr) {
	ast.Inspect(cond, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch bin.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		default:
			return true
		}
		for _, side := range []ast.Expr{bin.X, bin.Y} {
			ast.Inspect(side, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := st.pass.TypesInfo.ObjectOf(id); obj != nil {
						if _, isTainted := st.tainted[obj]; isTainted {
							if cur, ok := st.sanitizedAt[obj]; !ok || cond.End() < cur {
								st.sanitizedAt[obj] = cond.End()
							}
						}
					}
				}
				return true
			})
		}
		return true
	})
}

// taintedIn returns a variable mentioned in e that is tainted and not
// sanitized before sinkPos, with the position where it was tainted.
// Subtrees under bounding helpers are skipped: make([]byte, clamp(n))
// is n's bound check, applied at the sink itself.
func (st *taintState) taintedIn(e ast.Expr, sinkPos token.Pos) (types.Object, token.Pos) {
	var obj types.Object
	var pos token.Pos
	ast.Inspect(e, func(n ast.Node) bool {
		if obj != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isBoundingCall(st.pass.TypesInfo, call) {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		o := st.pass.TypesInfo.ObjectOf(id)
		if o == nil {
			return true
		}
		tp, isTainted := st.tainted[o]
		if !isTainted {
			return true
		}
		if sp, sanitized := st.sanitizedAt[o]; sanitized && sp <= sinkPos {
			return true
		}
		obj, pos = o, tp
		return false
	})
	return obj, pos
}

func isByteOrderDecode(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Uint16", "Uint32", "Uint64":
	default:
		return false
	}
	f, _ := info.Uses[sel.Sel].(*types.Func)
	return f != nil && f.Pkg() != nil && pathBase(f.Pkg().Path()) == "binary"
}

func isBoundingCall(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "min" || fun.Name == "max" {
			return true
		}
	}
	f := funcObj(info, call)
	if f == nil {
		return false
	}
	name := f.Name()
	for _, marker := range []string{"Limit", "Bound", "Cap", "Clamp"} {
		if strings.Contains(name, marker) {
			return true
		}
	}
	return false
}
