package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Determinism encodes the §7.4 replay invariant: a run with failures
// injected and a clean run must produce bit-identical output, so the
// replay-critical packages (chaos, mapreduce, dfs, tsqr, core) must
// not let wall clocks, ambient randomness, or map iteration order leak
// into anything they compute. Four sub-rules, each with its own detail
// tag for //mrlint:allow:
//
//   - time.Now: any call. Wall-clock reads that feed only
//     observability are the expected allowlist case; the directive
//     forces that claim to be written down next to the read.
//   - math/rand: package-level functions that draw from the global,
//     ambiently-seeded source (rand.Intn, rand.Float64, rand.Shuffle,
//     ...). Explicitly seeded generators (rand.New(rand.NewSource(s)))
//     are fine and are how every seeded component here already works.
//   - maprange: a `range` over a map whose body appends to an outer
//     slice or sends on a channel bakes the nondeterministic iteration
//     order into a sequence. The loop is accepted when the enclosing
//     function sorts afterwards (the repo's established
//     collect-then-sort idiom).
//   - racy-counter: ++/+=/-= on a variable captured by reference
//     inside a `go` closure with no mutex in sight. Racy counters are
//     UB first and replay-divergence second.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall clocks, unseeded randomness, map-order-dependent output, " +
		"and racy counters in replay-critical packages (§7.4 bit-identical recovery)",
	Run: runDeterminism,
}

// seededRandFuncs are the math/rand package-level functions that do
// not draw from the global source.
var seededRandFuncs = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func runDeterminism(pass *Pass) error {
	if !pkgInScope(pass.Pkg.Path(), replayCriticalPkgs) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			determinismFunc(pass, fn.Body)
			return true
		})
	}
	return nil
}

func determinismFunc(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkClockAndRand(pass, n)
		case *ast.RangeStmt:
			checkMapRange(pass, body, n)
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				checkRacyCounters(pass, lit)
			}
		}
		return true
	})
}

func checkClockAndRand(pass *Pass, call *ast.CallExpr) {
	if isPkgFunc(pass.TypesInfo, call, "time", "Now") {
		pass.Reportf(call.Pos(), "time.Now",
			"time.Now in a replay-critical package: wall-clock values must not influence replayed output (allow with //mrlint:allow determinism(time.Now) -- <why>)")
		return
	}
	f := funcObj(pass.TypesInfo, call)
	if f == nil || f.Pkg() == nil {
		return
	}
	if pathBase(f.Pkg().Path()) == "rand" &&
		f.Type().(*types.Signature).Recv() == nil && !seededRandFuncs[f.Name()] {
		pass.Reportf(call.Pos(), "math/rand",
			"rand.%s draws from the ambient global source; use an explicitly seeded rand.New(rand.NewSource(seed)) so runs replay", f.Name())
	}
}

// checkMapRange flags map-range loops whose body accumulates into a
// sequence, unless the enclosing function sorts after the loop.
func checkMapRange(pass *Pass, enclosing *ast.BlockStmt, loop *ast.RangeStmt) {
	t := pass.TypesInfo.Types[loop.X].Type
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	ordered := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			ordered = true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" && len(n.Args) > 0 {
				if dst, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok {
					if obj := pass.TypesInfo.ObjectOf(dst); obj != nil &&
						(obj.Pos() < loop.Body.Pos() || obj.Pos() > loop.Body.End()) {
						ordered = true
					}
				}
			}
		}
		return !ordered
	})
	if !ordered {
		return
	}
	if sortsAfter(pass.TypesInfo, enclosing, loop.End()) {
		return
	}
	pass.Reportf(loop.Pos(), "maprange",
		"range over a map accumulates into a sequence without a later sort: map iteration order is nondeterministic and breaks bit-identical replay")
}

// sortsAfter reports whether a sort./slices. call appears in body at a
// position after pos.
func sortsAfter(info *types.Info, body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		if f := funcObj(info, call); f != nil && f.Pkg() != nil {
			switch f.Pkg().Path() {
			case "sort", "slices":
				found = true
			}
		}
		return !found
	})
	return found
}

// checkRacyCounters flags ++/+=/-= on captured variables inside a `go`
// closure. A closure that takes any mutex is skipped wholesale: the
// linear analysis cannot pair locks with updates, and the author has
// at least thought about synchronization.
func checkRacyCounters(pass *Pass, lit *ast.FuncLit) {
	locks := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
				(sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") {
				locks = true
			}
		}
		return !locks
	})
	if locks {
		return
	}
	report := func(id *ast.Ident, op string) {
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil || obj.Pos() == token.NoPos {
			return
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return // declared inside the closure: goroutine-local
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return
		}
		basic, ok := obj.Type().Underlying().(*types.Basic)
		if !ok || basic.Info()&types.IsNumeric == 0 {
			return
		}
		pass.Reportf(id.Pos(), "racy-counter",
			"%s %s on a variable captured by a go closure without synchronization: data race, and replay-divergent even when it \"works\"", op, id.Name)
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != lit {
			return true // nested closures are visited via their own go stmt, if any
		}
		switch n := n.(type) {
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				report(id, n.Tok.String())
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN {
				if id, ok := ast.Unparen(n.Lhs[0]).(*ast.Ident); ok {
					report(id, n.Tok.String())
				}
			}
		}
		return true
	})
}
