package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// LockScope encodes the lesson of the dead-singleflight race: in the
// serving-path packages (serve, fed, mapreduce) a mutex must not be
// held across an operation that can block indefinitely — a channel
// send or receive outside a non-blocking select, or a call into the
// deadline-bearing pipeline (any context-taking callee, Acquire,
// Wait). A goroutine parked on a channel while holding the server's
// mutex deadlocks every other request on contact.
//
// The analysis is linear and per-function: a region opens at
// mu.Lock()/mu.RLock() and closes at the positionally-next matching
// Unlock on the same receiver expression; `defer mu.Unlock()` holds to
// the end of the function. Closure bodies are separate scan units —
// code inside `go func() {...}` does not run under the spawning
// function's lock. Non-blocking selects (those with a default clause)
// are exempt, which is exactly the bounded-queue admission idiom the
// serving layer already uses.
var LockScope = &Analyzer{
	Name: "lockscope",
	Doc: "forbid holding a mutex across channel operations or ctx-blocking calls " +
		"in serving-path packages (the dead-singleflight race class)",
	Run: runLockScope,
}

func runLockScope(pass *Pass) error {
	if !pkgInScope(pass.Pkg.Path(), lockSensitivePkgs) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					lockScopeFunc(pass, n.Body)
				}
			case *ast.FuncLit:
				lockScopeFunc(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// lockRegion is one held-mutex interval within a function.
type lockRegion struct {
	recv       string
	start, end token.Pos
}

func lockScopeFunc(pass *Pass, body *ast.BlockStmt) {
	regions := lockRegions(pass, body)
	if len(regions) == 0 {
		return
	}
	held := func(pos token.Pos) *lockRegion {
		for i := range regions {
			if pos > regions[i].start && pos < regions[i].end {
				return &regions[i]
			}
		}
		return nil
	}
	var stack []ast.Node
	visit := func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if inNestedFuncLit(stack, body) {
			return true
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			if r := held(n.Pos()); r != nil && !inNonBlockingSelect(stack) {
				pass.Reportf(n.Pos(), "send",
					"channel send while holding %s: a blocked send parks the goroutine with the mutex held (move the send outside the critical section or use a select with default)", r.recv)
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if r := held(n.Pos()); r != nil && !inNonBlockingSelect(stack) {
					pass.Reportf(n.Pos(), "recv",
						"channel receive while holding %s: a blocked receive parks the goroutine with the mutex held", r.recv)
				}
			}
		case *ast.CallExpr:
			r := held(n.Pos())
			if r == nil {
				return true
			}
			if name, blocking := blockingCallee(pass.TypesInfo, n); blocking {
				pass.Reportf(n.Pos(), "blocking-call",
					"%s called while holding %s: the callee can block on a deadline or slot wait with the mutex held", name, r.recv)
			}
		}
		return true
	}
	ast.Inspect(body, visit)
}

// lockRegions scans body (excluding nested function literals) for
// Lock/Unlock pairs on sync mutexes.
func lockRegions(pass *Pass, body *ast.BlockStmt) []lockRegion {
	var regions []lockRegion
	open := map[string]int{} // recv expr -> index into regions of the open region
	var stack []ast.Node
	visit := func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if inNestedFuncLit(stack, body) {
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		method, recv := mutexMethod(pass, call)
		if method == "" {
			return true
		}
		isDefer := len(stack) >= 2 && isDeferCall(stack, call)
		switch method {
		case "Lock", "RLock":
			if _, already := open[recv]; !already {
				open[recv] = len(regions)
				regions = append(regions, lockRegion{recv: recv, start: call.End(), end: body.End()})
			}
		case "Unlock", "RUnlock":
			if isDefer {
				// Held until function exit: leave end at body.End().
				delete(open, recv)
				break
			}
			if idx, ok := open[recv]; ok {
				regions[idx].end = call.Pos()
				delete(open, recv)
			}
		}
		return true
	}
	ast.Inspect(body, visit)
	return regions
}

// mutexMethod matches calls to (R)Lock/(R)Unlock on sync.Mutex or
// sync.RWMutex values, returning the method name and the printed
// receiver expression used to pair locks with unlocks.
func mutexMethod(pass *Pass, call *ast.CallExpr) (method, recv string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	f, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return "", ""
	}
	return sel.Sel.Name, exprString(pass.Fset, sel.X)
}

func isDeferCall(stack []ast.Node, call *ast.CallExpr) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.DeferStmt:
			return s.Call == call
		case ast.Stmt:
			return false
		}
	}
	return false
}

// blockingCallee reports whether call's target can block indefinitely:
// it takes a context.Context (pipeline entry points by convention), or
// is named Acquire/Wait (slot pool and waitgroup waits).
func blockingCallee(info *types.Info, call *ast.CallExpr) (string, bool) {
	f := funcObj(info, call)
	if f == nil {
		return "", false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	if f.Pkg() != nil && f.Pkg().Path() == "context" {
		return "", false // context constructors take a Context but never block
	}
	if hasCtxParam(sig) {
		return f.Name(), true
	}
	switch f.Name() {
	case "Acquire", "Wait":
		return f.Name(), true
	}
	return "", false
}

// inNestedFuncLit reports whether the innermost enclosing function of
// the node at the top of stack is a literal other than root's owner.
func inNestedFuncLit(stack []ast.Node, root *ast.BlockStmt) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		if lit, ok := stack[i].(*ast.FuncLit); ok {
			return lit.Body != root
		}
	}
	return false
}

// inNonBlockingSelect reports whether the node at the top of stack sits
// in a comm clause of a select that has a default clause.
func inNonBlockingSelect(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					return true
				}
			}
			return false
		case *ast.FuncLit:
			return false
		}
	}
	return false
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "mutex"
	}
	return buf.String()
}
