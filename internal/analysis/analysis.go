// Package analysis is the repository's static-analysis suite: a set of
// invariant checkers encoding correctness properties that generic
// linters cannot know about, plus the minimal driver machinery to run
// them over type-checked packages.
//
// The analyzers encode invariants that have each produced (or nearly
// produced) real bugs in this repository:
//
//   - determinism: §7.4 of the paper demands bit-identical replay under
//     chaos, so replay-critical packages must not consult wall clocks,
//     unseeded randomness, or map iteration order when producing output.
//   - ctxflow: deadlines propagate serve → core → mapreduce; a library
//     function that accepts a context must not sever that chain with
//     context.Background(), and must not block without a cancellation
//     path (the drain-context bug class).
//   - boundedalloc: allocation sizes decoded from wire or file headers
//     must be bounded before element storage is allocated (the hostile
//     PiB-alloc class fixed in the serving layer).
//   - obsnames: metric and span names are dashboard API; they must be
//     compile-time constants in lowercase dotted form, never built with
//     fmt.Sprintf at observation time.
//   - lockscope: mutexes must not be held across channel operations or
//     context-blocking calls (the dead-singleflight race class).
//
// The framework deliberately mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer / Pass / Diagnostic) so the
// analyzers could be ported to the upstream driver mechanically, but it
// is implemented on the standard library alone: this module carries no
// third-party dependencies, and the lint gate should not be the thing
// that breaks that.
//
// False positives are silenced in place with an explanation:
//
//	//mrlint:allow <rule>[(<detail>)] -- <reason>
//
// on the offending line (or the line above), or package-wide when the
// directive appears in the package clause's doc comment block. See
// directive.go for the grammar.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the rule in diagnostics and in
	// //mrlint:allow directives. Lowercase, no spaces.
	Name string
	// Doc is a one-paragraph description: the invariant, and the
	// historical bug class it encodes.
	Doc string
	// Run applies the rule to a single package.
	Run func(*Pass) error
}

// A Pass is one application of one analyzer to one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos token.Pos
	// Rule is the analyzer name (or "directive" for malformed
	// suppression comments reported by the driver itself).
	Rule string
	// Detail is an optional sub-rule tag (e.g. "time.Now" within
	// determinism) that directives can match on.
	Detail  string
	Message string
}

// Report records a diagnostic. The driver fills in Rule.
func (p *Pass) Report(d Diagnostic) {
	d.Rule = p.Analyzer.Name
	p.diags = append(p.diags, d)
}

// Reportf records a diagnostic at pos with a formatted message and an
// optional detail tag for directive matching.
func (p *Pass) Reportf(pos token.Pos, detail, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Detail: detail, Message: fmt.Sprintf(format, args...)})
}

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Run applies each analyzer to pkg, filters the results through the
// package's //mrlint:allow directives, and returns the surviving
// diagnostics (plus one "directive" diagnostic per malformed
// suppression comment) sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	dirs, derrs := parseDirectives(pkg.Fset, pkg.Files)
	var out []Diagnostic
	out = append(out, derrs...)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		for _, d := range pass.diags {
			if !dirs.allows(pkg.Fset, d) {
				out = append(out, d)
			}
		}
	}
	sortDiagnostics(pkg.Fset, out)
	return out, nil
}

func sortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	// Insertion sort by (file, line, column, rule): diagnostic counts
	// are tiny and this avoids pulling in sort for a stable order.
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && diagLess(fset, ds[j], ds[j-1]); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

func diagLess(fset *token.FileSet, a, b Diagnostic) bool {
	pa, pb := fset.Position(a.Pos), fset.Position(b.Pos)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	if pa.Line != pb.Line {
		return pa.Line < pb.Line
	}
	if pa.Column != pb.Column {
		return pa.Column < pb.Column
	}
	return a.Rule < b.Rule
}
