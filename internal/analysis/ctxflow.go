package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow encodes the deadline-propagation invariant: a request's
// deadline travels serve → core → mapreduce as a context.Context, and
// the serving layer's drain logic depends on every blocking step
// honoring cancellation (the drain-context and dead-singleflight bugs
// were both breaks in this chain). Two sub-rules:
//
//   - background: a function that accepts a context but hands a callee
//     context.Background()/context.TODO() severs the chain — the
//     callee outlives the request's deadline. The fix is almost always
//     to pass the ctx already in scope (possibly via context.WithX).
//   - blocking-send: a bare channel send (`ch <- v` outside any
//     select) in a context-taking function has no cancellation path.
//     Sends on channels made in the same function with a buffer are
//     exempt: sizing a local channel so sends cannot block is the
//     repo's standard fan-out idiom, and the capacity argument is
//     visible right there.
//
// Scope: the replay-critical pipeline packages plus serve and fed,
// where every entry point is deadline-bearing.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "keep deadline propagation intact: no context.Background() handed to callees " +
		"by ctx-taking functions, no cancellation-free blocking sends",
	Run: runCtxFlow,
}

var ctxFlowPkgs = append([]string{"internal/serve", "internal/fed"}, replayCriticalPkgs...)

func runCtxFlow(pass *Pass) error {
	if !pkgInScope(pass.Pkg.Path(), ctxFlowPkgs) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			def, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if !ok || !hasCtxParam(def.Type().(*types.Signature)) {
				return true
			}
			ctxFlowFunc(pass, fn.Body)
			return true
		})
	}
	return nil
}

func ctxFlowFunc(pass *Pass, body *ast.BlockStmt) {
	buffered := bufferedLocalChans(pass.TypesInfo, body)
	// Walk with an explicit stack so sends can be tested for an
	// enclosing select.
	var stack []ast.Node
	visit := func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.CallExpr:
			checkBackgroundArg(pass, n)
		case *ast.SendStmt:
			if !nodeInSelect(stack) && !chanIsLocalBuffered(pass.TypesInfo, buffered, n.Chan) {
				pass.Reportf(n.Pos(), "blocking-send",
					"blocking channel send in a context-taking function with no cancellation path: wrap in a select with <-ctx.Done() (or size a local buffer so the send cannot block)")
			}
		}
		return true
	}
	ast.Inspect(body, visit)
}

// checkBackgroundArg flags context.Background()/TODO() passed as a
// call argument (the enclosing function is known to take a ctx).
func checkBackgroundArg(pass *Pass, call *ast.CallExpr) {
	for _, arg := range call.Args {
		inner, ok := ast.Unparen(arg).(*ast.CallExpr)
		if !ok {
			continue
		}
		name := ""
		switch {
		case isPkgFunc(pass.TypesInfo, inner, "context", "Background"):
			name = "context.Background()"
		case isPkgFunc(pass.TypesInfo, inner, "context", "TODO"):
			name = "context.TODO()"
		default:
			continue
		}
		pass.Reportf(arg.Pos(), "background",
			"%s passed to a callee from a function that already has a context: this severs deadline propagation — pass the ctx in scope", name)
	}
}

// bufferedLocalChans collects objects assigned `make(chan T, n)` in
// body.
func bufferedLocalChans(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return
		}
		if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fid.Name != "make" {
			return
		}
		if t := info.Types[call.Args[0]].Type; t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				if obj := info.ObjectOf(id); obj != nil {
					out[obj] = true
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return out
}

func chanIsLocalBuffered(info *types.Info, buffered map[types.Object]bool, ch ast.Expr) bool {
	id, ok := ast.Unparen(ch).(*ast.Ident)
	if !ok {
		return false
	}
	return buffered[info.ObjectOf(id)]
}

// nodeInSelect reports whether the innermost statement context of the
// node stack is a select communication clause.
func nodeInSelect(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.CommClause:
			return true
		case *ast.FuncLit:
			return false // a closure resets the select context
		}
	}
	return false
}
