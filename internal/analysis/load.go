package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package loading. Two entry points:
//
//   - LoadPatterns resolves `go list`-style patterns ("./...") against
//     the current module and type-checks each listed package. Module
//     dependencies are resolved from source through the go/build
//     machinery, so the loader works offline and needs nothing beyond
//     the go toolchain itself.
//   - LoadDir type-checks one directory of Go files as a package with
//     an explicit import path — the analysistest harness uses it to
//     give fixture packages paths that exercise the analyzers'
//     package-scoping rules.

// NewImporter builds the dependency importer: every import —
// standard library and in-module "repro/..." packages alike — is
// type-checked from source through one shared instance, so all
// packages analyzed against the same FileSet live in a single
// consistent type universe (mixing a compiled-export-data importer
// with a source importer yields two distinct context.Context types
// and spurious mismatch errors). Source importing needs nothing
// beyond $GOROOT and the module tree, so the loader works offline.
func NewImporter(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "source", nil)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

func checkFiles(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*Package, error) {
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// LoadDir parses and type-checks the non-test Go files in dir as a
// single package imported as path. imp may be nil, in which case a
// fresh fallback importer is used.
func LoadDir(fset *token.FileSet, imp types.Importer, dir, path string) (*Package, error) {
	if imp == nil {
		imp = NewImporter(fset)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return checkFiles(fset, imp, path, files)
}

// listedPackage is the subset of `go list -json` output the loader
// needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
}

// LoadPatterns lists the packages matching patterns with the go tool
// and type-checks each one (non-test files only; test files are vetted
// by the regular `go vet` gate). One shared importer serves every
// package, so common dependencies are checked once per run.
func LoadPatterns(fset *token.FileSet, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var listed []listedPackage
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("go list %v: decode: %v", patterns, err)
		}
		if len(lp.GoFiles) > 0 {
			listed = append(listed, lp)
		}
	}
	sort.Slice(listed, func(i, j int) bool { return listed[i].ImportPath < listed[j].ImportPath })

	imp := NewImporter(fset)
	var pkgs []*Package
	for _, lp := range listed {
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, err := checkFiles(fset, imp, lp.ImportPath, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
