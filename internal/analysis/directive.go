package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// Suppression directives.
//
// Grammar (one directive per comment line, no space after //):
//
//	//mrlint:allow <rule>[(<detail>)][,<rule>[(<detail>)]...] -- <reason>
//
// The reason is mandatory: an allowlist entry without a recorded
// justification is itself a violation. Placement decides scope:
//
//   - In the package clause's doc comment block: suppresses the rule
//     for the entire package (every file of this build). This is the
//     "per-package allowlist" form — e.g. a package whose wall-clock
//     reads all feed observability can allow determinism(time.Now)
//     once, in one place a reviewer will see.
//   - Anywhere else: suppresses diagnostics on the directive's own
//     line and on the next line, so the comment can sit at the end of
//     the offending line or on its own line directly above it.
//
// An empty <detail> matches every detail of the rule; a non-empty one
// must equal the diagnostic's detail tag exactly.

const directivePrefix = "//mrlint:"

type allowKey struct {
	rule   string
	detail string
}

type directiveSet struct {
	// pkg holds package-scoped allows.
	pkg map[allowKey]bool
	// line holds line-scoped allows: file -> line -> keys. The entry
	// is recorded for the directive's line and the following line.
	line map[string]map[int][]allowKey
}

// allows reports whether d is suppressed by a directive.
func (s *directiveSet) allows(fset *token.FileSet, d Diagnostic) bool {
	if d.Rule == "directive" {
		return false // malformed directives cannot self-suppress
	}
	keys := []allowKey{{d.Rule, ""}, {d.Rule, d.Detail}}
	for _, k := range keys {
		if s.pkg[k] {
			return true
		}
	}
	pos := fset.Position(d.Pos)
	for _, k := range s.line[pos.Filename][pos.Line] {
		if k.rule == d.Rule && (k.detail == "" || k.detail == d.Detail) {
			return true
		}
	}
	return false
}

// parseDirectives scans every comment in files for //mrlint: lines.
// Malformed directives are returned as rule "directive" diagnostics so
// a typo'd suppression fails the lint run instead of silently allowing
// nothing (or worse, appearing to allow something).
func parseDirectives(fset *token.FileSet, files []*ast.File) (*directiveSet, []Diagnostic) {
	s := &directiveSet{
		pkg:  map[allowKey]bool{},
		line: map[string]map[int][]allowKey{},
	}
	var errs []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			pkgScope := f.Doc == cg
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				keys, msg := parseAllow(strings.TrimPrefix(c.Text, "//"))
				if msg != "" {
					errs = append(errs, Diagnostic{
						Pos: c.Pos(), Rule: "directive", Message: msg,
					})
					continue
				}
				if pkgScope {
					for _, k := range keys {
						s.pkg[k] = true
					}
					continue
				}
				pos := fset.Position(c.Pos())
				m := s.line[pos.Filename]
				if m == nil {
					m = map[int][]allowKey{}
					s.line[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], keys...)
				m[pos.Line+1] = append(m[pos.Line+1], keys...)
			}
		}
	}
	return s, errs
}

// parseAllow parses "mrlint:allow rule(detail),rule2 -- reason". It
// returns the allow keys, or a non-empty error message.
func parseAllow(text string) ([]allowKey, string) {
	rest, ok := strings.CutPrefix(text, "mrlint:allow")
	if !ok {
		return nil, "malformed mrlint directive: only //mrlint:allow is recognized"
	}
	if rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
		return nil, "malformed mrlint:allow directive: need a space before the rule list"
	}
	spec, reason, found := strings.Cut(rest, "--")
	if !found || strings.TrimSpace(reason) == "" {
		return nil, "mrlint:allow directive needs a justification: `//mrlint:allow <rule> -- <reason>`"
	}
	var keys []allowKey
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			return nil, "mrlint:allow directive has an empty rule entry"
		}
		rule, detail := item, ""
		if open := strings.IndexByte(item, '('); open >= 0 {
			if !strings.HasSuffix(item, ")") {
				return nil, "mrlint:allow directive has an unclosed detail parenthesis"
			}
			rule, detail = item[:open], item[open+1:len(item)-1]
		}
		if !validRuleName(rule) {
			return nil, "mrlint:allow directive names invalid rule " + strconv.Quote(rule)
		}
		keys = append(keys, allowKey{rule: rule, detail: detail})
	}
	return keys, ""
}

func validRuleName(rule string) bool {
	if rule == "" {
		return false
	}
	for _, a := range All() {
		if a.Name == rule {
			return true
		}
	}
	return false
}
