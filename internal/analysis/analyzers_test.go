package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// Each analyzer is run over fixture packages whose import paths place
// them inside and outside the analyzer's scope; the fixtures carry
// `// want` expectations, so a disabled or weakened rule fails these
// tests on unmatched wants.

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Determinism,
		"determinism/internal/mapreduce/a",
		"determinism/other/a",
		"determinism/internal/core/allowpkg",
	)
}

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.CtxFlow,
		"ctxflow/internal/core/a",
		"ctxflow/other/a",
	)
}

func TestBoundedAlloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.BoundedAlloc,
		"boundedalloc/a",
	)
}

func TestObsNames(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.ObsNames,
		"obsnames/a",
		"obsnames/obs",
	)
}

func TestLockScope(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.LockScope,
		"lockscope/internal/serve/a",
		"lockscope/other/a",
	)
}
