package analysistest

import (
	"testing"

	"repro/internal/analysis"
)

// TestHarness runs the harness end to end over its own fixture: the
// want comment must match, the //mrlint:allow suppression must be
// honored, and the fixture's `fake` import must resolve from
// testdata/src through the fixture importer.
func TestHarness(t *testing.T) {
	Run(t, TestData(), analysis.Determinism, "determinism/internal/core/x")
}
