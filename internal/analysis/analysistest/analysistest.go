// Package analysistest runs an analyzer over fixture packages under
// testdata/src and compares its diagnostics against `// want`
// expectations, mirroring the conventions of
// golang.org/x/tools/go/analysis/analysistest on the standard library
// alone.
//
// A fixture package lives at <testdata>/src/<importpath>; the import
// path is chosen by the test and is significant — analyzers that scope
// themselves to repository packages (e.g. determinism only fires in
// internal/mapreduce and friends) are exercised by giving fixtures
// paths inside and outside that scope.
//
// Expectations are comments on the offending line:
//
//	bad := time.Now() // want "wall-clock"
//	a, b := f()       // want "first" "second"
//
// Each quoted string is a regexp that must match one diagnostic
// reported on that line; diagnostics with no matching want, and wants
// with no matching diagnostic, fail the test. //mrlint:allow
// directives are honored exactly as in the real driver, so fixtures
// also lock in the suppression path.
package analysistest

import (
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestData returns the testdata directory of the caller's package.
func TestData() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return filepath.Join(wd, "testdata")
}

// fixtureImporter resolves imports from <testdata>/src first — so
// fixtures can stand in small fake packages (an "obs", a "matrix") for
// repository ones — and falls back to the shared source importer for
// everything else (the standard library).
type fixtureImporter struct {
	fset     *token.FileSet
	testdata string
	delegate types.Importer
	cache    map[string]*types.Package
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := fi.cache[path]; ok {
		return p, nil
	}
	dir := filepath.Join(fi.testdata, "src", filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		pkg, err := analysis.LoadDir(fi.fset, fi, dir, path)
		if err != nil {
			return nil, err
		}
		fi.cache[path] = pkg.Types
		return pkg.Types, nil
	}
	return fi.delegate.Import(path)
}

// Run loads each fixture package and checks a's diagnostics against
// the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, importPaths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	imp := &fixtureImporter{
		fset:     fset,
		testdata: testdata,
		delegate: analysis.NewImporter(fset),
		cache:    map[string]*types.Package{},
	}
	for _, path := range importPaths {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(path))
		pkg, err := analysis.LoadDir(fset, imp, dir, path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		diags, err := analysis.Run(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		checkWants(t, fset, dir, path, diags)
	}
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want((?:\s+"(?:[^"\\]|\\.)*")+)`)
var wantArgRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// checkWants compares diagnostics against the want comments found in
// every fixture file.
func checkWants(t *testing.T, fset *token.FileSet, dir, path string, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		file := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
				pattern := strings.ReplaceAll(arg[1], `\"`, `"`)
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", file, i+1, pattern, err)
				}
				wants = append(wants, &want{file: file, line: i + 1, re: re, raw: pattern})
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.matched || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) || w.re.MatchString(d.Rule+": "+d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic in %s:\n  %s:%d: %s: %s",
				path, pos.Filename, filepath.Base(pos.Filename), pos.Line, d.Rule, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no diagnostic matched want %q at %s:%d",
				path, w.raw, filepath.Base(w.file), w.line)
		}
	}
}
