// Package fake exists to exercise the harness's fixture importer: the
// sibling fixture imports it by bare path, which must resolve from
// testdata/src rather than the real module.
package fake

func Value() int { return 42 }
