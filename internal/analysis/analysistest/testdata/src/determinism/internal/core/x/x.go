// Package x is the harness's own smoke fixture: one positive, one
// suppressed positive, one negative, and an import that must resolve
// through the testdata fixture importer.
package x

import (
	"time"

	"fake"
)

func clock() int64 {
	return time.Now().Unix() // want "wall-clock values must not influence replayed output"
}

func allowed() int64 {
	//mrlint:allow determinism(time.Now) -- harness fixture: suppression must be honored
	return time.Now().Unix()
}

func ok() int { return fake.Value() }
