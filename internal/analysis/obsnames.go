package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
)

// ObsNames keeps metric and span names dashboard-stable. Names
// registered with the obs package are external API: dashboards, CI
// gates, and the /metricz and /statz parsers all key on them, so they
// must be knowable by reading the source. Two sub-rules:
//
//   - dynamic: the name argument to Registry.Counter/Gauge/Histogram,
//     Tracer.StartSpan, or Span.Child is built at call time
//     (fmt.Sprintf, concatenation with a variable, a computed
//     string). Unbounded dynamic names silently fork time series;
//     genuinely bounded families (one counter per shard) take a
//     //mrlint:allow obsnames -- <cardinality argument> directive.
//   - grammar: constant names must be lowercase dotted
//     subsystem.name form: `serve.cache_hits`, `mapreduce.slot_wait`.
//
// Thin forwarding helpers (func (e *Engine) count(name string, ...) {
// e.metrics.Counter(name)... }) are recognized: the parameter-passing
// call is skipped and the helper's own call sites are checked instead,
// one level deep.
var ObsNames = &Analyzer{
	Name: "obsnames",
	Doc: "metric/span names must be compile-time constants in lowercase dotted " +
		"subsystem.name form — dashboards key on them",
	Run: runObsNames,
}

// Metric names must carry a subsystem prefix ("serve.cache_hits");
// span names may be single-segment ("shuffle") because the trace tree
// provides the context, but share the lowercase/underscore/dot
// alphabet — no colons, hyphens, or uppercase.
var (
	metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9][a-z0-9_]*)+$`)
	spanNameRE   = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9][a-z0-9_]*)*$`)
)

// obsCallSpec describes one obs naming method: where the name
// argument sits and which grammar applies.
type obsCallSpec struct {
	nameIdx int
	metric  bool
}

// obsNameMethods maps obs receiver type name -> method name -> spec.
var obsNameMethods = map[string]map[string]obsCallSpec{
	"Registry": {"Counter": {0, true}, "Gauge": {0, true}, "Histogram": {0, true}},
	"Tracer":   {"StartSpan": {0, false}},
	"Span":     {"Child": {0, false}},
}

type obsWrapper struct {
	paramIdx int
	metric   bool
}

func runObsNames(pass *Pass) error {
	if pathBase(pass.Pkg.Path()) == "obs" {
		// The registry implementation re-looks entries up by their
		// stored (already validated) names; checking it would only
		// flag its own internals.
		return nil
	}
	// First pass: find direct obs calls, checking literal names and
	// recording forwarding wrappers (name arg is a parameter of the
	// enclosing function).
	wrappers := map[*types.Func]obsWrapper{}
	for _, file := range pass.Files {
		var enclosing *types.Func
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				enclosing, _ = pass.TypesInfo.Defs[n.Name].(*types.Func)
			case *ast.CallExpr:
				spec, ok := obsNameSpec(pass.TypesInfo, n)
				if !ok || spec.nameIdx >= len(n.Args) {
					return true
				}
				arg := n.Args[spec.nameIdx]
				if pidx, isParam := paramIndexOf(enclosing, pass.TypesInfo, arg); isParam {
					if _, seen := wrappers[enclosing]; !seen {
						wrappers[enclosing] = obsWrapper{paramIdx: pidx, metric: spec.metric}
					}
					return true
				}
				checkObsName(pass, arg, spec.metric)
			}
			return true
		})
	}
	if len(wrappers) == 0 {
		return nil
	}
	// Second pass: check call sites of the wrappers.
	for _, file := range pass.Files {
		var enclosing *types.Func
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				enclosing, _ = pass.TypesInfo.Defs[n.Name].(*types.Func)
			case *ast.CallExpr:
				f := funcObj(pass.TypesInfo, n)
				if f == nil {
					return true
				}
				w, isWrapper := wrappers[f]
				if !isWrapper || w.paramIdx >= len(n.Args) {
					return true
				}
				arg := n.Args[w.paramIdx]
				if _, isParam := paramIndexOf(enclosing, pass.TypesInfo, arg); isParam {
					return true // wrapper-of-wrapper: accepted one level deep
				}
				checkObsName(pass, arg, w.metric)
			}
			return true
		})
	}
	return nil
}

func checkObsName(pass *Pass, arg ast.Expr, metric bool) {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(arg.Pos(), "dynamic",
			"metric/span name is built at call time: use a compile-time constant so dashboards can key on it (bounded families: //mrlint:allow obsnames -- <why cardinality is bounded>)")
		return
	}
	name := constant.StringVal(tv.Value)
	if metric && !metricNameRE.MatchString(name) {
		pass.Reportf(arg.Pos(), "grammar",
			"metric name %q is not lowercase dotted subsystem.name form (want e.g. \"serve.cache_hits\")", name)
	} else if !metric && !spanNameRE.MatchString(name) {
		pass.Reportf(arg.Pos(), "grammar",
			"span name %q is not lowercase dotted form (letters/digits/underscores, dot-separated; no colons or hyphens)", name)
	}
}

// obsNameSpec reports whether call is a direct call to one of the obs
// naming methods, returning that method's spec.
func obsNameSpec(info *types.Info, call *ast.CallExpr) (obsCallSpec, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return obsCallSpec{}, false
	}
	f, _ := info.Uses[sel.Sel].(*types.Func)
	if f == nil || f.Pkg() == nil || pathBase(f.Pkg().Path()) != "obs" {
		return obsCallSpec{}, false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return obsCallSpec{}, false
	}
	recvName := receiverTypeName(sig.Recv().Type())
	methods, ok := obsNameMethods[recvName]
	if !ok {
		return obsCallSpec{}, false
	}
	spec, ok := methods[f.Name()]
	return spec, ok
}

func receiverTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// paramIndexOf reports whether arg is a bare reference to a parameter
// of fn, returning its index in fn's signature.
func paramIndexOf(fn *types.Func, info *types.Info, arg ast.Expr) (int, bool) {
	if fn == nil {
		return 0, false
	}
	id, ok := ast.Unparen(arg).(*ast.Ident)
	if !ok {
		return 0, false
	}
	obj := info.ObjectOf(id)
	if obj == nil {
		return 0, false
	}
	params := fn.Type().(*types.Signature).Params()
	for i := 0; i < params.Len(); i++ {
		if params.At(i) == obj {
			return i, true
		}
	}
	return 0, false
}
