// Package obs is a fixture stand-in for the repository's obs package.
// The obsnames analyzer matches callees by package base name and
// receiver type name, so this skeleton is enough to exercise it.
package obs

type Registry struct{}

func (r *Registry) Counter(name string) *Counter     { return &Counter{} }
func (r *Registry) Gauge(name string) *Gauge         { return &Gauge{} }
func (r *Registry) Histogram(name string) *Histogram { return &Histogram{} }

type Counter struct{}

func (c *Counter) Add(d float64) {}

type Gauge struct{}

func (g *Gauge) Set(v float64) {}

type Histogram struct{}

func (h *Histogram) Observe(v float64) {}

type Tracer struct{}

func (t *Tracer) StartSpan(name string) *Span { return &Span{} }

type Span struct{}

func (s *Span) Child(name string) *Span { return &Span{} }
func (s *Span) End()                    {}
