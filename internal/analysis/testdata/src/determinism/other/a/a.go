// Package a repeats the determinism violations in an import path
// outside the replay-critical scope: none of them may be reported.
package a

import (
	"math/rand"
	"time"
)

func clock() int64 {
	return time.Now().Unix()
}

func ambientRand() int {
	return rand.Intn(10)
}

func unsortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
