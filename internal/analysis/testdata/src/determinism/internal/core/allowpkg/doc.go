// Package allowpkg exercises the package-scoped allowlist: the
// directive below suppresses the time.Now sub-rule for every file of
// the package, while other determinism sub-rules keep firing.
//
//mrlint:allow determinism(time.Now) -- wall-clock reads here feed timing reports only
package allowpkg
