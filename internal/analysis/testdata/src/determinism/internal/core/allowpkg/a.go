package allowpkg

import (
	"math/rand"
	"time"
)

func clock() int64 {
	return time.Now().Unix() // suppressed by the package-scope directive in doc.go
}

func stillFlagged() int {
	return rand.Intn(10) // want "draws from the ambient global source"
}
