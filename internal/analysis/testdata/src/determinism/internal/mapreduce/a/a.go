// Package a exercises every determinism sub-rule inside a
// replay-critical import path.
package a

import (
	"math/rand"
	"sort"
	"time"
)

func clock() int64 {
	t := time.Now() // want "wall-clock values must not influence replayed output"
	return t.Unix()
}

func allowedClock() int64 {
	//mrlint:allow determinism(time.Now) -- measurement only, never reaches output bytes
	return time.Now().Unix()
}

func ambientRand() int {
	return rand.Intn(10) // want "draws from the ambient global source"
}

func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func unsortedKeys(m map[string]int) []string {
	var out []string
	for k := range m { // want "map iteration order is nondeterministic"
		out = append(out, k)
	}
	return out
}

func sortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func reduceSum(m map[string]int) int {
	total := 0
	for _, v := range m { // order-insensitive accumulation: no sequence is built
		total += v
	}
	return total
}

func racyCounter(work []int) int {
	done := 0
	for range work {
		go func() {
			done++ // want "captured by a go closure without synchronization"
		}()
	}
	return done
}

func localCounter(work []int) {
	for range work {
		go func() {
			n := 0
			n++ // goroutine-local: fine
			_ = n
		}()
	}
}

type locked struct{ mu interface{ Lock() } }

func guardedCounter(l *locked, work []int) int {
	done := 0
	for range work {
		go func() {
			l.mu.Lock()
			done++ // closure takes a lock: skipped by the linear analysis
		}()
	}
	return done
}
