package a

// A typo'd suppression must fail the run, not silently allow nothing.

//mrlint:allow nosuchrule -- typo'd rule name // want "names invalid rule"

//mrlint:allow determinism // want "needs a justification"
