// Package a exercises lockscope inside a serving-path import path.
package a

import (
	"context"
	"sync"
)

type server struct {
	mu sync.Mutex
	ch chan int
}

func run(ctx context.Context) {}

func (s *server) badSend() {
	s.mu.Lock()
	s.ch <- 1 // want "channel send while holding"
	s.mu.Unlock()
}

func (s *server) sendAfterUnlock() {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- 1
}

func (s *server) badRecvUnderDefer() {
	s.mu.Lock()
	defer s.mu.Unlock()
	<-s.ch // want "channel receive while holding"
}

func (s *server) nonBlockingSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1:
	default:
	}
}

func (s *server) badBlockingCall(ctx context.Context) {
	s.mu.Lock()
	defer s.mu.Unlock()
	run(ctx) // want "can block on a deadline or slot wait with the mutex held"
}

func (s *server) badWait(wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Wait() // want "can block on a deadline or slot wait with the mutex held"
	s.mu.Unlock()
}

func (s *server) callAfterUnlock(ctx context.Context) {
	s.mu.Lock()
	s.mu.Unlock()
	run(ctx)
}

func (s *server) ctxConstructorIsFine(ctx context.Context) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, cancel := context.WithCancel(ctx)
	_ = c
	cancel()
}

func (s *server) goroutineIsSeparate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.ch <- 1 // runs after the spawn, not under the spawner's lock
	}()
}

func (s *server) allowedSend() {
	s.mu.Lock()
	//mrlint:allow lockscope(send) -- ch is buffered to fleet size at construction; the send cannot block
	s.ch <- 1
	s.mu.Unlock()
}
