// Package a repeats the lockscope violations outside the serving-path
// scope: none may be reported.
package a

import "sync"

type worker struct {
	mu sync.Mutex
	ch chan int
}

func (w *worker) sendUnderLock() {
	w.mu.Lock()
	w.ch <- 1
	w.mu.Unlock()
}
