// Package a repeats the ctxflow violations outside the scoped
// packages: none may be reported.
package a

import "context"

func dep(ctx context.Context) {}

func severed(ctx context.Context) {
	dep(context.Background())
}

func blockingSend(ctx context.Context, ch chan int) {
	ch <- 1
}
