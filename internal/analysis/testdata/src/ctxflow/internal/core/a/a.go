// Package a exercises ctxflow inside a scoped import path.
package a

import "context"

func dep(ctx context.Context) {}

func severed(ctx context.Context) {
	dep(context.Background()) // want "severs deadline propagation"
	dep(context.TODO())       // want "severs deadline propagation"
}

func propagated(ctx context.Context) {
	dep(ctx)
}

// noCtx takes no context, so handing callees a fresh root is its only
// option: out of the rule's scope.
func noCtx() {
	dep(context.Background())
}

func blockingSend(ctx context.Context, ch chan int) {
	ch <- 1 // want "blocking channel send in a context-taking function"
}

func selectSend(ctx context.Context, ch chan int) {
	select {
	case ch <- 1:
	case <-ctx.Done():
	}
}

func localBufferedSend(ctx context.Context, n int) <-chan int {
	out := make(chan int, n)
	out <- 1 // sized-local-buffer idiom: exempt
	return out
}

func allowedSend(ctx context.Context, ch chan int) {
	//mrlint:allow ctxflow(blocking-send) -- receiver is drained unconditionally by the caller
	ch <- 1
}
