// Package a exercises obsnames: constant-name grammar, dynamic names,
// forwarding wrappers, and the cardinality allowlist.
package a

import (
	"fmt"

	"obs"
)

func metrics(reg *obs.Registry, shard int) {
	reg.Counter("serve.cache_hits").Add(1)
	reg.Counter("BadName").Add(1)                          // want "not lowercase dotted subsystem.name form"
	reg.Counter("flat").Add(1)                             // want "not lowercase dotted subsystem.name form"
	reg.Gauge(fmt.Sprintf("shard.%d.depth", shard)).Set(0) // want "built at call time"
	name := "serve." + suffix()
	reg.Histogram(name).Observe(1) // want "built at call time"
}

func suffix() string { return "x" }

func constExpr(reg *obs.Registry) {
	// Constant folding: a concatenation of constants is still a
	// compile-time constant, and grammar applies to the folded value.
	reg.Counter("serve" + "." + "hits").Add(1)
	reg.Counter("serve" + ":hits").Add(1) // want "not lowercase dotted subsystem.name form"
}

func spans(tr *obs.Tracer) {
	sp := tr.StartSpan("shuffle") // single-segment span names are fine
	sp.Child("map_recovery").End()
	sp.Child("chaos:kill").End() // want "no colons or hyphens"
}

type engine struct{ reg *obs.Registry }

// count forwards its name parameter to the registry: the analyzer
// checks count's call sites instead of this line.
func (e *engine) count(name string) { e.reg.Counter(name).Add(1) }

func wrapped(e *engine) {
	e.count("serve.hits")
	e.count("Nope")                     // want "not lowercase dotted subsystem.name form"
	e.count(fmt.Sprintf("serve.%d", 1)) // want "built at call time"
}

func perShard(reg *obs.Registry, shard int) {
	//mrlint:allow obsnames(dynamic) -- one counter per shard, bounded by fleet size
	reg.Counter(fmt.Sprintf("fed.shard.%d.requests", shard)).Add(1)
}
