// Package obs mirrors the shape of the real registry implementation:
// packages whose import path ends in /obs are exempt from obsnames,
// because the registry re-handles names its callers already had
// validated. Nothing here may be reported.
package obs

type Registry struct{ names []string }

func (r *Registry) Counter(name string) int {
	r.names = append(r.names, name)
	return 0
}

func (r *Registry) Render() {
	for _, n := range r.names {
		r.Counter("re:" + n)
	}
}
