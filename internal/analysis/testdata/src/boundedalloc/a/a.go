// Package a exercises boundedalloc: sources are byte-order decodes and
// binary.Read targets, sinks are make and matrix.New.
package a

import (
	"bytes"
	"encoding/binary"

	"matrix"
)

func unbounded(buf []byte) []byte {
	n := binary.LittleEndian.Uint32(buf)
	return make([]byte, n) // want "decoded from wire/header bytes .* without a bound check"
}

func bounded(buf []byte) []byte {
	n := binary.LittleEndian.Uint32(buf)
	if n > 1<<20 {
		return nil
	}
	return make([]byte, n)
}

func boundedSwitch(buf []byte) []byte {
	n := binary.LittleEndian.Uint16(buf)
	switch {
	case n > 4096:
		return nil
	}
	return make([]byte, n)
}

func checkedTooLate(buf []byte) []byte {
	n := binary.LittleEndian.Uint32(buf)
	out := make([]byte, n) // want "decoded from wire/header bytes .* without a bound check"
	if n > 1<<20 {
		return nil
	}
	return out
}

func viaBinaryRead(r *bytes.Reader) ([]float64, error) {
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	out := make([]float64, count) // want "decoded from wire/header bytes .* without a bound check"
	return out, nil
}

func dims(hdr []byte) *matrix.Dense {
	r := binary.LittleEndian.Uint32(hdr)
	c := binary.LittleEndian.Uint32(hdr[4:])
	return matrix.New(int(r), int(c)) // want "\"r\", which was decoded" "\"c\", which was decoded"
}

func propagated(buf []byte) []byte {
	n := binary.LittleEndian.Uint64(buf)
	total := int(n) * 8
	return make([]byte, total) // want "decoded from wire/header bytes .* without a bound check"
}

func clampedByMin(buf []byte) []byte {
	n := binary.LittleEndian.Uint32(buf)
	k := min(int(n), 4096)
	return make([]byte, k)
}

func clampLimit(n uint32) int {
	if n > 4096 {
		return 4096
	}
	return int(n)
}

func clampedByHelper(buf []byte) []byte {
	n := binary.LittleEndian.Uint32(buf)
	return make([]byte, clampLimit(n))
}

func trusted(buf []byte) []byte {
	n := binary.LittleEndian.Uint32(buf)
	//mrlint:allow boundedalloc -- header is checksum-verified before this point
	return make([]byte, n)
}
