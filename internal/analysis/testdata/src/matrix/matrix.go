// Package matrix is a fixture stand-in for the repository's matrix
// package: boundedalloc treats matrix.New's dimension arguments as
// allocation sinks by the package's base name.
package matrix

type Dense struct {
	Rows, Cols int
	Data       []float64
}

func New(r, c int) *Dense {
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}
