package analysis

import "testing"

func TestParseAllow(t *testing.T) {
	cases := []struct {
		name    string
		text    string
		keys    []allowKey
		wantErr bool
	}{
		{
			name: "single rule",
			text: "mrlint:allow determinism -- measured only",
			keys: []allowKey{{"determinism", ""}},
		},
		{
			name: "rule with detail",
			text: "mrlint:allow determinism(time.Now) -- measured only",
			keys: []allowKey{{"determinism", "time.Now"}},
		},
		{
			name: "multiple rules",
			text: "mrlint:allow obsnames(dynamic),lockscope(send) -- bounded family; sized channel",
			keys: []allowKey{{"obsnames", "dynamic"}, {"lockscope", "send"}},
		},
		{
			name:    "missing reason",
			text:    "mrlint:allow determinism",
			wantErr: true,
		},
		{
			name:    "empty reason",
			text:    "mrlint:allow determinism -- ",
			wantErr: true,
		},
		{
			name:    "unknown rule",
			text:    "mrlint:allow nosuchrule -- why not",
			wantErr: true,
		},
		{
			name:    "unknown verb",
			text:    "mrlint:deny determinism -- nope",
			wantErr: true,
		},
		{
			name:    "unclosed detail",
			text:    "mrlint:allow determinism(time.Now -- oops",
			wantErr: true,
		},
		{
			name:    "empty rule entry",
			text:    "mrlint:allow determinism,, -- oops",
			wantErr: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			keys, msg := parseAllow(tc.text)
			if tc.wantErr {
				if msg == "" {
					t.Fatalf("parseAllow(%q): expected an error, got keys %v", tc.text, keys)
				}
				return
			}
			if msg != "" {
				t.Fatalf("parseAllow(%q): unexpected error %q", tc.text, msg)
			}
			if len(keys) != len(tc.keys) {
				t.Fatalf("parseAllow(%q): got %v, want %v", tc.text, keys, tc.keys)
			}
			for i := range keys {
				if keys[i] != tc.keys[i] {
					t.Errorf("parseAllow(%q)[%d]: got %+v, want %+v", tc.text, i, keys[i], tc.keys[i])
				}
			}
		})
	}
}

func TestDirectiveCannotSelfSuppress(t *testing.T) {
	s := &directiveSet{pkg: map[allowKey]bool{}, line: map[string]map[int][]allowKey{}}
	// Even a hypothetical blanket package allow must not hide malformed
	// directive reports.
	for _, a := range All() {
		s.pkg[allowKey{a.Name, ""}] = true
	}
	d := Diagnostic{Rule: "directive", Message: "malformed"}
	if s.allows(nil, d) {
		t.Fatal("a directive diagnostic was suppressed by an allowlist entry")
	}
}
