package analysis_test

import (
	"go/token"
	"testing"

	"repro/internal/analysis"
)

// TestSuiteCleanOnRepo is the lint gate's own regression test: the
// committed tree must carry zero mrlint diagnostics. cmd/mrlint runs
// the same loader and analyzer set, so this is equivalent to asserting
// `mrlint ./...` exits 0.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	fset := token.NewFileSet()
	pkgs, err := analysis.LoadPatterns(fset, []string{"repro/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("LoadPatterns(repro/...) resolved no packages")
	}
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analysis.All())
		if err != nil {
			t.Fatalf("%s: %v", pkg.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s: %s: %s", pkg.Path, fset.Position(d.Pos), d.Rule, d.Message)
		}
	}
}
