package cholesky

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/lu"
	"repro/internal/matrix"
	"repro/internal/workload"
)

func TestDecomposeReconstructs(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 40} {
		a := workload.SPD(n, int64(n))
		l, err := Decompose(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		llt, err := matrix.MulTransB(l, l)
		if err != nil {
			t.Fatal(err)
		}
		if d := matrix.MaxAbsDiff(llt, a); d > 1e-8*(1+matrix.MaxAbs(a)) {
			t.Fatalf("n=%d: LL^T differs by %g", n, d)
		}
		// L strictly lower triangular above diagonal.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Fatal("L not lower triangular")
				}
			}
			if l.At(i, i) <= 0 {
				t.Fatal("non-positive diagonal")
			}
		}
	}
}

func TestDecomposeRejectsNonSPD(t *testing.T) {
	if _, err := Decompose(matrix.New(2, 3)); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("err = %v", err)
	}
	asym := matrix.FromRows([][]float64{{1, 2}, {3, 1}})
	if _, err := Decompose(asym); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("err = %v", err)
	}
	indef := matrix.FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Decompose(indef); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("err = %v", err)
	}
}

func TestInvertMatchesLU(t *testing.T) {
	a := workload.SPD(24, 91)
	got, err := Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	want, err := lu.Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(got, want); d > 1e-8 {
		t.Fatalf("Cholesky and LU inverses differ by %g", d)
	}
	res, err := matrix.IdentityResidual(a, got)
	if err != nil {
		t.Fatal(err)
	}
	if res > 1e-8 {
		t.Fatalf("residual %g", res)
	}
}

func TestSolveVec(t *testing.T) {
	n := 30
	a := workload.SPD(n, 92)
	want := make([]float64, n)
	for i := range want {
		want[i] = math.Sin(float64(i))
	}
	b, err := matrix.MulVec(a, want)
	if err != nil {
		t.Fatal(err)
	}
	x, err := SolveVec(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	if _, err := SolveVec(a, make([]float64, 3)); err == nil {
		t.Fatal("short rhs accepted")
	}
}

func TestLogDet(t *testing.T) {
	// Diagonal SPD matrix: log det = sum log d_i.
	n := 6
	a := matrix.New(n, n)
	want := 0.0
	for i := 0; i < n; i++ {
		v := float64(i + 2)
		a.Set(i, i, v)
		want += math.Log(v)
	}
	got, err := LogDet(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("logdet = %v, want %v", got, want)
	}
}

// Property: for random SPD inputs, Cholesky inversion satisfies the
// residual criterion.
func TestQuickInvertSPD(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%16) + 1
		a := workload.SPD(n, seed)
		inv, err := Invert(a)
		if err != nil {
			return false
		}
		res, err := matrix.IdentityResidual(a, inv)
		return err == nil && res < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
