// Package cholesky implements Cholesky factorization (A = L L^T) and
// SPD-matrix inversion — the Section 3 related-work baseline: "for
// symmetric positive definite matrices ... Bientinesi, Gunter, and Geijn
// present a parallel matrix inversion algorithm based on the Cholesky
// factorization". The paper's point is that such specialized inverters
// beat general ones on their niche but "do not work for general
// matrices"; this package exists to make that comparison measurable
// (half the floating-point work of LU on SPD inputs, no pivoting).
package cholesky

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/lu"
	"repro/internal/matrix"
)

// ErrNotSPD is returned when the input is not symmetric positive definite
// to working precision.
var ErrNotSPD = errors.New("cholesky: matrix is not symmetric positive definite")

// symTol bounds the allowed asymmetry relative to the matrix magnitude.
const symTol = 1e-12

// Decompose computes the lower triangular L with A = L L^T. The input
// must be symmetric positive definite.
func Decompose(a *matrix.Dense) (*matrix.Dense, error) {
	if !a.IsSquare() {
		return nil, fmt.Errorf("cholesky: %dx%d not square: %w", a.Rows, a.Cols, ErrNotSPD)
	}
	n := a.Rows
	scale := matrix.MaxAbs(a)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a.At(i, j)-a.At(j, i)) > symTol*(1+scale) {
				return nil, fmt.Errorf("cholesky: asymmetric at (%d,%d): %w", i, j, ErrNotSPD)
			}
		}
	}
	l := matrix.New(n, n)
	for j := 0; j < n; j++ {
		// Diagonal entry.
		s := a.At(j, j)
		ljRow := l.Row(j)
		for k := 0; k < j; k++ {
			s -= ljRow[k] * ljRow[k]
		}
		if s <= 0 {
			return nil, fmt.Errorf("cholesky: non-positive pivot %g at %d: %w", s, j, ErrNotSPD)
		}
		d := math.Sqrt(s)
		l.Set(j, j, d)
		inv := 1 / d
		// Column below the diagonal.
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			liRow := l.Row(i)
			for k := 0; k < j; k++ {
				s -= liRow[k] * ljRow[k]
			}
			l.Set(i, j, s*inv)
		}
	}
	return l, nil
}

// Invert computes A^-1 for SPD A via A^-1 = (L^-1)^T L^-1.
func Invert(a *matrix.Dense) (*matrix.Dense, error) {
	l, err := Decompose(a)
	if err != nil {
		return nil, err
	}
	linv := lu.LowerInverse(l, false)
	return matrix.MulTransB(linv.Transpose(), linv.Transpose())
}

// SolveVec solves A x = b for SPD A: forward substitution with L, back
// substitution with L^T.
func SolveVec(a *matrix.Dense, b []float64) ([]float64, error) {
	l, err := Decompose(a)
	if err != nil {
		return nil, err
	}
	n := l.Rows
	if len(b) != n {
		return nil, fmt.Errorf("cholesky: rhs length %d, want %d", len(b), n)
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		y[i] = s / row[i]
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// LogDet returns log(det(A)) = 2 sum log(diag L), numerically safe for
// SPD matrices whose determinant overflows float64.
func LogDet(a *matrix.Dense) (float64, error) {
	l, err := Decompose(a)
	if err != nil {
		return 0, err
	}
	var s float64
	for i := 0; i < l.Rows; i++ {
		s += math.Log(l.At(i, i))
	}
	return 2 * s, nil
}
