package spark

import (
	"errors"
	"strings"
	"testing"
)

func TestParallelizeCollect(t *testing.T) {
	ctx := NewContext(4)
	items := []Record{1, 2, 3, 4, 5, 6, 7}
	r := ctx.Parallelize("nums", items, 3)
	got, err := r.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("collected %d", len(got))
	}
	for i, v := range got {
		if v.(int) != i+1 {
			t.Fatalf("order broken at %d: %v", i, v)
		}
	}
}

func TestMapFilter(t *testing.T) {
	ctx := NewContext(2)
	r := ctx.Range("r", 10, 4).
		Map("sq", func(rec Record) (Record, error) { n := rec.(int); return n * n, nil }).
		Filter("even", func(rec Record) bool { return rec.(int)%2 == 0 })
	got, err := r.Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 4, 16, 36, 64}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i].(int) != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestMapErrorPropagates(t *testing.T) {
	ctx := NewContext(2)
	boom := errors.New("boom")
	r := ctx.Range("r", 4, 2).Map("bad", func(rec Record) (Record, error) {
		if rec.(int) == 2 {
			return nil, boom
		}
		return rec, nil
	})
	if _, err := r.Collect(); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestReduceByKeyWordCount(t *testing.T) {
	ctx := NewContext(4)
	docs := []Record{"a b a", "b c", "a"}
	words := ctx.Parallelize("docs", docs, 2).MapPartitions("split",
		func(p int, in []Record) ([]Record, error) {
			var out []Record
			for _, d := range in {
				for _, w := range strings.Fields(d.(string)) {
					out = append(out, KV{Key: w, Value: 1})
				}
			}
			return out, nil
		})
	counts := words.ReduceByKey("count", 3, func(a, b Record) Record { return a.(int) + b.(int) })
	got, err := counts.Collect()
	if err != nil {
		t.Fatal(err)
	}
	m := map[string]int{}
	for _, rec := range got {
		kv := rec.(KV)
		m[kv.Key] = kv.Value.(int)
	}
	if m["a"] != 3 || m["b"] != 2 || m["c"] != 1 {
		t.Fatalf("counts = %v", m)
	}
}

func TestReduceByKeyRejectsNonKV(t *testing.T) {
	ctx := NewContext(1)
	r := ctx.Range("r", 3, 1).ReduceByKey("bad", 1, func(a, b Record) Record { return a })
	if _, err := r.Collect(); err == nil {
		t.Fatal("non-KV records accepted")
	}
}

func TestCachingAvoidsRecompute(t *testing.T) {
	ctx := NewContext(2)
	r := ctx.Range("r", 8, 4).Map("id", func(rec Record) (Record, error) { return rec, nil })
	r.Cache()
	if _, err := r.Collect(); err != nil {
		t.Fatal(err)
	}
	before := ctx.Computes()
	if _, err := r.Collect(); err != nil {
		t.Fatal(err)
	}
	if ctx.Computes() != before {
		t.Fatalf("second collect recomputed: %d -> %d", before, ctx.Computes())
	}
	if ctx.CacheHits() == 0 {
		t.Fatal("no cache hits recorded")
	}
}

func TestLineageRecoveryAfterEviction(t *testing.T) {
	ctx := NewContext(2)
	base := ctx.Range("base", 12, 3)
	derived := base.Map("x10", func(rec Record) (Record, error) { return rec.(int) * 10, nil })
	sum := derived.ReduceByKey("sum", 1, func(a, b Record) Record { return a.(int) + b.(int) })
	_ = sum // built but unused; Collect on derived drives this test
	first, err := derived.Collect()
	if err != nil {
		t.Fatal(err)
	}
	// Lose two partitions and the whole base RDD.
	derived.Evict(0)
	derived.Evict(2)
	base.EvictAll()
	again, err := derived.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(first) {
		t.Fatal("length changed after recovery")
	}
	for i := range first {
		if first[i].(int) != again[i].(int) {
			t.Fatalf("value %d changed after recovery", i)
		}
	}
	if ctx.Recomputes() == 0 {
		t.Fatal("recovery did not register recomputes")
	}
}

func TestNarrowDepPartitionMismatch(t *testing.T) {
	ctx := NewContext(1)
	parent := ctx.Range("p", 4, 2)
	// Hand-build a narrow dep with the wrong partition count.
	bad := ctx.newRDD("bad", 3, []Dep{{RDD: parent, Kind: Narrow}},
		func(p int, deps [][]Record) ([]Record, error) { return deps[0], nil })
	if _, err := bad.Collect(); err == nil {
		t.Fatal("partition mismatch accepted")
	}
}

func TestFlatMap(t *testing.T) {
	ctx := NewContext(2)
	r := ctx.Range("r", 4, 2).FlatMap("dup", func(rec Record) ([]Record, error) {
		n := rec.(int)
		return []Record{n, n * 10}, nil
	})
	got, err := r.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0].(int) != 0 || got[1].(int) != 0 || got[2].(int) != 1 || got[3].(int) != 10 {
		t.Fatalf("got %v", got)
	}
	boom := errors.New("x")
	bad := ctx.Range("r2", 2, 1).FlatMap("bad", func(Record) ([]Record, error) { return nil, boom })
	if _, err := bad.Collect(); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnion(t *testing.T) {
	ctx := NewContext(2)
	a := ctx.Parallelize("a", []Record{1, 2, 3}, 2)
	b := ctx.Parallelize("b", []Record{4, 5}, 1)
	u := a.Union("u", b)
	if u.NumPartitions() != 3 {
		t.Fatalf("parts = %d", u.NumPartitions())
	}
	got, err := u.Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i].(int) != want[i] {
			t.Fatalf("got %v", got)
		}
	}
	// Union survives eviction through lineage like everything else.
	u.EvictAll()
	a.EvictAll()
	again, err := u.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 5 {
		t.Fatalf("recovered %v", again)
	}
}

func TestCount(t *testing.T) {
	ctx := NewContext(2)
	n, err := ctx.Range("r", 17, 5).Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 17 {
		t.Fatalf("count = %d", n)
	}
}

func TestWideDepSeesAllPartitions(t *testing.T) {
	ctx := NewContext(2)
	base := ctx.Range("base", 10, 5)
	total := ctx.JoinWith("total", 1, []*RDD{base},
		func(p int, deps [][]Record) ([]Record, error) {
			s := 0
			for _, rec := range deps[0] {
				s += rec.(int)
			}
			return []Record{s}, nil
		})
	got, err := total.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if got[0].(int) != 45 {
		t.Fatalf("sum = %v", got[0])
	}
}

func TestEvictUncachedIsNoop(t *testing.T) {
	ctx := NewContext(1)
	r := ctx.Range("r", 4, 2)
	r.Evict(0) // nothing cached yet
	r.Evict(99)
	if _, err := r.Collect(); err != nil {
		t.Fatal(err)
	}
}
