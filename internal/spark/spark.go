// Package spark is a miniature Spark-style execution engine: resilient
// distributed datasets (RDDs) with lazy transformations, in-memory
// caching, and lineage-based fault recovery.
//
// The HPDC 2014 paper's Section 8 names this as the promising direction:
// "Spark provides parallel data structures that allow users to explicitly
// keep data in memory with fault tolerance. Therefore, we expect that
// implementing our algorithm in Spark would improve performance by
// reducing read I/O ... our technique would need minimal changes (if any)".
// Package spark implements that substrate, and invert.go expresses the
// paper's block-LU inversion on it — the intermediates (L2', U2, B, the
// triangular inverses) live in memory as RDD partitions instead of HDFS
// files, and a lost partition is recomputed from its lineage rather than
// re-read or re-run as a whole job.
//
// The model is deliberately small: an RDD has a fixed number of
// partitions, a compute function, and dependencies that are either narrow
// (partition i depends on parent partition i) or wide (partition i may
// read every parent partition). Actions force evaluation bottom-up with
// per-partition caching; evicting a cached partition (the fault-injection
// hook) makes the next action transparently recompute it and any missing
// ancestors.
package spark

import (
	"fmt"
	"sync"
)

// Record is one element of a partition. Matrix stages store *matrix.Dense
// blocks directly — Spark-style "in-memory objects", no serialization.
type Record any

// KV is the key/value record used by shuffle transformations.
type KV struct {
	Key   string
	Value Record
}

// Context owns a logical cluster: a worker pool and the counters used by
// tests and reports.
type Context struct {
	workers int

	mu         sync.Mutex
	nextID     int
	computes   int
	recomputes int
	cacheHits  int
}

// NewContext creates a context with the given degree of parallelism.
func NewContext(workers int) *Context {
	if workers < 1 {
		workers = 1
	}
	return &Context{workers: workers}
}

// Computes returns the number of partition computations performed.
func (c *Context) Computes() int { c.mu.Lock(); defer c.mu.Unlock(); return c.computes }

// Recomputes returns how many computations were lineage-driven
// recomputations of previously cached partitions.
func (c *Context) Recomputes() int { c.mu.Lock(); defer c.mu.Unlock(); return c.recomputes }

// CacheHits returns how many partition reads were served from cache.
func (c *Context) CacheHits() int { c.mu.Lock(); defer c.mu.Unlock(); return c.cacheHits }

// DepKind distinguishes narrow from wide dependencies.
type DepKind int

const (
	// Narrow: partition i of the child reads partition i of the parent.
	Narrow DepKind = iota
	// Wide: any partition of the child may read every parent partition
	// (a shuffle boundary).
	Wide
)

// Dep is one dependency edge of an RDD.
type Dep struct {
	RDD  *RDD
	Kind DepKind
}

// ComputeFunc materializes partition p. deps[i] holds the records of the
// i-th dependency: for a narrow dep, exactly the matching partition's
// records; for a wide dep, all partitions' records concatenated in
// partition order.
type ComputeFunc func(p int, deps [][]Record) ([]Record, error)

// RDD is a lazily evaluated, partitioned dataset.
type RDD struct {
	ctx      *Context
	id       int
	name     string
	numParts int
	deps     []Dep
	compute  ComputeFunc

	mu      sync.Mutex
	cached  []bool
	data    [][]Record
	pinned  bool // Cache() called: keep materialized partitions
	evicted int
	// partLocks serialize evaluation per partition so concurrent actions
	// compute each partition exactly once. Lock order child -> parent over
	// an acyclic lineage graph cannot deadlock.
	partLocks []sync.Mutex
}

// newRDD wires an RDD into the context.
func (c *Context) newRDD(name string, parts int, deps []Dep, f ComputeFunc) *RDD {
	c.mu.Lock()
	id := c.nextID
	c.nextID++
	c.mu.Unlock()
	if parts < 1 {
		parts = 1
	}
	return &RDD{
		ctx: c, id: id, name: name, numParts: parts, deps: deps, compute: f,
		cached: make([]bool, parts), data: make([][]Record, parts),
		partLocks: make([]sync.Mutex, parts),
	}
}

// Parallelize distributes items over parts partitions (round-robin bands).
func (c *Context) Parallelize(name string, items []Record, parts int) *RDD {
	if parts < 1 {
		parts = 1
	}
	n := len(items)
	copied := append([]Record(nil), items...)
	return c.newRDD(name, parts, nil, func(p int, _ [][]Record) ([]Record, error) {
		lo, hi := n*p/parts, n*(p+1)/parts
		return copied[lo:hi], nil
	})
}

// Range creates an RDD of the ints [0, n) across parts partitions — the
// index-driven pattern the inversion stages use.
func (c *Context) Range(name string, n, parts int) *RDD {
	items := make([]Record, n)
	for i := range items {
		items[i] = i
	}
	return c.Parallelize(name, items, parts)
}

// NumPartitions returns the partition count.
func (r *RDD) NumPartitions() int { return r.numParts }

// Name returns the RDD's debug name.
func (r *RDD) Name() string { return r.name }

// Map applies f to every record (narrow dependency).
func (r *RDD) Map(name string, f func(Record) (Record, error)) *RDD {
	return r.ctx.newRDD(name, r.numParts, []Dep{{RDD: r, Kind: Narrow}},
		func(p int, deps [][]Record) ([]Record, error) {
			in := deps[0]
			out := make([]Record, 0, len(in))
			for _, rec := range in {
				v, err := f(rec)
				if err != nil {
					return nil, err
				}
				out = append(out, v)
			}
			return out, nil
		})
}

// Filter keeps records for which f returns true (narrow dependency).
func (r *RDD) Filter(name string, f func(Record) bool) *RDD {
	return r.ctx.newRDD(name, r.numParts, []Dep{{RDD: r, Kind: Narrow}},
		func(p int, deps [][]Record) ([]Record, error) {
			var out []Record
			for _, rec := range deps[0] {
				if f(rec) {
					out = append(out, rec)
				}
			}
			return out, nil
		})
}

// MapPartitions transforms a whole partition at once (narrow dependency).
func (r *RDD) MapPartitions(name string, f func(p int, in []Record) ([]Record, error)) *RDD {
	return r.ctx.newRDD(name, r.numParts, []Dep{{RDD: r, Kind: Narrow}},
		func(p int, deps [][]Record) ([]Record, error) {
			return f(p, deps[0])
		})
}

// FlatMap applies f to every record and concatenates the results (narrow
// dependency).
func (r *RDD) FlatMap(name string, f func(Record) ([]Record, error)) *RDD {
	return r.ctx.newRDD(name, r.numParts, []Dep{{RDD: r, Kind: Narrow}},
		func(p int, deps [][]Record) ([]Record, error) {
			var out []Record
			for _, rec := range deps[0] {
				vs, err := f(rec)
				if err != nil {
					return nil, err
				}
				out = append(out, vs...)
			}
			return out, nil
		})
}

// Union concatenates two RDDs: the result has the partitions of r followed
// by the partitions of o.
func (r *RDD) Union(name string, o *RDD) *RDD {
	split := r.numParts
	return r.ctx.newRDD(name, r.numParts+o.numParts,
		[]Dep{{RDD: r, Kind: Wide}, {RDD: o, Kind: Wide}},
		func(p int, deps [][]Record) ([]Record, error) {
			// Wide deps deliver all records; carve out this partition's
			// share by recomputing the source partition bounds.
			if p < split {
				return r.sliceOfAll(deps[0], p)
			}
			return o.sliceOfAll(deps[1], p-split)
		})
}

// sliceOfAll extracts partition p's records from the concatenation of all
// partitions, using the source RDD's own partition sizes.
func (r *RDD) sliceOfAll(all []Record, p int) ([]Record, error) {
	off := 0
	for q := 0; q < p; q++ {
		recs, err := r.partition(q)
		if err != nil {
			return nil, err
		}
		off += len(recs)
	}
	recs, err := r.partition(p)
	if err != nil {
		return nil, err
	}
	if off+len(recs) > len(all) {
		return nil, fmt.Errorf("spark: union slice out of range")
	}
	return all[off : off+len(recs)], nil
}

// ReduceByKey groups KV records by key across all partitions and merges
// values with f (wide dependency: a shuffle). Output partition p holds the
// keys hashing to p, sorted deterministically by insertion of first key
// occurrence in partition order.
func (r *RDD) ReduceByKey(name string, parts int, f func(a, b Record) Record) *RDD {
	if parts < 1 {
		parts = r.numParts
	}
	return r.ctx.newRDD(name, parts, []Dep{{RDD: r, Kind: Wide}},
		func(p int, deps [][]Record) ([]Record, error) {
			var order []string
			acc := map[string]Record{}
			for _, rec := range deps[0] {
				kv, ok := rec.(KV)
				if !ok {
					return nil, fmt.Errorf("spark: ReduceByKey over non-KV record %T", rec)
				}
				if hashString(kv.Key)%parts != p {
					continue
				}
				if prev, seen := acc[kv.Key]; seen {
					acc[kv.Key] = f(prev, kv.Value)
				} else {
					acc[kv.Key] = kv.Value
					order = append(order, kv.Key)
				}
			}
			out := make([]Record, 0, len(order))
			for _, k := range order {
				out = append(out, KV{Key: k, Value: acc[k]})
			}
			return out, nil
		})
}

// JoinWith builds an RDD over parts partitions whose compute may read all
// partitions of every listed parent — the general wide-dependency
// constructor the matrix stages use (a block of B reads several L2' and
// U2 partitions).
func (c *Context) JoinWith(name string, parts int, parents []*RDD, f ComputeFunc) *RDD {
	deps := make([]Dep, len(parents))
	for i, p := range parents {
		deps[i] = Dep{RDD: p, Kind: Wide}
	}
	return c.newRDD(name, parts, deps, f)
}

// Cache pins materialized partitions in memory (they are kept regardless,
// but Cache marks intent and is reported by Cached()).
func (r *RDD) Cache() *RDD {
	r.mu.Lock()
	r.pinned = true
	r.mu.Unlock()
	return r
}

// Evict drops the cached data of one partition — the fault-injection
// hook standing in for a lost executor. The next action recomputes the
// partition from its lineage.
func (r *RDD) Evict(p int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p >= 0 && p < r.numParts && r.cached[p] {
		r.cached[p] = false
		r.data[p] = nil
		r.evicted++
	}
}

// EvictAll drops every cached partition.
func (r *RDD) EvictAll() {
	for p := 0; p < r.numParts; p++ {
		r.Evict(p)
	}
}

// partition returns partition p, computing (and caching) it if necessary.
func (r *RDD) partition(p int) ([]Record, error) {
	r.partLocks[p].Lock()
	defer r.partLocks[p].Unlock()
	r.mu.Lock()
	if r.cached[p] {
		data := r.data[p]
		r.mu.Unlock()
		r.ctx.mu.Lock()
		r.ctx.cacheHits++
		r.ctx.mu.Unlock()
		return data, nil
	}
	wasEvicted := r.evicted > 0
	r.mu.Unlock()

	// Resolve dependencies outside the lock (lineage recursion).
	depData := make([][]Record, len(r.deps))
	for i, d := range r.deps {
		switch d.Kind {
		case Narrow:
			if d.RDD.numParts != r.numParts {
				return nil, fmt.Errorf("spark: narrow dep %s->%s with %d vs %d partitions",
					d.RDD.name, r.name, d.RDD.numParts, r.numParts)
			}
			recs, err := d.RDD.partition(p)
			if err != nil {
				return nil, err
			}
			depData[i] = recs
		case Wide:
			var all []Record
			for q := 0; q < d.RDD.numParts; q++ {
				recs, err := d.RDD.partition(q)
				if err != nil {
					return nil, err
				}
				all = append(all, recs...)
			}
			depData[i] = all
		}
	}

	out, err := r.compute(p, depData)
	if err != nil {
		return nil, fmt.Errorf("spark: compute %s[%d]: %w", r.name, p, err)
	}
	r.mu.Lock()
	r.cached[p] = true
	r.data[p] = out
	r.mu.Unlock()
	r.ctx.mu.Lock()
	r.ctx.computes++
	if wasEvicted {
		r.ctx.recomputes++
	}
	r.ctx.mu.Unlock()
	return out, nil
}

// Collect materializes the RDD and returns all records in partition order.
// Partitions are computed concurrently up to the context's parallelism.
func (r *RDD) Collect() ([]Record, error) {
	type result struct {
		p    int
		recs []Record
		err  error
	}
	sem := make(chan struct{}, r.ctx.workers)
	results := make([]result, r.numParts)
	var wg sync.WaitGroup
	for p := 0; p < r.numParts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			recs, err := r.partition(p)
			results[p] = result{p: p, recs: recs, err: err}
		}(p)
	}
	wg.Wait()
	var out []Record
	for _, res := range results {
		if res.err != nil {
			return nil, res.err
		}
		out = append(out, res.recs...)
	}
	return out, nil
}

// Count materializes the RDD and returns its record count.
func (r *RDD) Count() (int, error) {
	recs, err := r.Collect()
	if err != nil {
		return 0, err
	}
	return len(recs), nil
}

func hashString(s string) int {
	h := 2166136261
	for i := 0; i < len(s); i++ {
		h = (h ^ int(s[i])) * 16777619 & 0x7fffffff
	}
	return h
}
