package spark

import (
	"testing"

	"repro/internal/lu"
	"repro/internal/matrix"
	"repro/internal/workload"
)

func TestSparkInvertMatchesReference(t *testing.T) {
	for _, tc := range []struct {
		n, nb, bands int
	}{
		{24, 32, 2}, // single leaf
		{48, 16, 4}, // depth 2
		{100, 13, 4},
		{64, 8, 6},
	} {
		a := workload.Random(tc.n, int64(tc.n+tc.nb))
		ctx := NewContext(4)
		iv := NewInverter(ctx, tc.nb, tc.bands)
		got, err := iv.Invert(a)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		want, err := lu.Invert(a)
		if err != nil {
			t.Fatal(err)
		}
		if d := matrix.MaxAbsDiff(got, want); d > 1e-7 {
			t.Fatalf("%+v: spark inverse differs by %g", tc, d)
		}
	}
}

func TestSparkInvertResidual(t *testing.T) {
	a := workload.Random(80, 2024)
	iv := NewInverter(NewContext(4), 20, 4)
	inv, err := iv.Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := matrix.IdentityResidual(a, inv)
	if err != nil {
		t.Fatal(err)
	}
	if res > 1e-8 {
		t.Fatalf("residual %g", res)
	}
}

func TestSparkInvertRejectsNonSquare(t *testing.T) {
	iv := NewInverter(NewContext(2), 8, 2)
	if _, err := iv.Invert(matrix.New(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestSparkInvertEmpty(t *testing.T) {
	iv := NewInverter(NewContext(2), 8, 2)
	inv, err := iv.Invert(matrix.New(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if inv.Rows != 0 {
		t.Fatal("not empty")
	}
}

func TestSparkInvertSingular(t *testing.T) {
	iv := NewInverter(NewContext(2), 4, 2)
	if _, err := iv.Invert(matrix.New(8, 8)); err == nil {
		t.Fatal("singular accepted")
	}
}

// TestSparkLineageRecoveryMidPipeline loses every cached partition of the
// decomposition stages between factorization and inversion; the final
// stages must transparently recompute them through lineage and still
// produce a correct inverse — the paper's Section 8 fault-tolerance
// argument for Spark.
func TestSparkLineageRecoveryMidPipeline(t *testing.T) {
	n := 72
	a := workload.Random(n, 3033)
	ctx := NewContext(4)
	iv := NewInverter(ctx, 16, 4)

	f, err := iv.decompose(driverMat(a), "A")
	if err != nil {
		t.Fatal(err)
	}
	// Force materialization once (as the driver would when broadcasting),
	// then lose everything.
	if _, err := f.assembleL(); err != nil {
		t.Fatal(err)
	}
	for _, stage := range iv.Stages {
		stage.EvictAll()
	}
	before := ctx.Recomputes()
	inv, err := iv.invertFromFactors(f)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Recomputes() <= before {
		t.Fatal("no lineage recomputation happened")
	}
	want, err := lu.Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(inv, want); d > 1e-7 {
		t.Fatalf("inverse differs by %g after recovery", d)
	}
}

// TestSparkPartialEviction loses a strict subset of partitions and checks
// that only the lost lineage is recomputed.
func TestSparkPartialEviction(t *testing.T) {
	n := 64
	a := workload.Random(n, 3034)
	ctx := NewContext(4)
	iv := NewInverter(ctx, 16, 4)
	f, err := iv.decompose(driverMat(a), "A")
	if err != nil {
		t.Fatal(err)
	}
	l0, err := f.assembleL()
	if err != nil {
		t.Fatal(err)
	}
	totalBefore := ctx.Computes()
	// Evict one partition from the first stage only.
	iv.Stages[0].Evict(1)
	l1, err := f.assembleL()
	if err != nil {
		t.Fatal(err)
	}
	recomputed := ctx.Computes() - totalBefore
	if recomputed == 0 {
		t.Fatal("lost partition not recomputed")
	}
	if recomputed > iv.Stages[0].NumPartitions() {
		t.Fatalf("recomputed %d partitions for a single loss", recomputed)
	}
	if !matrix.Equal(l0, l1, 0) {
		t.Fatal("factor changed after partial recovery")
	}
}

func TestSparkMemoryVsMapReduceSameAnswer(t *testing.T) {
	// The Section 8 claim "our technique would need minimal changes":
	// both engines implement the same math, so results agree to
	// round-off-free equality of algorithm structure.
	a := workload.Random(56, 3035)
	iv := NewInverter(NewContext(4), 16, 4)
	sparkInv, err := iv.Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := lu.Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(sparkInv, ref); d > 1e-7 {
		t.Fatalf("engines disagree by %g", d)
	}
}

func TestAssembleRegionErrors(t *testing.T) {
	// Missing coverage must be detected.
	recs := []Record{block{r0: 0, r1: 1, c0: 0, c1: 1, m: matrix.New(1, 1)}}
	if _, err := assembleRegion(recs, 0, 2, 0, 2); err == nil {
		t.Fatal("gap accepted")
	}
	// Wrong record type.
	if _, err := assembleRegion([]Record{42}, 0, 1, 0, 1); err == nil {
		t.Fatal("non-block accepted")
	}
}
