package spark

import (
	"fmt"

	"repro/internal/lu"
	"repro/internal/matrix"
)

// Block-LU matrix inversion expressed as RDD transformations — the
// paper's Section 8 port: the same recursion as internal/core, but every
// intermediate (L2' bands, U2 bands, B blocks, triangular-inverse columns,
// product blocks) is an in-memory RDD partition instead of an HDFS file,
// and fault tolerance comes from lineage recomputation instead of job
// re-execution. Factors of completed sub-levels are assembled on the
// driver and broadcast into the next stages' closures, as a Spark driver
// would broadcast them.

// block is one stored piece of a distributed matrix: the submatrix m
// covering rows [r0, r1) x cols [c0, c1) of its level's frame.
type block struct {
	r0, r1, c0, c1 int
	m              *matrix.Dense
}

// dmat is a level's input matrix: either driver-resident or the blocks of
// one or more parent RDDs. read extracts a region given the materialized
// parent records.
type dmat struct {
	n       int
	parents []*RDD
	read    func(deps [][]Record, r0, r1, c0, c1 int) (*matrix.Dense, error)
}

// driverMat wraps a driver-held matrix.
func driverMat(a *matrix.Dense) dmat {
	return dmat{
		n: a.Rows,
		read: func(_ [][]Record, r0, r1, c0, c1 int) (*matrix.Dense, error) {
			return a.Block(r0, r1, c0, c1), nil
		},
	}
}

// rddMat wraps an RDD of block records covering an n x n frame.
func rddMat(n int, r *RDD) dmat {
	return dmat{
		n:       n,
		parents: []*RDD{r},
		read: func(deps [][]Record, r0, r1, c0, c1 int) (*matrix.Dense, error) {
			return assembleRegion(deps[0], r0, r1, c0, c1)
		},
	}
}

// assembleRegion builds the region [r0,r1) x [c0,c1) from block records.
func assembleRegion(recs []Record, r0, r1, c0, c1 int) (*matrix.Dense, error) {
	out := matrix.New(r1-r0, c1-c0)
	covered := 0
	for _, rec := range recs {
		b, ok := rec.(block)
		if !ok {
			return nil, fmt.Errorf("spark: non-block record %T in matrix RDD", rec)
		}
		ir0, ir1 := maxI(b.r0, r0), minI(b.r1, r1)
		ic0, ic1 := maxI(b.c0, c0), minI(b.c1, c1)
		if ir0 >= ir1 || ic0 >= ic1 {
			continue
		}
		part := b.m.Block(ir0-b.r0, ir1-b.r0, ic0-b.c0, ic1-b.c0)
		out.SetBlock(ir0-r0, ic0-c0, part)
		covered += part.Rows * part.Cols
	}
	if covered != (r1-r0)*(c1-c0) {
		return nil, fmt.Errorf("spark: region [%d:%d,%d:%d] covered %d of %d elements",
			r0, r1, c0, c1, covered, (r1-r0)*(c1-c0))
	}
	return out, nil
}

// factors is the driver-side handle to one (sub)decomposition.
type factors struct {
	n    int
	p    matrix.Perm
	leaf bool

	// Leaf factors live on the driver.
	leafL, leafU *matrix.Dense

	// Internal nodes keep band RDDs plus child handles.
	h  int
	h1 *factors
	h2 *factors
	l2 *RDD // block records: unpermuted L2' row bands
	u2 *RDD // block records: U2 column bands
}

// assembleL collects the full unit lower factor to the driver.
func (f *factors) assembleL() (*matrix.Dense, error) {
	if f.leaf {
		return f.leafL, nil
	}
	l1, err := f.h1.assembleL()
	if err != nil {
		return nil, err
	}
	l2recs, err := f.l2.Collect()
	if err != nil {
		return nil, err
	}
	l2p, err := assembleRegion(l2recs, 0, f.n-f.h, 0, f.h)
	if err != nil {
		return nil, err
	}
	l3, err := f.h2.assembleL()
	if err != nil {
		return nil, err
	}
	out := matrix.New(f.n, f.n)
	out.SetBlock(0, 0, l1)
	out.SetBlock(f.h, 0, f.h2.p.ApplyRows(l2p))
	out.SetBlock(f.h, f.h, l3)
	return out, nil
}

// assembleU collects the full upper factor to the driver.
func (f *factors) assembleU() (*matrix.Dense, error) {
	if f.leaf {
		return f.leafU, nil
	}
	u1, err := f.h1.assembleU()
	if err != nil {
		return nil, err
	}
	u2recs, err := f.u2.Collect()
	if err != nil {
		return nil, err
	}
	u2, err := assembleRegion(u2recs, 0, f.h, 0, f.n-f.h)
	if err != nil {
		return nil, err
	}
	u3, err := f.h2.assembleU()
	if err != nil {
		return nil, err
	}
	out := matrix.New(f.n, f.n)
	out.SetBlock(0, 0, u1)
	out.SetBlock(0, f.h, u2)
	out.SetBlock(f.h, f.h, u3)
	return out, nil
}

// Inverter runs block-LU inversion on a spark Context. Partitions per
// stage default to the context parallelism.
type Inverter struct {
	Ctx *Context
	// NB is the bound value: leaves of order <= NB factor on the driver.
	NB int
	// Bands is the number of partitions for band stages (the analog of
	// m0/2 mappers per half in the MapReduce version).
	Bands int
	// keep references for fault-injection tests: every stage RDD created.
	Stages []*RDD
}

// NewInverter builds an inverter with defaults.
func NewInverter(ctx *Context, nb, bands int) *Inverter {
	if nb < 1 {
		nb = 1
	}
	if bands < 1 {
		bands = ctx.workers
	}
	return &Inverter{Ctx: ctx, NB: nb, Bands: bands}
}

func (iv *Inverter) track(r *RDD) *RDD {
	iv.Stages = append(iv.Stages, r.Cache())
	return r
}

// Invert computes A^-1. A lives on the driver; all intermediates are RDD
// partitions.
func (iv *Inverter) Invert(a *matrix.Dense) (*matrix.Dense, error) {
	if !a.IsSquare() {
		return nil, fmt.Errorf("spark: Invert: %dx%d not square", a.Rows, a.Cols)
	}
	if a.Rows == 0 {
		return matrix.New(0, 0), nil
	}
	f, err := iv.decompose(driverMat(a), "A")
	if err != nil {
		return nil, err
	}
	return iv.invertFromFactors(f)
}

// decompose runs the block recursion over a level input.
func (iv *Inverter) decompose(in dmat, label string) (*factors, error) {
	n := in.n
	if n <= iv.NB {
		whole, err := iv.readWhole(in)
		if err != nil {
			return nil, err
		}
		fac, err := lu.Decompose(whole)
		if err != nil {
			return nil, fmt.Errorf("spark: leaf %s: %w", label, err)
		}
		return &factors{n: n, p: fac.P, leaf: true, leafL: fac.L(), leafU: fac.U()}, nil
	}
	h := (n + 1) / 2

	// Recurse on A1 (a sliced view of the level input).
	a1 := sliceMat(in, 0, h, 0, h)
	h1, err := iv.decompose(a1, label+"/A1")
	if err != nil {
		return nil, err
	}
	// Broadcast the child's factors from the driver.
	l1, err := h1.assembleL()
	if err != nil {
		return nil, err
	}
	u1, err := h1.assembleU()
	if err != nil {
		return nil, err
	}
	p1 := h1.p
	bands := iv.Bands
	nbot := n - h

	// Stage: L2' bands — L2' U1 = A3 (Equation 6).
	l2 := iv.track(iv.Ctx.JoinWith("L2'@"+label, bands, in.parents,
		func(p int, deps [][]Record) ([]Record, error) {
			lo, hi := nbot*p/bands, nbot*(p+1)/bands
			if lo == hi {
				return nil, nil
			}
			a3band, err := in.read(deps, h+lo, h+hi, 0, h)
			if err != nil {
				return nil, err
			}
			band, err := lu.SolveRowsUpper(u1, a3band)
			if err != nil {
				return nil, err
			}
			return []Record{block{r0: lo, r1: hi, c0: 0, c1: h, m: band}}, nil
		}))

	// Stage: U2 bands — L1 U2 = P1 A2 (Equation 6).
	u2 := iv.track(iv.Ctx.JoinWith("U2@"+label, bands, in.parents,
		func(p int, deps [][]Record) ([]Record, error) {
			lo, hi := nbot*p/bands, nbot*(p+1)/bands
			if lo == hi {
				return nil, nil
			}
			a2band, err := in.read(deps, 0, h, h+lo, h+hi)
			if err != nil {
				return nil, err
			}
			band, err := lu.ForwardSubstMatrix(l1, p1.ApplyRows(a2band), true)
			if err != nil {
				return nil, err
			}
			return []Record{block{r0: 0, r1: h, c0: lo, c1: hi, m: band}}, nil
		}))

	// Stage: B = A4 - L2'U2 blocks (wide dep on the level input and both
	// band stages — the shuffle boundary of Figure 5's reduce side).
	parents := append(append([]*RDD{}, in.parents...), l2, u2)
	nParents := len(in.parents)
	b := iv.track(iv.Ctx.JoinWith("B@"+label, bands, parents,
		func(p int, deps [][]Record) ([]Record, error) {
			lo, hi := nbot*p/bands, nbot*(p+1)/bands
			if lo == hi {
				return nil, nil
			}
			a4band, err := in.read(deps[:nParents], h+lo, h+hi, h, n)
			if err != nil {
				return nil, err
			}
			l2band, err := assembleRegion(deps[nParents], lo, hi, 0, h)
			if err != nil {
				return nil, err
			}
			u2full, err := assembleRegion(deps[nParents+1], 0, h, 0, nbot)
			if err != nil {
				return nil, err
			}
			prod, err := matrix.Mul(l2band, u2full)
			if err != nil {
				return nil, err
			}
			if err := matrix.SubInPlace(a4band, prod); err != nil {
				return nil, err
			}
			return []Record{block{r0: lo, r1: hi, c0: 0, c1: nbot, m: a4band}}, nil
		}))

	h2, err := iv.decompose(rddMat(nbot, b), label+"/B")
	if err != nil {
		return nil, err
	}
	return &factors{
		n: n, h: h, h1: h1, h2: h2, l2: l2, u2: u2,
		p: matrix.Augment(p1, h2.p),
	}, nil
}

// readWhole materializes a dmat on the driver.
func (iv *Inverter) readWhole(in dmat) (*matrix.Dense, error) {
	deps := make([][]Record, len(in.parents))
	for i, p := range in.parents {
		recs, err := p.Collect()
		if err != nil {
			return nil, err
		}
		deps[i] = recs
	}
	return in.read(deps, 0, in.n, 0, in.n)
}

// sliceMat narrows a dmat to a square region (metadata only).
func sliceMat(in dmat, r0, r1, c0, c1 int) dmat {
	return dmat{
		n:       r1 - r0,
		parents: in.parents,
		read: func(deps [][]Record, rr0, rr1, cc0, cc1 int) (*matrix.Dense, error) {
			return in.read(deps, r0+rr0, r0+rr1, c0+cc0, c0+cc1)
		},
	}
}

// colsRec carries computed inverse columns (or rows, transposed) with
// their global indices.
type colsRec struct {
	idx []int
	m   *matrix.Dense // n x len(idx): column bi is global column idx[bi]
}

// invertFromFactors runs the final triangular-inversion and multiply
// stages on the engine.
func (iv *Inverter) invertFromFactors(f *factors) (*matrix.Dense, error) {
	n := f.n
	l, err := f.assembleL()
	if err != nil {
		return nil, err
	}
	u, err := f.assembleU()
	if err != nil {
		return nil, err
	}
	ut := u.Transpose()
	p := f.p
	bands := iv.Bands

	// Stage: interleaved columns of L^-1.
	linv := iv.track(iv.Ctx.Range("linv-cols", bands, bands).MapPartitions("L-1@final",
		func(part int, _ []Record) ([]Record, error) {
			return invertColumns(l, n, bands, part, true), nil
		}))
	// Stage: interleaved rows of U^-1 as columns of (U^T)^-1.
	uinv := iv.track(iv.Ctx.Range("uinv-rows", bands, bands).MapPartitions("U-1@final",
		func(part int, _ []Record) ([]Record, error) {
			return invertColumns(ut, n, bands, part, false), nil
		}))

	// Stage: product grid blocks of U^-1 L^-1, pivot applied.
	prod := iv.track(iv.Ctx.JoinWith("A-1@final", bands, []*RDD{uinv, linv},
		func(part int, deps [][]Record) ([]Record, error) {
			// Rows of the output assigned to this partition: r ≡ part (mod bands).
			uCols := gatherCols(deps[0])
			lCols := gatherCols(deps[1])
			var out []Record
			for r := part; r < n; r += bands {
				// Row r of U^-1 is column r of (U^T)^-1.
				urow, ok := uCols[r]
				if !ok {
					return nil, fmt.Errorf("spark: missing U^-1 row %d", r)
				}
				rowOut := matrix.New(1, n)
				for c := 0; c < n; c++ {
					lcol, ok := lCols[c]
					if !ok {
						return nil, fmt.Errorf("spark: missing L^-1 col %d", c)
					}
					rowOut.Set(0, p[c], matrix.Dot(urow, lcol))
				}
				out = append(out, block{r0: r, r1: r + 1, c0: 0, c1: n, m: rowOut})
			}
			return out, nil
		}))

	recs, err := prod.Collect()
	if err != nil {
		return nil, err
	}
	return assembleRegion(recs, 0, n, 0, n)
}

// invertColumns computes the interleaved columns {c ≡ part (mod bands)}
// of the inverse of lower-triangular lt (unit diagonal when unit).
func invertColumns(lt *matrix.Dense, n, bands, part int, unit bool) []Record {
	var idx []int
	for c := part; c < n; c += bands {
		idx = append(idx, c)
	}
	if len(idx) == 0 {
		return nil
	}
	dst := matrix.New(n, n)
	for _, c := range idx {
		lu.InvertLowerColumn(lt, c, unit, dst)
	}
	m := matrix.New(n, len(idx))
	for bi, c := range idx {
		for r := 0; r < n; r++ {
			m.Set(r, bi, dst.At(r, c))
		}
	}
	return []Record{colsRec{idx: idx, m: m}}
}

// gatherCols indexes colsRec records by global column index.
func gatherCols(recs []Record) map[int][]float64 {
	out := map[int][]float64{}
	for _, rec := range recs {
		cr, ok := rec.(colsRec)
		if !ok {
			continue
		}
		for bi, c := range cr.idx {
			col := make([]float64, cr.m.Rows)
			for r := 0; r < cr.m.Rows; r++ {
				col[r] = cr.m.At(r, bi)
			}
			out[c] = col
		}
	}
	return out
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
