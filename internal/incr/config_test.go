package incr

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/mapreduce"
	"repro/internal/matrix"
	"repro/internal/workload"
)

func TestConfigWithDefaults(t *testing.T) {
	d := Config{Enabled: true}.WithDefaults()
	if d.KMax != DefaultKMax || d.MaxBases != DefaultMaxBases ||
		d.ResidualTol != DefaultResidualTol || d.SampleCols != DefaultSampleCols ||
		d.CondMax != DefaultCondMax {
		t.Fatalf("zero config did not pick up defaults: %+v", d)
	}
	if !d.Enabled {
		t.Fatal("WithDefaults dropped Enabled")
	}
	set := Config{KMax: 3, MaxBases: 5, ResidualTol: 1e-4, SampleCols: 2, CondMax: 1e6}
	if got := set.WithDefaults(); got != set {
		t.Fatalf("explicit config rewritten: %+v", got)
	}
}

func TestConfigEffectiveKMax(t *testing.T) {
	cases := []struct {
		kmax, n, want int
	}{
		{0, 256, DefaultKMax}, // zero KMax selects the default
		{8, 256, 8},           // explicit bound below n/4 holds
		{100, 256, 64},        // n/4 caps an over-large bound
		{8, 8, 2},             // tiny order: n/4 again
		{8, 2, 1},             // never below 1
	}
	for _, c := range cases {
		if got := (Config{KMax: c.kmax}).EffectiveKMax(c.n); got != c.want {
			t.Errorf("EffectiveKMax(kmax=%d, n=%d) = %d, want %d", c.kmax, c.n, got, c.want)
		}
	}
}

func TestUpdateValidation(t *testing.T) {
	n, k := 8, 2
	sq := matrix.Identity(n)
	u := matrix.New(n, k)
	v := matrix.New(n, k)
	if _, err := Update(nil, u, v, 0); err == nil {
		t.Fatal("nil A⁻¹ accepted")
	}
	if _, err := Update(matrix.New(n, n+1), u, v, 0); err == nil {
		t.Fatal("rectangular A⁻¹ accepted")
	}
	if _, err := Update(sq, matrix.New(n+1, k), v, 0); err == nil {
		t.Fatal("mis-shaped U accepted")
	}
	if _, err := Update(sq, u, matrix.New(n, k+1), 0); err == nil {
		t.Fatal("U/V rank mismatch accepted")
	}
	// Rank zero is the identity update: a fresh copy of A⁻¹.
	out, err := Update(sq, matrix.New(n, 0), matrix.New(n, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(out, sq); d != 0 {
		t.Fatalf("rank-0 update changed A⁻¹ by %g", d)
	}
	if out == sq {
		t.Fatal("rank-0 update aliased its input")
	}
}

func TestEngineValidationAndCancel(t *testing.T) {
	nodes := 4
	fs := dfs.New(nodes, dfs.DefaultReplication)
	eng := &Engine{FS: fs, Cluster: mapreduce.NewCluster(fs, nodes)}
	opts := core.DefaultOptions(nodes)
	opts.NB = 16

	if _, _, err := eng.UpdateCtx(context.Background(), nil, nil, nil, 0, opts); err == nil {
		t.Fatal("nil operands accepted")
	}

	n := 32
	base := workload.DiagonallyDominant(n, 31)
	mut := workload.MutateRows(base, 2, 32)
	u, v := RowDelta(base, mut, workload.MutatedRows(n, 2, 32))

	// Rank zero short-circuits before any job launches.
	out, rep, err := eng.UpdateCtx(context.Background(), base, matrix.New(n, 0), matrix.New(n, 0), 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.JobsRun != 0 || matrix.MaxAbsDiff(out, base) != 0 {
		t.Fatalf("rank-0 distributed update ran jobs (%d) or changed bytes", rep.JobsRun)
	}

	// A canceled context stops at the first job boundary.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := eng.UpdateCtx(ctx, base, u, v, 0, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled update returned %v, want context.Canceled", err)
	}
}

func TestBaseIndexDefaultsAndGuards(t *testing.T) {
	ix := NewBaseIndex(0)
	if ix.max != DefaultMaxBases {
		t.Fatalf("NewBaseIndex(0) max = %d, want DefaultMaxBases", ix.max)
	}
	a := workload.DiagonallyDominant(8, 1)
	ix.Add("nil-inv", a, nil)
	ix.Add("nil-a", nil, a)
	ix.Add("rect", matrix.New(4, 6), matrix.New(4, 6))
	if ix.Len() != 0 {
		t.Fatalf("guarded Adds indexed %d entries", ix.Len())
	}
	// Re-adding a digest refreshes the entry instead of duplicating it.
	inv := matrix.Identity(8)
	ix.Add("k", a, inv)
	ix.Add("k", a, inv)
	if ix.Len() != 1 {
		t.Fatalf("re-add duplicated: len %d", ix.Len())
	}
}
