package incr

import (
	"fmt"
	"testing"

	"repro/internal/workload"
)

func TestSketchDiffRowsFindsPerturbation(t *testing.T) {
	base := workload.DiagonallyDominant(32, 11)
	next, rows := perturbRows(t, base, 4, 21)
	got, ok := NewSketch(base).DiffRows(NewSketch(next), 8)
	if !ok {
		t.Fatal("diff gave up below its limit")
	}
	want := map[int]bool{}
	for _, r := range rows {
		want[r] = true
	}
	if len(got) != len(rows) {
		t.Fatalf("found %d changed rows, want %d", len(got), len(rows))
	}
	for _, r := range got {
		if !want[r] {
			t.Fatalf("row %d reported changed but was not perturbed", r)
		}
	}
	if _, ok := NewSketch(base).DiffRows(NewSketch(next), 3); ok {
		t.Fatal("limit 3 must give up on a 4-row delta")
	}
}

func TestSketchShapeMismatch(t *testing.T) {
	a := NewSketch(workload.DiagonallyDominant(8, 1))
	b := NewSketch(workload.DiagonallyDominant(12, 1))
	if _, ok := a.DiffRows(b, 100); ok {
		t.Fatal("different shapes reported comparable")
	}
}

func TestDiffRowsExactMatchesSketch(t *testing.T) {
	base := workload.DiagonallyDominant(24, 3)
	next, rows := perturbRows(t, base, 2, 5)
	got, ok := DiffRowsExact(base, next, 4)
	if !ok || len(got) != len(rows) {
		t.Fatalf("exact diff found %v (ok=%v), want %v", got, ok, rows)
	}
	if _, ok := DiffRowsExact(base, next, 1); ok {
		t.Fatal("limit 1 must give up on a 2-row delta")
	}
	if same, ok := DiffRowsExact(base, base, 4); !ok || len(same) != 0 {
		t.Fatalf("identical matrices diff to %v", same)
	}
}

func TestBaseIndexLRUBound(t *testing.T) {
	ix := NewBaseIndex(3)
	for i := 0; i < 5; i++ {
		m := workload.DiagonallyDominant(8, int64(i))
		ix.Add(fmt.Sprintf("d%d", i), m, m)
	}
	if ix.Len() != 3 {
		t.Fatalf("index holds %d entries, want 3", ix.Len())
	}
	if _, ok := ix.Lookup("d0"); ok {
		t.Fatal("oldest entry survived past the bound")
	}
	if _, ok := ix.Lookup("d4"); !ok {
		t.Fatal("newest entry evicted")
	}
	// A re-Add refreshes recency: d2 touched, then one more insert must
	// evict d3, not d2.
	m := workload.DiagonallyDominant(8, 2)
	ix.Add("d2", m, m)
	ix.Add("d5", m, m)
	if _, ok := ix.Lookup("d2"); !ok {
		t.Fatal("refreshed entry evicted")
	}
	if _, ok := ix.Lookup("d3"); ok {
		t.Fatal("stale entry survived")
	}
}

func TestBaseIndexProbePicksNearestBase(t *testing.T) {
	ix := NewBaseIndex(8)
	far := workload.DiagonallyDominant(16, 1) // differs everywhere
	near := workload.DiagonallyDominant(16, 2)
	ix.Add("far", far, far)
	ix.Add("near", near, near)
	// Also a different shape that must be skipped.
	other := workload.DiagonallyDominant(8, 3)
	ix.Add("other", other, other)

	req, rows := perturbRows(t, near, 2, 9)
	b, cand, ok := ix.Probe(req, 4)
	if !ok {
		t.Fatal("probe found nothing")
	}
	if b.Digest != "near" {
		t.Fatalf("probe chose %q, want near", b.Digest)
	}
	if len(cand) != len(rows) {
		t.Fatalf("probe proposed %d rows, want %d", len(cand), len(rows))
	}
	// Nothing within the delta budget → no candidate.
	if _, _, ok := ix.Probe(workload.DiagonallyDominant(16, 99), 2); ok {
		t.Fatal("probe matched a base beyond the delta budget")
	}
}

func TestBaseIndexIgnoresExactDuplicate(t *testing.T) {
	ix := NewBaseIndex(4)
	m := workload.DiagonallyDominant(12, 7)
	ix.Add("m", m, m)
	if _, _, ok := ix.Probe(m.Clone(), 4); ok {
		t.Fatal("probe returned a zero-row delta; exact matches belong to the result cache")
	}
}
