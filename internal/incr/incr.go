// Package incr is the rank-k incremental inversion subsystem: when a
// request misses the exact-match result cache but differs from a
// recently inverted base matrix A by a low-rank delta A' = A + U·Vᵀ,
// the Sherman–Morrison–Woodbury identity
//
//	(A + UVᵀ)⁻¹ = A⁻¹ − A⁻¹U (I + VᵀA⁻¹U)⁻¹ VᵀA⁻¹
//
// turns the cached A⁻¹ into the requested inverse in O(kn²) work
// instead of rerunning the O(n³) block-LU pipeline.
//
// The package has three parts. The delta detector (sketch.go,
// index.go) keeps a bounded LRU index of recently served base
// matrices, each with a per-row fingerprint sketch, and probes it on a
// cache miss to find a base within KMax changed rows. The update
// engine (smw.go, engine.go) applies the identity, either sequentially
// or — for large n — by riding the distributed Pipeline.Multiply for
// the n×k and rank-k passes while the k×k capacitance solve stays
// local. The guardrail (SampledResidual) checks ‖A'·X − I‖ on sampled
// columns so a bad update (hash-collision miss in the sketch,
// ill-conditioned capacitance) is rejected and the caller falls back
// to full inversion instead of serving a wrong answer.
//
// The package is in the determinism-checked set: given the same base,
// request, and configuration, every function here produces bit-identical
// output, so the serving layer's chaos replay guarantees extend to the
// incremental path.
package incr

import "errors"

// ErrDeltaTooLarge reports that the request differs from the candidate
// base in more rows than the configured KMax, so the O(kn²) update
// would not beat full inversion. Callers fall back to the pipeline.
var ErrDeltaTooLarge = errors.New("incr: delta rank exceeds KMax")

// ErrResidual reports that the updated inverse failed the sampled
// ‖A'·X − I‖ guardrail; the caller must recompute via full inversion.
var ErrResidual = errors.New("incr: residual guardrail rejected update")

// ErrCapacitance reports that the k×k capacitance matrix I + VᵀA⁻¹U is
// singular or too ill-conditioned to solve reliably (the SMW identity
// degenerates exactly when A + UVᵀ is singular or nearly so).
var ErrCapacitance = errors.New("incr: capacitance matrix singular or ill-conditioned")

// Defaults for Config's zero values.
const (
	// DefaultKMax bounds the delta rank the detector will extract. n/8
	// is where the measured update-vs-full win is still comfortable at
	// serving sizes; an absolute cap keeps tiny matrices from taking
	// updates that cost as much as full inversion.
	DefaultKMax = 32
	// DefaultMaxBases bounds the base-matrix index (each entry holds A
	// and A⁻¹, so the index is the dominant memory cost of the feature).
	DefaultMaxBases = 32
	// DefaultResidualTol is the sampled-column residual bound; the full
	// pipeline itself verifies against a similar 1e-6-grade check in
	// tests, so an update passing this is as trustworthy as a recompute.
	DefaultResidualTol = 1e-6
	// DefaultSampleCols is how many columns the guardrail probes.
	DefaultSampleCols = 8
	// DefaultCondMax is the capacitance condition-number ceiling beyond
	// which the update is refused (≈ eps⁻¹·tol: above it the k×k solve
	// can lose every digit the guardrail would demand).
	DefaultCondMax = 1e12
)

// Config tunes the incremental path. The zero value is disabled; use
// Enabled=true with zero fields for the defaults above.
type Config struct {
	// Enabled turns the subsystem on in the serving layer.
	Enabled bool
	// KMax bounds the extracted delta rank (changed rows). <=0 selects
	// DefaultKMax. Deltas beyond min(KMax, n/4) are refused with
	// ErrDeltaTooLarge: past n/4 the 4kn² update flops approach the
	// pipeline's 2n³ and conditioning risk grows with k.
	KMax int
	// MaxBases bounds how many recent base matrices (A, A⁻¹, sketch)
	// the index retains. <=0 selects DefaultMaxBases.
	MaxBases int
	// ResidualTol is the sampled-column guardrail bound. <=0 selects
	// DefaultResidualTol.
	ResidualTol float64
	// SampleCols is how many columns the guardrail checks. <=0 selects
	// DefaultSampleCols (capped at n).
	SampleCols int
	// CondMax is the capacitance condition ceiling. <=0 selects
	// DefaultCondMax.
	CondMax float64
}

// WithDefaults returns cfg with zero fields replaced by the package
// defaults.
func (c Config) WithDefaults() Config {
	if c.KMax <= 0 {
		c.KMax = DefaultKMax
	}
	if c.MaxBases <= 0 {
		c.MaxBases = DefaultMaxBases
	}
	if c.ResidualTol <= 0 {
		c.ResidualTol = DefaultResidualTol
	}
	if c.SampleCols <= 0 {
		c.SampleCols = DefaultSampleCols
	}
	if c.CondMax <= 0 {
		c.CondMax = DefaultCondMax
	}
	return c
}

// EffectiveKMax is the delta-rank bound for an order-n request:
// min(KMax, n/4), at least 1.
func (c Config) EffectiveKMax(n int) int {
	k := c.KMax
	if k <= 0 {
		k = DefaultKMax
	}
	if n/4 < k {
		k = n / 4
	}
	if k < 1 {
		k = 1
	}
	return k
}

// Stats is the incremental path's counter snapshot, reported under
// /statz by the serving layer.
type Stats struct {
	// Probes counts cache misses that consulted the base index.
	Probes int64 `json:"probes"`
	// ProbeHits counts probes that found a base within KMax rows.
	ProbeHits int64 `json:"probe_hits"`
	// Updates counts requests served via a successful SMW update.
	Updates int64 `json:"updates"`
	// Distributed counts updates whose large passes rode the cluster.
	Distributed int64 `json:"distributed"`
	// Declined counts probe hits where the cost model chose the full
	// pipeline anyway (k too close to n, or cluster-load crossover).
	Declined int64 `json:"declined"`
	// Fallbacks counts probe hits that started an update but fell back
	// to the full pipeline (capacitance failure, residual reject, or a
	// distributed-pass error).
	Fallbacks int64 `json:"fallbacks"`
	// ResidualRejects counts updates rejected by the guardrail (a
	// subset of Fallbacks).
	ResidualRejects int64 `json:"residual_rejects"`
	// BasesIndexed is the current base-index occupancy.
	BasesIndexed int `json:"bases_indexed"`
}
