package incr

import (
	"context"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/mapreduce"
	"repro/internal/matrix"
	"repro/internal/obs"
)

// Report summarizes one update's execution for the serving layer's
// /statz and response headers.
type Report struct {
	// Rank is the extracted delta rank k.
	Rank int
	// Distributed reports whether the large passes rode the cluster.
	Distributed bool
	// JobsRun / MapTasks / ReduceTasks aggregate the distributed
	// passes' MapReduce accounting (zero on the sequential path).
	JobsRun     int
	MapTasks    int
	ReduceTasks int
	// TransferredBytes is the cross-node DFS traffic of the
	// distributed passes.
	TransferredBytes int64
}

// Engine runs the distributed SMW update on a shared simulated
// cluster: the three large passes — A⁻¹U (n×n by n×k), VᵀA⁻¹ (k×n by
// n×n), and the rank-k correction (A⁻¹U·C⁻¹) · VᵀA⁻¹ (n×k by k×n) —
// each ride Pipeline.Multiply as their own MapReduce job, while the
// k×k capacitance solve stays local on the master exactly as the
// paper's small block-LU leaves do. Like the inversion pipeline, the
// engine checks the request context between jobs, so a canceled
// request stops at the next job boundary.
type Engine struct {
	FS      *dfs.FS
	Cluster *mapreduce.Cluster
	Tracer  *obs.Tracer
	Metrics *obs.Registry
}

// UpdateCtx computes (A + U·Vᵀ)⁻¹ from A⁻¹ with the large passes
// distributed. opts carries the pipeline configuration (nodes, nb,
// multiply strategy) and a per-request Root; the engine works under
// Root so the serving layer's existing per-request cleanup collects
// its intermediates. condMax as in Update.
func (e *Engine) UpdateCtx(ctx context.Context, ainv, u, v *matrix.Dense, condMax float64, opts core.Options) (*matrix.Dense, *Report, error) {
	if err := validateUpdate(ainv, u, v); err != nil {
		return nil, nil, err
	}
	if condMax <= 0 {
		condMax = DefaultCondMax
	}
	rep := &Report{Rank: u.Cols, Distributed: true}
	if u.Cols == 0 {
		return ainv.Clone(), rep, nil
	}
	p, err := core.NewPipelineOn(opts, e.FS, e.Cluster)
	if err != nil {
		return nil, nil, err
	}
	span := e.Tracer.StartSpan("incr.update", obs.KindPipeline)
	span.SetAttr("incr.rank", int64(u.Cols))
	span.SetAttr("incr.order", int64(ainv.Rows))
	defer span.Finish()

	mul := func(a, b *matrix.Dense) (*matrix.Dense, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out, mr, err := p.MultiplyWithReport(a, b)
		if err != nil {
			return nil, err
		}
		rep.JobsRun += mr.Jobs
		rep.TransferredBytes += mr.TransferredBytes
		return out, nil
	}
	au, err := mul(ainv, u)
	if err != nil {
		return nil, nil, err
	}
	vta, err := mul(v.Transpose(), ainv)
	if err != nil {
		return nil, nil, err
	}
	cinv, err := capacitanceInverse(au, vta, u, condMax)
	if err != nil {
		return nil, nil, err
	}
	// (A⁻¹U)·C⁻¹ is n×k by k×k — too small to be worth a job launch.
	m, err := matrix.Mul(au, cinv)
	if err != nil {
		return nil, nil, err
	}
	corr, err := mul(m, vta)
	if err != nil {
		return nil, nil, err
	}
	out, err := matrix.Sub(ainv, corr)
	if err != nil {
		return nil, nil, err
	}
	span.SetAttr("incr.jobs", int64(rep.JobsRun))
	if e.Metrics != nil {
		e.Metrics.Counter("incr.dist_jobs").Add(int64(rep.JobsRun))
	}
	return out, rep, nil
}
