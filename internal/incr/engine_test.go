package incr

import (
	"context"
	"math"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/lu"
	"repro/internal/mapreduce"
	"repro/internal/matrix"
	"repro/internal/workload"
)

func distOpts(nodes int, root string) core.Options {
	opts := core.DefaultOptions(nodes)
	opts.NB = 32
	opts.Root = root
	return opts
}

func TestEngineUpdateMatchesSequential(t *testing.T) {
	const n, k, nodes = 96, 4, 8
	base := workload.DiagonallyDominant(n, 31)
	next, rows := perturbRows(t, base, k, 33)
	ainv, err := lu.Invert(base)
	if err != nil {
		t.Fatal(err)
	}
	u, v := RowDelta(base, next, rows)

	fs := dfs.New(nodes, dfs.DefaultReplication)
	eng := &Engine{FS: fs, Cluster: mapreduce.NewCluster(fs, nodes)}
	got, rep, err := eng.UpdateCtx(context.Background(), ainv, u, v, 0, distOpts(nodes, "incrtest/seq"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.JobsRun == 0 || !rep.Distributed {
		t.Fatalf("distributed update ran %d jobs (distributed=%v)", rep.JobsRun, rep.Distributed)
	}
	want, err := lu.Invert(next)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(got, want); d > 1e-8 {
		t.Fatalf("distributed SMW vs sequential invert differ by %g", d)
	}
	if r := SampledResidual(next, got, DefaultSampleCols); r > 1e-8 {
		t.Fatalf("residual %g", r)
	}
}

func TestEngineUpdateCanceledContext(t *testing.T) {
	const n, nodes = 32, 4
	base := workload.DiagonallyDominant(n, 3)
	next, rows := perturbRows(t, base, 2, 4)
	ainv, err := lu.Invert(base)
	if err != nil {
		t.Fatal(err)
	}
	u, v := RowDelta(base, next, rows)
	fs := dfs.New(nodes, dfs.DefaultReplication)
	eng := &Engine{FS: fs, Cluster: mapreduce.NewCluster(fs, nodes)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := eng.UpdateCtx(ctx, ainv, u, v, 0, distOpts(nodes, "incrtest/cancel")); err == nil {
		t.Fatal("canceled context ran to completion")
	}
}

// The §7.4 replay invariant extends to the incremental path: a 1-kill
// chaos plan during the distributed update must yield an inverse
// bit-identical to the clean run — recovered multiply tasks re-place
// their pieces deterministically, so which attempt computed a block
// can never leak into the result.
func TestEngineUpdateDeterministicUnderKill(t *testing.T) {
	const n, k, nodes = 96, 4, 8
	base := workload.DiagonallyDominant(n, 51)
	next, rows := perturbRows(t, base, k, 53)
	ainv, err := lu.Invert(base)
	if err != nil {
		t.Fatal(err)
	}
	u, v := RowDelta(base, next, rows)

	run := func(ceng *chaos.Engine, fs *dfs.FS) *matrix.Dense {
		t.Helper()
		cl := mapreduce.NewCluster(fs, nodes)
		if ceng != nil {
			cl.Faults = ceng
		}
		eng := &Engine{FS: fs, Cluster: cl}
		out, _, err := eng.UpdateCtx(context.Background(), ainv, u, v, 0, distOpts(nodes, "incrtest/chaos"))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	clean := run(nil, dfs.New(nodes, dfs.DefaultReplication))
	for seed := int64(1); seed <= 3; seed++ {
		plan := chaos.RandomPlan(seed, chaos.PlanConfig{Nodes: nodes, Kills: 1, Horizon: 24, Restart: true})
		fs := dfs.New(nodes, dfs.DefaultReplication)
		ceng := chaos.New(fs, plan)
		faulty := run(ceng, fs)
		for i, got := range faulty.Data {
			if math.Float64bits(got) != math.Float64bits(clean.Data[i]) {
				t.Fatalf("seed %d: element %d differs: %g vs %g (plan: %s)",
					seed, i, got, clean.Data[i], plan)
			}
		}
		if ceng.Stats().Kills == 0 {
			t.Fatalf("seed %d: plan injected no kill", seed)
		}
	}
}
