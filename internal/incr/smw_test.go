package incr

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/lu"
	"repro/internal/matrix"
	"repro/internal/workload"
)

// perturbRows returns a copy of base with k distinct rows perturbed,
// keeping the result diagonally dominant (hence invertible): the
// off-diagonal entries shift and the diagonal is re-anchored above the
// row's absolute off-diagonal sum.
func perturbRows(t *testing.T, base *matrix.Dense, k int, seed int64) (*matrix.Dense, []int) {
	t.Helper()
	n := base.Rows
	rng := rand.New(rand.NewSource(seed))
	next := base.Clone()
	rows := rng.Perm(n)[:k]
	for _, r := range rows {
		offsum := 0.0
		for j := 0; j < n; j++ {
			if j == r {
				continue
			}
			v := next.At(r, j) + (rng.Float64()*2 - 1)
			next.Set(r, j, v)
			offsum += math.Abs(v)
		}
		sign := 1.0
		if next.At(r, r) < 0 {
			sign = -1
		}
		next.Set(r, r, sign*(offsum+1))
	}
	return next, rows
}

func TestUpdateMatchesSequentialInvert(t *testing.T) {
	const n = 64
	base := workload.DiagonallyDominant(n, 41)
	ainv, err := lu.Invert(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, n / 8, n / 4} {
		next, rows := perturbRows(t, base, k, int64(100+k))
		u, v := RowDelta(base, next, rows)
		got, err := Update(ainv, u, v, 0)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		want, err := lu.Invert(next)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if d := matrix.MaxAbsDiff(got, want); d > 1e-8 {
			t.Fatalf("k=%d: SMW vs sequential invert differ by %g", k, d)
		}
		if r := SampledResidual(next, got, DefaultSampleCols); r > 1e-8 {
			t.Fatalf("k=%d: residual %g", k, r)
		}
	}
}

// Rectangular updates: general dense U, V (n×k with k ≪ n), not row
// selectors — the identity holds for any factor pair, and the engine
// must too.
func TestUpdateRectangularShapes(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{24, 1}, {24, 3}, {40, 5}, {64, 7}} {
		base := workload.DiagonallyDominant(tc.n, int64(7*tc.n+tc.k))
		ainv, err := lu.Invert(base)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(tc.n ^ tc.k)))
		u := matrix.New(tc.n, tc.k)
		v := matrix.New(tc.n, tc.k)
		for i := range u.Data {
			// Small factors keep A + UVᵀ comfortably nonsingular.
			u.Data[i] = (rng.Float64()*2 - 1) / 4
			v.Data[i] = (rng.Float64()*2 - 1) / 4
		}
		uvt, err := matrix.MulTransB(u, v)
		if err != nil {
			t.Fatal(err)
		}
		next, err := matrix.Add(base, uvt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Update(ainv, u, v, 0)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		want, err := lu.Invert(next)
		if err != nil {
			t.Fatal(err)
		}
		if d := matrix.MaxAbsDiff(got, want); d > 1e-8 {
			t.Fatalf("n=%d k=%d: SMW vs sequential invert differ by %g", tc.n, tc.k, d)
		}
	}
}

func TestUpdateZeroRankClones(t *testing.T) {
	ainv := workload.DiagonallyDominant(8, 3)
	got, err := Update(ainv, matrix.New(8, 0), matrix.New(8, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(got, ainv); d != 0 {
		t.Fatalf("zero-rank update changed the inverse by %g", d)
	}
	got.Set(0, 0, 42)
	if ainv.At(0, 0) == 42 {
		t.Fatal("zero-rank update aliases its input")
	}
}

// A = I with U = e1, V = -e1 makes the capacitance C = 1 + (-e1)ᵀe1 = 0:
// A + UVᵀ is exactly singular and the typed error — not a panic, not a
// garbage inverse — must come back.
func TestUpdateSingularCapacitance(t *testing.T) {
	n := 6
	ainv := matrix.Identity(n)
	u := matrix.New(n, 1)
	v := matrix.New(n, 1)
	u.Set(0, 0, 1)
	v.Set(0, 0, -1)
	_, err := Update(ainv, u, v, 0)
	if !errors.Is(err, ErrCapacitance) {
		t.Fatalf("want ErrCapacitance, got %v", err)
	}
}

// A nearly singular 2×2 capacitance (condition ≈ 4e14) must trip the
// conditioning ceiling even though the k×k solve itself succeeds.
func TestUpdateIllConditionedCapacitance(t *testing.T) {
	n := 6
	ainv := matrix.Identity(n)
	u := matrix.New(n, 2)
	u.Set(0, 0, 1)
	u.Set(1, 1, 1)
	// C = I + VᵀU = [[1,1],[1,1+1e-14]]: det ≈ 1e-14.
	v := matrix.New(n, 2)
	v.Set(0, 0, 0) // C[0][0] = 1
	v.Set(1, 0, 1) // C[0][1] = 1
	v.Set(0, 1, 1) // C[1][0] = 1
	v.Set(1, 1, 1e-14)
	_, err := Update(ainv, u, v, 0)
	if !errors.Is(err, ErrCapacitance) {
		t.Fatalf("want ErrCapacitance, got %v", err)
	}
	// With the ceiling lifted the same update should go through.
	if _, err := Update(ainv, u, v, 1e20); err != nil {
		t.Fatalf("ceiling lifted: %v", err)
	}
}

func TestUpdateShapeErrors(t *testing.T) {
	ainv := matrix.Identity(4)
	if _, err := Update(nil, matrix.New(4, 1), matrix.New(4, 1), 0); err == nil {
		t.Fatal("nil A⁻¹ accepted")
	}
	if _, err := Update(matrix.New(4, 3), matrix.New(4, 1), matrix.New(4, 1), 0); err == nil {
		t.Fatal("rectangular A⁻¹ accepted")
	}
	if _, err := Update(ainv, matrix.New(3, 1), matrix.New(4, 1), 0); err == nil {
		t.Fatal("U row mismatch accepted")
	}
	if _, err := Update(ainv, matrix.New(4, 2), matrix.New(4, 1), 0); err == nil {
		t.Fatal("U/V column mismatch accepted")
	}
}

func TestRowDeltaReconstructs(t *testing.T) {
	base := workload.DiagonallyDominant(16, 9)
	next, rows := perturbRows(t, base, 3, 77)
	u, v := RowDelta(base, next, rows)
	uvt, err := matrix.MulTransB(u, v)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := matrix.Add(base, uvt)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(sum, next); d != 0 {
		t.Fatalf("A + UVᵀ differs from A' by %g", d)
	}
}

func TestGuardRejectsCorruptedInverse(t *testing.T) {
	a := workload.DiagonallyDominant(32, 5)
	x, err := lu.Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := Guard(a, x, 0, 0); err != nil {
		t.Fatalf("true inverse rejected: %v", err)
	}
	// Column 0 is always in the deterministic sample set.
	x.Set(3, 0, x.At(3, 0)+1)
	if err := Guard(a, x, 0, 0); !errors.Is(err, ErrResidual) {
		t.Fatalf("want ErrResidual, got %v", err)
	}
}

func TestSampledResidualNonFinite(t *testing.T) {
	a := matrix.Identity(4)
	x := matrix.Identity(4)
	x.Set(1, 1, math.NaN())
	if r := SampledResidual(a, x, 4); !math.IsInf(r, 1) {
		t.Fatalf("NaN column gave residual %g, want +Inf", r)
	}
}
