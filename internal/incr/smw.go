package incr

import (
	"fmt"
	"math"

	"repro/internal/lu"
	"repro/internal/matrix"
)

// RowDelta builds the rank-k factors of a row update: for changed rows
// r_1..r_k, A' = A + U·Vᵀ with U the n×k selector (U[r_j][j] = 1) and
// column j of V the difference next.Row(r_j) − base.Row(r_j). rows must
// be valid indices of same-shape square matrices (the detector
// guarantees this; RowDelta panics on violations like the rest of the
// matrix package).
func RowDelta(base, next *matrix.Dense, rows []int) (u, v *matrix.Dense) {
	n, k := base.Rows, len(rows)
	u = matrix.New(n, k)
	v = matrix.New(n, k)
	for j, r := range rows {
		u.Set(r, j, 1)
		br, nr := base.Row(r), next.Row(r)
		for i := 0; i < n; i++ {
			v.Set(i, j, nr[i]-br[i])
		}
	}
	return u, v
}

// capacitanceInverse forms C = I_k + VᵀA⁻¹U from the precomputed
// passes and inverts it locally, refusing singular or ill-conditioned
// capacitance with ErrCapacitance. au is A⁻¹U (n×k), vta is VᵀA⁻¹
// (k×n).
func capacitanceInverse(au, vta, u *matrix.Dense, condMax float64) (*matrix.Dense, error) {
	c, err := matrix.Mul(vta, u)
	if err != nil {
		return nil, err
	}
	for i := 0; i < c.Rows; i++ {
		c.Set(i, i, c.At(i, i)+1)
	}
	cinv, err := lu.Invert(c)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCapacitance, err)
	}
	if kappa := matrix.ConditionEstimateInf(c, cinv); !(kappa <= condMax) {
		return nil, fmt.Errorf("%w: condition estimate %.3g exceeds %.3g", ErrCapacitance, kappa, condMax)
	}
	return cinv, nil
}

// smwCombine finishes the identity from its three passes:
// X = A⁻¹ − (A⁻¹U · C⁻¹) · VᵀA⁻¹.
func smwCombine(ainv, au, cinv, vta *matrix.Dense) (*matrix.Dense, error) {
	m, err := matrix.Mul(au, cinv)
	if err != nil {
		return nil, err
	}
	corr, err := matrix.Mul(m, vta)
	if err != nil {
		return nil, err
	}
	return matrix.Sub(ainv, corr)
}

// Update applies the Sherman–Morrison–Woodbury identity sequentially:
// given A⁻¹ and a rank-k update A' = A + U·Vᵀ, it returns A'⁻¹ in
// O(kn²) work. condMax bounds the capacitance condition number (<=0
// selects DefaultCondMax); a singular or ill-conditioned capacitance
// returns ErrCapacitance so the caller can fall back to full
// inversion.
func Update(ainv, u, v *matrix.Dense, condMax float64) (*matrix.Dense, error) {
	if err := validateUpdate(ainv, u, v); err != nil {
		return nil, err
	}
	if condMax <= 0 {
		condMax = DefaultCondMax
	}
	if u.Cols == 0 {
		return ainv.Clone(), nil
	}
	au, err := matrix.Mul(ainv, u)
	if err != nil {
		return nil, err
	}
	vta, err := matrix.Mul(v.Transpose(), ainv)
	if err != nil {
		return nil, err
	}
	cinv, err := capacitanceInverse(au, vta, u, condMax)
	if err != nil {
		return nil, err
	}
	return smwCombine(ainv, au, cinv, vta)
}

func validateUpdate(ainv, u, v *matrix.Dense) error {
	if ainv == nil || u == nil || v == nil {
		return fmt.Errorf("incr: Update: nil operand")
	}
	if !ainv.IsSquare() {
		return fmt.Errorf("incr: Update: A⁻¹ is %dx%d, want square", ainv.Rows, ainv.Cols)
	}
	if u.Rows != ainv.Rows || v.Rows != ainv.Rows || u.Cols != v.Cols {
		return fmt.Errorf("incr: Update: U %dx%d, V %dx%d against n=%d",
			u.Rows, u.Cols, v.Rows, v.Cols, ainv.Rows)
	}
	return nil
}

// SampledResidual measures the guardrail quantity: the largest
// ‖A'·x_j − e_j‖∞ over `samples` evenly spaced columns j of X. A full
// ‖A'X − I‖ check would cost the O(n³) the update just avoided; the
// sampled check is O(s·n²) and catches the two real failure modes
// (a sketch collision hiding a changed row, and capacitance
// conditioning loss) because either corrupts essentially every column.
// Column choice is deterministic so replays agree. NaN/Inf anywhere in
// a sampled column reports +Inf.
func SampledResidual(aNew, x *matrix.Dense, samples int) float64 {
	n := aNew.Rows
	if samples <= 0 {
		samples = DefaultSampleCols
	}
	if samples > n {
		samples = n
	}
	worst := 0.0
	for s := 0; s < samples; s++ {
		j := s * n / samples
		col, err := matrix.MulVec(aNew, x.Col(j))
		if err != nil {
			return math.Inf(1)
		}
		for i, v := range col {
			if i == j {
				v -= 1
			}
			if math.IsNaN(v) {
				return math.Inf(1)
			}
			if a := math.Abs(v); a > worst {
				worst = a
			}
		}
	}
	return worst
}

// Guard applies the residual guardrail: it returns nil when x passes,
// and an error wrapping ErrResidual (carrying the measured residual)
// when it does not.
func Guard(aNew, x *matrix.Dense, tol float64, samples int) error {
	if tol <= 0 {
		tol = DefaultResidualTol
	}
	if r := SampledResidual(aNew, x, samples); !(r <= tol) {
		return fmt.Errorf("%w: sampled residual %.3g > %.3g", ErrResidual, r, tol)
	}
	return nil
}
