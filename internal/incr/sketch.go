package incr

import (
	"math"

	"repro/internal/matrix"
)

// Sketch is a per-row fingerprint of a matrix: one 64-bit FNV-1a hash
// of each row's float64 bit patterns. Two sketches of same-shape
// matrices can be diffed in O(n) word compares to find candidate
// changed rows without touching the O(n²) payloads. A hash collision
// (two different rows with equal fingerprints) can only hide a changed
// row, never invent one; the residual guardrail catches the resulting
// bad update and forces the full-inversion fallback, so collisions
// cost latency, not correctness.
type Sketch struct {
	Rows int
	Cols int
	H    []uint64
}

const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x1099511628211
)

// hashRow folds a row's float64 bits through FNV-1a. NaNs with
// different payloads hash differently, which is fine: the extractor
// re-reads the actual floats and the guardrail has the final word.
func hashRow(row []float64) uint64 {
	h := uint64(fnvOffset64)
	for _, v := range row {
		b := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			h ^= (b >> s) & 0xff
			h *= fnvPrime64
		}
	}
	return h
}

// NewSketch fingerprints every row of m.
func NewSketch(m *matrix.Dense) *Sketch {
	s := &Sketch{Rows: m.Rows, Cols: m.Cols, H: make([]uint64, m.Rows)}
	for i := 0; i < m.Rows; i++ {
		s.H[i] = hashRow(m.Row(i))
	}
	return s
}

// DiffRows returns the rows whose fingerprints differ between s and
// the candidate sketch, giving up (ok=false) as soon as more than
// limit rows differ. Shapes must match exactly; a shape mismatch is
// reported as not-comparable rather than a panic.
func (s *Sketch) DiffRows(t *Sketch, limit int) (rows []int, ok bool) {
	if s.Rows != t.Rows || s.Cols != t.Cols {
		return nil, false
	}
	for i := 0; i < s.Rows; i++ {
		if s.H[i] != t.H[i] {
			if len(rows) == limit {
				return nil, false
			}
			rows = append(rows, i)
		}
	}
	return rows, true
}

// DiffRowsExact compares actual row contents (bit equality) between
// base and next, giving up once more than limit rows differ. This is
// the authoritative diff the extractor uses after the sketch proposes
// a candidate; it is O(n²) worst case but early-exits per row on the
// first differing element.
func DiffRowsExact(base, next *matrix.Dense, limit int) (rows []int, ok bool) {
	if base.Rows != next.Rows || base.Cols != next.Cols {
		return nil, false
	}
	for i := 0; i < base.Rows; i++ {
		br, nr := base.Row(i), next.Row(i)
		same := true
		for j := range br {
			if math.Float64bits(br[j]) != math.Float64bits(nr[j]) {
				same = false
				break
			}
		}
		if !same {
			if len(rows) == limit {
				return nil, false
			}
			rows = append(rows, i)
		}
	}
	return rows, true
}
