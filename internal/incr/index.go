package incr

import (
	"container/list"
	"sync"

	"repro/internal/matrix"
)

// Base is one entry in the base-matrix index: a recently inverted
// matrix, its inverse, and the per-row fingerprint sketch used to
// probe for low-rank deltas. A and Inv are shared with the serving
// cache and with waiters: read-only.
type Base struct {
	// Digest is the serving layer's cache key for the base request —
	// the same string a client echoes back in X-Base-Digest to make a
	// mutated request probe (and route to) this base directly.
	Digest string
	A      *matrix.Dense
	Inv    *matrix.Dense
	Sketch *Sketch
}

// BaseIndex is a bounded, mutex-guarded LRU of Base entries keyed by
// digest. It is the delta detector's working set: Add on every
// successful full inversion, Lookup when the client names a base,
// Probe to scan for the nearest base otherwise. All methods are safe
// for concurrent use and hold the lock only across in-memory work.
type BaseIndex struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element
}

// NewBaseIndex builds an index retaining at most max entries (<=0
// selects DefaultMaxBases).
func NewBaseIndex(max int) *BaseIndex {
	if max <= 0 {
		max = DefaultMaxBases
	}
	return &BaseIndex{max: max, ll: list.New(), byKey: make(map[string]*list.Element)}
}

// Len reports current occupancy.
func (ix *BaseIndex) Len() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.ll.Len()
}

// Add records a freshly inverted base, evicting the least recently
// used entry beyond the bound. Re-adding an existing digest refreshes
// its recency.
func (ix *BaseIndex) Add(digest string, a, inv *matrix.Dense) {
	if a == nil || inv == nil || !a.IsSquare() {
		return
	}
	sk := NewSketch(a) // sketch before taking the lock: O(n²) hashing must not serialize readers
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if el, ok := ix.byKey[digest]; ok {
		el.Value = &Base{Digest: digest, A: a, Inv: inv, Sketch: sk}
		ix.ll.MoveToFront(el)
		return
	}
	ix.byKey[digest] = ix.ll.PushFront(&Base{Digest: digest, A: a, Inv: inv, Sketch: sk})
	for ix.ll.Len() > ix.max {
		el := ix.ll.Back()
		ix.ll.Remove(el)
		delete(ix.byKey, el.Value.(*Base).Digest)
	}
}

// Lookup returns the base with the given digest, refreshing its
// recency.
func (ix *BaseIndex) Lookup(digest string) (*Base, bool) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	el, ok := ix.byKey[digest]
	if !ok {
		return nil, false
	}
	ix.ll.MoveToFront(el)
	return el.Value.(*Base), true
}

// Probe scans the index for the base closest to a in changed rows,
// considering only same-shape entries and deltas of at most kmax rows.
// It returns the winning base and its candidate changed rows (by
// sketch; the caller re-verifies with DiffRowsExact). The scan is
// deterministic: entries are visited in recency order and ties in
// delta size go to the more recent base.
func (ix *BaseIndex) Probe(a *matrix.Dense, kmax int) (*Base, []int, bool) {
	sk := NewSketch(a)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	var best *Base
	var bestRows []int
	for el := ix.ll.Front(); el != nil; el = el.Next() {
		b := el.Value.(*Base)
		if b.Sketch.Rows != sk.Rows || b.Sketch.Cols != sk.Cols {
			continue
		}
		limit := kmax
		if best != nil && len(bestRows)-1 < limit {
			// Only a strictly smaller delta can displace the current
			// (more recent) winner.
			limit = len(bestRows) - 1
		}
		rows, ok := b.Sketch.DiffRows(sk, limit)
		if !ok || len(rows) == 0 {
			// Zero differing rows means a byte-identical matrix, which
			// the exact-match cache already owns; skip it here.
			continue
		}
		best, bestRows = b, rows
	}
	if best == nil {
		return nil, nil, false
	}
	return best, bestRows, true
}
