// Package mpi is a minimal message-passing substrate modeled on the MPI
// primitives ScaLAPACK uses: rank-addressed point-to-point sends and
// receives plus a few collectives, implemented over Go channels.
//
// The HPDC 2014 paper compares its MapReduce inverter against ScaLAPACK
// over MPICH; this package lets the repository's ScaLAPACK-style baseline
// (package scalapack) run for real, with per-rank byte counters exposing
// the communication volumes of the paper's Tables 1 and 2.
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// message is one tagged payload in flight.
type message struct {
	from, tag int
	data      []float64
	ints      []int
}

// World is a communicator over size ranks.
type World struct {
	size   int
	queues []chan message

	barrier *barrier

	bytesSent  atomic.Int64
	msgsSent   atomic.Int64
	maxInbox   int
	perRankTxB []atomic.Int64
	perRankRxB []atomic.Int64

	// metric instruments are resolved once in AttachMetrics; nil-safe
	// no-ops otherwise.
	mBytesSent *obs.Counter
	mMsgsSent  *obs.Counter
}

// AttachMetrics mirrors the world's communication accounting into reg.
// Call before launching ranks; nil detaches.
func (w *World) AttachMetrics(reg *obs.Registry) {
	w.mBytesSent = reg.Counter("mpi.bytes_sent")
	w.mMsgsSent = reg.Counter("mpi.messages")
}

// NewWorld creates a communicator with the given number of ranks.
func NewWorld(size int) *World {
	if size < 1 {
		size = 1
	}
	w := &World{
		size:       size,
		queues:     make([]chan message, size),
		barrier:    newBarrier(size),
		perRankTxB: make([]atomic.Int64, size),
		perRankRxB: make([]atomic.Int64, size),
		maxInbox:   1024,
	}
	for i := range w.queues {
		w.queues[i] = make(chan message, w.maxInbox)
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// BytesSent returns total float64-payload bytes sent so far (8 bytes per
// element plus 8 per int), the Table 1/2 "Transfer" metric.
func (w *World) BytesSent() int64 { return w.bytesSent.Load() }

// MessagesSent returns the number of point-to-point messages.
func (w *World) MessagesSent() int64 { return w.msgsSent.Load() }

// RankBytesSent returns the bytes sent by one rank.
func (w *World) RankBytesSent(rank int) int64 { return w.perRankTxB[rank].Load() }

// RankBytesRecv returns the bytes received (consumed) by one rank.
func (w *World) RankBytesRecv(rank int) int64 { return w.perRankRxB[rank].Load() }

// Comm is one rank's endpoint.
type Comm struct {
	w    *World
	rank int
}

// Rank returns c's rank id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.w.size }

// At returns the endpoint for a rank; used to launch rank goroutines.
func (w *World) At(rank int) *Comm {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("mpi: rank %d out of range %d", rank, w.size))
	}
	return &Comm{w: w, rank: rank}
}

// Send delivers data to rank dst with a tag. The payload is copied, so the
// caller may reuse its buffer. Send blocks only if dst's inbox is full.
func (c *Comm) Send(dst, tag int, data []float64) {
	c.sendMsg(dst, tag, append([]float64(nil), data...), nil)
}

// SendInts delivers an int payload (pivot indices and the like).
func (c *Comm) SendInts(dst, tag int, data []int) {
	c.sendMsg(dst, tag, nil, append([]int(nil), data...))
}

func (c *Comm) sendMsg(dst, tag int, data []float64, ints []int) {
	if dst < 0 || dst >= c.w.size {
		panic(fmt.Sprintf("mpi: send to rank %d of %d", dst, c.w.size))
	}
	n := int64(8*len(data) + 8*len(ints))
	c.w.bytesSent.Add(n)
	c.w.perRankTxB[c.rank].Add(n)
	c.w.msgsSent.Add(1)
	c.w.mBytesSent.Add(n)
	c.w.mMsgsSent.Add(1)
	c.w.queues[dst] <- message{from: c.rank, tag: tag, data: data, ints: ints}
}

// msgBytes is the accounted payload size of a message.
func msgBytes(m message) int64 { return int64(8*len(m.data) + 8*len(m.ints)) }

// Recv blocks until a message with the given source and tag arrives and
// returns its float payload. Out-of-order messages with other (src, tag)
// pairs are buffered. src < 0 matches any source.
func (c *Comm) Recv(src, tag int) []float64 {
	m := c.recvMatch(src, tag)
	return m.data
}

// RecvInts is Recv for int payloads.
func (c *Comm) RecvInts(src, tag int) []int {
	m := c.recvMatch(src, tag)
	return m.ints
}

// pending holds out-of-order messages per rank. It lives in a map keyed by
// rank inside World to keep Comm value-light; protected by pendMu.
var (
	pendMu  sync.Mutex
	pending = map[*World]map[int][]message{}
)

func (c *Comm) recvMatch(src, tag int) message {
	// Check the stash first.
	pendMu.Lock()
	stash := pending[c.w]
	if stash == nil {
		stash = map[int][]message{}
		pending[c.w] = stash
	}
	for i, m := range stash[c.rank] {
		if (src < 0 || m.from == src) && m.tag == tag {
			stash[c.rank] = append(stash[c.rank][:i], stash[c.rank][i+1:]...)
			pendMu.Unlock()
			c.w.perRankRxB[c.rank].Add(msgBytes(m))
			return m
		}
	}
	pendMu.Unlock()
	for {
		m := <-c.w.queues[c.rank]
		if (src < 0 || m.from == src) && m.tag == tag {
			c.w.perRankRxB[c.rank].Add(msgBytes(m))
			return m
		}
		pendMu.Lock()
		pending[c.w][c.rank] = append(pending[c.w][c.rank], m)
		pendMu.Unlock()
	}
}

// Bcast broadcasts data from root to all ranks and returns each rank's
// copy. Every rank must call it with the same root and tag.
func (c *Comm) Bcast(root, tag int, data []float64) []float64 {
	if c.rank == root {
		for r := 0; r < c.w.size; r++ {
			if r != root {
				c.Send(r, tag, data)
			}
		}
		return append([]float64(nil), data...)
	}
	return c.Recv(root, tag)
}

// BcastInts is Bcast for int payloads.
func (c *Comm) BcastInts(root, tag int, data []int) []int {
	if c.rank == root {
		for r := 0; r < c.w.size; r++ {
			if r != root {
				c.SendInts(r, tag, data)
			}
		}
		return append([]int(nil), data...)
	}
	return c.RecvInts(root, tag)
}

// Barrier blocks until all ranks reach it.
func (c *Comm) Barrier() { c.w.barrier.await() }

// AllReduceMaxLoc finds the (value, owner-rank, payload-index) triple with
// the maximum |value| across all ranks — the pivot-selection collective of
// distributed LU. Each rank contributes one candidate.
func (c *Comm) AllReduceMaxLoc(tag int, value float64, index int) (float64, int, int) {
	// Gather at rank 0, reduce, broadcast.
	if c.rank == 0 {
		bestV, bestRank, bestIdx := value, 0, index
		for r := 1; r < c.w.size; r++ {
			m := c.recvMatch(r, tag)
			v := m.data[0]
			if abs(v) > abs(bestV) {
				bestV, bestRank, bestIdx = v, r, m.ints[0]
			}
		}
		for r := 1; r < c.w.size; r++ {
			c.sendMsg(r, tag, []float64{bestV}, []int{bestRank, bestIdx})
		}
		return bestV, bestRank, bestIdx
	}
	c.sendMsg(0, tag, []float64{value}, []int{index})
	m := c.recvMatch(0, tag)
	return m.data[0], m.ints[0], m.ints[1]
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// barrier is a reusable all-rank rendezvous.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	size  int
	count int
	phase int
}

func newBarrier(size int) *barrier {
	b := &barrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	phase := b.phase
	b.count++
	if b.count == b.size {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
	} else {
		for phase == b.phase {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}

// Run launches fn on every rank concurrently and waits for all to finish,
// returning the first error.
func Run(size int, fn func(c *Comm) error) error {
	w := NewWorld(size)
	defer cleanup(w)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(w.At(r))
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunWorld is Run over a caller-provided world (to inspect counters).
func RunWorld(w *World, fn func(c *Comm) error) error {
	defer cleanup(w)
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(w.At(r))
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func cleanup(w *World) {
	pendMu.Lock()
	delete(pending, w)
	pendMu.Unlock()
}
