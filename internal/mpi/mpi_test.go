package mpi

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestPingPong(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2, 3})
			back := c.Recv(1, 8)
			if len(back) != 3 || back[0] != 2 {
				return errors.New("wrong echo")
			}
		} else {
			data := c.Recv(0, 7)
			for i := range data {
				data[i] *= 2
			}
			c.Send(0, 8, data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []float64{42}
			c.Send(1, 1, buf)
			buf[0] = -1 // must not corrupt the in-flight message
		} else {
			if got := c.Recv(0, 1); got[0] != 42 {
				return errors.New("payload aliased sender buffer")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagAndSourceMatching(t *testing.T) {
	// Out-of-order delivery across tags must be handled by stashing.
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 2, []float64{2})
			c.Send(1, 1, []float64{1})
		} else {
			first := c.Recv(0, 1) // arrives second, stashes tag-2
			second := c.Recv(0, 2)
			if first[0] != 1 || second[0] != 2 {
				return errors.New("tag matching broken")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	const n = 5
	var sum atomic.Int64
	err := Run(n, func(c *Comm) error {
		var data []float64
		if c.Rank() == 2 {
			data = []float64{3.5}
		}
		got := c.Bcast(2, 9, data)
		if got[0] != 3.5 {
			return errors.New("bcast value wrong")
		}
		sum.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Load() != n {
		t.Fatalf("ranks completed = %d", sum.Load())
	}
}

func TestBcastInts(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		var p []int
		if c.Rank() == 0 {
			p = []int{4, 5, 6}
		}
		got := c.BcastInts(0, 3, p)
		if len(got) != 3 || got[2] != 6 {
			return errors.New("int bcast wrong")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrier(t *testing.T) {
	const n = 4
	var phase atomic.Int64
	err := Run(n, func(c *Comm) error {
		phase.Add(1)
		c.Barrier()
		if phase.Load() != n {
			return errors.New("barrier released early")
		}
		c.Barrier() // reusable
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceMaxLoc(t *testing.T) {
	const n = 5
	err := Run(n, func(c *Comm) error {
		// Rank r contributes value -(r+1); rank 4 has max magnitude 5.
		v, owner, idx := c.AllReduceMaxLoc(11, -float64(c.Rank()+1), c.Rank()*10)
		if v != -5 || owner != 4 || idx != 40 {
			return errors.New("maxloc wrong")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestByteAccounting(t *testing.T) {
	w := NewWorld(2)
	err := RunWorld(w, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, make([]float64, 100)) // 800 bytes
		} else {
			c.Recv(0, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.BytesSent(); got != 800 {
		t.Fatalf("BytesSent = %d", got)
	}
	if got := w.RankBytesSent(0); got != 800 {
		t.Fatalf("rank 0 sent %d", got)
	}
	if got := w.RankBytesSent(1); got != 0 {
		t.Fatalf("rank 1 sent %d", got)
	}
	if w.MessagesSent() != 1 {
		t.Fatalf("messages = %d", w.MessagesSent())
	}
}

func TestRunPropagatesError(t *testing.T) {
	sentinel := errors.New("rank failed")
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 1 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestAnySource(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 0 {
			got1 := c.Recv(-1, 5)
			got2 := c.Recv(-1, 5)
			if got1[0]+got2[0] != 3 { // 1 + 2 in either order
				return errors.New("any-source recv wrong")
			}
		} else {
			c.Send(0, 5, []float64{float64(c.Rank())})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
