// Package qr implements QR decomposition by the modified Gram-Schmidt
// process and by Householder reflections, and matrix inversion via
// A^-1 = R^-1 Q^T — the Section 2 comparator the paper rejects for
// MapReduce because each of the n orthogonalization steps depends on all
// previous ones.
package qr

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/lu"
	"repro/internal/matrix"
)

// ErrSingular is returned when the input is rank deficient.
var ErrSingular = errors.New("qr: matrix is singular")

// ErrNotSquare is returned for wide inputs (more columns than rows) and,
// by Invert, for anything non-square: QR needs rows >= cols.
var ErrNotSquare = errors.New("qr: matrix is not square")

const rankTol = 1e-12

// Factorization holds A = Q R. For square input Q is the full m x m
// orthogonal factor and R is m x n upper triangular; for tall input
// (m > n) the factorization is thin: Q is m x n with orthonormal columns
// and R is n x n upper triangular.
type Factorization struct {
	Q *matrix.Dense
	R *matrix.Dense
}

// GramSchmidt computes a reduced QR factorization of a (m x n, m >= n)
// using the modified Gram-Schmidt process described in Section 2: a
// sequence of n vectors, each orthogonalized against all previous ones.
// Q is m x n with orthonormal columns and R is n x n upper triangular.
func GramSchmidt(a *matrix.Dense) (*Factorization, error) {
	m, n := a.Dims()
	if m < n {
		return nil, fmt.Errorf("qr: GramSchmidt needs rows >= cols, got %dx%d", m, n)
	}
	// Work on columns.
	v := make([][]float64, n)
	for j := 0; j < n; j++ {
		v[j] = a.Col(j)
	}
	q := matrix.New(m, n)
	r := matrix.New(n, n)
	for j := 0; j < n; j++ {
		// Modified Gram-Schmidt: subtract projections one at a time using
		// the already-updated vector (numerically superior to classical GS).
		for k := 0; k < j; k++ {
			qk := q.Col(k)
			rkj := matrix.Dot(qk, v[j])
			r.Set(k, j, rkj)
			for i := range v[j] {
				v[j][i] -= rkj * qk[i]
			}
		}
		norm := matrix.VecNorm2(v[j])
		scale := math.Abs(r.At(0, 0))
		if j == 0 {
			scale = 1
		}
		if norm < rankTol*(1+scale) {
			return nil, fmt.Errorf("qr: column %d linearly dependent: %w", j, ErrSingular)
		}
		r.Set(j, j, norm)
		for i := 0; i < m; i++ {
			q.Set(i, j, v[j][i]/norm)
		}
	}
	return &Factorization{Q: q, R: r}, nil
}

// Householder computes a QR factorization using Householder reflections;
// it is better conditioned than Gram-Schmidt and is used as the package's
// default inversion path and as the per-block kernel of internal/tsqr.
// Square input yields the full factorization (Q m x m, R m x m); tall
// input (m > n) yields the thin one (Q m x n orthonormal columns, R
// n x n upper triangular). Wide input is rejected with ErrNotSquare.
func Householder(a *matrix.Dense) (*Factorization, error) {
	m, n := a.Dims()
	if m < n {
		return nil, fmt.Errorf("qr: Householder %dx%d: %w", m, n, ErrNotSquare)
	}
	r := a.Clone()
	q := matrix.Identity(m)
	// A square matrix needs no reflector for the last column (nothing
	// below the diagonal); a tall one does, to zero rows n..m-1.
	steps := n - 1
	if m > n {
		steps = n
	}
	for k := 0; k < steps; k++ {
		// Build the reflector for column k.
		var normx float64
		for i := k; i < m; i++ {
			normx += r.At(i, k) * r.At(i, k)
		}
		normx = math.Sqrt(normx)
		if normx == 0 {
			continue
		}
		alpha := -math.Copysign(normx, r.At(k, k))
		v := make([]float64, m)
		v[k] = r.At(k, k) - alpha
		for i := k + 1; i < m; i++ {
			v[i] = r.At(i, k)
		}
		vnorm2 := matrix.Dot(v, v)
		if vnorm2 == 0 {
			continue
		}
		// Apply H = I - 2 v v^T / (v^T v) to R (left) and accumulate into Q.
		applyReflector(r, v, vnorm2, k)
		applyReflectorRight(q, v, vnorm2, k)
	}
	if m > n {
		return &Factorization{Q: q.Block(0, m, 0, n), R: r.Block(0, n, 0, n)}, nil
	}
	return &Factorization{Q: q, R: r}, nil
}

// applyReflector updates R <- H R for H = I - 2vv^T/|v|^2, touching rows k..n-1.
func applyReflector(r *matrix.Dense, v []float64, vnorm2 float64, k int) {
	n := r.Rows
	for j := 0; j < r.Cols; j++ {
		var s float64
		for i := k; i < n; i++ {
			s += v[i] * r.At(i, j)
		}
		s = 2 * s / vnorm2
		for i := k; i < n; i++ {
			r.Set(i, j, r.At(i, j)-s*v[i])
		}
	}
}

// applyReflectorRight updates Q <- Q H, touching columns k..n-1.
func applyReflectorRight(q *matrix.Dense, v []float64, vnorm2 float64, k int) {
	n := q.Rows
	for i := 0; i < n; i++ {
		row := q.Row(i)
		var s float64
		for j := k; j < n; j++ {
			s += row[j] * v[j]
		}
		s = 2 * s / vnorm2
		for j := k; j < n; j++ {
			row[j] -= s * v[j]
		}
	}
}

// Invert computes A^-1 = R^-1 Q^T from a Householder QR factorization.
func Invert(a *matrix.Dense) (*matrix.Dense, error) {
	f, err := Householder(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	for i := 0; i < n; i++ {
		if math.Abs(f.R.At(i, i)) < rankTol*(1+matrix.MaxAbs(a)) {
			return nil, fmt.Errorf("qr: R[%d][%d] ~ 0: %w", i, i, ErrSingular)
		}
	}
	rinv, err := lu.UpperInverse(f.R)
	if err != nil {
		return nil, fmt.Errorf("qr: %w", err)
	}
	return matrix.Mul(rinv, f.Q.Transpose())
}

// SequentialSteps returns the number of dependent vector steps for an
// order-n Gram-Schmidt QR: each of the n columns depends on all previous
// columns (Section 2's argument against a MapReduce port).
func SequentialSteps(n int) int { return n }
