package qr

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/lu"
	"repro/internal/matrix"
	"repro/internal/workload"
)

func orthonormalColumns(t *testing.T, q *matrix.Dense, tol float64) {
	t.Helper()
	qtq, err := matrix.Mul(q.Transpose(), q)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(qtq, matrix.Identity(q.Cols)); d > tol {
		t.Fatalf("Q^T Q deviates from I by %g", d)
	}
}

func upperTriangular(t *testing.T, r *matrix.Dense, tol float64) {
	t.Helper()
	for i := 1; i < r.Rows; i++ {
		for j := 0; j < i && j < r.Cols; j++ {
			if math.Abs(r.At(i, j)) > tol {
				t.Fatalf("R[%d][%d] = %g below diagonal", i, j, r.At(i, j))
			}
		}
	}
}

func TestGramSchmidt(t *testing.T) {
	a := workload.Random(12, 41)
	f, err := GramSchmidt(a)
	if err != nil {
		t.Fatal(err)
	}
	orthonormalColumns(t, f.Q, 1e-10)
	upperTriangular(t, f.R, 0)
	qr, err := matrix.Mul(f.Q, f.R)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(qr, a); d > 1e-10 {
		t.Fatalf("QR != A by %g", d)
	}
}

func TestGramSchmidtRectangular(t *testing.T) {
	a := workload.RandomRect(10, 4, 42)
	f, err := GramSchmidt(a)
	if err != nil {
		t.Fatal(err)
	}
	orthonormalColumns(t, f.Q, 1e-10)
	qr, _ := matrix.Mul(f.Q, f.R)
	if d := matrix.MaxAbsDiff(qr, a); d > 1e-10 {
		t.Fatalf("QR != A by %g", d)
	}
	if _, err := GramSchmidt(workload.RandomRect(3, 5, 1)); err == nil {
		t.Fatal("wide matrix accepted")
	}
}

func TestGramSchmidtSingular(t *testing.T) {
	a := matrix.FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := GramSchmidt(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v", err)
	}
}

func TestHouseholder(t *testing.T) {
	a := workload.Random(15, 43)
	f, err := Householder(a)
	if err != nil {
		t.Fatal(err)
	}
	orthonormalColumns(t, f.Q, 1e-12)
	upperTriangular(t, f.R, 1e-12)
	qr, _ := matrix.Mul(f.Q, f.R)
	if d := matrix.MaxAbsDiff(qr, a); d > 1e-12 {
		t.Fatalf("QR != A by %g", d)
	}
}

// Only wide matrices (cols > rows) are rejected; tall ones get a thin QR.
func TestHouseholderNotSquare(t *testing.T) {
	if _, err := Householder(matrix.New(3, 4)); !errors.Is(err, ErrNotSquare) {
		t.Fatalf("err = %v", err)
	}
}

func TestHouseholderTall(t *testing.T) {
	for _, dims := range [][2]int{{8, 3}, {20, 5}, {7, 6}, {9, 1}} {
		m, n := dims[0], dims[1]
		a := workload.RandomRect(m, n, int64(100*m+n))
		f, err := Householder(a)
		if err != nil {
			t.Fatalf("%dx%d: %v", m, n, err)
		}
		if f.Q.Rows != m || f.Q.Cols != n || f.R.Rows != n || f.R.Cols != n {
			t.Fatalf("%dx%d: thin shapes Q %dx%d R %dx%d",
				m, n, f.Q.Rows, f.Q.Cols, f.R.Rows, f.R.Cols)
		}
		orthonormalColumns(t, f.Q, 1e-12)
		upperTriangular(t, f.R, 1e-12)
		qr, err := matrix.Mul(f.Q, f.R)
		if err != nil {
			t.Fatal(err)
		}
		if d := matrix.MaxAbsDiff(qr, a); d > 1e-12 {
			t.Fatalf("%dx%d: QR != A by %g", m, n, d)
		}
	}
}

func TestInvertResidualAndAgreement(t *testing.T) {
	a := workload.Random(20, 44)
	inv, err := Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := matrix.IdentityResidual(a, inv)
	if err != nil {
		t.Fatal(err)
	}
	if res > 1e-9 {
		t.Fatalf("residual %g", res)
	}
	viaLU, err := lu.Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(inv, viaLU); d > 1e-8 {
		t.Fatalf("QR and LU inverses differ by %g", d)
	}
}

func TestInvertSingular(t *testing.T) {
	if _, err := Invert(matrix.New(4, 4)); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v", err)
	}
}

func TestSequentialSteps(t *testing.T) {
	if SequentialSteps(64) != 64 {
		t.Fatalf("steps = %d", SequentialSteps(64))
	}
}

func TestQuickHouseholderReconstructs(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%12) + 1
		a := workload.DiagonallyDominant(n, seed)
		fac, err := Householder(a)
		if err != nil {
			return false
		}
		qr, err := matrix.Mul(fac.Q, fac.R)
		return err == nil && matrix.MaxAbsDiff(qr, a) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
