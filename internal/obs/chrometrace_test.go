package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// goldenSpans is a small deterministic trace exercising every exporter
// feature: master and node tracks, attrs, labels, and an unfinished span
// (which must be skipped).
func goldenSpans() []Span {
	spans := []Span{
		mkSpan(1, 0, "pipeline.invert", KindPipeline, TrackMaster, 0, 90),
		mkSpan(2, 1, "partition", KindJob, TrackMaster, 0, 20),
		mkSpan(3, 2, "map", KindPhase, TrackMaster, 1, 19),
		mkSpan(4, 3, "map:0", KindTask, 0, 2, 10),
		mkSpan(5, 3, "map:1", KindTask, 1, 2, 12),
		mkSpan(6, 1, "lu:Root", KindJob, TrackMaster, 25, 80),
	}
	spans[3].Attrs = map[string]int64{"attempt": 0, "dfs.bytes_read": 4096}
	spans[4].Labels = map[string]string{"speculative": "true"}
	spans[5].Attrs = map[string]int64{"shuffled_kvs": 8}
	unfinished := mkSpan(7, 1, "unfinished", KindOp, TrackMaster, 85, 85)
	unfinished.End = time.Time{}
	return append(spans, unfinished)
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenSpans()); err != nil {
		t.Fatal(err)
	}

	goldenPath := filepath.Join("testdata", "chrometrace.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exported trace differs from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestChromeTraceShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenSpans()); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    int64          `json:"ts"`
			Dur   int64          `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if parsed.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", parsed.DisplayTimeUnit)
	}
	var complete, meta int
	threadNames := map[int]string{}
	for _, ev := range parsed.TraceEvents {
		switch ev.Phase {
		case "X":
			complete++
			if ev.Name == "unfinished" {
				t.Fatal("unfinished span exported")
			}
			if ev.Name == "map:0" {
				if ev.TID != 1 { // node 0 -> tid 1
					t.Fatalf("map:0 on tid %d, want 1", ev.TID)
				}
				if ev.Dur != (8 * time.Millisecond).Microseconds() {
					t.Fatalf("map:0 dur = %d", ev.Dur)
				}
				if v, ok := ev.Args["dfs.bytes_read"].(float64); !ok || v != 4096 {
					t.Fatalf("map:0 args = %v", ev.Args)
				}
			}
		case "M":
			meta++
			if ev.Name == "thread_name" {
				threadNames[ev.TID], _ = ev.Args["name"].(string)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Phase)
		}
	}
	if complete != 6 {
		t.Fatalf("exported %d complete events, want 6", complete)
	}
	// One track per simulated node plus the master track.
	want := map[int]string{0: "master", 1: "node 0", 2: "node 1"}
	for tid, name := range want {
		if threadNames[tid] != name {
			t.Fatalf("thread %d named %q, want %q", tid, threadNames[tid], name)
		}
	}
	if meta != 1+len(want)*2 {
		t.Fatalf("exported %d metadata events, want %d", meta, 1+len(want)*2)
	}
}
