package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic time source advancing a fixed step per call.
type fakeClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func newFakeClock(step time.Duration) *fakeClock {
	return &fakeClock{t: time.Unix(1000, 0), step: step}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(c.step)
	return c.t
}

func TestSpanHierarchy(t *testing.T) {
	tr := New()
	root := tr.StartSpan("pipeline", KindPipeline)
	job := root.Child("job", KindJob)
	task := job.Child("map:0", KindTask)
	task.SetTrack(3)
	task.SetAttr("bytes", 100)
	task.AddAttr("bytes", 50)
	task.SetLabel("speculative", "true")
	task.Finish()
	job.Finish()
	root.Finish()

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	r := Root(spans)
	if r == nil || r.Name != "pipeline" {
		t.Fatalf("root = %+v", r)
	}
	idx := ChildrenIndex(spans)
	if len(idx[r.ID]) != 1 || idx[r.ID][0].Name != "job" {
		t.Fatalf("root children = %+v", idx[r.ID])
	}
	tk := idx[idx[r.ID][0].ID][0]
	if tk.Track != 3 || tk.Attrs["bytes"] != 150 || tk.Labels["speculative"] != "true" {
		t.Fatalf("task span = %+v", tk)
	}
	if tk.End.IsZero() {
		t.Fatal("task span not finished")
	}
}

// TestConcurrentSpans exercises concurrent creation, attribute writes, and
// finishing from many goroutines; run with -race.
func TestConcurrentSpans(t *testing.T) {
	tr := New()
	root := tr.StartSpan("root", KindPipeline)
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s := root.Child("task", KindTask)
				s.SetTrack(w)
				s.SetAttr("i", int64(i))
				s.AddAttr("i", 1)
				s.SetLabel("w", "x")
				_ = s.Duration()
				s.Finish()
			}
		}(w)
	}
	// Concurrent snapshot while spans are being recorded must be safe.
	for i := 0; i < 10; i++ {
		_ = tr.Snapshot()
	}
	wg.Wait()
	root.Finish()
	if got, want := tr.Len(), workers*perWorker+1; got != want {
		t.Fatalf("recorded %d spans, want %d", got, want)
	}
	for _, s := range tr.Snapshot() {
		if s.End.IsZero() {
			t.Fatalf("unfinished span %q", s.Name)
		}
	}
}

// TestNoopPathAllocatesNothing pins the disabled-tracing hot path: every
// span operation on the nil tracer must allocate zero bytes.
func TestNoopPathAllocatesNothing(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(100, func() {
		root := tr.StartSpan("pipeline", KindPipeline)
		job := root.Child("job", KindJob)
		task := job.Child("task", KindTask)
		task.SetTrack(1)
		task.SetAttr("bytes", 1)
		task.AddAttr("bytes", 1)
		task.SetLabel("k", "v")
		_ = task.Duration()
		task.Finish()
		job.Finish()
		root.Finish()
	})
	if allocs != 0 {
		t.Fatalf("no-op tracer path allocated %.1f times per run, want 0", allocs)
	}
	if tr.Len() != 0 {
		t.Fatalf("nil tracer recorded %d spans", tr.Len())
	}
}

// TestNoopMetricsAllocateNothing pins the nil-registry instrument path.
func TestNoopMetricsAllocateNothing(t *testing.T) {
	var r *Registry
	allocs := testing.AllocsPerRun(100, func() {
		r.Counter("c").Add(1)
		r.Gauge("g").Set(2)
		r.Histogram("h").Observe(time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("no-op metrics path allocated %.1f times per run, want 0", allocs)
	}
}

func TestMetricsRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("mr.jobs").Add(3)
	if r.Counter("mr.jobs").Value() != 3 {
		t.Fatalf("counter = %d", r.Counter("mr.jobs").Value())
	}
	r.Gauge("dfs.files").Set(12)
	if r.Gauge("dfs.files").Value() != 12 {
		t.Fatalf("gauge = %d", r.Gauge("dfs.files").Value())
	}
	h := r.Histogram("mr.task_latency")
	h.Observe(5 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(time.Minute) // overflow bucket
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("histogram count = %d", s.Count)
	}
	if s.Counts[0] != 1 || s.Counts[len(s.Counts)-1] != 1 {
		t.Fatalf("bucket counts = %v", s.Counts)
	}
	out := r.String()
	for _, want := range []string{"mr.jobs", "dfs.files", "mr.task_latency", "n=3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentMetrics(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("c").Add(1)
				r.Histogram("h").Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 1600 {
		t.Fatalf("counter = %d, want 1600", got)
	}
	if got := r.Histogram("h").Snapshot().Count; got != 1600 {
		t.Fatalf("histogram count = %d, want 1600", got)
	}
}

func TestSummarize(t *testing.T) {
	tr := New()
	tr.SetClock(newFakeClock(time.Millisecond).now)
	root := tr.StartSpan("pipeline.invert", KindPipeline)
	job := root.Child("lu:Root", KindJob)
	job.SetAttr("dfs.bytes_read", 512)
	ph := job.Child("map", KindPhase)
	tk := ph.Child("map:0", KindTask)
	tk.Finish()
	ph.Finish()
	job.Finish()
	root.Finish()
	out := SummarizeString(tr.Snapshot())
	for _, want := range []string{"4 spans", "job=1", "lu:Root", "read=512"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}
