// Package obs is the repository's self-contained observability subsystem:
// a concurrency-safe hierarchical span tracer, a metrics registry
// (counters, gauges, fixed-bucket latency histograms), a Chrome
// trace-event JSON exporter viewable in Perfetto or chrome://tracing, a
// critical-path analyzer over finished span trees, and a plain-text
// summary reporter.
//
// The paper's whole evaluation (Tables 1-2, Figures 6-8) attributes time
// and bytes to pipeline phases; this package gives every layer of the
// reproduction — MapReduce engine, DFS, MPI substrate, the core pipeline —
// a common way to record that attribution per run instead of only as
// end-of-job aggregates.
//
// Everything is nil-safe: a nil *Tracer produces nil *Span values, and
// every Span and Registry method is a no-op on a nil receiver, so
// instrumented hot paths cost a pointer comparison (and allocate nothing)
// when observability is off.
package obs

import (
	"sort"
	"sync"
	"time"
)

// SpanKind classifies a span's level in the pipeline hierarchy.
type SpanKind string

// The span hierarchy of a traced inversion: one pipeline span, one span
// per MapReduce job, map/reduce phase spans under each job, one span per
// task attempt under each phase, and op spans for master-side work
// (leaf LU decompositions, input writes, output assembly).
const (
	KindPipeline SpanKind = "pipeline"
	KindJob      SpanKind = "job"
	KindPhase    SpanKind = "phase"
	KindTask     SpanKind = "task"
	KindOp       SpanKind = "op"
	KindChaos    SpanKind = "chaos"
)

// TrackMaster is the display track for spans executed by the master
// (driver) rather than a simulated cluster node.
const TrackMaster = -1

// Span is one timed interval in the trace. Fields are written through the
// owning tracer's lock; read them only from a Snapshot.
type Span struct {
	tr *Tracer

	ID     int64
	Parent int64 // 0 for root spans
	Name   string
	Kind   SpanKind
	// Track is the display lane: a simulated node id, or TrackMaster.
	Track int
	Start time.Time
	End   time.Time
	// Attrs carries numeric attributes (bytes read, retries, ...).
	Attrs map[string]int64
	// Labels carries string attributes (speculative flag, error text, ...).
	Labels map[string]string
}

// Tracer records spans. The zero value is not usable; construct with New.
// A nil *Tracer is a valid always-off tracer.
type Tracer struct {
	mu     sync.Mutex
	spans  []*Span
	nextID int64
	now    func() time.Time
}

// New returns an empty tracer.
func New() *Tracer {
	return &Tracer{now: time.Now}
}

// SetClock replaces the tracer's time source (tests use a fake clock to
// make exported traces deterministic). No-op on a nil tracer.
func (t *Tracer) SetClock(now func() time.Time) {
	if t == nil || now == nil {
		return
	}
	t.mu.Lock()
	t.now = now
	t.mu.Unlock()
}

// StartSpan opens a root span. Returns nil (a valid no-op span) when the
// tracer is nil.
func (t *Tracer) StartSpan(name string, kind SpanKind) *Span {
	return t.start(0, name, kind)
}

func (t *Tracer) start(parent int64, name string, kind SpanKind) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextID++
	s := &Span{
		tr:     t,
		ID:     t.nextID,
		Parent: parent,
		Name:   name,
		Kind:   kind,
		Track:  TrackMaster,
		Start:  t.now(),
	}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Child opens a span under s. Nil-safe: a nil span yields a nil child.
func (s *Span) Child(name string, kind SpanKind) *Span {
	if s == nil {
		return nil
	}
	return s.tr.start(s.ID, name, kind)
}

// Finish closes the span at the tracer's current time. Finishing twice
// keeps the first end time.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.End.IsZero() {
		s.End = s.tr.now()
	}
	s.tr.mu.Unlock()
}

// SetTrack assigns the span's display lane (a simulated node id).
func (s *Span) SetTrack(node int) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.Track = node
	s.tr.mu.Unlock()
}

// SetAttr sets a numeric attribute.
func (s *Span) SetAttr(name string, v int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.Attrs == nil {
		s.Attrs = make(map[string]int64)
	}
	s.Attrs[name] = v
	s.tr.mu.Unlock()
}

// AddAttr accumulates into a numeric attribute.
func (s *Span) AddAttr(name string, delta int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.Attrs == nil {
		s.Attrs = make(map[string]int64)
	}
	s.Attrs[name] += delta
	s.tr.mu.Unlock()
}

// SetLabel sets a string attribute.
func (s *Span) SetLabel(name, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.Labels == nil {
		s.Labels = make(map[string]string)
	}
	s.Labels[name] = value
	s.tr.mu.Unlock()
}

// Duration returns End - Start, or the time elapsed so far for an
// unfinished span (zero on a nil span).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.End.IsZero() {
		return s.tr.now().Sub(s.Start)
	}
	return s.End.Sub(s.Start)
}

// Len returns the number of spans recorded so far (0 for a nil tracer).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Snapshot returns deep copies of all recorded spans, ordered by start
// time (ties broken by id). Unfinished spans are snapshotted with a zero
// End. Safe to call while spans are still being recorded.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	for i, s := range t.spans {
		cp := *s
		cp.tr = nil
		if len(s.Attrs) > 0 {
			cp.Attrs = make(map[string]int64, len(s.Attrs))
			for k, v := range s.Attrs {
				cp.Attrs[k] = v
			}
		}
		if len(s.Labels) > 0 {
			cp.Labels = make(map[string]string, len(s.Labels))
			for k, v := range s.Labels {
				cp.Labels[k] = v
			}
		}
		out[i] = cp
	}
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Root returns the first recorded root span of a snapshot, or nil.
func Root(spans []Span) *Span {
	for i := range spans {
		if spans[i].Parent == 0 {
			return &spans[i]
		}
	}
	return nil
}

// ChildrenIndex maps each parent span id to its children, preserving
// snapshot (start-time) order.
func ChildrenIndex(spans []Span) map[int64][]*Span {
	idx := make(map[int64][]*Span)
	for i := range spans {
		idx[spans[i].Parent] = append(idx[spans[i].Parent], &spans[i])
	}
	return idx
}
