package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// The Chrome trace-event JSON format (the "JSON Array Format with
// metadata" variant) is what chrome://tracing and Perfetto's legacy
// importer load: an object with a traceEvents array of complete ("X")
// events carrying microsecond timestamps and durations, plus metadata
// ("M") events naming processes and threads. Each simulated cluster node
// gets its own thread track; master-side spans (jobs, phases, pipeline,
// leaf decompositions) share the master track.

// traceEvent is one entry of the traceEvents array.
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

const tracePID = 1

// trackTID maps a span track to a Chrome thread id: the master track is
// tid 0, node i is tid i+1.
func trackTID(track int) int {
	if track < 0 {
		return 0
	}
	return track + 1
}

// WriteChromeTrace writes the spans as Chrome trace-event JSON. Unfinished
// spans are skipped. Timestamps are microseconds relative to the earliest
// span start, so traces from different runs line up at zero.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	var t0 time.Time
	for i := range spans {
		if spans[i].End.IsZero() {
			continue
		}
		if t0.IsZero() || spans[i].Start.Before(t0) {
			t0 = spans[i].Start
		}
	}

	tracks := map[int]bool{}
	events := make([]traceEvent, 0, len(spans)+4)
	for i := range spans {
		s := &spans[i]
		if s.End.IsZero() {
			continue
		}
		tracks[s.Track] = true
		ev := traceEvent{
			Name:  s.Name,
			Cat:   string(s.Kind),
			Phase: "X",
			TS:    s.Start.Sub(t0).Microseconds(),
			Dur:   s.End.Sub(s.Start).Microseconds(),
			PID:   tracePID,
			TID:   trackTID(s.Track),
		}
		if len(s.Attrs) > 0 || len(s.Labels) > 0 {
			ev.Args = make(map[string]any, len(s.Attrs)+len(s.Labels))
			for k, v := range s.Attrs {
				ev.Args[k] = v
			}
			for k, v := range s.Labels {
				ev.Args[k] = v
			}
		}
		events = append(events, ev)
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].TS != events[j].TS {
			return events[i].TS < events[j].TS
		}
		if events[i].TID != events[j].TID {
			return events[i].TID < events[j].TID
		}
		return events[i].Name < events[j].Name
	})

	// Metadata events: one named thread per track, sorted master-first so
	// Perfetto displays the pipeline above the node lanes.
	trackIDs := make([]int, 0, len(tracks))
	for tr := range tracks {
		trackIDs = append(trackIDs, tr)
	}
	sort.Ints(trackIDs)
	meta := []traceEvent{{
		Name: "process_name", Phase: "M", PID: tracePID, TID: 0,
		Args: map[string]any{"name": "mrinverse simulated cluster"},
	}}
	for _, tr := range trackIDs {
		name := "master"
		if tr >= 0 {
			name = fmt.Sprintf("node %d", tr)
		}
		meta = append(meta,
			traceEvent{Name: "thread_name", Phase: "M", PID: tracePID, TID: trackTID(tr),
				Args: map[string]any{"name": name}},
			traceEvent{Name: "thread_sort_index", Phase: "M", PID: tracePID, TID: trackTID(tr),
				Args: map[string]any{"sort_index": trackTID(tr)}},
		)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceFile{
		TraceEvents:     append(meta, events...),
		DisplayTimeUnit: "ms",
	})
}
