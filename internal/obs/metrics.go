package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. A nil *Counter is a valid
// no-op instrument, so instrumented code can hold one unconditionally.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-to-current-value metric.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge's current value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the gauge (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBuckets are the fixed upper bounds of latency histograms:
// exponential from 10µs to ~10s, plus the implicit +Inf bucket.
var DefaultLatencyBuckets = []time.Duration{
	10 * time.Microsecond,
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
	10 * time.Second,
}

// Histogram is a fixed-bucket latency histogram.
type Histogram struct {
	mu     sync.Mutex
	bounds []time.Duration
	counts []int64 // len(bounds)+1; last is the overflow bucket
	sum    time.Duration
	n      int64
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += d
	h.n++
	h.mu.Unlock()
}

// HistogramSnapshot is one histogram's frozen state.
type HistogramSnapshot struct {
	Bounds []time.Duration
	Counts []int64
	Sum    time.Duration
	Count  int64
}

// Snapshot freezes the histogram's state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Bounds: append([]time.Duration(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.n,
	}
}

// Registry holds named metrics. A nil *Registry hands out nil instruments,
// so attaching metrics is optional everywhere.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter; nil on a nil
// registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge; nil on a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named latency histogram with
// the default buckets; nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{
			bounds: DefaultLatencyBuckets,
			counts: make([]int64, len(DefaultLatencyBuckets)+1),
		}
		r.histograms[name] = h
	}
	return h
}

// Render writes a sorted plain-text table of every metric.
func (r *Registry) Render(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	cnames := make([]string, 0, len(r.counters))
	for n := range r.counters {
		cnames = append(cnames, n)
	}
	gnames := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		gnames = append(gnames, n)
	}
	hnames := make([]string, 0, len(r.histograms))
	for n := range r.histograms {
		hnames = append(hnames, n)
	}
	r.mu.Unlock()
	sort.Strings(cnames)
	sort.Strings(gnames)
	sort.Strings(hnames)
	for _, n := range cnames {
		fmt.Fprintf(w, "counter   %-36s %d\n", n, r.Counter(n).Value())
	}
	for _, n := range gnames {
		fmt.Fprintf(w, "gauge     %-36s %d\n", n, r.Gauge(n).Value())
	}
	for _, n := range hnames {
		s := r.Histogram(n).Snapshot()
		mean := time.Duration(0)
		if s.Count > 0 {
			mean = s.Sum / time.Duration(s.Count)
		}
		fmt.Fprintf(w, "histogram %-36s n=%d mean=%v", n, s.Count, mean)
		for i, b := range s.Bounds {
			if s.Counts[i] > 0 {
				fmt.Fprintf(w, " le(%v)=%d", b, s.Counts[i])
			}
		}
		if s.Counts[len(s.Bounds)] > 0 {
			fmt.Fprintf(w, " le(+Inf)=%d", s.Counts[len(s.Bounds)])
		}
		fmt.Fprintln(w)
	}
}

// String renders the registry as text.
func (r *Registry) String() string {
	var b strings.Builder
	r.Render(&b)
	return b.String()
}
