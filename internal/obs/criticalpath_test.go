package obs

import (
	"strings"
	"testing"
	"time"
)

// mkSpan builds a snapshot-shaped span with millisecond offsets from t0.
func mkSpan(id, parent int64, name string, kind SpanKind, track int, startMS, endMS int64) Span {
	t0 := time.Unix(2000, 0)
	return Span{
		ID: id, Parent: parent, Name: name, Kind: kind, Track: track,
		Start: t0.Add(time.Duration(startMS) * time.Millisecond),
		End:   t0.Add(time.Duration(endMS) * time.Millisecond),
	}
}

func TestCriticalPathPartitionsWallClock(t *testing.T) {
	// root [0,100]; job1 [5,40]; job2 [45,95]; under job2 two tasks
	// [50,60] and [55,90]: the path must pick the later-finishing task.
	spans := []Span{
		mkSpan(1, 0, "pipeline", KindPipeline, TrackMaster, 0, 100),
		mkSpan(2, 1, "job1", KindJob, TrackMaster, 5, 40),
		mkSpan(3, 1, "job2", KindJob, TrackMaster, 45, 95),
		mkSpan(4, 3, "task:a", KindTask, 0, 50, 60),
		mkSpan(5, 3, "task:b", KindTask, 1, 55, 90),
	}
	cp, err := ComputeCriticalPath(spans, 0)
	if err != nil {
		t.Fatal(err)
	}
	wall := spans[0].End.Sub(spans[0].Start)
	if cp.Total != wall {
		t.Fatalf("critical path total %v != wall-clock %v", cp.Total, wall)
	}
	var names []string
	for _, s := range cp.Segments {
		names = append(names, s.Span.Name)
	}
	got := strings.Join(names, ",")
	// Walking forward in time: pipeline gap, job1, gap, job2 launch gap,
	// task:a until task:b starts, task:b (the bounding task), job2 tail,
	// pipeline tail.
	want := "pipeline,job1,pipeline,job2,task:a,task:b,job2,pipeline"
	if got != want {
		t.Fatalf("segments = %s, want %s", got, want)
	}
	// task:b bounded the phase, so it carries its full 35ms; task:a only
	// covers the 5ms before task:b started.
	for _, s := range cp.Segments {
		if s.Span.Name == "task:b" && s.Duration != 35*time.Millisecond {
			t.Fatalf("task:b duration = %v, want 35ms", s.Duration)
		}
		if s.Span.Name == "task:a" && s.Duration != 5*time.Millisecond {
			t.Fatalf("task:a duration = %v, want 5ms", s.Duration)
		}
	}
	out := cp.String()
	if !strings.Contains(out, "task:b") || !strings.Contains(out, "node 1") {
		t.Fatalf("render missing path content:\n%s", out)
	}
}

func TestCriticalPathNestedChildOutlivesSibling(t *testing.T) {
	// A child overlapping the bounding child's start: the walk must hand
	// the earlier window to the earlier finisher.
	spans := []Span{
		mkSpan(1, 0, "root", KindPipeline, TrackMaster, 0, 50),
		mkSpan(2, 1, "a", KindJob, TrackMaster, 0, 30),
		mkSpan(3, 1, "b", KindJob, TrackMaster, 20, 50),
	}
	cp, err := ComputeCriticalPath(spans, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Total != 50*time.Millisecond {
		t.Fatalf("total = %v", cp.Total)
	}
	// b covers [20,50]; a covers [0,20] (clamped).
	if len(cp.Segments) != 2 || cp.Segments[0].Span.Name != "a" || cp.Segments[1].Span.Name != "b" {
		t.Fatalf("segments = %+v", cp.Segments)
	}
	if cp.Segments[0].Duration != 20*time.Millisecond || cp.Segments[1].Duration != 30*time.Millisecond {
		t.Fatalf("durations = %v, %v", cp.Segments[0].Duration, cp.Segments[1].Duration)
	}
}

func TestCriticalPathErrors(t *testing.T) {
	if _, err := ComputeCriticalPath(nil, 0); err == nil {
		t.Fatal("want error on empty snapshot")
	}
	unfinished := []Span{{ID: 1, Name: "r", Start: time.Unix(0, 0)}}
	if _, err := ComputeCriticalPath(unfinished, 0); err == nil {
		t.Fatal("want error on unfinished root")
	}
}
