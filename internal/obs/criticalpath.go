package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Critical-path analysis over a finished span tree: which chain of spans
// bounded the run's wall-clock? The analyzer walks each span's window
// backwards from its end, at every point descending into the child whose
// interval covers that point (latest-finishing child first); time covered
// by no child is attributed to the span itself (master-side work, job
// launch, shuffle, scheduling gaps). The resulting segments partition the
// root's [Start, End] window exactly, so their durations sum to the
// measured wall-clock by construction.

// PathSegment is one span's self-attributed share of the critical path.
type PathSegment struct {
	Span     Span
	Duration time.Duration
}

// CriticalPath is the analyzer's report for one root span.
type CriticalPath struct {
	Root     Span
	Segments []PathSegment // in increasing time order
	Total    time.Duration // sum of segment durations == root wall-clock
}

// ComputeCriticalPath analyzes the tree rooted at the snapshot's first
// root span (or the span with the given id when rootID > 0).
func ComputeCriticalPath(spans []Span, rootID int64) (*CriticalPath, error) {
	var root *Span
	if rootID > 0 {
		for i := range spans {
			if spans[i].ID == rootID {
				root = &spans[i]
				break
			}
		}
	} else {
		root = Root(spans)
	}
	if root == nil {
		return nil, fmt.Errorf("obs: critical path: no root span")
	}
	if root.End.IsZero() {
		return nil, fmt.Errorf("obs: critical path: root span %q unfinished", root.Name)
	}
	idx := ChildrenIndex(spans)
	var segs []PathSegment
	cover(*root, root.Start, root.End, idx, &segs)
	// cover emits segments walking backwards; restore time order.
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	cp := &CriticalPath{Root: *root, Segments: segs}
	for _, s := range segs {
		cp.Total += s.Duration
	}
	return cp, nil
}

// cover walks span s's [lo, hi] window backwards, descending into the
// bounding children and attributing uncovered time to s. Segments are
// appended in reverse time order; consecutive segments of the same span
// are merged.
func cover(s Span, lo, hi time.Time, idx map[int64][]*Span, segs *[]PathSegment) {
	children := finishedChildren(s.ID, idx)
	t := hi
	for t.After(lo) {
		// The bounding child: latest end among children starting before t.
		var best *Span
		for _, c := range children {
			if !c.Start.Before(t) {
				continue
			}
			if best == nil || c.End.After(best.End) {
				best = c
			}
		}
		if best == nil {
			emit(segs, s, t.Sub(lo))
			return
		}
		if best.End.Before(t) {
			// Nothing covered (t - best.End]: the parent's own time.
			emit(segs, s, t.Sub(best.End))
			t = best.End
		}
		clo := best.Start
		if clo.Before(lo) {
			clo = lo
		}
		cover(*best, clo, t, idx, segs)
		t = clo
	}
}

// finishedChildren returns s's finished children sorted by end time
// descending, so the bounding-child scan prefers later finishers.
func finishedChildren(id int64, idx map[int64][]*Span) []*Span {
	var out []*Span
	for _, c := range idx[id] {
		if !c.End.IsZero() {
			out = append(out, c)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].End.After(out[j].End) })
	return out
}

// emit appends a segment, merging with the previous one when it belongs
// to the same span (the walk can re-enter a parent between children).
func emit(segs *[]PathSegment, s Span, d time.Duration) {
	if d <= 0 {
		return
	}
	if n := len(*segs); n > 0 && (*segs)[n-1].Span.ID == s.ID {
		(*segs)[n-1].Duration += d
		return
	}
	*segs = append(*segs, PathSegment{Span: s, Duration: d})
}

// String renders the critical path as a table: one line per segment with
// its share of the total wall-clock.
func (cp *CriticalPath) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "critical path of %s (%v wall-clock):\n", cp.Root.Name, cp.Total.Round(time.Microsecond))
	for _, seg := range cp.Segments {
		share := 0.0
		if cp.Total > 0 {
			share = 100 * float64(seg.Duration) / float64(cp.Total)
		}
		track := "master"
		if seg.Span.Track >= 0 {
			track = fmt.Sprintf("node %d", seg.Span.Track)
		}
		fmt.Fprintf(&b, "  %-32s %-9s %12v %5.1f%%\n",
			seg.Span.Name, track, seg.Duration.Round(time.Microsecond), share)
	}
	return b.String()
}
