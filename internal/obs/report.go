package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Summarize writes a plain-text report of a finished trace: span counts
// by kind, then one line per job span with its task population, bytes,
// and duration — the per-run analog of the paper's per-phase tables.
func Summarize(w io.Writer, spans []Span) {
	if len(spans) == 0 {
		fmt.Fprintln(w, "trace: no spans recorded")
		return
	}
	byKind := map[SpanKind]int{}
	for i := range spans {
		byKind[spans[i].Kind]++
	}
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	fmt.Fprintf(w, "trace: %d spans (", len(spans))
	for i, k := range kinds {
		if i > 0 {
			fmt.Fprint(w, ", ")
		}
		fmt.Fprintf(w, "%s=%d", k, byKind[SpanKind(k)])
	}
	fmt.Fprintln(w, ")")

	idx := ChildrenIndex(spans)
	for i := range spans {
		s := &spans[i]
		if s.Kind != KindJob || s.End.IsZero() {
			continue
		}
		tasks, retries := 0, int64(0)
		for _, ph := range idx[s.ID] {
			tasks += len(idx[ph.ID])
		}
		if v, ok := s.Attrs["task.failures"]; ok {
			retries = v
		}
		fmt.Fprintf(w, "  job %-28s %4d task attempts  retries=%-3d read=%-10d written=%-10d %v\n",
			s.Name, tasks, retries,
			s.Attrs["dfs.bytes_read"], s.Attrs["dfs.bytes_written"],
			s.End.Sub(s.Start).Round(time.Microsecond))
	}
}

// SummarizeString is Summarize into a string.
func SummarizeString(spans []Span) string {
	var b strings.Builder
	Summarize(&b, spans)
	return b.String()
}
