package tsqr

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/lu"
	"repro/internal/mapreduce"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/qr"
)

// The apply rounds: once the factor round has left Q_i / Q2_i (and the
// row blocks of A) in the DFS, one more map round computes Q^T b for the
// least-squares solve, or W = A R^-1 and the pseudo-inverse columns for
// the AR^-1 path. Each entry point below is therefore a two-round
// MapReduce pipeline sharing one report and one root span.

// LeastSquaresCtx solves min_x ||A x - b|| via TSQR: factor A, apply
// Q^T to b distributively (Q^T b = sum_i Q2_i^T Q_i^T b_i), and
// back-substitute R x = Q^T b on the master. b may carry multiple
// right-hand-side columns. The solution is guarded: if the relative
// normal-equations residual ||A^T(Ax-b)|| exceeds the configured
// tolerance, the solve fails with ErrResidual instead of returning a
// silently bad x.
func (e *Engine) LeastSquaresCtx(ctx context.Context, a, b *matrix.Dense, cfg Config) (*matrix.Dense, *Report, error) {
	if err := ValidateTall(a); err != nil {
		return nil, nil, err
	}
	if b == nil || b.Rows == 0 || b.Cols == 0 {
		return nil, nil, fmt.Errorf("tsqr: empty right-hand side")
	}
	if b.Rows != a.Rows {
		return nil, nil, fmt.Errorf("A %dx%d, b %dx%d: %w", a.Rows, a.Cols, b.Rows, b.Cols, ErrShapeMismatch)
	}
	start := time.Now()
	m, n := a.Dims()
	nb := blockCount(m, n, cfg.Blocks, e.Cluster.Slots)
	root := cfg.root()
	rep := &Report{Rows: m, Cols: n, Blocks: nb}
	span := e.startSpan("tsqr.lstsq", m, n, nb)
	defer func() {
		span.Finish()
		rep.Elapsed = time.Since(start)
		e.observe("tsqr.lstsq_latency", rep.Elapsed)
	}()
	e.count("tsqr.lstsq_solves")

	fac, err := e.factor(ctx, a, nb, root, cfg, rep, span)
	if err != nil {
		return nil, rep, err
	}
	for i := 0; i < fac.blocks; i++ {
		if err := e.FS.WriteMatrix(blockPath(root, "B", i), b.Block(fac.offs[i], fac.offs[i+1], 0, b.Cols)); err != nil {
			return nil, rep, err
		}
	}

	job := &mapreduce.Job{
		Name:      "tsqr.qtb",
		Splits:    mapreduce.ControlSplits(fac.blocks),
		NumReduce: 1,
		Priority:  cfg.Priority,
		Map: func(tctx *mapreduce.TaskContext, split mapreduce.InputSplit, emit mapreduce.Emitter) error {
			i := split.ID
			qi, err := tctx.FS.ReadMatrixFrom(blockPath(root, "Q1", i), tctx.Node)
			if err != nil {
				return err
			}
			q2i, err := tctx.FS.ReadMatrixFrom(blockPath(root, "Q2", i), tctx.Node)
			if err != nil {
				return err
			}
			bi, err := tctx.FS.ReadMatrixFrom(blockPath(root, "B", i), tctx.Node)
			if err != nil {
				return err
			}
			qtb, err := matrix.Mul(qi.Transpose(), bi)
			if err != nil {
				return err
			}
			ti, err := matrix.Mul(q2i.Transpose(), qtb)
			if err != nil {
				return err
			}
			v, err := encodeIndexed(i, ti)
			if err != nil {
				return err
			}
			emit.Emit("t", v)
			return nil
		},
		Reduce: func(tctx *mapreduce.TaskContext, key string, values [][]byte, emit mapreduce.Emitter) error {
			var sum *matrix.Dense
			for _, v := range values {
				_, ti, err := decodeIndexed(v)
				if err != nil {
					return err
				}
				if sum == nil {
					sum = ti.Clone()
					continue
				}
				for idx := range sum.Data {
					sum.Data[idx] += ti.Data[idx]
				}
			}
			v, err := encodeIndexed(0, sum)
			if err != nil {
				return err
			}
			emit.Emit("qtb", v)
			return nil
		},
	}
	job.TraceParent = span
	jr, err := e.Cluster.RunCtx(ctx, job)
	if err != nil {
		return nil, rep, err
	}
	rep.record(jr)
	if len(jr.Output) != 1 {
		return nil, rep, fmt.Errorf("tsqr: qtb round produced %d outputs, want 1", len(jr.Output))
	}
	_, qtb, err := decodeIndexed(jr.Output[0].Value)
	if err != nil {
		return nil, rep, err
	}
	x := backSolve(fac.R, qtb)

	rep.Residual = normalResidual(a, b, x)
	if rep.Residual > cfg.residualTol() {
		e.count("tsqr.residual_rejects")
		return nil, rep, fmt.Errorf("tsqr: relative normal-equations residual %.3g > %.3g: %w",
			rep.Residual, cfg.residualTol(), ErrResidual)
	}
	return x, rep, nil
}

// PInvCtx computes the Moore-Penrose pseudo-inverse A^+ = R^-1 Q^T of a
// full-rank tall matrix via the AR^-1 round: each map task forms
// W_i = A_i R^-1 (W = A R^-1 has orthonormal columns and equals Q) and
// the transposed column slice P_i = R^-1 W_i^T of the pseudo-inverse;
// the master stitches the n x m result together.
func (e *Engine) PInvCtx(ctx context.Context, a *matrix.Dense, cfg Config) (*matrix.Dense, *Report, error) {
	if err := ValidateTall(a); err != nil {
		return nil, nil, err
	}
	start := time.Now()
	m, n := a.Dims()
	nb := blockCount(m, n, cfg.Blocks, e.Cluster.Slots)
	root := cfg.root()
	rep := &Report{Rows: m, Cols: n, Blocks: nb}
	span := e.startSpan("tsqr.pinv", m, n, nb)
	defer func() {
		span.Finish()
		rep.Elapsed = time.Since(start)
		e.observe("tsqr.pinv_latency", rep.Elapsed)
	}()
	e.count("tsqr.pinv_solves")

	fac, err := e.factor(ctx, a, nb, root, cfg, rep, span)
	if err != nil {
		return nil, rep, err
	}
	if err := e.arinvRound(ctx, fac, cfg, rep, span); err != nil {
		return nil, rep, err
	}
	pinv := matrix.New(n, m)
	for i := 0; i < fac.blocks; i++ {
		pi, err := e.FS.ReadMatrix(blockPath(root, "P", i))
		if err != nil {
			return nil, rep, err
		}
		pinv.SetBlock(0, fac.offs[i], pi)
	}
	return pinv, rep, nil
}

// ARInvCtx runs the AR^-1 round on an existing factorization and returns
// W = A R^-1, the m x n matrix with orthonormal columns of the mrtsqr
// ARInv construction (equal to the thin Q in exact arithmetic).
func (e *Engine) ARInvCtx(ctx context.Context, f *Factorization, cfg Config) (*matrix.Dense, *Report, error) {
	start := time.Now()
	m, n := f.offs[f.blocks], f.R.Cols
	rep := &Report{Rows: m, Cols: n, Blocks: f.blocks}
	span := e.startSpan("tsqr.arinv", m, n, f.blocks)
	defer func() {
		span.Finish()
		rep.Elapsed = time.Since(start)
	}()
	if err := e.arinvRound(ctx, f, cfg, rep, span); err != nil {
		return nil, rep, err
	}
	w := matrix.New(m, n)
	for i := 0; i < f.blocks; i++ {
		wi, err := e.FS.ReadMatrix(blockPath(f.root, "W", i))
		if err != nil {
			return nil, rep, err
		}
		w.SetBlock(f.offs[i], 0, wi)
	}
	return w, rep, nil
}

// arinvRound distributes R^-1 to the mappers, which form W_i = A_i R^-1
// (stored under root/W) and the pseudo-inverse slice P_i = R^-1 W_i^T
// (stored transposed-ready under root/P). Map-only: the round's outputs
// are DFS files, not shuffled pairs.
func (e *Engine) arinvRound(ctx context.Context, f *Factorization, cfg Config, rep *Report, span *obs.Span) error {
	rinv, err := lu.UpperInverse(f.R)
	if err != nil {
		// The factor round's rank check makes this unreachable for inputs
		// it accepted; keep the typed error for defense in depth.
		return fmt.Errorf("%v: %w", err, ErrRankDeficient)
	}
	if err := e.FS.WriteMatrix(f.root+"/Rinv", rinv); err != nil {
		return err
	}
	root := f.root
	job := &mapreduce.Job{
		Name:     "tsqr.arinv",
		Splits:   mapreduce.ControlSplits(f.blocks),
		Priority: cfg.Priority,
		Map: func(tctx *mapreduce.TaskContext, split mapreduce.InputSplit, emit mapreduce.Emitter) error {
			i := split.ID
			ai, err := tctx.FS.ReadMatrixFrom(blockPath(root, "A", i), tctx.Node)
			if err != nil {
				return err
			}
			ri, err := tctx.FS.ReadMatrixFrom(root+"/Rinv", tctx.Node)
			if err != nil {
				return err
			}
			wi, err := matrix.Mul(ai, ri)
			if err != nil {
				return err
			}
			if err := tctx.FS.WriteMatrix(blockPath(root, "W", i), wi); err != nil {
				return err
			}
			pi, err := matrix.Mul(ri, wi.Transpose())
			if err != nil {
				return err
			}
			if err := tctx.FS.WriteMatrix(blockPath(root, "P", i), pi); err != nil {
				return err
			}
			emit.Emit(fmt.Sprintf("%d", i), nil)
			return nil
		},
	}
	job.TraceParent = span
	jr, err := e.Cluster.RunCtx(ctx, job)
	if err != nil {
		return err
	}
	rep.record(jr)
	return nil
}

// backSolve solves R x = c for upper-triangular R by back substitution;
// the caller has already rejected numerically singular R.
func backSolve(r, c *matrix.Dense) *matrix.Dense {
	n, k := r.Rows, c.Cols
	x := c.Clone()
	for i := n - 1; i >= 0; i-- {
		for j := 0; j < k; j++ {
			s := x.At(i, j)
			for l := i + 1; l < n; l++ {
				s -= r.At(i, l) * x.At(l, j)
			}
			x.Set(i, j, s/r.At(i, i))
		}
	}
	return x
}

// normalResidual returns the relative normal-equations residual
// ||A^T (A x - b)||_F scaled by the problem's magnitude. For the exact
// least-squares solution it is zero in exact arithmetic regardless of how
// large the unavoidable residual A x - b itself is.
func normalResidual(a, b, x *matrix.Dense) float64 {
	ax, err := matrix.Mul(a, x)
	if err != nil {
		return math.Inf(1)
	}
	r := ax.Clone()
	for i := range r.Data {
		r.Data[i] -= b.Data[i]
	}
	atr, err := matrix.Mul(a.Transpose(), r)
	if err != nil {
		return math.Inf(1)
	}
	na := matrix.NormFrobenius(a)
	scale := na*na*matrix.NormFrobenius(x) + na*matrix.NormFrobenius(b)
	if scale == 0 {
		scale = 1
	}
	return matrix.NormFrobenius(atr) / scale
}

// SequentialLstsq is the single-node reference: one dense Householder QR
// of A and a back substitution. The serving layer uses it for requests
// the cost model routes away from the cluster; tests and the load
// generator use it as the ground truth TSQR must match.
func SequentialLstsq(a, b *matrix.Dense) (*matrix.Dense, error) {
	if err := ValidateTall(a); err != nil {
		return nil, err
	}
	if b == nil || b.Rows != a.Rows || b.Cols == 0 {
		br, bc := 0, 0
		if b != nil {
			br, bc = b.Dims()
		}
		return nil, fmt.Errorf("A %dx%d, b %dx%d: %w", a.Rows, a.Cols, br, bc, ErrShapeMismatch)
	}
	f, err := qr.Householder(a)
	if err != nil {
		return nil, err
	}
	if err := checkRank(f.R); err != nil {
		return nil, err
	}
	qtb, err := matrix.Mul(f.Q.Transpose(), b)
	if err != nil {
		return nil, err
	}
	return backSolve(f.R, qtb), nil
}

// SequentialPInv is the single-node pseudo-inverse reference:
// A^+ = R^-1 Q^T from one dense Householder QR.
func SequentialPInv(a *matrix.Dense) (*matrix.Dense, error) {
	if err := ValidateTall(a); err != nil {
		return nil, err
	}
	f, err := qr.Householder(a)
	if err != nil {
		return nil, err
	}
	if err := checkRank(f.R); err != nil {
		return nil, err
	}
	rinv, err := lu.UpperInverse(f.R)
	if err != nil {
		return nil, fmt.Errorf("%v: %w", err, ErrRankDeficient)
	}
	return matrix.Mul(rinv, f.Q.Transpose())
}
