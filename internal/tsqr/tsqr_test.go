package tsqr

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/dfs"
	"repro/internal/mapreduce"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/workload"
)

// newEngine builds a TSQR engine over a fresh simulated cluster.
func newEngine(nodes int) *Engine {
	fs := dfs.New(nodes, 1)
	return &Engine{FS: fs, Cluster: mapreduce.NewCluster(fs, nodes)}
}

// orthonormalError returns max |Q^T Q - I| — zero for exactly
// orthonormal columns.
func orthonormalError(t *testing.T, q *matrix.Dense) float64 {
	t.Helper()
	qtq, err := matrix.Mul(q.Transpose(), q)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for i := 0; i < qtq.Rows; i++ {
		for j := 0; j < qtq.Cols; j++ {
			want := 0.0
			if i == j {
				want = 1.0
			}
			if d := math.Abs(qtq.At(i, j) - want); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// TestFactorReconstructsA checks the factor + build-Q rounds across
// seeds and block counts: Q has orthonormal columns, R is upper
// triangular with a non-negative diagonal, and ||A - QR||/||A|| is at
// rounding level.
func TestFactorReconstructsA(t *testing.T) {
	eng := newEngine(4)
	for _, tc := range []struct {
		m, n, blocks int
		seed         int64
	}{
		{60, 5, 0, 1},
		{64, 8, 2, 2},
		{100, 4, 7, 3},
		{33, 3, 11, 4}, // blocks capped at m/n = 11
		{24, 6, 1, 5},  // degenerate single block
	} {
		a := workload.RandomRect(tc.m, tc.n, tc.seed)
		fac, rep, err := eng.FactorCtx(context.Background(), a, Config{Blocks: tc.blocks, Root: "t/factor"})
		if err != nil {
			t.Fatalf("%dx%d blocks=%d: %v", tc.m, tc.n, tc.blocks, err)
		}
		if rep.JobsRun != 1 || rep.MapTasks != fac.Blocks() || rep.ReduceTasks != 1 {
			t.Fatalf("report %+v, blocks %d", rep, fac.Blocks())
		}
		if fac.R.Rows != tc.n || fac.R.Cols != tc.n {
			t.Fatalf("R is %dx%d, want %dx%d", fac.R.Rows, fac.R.Cols, tc.n, tc.n)
		}
		for i := 0; i < tc.n; i++ {
			if fac.R.At(i, i) < 0 {
				t.Fatalf("R[%d][%d] = %g < 0: sign not canonicalized", i, i, fac.R.At(i, i))
			}
			for j := 0; j < i; j++ {
				if math.Abs(fac.R.At(i, j)) > 1e-12*(1+matrix.MaxAbs(fac.R)) {
					t.Fatalf("R[%d][%d] = %g below diagonal", i, j, fac.R.At(i, j))
				}
			}
		}
		q, _, err := eng.BuildQCtx(context.Background(), fac)
		if err != nil {
			t.Fatal(err)
		}
		if q.Rows != tc.m || q.Cols != tc.n {
			t.Fatalf("Q is %dx%d, want %dx%d", q.Rows, q.Cols, tc.m, tc.n)
		}
		if e := orthonormalError(t, q); e > 1e-12 {
			t.Fatalf("%dx%d blocks=%d: Q orthonormality error %g", tc.m, tc.n, tc.blocks, e)
		}
		qr, err := matrix.Mul(q, fac.R)
		if err != nil {
			t.Fatal(err)
		}
		if rel := matrix.MaxAbsDiff(qr, a) / matrix.MaxAbs(a); rel > 1e-12 {
			t.Fatalf("%dx%d blocks=%d: ||A-QR||/||A|| = %g", tc.m, tc.n, tc.blocks, rel)
		}
		eng.FS.DeleteTree("t")
	}
}

// TestFactorBlockCountInvariant pins the canonicalized R: the same A
// factored with different block counts yields the same R up to rounding,
// because the reducer flips signs until diag(R) >= 0.
func TestFactorBlockCountInvariant(t *testing.T) {
	eng := newEngine(4)
	a := workload.RandomRect(96, 6, 77)
	var ref *matrix.Dense
	for _, blocks := range []int{1, 2, 3, 8} {
		fac, _, err := eng.FactorCtx(context.Background(), a, Config{Blocks: blocks, Root: "t/inv"})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = fac.R
		} else if d := matrix.MaxAbsDiff(ref, fac.R); d > 1e-10 {
			t.Fatalf("blocks=%d: R differs from single-block reference by %g", blocks, d)
		}
		eng.FS.DeleteTree("t")
	}
}

// TestLeastSquaresMatchesSequential compares the distributed solve
// against the single-node Householder reference across seeds and block
// counts, and checks the report's residual accounting.
func TestLeastSquaresMatchesSequential(t *testing.T) {
	eng := newEngine(4)
	for _, tc := range []struct {
		m, n, k, blocks int
		seed            int64
	}{
		{80, 6, 1, 0, 10},
		{120, 5, 3, 4, 11}, // multiple right-hand sides
		{50, 10, 1, 5, 12},
		{200, 4, 2, 8, 13},
	} {
		a := workload.RandomRect(tc.m, tc.n, tc.seed)
		b := workload.RandomRect(tc.m, tc.k, tc.seed+1000)
		x, rep, err := eng.LeastSquaresCtx(context.Background(), a, b, Config{Blocks: tc.blocks, Root: "t/ls"})
		if err != nil {
			t.Fatalf("%dx%d: %v", tc.m, tc.n, err)
		}
		if x.Rows != tc.n || x.Cols != tc.k {
			t.Fatalf("x is %dx%d, want %dx%d", x.Rows, x.Cols, tc.n, tc.k)
		}
		if rep.Residual > DefaultResidualTol {
			t.Fatalf("reported residual %g above guardrail", rep.Residual)
		}
		if rep.JobsRun != 2 {
			t.Fatalf("lstsq ran %d jobs, want 2", rep.JobsRun)
		}
		ref, err := SequentialLstsq(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if d := matrix.MaxAbsDiff(x, ref); d > 1e-8 {
			t.Fatalf("%dx%d blocks=%d: |x - x_seq| = %g", tc.m, tc.n, tc.blocks, d)
		}
		eng.FS.DeleteTree("t")
	}
}

// TestLeastSquaresExactSystem: when b = A x_true, the minimizer is
// x_true itself and the fitted residual A x - b is ~0.
func TestLeastSquaresExactSystem(t *testing.T) {
	eng := newEngine(4)
	a := workload.RandomRect(90, 7, 21)
	xtrue := workload.RandomRect(7, 1, 22)
	b, err := matrix.Mul(a, xtrue)
	if err != nil {
		t.Fatal(err)
	}
	x, _, err := eng.LeastSquaresCtx(context.Background(), a, b, Config{Root: "t/exact"})
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(x, xtrue); d > 1e-10 {
		t.Fatalf("|x - x_true| = %g", d)
	}
}

// TestARInvOrthonormal checks the mrtsqr AR^-1 construction: W = A R^-1
// has orthonormal columns (it equals Q in exact arithmetic).
func TestARInvOrthonormal(t *testing.T) {
	eng := newEngine(4)
	a := workload.RandomRect(72, 6, 31)
	fac, _, err := eng.FactorCtx(context.Background(), a, Config{Blocks: 3, Root: "t/arinv"})
	if err != nil {
		t.Fatal(err)
	}
	w, rep, err := eng.ARInvCtx(context.Background(), fac, Config{Root: "t/arinv"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.JobsRun != 1 {
		t.Fatalf("arinv ran %d jobs, want 1", rep.JobsRun)
	}
	if e := orthonormalError(t, w); e > 1e-10 {
		t.Fatalf("W orthonormality error %g", e)
	}
	q, _, err := eng.BuildQCtx(context.Background(), fac)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(w, q); d > 1e-10 {
		t.Fatalf("|W - Q| = %g", d)
	}
}

// TestPInv checks the distributed pseudo-inverse: A^+ A = I (left
// inverse of a full-column-rank tall matrix) and agreement with the
// sequential reference.
func TestPInv(t *testing.T) {
	eng := newEngine(4)
	for _, blocks := range []int{0, 2, 6} {
		a := workload.RandomRect(66, 5, 41)
		pinv, _, err := eng.PInvCtx(context.Background(), a, Config{Blocks: blocks, Root: "t/pinv"})
		if err != nil {
			t.Fatal(err)
		}
		if pinv.Rows != 5 || pinv.Cols != 66 {
			t.Fatalf("A+ is %dx%d, want 5x66", pinv.Rows, pinv.Cols)
		}
		pa, err := matrix.Mul(pinv, a)
		if err != nil {
			t.Fatal(err)
		}
		if d := matrix.MaxAbsDiff(pa, matrix.Identity(5)); d > 1e-10 {
			t.Fatalf("blocks=%d: |A+ A - I| = %g", blocks, d)
		}
		ref, err := SequentialPInv(a)
		if err != nil {
			t.Fatal(err)
		}
		if d := matrix.MaxAbsDiff(pinv, ref); d > 1e-8 {
			t.Fatalf("blocks=%d: |A+ - A+_seq| = %g", blocks, d)
		}
		eng.FS.DeleteTree("t")
	}
}

// TestRankDeficientTypedError: a tall matrix with a duplicated column is
// numerically rank deficient; every entry point must return the typed
// error without panicking, on both the distributed and sequential paths.
func TestRankDeficientTypedError(t *testing.T) {
	eng := newEngine(4)
	a := workload.RandomRect(40, 4, 51)
	for i := 0; i < a.Rows; i++ {
		a.Set(i, 3, a.At(i, 1)) // column 3 := column 1
	}
	b := workload.RandomRect(40, 1, 52)

	if _, _, err := eng.FactorCtx(context.Background(), a, Config{Root: "t/rd"}); !errors.Is(err, ErrRankDeficient) {
		t.Fatalf("factor: err %v, want ErrRankDeficient", err)
	}
	if _, _, err := eng.LeastSquaresCtx(context.Background(), a, b, Config{Root: "t/rd"}); !errors.Is(err, ErrRankDeficient) {
		t.Fatalf("lstsq: err %v, want ErrRankDeficient", err)
	}
	if _, _, err := eng.PInvCtx(context.Background(), a, Config{Root: "t/rd"}); !errors.Is(err, ErrRankDeficient) {
		t.Fatalf("pinv: err %v, want ErrRankDeficient", err)
	}
	if _, err := SequentialLstsq(a, b); !errors.Is(err, ErrRankDeficient) {
		t.Fatalf("sequential lstsq: err %v, want ErrRankDeficient", err)
	}
	if _, err := SequentialPInv(a); !errors.Is(err, ErrRankDeficient) {
		t.Fatalf("sequential pinv: err %v, want ErrRankDeficient", err)
	}
}

// TestValidationErrors pins the typed rejections: wide inputs, nil/empty
// matrices, and mismatched right-hand sides.
func TestValidationErrors(t *testing.T) {
	eng := newEngine(2)
	wide := workload.RandomRect(3, 9, 1)
	if _, _, err := eng.FactorCtx(context.Background(), wide, Config{}); !errors.Is(err, ErrNotTall) {
		t.Fatalf("wide: err %v, want ErrNotTall", err)
	} else if !strings.Contains(err.Error(), "3x9") {
		t.Fatalf("wide error %q lacks observed shape", err)
	}
	if err := ValidateTall(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if err := ValidateTall(matrix.New(0, 0)); err == nil {
		t.Fatal("empty accepted")
	}
	a := workload.RandomRect(20, 4, 2)
	badB := workload.RandomRect(19, 1, 3)
	if _, _, err := eng.LeastSquaresCtx(context.Background(), a, badB, Config{}); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("mismatched rhs: err %v, want ErrShapeMismatch", err)
	}
	if _, err := SequentialLstsq(a, badB); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("sequential mismatched rhs: err %v, want ErrShapeMismatch", err)
	}
}

// TestResidualGuardrail: an absurdly tight tolerance trips the guardrail
// with the typed error and counts the reject.
func TestResidualGuardrail(t *testing.T) {
	eng := newEngine(2)
	eng.Metrics = obs.NewRegistry()
	a := workload.RandomRect(64, 6, 61)
	b := workload.RandomRect(64, 1, 62)
	_, rep, err := eng.LeastSquaresCtx(context.Background(), a, b, Config{Root: "t/guard", ResidualTol: 1e-30})
	if !errors.Is(err, ErrResidual) {
		t.Fatalf("err %v, want ErrResidual", err)
	}
	if rep == nil || rep.Residual == 0 {
		t.Fatal("rejected solve did not report its residual")
	}
	if eng.Metrics.Counter("tsqr.residual_rejects").Value() != 1 {
		t.Fatal("residual reject not counted")
	}
}

// TestTraceAndMetrics checks the observability surface: tsqr.* spans
// reach the tracer (and survive the Chrome-trace export), and the
// counters advance.
func TestTraceAndMetrics(t *testing.T) {
	eng := newEngine(4)
	eng.Tracer = obs.New()
	eng.Metrics = obs.NewRegistry()
	a := workload.RandomRect(60, 5, 71)
	b := workload.RandomRect(60, 1, 72)
	if _, _, err := eng.LeastSquaresCtx(context.Background(), a, b, Config{Root: "t/obs"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.PInvCtx(context.Background(), a, Config{Root: "t/obs2"}); err != nil {
		t.Fatal(err)
	}
	spans := eng.Tracer.Snapshot()
	want := map[string]bool{"tsqr.lstsq": false, "tsqr.pinv": false}
	for _, sp := range spans {
		if _, ok := want[sp.Name]; ok {
			want[sp.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("span %q missing from trace (got %d spans)", name, len(spans))
		}
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "tsqr.lstsq") {
		t.Fatal("Chrome-trace export lacks tsqr.lstsq span")
	}
	if eng.Metrics.Counter("tsqr.lstsq_solves").Value() != 1 ||
		eng.Metrics.Counter("tsqr.pinv_solves").Value() != 1 {
		t.Fatal("solve counters did not advance")
	}
}

// TestNilInstrumentationSafe: an engine with no tracer and no registry
// runs every entry point without panicking.
func TestNilInstrumentationSafe(t *testing.T) {
	eng := newEngine(2)
	a := workload.RandomRect(30, 3, 81)
	b := workload.RandomRect(30, 1, 82)
	if _, _, err := eng.LeastSquaresCtx(context.Background(), a, b, Config{}); err != nil {
		t.Fatal(err)
	}
	fac, _, err := eng.FactorCtx(context.Background(), a, Config{Root: "t2"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.BuildQCtx(context.Background(), fac); err != nil {
		t.Fatal(err)
	}
}
