// Package tsqr implements direct tall-and-skinny QR (TSQR) on the
// simulated MapReduce cluster, after Benson/Gleich/Demmel's direct-TSQR
// and the mrtsqr AR^-1 construction: a tall m x n matrix (m >> n) is
// partitioned into row blocks, each map task computes a local thin
// Householder QR of its block, and a single reducer stacks the per-block
// R factors (in deterministic map-task order — the engine's shuffle
// contract) and factors the stack once more to obtain the final n x n R.
// The per-block Q factors stay in the DFS, so a second map round can
//
//   - reconstruct the thin orthonormal Q = diag(Q_i) * Q2 block by block,
//   - apply Q^T to a right-hand side (Q^T b = sum_i Q2_i^T Q_i^T b_i) for
//     the least-squares solve x = R^-1 Q^T b, or
//   - form W = A R^-1 (the mrtsqr ARInv path; W equals Q in exact
//     arithmetic) and with it the pseudo-inverse A^+ = R^-1 W^T.
//
// Every entry point is a two-round MapReduce pipeline: one factorization
// round over A, one application round over the stored blocks. The square
// block-LU pipeline in internal/core handles this workload badly (it
// requires square inputs outright); TSQR is the regression-shaped
// complement the serving tier exposes as /lstsq and /pinv.
//
//mrlint:allow determinism(time.Now) -- wall-clock reads here feed Report timings and obs histograms only; factor/apply outputs are byte-stable by the shuffle contract
package tsqr

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/dfs"
	"repro/internal/mapreduce"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/qr"
)

// Typed errors. They map to HTTP 422 in the serving layer: semantically
// unusable inputs, not malformed requests.
var (
	// ErrNotTall reports a wide input (cols > rows): QR needs m >= n.
	ErrNotTall = errors.New("tsqr: matrix has more columns than rows")
	// ErrRankDeficient reports a numerically rank-deficient input, for
	// which R is not invertible and neither the least-squares solution
	// nor the pseudo-inverse path is usable.
	ErrRankDeficient = errors.New("tsqr: matrix is rank deficient")
	// ErrShapeMismatch reports a right-hand side whose row count does not
	// match the matrix.
	ErrShapeMismatch = errors.New("tsqr: right-hand side rows do not match matrix rows")
	// ErrResidual reports a least-squares solve whose normal-equations
	// residual exceeded the guardrail — the solution is not trustworthy
	// (severe ill-conditioning that escaped the rank check).
	ErrResidual = errors.New("tsqr: least-squares residual guardrail exceeded")
)

// rankTol matches internal/qr's rank tolerance.
const rankTol = 1e-12

// DefaultResidualTol is the least-squares guardrail: the relative
// normal-equations residual of an accepted solution must not exceed it.
const DefaultResidualTol = 1e-8

// Config parameterizes one TSQR run.
type Config struct {
	// Blocks is the row-block count (= map tasks of the factor round).
	// 0 derives it from the cluster's slot count; it is always capped at
	// m/n so every block keeps at least n rows.
	Blocks int
	// Root is the DFS working directory of this run's intermediates.
	// Empty selects "tsqr". The caller owns cleanup (DeleteTree).
	Root string
	// Priority is the fair-share scheduling class of the run's jobs.
	Priority int
	// ResidualTol overrides DefaultResidualTol when > 0.
	ResidualTol float64
}

// Engine runs TSQR pipelines on a shared cluster. Tracer and Metrics are
// optional; all instrumentation is nil-safe.
type Engine struct {
	FS      *dfs.FS
	Cluster *mapreduce.Cluster
	Tracer  *obs.Tracer
	Metrics *obs.Registry
}

// Report aggregates the MapReduce accounting of one TSQR entry point.
type Report struct {
	Rows, Cols  int
	Blocks      int
	JobsRun     int // MapReduce rounds executed (factor = 1, apply = 1)
	MapTasks    int
	ReduceTasks int
	ShuffledKVs int
	Elapsed     time.Duration
	SlotWait    time.Duration
	SlotGrants  int64
	// Residual is the relative normal-equations residual of a
	// least-squares solve (zero for factor/pinv runs).
	Residual float64
}

func (rep *Report) record(jr *mapreduce.JobResult) {
	rep.JobsRun++
	rep.MapTasks += jr.MapTasks
	rep.ReduceTasks += jr.ReduceTasks
	rep.ShuffledKVs += jr.ShuffledKVs
	rep.SlotWait += jr.SlotWait
	rep.SlotGrants += jr.SlotGrants
}

// Factorization is the distributed result of the factor round: the final
// R is master-resident; the per-block Q_i and Q2 slices live in the DFS
// under root, addressed by block index, until the caller deletes the tree.
type Factorization struct {
	R      *matrix.Dense // n x n upper triangular, diagonal >= 0
	root   string
	blocks int
	offs   []int // block row offsets, len blocks+1
}

// Blocks returns the row-block count the factorization used.
func (f *Factorization) Blocks() int { return f.blocks }

// ValidateTall checks that a is a usable TSQR input: non-nil, non-empty,
// and at least as many rows as columns. Wide inputs get ErrNotTall
// wrapped with the observed shape.
func ValidateTall(a *matrix.Dense) error {
	if a == nil {
		return errors.New("tsqr: nil input matrix")
	}
	if a.Rows == 0 || a.Cols == 0 {
		return fmt.Errorf("tsqr: empty input matrix %dx%d", a.Rows, a.Cols)
	}
	if a.Rows < a.Cols {
		return fmt.Errorf("%dx%d: %w", a.Rows, a.Cols, ErrNotTall)
	}
	return nil
}

// blockCount resolves the row-block count: the requested (or slot-derived)
// parallelism, capped so every block holds at least n rows.
func blockCount(m, n, want, slots int) int {
	b := want
	if b <= 0 {
		b = slots
	}
	if maxb := m / n; b > maxb {
		b = maxb
	}
	if b < 1 {
		b = 1
	}
	return b
}

// rowOffsets splits m rows into b near-equal contiguous blocks.
func rowOffsets(m, b int) []int {
	offs := make([]int, b+1)
	for i := 0; i <= b; i++ {
		offs[i] = i * m / b
	}
	return offs
}

func (c Config) root() string {
	if c.Root == "" {
		return "tsqr"
	}
	return c.Root
}

func (c Config) residualTol() float64 {
	if c.ResidualTol > 0 {
		return c.ResidualTol
	}
	return DefaultResidualTol
}

// startSpan opens the root span of one entry point (nil-safe).
func (e *Engine) startSpan(name string, m, n, blocks int) *obs.Span {
	if e.Tracer == nil {
		return nil
	}
	sp := e.Tracer.StartSpan(name, obs.KindPipeline)
	sp.SetAttr("rows", int64(m))
	sp.SetAttr("cols", int64(n))
	sp.SetAttr("blocks", int64(blocks))
	return sp
}

func (e *Engine) count(name string) {
	if e.Metrics != nil {
		e.Metrics.Counter(name).Add(1)
	}
}

func (e *Engine) observe(name string, d time.Duration) {
	if e.Metrics != nil {
		e.Metrics.Histogram(name).Observe(d)
	}
}

// value encoding for R factors travelling through the shuffle: a 4-byte
// little-endian block index followed by the binary matrix format.

func encodeIndexed(i int, m *matrix.Dense) ([]byte, error) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(i))
	buf.Write(hdr[:])
	if err := matrix.WriteBinary(&buf, m); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeIndexed(v []byte) (int, *matrix.Dense, error) {
	if len(v) < 4 {
		return 0, nil, fmt.Errorf("tsqr: indexed value too short (%d bytes)", len(v))
	}
	i := int(binary.LittleEndian.Uint32(v[:4]))
	m, err := matrix.ReadBinary(bytes.NewReader(v[4:]))
	if err != nil {
		return 0, nil, err
	}
	return i, m, nil
}

// FactorCtx runs the factor round: row blocks of a are written to the
// DFS, each map task computes its block's thin Householder QR (storing
// Q_i under root/Q1), and one reducer stacks the R_i factors in block
// order, factors the (blocks*n) x n stack, canonicalizes signs so the
// final R has a non-negative diagonal, and stores the Q2 slices under
// root/Q2. The master decodes R and rejects rank-deficient input with a
// typed error. Intermediates stay under cfg.Root for the apply rounds;
// the caller owns their deletion.
func (e *Engine) FactorCtx(ctx context.Context, a *matrix.Dense, cfg Config) (*Factorization, *Report, error) {
	if err := ValidateTall(a); err != nil {
		return nil, nil, err
	}
	start := time.Now()
	m, n := a.Dims()
	b := blockCount(m, n, cfg.Blocks, e.Cluster.Slots)
	root := cfg.root()
	rep := &Report{Rows: m, Cols: n, Blocks: b}
	span := e.startSpan("tsqr.factor", m, n, b)
	defer func() {
		span.Finish()
		rep.Elapsed = time.Since(start)
		e.observe("tsqr.factor_latency", rep.Elapsed)
	}()
	e.count("tsqr.factorizations")

	fac, err := e.factor(ctx, a, b, root, cfg, rep, span)
	if err != nil {
		return nil, rep, err
	}
	return fac, rep, nil
}

// factor is FactorCtx without validation/tracing setup, reused by the
// solve entry points so their report and root span cover both rounds.
func (e *Engine) factor(ctx context.Context, a *matrix.Dense, b int, root string, cfg Config, rep *Report, span *obs.Span) (*Factorization, error) {
	m, n := a.Dims()
	offs := rowOffsets(m, b)
	for i := 0; i < b; i++ {
		if err := e.FS.WriteMatrix(blockPath(root, "A", i), a.Block(offs[i], offs[i+1], 0, n)); err != nil {
			return nil, err
		}
	}

	job := &mapreduce.Job{
		Name:      "tsqr.localqr",
		Splits:    mapreduce.ControlSplits(b),
		NumReduce: 1,
		Priority:  cfg.Priority,
		Map: func(tctx *mapreduce.TaskContext, split mapreduce.InputSplit, emit mapreduce.Emitter) error {
			i := split.ID
			ai, err := tctx.FS.ReadMatrixFrom(blockPath(root, "A", i), tctx.Node)
			if err != nil {
				return err
			}
			f, err := qr.Householder(ai)
			if err != nil {
				return err
			}
			if err := tctx.FS.WriteMatrix(blockPath(root, "Q1", i), f.Q); err != nil {
				return err
			}
			tctx.IncrCounter("tsqr.local_qr_rows", int64(ai.Rows))
			v, err := encodeIndexed(i, f.R)
			if err != nil {
				return err
			}
			emit.Emit("R", v)
			return nil
		},
		Reduce: func(tctx *mapreduce.TaskContext, key string, values [][]byte, emit mapreduce.Emitter) error {
			// The shuffle delivers values in map-task order, but each one
			// carries its block index anyway: placement never depends on
			// arrival order.
			stacked := matrix.New(b*n, n)
			for _, v := range values {
				i, ri, err := decodeIndexed(v)
				if err != nil {
					return err
				}
				stacked.SetBlock(i*n, 0, ri)
			}
			f, err := qr.Householder(stacked)
			if err != nil {
				return err
			}
			// Canonicalize: flip rows of R (and the matching columns of
			// Q2) so diag(R) >= 0 — makes the factorization unique and
			// block-count independent up to rounding.
			r, q2 := f.R.Clone(), f.Q.Clone()
			for j := 0; j < n; j++ {
				if r.At(j, j) < 0 {
					for c := 0; c < n; c++ {
						r.Set(j, c, -r.At(j, c))
					}
					for row := 0; row < q2.Rows; row++ {
						q2.Set(row, j, -q2.At(row, j))
					}
				}
			}
			for i := 0; i < b; i++ {
				if err := tctx.FS.WriteMatrix(blockPath(root, "Q2", i), q2.Block(i*n, (i+1)*n, 0, n)); err != nil {
					return err
				}
			}
			v, err := encodeIndexed(0, r)
			if err != nil {
				return err
			}
			emit.Emit("R", v)
			return nil
		},
	}
	job.TraceParent = span
	jr, err := e.Cluster.RunCtx(ctx, job)
	if err != nil {
		return nil, err
	}
	rep.record(jr)
	if len(jr.Output) != 1 {
		return nil, fmt.Errorf("tsqr: factor round produced %d outputs, want 1", len(jr.Output))
	}
	_, r, err := decodeIndexed(jr.Output[0].Value)
	if err != nil {
		return nil, err
	}
	if err := checkRank(r); err != nil {
		e.count("tsqr.rank_deficient")
		return nil, err
	}
	return &Factorization{R: r, root: root, blocks: b, offs: offs}, nil
}

// checkRank rejects an R whose diagonal carries a numerically zero entry.
func checkRank(r *matrix.Dense) error {
	scale := matrix.MaxAbs(r)
	for j := 0; j < r.Rows; j++ {
		if math.Abs(r.At(j, j)) < rankTol*(1+scale) {
			return fmt.Errorf("tsqr: R[%d][%d] ~ 0: %w", j, j, ErrRankDeficient)
		}
	}
	return nil
}

// BuildQCtx runs the optional Q-reconstruction round on a factorization:
// each map task multiplies its stored Q_i by its Q2 slice and stores the
// product; the master stitches the m x n thin Q together.
func (e *Engine) BuildQCtx(ctx context.Context, f *Factorization) (*matrix.Dense, *Report, error) {
	start := time.Now()
	m, n := f.offs[f.blocks], f.R.Cols
	rep := &Report{Rows: m, Cols: n, Blocks: f.blocks}
	span := e.startSpan("tsqr.buildq", m, n, f.blocks)
	defer func() {
		span.Finish()
		rep.Elapsed = time.Since(start)
	}()

	job := &mapreduce.Job{
		Name:   "tsqr.buildq",
		Splits: mapreduce.ControlSplits(f.blocks),
		Map: func(tctx *mapreduce.TaskContext, split mapreduce.InputSplit, emit mapreduce.Emitter) error {
			i := split.ID
			qi, err := tctx.FS.ReadMatrixFrom(blockPath(f.root, "Q1", i), tctx.Node)
			if err != nil {
				return err
			}
			q2i, err := tctx.FS.ReadMatrixFrom(blockPath(f.root, "Q2", i), tctx.Node)
			if err != nil {
				return err
			}
			prod, err := matrix.Mul(qi, q2i)
			if err != nil {
				return err
			}
			if err := tctx.FS.WriteMatrix(blockPath(f.root, "Q", i), prod); err != nil {
				return err
			}
			emit.Emit(fmt.Sprintf("%d", i), nil)
			return nil
		},
	}
	job.TraceParent = span
	jr, err := e.Cluster.RunCtx(ctx, job)
	if err != nil {
		return nil, rep, err
	}
	rep.record(jr)

	q := matrix.New(m, n)
	for i := 0; i < f.blocks; i++ {
		qi, err := e.FS.ReadMatrix(blockPath(f.root, "Q", i))
		if err != nil {
			return nil, rep, err
		}
		q.SetBlock(f.offs[i], 0, qi)
	}
	return q, rep, nil
}

func blockPath(root, dir string, i int) string {
	return fmt.Sprintf("%s/%s/%d", root, dir, i)
}
