package costmodel

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// Multiply-strategy selection: the rounds-vs-memory-vs-communication
// model behind core's multi-round multiplication strategies, mirroring
// ChooseEngine. The transfer coefficients come from the explicit-
// placement accounting the strategies implement:
//
//	single-round on an f1 x f2 grid:  (f1 + f2) n^2 elements
//	replicated on g1 x g2 x rho:      (g1 + g2 + rho - 1) n^2
//	space-round on f1 x f2, rho rounds: matches single-round, but the
//	    per-reducer working set shrinks by a factor of rho
//
// (both including the output's pipelined replication), so the replicated
// strategy wins communication whenever g1 + g2 + rho < f1 + f2 + 1 — the
// 3D grid optimum near 3 m0^(1/3) — while every extra round costs one
// more job launch.

// MultiplyChoice is the outcome of multiply-strategy selection.
type MultiplyChoice struct {
	Strategy core.MultiplyStrategy
	// Rho is the replication / round parameter to set as
	// core.Options.MultiplyRho (0 for single-round).
	Rho    int
	Grid   [2]int
	Reason string
	// Predicted holds the modeled wall-clock time per candidate strategy.
	Predicted map[core.MultiplyStrategy]time.Duration
	// TransferElems is the modeled element transfer of the chosen
	// strategy; ReducerBytes its per-reducer working set.
	TransferElems float64
	ReducerBytes  float64
}

// multiplyCandidate is one (strategy, rho) point of the model.
type multiplyCandidate struct {
	strategy core.MultiplyStrategy
	g1, g2   int
	rho      int
}

// transferElems models the total transferred elements of a rows x inner
// by inner x cols product under the candidate's grid, including writing
// the output at replication 3 (two pipelined copies cross the network).
func (mc multiplyCandidate) transferElems(rows, inner, cols int) float64 {
	aIn := float64(rows) * float64(inner)
	bIn := float64(inner) * float64(cols)
	out := float64(rows) * float64(cols)
	switch mc.strategy {
	case core.MultiplyReplicated:
		// Each A piece fans to g2 readers (one local), each B piece to g1;
		// each output block's rho partials converge on their sum node
		// (rho - 1 crossings) and the result is written at replication 3.
		return aIn*float64(mc.g2-1) + bIn*float64(mc.g1-1) + out*float64(mc.rho-1) + 2*out
	default:
		// Single-round and space-round: A bands fan to g2 readers, B bands
		// to g1; space-round's inter-round state stays on its own node.
		return aIn*float64(mc.g2-1) + bIn*float64(mc.g1-1) + 2*out
	}
}

// reducerBytes models the peak per-reducer working set: one round's A and
// B segments plus the output block.
func (mc multiplyCandidate) reducerBytes(rows, inner, cols int) float64 {
	segInner := float64(inner) / float64(mc.rho)
	aSeg := float64(rows) / float64(mc.g1) * segInner
	bSeg := segInner * float64(cols) / float64(mc.g2)
	out := float64(rows) * float64(cols) / float64(mc.g1*mc.g2)
	return (aSeg + bSeg + out) * bytesPerElem
}

func (mc multiplyCandidate) jobs() int {
	switch mc.strategy {
	case core.MultiplyReplicated:
		return 2
	case core.MultiplySpaceRound:
		return mc.rho
	default:
		return 1
	}
}

// time models the candidate's wall clock on cluster c: job launches plus
// network transfer plus the (strategy-independent) compute.
func (mc multiplyCandidate) time(c Cluster, rows, inner, cols int) time.Duration {
	launchS := float64(mc.jobs()) * c.JobLaunch.Seconds()
	netS := mc.transferElems(rows, inner, cols) * bytesPerElem / (float64(c.Nodes) * c.Node.NetBW)
	flops := 2 * float64(rows) * float64(inner) * float64(cols)
	computeS := flops / (float64(c.Nodes*c.Node.Cores) * c.Node.Flops)
	return secs(launchS + netS + computeS)
}

// ChooseMultiply picks the multiply strategy and rho for a rows x inner
// by inner x cols product on cluster c, the way ChooseEngine picks
// engines: enumerate the feasible candidates, model their time, and take
// the fastest. memBudget, when > 0, caps the per-reducer working set in
// bytes; candidates over budget are infeasible, and when even the
// single-round shape exceeds it the space-round strategy with the
// smallest fitting rho is selected regardless of speed.
func ChooseMultiply(c Cluster, rows, inner, cols int, memBudget float64) MultiplyChoice {
	m0 := c.Nodes
	f1, f2 := core.FactorPair(m0)
	single := multiplyCandidate{strategy: core.MultiplySingleRound, g1: f1, g2: f2, rho: 1}

	cands := []multiplyCandidate{single}
	for rho := 2; rho <= m0 && rho <= inner; rho++ {
		if m0%rho != 0 {
			continue
		}
		g1, g2 := core.FactorPair(m0 / rho)
		cands = append(cands, multiplyCandidate{strategy: core.MultiplyReplicated, g1: g1, g2: g2, rho: rho})
	}
	for rho := 2; rho <= 64 && rho <= inner; rho *= 2 {
		cands = append(cands, multiplyCandidate{strategy: core.MultiplySpaceRound, g1: f1, g2: f2, rho: rho})
	}

	pred := map[core.MultiplyStrategy]time.Duration{}
	var best *multiplyCandidate
	var bestT time.Duration
	for i := range cands {
		mc := cands[i]
		if memBudget > 0 && mc.reducerBytes(rows, inner, cols) > memBudget {
			continue
		}
		t := mc.time(c, rows, inner, cols)
		if cur, ok := pred[mc.strategy]; !ok || t < cur {
			pred[mc.strategy] = t
		}
		if best == nil || t < bestT {
			best, bestT = &cands[i], t
		}
	}
	if best == nil {
		// Nothing fits the budget: pick the space-round rho whose working
		// set comes closest (the strategy exists exactly for this case).
		sr := multiplyCandidate{strategy: core.MultiplySpaceRound, g1: f1, g2: f2, rho: min(inner, 64)}
		for rho := 2; rho <= 64 && rho <= inner; rho *= 2 {
			mc := multiplyCandidate{strategy: core.MultiplySpaceRound, g1: f1, g2: f2, rho: rho}
			if mc.reducerBytes(rows, inner, cols) <= memBudget {
				sr = mc
				break
			}
		}
		best, bestT = &sr, sr.time(c, rows, inner, cols)
		pred[sr.strategy] = bestT
	}

	choice := MultiplyChoice{
		Strategy:      best.strategy,
		Grid:          [2]int{best.g1, best.g2},
		Predicted:     pred,
		TransferElems: best.transferElems(rows, inner, cols),
		ReducerBytes:  best.reducerBytes(rows, inner, cols),
	}
	if best.strategy != core.MultiplySingleRound {
		choice.Rho = best.rho
	}
	switch best.strategy {
	case core.MultiplyReplicated:
		choice.Reason = fmt.Sprintf(
			"replicated %dx%dx%d grid cuts transfer to %.0f%% of single-round; saving exceeds the extra job launch",
			best.g1, best.g2, best.rho,
			100*best.transferElems(rows, inner, cols)/single.transferElems(rows, inner, cols))
	case core.MultiplySpaceRound:
		choice.Reason = fmt.Sprintf(
			"space-round with rho=%d fits the %.0f MB reducer budget (single-round needs %.0f MB)",
			best.rho, memBudget/1e6, single.reducerBytes(rows, inner, cols)/1e6)
	default:
		choice.Reason = fmt.Sprintf(
			"single round is fastest: transfer saving of multi-round (%s predicted) does not repay an extra job launch",
			FormatDuration(pred[core.MultiplySingleRound]))
	}
	return choice
}

// Apply copies the choice into pipeline options.
func (mc MultiplyChoice) Apply(opts *core.Options) {
	opts.Multiply = mc.Strategy
	opts.MultiplyRho = mc.Rho
}
