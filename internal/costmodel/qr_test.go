package costmodel

import (
	"strings"
	"testing"
)

func TestServingClusterSpec(t *testing.T) {
	c := ServingCluster(8)
	if c.Nodes != 8 {
		t.Fatalf("nodes = %d, want 8", c.Nodes)
	}
	if c.Node.Name != "sim" {
		t.Fatalf("node name = %q, want sim", c.Node.Name)
	}
	if c.JobLaunch != 0 {
		t.Fatalf("in-process cluster must have zero job-launch latency, got %v", c.JobLaunch)
	}
	// Memory-speed "network": well above any real NIC in the Medium spec.
	if c.Node.NetBW <= Medium.NetBW {
		t.Fatalf("sim NetBW %v not faster than Medium %v", c.Node.NetBW, Medium.NetBW)
	}
}

func TestSeqQRTimeScalesAsMN2(t *testing.T) {
	base := SeqQRTime(Medium, 1000, 10)
	if base <= 0 {
		t.Fatal("non-positive sequential QR estimate")
	}
	if d := SeqQRTime(Medium, 2000, 10); d < 2*base*9/10 || d > 2*base*11/10 {
		t.Fatalf("doubling m: %v vs base %v, want ~2x", d, base)
	}
	if d := SeqQRTime(Medium, 1000, 20); d < 4*base*9/10 || d > 4*base*11/10 {
		t.Fatalf("doubling n: %v vs base %v, want ~4x", d, base)
	}
}

func TestTSQRTimeClampsBlocks(t *testing.T) {
	c := ServingCluster(8)
	if d0, d1 := TSQRTime(c, 4096, 16, 0), TSQRTime(c, 4096, 16, 1); d0 != d1 {
		t.Fatalf("b=0 (%v) must clamp to b=1 (%v)", d0, d1)
	}
	// More blocks shrink the parallel map term but grow the stacked
	// reduce; at a fixed tall shape a few blocks beat one.
	if d8, d1 := TSQRTime(c, 1<<20, 16, 8), TSQRTime(c, 1<<20, 16, 1); d8 >= d1 {
		t.Fatalf("8 blocks (%v) not faster than 1 (%v) on a very tall input", d8, d1)
	}
}

func TestChooseQRAspectGate(t *testing.T) {
	c := ServingCluster(8)
	// rows/cols < MinTallRatio is pinned sequential regardless of model.
	ch := ChooseQR(c, 100, 40)
	if ch.Strategy != QRSequential {
		t.Fatalf("near-square chose %s (%s)", ch.Strategy, ch.Reason)
	}
	if !strings.Contains(ch.Reason, "aspect ratio") {
		t.Fatalf("gate reason missing aspect ratio: %q", ch.Reason)
	}
	if len(ch.Predicted) != 2 {
		t.Fatalf("predictions missing: %v", ch.Predicted)
	}
}

func TestChooseQRCrossover(t *testing.T) {
	c := ServingCluster(8)
	// Past the 8-node crossover (m ~ 17n) TSQR must win; this is the
	// shape the serving smoke mixes use.
	tall := ChooseQR(c, 256, 8)
	if tall.Strategy != QRTSQR {
		t.Fatalf("256x8 on 8 nodes chose %s (%s)", tall.Strategy, tall.Reason)
	}
	if tall.Blocks < 2 || tall.Blocks > 8 {
		t.Fatalf("blocks = %d, want 2..8", tall.Blocks)
	}
	if tall.Predicted[QRTSQR] >= tall.Predicted[QRSequential] {
		t.Fatalf("TSQR chosen but predicted slower: %v", tall.Predicted)
	}
	// Tall enough to pass the gate but below the crossover: sequential.
	mid := ChooseQR(c, 40, 8)
	if mid.Strategy != QRSequential {
		t.Fatalf("40x8 chose %s (%s)", mid.Strategy, mid.Reason)
	}
	if !strings.Contains(mid.Reason, "distribution overhead") {
		t.Fatalf("sequential reason: %q", mid.Reason)
	}
}

func TestChooseQRBlocksBoundedByAspect(t *testing.T) {
	// A 16-node cluster cannot use more row blocks than m/n: each block
	// must itself be at least n rows tall for the local QR to be thin.
	ch := ChooseQR(ServingCluster(16), 48, 8)
	if ch.Blocks != 6 {
		t.Fatalf("blocks = %d, want m/n = 6", ch.Blocks)
	}
	if ch2 := ChooseQR(ServingCluster(0), 256, 8); ch2.Blocks < 1 {
		t.Fatalf("zero-node cluster blocks = %d, want >= 1", ch2.Blocks)
	}
}

func TestChooseQRDeterministic(t *testing.T) {
	c := ServingCluster(8)
	a, b := ChooseQR(c, 192, 6), ChooseQR(c, 192, 6)
	if a.Strategy != b.Strategy || a.Blocks != b.Blocks || a.Reason != b.Reason {
		t.Fatalf("ChooseQR not deterministic: %+v vs %+v", a, b)
	}
}

func TestQROther(t *testing.T) {
	if other(QRTSQR) != QRSequential || other(QRSequential) != QRTSQR {
		t.Fatal("other() does not flip strategies")
	}
}
