package costmodel

import (
	"testing"
	"time"

	"repro/internal/workload"
)

func TestTable1Formulas(t *testing.T) {
	// For m0 = 64 (f1 = f2 = 8): l = (64 + 16 + 16)/4 = 24.
	n := 1000
	ours := OursLU(n, 64)
	n2 := 1e6
	if ours.Write != 1.5*n2 {
		t.Fatalf("write = %g", ours.Write)
	}
	if ours.Read != 27*n2 || ours.Transfer != 27*n2 {
		t.Fatalf("read/transfer = %g/%g, want l+3 = 27 n^2", ours.Read, ours.Transfer)
	}
	if ours.Mults != 1e9/3 || ours.Adds != 1e9/3 {
		t.Fatalf("flops = %g/%g", ours.Mults, ours.Adds)
	}
	scal := ScaLAPACKLU(n, 64)
	if scal.Transfer != 2.0/3.0*64*n2 {
		t.Fatalf("scal transfer = %g", scal.Transfer)
	}
	if scal.Read != n2 || scal.Write != n2 {
		t.Fatalf("scal read/write = %g/%g", scal.Read, scal.Write)
	}
}

func TestTable2Formulas(t *testing.T) {
	// For m0 = 64: l = (64 + 8 + 8)/2 = 40.
	n := 1000
	n2 := 1e6
	ours := OursInversion(n, 64)
	if ours.Write != 2*n2 || ours.Read != 40*n2 || ours.Transfer != 42*n2 {
		t.Fatalf("ours = %+v", ours)
	}
	if ours.Mults != 2e9/3 {
		t.Fatalf("mults = %g", ours.Mults)
	}
	scal := ScaLAPACKInversion(n, 64)
	if scal.Read != 64*n2 || scal.Transfer != 64*n2 {
		t.Fatalf("scal = %+v", scal)
	}
}

func TestOursTimeStrongScaling(t *testing.T) {
	// Figure 6's shape: runtime decreases with nodes, near-ideal early,
	// with deviation (t/ideal > 1) growing at high node counts.
	n := 32768
	t1 := OursTime(NewCluster(Medium, 1), n, workload.PaperNB, AllOpts)
	prev := t1
	for _, m0 := range []int{2, 4, 8, 16, 32, 64} {
		tm := OursTime(NewCluster(Medium, m0), n, workload.PaperNB, AllOpts)
		if tm >= prev {
			t.Fatalf("no speedup at %d nodes: %v >= %v", m0, tm, prev)
		}
		prev = tm
	}
	// Deviation from ideal at 64 nodes must be visible but bounded.
	t64 := OursTime(NewCluster(Medium, 64), n, workload.PaperNB, AllOpts)
	ideal := t1 / 64
	ratio := t64.Seconds() / ideal.Seconds()
	if ratio < 1.02 || ratio > 4 {
		t.Fatalf("t/ideal at 64 nodes = %.2f, want visible bounded deviation", ratio)
	}
}

func TestLargerMatrixScalesBetter(t *testing.T) {
	// Section 7.2: "the larger the matrix, the better the scalability".
	dev := func(n int) float64 {
		t1 := OursTime(NewCluster(Medium, 1), n, workload.PaperNB, AllOpts)
		t64 := OursTime(NewCluster(Medium, 64), n, workload.PaperNB, AllOpts)
		return t64.Seconds() / (t1.Seconds() / 64)
	}
	if dev(40960) >= dev(20480) {
		t.Fatalf("larger matrix deviates more: M3 %.3f vs M1 %.3f", dev(40960), dev(20480))
	}
}

func TestFig7Shapes(t *testing.T) {
	points := Fig7()
	if len(points) != 2*len(Fig7Nodes) {
		t.Fatalf("points = %d", len(points))
	}
	last := map[string]float64{}
	for _, p := range points {
		if p.Ratio < 1 {
			t.Fatalf("%s at %d nodes: ratio %.3f < 1 (optimization hurts?)", p.Optimization, p.Nodes, p.Ratio)
		}
		if prev, ok := last[p.Optimization]; ok && p.Ratio < prev-1e-9 {
			t.Fatalf("%s: ratio not non-decreasing with nodes (%.3f after %.3f)", p.Optimization, p.Ratio, prev)
		}
		last[p.Optimization] = p.Ratio
	}
	// Section 7.3: separate files approaches ~1.3x at high node counts.
	var sep64 float64
	for _, p := range points {
		if p.Optimization == "separate-files" && p.Nodes == 64 {
			sep64 = p.Ratio
		}
	}
	if sep64 < 1.1 || sep64 > 1.6 {
		t.Fatalf("separate-files ratio at 64 nodes = %.3f, want ~1.3", sep64)
	}
}

func TestFig8Crossover(t *testing.T) {
	points := Fig8()
	get := func(mat string, nodes int) float64 {
		for _, p := range points {
			if p.Matrix == mat && p.Nodes == nodes {
				return p.Ratio
			}
		}
		t.Fatalf("missing %s@%d", mat, nodes)
		return 0
	}
	// Small scale: ScaLAPACK wins (ratio < 1) — Section 7.5's "slight
	// performance penalty for small matrices". 4 nodes is M1's first
	// memory-feasible point for the in-memory baseline.
	if r := get("M1", 4); r >= 1 {
		t.Fatalf("M1@4 ratio = %.2f, ScaLAPACK should win at small scale", r)
	}
	// The ratio improves for our algorithm as nodes grow (M3's first
	// feasible point on 3.7 GB nodes is 16).
	if get("M3", 64) <= get("M3", 16) {
		t.Fatal("ratio must grow with node count for M3")
	}
	// At 64 nodes the largest matrix approaches or passes parity.
	if r := get("M3", 64); r < 0.95 {
		t.Fatalf("M3@64 ratio = %.2f, want near/above parity", r)
	}
	// Larger matrices have better ratios at high scale.
	if !(get("M3", 64) > get("M1", 64)) {
		t.Fatal("larger matrices should favor our algorithm")
	}
}

func TestSec74Anchors(t *testing.T) {
	rows := Sec74()
	byKey := map[string]time.Duration{}
	for _, r := range rows {
		byKey[r.System+"/"+r.Cluster] = r.Time
	}
	within := func(d time.Duration, lo, hi float64) bool {
		return d.Hours() >= lo && d.Hours() <= hi
	}
	if d := byKey["ours/128 large"]; !within(d, 3.5, 7) {
		t.Fatalf("ours on 128 large = %v, paper ~5h", d)
	}
	if d := byKey["ours/64 medium"]; !within(d, 11, 19) {
		t.Fatalf("ours on 64 medium = %v, paper ~15h", d)
	}
	if d := byKey["ours+failure/128 large"]; !within(d, 6, 11) {
		t.Fatalf("ours+failure = %v, paper ~8h", d)
	}
	if d := byKey["scalapack/128 large"]; !within(d, 6, 11) {
		t.Fatalf("scalapack on 128 large = %v, paper ~8h", d)
	}
	if d := byKey["scalapack/64 medium"]; d.Hours() <= 48 {
		t.Fatalf("scalapack on 64 medium = %v, paper >48h", d)
	}
	// Ordering: ours beats ScaLAPACK on both clusters at this scale.
	if byKey["ours/128 large"] >= byKey["scalapack/128 large"] {
		t.Fatal("ours must win on 128 large")
	}
	if byKey["ours/64 medium"] >= byKey["scalapack/64 medium"] {
		t.Fatal("ours must win on 64 medium")
	}
}

func TestFig6SeriesComplete(t *testing.T) {
	points := Fig6()
	if len(points) != 3*len(Fig6Nodes) {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Time <= 0 || p.Ideal <= 0 {
			t.Fatalf("bad point %+v", p)
		}
		if p.Time.Seconds() < p.Ideal.Seconds()*0.99 {
			t.Fatalf("faster than ideal at %+v", p)
		}
	}
	if s := SummarizeFig6(points); len(s) == 0 {
		t.Fatal("empty summary")
	}
}

func TestTableRowsRender(t *testing.T) {
	if rows := Table1Rows(1000, 64); len(rows) != 2 {
		t.Fatalf("table1 rows = %d", len(rows))
	}
	if rows := Table2Rows(1000, 64); len(rows) != 2 {
		t.Fatalf("table2 rows = %d", len(rows))
	}
	rows := Table3Rows()
	if len(rows) != 5 {
		t.Fatalf("table3 rows = %d", len(rows))
	}
}

func TestFormatDuration(t *testing.T) {
	if s := FormatDuration(90 * time.Minute); s != "1.5 h" {
		t.Fatalf("got %q", s)
	}
	if s := FormatDuration(90 * time.Second); s != "1.5 min" {
		t.Fatalf("got %q", s)
	}
	if s := FormatDuration(5 * time.Second); s != "5.0 s" {
		t.Fatalf("got %q", s)
	}
}

func TestOursWorkerMemoryStreaming(t *testing.T) {
	// M4 on 64 medium nodes: a full factor (84 GB) cannot fit a worker;
	// the streaming inversion's band + output columns must.
	n, m0 := 102400, 64
	full := OursWorkerMemory(n, m0, false)
	stream := OursWorkerMemory(n, m0, true)
	if full <= Medium.RAM {
		t.Fatalf("full factor %g unexpectedly fits %g", full, Medium.RAM)
	}
	if stream > Medium.RAM {
		t.Fatalf("streaming working set %g does not fit %g", stream, Medium.RAM)
	}
	if stream >= full/10 {
		t.Fatalf("streaming saves too little: %g vs %g", stream, full)
	}
}

func TestSparkTimeBeatsHadoopTime(t *testing.T) {
	// Section 8's expectation: the in-memory port improves on the
	// HDFS-backed pipeline by cutting read I/O and launch overhead, most
	// visibly at high node counts where I/O and launches dominate.
	for _, m0 := range []int{8, 16, 64} {
		c := NewCluster(Medium, m0)
		hadoop := OursTime(c, 32768, workload.PaperNB, AllOpts)
		spark := SparkTime(c, 32768, workload.PaperNB)
		if spark >= hadoop {
			t.Fatalf("m0=%d: spark %v >= hadoop %v", m0, spark, hadoop)
		}
	}
	// But the gap must be bounded — compute still dominates overall.
	c := NewCluster(Medium, 16)
	ratio := OursTime(c, 32768, workload.PaperNB, AllOpts).Seconds() / SparkTime(c, 32768, workload.PaperNB).Seconds()
	if ratio > 3 {
		t.Fatalf("spark speedup ratio %.2f implausibly large", ratio)
	}
}

func TestTransposePenaltyVisible(t *testing.T) {
	// Section 6.3: disabling transposed storage slows the run 2-3x at the
	// compute-bound end.
	c := NewCluster(Medium, 8)
	opt := OursTime(c, 32768, workload.PaperNB, AllOpts)
	noT := AllOpts
	noT.TransposeU = false
	slow := OursTime(c, 32768, workload.PaperNB, noT)
	ratio := slow.Seconds() / opt.Seconds()
	if ratio < 1.5 || ratio > 3 {
		t.Fatalf("transpose ablation ratio = %.2f, want within the paper's 2-3x ballpark", ratio)
	}
}
