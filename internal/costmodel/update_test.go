package costmodel

import "testing"

func TestChooseUpdatePrefersUpdateAtLowRank(t *testing.T) {
	c := ServingCluster(8)
	for _, k := range []int{1, 4, 8, 32} {
		ch := ChooseUpdate(c, 256, k, 64, 0)
		if !ch.Incremental() {
			t.Fatalf("n=256 k=%d: chose %s (%s), want an update path", k, ch.Strategy, ch.Reason)
		}
		if ch.Predicted[ch.Strategy] > ch.Predicted[UpdateFull] {
			t.Fatalf("n=256 k=%d: chosen path predicted slower than full", k)
		}
	}
}

func TestChooseUpdateRefusesHighRank(t *testing.T) {
	c := ServingCluster(8)
	for _, tc := range []struct{ n, k int }{{256, 65}, {64, 20}, {16, 8}, {100, 0}} {
		if ch := ChooseUpdate(c, tc.n, tc.k, 64, 0); ch.Incremental() {
			t.Fatalf("n=%d k=%d: chose %s, want full (rank beyond n/%d)",
				tc.n, tc.k, ch.Strategy, MaxUpdateFraction)
		}
	}
}

func TestChooseUpdateDistributedAtScale(t *testing.T) {
	c := ServingCluster(8)
	// Small problems must not pay three job launches...
	if ch := ChooseUpdate(c, 256, 8, 64, 0); ch.Strategy != UpdateSequential {
		t.Fatalf("n=256 k=8: chose %s, want sequential (%s)", ch.Strategy, ch.Reason)
	}
	// ...while at large n the parallel flops win despite them.
	if ch := ChooseUpdate(c, 2048, 64, 512, 0); ch.Strategy != UpdateDistributed {
		t.Fatalf("n=2048 k=64: chose %s, want distributed (%s)", ch.Strategy, ch.Reason)
	}
}

func TestChooseUpdateLoadShiftsCrossover(t *testing.T) {
	c := ServingCluster(8)
	const n, k, nb = 2048, 64, 512
	idle := ChooseUpdate(c, n, k, nb, 0)
	if idle.Strategy != UpdateDistributed {
		t.Fatalf("idle cluster: chose %s, want distributed", idle.Strategy)
	}
	// A deep admission queue inflates cluster-hosted paths; the
	// master-local sequential update must eventually win.
	loaded := ChooseUpdate(c, n, k, nb, 512)
	if loaded.Strategy != UpdateSequential {
		t.Fatalf("loaded cluster: chose %s (%s), want sequential", loaded.Strategy, loaded.Reason)
	}
	if loaded.Predicted[UpdateDistributed] <= idle.Predicted[UpdateDistributed] {
		t.Fatal("load did not inflate the distributed prediction")
	}
}

func TestChooseUpdateDeterministic(t *testing.T) {
	c := ServingCluster(4)
	a := ChooseUpdate(c, 512, 16, 64, 3)
	b := ChooseUpdate(c, 512, 16, 64, 3)
	if a.Strategy != b.Strategy || a.Reason != b.Reason {
		t.Fatalf("same inputs chose %s vs %s", a.Strategy, b.Strategy)
	}
}
