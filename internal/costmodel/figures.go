package costmodel

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// Series generators for the paper's evaluation artifacts. Each returns the
// rows/points the corresponding table or figure plots, ready for printing
// by cmd/mrbench or the benchmark harness.

// Fig6Point is one point of Figure 6: strong scalability.
type Fig6Point struct {
	Matrix string
	Nodes  int
	Time   time.Duration
	Ideal  time.Duration // T(1)/nodes, the purple reference line
}

// Fig6Nodes is the node-count sweep of Figure 6's x axis.
var Fig6Nodes = []int{1, 2, 4, 8, 16, 32, 64}

// Fig6 computes the Figure 6 series for matrices M1, M2, M3 on medium
// instances with the paper's nb.
func Fig6() []Fig6Point {
	var out []Fig6Point
	for _, name := range []string{"M1", "M2", "M3"} {
		spec, err := workload.SpecByName(name)
		if err != nil {
			panic(err)
		}
		t1 := OursTime(NewCluster(Medium, 1), spec.Order, workload.PaperNB, AllOpts)
		for _, m0 := range Fig6Nodes {
			t := OursTime(NewCluster(Medium, m0), spec.Order, workload.PaperNB, AllOpts)
			out = append(out, Fig6Point{
				Matrix: name,
				Nodes:  m0,
				Time:   t,
				Ideal:  t1 / time.Duration(m0),
			})
		}
	}
	return out
}

// Fig7Point is one point of Figure 7: the ratio of unoptimized to
// optimized running time for one disabled optimization on matrix M5.
type Fig7Point struct {
	Optimization string // "separate-files" or "block-wrap"
	Nodes        int
	Ratio        float64 // T_unopt / T_opt, >= 1 when the optimization helps
}

// Fig7Nodes is Figure 7's x axis (4-64 nodes, Section 7.3).
var Fig7Nodes = []int{4, 8, 16, 32, 64}

// Fig7 computes both ablation series of Figure 7.
func Fig7() []Fig7Point {
	spec, err := workload.SpecByName("M5")
	if err != nil {
		panic(err)
	}
	var out []Fig7Point
	for _, m0 := range Fig7Nodes {
		c := NewCluster(Medium, m0)
		opt := OursTime(c, spec.Order, workload.PaperNB, AllOpts).Seconds()

		noSep := AllOpts
		noSep.SeparateFiles = false
		out = append(out, Fig7Point{
			Optimization: "separate-files",
			Nodes:        m0,
			Ratio:        OursTime(c, spec.Order, workload.PaperNB, noSep).Seconds() / opt,
		})
		noWrap := AllOpts
		noWrap.BlockWrap = false
		out = append(out, Fig7Point{
			Optimization: "block-wrap",
			Nodes:        m0,
			Ratio:        OursTime(c, spec.Order, workload.PaperNB, noWrap).Seconds() / opt,
		})
	}
	return out
}

// Fig8Point is one point of Figure 8: T_scalapack / T_ours.
type Fig8Point struct {
	Matrix string
	Nodes  int
	Ratio  float64
}

// Fig8Nodes is Figure 8's x axis.
var Fig8Nodes = []int{1, 2, 4, 8, 16, 32, 64}

// Fig8 computes the Figure 8 series for M1-M3 on medium instances. Points
// where the in-memory ScaLAPACK working set exceeds node RAM are omitted:
// each curve starts at the node count where the baseline can run at all
// (M1 from 4 nodes, M2 from 8, M3 from 16 on 3.7 GB instances).
func Fig8() []Fig8Point {
	var out []Fig8Point
	for _, name := range []string{"M1", "M2", "M3"} {
		spec, err := workload.SpecByName(name)
		if err != nil {
			panic(err)
		}
		for _, m0 := range Fig8Nodes {
			c := NewCluster(Medium, m0)
			if !ScaLAPACKFeasible(c, spec.Order) {
				continue
			}
			ours := OursTime(c, spec.Order, workload.PaperNB, AllOpts).Seconds()
			scal := ScaLAPACKTime(c, spec.Order).Seconds()
			out = append(out, Fig8Point{Matrix: name, Nodes: m0, Ratio: scal / ours})
		}
	}
	return out
}

// Sec74Row is one run of the Section 7.4/7.5 large-matrix experiment.
type Sec74Row struct {
	System  string
	Cluster string
	Time    time.Duration
	Paper   string // the paper's reported result, for side-by-side output
}

// Sec74 reproduces the M4 (n = 102400) runs: our pipeline and ScaLAPACK on
// 128 large and 64 medium instances, plus the failure-recovery run.
func Sec74() []Sec74Row {
	spec, err := workload.SpecByName("M4")
	if err != nil {
		panic(err)
	}
	large128 := NewCluster(Large, 128)
	medium64 := NewCluster(Medium, 64)

	ours128 := OursTime(large128, spec.Order, workload.PaperNB, AllOpts)
	// Section 7.4's first run: one triangular-inversion mapper died and
	// was rescheduled after another mapper finished — roughly one extra
	// mapper's worth of inversion work, serial at the end of the job.
	inv := OursInversion(spec.Order, large128.Nodes)
	retry := secs((inv.Mults + inv.Adds) / float64(large128.Nodes) / (float64(large128.Node.Cores) * large128.Node.Flops))

	return []Sec74Row{
		{System: "ours", Cluster: "128 large", Time: ours128, Paper: "~5 h"},
		{System: "ours+failure", Cluster: "128 large", Time: ours128 + retry, Paper: "~8 h"},
		{System: "ours", Cluster: "64 medium", Time: OursTime(medium64, spec.Order, workload.PaperNB, AllOpts), Paper: "~15 h"},
		{System: "scalapack", Cluster: "128 large", Time: ScaLAPACKTime(large128, spec.Order), Paper: "~8 h"},
		{System: "scalapack", Cluster: "64 medium", Time: ScaLAPACKTime(medium64, spec.Order), Paper: ">48 h"},
	}
}

// Table1Rows renders Table 1 for a concrete cluster size, with the
// symbolic formulas alongside evaluated element counts.
func Table1Rows(n, m0 int) []string {
	ours := OursLU(n, m0)
	scal := ScaLAPACKLU(n, m0)
	return []string{
		fmt.Sprintf("Our Algorithm | write 3/2 n^2 = %.3g | read (l+3) n^2 = %.3g | transfer (l+3) n^2 = %.3g | mults n^3/3 = %.3g | adds n^3/3 = %.3g",
			ours.Write, ours.Read, ours.Transfer, ours.Mults, ours.Adds),
		fmt.Sprintf("ScaLAPACK     | write n^2 = %.3g | read n^2 = %.3g | transfer 2/3 m0 n^2 = %.3g | mults n^3/3 = %.3g | adds n^3/3 = %.3g",
			scal.Write, scal.Read, scal.Transfer, scal.Mults, scal.Adds),
	}
}

// Table2Rows renders Table 2 for a concrete cluster size.
func Table2Rows(n, m0 int) []string {
	ours := OursInversion(n, m0)
	scal := ScaLAPACKInversion(n, m0)
	return []string{
		fmt.Sprintf("Our Algorithm | write 2 n^2 = %.3g | read l n^2 = %.3g | transfer (l+2) n^2 = %.3g | mults 2n^3/3 = %.3g | adds 2n^3/3 = %.3g",
			ours.Write, ours.Read, ours.Transfer, ours.Mults, ours.Adds),
		fmt.Sprintf("ScaLAPACK     | write n^2 = %.3g | read m0 n^2 = %.3g | transfer m0 n^2 = %.3g | mults 2n^3/3 = %.3g | adds 2n^3/3 = %.3g",
			scal.Write, scal.Read, scal.Transfer, scal.Mults, scal.Adds),
	}
}

// Table3Rows renders Table 3 from the workload descriptors plus the job
// count law.
func Table3Rows() []string {
	var out []string
	for _, s := range workload.Table3 {
		out = append(out, fmt.Sprintf("%s | order %6d | %5.2f G elements | text %5.1f GB | binary %5.1f GB | jobs %2d (computed %2d)",
			s.Name, s.Order, s.Elements, s.TextGB, s.BinaryGB, s.Jobs, core.PipelineJobs(s.Order, workload.PaperNB)))
	}
	return out
}

// FormatDuration renders a duration the way the paper reports runtimes.
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%.1f h", d.Hours())
	case d >= time.Minute:
		return fmt.Sprintf("%.1f min", d.Minutes())
	default:
		return fmt.Sprintf("%.1f s", d.Seconds())
	}
}

// SummarizeFig6 renders Figure 6 as aligned text rows.
func SummarizeFig6(points []Fig6Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %6s %14s %14s %8s\n", "mat", "nodes", "time", "ideal", "t/ideal")
	for _, p := range points {
		fmt.Fprintf(&b, "%-4s %6d %14s %14s %8.2f\n",
			p.Matrix, p.Nodes, FormatDuration(p.Time), FormatDuration(p.Ideal),
			p.Time.Seconds()/p.Ideal.Seconds())
	}
	return b.String()
}
