package costmodel

import (
	"fmt"
	"time"
)

// QR strategy selection for the tall-and-skinny workload family: the
// serving layer asks, per /lstsq or /pinv request, whether the two-round
// MapReduce TSQR pipeline (internal/tsqr) or a single-node dense
// Householder QR should run. The decision is a pure function of the
// request shape and cluster size, so equal digests always take the same
// path and cached results stay consistent with fresh computations.

// ServingCluster calibrates the model for matserve's in-process
// simulated cluster: zero job-launch latency and memory-speed "network"
// (the shuffle is a byte-slice copy), leaving the flop terms — parallel
// local QRs vs one sequential factorization — to decide the strategy.
func ServingCluster(nodes int) Cluster {
	node := Medium
	node.Name = "sim"
	node.NetBW = 4e9
	node.DiskBW = 4e9
	return Cluster{Node: node, Nodes: nodes}
}

// QRStrategy identifies one of the two QR execution paths.
type QRStrategy string

const (
	QRSequential QRStrategy = "sequential"
	QRTSQR       QRStrategy = "tsqr"
)

// MinTallRatio is the aspect-ratio gate: below rows/cols of 4 the input
// is not meaningfully "tall and skinny" — the stacked-R reduce step
// (blocks*n x n) approaches the size of the original problem and the
// distribution overhead cannot pay for itself.
const MinTallRatio = 4

// QRChoice is the outcome of QR strategy selection.
type QRChoice struct {
	Strategy QRStrategy
	Reason   string
	// Blocks is the row-block count the TSQR pipeline would use (also
	// filled in for sequential choices, for visibility).
	Blocks    int
	Predicted map[QRStrategy]time.Duration
}

// SeqQRTime models one dense Householder QR of an m x n matrix on the
// master's optimized kernel: ~2mn^2 flops.
func SeqQRTime(node NodeSpec, m, n int) time.Duration {
	flops := 2 * float64(m) * float64(n) * float64(n)
	return secs(flops / node.MasterFlops)
}

// TSQRTime models the two-round direct-TSQR pipeline on cluster c with b
// row blocks: parallel local QRs of (m/b) x n blocks on the workers, the
// stacked (b*n) x n reduce factorization, one apply round of the same
// parallel shape, the shuffle transfer of b R factors, and two job
// launches.
func TSQRTime(c Cluster, m, n, b int) time.Duration {
	if b < 1 {
		b = 1
	}
	perBlock := 2 * float64(m) / float64(b) * float64(n) * float64(n)
	stacked := 2 * float64(b) * float64(n) * float64(n) * float64(n)
	transfer := float64(b) * float64(n) * float64(n) * bytesPerElem / c.Node.NetBW
	compute := (2*perBlock)/c.Node.Flops + stacked/c.Node.MasterFlops + transfer
	return secs(compute) + 2*c.JobLaunch
}

// ChooseQR picks the QR execution path for an m x n least-squares or
// pseudo-inverse request on cluster c. Near-square inputs are pinned to
// the sequential kernel by the aspect-ratio gate; tall ones take
// whichever path the calibrated model predicts faster.
func ChooseQR(c Cluster, m, n int) QRChoice {
	b := c.Nodes
	if b < 1 {
		b = 1
	}
	if n > 0 {
		if maxb := m / n; b > maxb {
			b = maxb
		}
	}
	if b < 1 {
		b = 1
	}
	pred := map[QRStrategy]time.Duration{
		QRSequential: SeqQRTime(c.Node, m, n),
		QRTSQR:       TSQRTime(c, m, n, b),
	}
	if n > 0 && m/n < MinTallRatio {
		return QRChoice{
			Strategy: QRSequential,
			Blocks:   b,
			Reason: fmt.Sprintf("aspect ratio %d/%d below %d: not tall-and-skinny; single-node QR",
				m, n, MinTallRatio),
			Predicted: pred,
		}
	}
	best := QRSequential
	if pred[QRTSQR] < pred[QRSequential] {
		best = QRTSQR
	}
	reason := fmt.Sprintf("predicted %s vs %s for %dx%d on %d nodes",
		FormatDuration(pred[best]), FormatDuration(pred[other(best)]), m, n, c.Nodes)
	if best == QRTSQR {
		reason = "row blocks factor in parallel and only R factors shuffle; " + reason
	} else {
		reason = "distribution overhead exceeds the parallel speedup at this size; " + reason
	}
	return QRChoice{Strategy: best, Blocks: b, Reason: reason, Predicted: pred}
}

func other(s QRStrategy) QRStrategy {
	if s == QRTSQR {
		return QRSequential
	}
	return QRTSQR
}
