package costmodel

import (
	"testing"
	"time"

	"repro/internal/workload"
)

func TestChooseEngineSmallMatrixLocal(t *testing.T) {
	c := NewCluster(Medium, 16)
	choice := ChooseEngine(c, 800, workload.PaperNB)
	if choice.Engine != EngineLocal {
		t.Fatalf("n=800 chose %s (%s)", choice.Engine, choice.Reason)
	}
	if _, ok := choice.Predicted[EngineLocal]; !ok {
		t.Fatal("local prediction missing")
	}
}

func TestChooseEngineHugeMatrixMapReduce(t *testing.T) {
	// M4 on 64 medium nodes: ScaLAPACK is memory-infeasible and the local
	// kernel cannot hold the matrix — the pipeline must win.
	c := NewCluster(Medium, 64)
	choice := ChooseEngine(c, 102400, workload.PaperNB)
	if choice.Engine != EngineMapReduce {
		t.Fatalf("M4 chose %s (%s)", choice.Engine, choice.Reason)
	}
	if _, ok := choice.Predicted[EngineScaLAPACK]; ok {
		t.Fatal("infeasible ScaLAPACK still predicted")
	}
	if _, ok := choice.Predicted[EngineLocal]; ok {
		t.Fatal("80 GB matrix predicted to fit one 3.7 GB node")
	}
}

func TestChooseEngineMidScaleScaLAPACK(t *testing.T) {
	// M1 at modest node counts: the paper's Figure 8 shows ScaLAPACK
	// slightly ahead — the chooser must pick it when feasible and faster.
	c := NewCluster(Medium, 8)
	choice := ChooseEngine(c, 20480, workload.PaperNB)
	if choice.Engine != EngineScaLAPACK {
		t.Fatalf("M1@8 chose %s (%s)", choice.Engine, choice.Reason)
	}
}

func TestChooseEnginePredictionsOrdered(t *testing.T) {
	c := NewCluster(Medium, 16)
	choice := ChooseEngine(c, 32768, workload.PaperNB)
	best := choice.Predicted[choice.Engine]
	for e, tm := range choice.Predicted {
		if tm < best {
			t.Fatalf("%s (%v) beats chosen %s (%v)", e, tm, choice.Engine, best)
		}
	}
	if choice.Reason == "" {
		t.Fatal("empty reason")
	}
}

func TestSingleNodeTime(t *testing.T) {
	if _, ok := SingleNodeTime(Medium, 102400); ok {
		t.Fatal("80 GB matrix fits 3.7 GB node?")
	}
	d, ok := SingleNodeTime(Medium, 4000)
	if !ok {
		t.Fatal("4000^2 should fit")
	}
	if d <= 0 {
		t.Fatalf("time = %v", d)
	}
}

func TestOptimalNBNearPaperChoice(t *testing.T) {
	// On the paper's cluster (medium instances, ~30 s job launches), the
	// optimal bound value should land in the same regime as their 3200.
	c := NewCluster(Medium, 64)
	nb := OptimalNB(c, 102400)
	if nb < 1600 || nb > 12800 {
		t.Fatalf("OptimalNB = %d, want the paper's regime around 3200", nb)
	}
}

func TestOptimalNBBalancesLeafAndLaunch(t *testing.T) {
	// Section 5: nb is right when a leaf decomposition costs about one
	// job launch. At the model's optimum the two should be within an
	// order of magnitude.
	c := NewCluster(Medium, 64)
	nb := OptimalNB(c, 102400)
	leaf := LeafTime(Medium, nb)
	ratio := leaf.Seconds() / c.JobLaunch.Seconds()
	if ratio < 0.1 || ratio > 10 {
		t.Fatalf("leaf %v vs launch %v (ratio %.2f): not balanced", leaf, c.JobLaunch, ratio)
	}
}

func TestOptimalNBTracksLaunchOverhead(t *testing.T) {
	// Section 7.2: "our analysis of how finely to decompose the
	// computation holds even under faster job launching" — the optimum nb
	// shifts down as launches get cheaper (smaller leaves become
	// affordable) but never collapses, and the balance rule (leaf time ~
	// launch time) keeps holding.
	n := 102400
	prev := 1 << 30
	for _, launch := range []time.Duration{60 * time.Second, 30 * time.Second, 5 * time.Second, 1 * time.Second} {
		c := Cluster{Node: Medium, Nodes: 64, JobLaunch: launch}
		nb := OptimalNB(c, n)
		if nb > prev {
			t.Fatalf("launch %v: nb %d grew when launches got cheaper (prev %d)", launch, nb, prev)
		}
		prev = nb
		leaf := LeafTime(Medium, nb).Seconds()
		if ratio := leaf / launch.Seconds(); ratio < 0.05 || ratio > 20 {
			t.Fatalf("launch %v: leaf/launch = %.2f, balance rule broken", launch, ratio)
		}
	}
	if prev >= 3200 {
		t.Fatalf("1s launches should push nb below the 30s optimum, got %d", prev)
	}
}

func TestLeafTimeGrowsCubically(t *testing.T) {
	a := LeafTime(Medium, 1600)
	b := LeafTime(Medium, 3200)
	ratio := b.Seconds() / a.Seconds()
	if ratio < 7.9 || ratio > 8.1 {
		t.Fatalf("doubling nb scaled leaf time by %.2f, want 8", ratio)
	}
}

func TestExtremeNBIsWorse(t *testing.T) {
	c := NewCluster(Medium, 64)
	n := 102400
	best := OursTime(c, n, OptimalNB(c, n), AllOpts)
	tiny := OursTime(c, n, 200, AllOpts)   // job-launch dominated
	huge := OursTime(c, n, 51200, AllOpts) // master-serial dominated
	if tiny <= best || huge <= best {
		t.Fatalf("optimum %v not better than extremes (tiny %v, huge %v)", best, tiny, huge)
	}
	_ = time.Second
}
