// Package costmodel estimates paper-scale running times for both systems —
// the MapReduce block-LU inverter and the ScaLAPACK-style MPI baseline —
// from the complexity formulas of the paper's Tables 1 and 2 plus a small
// set of calibrated hardware constants.
//
// The repository's real executions validate numerics and pipeline shape at
// laptop scale; this model extrapolates to the paper's matrix orders
// (20480..102400) and cluster sizes (1..128 EC2 instances) to regenerate
// the *shapes* of Figure 6 (strong scaling), Figure 7 (optimization
// ablations), Figure 8 (ScaLAPACK ratio), and the Section 7.4 runs. The
// calibration targets are the paper's own anchors: a bound-value (nb=3200)
// leaf decomposition takes on the order of a Hadoop job launch (~30 s,
// Section 5); inverting M4 takes ~5 h on 128 large instances and ~15 h on
// 64 medium instances (Section 7.4); ScaLAPACK takes ~8 h and >48 h on the
// same clusters (Section 7.5); EC2 medium instances copy files at
// ~60 MB/s (Section 7.4).
package costmodel

import (
	"math"
	"time"

	"repro/internal/core"
)

// NodeSpec models one EC2 instance type of the paper's 2013-era clusters.
type NodeSpec struct {
	Name string
	// Cores is the number of usable CPU cores.
	Cores int
	// Flops is the sustained double-precision rate of one core running
	// the paper's Java map/reduce code, in FLOP/s.
	Flops float64
	// MasterFlops is the rate of the optimized single-node LU kernel used
	// on the master (Section 5 sizes nb so a leaf takes about one job
	// launch).
	MasterFlops float64
	// DiskBW and NetBW are per-node sustained bandwidths in bytes/s.
	DiskBW, NetBW float64
	// RAM is per-node memory in bytes; exceeding it sends the ScaLAPACK
	// working set into swap (the Section 7.4 ">48 hours" run).
	RAM float64
}

// The two instance types of Section 7.1/7.4. An EC2 medium instance has
// one core ("1 virtual core with 2 EC2 compute units") and 3.7 GB; a large
// instance has two such cores and 7.5 GB.
var (
	Medium = NodeSpec{
		Name: "m1.medium", Cores: 1,
		Flops: 7e8, MasterFlops: 1.5e9,
		DiskBW: 60e6, NetBW: 60e6, RAM: 3.7e9,
	}
	Large = NodeSpec{
		Name: "m1.large", Cores: 2,
		Flops: 7e8, MasterFlops: 1.5e9,
		DiskBW: 55e6, NetBW: 50e6, RAM: 7.5e9,
	}
)

// Cluster is a homogeneous cluster of Nodes instances.
type Cluster struct {
	Node  NodeSpec
	Nodes int
	// JobLaunch is the constant MapReduce job-launch overhead.
	JobLaunch time.Duration
}

// DefaultJobLaunch is Hadoop 1.x's typical job start latency.
const DefaultJobLaunch = 30 * time.Second

// NewCluster builds a cluster with the default job-launch overhead.
func NewCluster(node NodeSpec, nodes int) Cluster {
	return Cluster{Node: node, Nodes: nodes, JobLaunch: DefaultJobLaunch}
}

// Complexity mirrors one row of the paper's Tables 1 and 2: element counts
// for HDFS writes/reads, network transfer, and floating-point operation
// counts, all as functions of n and m0.
type Complexity struct {
	Write, Read, Transfer float64 // matrix elements
	Mults, Adds           float64 // floating point operations
}

// OursLU returns Table 1's first row: the MapReduce LU decomposition.
// l = (m0 + 2 f1 + 2 f2)/4.
func OursLU(n, m0 int) Complexity {
	f1, f2 := core.FactorPair(m0)
	l := float64(m0+2*f1+2*f2) / 4
	n2 := float64(n) * float64(n)
	n3 := n2 * float64(n)
	return Complexity{
		Write:    1.5 * n2,
		Read:     (l + 3) * n2,
		Transfer: (l + 3) * n2,
		Mults:    n3 / 3,
		Adds:     n3 / 3,
	}
}

// ScaLAPACKLU returns Table 1's second row.
func ScaLAPACKLU(n, m0 int) Complexity {
	n2 := float64(n) * float64(n)
	n3 := n2 * float64(n)
	return Complexity{
		Write:    n2,
		Read:     n2,
		Transfer: 2.0 / 3.0 * float64(m0) * n2,
		Mults:    n3 / 3,
		Adds:     n3 / 3,
	}
}

// OursInversion returns Table 2's first row: triangular inversion plus the
// final multiplication. l = (m0 + f1 + f2)/2.
func OursInversion(n, m0 int) Complexity {
	f1, f2 := core.FactorPair(m0)
	l := float64(m0+f1+f2) / 2
	n2 := float64(n) * float64(n)
	n3 := n2 * float64(n)
	return Complexity{
		Write:    2 * n2,
		Read:     l * n2,
		Transfer: (l + 2) * n2,
		Mults:    2 * n3 / 3,
		Adds:     2 * n3 / 3,
	}
}

// ScaLAPACKInversion returns Table 2's second row.
func ScaLAPACKInversion(n, m0 int) Complexity {
	n2 := float64(n) * float64(n)
	n3 := n2 * float64(n)
	return Complexity{
		Write:    n2,
		Read:     float64(m0) * n2,
		Transfer: float64(m0) * n2,
		Mults:    2 * n3 / 3,
		Adds:     2 * n3 / 3,
	}
}

// add sums two complexity rows.
func (c Complexity) add(o Complexity) Complexity {
	return Complexity{
		Write:    c.Write + o.Write,
		Read:     c.Read + o.Read,
		Transfer: c.Transfer + o.Transfer,
		Mults:    c.Mults + o.Mults,
		Adds:     c.Adds + o.Adds,
	}
}

// OptFlags mirrors the Section 6 optimization toggles for ablations.
type OptFlags struct {
	SeparateFiles bool
	BlockWrap     bool
	TransposeU    bool
}

// AllOpts enables every optimization (the paper's configuration).
var AllOpts = OptFlags{SeparateFiles: true, BlockWrap: true, TransposeU: true}

const bytesPerElem = 8

// transposePenalty multiplies the multiplication work when U is stored in
// row-major orientation: every inner-loop element access misses the cache
// (Section 6.3 reports the optimization "improves the performance of our
// algorithm by a factor of 2-3").
const transposePenalty = 2.5

// OursTime estimates the wall-clock time of the full MapReduce inversion
// pipeline for an order-n matrix with bound nb on cluster c.
func OursTime(c Cluster, n, nb int, opts OptFlags) time.Duration {
	m0 := c.Nodes
	lu := OursLU(n, m0)
	inv := OursInversion(n, m0)
	if !opts.BlockWrap {
		// Naive layout: every multiplication reads (m0+1) n^2 elements
		// instead of (f1+f2) n^2 or 2(f1+f2)... — substitute the block
		// wrap terms in l with their naive counterparts (Section 6.2).
		f1, f2 := core.FactorPair(m0)
		n2 := float64(n) * float64(n)
		deltaLU := (2*float64(m0+1) - 2*float64(f1+f2)) / 4 * n2
		deltaInv := (float64(m0+1) - float64(f1+f2)) / 2 * n2
		lu.Read += deltaLU
		lu.Transfer += deltaLU
		inv.Read += deltaInv
		inv.Transfer += deltaInv
	}
	total := lu.add(inv)

	flops := total.Mults + total.Adds
	if !opts.TransposeU {
		flops *= transposePenalty
	}
	workers := float64(m0 * c.Node.Cores)
	computeS := flops / (workers * c.Node.Flops)

	ioS := (total.Write + total.Read) * bytesPerElem / (float64(m0) * c.Node.DiskBW)
	netS := total.Transfer * bytesPerElem / (float64(m0) * c.Node.NetBW)

	// Serial master work: one leaf decomposition per recursion leaf.
	d := core.Depth(n, nb)
	leafFlops := 2.0 / 3.0 * math.Pow(float64(min(n, nb)), 3) * 2
	masterS := float64(int(1)<<uint(d)) * leafFlops / c.Node.MasterFlops

	// Serial combine work when separate files are off: after each LU job
	// the master rewrites the level's factors (Section 6.1). Across the
	// recursion tree this reads+writes about 4 n^2 elements in total.
	combineS := 0.0
	if !opts.SeparateFiles {
		combineS = 4 * float64(n) * float64(n) * bytesPerElem * 2 / c.Node.DiskBW
	}

	launchS := float64(core.PipelineJobs(n, nb)) * c.JobLaunch.Seconds()

	return secs(computeS + ioS + netS + masterS + combineS + launchS)
}

// OursWorkerMemory returns the peak bytes a triangular-inversion worker
// holds for an order-n inversion on m0 nodes. Without streaming the
// worker assembles a full factor (n^2 elements); with streaming
// (core.Options.StreamingInversion) it holds one row band of height
// n/(2 m0) plus its n^2/(m0/2) output columns — how the paper's 42 GB
// factors pass through 3.7 GB workers.
func OursWorkerMemory(n, m0 int, streaming bool) float64 {
	n2 := float64(n) * float64(n)
	outputCols := n2 / float64(m0/2) * bytesPerElem
	if !streaming {
		return n2*bytesPerElem + outputCols
	}
	band := n2 / float64(2*m0) * bytesPerElem
	return band + outputCols
}

// SparkTime estimates the Section 8 port: the same pipeline with all
// intermediates held in memory, so the disk component shrinks to the
// one-time input read and final output write (n^2 each) and the network
// component to the shuffle-like band exchanges; job-launch overhead is
// also far smaller on a resident Spark context (no JVM spin-up per job).
func SparkTime(c Cluster, n, nb int) time.Duration {
	m0 := c.Nodes
	lu := OursLU(n, m0)
	inv := OursInversion(n, m0)
	total := lu.add(inv)

	workers := float64(m0 * c.Node.Cores)
	computeS := (total.Mults + total.Adds) / (workers * c.Node.Flops)

	n2 := float64(n) * float64(n)
	ioS := 2 * n2 * bytesPerElem / (float64(m0) * c.Node.DiskBW)
	// Band exchanges still cross the network once per stage.
	netS := total.Transfer * bytesPerElem / (float64(m0) * c.Node.NetBW) / 2

	d := core.Depth(n, nb)
	leafFlops := 2.0 / 3.0 * math.Pow(float64(min(n, nb)), 3) * 2
	masterS := float64(int(1)<<uint(d)) * leafFlops / c.Node.MasterFlops

	const sparkStageLaunch = 1.0 // seconds; resident executors
	launchS := float64(core.PipelineJobs(n, nb)) * sparkStageLaunch

	return secs(computeS + ioS + netS + masterS + launchS)
}

// ScaLAPACK model parameters: a modest single-node advantage from the
// optimized Fortran kernels, a per-step broadcast latency, an aggregate-
// network saturation point, a parallel-efficiency decay (the paper:
// "MapReduce scheduling is more effective than ScaLAPACK at keeping the
// workers busy ... a limitation at high scale"), and a swap factor when
// the per-node working set exceeds RAM.
const (
	scalKernelSpeedup  = 1.3
	scalStepLatencyS   = 5e-4
	scalNetSaturation  = 32.0 // aggregate bandwidth ~ m0/(1+m0/sat) nodes
	scalEffDecay       = 0.006
	scalWorkingSetCopy = 3.0 // A + factors + workspace per node
	scalSwapPenalty    = 4.0
)

// ScaLAPACKWorkingSet returns the per-node bytes the in-memory baseline
// needs for an order-n inversion on m0 nodes: roughly three n^2/m0 panels
// (input, factors, result/workspace). The paper keeps "all intermediate
// data ... in memory".
func ScaLAPACKWorkingSet(n, m0 int) float64 {
	return scalWorkingSetCopy * float64(n) * float64(n) * bytesPerElem / float64(m0)
}

// ScaLAPACKFeasible reports whether the working set fits in node RAM. The
// Figure 8 curves only exist where this holds; the Section 7.4 64-medium
// run of M4 is just past the boundary, which is the ">48 hours" result.
func ScaLAPACKFeasible(c Cluster, n int) bool {
	return ScaLAPACKWorkingSet(n, c.Nodes) <= c.Node.RAM
}

// ScaLAPACKTime estimates inversion time for the MPI baseline.
func ScaLAPACKTime(c Cluster, n int) time.Duration {
	m0 := c.Nodes
	total := ScaLAPACKLU(n, m0).add(ScaLAPACKInversion(n, m0))

	workers := float64(m0 * c.Node.Cores)
	eff := 1 + scalEffDecay*float64(m0)
	computeS := (total.Mults + total.Adds) / (workers * c.Node.Flops * scalKernelSpeedup) * eff

	aggNet := c.Node.NetBW * float64(m0) / (1 + float64(m0)/scalNetSaturation)
	netS := total.Transfer * bytesPerElem / aggNet

	// n pivot/panel broadcast rounds, each a log2(m0)-depth tree.
	syncS := float64(n) * math.Log2(math.Max(2, float64(m0))) * scalStepLatencyS

	ioS := (total.Write + total.Read) * bytesPerElem / (float64(m0) * c.Node.DiskBW)

	s := computeS + netS + syncS + ioS

	// Swap penalty when the distributed working set does not fit in RAM.
	if ws := ScaLAPACKWorkingSet(n, m0); ws > c.Node.RAM {
		s *= scalSwapPenalty * (ws / c.Node.RAM)
	}
	return secs(s)
}

func secs(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
