package costmodel

import (
	"testing"

	"repro/internal/core"
)

// At paper scale the transfer saving dwarfs the extra job launch, so the
// model must select the replicated strategy automatically; at laptop
// scale the 30 s launch dominates and single-round must win.
func TestChooseMultiplySelectsByScale(t *testing.T) {
	c := NewCluster(Medium, 64)
	big := ChooseMultiply(c, 102400, 102400, 102400, 0)
	if big.Strategy != core.MultiplyReplicated {
		t.Fatalf("n=102400: chose %s (%s), want replicated", big.Strategy, big.Reason)
	}
	if big.Rho < 2 || 64%big.Rho != 0 {
		t.Fatalf("n=102400: rho = %d", big.Rho)
	}
	small := ChooseMultiply(c, 2048, 2048, 2048, 0)
	if small.Strategy != core.MultiplySingleRound {
		t.Fatalf("n=2048: chose %s (%s), want single-round", small.Strategy, small.Reason)
	}
	if small.Rho != 0 {
		t.Fatalf("n=2048: rho = %d, want 0", small.Rho)
	}
	// Predictions cover the compared strategies.
	if _, ok := big.Predicted[core.MultiplySingleRound]; !ok {
		t.Fatal("no single-round prediction at big n")
	}
	if big.Predicted[core.MultiplyReplicated] >= big.Predicted[core.MultiplySingleRound] {
		t.Fatal("replicated chosen but predicted slower")
	}
}

// A tight per-reducer memory budget forces the space-round strategy with
// a rho whose working set fits.
func TestChooseMultiplyMemoryBudget(t *testing.T) {
	c := NewCluster(Medium, 16)
	const n = 40960
	unbounded := ChooseMultiply(c, n, n, n, 0)
	full := multiplyCandidate{strategy: core.MultiplySingleRound, g1: 8, g2: 2, rho: 1}.
		reducerBytes(n, n, n)
	choice := ChooseMultiply(c, n, n, n, full/3)
	if choice.Strategy != core.MultiplySpaceRound {
		t.Fatalf("budget %0.f: chose %s (%s), want space-round", full/3, choice.Strategy, choice.Reason)
	}
	if choice.Rho < 2 {
		t.Fatalf("rho = %d", choice.Rho)
	}
	if choice.ReducerBytes > full/3 {
		t.Fatalf("working set %.0f over budget %.0f", choice.ReducerBytes, full/3)
	}
	_ = unbounded
}

// The modeled transfer of the replicated grid must be strictly below the
// single-round coefficient whenever g1+g2+rho-1 < f1+f2 — the inequality
// the CI gate measures for real.
func TestMultiplyCandidateTransferModel(t *testing.T) {
	const n = 4096
	single := multiplyCandidate{strategy: core.MultiplySingleRound, g1: 4, g2: 4, rho: 1}
	repl := multiplyCandidate{strategy: core.MultiplyReplicated, g1: 2, g2: 2, rho: 4}
	s := single.transferElems(n, n, n)
	r := repl.transferElems(n, n, n)
	n2 := float64(n) * float64(n)
	if s != 8*n2 {
		t.Fatalf("single-round transfer = %.0f n^2, want 8 n^2", s/n2)
	}
	if r != 7*n2 {
		t.Fatalf("replicated transfer = %.0f n^2, want 7 n^2", r/n2)
	}
	// Space-round halves the reducer working set at rho=2 (minus the
	// fixed output block).
	sr := multiplyCandidate{strategy: core.MultiplySpaceRound, g1: 4, g2: 4, rho: 2}
	if sr.reducerBytes(n, n, n) >= single.reducerBytes(n, n, n) {
		t.Fatal("space-round does not shrink the working set")
	}
	if sr.transferElems(n, n, n) != s {
		t.Fatal("space-round transfer should match single-round")
	}
}

func TestMultiplyChoiceApply(t *testing.T) {
	opts := core.DefaultOptions(64)
	ChooseMultiply(NewCluster(Medium, 64), 102400, 102400, 102400, 0).Apply(&opts)
	if opts.Multiply != core.MultiplyReplicated || opts.MultiplyRho < 2 {
		t.Fatalf("applied opts: %s rho=%d", opts.Multiply, opts.MultiplyRho)
	}
	if err := opts.Validate(); err != nil {
		t.Fatal(err)
	}
}

// When no candidate fits the budget at all, the fallback still returns a
// space-round plan with the deepest feasible rho rather than failing.
func TestChooseMultiplyImpossibleBudget(t *testing.T) {
	c := NewCluster(Medium, 16)
	choice := ChooseMultiply(c, 4096, 4096, 4096, 1)
	if choice.Strategy != core.MultiplySpaceRound {
		t.Fatalf("impossible budget: chose %s, want space-round", choice.Strategy)
	}
	if choice.Rho != 64 {
		t.Fatalf("impossible budget: rho = %d, want 64", choice.Rho)
	}
	if choice.Reason == "" || choice.Predicted[core.MultiplySpaceRound] == 0 {
		t.Fatal("fallback missing reason or prediction")
	}
}
