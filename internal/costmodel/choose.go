package costmodel

import (
	"fmt"
	"time"
)

// Engine selection and bound-value tuning — the paper's Section 8 second
// future-work item ("implement a system to adaptively choose the best
// matrix inversion technique for an input matrix") and the Section 5
// discussion of how to pick nb.

// Engine identifies one of the three inverters.
type Engine string

const (
	EngineLocal     Engine = "local"
	EngineMapReduce Engine = "mapreduce"
	EngineScaLAPACK Engine = "scalapack"
)

// Choice is the outcome of engine selection.
type Choice struct {
	Engine    Engine
	Reason    string
	Predicted map[Engine]time.Duration
}

// SingleNodeTime estimates inverting an order-n matrix on one node with
// the optimized local kernel (no distribution overheads, bounded by RAM).
func SingleNodeTime(node NodeSpec, n int) (time.Duration, bool) {
	mem := 3 * float64(n) * float64(n) * bytesPerElem // A, LU, inverse
	if mem > node.RAM {
		return 0, false
	}
	flops := 2 * float64(n) * float64(n) * float64(n) // n^3 mults + adds
	return secs(flops / node.MasterFlops), true
}

// ChooseEngine picks the fastest feasible inverter for an order-n matrix
// on the given cluster, using the calibrated models.
func ChooseEngine(c Cluster, n, nb int) Choice {
	pred := map[Engine]time.Duration{}

	if t, ok := SingleNodeTime(c.Node, n); ok {
		pred[EngineLocal] = t
	}
	pred[EngineMapReduce] = OursTime(c, n, nb, AllOpts)
	if ScaLAPACKFeasible(c, n) {
		pred[EngineScaLAPACK] = ScaLAPACKTime(c, n)
	}

	best := EngineMapReduce
	for e, t := range pred {
		if t < pred[best] {
			best = e
		}
	}
	reason := fmt.Sprintf("predicted %s for n=%d on %d %s nodes", FormatDuration(pred[best]), n, c.Nodes, c.Node.Name)
	switch {
	case best == EngineLocal:
		reason = "matrix fits one node and avoids all distribution overhead; " + reason
	case best == EngineScaLAPACK:
		reason = "in-memory MPI baseline is fastest at this scale; " + reason
	case !ScaLAPACKFeasible(c, n):
		reason = "ScaLAPACK working set exceeds node RAM; MapReduce pipeline streams through HDFS; " + reason
	default:
		reason = "MapReduce pipeline wins on aggregate I/O and scheduling at this scale; " + reason
	}
	return Choice{Engine: best, Reason: reason, Predicted: pred}
}

// OptimalNB sweeps the bound value and returns the nb minimizing the
// modeled pipeline time for an order-n matrix on cluster c. The paper's
// guidance (Section 5): nb should make a master-node leaf decomposition
// take about as long as a MapReduce job launch; their measured choice on
// EC2 was 3200.
func OptimalNB(c Cluster, n int) int {
	bestNB, bestT := 0, time.Duration(0)
	for nb := 200; nb <= 25600; nb *= 2 {
		t := OursTime(c, n, nb, AllOpts)
		if bestNB == 0 || t < bestT {
			bestNB, bestT = nb, t
		}
	}
	return bestNB
}

// LeafTime returns the modeled master-node decomposition time of one leaf
// of order nb — the quantity the paper balances against JobLaunch.
func LeafTime(node NodeSpec, nb int) time.Duration {
	flops := 2.0 / 3.0 * float64(nb) * float64(nb) * float64(nb) * 2
	return secs(flops / node.MasterFlops)
}
