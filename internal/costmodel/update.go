package costmodel

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// Update-vs-full routing for the incremental inversion path
// (internal/incr): when a serve-layer cache miss finds a base inverse
// a rank-k delta away, should the request take the O(kn²)
// Sherman–Morrison–Woodbury update — and if so, sequentially on the
// master or with the large passes distributed — or just rerun the full
// O(n³) pipeline? Like ChooseQR, the decision is a pure function of
// (n, k, cluster, load) so identical requests always take the same
// path.

// UpdateStrategy identifies one of the incremental-path outcomes.
type UpdateStrategy string

const (
	// UpdateFull rejects the incremental path: run the full pipeline.
	UpdateFull UpdateStrategy = "full"
	// UpdateSequential applies SMW on the master.
	UpdateSequential UpdateStrategy = "sequential"
	// UpdateDistributed applies SMW with the n×k and rank-k passes as
	// MapReduce multiply jobs.
	UpdateDistributed UpdateStrategy = "distributed"
)

// MaxUpdateFraction gates the delta rank: beyond k > n/MaxUpdateFraction
// the ~4kn² update flops close in on the pipeline's ~2n³ while the
// capacitance conditioning risk grows with k, so the update is refused
// outright.
const MaxUpdateFraction = 4

// simJobLaunch stands in for Cluster.JobLaunch when the model runs
// against the in-process simulated cluster (ServingCluster sets
// JobLaunch to zero because pipeline jobs amortize it, but each SMW
// pass is one small job whose fixed cost — spinning up the map/reduce
// attempts plus pushing the operands through the simulated DFS — would
// otherwise be invisible to the model and make "distributed" win at
// sizes where it measurably loses). Calibrated against measured
// per-job cost of serving-scale multiplies (mrbench -exp incr: a
// 256-order multiply job runs ~50ms in-process, far above its flops).
const simJobLaunch = 20 * time.Millisecond

// updateFlops is the SMW arithmetic: two n×k passes against A⁻¹
// (2·2kn²), the rank-k correction (2kn²), and the k×k capacitance
// solve (~(2/3)k³ + 2k²n, kept for honesty though it never decides).
func updateFlops(n, k int) float64 {
	nf, kf := float64(n), float64(k)
	return 6*kf*nf*nf + 2*kf*kf*nf + (2.0/3.0)*kf*kf*kf
}

// SequentialUpdateTime models the SMW update on the master kernel.
func SequentialUpdateTime(node NodeSpec, n, k int) time.Duration {
	return secs(updateFlops(n, k) / node.MasterFlops)
}

// DistributedUpdateTime models the SMW update with its three large
// passes as multiply jobs: parallel flops, the shuffle of the n×k
// operands, and three job launches.
func DistributedUpdateTime(c Cluster, n, k int) time.Duration {
	workers := float64(c.Nodes) * c.Node.Flops
	transfer := 3 * 2 * float64(n) * float64(k) * bytesPerElem / c.Node.NetBW
	launch := c.JobLaunch
	if launch <= 0 {
		launch = simJobLaunch
	}
	return secs(updateFlops(n, k)/workers+transfer) + 3*launch
}

// UpdateChoice is the outcome of update-vs-full selection.
type UpdateChoice struct {
	Strategy  UpdateStrategy
	Reason    string
	Predicted map[UpdateStrategy]time.Duration
}

// Incremental reports whether the choice takes the SMW path at all.
func (u UpdateChoice) Incremental() bool { return u.Strategy != UpdateFull }

// ChooseUpdate picks between the full pipeline and the two SMW update
// paths for an order-n request whose delta against a cached base has
// rank k. queued is the serving layer's current admission-queue depth:
// cluster-hosted work (the full pipeline and the distributed update)
// queues behind it, while the sequential update runs on the master
// immediately, so load shifts the crossover toward the sequential
// path.
func ChooseUpdate(c Cluster, n, k, nb, queued int) UpdateChoice {
	load := 1 + float64(queued)/float64(max(1, c.Nodes))
	full := OursTime(c, n, nb, AllOpts)
	if c.JobLaunch <= 0 {
		// The simulated cluster pays the same per-job orchestration
		// overhead on every path; OursTime's launch term is zero there,
		// so add the same floor the distributed update is charged.
		full += time.Duration(core.PipelineJobs(n, nb)) * simJobLaunch
	}
	pred := map[UpdateStrategy]time.Duration{
		UpdateSequential:  SequentialUpdateTime(c.Node, n, k),
		UpdateDistributed: scale(DistributedUpdateTime(c, n, k), load),
		UpdateFull:        scale(full, load),
	}
	if k <= 0 || k*MaxUpdateFraction > n {
		return UpdateChoice{
			Strategy: UpdateFull,
			Reason: fmt.Sprintf("delta rank %d beyond n/%d of order %d: update flops approach the pipeline's",
				k, MaxUpdateFraction, n),
			Predicted: pred,
		}
	}
	best := UpdateSequential
	if pred[UpdateDistributed] < pred[best] {
		best = UpdateDistributed
	}
	if pred[UpdateFull] < pred[best] {
		best = UpdateFull
	}
	reason := fmt.Sprintf("predicted %s (sequential %s, distributed %s, full %s) for n=%d k=%d on %d nodes, queue %d",
		FormatDuration(pred[best]), FormatDuration(pred[UpdateSequential]),
		FormatDuration(pred[UpdateDistributed]), FormatDuration(pred[UpdateFull]),
		n, k, c.Nodes, queued)
	return UpdateChoice{Strategy: best, Reason: reason, Predicted: pred}
}

func scale(d time.Duration, f float64) time.Duration {
	return time.Duration(float64(d) * f)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
