package core

import (
	"testing"

	"repro/internal/lu"
	"repro/internal/matrix"
	"repro/internal/workload"
)

// decomposeForTest runs the decomposition stages and returns the handle
// plus the pipeline for white-box factor access.
func decomposeForTest(t *testing.T, n, nb, nodes int, seed int64) (*Pipeline, *luHandle, *matrix.Dense) {
	t.Helper()
	a := workload.Random(n, seed)
	opts := DefaultOptions(nodes)
	opts.NB = nb
	p, err := NewPipeline(opts)
	if err != nil {
		t.Fatal(err)
	}
	st := &pipelineState{opts: p.Opts, fs: p.FS, cluster: p.Cluster}
	if err := writeInputBands(p.FS, p.Opts, a, p.Opts.Nodes); err != nil {
		t.Fatal(err)
	}
	pj, err := p.Cluster.Run(partitionJob(p.Opts, n, p.FS))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := buildInputTree(p.Opts, n, pj.Output)
	if err != nil {
		t.Fatal(err)
	}
	hd, err := st.computeLU(tree)
	if err != nil {
		t.Fatal(err)
	}
	return p, hd, a
}

func TestReadLRowsMatchesFull(t *testing.T) {
	p, hd, _ := decomposeForTest(t, 72, 16, 4, 2001)
	rd := masterReader(p.FS)
	full, err := hd.readL(rd)
	if err != nil {
		t.Fatal(err)
	}
	for _, band := range [][2]int{{0, 72}, {0, 10}, {30, 45}, {60, 72}, {35, 37}, {5, 5}} {
		got, err := hd.readLRows(rd, band[0], band[1])
		if err != nil {
			t.Fatalf("band %v: %v", band, err)
		}
		want := full.Block(band[0], band[1], 0, 72)
		if !matrix.Equal(got, want, 0) {
			t.Fatalf("band %v differs", band)
		}
	}
	if _, err := hd.readLRows(rd, -1, 5); err == nil {
		t.Fatal("negative band accepted")
	}
}

func TestReadUTRowsMatchesFull(t *testing.T) {
	p, hd, _ := decomposeForTest(t, 72, 16, 4, 2002)
	rd := masterReader(p.FS)
	u, err := hd.readU(rd)
	if err != nil {
		t.Fatal(err)
	}
	ut := u.Transpose()
	for _, band := range [][2]int{{0, 72}, {0, 9}, {33, 41}, {70, 72}} {
		got, err := hd.readUTRows(rd, band[0], band[1])
		if err != nil {
			t.Fatalf("band %v: %v", band, err)
		}
		want := ut.Block(band[0], band[1], 0, 72)
		if !matrix.Equal(got, want, 0) {
			t.Fatalf("band %v differs", band)
		}
	}
}

func TestStreamLowerInverseColumns(t *testing.T) {
	n := 48
	a := workload.DiagonallyDominant(n, 2003)
	f, err := lu.Decompose(a)
	if err != nil {
		t.Fatal(err)
	}
	l := f.L()
	cols := []int{0, 5, 17, 46, 47}
	want := matrix.New(n, n)
	for _, c := range cols {
		lu.InvertLowerColumn(l, c, true, want)
	}
	for _, band := range []int{1, 5, 16, 100} {
		got, st, err := streamLowerInverseColumns(func(r0, r1 int) (*matrix.Dense, error) {
			return l.Block(r0, r1, 0, n), nil
		}, n, cols, true, band)
		if err != nil {
			t.Fatal(err)
		}
		for bi, c := range cols {
			for r := 0; r < n; r++ {
				if got.At(r, bi) != want.At(r, c) {
					t.Fatalf("band=%d: column %d row %d differs", band, c, r)
				}
			}
		}
		if st.bands != (n+band-1)/band {
			t.Fatalf("band=%d: %d bands", band, st.bands)
		}
	}
}

func TestStreamingPeakMemoryBounded(t *testing.T) {
	// The streaming pass must never hold the full n x n factor: with band
	// height n/8 and 2 output columns its peak is (n/8)*n + 2n elements,
	// far below n^2.
	n := 64
	a := workload.DiagonallyDominant(n, 2004)
	f, err := lu.Decompose(a)
	if err != nil {
		t.Fatal(err)
	}
	l := f.L()
	_, st, err := streamLowerInverseColumns(func(r0, r1 int) (*matrix.Dense, error) {
		return l.Block(r0, r1, 0, n), nil
	}, n, []int{3, 40}, true, n/8)
	if err != nil {
		t.Fatal(err)
	}
	limit := (n/8)*n + 2*n + n // band + columns + slack
	if st.peakElems > limit {
		t.Fatalf("peak %d elements exceeds bound %d", st.peakElems, limit)
	}
	if st.peakElems >= n*n {
		t.Fatal("streaming held a full factor")
	}
}

func TestStreamingInversionEndToEnd(t *testing.T) {
	n := 80
	a := workload.Random(n, 2005)
	want, err := lu.Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(4)
	opts.NB = 20
	opts.StreamingInversion = true
	p, err := NewPipeline(opts)
	if err != nil {
		t.Fatal(err)
	}
	got, rep, err := p.Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(got, want); d > 1e-7 {
		t.Fatalf("streaming inverse differs by %g", d)
	}
	if rep.JobsRun != PipelineJobs(n, opts.NB) {
		t.Fatalf("jobs = %d", rep.JobsRun)
	}
}

func TestStreamingMatchesInMemoryBitForBit(t *testing.T) {
	n := 64
	a := workload.Random(n, 2006)
	run := func(streaming bool) *matrix.Dense {
		opts := DefaultOptions(4)
		opts.NB = 16
		opts.StreamingInversion = streaming
		p, err := NewPipeline(opts)
		if err != nil {
			t.Fatal(err)
		}
		inv, _, err := p.Invert(a)
		if err != nil {
			t.Fatal(err)
		}
		return inv
	}
	mem := run(false)
	str := run(true)
	if !matrix.Equal(mem, str, 0) {
		t.Fatal("streaming and in-memory inversions must agree exactly (same arithmetic order)")
	}
}
