package core

import (
	"testing"

	"repro/internal/dfs"
	"repro/internal/matrix"
	"repro/internal/workload"
)

func TestPermRoundTrip(t *testing.T) {
	fs := dfs.New(2, 1)
	p := matrix.Perm{3, 1, 0, 2}
	if err := writePerm(fs, "p.bin", p); err != nil {
		t.Fatal(err)
	}
	got, err := readPerm(fs, "p.bin")
	if err != nil {
		t.Fatal(err)
	}
	for i := range p {
		if got[i] != p[i] {
			t.Fatalf("perm = %v, want %v", got, p)
		}
	}
}

func TestReadPermErrors(t *testing.T) {
	fs := dfs.New(1, 1)
	if _, err := readPerm(fs, "missing"); err == nil {
		t.Fatal("missing file accepted")
	}
	fs.Write("bad", []byte{1, 2, 3, 4, 5, 6, 7, 8})
	if _, err := readPerm(fs, "bad"); err == nil {
		t.Fatal("bad magic accepted")
	}
	// A "permutation" with a repeated entry must be rejected.
	if err := writePerm(fs, "dup.bin", matrix.Perm{0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := readPerm(fs, "dup.bin"); err == nil {
		t.Fatal("invalid permutation accepted")
	}
}

func TestIndexedBlockRoundTrip(t *testing.T) {
	fs := dfs.New(2, 1)
	b := indexedBlock{
		RowIdx: []int{1, 4, 7},
		ColIdx: []int{0, 5},
		Data:   workload.RandomRect(3, 2, 81),
	}
	if err := writeIndexed(fs, "blk", b); err != nil {
		t.Fatal(err)
	}
	got, err := readIndexed(masterReader(fs), "blk")
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(got.Data, b.Data, 0) {
		t.Fatal("payload differs")
	}
	for i := range b.RowIdx {
		if got.RowIdx[i] != b.RowIdx[i] {
			t.Fatalf("RowIdx = %v", got.RowIdx)
		}
	}
	for i := range b.ColIdx {
		if got.ColIdx[i] != b.ColIdx[i] {
			t.Fatalf("ColIdx = %v", got.ColIdx)
		}
	}
}

func TestIndexedBlockNilIndices(t *testing.T) {
	fs := dfs.New(1, 1)
	b := indexedBlock{Data: workload.RandomRect(4, 4, 82)}
	if err := writeIndexed(fs, "blk", b); err != nil {
		t.Fatal(err)
	}
	got, err := readIndexed(masterReader(fs), "blk")
	if err != nil {
		t.Fatal(err)
	}
	if got.RowIdx != nil || got.ColIdx != nil {
		t.Fatal("nil indices must stay nil")
	}
	if !matrix.Equal(got.Data, b.Data, 0) {
		t.Fatal("payload differs")
	}
}

func TestWriteIndexedShapeMismatch(t *testing.T) {
	fs := dfs.New(1, 1)
	b := indexedBlock{RowIdx: []int{1}, Data: matrix.New(2, 2)}
	if err := writeIndexed(fs, "x", b); err == nil {
		t.Fatal("row index mismatch accepted")
	}
	b = indexedBlock{ColIdx: []int{1, 2, 3}, Data: matrix.New(2, 2)}
	if err := writeIndexed(fs, "x", b); err == nil {
		t.Fatal("col index mismatch accepted")
	}
}

func TestReadIndexedCorrupt(t *testing.T) {
	fs := dfs.New(1, 1)
	fs.Write("junk", []byte("definitely not a block"))
	if _, err := readIndexed(masterReader(fs), "junk"); err == nil {
		t.Fatal("corrupt block accepted")
	}
	if _, err := readIndexed(masterReader(fs), "absent"); err == nil {
		t.Fatal("missing block accepted")
	}
}
