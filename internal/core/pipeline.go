package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/dfs"
	"repro/internal/mapreduce"
	"repro/internal/matrix"
	"repro/internal/obs"
)

// Pipeline is the paper's end-to-end matrix inverter: it owns a simulated
// cluster (MapReduce engine + distributed file system) and runs the
// Figure 2 job pipeline — partition, 2^d - 1 block-LU jobs, and the final
// triangular-inversion job — against it.
type Pipeline struct {
	Opts    Options
	FS      *dfs.FS
	Cluster *mapreduce.Cluster
	// Tracer, when non-nil, records a hierarchical span tree for each run:
	// one pipeline root, one span per MapReduce job with byte attribution,
	// and op spans for master-side work. Nil costs nothing.
	Tracer *obs.Tracer
	// Metrics, when non-nil, receives DFS and engine counters.
	Metrics *obs.Registry
}

// attachObs wires the pipeline's observability hooks into the layers it
// owns. Called at the top of each run entry point; idempotent.
func (p *Pipeline) attachObs() {
	if p.Tracer != nil {
		p.Cluster.Tracer = p.Tracer
	}
	if p.Metrics != nil {
		p.Cluster.Metrics = p.Metrics
		p.FS.SetMetrics(p.Metrics)
	}
}

// finishSpanErr closes a span that ends in failure.
func finishSpanErr(span *obs.Span, err error) {
	if span == nil {
		return
	}
	span.SetLabel("error", err.Error())
	span.Finish()
}

// JobSummary is one executed MapReduce job's line in the report.
type JobSummary struct {
	Name        string
	MapTasks    int
	ReduceTasks int
	Failures    int
	Elapsed     time.Duration
}

// Report summarizes one inversion run.
type Report struct {
	Order          int
	NB             int
	Nodes          int
	Depth          int
	F1, F2         int
	JobsRun        int              // MapReduce jobs executed
	ExpectedJobs   int              // PipelineJobs(n, nb)
	MapTasks       int              // total map tasks across jobs
	ReduceTasks    int              // total reduce tasks across jobs
	TaskFailures   int              // failed task attempts (recovered)
	Speculative    int              // speculative backup attempts launched
	LostMapOutputs int              // completed map outputs lost to node deaths and re-executed
	FetchRetries   int              // shuffle-fetch retries (transient errors, dying nodes)
	MasterLUs      int              // leaf decompositions on the master
	MasterCombines int              // file combinations (SeparateFiles=false)
	LFactorFiles   int              // files storing L (N(d) when separate)
	Counters       map[string]int64 // Hadoop-style counters across all jobs
	Jobs           []JobSummary     // per-job breakdown in execution order
	FS             dfs.Stats        // byte accounting deltas for this run
	Elapsed        time.Duration    // wall-clock for the whole pipeline
	JobElapsed     time.Duration    // sum of per-job recorded times
	SlotWait       time.Duration    // cumulative time task attempts queued for cluster slots
	SlotGrants     int64            // slots granted across the run's task attempts
	Trace          *obs.Span        // root span of the run (nil when not traced)
}

// pipelineState threads the shared pieces through the recursion.
type pipelineState struct {
	opts    Options
	fs      *dfs.FS
	cluster *mapreduce.Cluster
	ctx     context.Context // run cancellation; never nil
	span    *obs.Span       // run root span; nil when tracing is off

	jobsRun              int
	jobLog               []JobSummary
	mapTasks             int
	reduceTasks          int
	taskFailures         int
	speculative          int
	lostMapOutputs       int
	fetchRetries         int
	masterDecompositions int
	masterCombines       int
	counters             map[string]int64
	jobElapsed           time.Duration
	slotWait             time.Duration
	slotGrants           int64
}

// runCtx returns the run's cancellation context, defaulting to Background
// for callers (and tests) that build a pipelineState without one.
func (st *pipelineState) runCtx() context.Context {
	if st.ctx == nil {
		return context.Background()
	}
	return st.ctx
}

func (st *pipelineState) recordJob(jr *mapreduce.JobResult) {
	st.jobsRun++
	st.jobLog = append(st.jobLog, JobSummary{
		Name:        jr.Job,
		MapTasks:    jr.MapTasks,
		ReduceTasks: jr.ReduceTasks,
		Failures:    jr.TaskFailures,
		Elapsed:     jr.Elapsed,
	})
	st.mapTasks += jr.MapTasks
	st.reduceTasks += jr.ReduceTasks
	st.taskFailures += jr.TaskFailures
	st.speculative += jr.SpeculativeTasks
	st.lostMapOutputs += jr.LostMapOutputs
	st.fetchRetries += jr.FetchRetries
	st.jobElapsed += jr.Elapsed
	st.slotWait += jr.SlotWait
	st.slotGrants += jr.SlotGrants
	if st.counters == nil {
		st.counters = map[string]int64{}
	}
	for k, v := range jr.Counters {
		st.counters[k] += v
	}
}

// NewPipeline builds a pipeline with its own simulated cluster: opts.Nodes
// task slots over opts.Nodes datanodes with HDFS-style 3x replication.
func NewPipeline(opts Options) (*Pipeline, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	fs := dfs.New(opts.Nodes, dfs.DefaultReplication)
	cl := mapreduce.NewCluster(fs, opts.Nodes)
	return &Pipeline{Opts: opts, FS: fs, Cluster: cl}, nil
}

// NewPipelineOn builds a pipeline over an existing file system and
// cluster, so callers can share state, inject failures, or configure
// launch overhead.
func NewPipelineOn(opts Options, fs *dfs.FS, cl *mapreduce.Cluster) (*Pipeline, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Pipeline{Opts: opts, FS: fs, Cluster: cl}, nil
}

// Invert computes A^-1 through the MapReduce pipeline and reports on the
// run. The input must be square and nonsingular (and every diagonal block
// the recursion factors must be nonsingular — the block method pivots
// only within blocks, see DESIGN.md).
func (p *Pipeline) Invert(a *matrix.Dense) (*matrix.Dense, *Report, error) {
	return p.InvertCtx(context.Background(), a)
}

// InvertCtx is Invert with a cancellation context: the pipeline observes
// ctx cooperatively between recursion levels and between the map, shuffle,
// and reduce phases of each MapReduce job (the granularity at which a real
// Hadoop job tracker kills a job). An already-expired ctx returns before
// any cluster work is scheduled.
func (p *Pipeline) InvertCtx(ctx context.Context, a *matrix.Dense) (*matrix.Dense, *Report, error) {
	if a == nil {
		return nil, nil, fmt.Errorf("core: Invert: %w", ErrNilMatrix)
	}
	if !a.IsSquare() {
		return nil, nil, fmt.Errorf("core: Invert: input is %dx%d: %w", a.Rows, a.Cols, ErrNotSquare)
	}
	if a.Rows == 0 {
		return matrix.New(0, 0), &Report{}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	//mrlint:allow determinism(time.Now) -- wall time feeds Report.Elapsed and obs spans only; output bytes are clock-free
	start := time.Now()
	p.attachObs()
	st := &pipelineState{opts: p.Opts, fs: p.FS, cluster: p.Cluster, ctx: ctx}
	n := a.Rows
	statsBefore := p.FS.Stats()
	var ioBefore []dfs.NodeIO
	st.span = p.Tracer.StartSpan("pipeline.invert", obs.KindPipeline)
	if st.span != nil {
		st.span.SetAttr("order", int64(n))
		st.span.SetAttr("nb", int64(p.Opts.NB))
		st.span.SetAttr("nodes", int64(p.Opts.Nodes))
		st.span.SetAttr("depth", int64(Depth(n, p.Opts.NB)))
		ioBefore = p.FS.PerNodeIO()
	}

	// Stage 0 (master): store the input and the Section 5.1 control files.
	wspan := st.span.Child("write_input", obs.KindOp)
	if err := writeInputBands(p.FS, p.Opts, a, p.Opts.Nodes); err != nil {
		finishSpanErr(st.span, err)
		return nil, nil, err
	}
	for j := 0; j < p.Opts.Nodes; j++ {
		p.FS.Write(controlFilePath(p.Opts.Root, j), []byte(fmt.Sprintf("%d", j)))
	}
	wspan.Finish()

	// Stage 1: partition job (map-only).
	pjob := partitionJob(p.Opts, n, p.FS)
	pjob.TraceParent = st.span
	pj, err := p.Cluster.RunCtx(ctx, pjob)
	if err != nil {
		finishSpanErr(st.span, err)
		return nil, nil, err
	}
	st.recordJob(pj)
	tree, err := buildInputTree(p.Opts, n, pj.Output)
	if err != nil {
		finishSpanErr(st.span, err)
		return nil, nil, err
	}

	// Stage 2: block LU decomposition (2^d - 1 jobs).
	hd, err := st.computeLU(tree)
	if err != nil {
		finishSpanErr(st.span, err)
		return nil, nil, err
	}

	// Stage 3: triangular inversion and final output job.
	inv, err := st.runInvertJob(hd)
	if err != nil {
		finishSpanErr(st.span, err)
		return nil, nil, err
	}

	after := p.FS.Stats()
	if st.span != nil {
		// Root-span byte attrs mirror Report.FS exactly: the trace and the
		// report agree on a run's byte accounting by construction.
		st.span.SetAttr("jobs", int64(st.jobsRun))
		st.span.SetAttr("dfs.bytes_read", after.BytesRead-statsBefore.BytesRead)
		st.span.SetAttr("dfs.bytes_written", after.BytesWritten-statsBefore.BytesWritten)
		st.span.SetAttr("dfs.bytes_transferred", after.BytesTransferred-statsBefore.BytesTransferred)
		st.span.SetAttr("dfs.files_created", after.FilesCreated-statsBefore.FilesCreated)
		for i, nio := range p.FS.PerNodeIO() {
			r, w := nio.BytesRead, nio.BytesWritten
			if i < len(ioBefore) {
				r -= ioBefore[i].BytesRead
				w -= ioBefore[i].BytesWritten
			}
			st.span.SetAttr(fmt.Sprintf("dfs.node%d.bytes_read", nio.Node), r)
			st.span.SetAttr(fmt.Sprintf("dfs.node%d.bytes_written", nio.Node), w)
		}
		st.span.Finish()
	}
	rep := &Report{
		Order:          n,
		NB:             p.Opts.NB,
		Nodes:          p.Opts.Nodes,
		Depth:          Depth(n, p.Opts.NB),
		JobsRun:        st.jobsRun,
		ExpectedJobs:   PipelineJobs(n, p.Opts.NB),
		MapTasks:       st.mapTasks,
		ReduceTasks:    st.reduceTasks,
		TaskFailures:   st.taskFailures,
		Speculative:    st.speculative,
		LostMapOutputs: st.lostMapOutputs,
		FetchRetries:   st.fetchRetries,
		MasterLUs:      st.masterDecompositions,
		Counters:       st.counters,
		Jobs:           st.jobLog,
		MasterCombines: st.masterCombines,
		LFactorFiles:   hd.fileCount(),
		Elapsed:        time.Since(start),
		JobElapsed:     st.jobElapsed,
		SlotWait:       st.slotWait,
		SlotGrants:     st.slotGrants,
		Trace:          st.span,
		FS: dfs.Stats{
			BytesWritten:      after.BytesWritten - statsBefore.BytesWritten,
			BytesReplicated:   after.BytesReplicated - statsBefore.BytesReplicated,
			BytesRead:         after.BytesRead - statsBefore.BytesRead,
			BytesTransferred:  after.BytesTransferred - statsBefore.BytesTransferred,
			FilesCreated:      after.FilesCreated - statsBefore.FilesCreated,
			ReadOps:           after.ReadOps - statsBefore.ReadOps,
			WriteOps:          after.WriteOps - statsBefore.WriteOps,
			ReplicasLost:      after.ReplicasLost - statsBefore.ReplicasLost,
			ReReplications:    after.ReReplications - statsBefore.ReReplications,
			BytesReReplicated: after.BytesReReplicated - statsBefore.BytesReReplicated,
		},
	}
	rep.F1, rep.F2 = FactorPair(p.Opts.Nodes)
	if !p.Opts.BlockWrap {
		rep.F1, rep.F2 = p.Opts.Nodes, 1
	}
	return inv, rep, nil
}

// Determinant computes det(A) through the pipeline's decomposition:
// det(A) = sign(P) · prod(diag U), since PA = LU, L is unit triangular,
// and a permutation's sign equals its inverse's.
func (p *Pipeline) Determinant(a *matrix.Dense) (float64, error) {
	perm, _, u, err := p.Decompose(a)
	if err != nil {
		return 0, err
	}
	det := float64(perm.Sign())
	for i := 0; i < u.Rows; i++ {
		det *= u.At(i, i)
	}
	return det, nil
}

// Decompose runs only the partition and block-LU stages, returning the
// assembled factors P, L, U with P A = L U. It exists for callers (and
// tests) that need the decomposition itself rather than the inverse.
func (p *Pipeline) Decompose(a *matrix.Dense) (perm matrix.Perm, l, u *matrix.Dense, err error) {
	if !a.IsSquare() {
		return nil, nil, nil, fmt.Errorf("core: Decompose: input is %dx%d, not square", a.Rows, a.Cols)
	}
	p.attachObs()
	st := &pipelineState{opts: p.Opts, fs: p.FS, cluster: p.Cluster, ctx: context.Background()}
	st.span = p.Tracer.StartSpan("pipeline.decompose", obs.KindPipeline)
	defer st.span.Finish()
	n := a.Rows
	if err := writeInputBands(p.FS, p.Opts, a, p.Opts.Nodes); err != nil {
		return nil, nil, nil, err
	}
	pjob := partitionJob(p.Opts, n, p.FS)
	pjob.TraceParent = st.span
	pj, err := p.Cluster.Run(pjob)
	if err != nil {
		return nil, nil, nil, err
	}
	st.recordJob(pj)
	tree, err := buildInputTree(p.Opts, n, pj.Output)
	if err != nil {
		return nil, nil, nil, err
	}
	hd, err := st.computeLU(tree)
	if err != nil {
		return nil, nil, nil, err
	}
	rd := masterReader(p.FS)
	l, err = hd.readL(rd)
	if err != nil {
		return nil, nil, nil, err
	}
	u, err = hd.readU(rd)
	if err != nil {
		return nil, nil, nil, err
	}
	return hd.p, l, u, nil
}
