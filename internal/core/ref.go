package core

import (
	"fmt"

	"repro/internal/dfs"
	"repro/internal/matrix"
)

// blockFile records that a stored file holds the submatrix covering rows
// [R0, R1) and columns [C0, C1) of some enclosing coordinate frame.
type blockFile struct {
	Path           string
	R0, R1, C0, C1 int
	// Transposed marks files stored in transposed orientation (the
	// Section 6.3 U^T layout): the file's contents are the transpose of
	// the region it covers.
	Transposed bool
}

func (b blockFile) rows() int { return b.R1 - b.R0 }
func (b blockFile) cols() int { return b.C1 - b.C0 }

// matRef is a logical submatrix: a coordinate frame of Rows x Cols backed
// by block files. It is the in-memory form of the paper's Section 5.2
// partition index for B = A4 - L2'U2: "we only record the indices of the
// beginning and ending row, and the beginning and ending column, of each
// partition ... and the names of the files storing this data". Slicing a
// matRef is pure metadata manipulation; no bytes move until a region is
// read.
type matRef struct {
	Rows, Cols int
	Blocks     []blockFile
}

// slice narrows the reference to rows [r0, r1) x cols [c0, c1), keeping
// only intersecting blocks with coordinates rebased to the new frame.
func (m matRef) slice(r0, r1, c0, c1 int) matRef {
	if r0 < 0 || c0 < 0 || r1 > m.Rows || c1 > m.Cols || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("core: slice [%d:%d,%d:%d] out of %dx%d frame", r0, r1, c0, c1, m.Rows, m.Cols))
	}
	out := matRef{Rows: r1 - r0, Cols: c1 - c0}
	for _, b := range m.Blocks {
		if b.R1 <= r0 || b.R0 >= r1 || b.C1 <= c0 || b.C0 >= c1 {
			continue
		}
		nb := b
		nb.R0 -= r0
		nb.R1 -= r0
		nb.C0 -= c0
		nb.C1 -= c0
		out.Blocks = append(out.Blocks, nb)
	}
	return out
}

// fsReader abstracts how a task reads matrices from the DFS so that reads
// can be attributed to the executing node for locality accounting.
type fsReader interface {
	readMatrix(path string) (*matrix.Dense, error)
}

// nodeReader reads on behalf of a specific datanode.
type nodeReader struct {
	fs   *dfs.FS
	node int
}

func (r nodeReader) readMatrix(path string) (*matrix.Dense, error) {
	if r.node >= 0 {
		return r.fs.ReadMatrixFrom(path, r.node)
	}
	return r.fs.ReadMatrix(path)
}

// masterReader reads on behalf of the master (no locality attribution).
func masterReader(fs *dfs.FS) nodeReader { return nodeReader{fs: fs, node: -1} }

// readRegion assembles rows [r0, r1) x cols [c0, c1) of the reference by
// reading every intersecting block file. Files are read whole (HDFS block
// reads) and the needed portion copied out.
func readRegion(rd fsReader, ref matRef, r0, r1, c0, c1 int) (*matrix.Dense, error) {
	sub := ref.slice(r0, r1, c0, c1)
	out := matrix.New(sub.Rows, sub.Cols)
	covered := 0
	for _, b := range sub.Blocks {
		m, err := rd.readMatrix(b.Path)
		if err != nil {
			return nil, fmt.Errorf("core: readRegion %s: %w", b.Path, err)
		}
		if b.Transposed {
			m = m.Transpose()
		}
		// Clip the block to the frame; the file may extend outside it.
		fr0, fr1 := clamp(b.R0, 0, sub.Rows), clamp(b.R1, 0, sub.Rows)
		fc0, fc1 := clamp(b.C0, 0, sub.Cols), clamp(b.C1, 0, sub.Cols)
		if m.Rows != b.rows() || m.Cols != b.cols() {
			return nil, fmt.Errorf("core: readRegion %s: stored %dx%d, indexed %dx%d",
				b.Path, m.Rows, m.Cols, b.rows(), b.cols())
		}
		part := m.Block(fr0-b.R0, fr1-b.R0, fc0-b.C0, fc1-b.C0)
		out.SetBlock(fr0, fc0, part)
		covered += part.Rows * part.Cols
	}
	if covered != sub.Rows*sub.Cols {
		return nil, fmt.Errorf("core: readRegion [%d:%d,%d:%d]: blocks cover %d of %d elements",
			r0, r1, c0, c1, covered, sub.Rows*sub.Cols)
	}
	return out, nil
}

// readAll assembles the full referenced matrix.
func readAll(rd fsReader, ref matRef) (*matrix.Dense, error) {
	return readRegion(rd, ref, 0, ref.Rows, 0, ref.Cols)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// bandBounds splits length n into m nearly equal contiguous bands and
// returns the bounds of band i: [lo, hi). Bands differ in size by at most
// one element, the paper's equal-work partitioning requirement.
func bandBounds(n, m, i int) (lo, hi int) {
	return n * i / m, n * (i + 1) / m
}
