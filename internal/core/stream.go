package core

import (
	"fmt"

	"repro/internal/matrix"
)

// Streaming factor access. The paper's triangular-inversion mappers run on
// 3.7 GB instances against factors of up to 42 GB, so they cannot hold a
// full factor: they read the N(d) factor files progressively ("these
// files are read into memory recursively", Section 6.1). This file
// implements that access pattern: row bands of L (and of U^T) are
// assembled on demand, and the column-independent Equation 4 recurrences
// consume the factor one band at a time, keeping only the output columns
// and the current band resident.

// readLRows assembles rows [r0, r1) of the unit lower factor: a
// (r1-r0) x n matrix. Leaf files are at most nb x nb, so peak extra
// memory is one band plus one leaf.
func (hd *luHandle) readLRows(rd fsReader, r0, r1 int) (*matrix.Dense, error) {
	if r0 < 0 || r1 > hd.n || r0 > r1 {
		return nil, fmt.Errorf("core: readLRows [%d:%d) of order %d", r0, r1, hd.n)
	}
	out := matrix.New(r1-r0, hd.n)
	if r0 == r1 {
		return out, nil
	}
	if hd.leaf {
		full, err := rd.readMatrix(hd.lFile.Path)
		if err != nil {
			return nil, err
		}
		return full.Block(r0, r1, 0, hd.n), nil
	}
	h := hd.h
	if r0 < h {
		top, err := hd.h1.readLRows(rd, r0, minInt(r1, h))
		if err != nil {
			return nil, err
		}
		out.SetBlock(0, 0, top)
	}
	if r1 > h {
		blo, bhi := maxIntc(r0, h)-h, r1-h
		// Rows blo..bhi of the bottom half: [P2 L2' | L3]. Row i of P2 L2'
		// is row p2[i] of L2'; fetch the covering range once and gather.
		p2 := hd.h2.p
		lo, hi := hd.n, 0
		for i := blo; i < bhi; i++ {
			if p2[i] < lo {
				lo = p2[i]
			}
			if p2[i]+1 > hi {
				hi = p2[i] + 1
			}
		}
		l2rows, err := readRegion(rd, hd.l2, lo, hi, 0, h)
		if err != nil {
			return nil, err
		}
		l3rows, err := hd.h2.readLRows(rd, blo, bhi)
		if err != nil {
			return nil, err
		}
		for i := blo; i < bhi; i++ {
			dst := out.Row(maxIntc(r0, h) - r0 + (i - blo))
			copy(dst[:h], l2rows.Row(p2[i]-lo))
			copy(dst[h:], l3rows.Row(i-blo))
		}
	}
	return out, nil
}

// readUTRows assembles rows [r0, r1) of U^T (i.e. columns of U): the unit
// the U-inversion mappers stream.
func (hd *luHandle) readUTRows(rd fsReader, r0, r1 int) (*matrix.Dense, error) {
	if r0 < 0 || r1 > hd.n || r0 > r1 {
		return nil, fmt.Errorf("core: readUTRows [%d:%d) of order %d", r0, r1, hd.n)
	}
	out := matrix.New(r1-r0, hd.n)
	if r0 == r1 {
		return out, nil
	}
	if hd.leaf {
		var ut *matrix.Dense
		var err error
		if hd.uFile.Transposed {
			ut, err = rd.readMatrix(hd.uFile.Path)
		} else {
			var u *matrix.Dense
			u, err = rd.readMatrix(hd.uFile.Path)
			if err == nil {
				ut = u.Transpose()
			}
		}
		if err != nil {
			return nil, err
		}
		return ut.Block(r0, r1, 0, hd.n), nil
	}
	h := hd.h
	// U^T = [[U1^T, 0], [U2^T, U3^T]].
	if r0 < h {
		top, err := hd.h1.readUTRows(rd, r0, minInt(r1, h))
		if err != nil {
			return nil, err
		}
		out.SetBlock(0, 0, top)
	}
	if r1 > h {
		blo, bhi := maxIntc(r0, h)-h, r1-h
		// Rows of U^T below h are columns blo..bhi of U2 alongside rows of U3^T.
		u2t, err := readRegionTransposed(rd, hd.u2, blo, bhi, 0, hd.u2.Rows)
		if err != nil {
			return nil, err
		}
		u3t, err := hd.h2.readUTRows(rd, blo, bhi)
		if err != nil {
			return nil, err
		}
		off := maxIntc(r0, h) - r0
		for i := 0; i < bhi-blo; i++ {
			dst := out.Row(off + i)
			copy(dst[:h], u2t.Row(i))
			copy(dst[h:], u3t.Row(i))
		}
	}
	return out, nil
}

// bandReader yields consecutive row bands of a factor.
type bandReader func(r0, r1 int) (*matrix.Dense, error)

// streamStats reports a streaming inversion's memory behaviour.
type streamStats struct {
	bands     int
	peakElems int // largest simultaneously-resident element count
}

// streamLowerInverseColumns computes the given columns of the inverse of
// a unit (or general) lower triangular factor of order n, reading the
// factor in row bands of height bandRows and keeping only the current
// band plus the output columns in memory (Equation 4, streamed).
func streamLowerInverseColumns(read bandReader, n int, cols []int, unitDiagonal bool, bandRows int) (*matrix.Dense, *streamStats, error) {
	if bandRows < 1 {
		bandRows = 1
	}
	out := matrix.New(n, len(cols))
	colAt := make(map[int]int, len(cols)) // global col -> output index
	for bi, c := range cols {
		colAt[c] = bi
	}
	st := &streamStats{}
	for r0 := 0; r0 < n; r0 += bandRows {
		r1 := minInt(r0+bandRows, n)
		band, err := read(r0, r1)
		if err != nil {
			return nil, nil, err
		}
		st.bands++
		if e := band.Rows*band.Cols + out.Rows*out.Cols; e > st.peakElems {
			st.peakElems = e
		}
		for i := r0; i < r1; i++ {
			row := band.Row(i - r0)
			diag := row[i]
			if unitDiagonal {
				diag = 1
			}
			for bi, c := range cols {
				switch {
				case i < c:
					// above the column's diagonal: zero
				case i == c:
					out.Set(i, bi, 1/diag)
				default:
					var s float64
					for k := c; k < i; k++ {
						if lv := row[k]; lv != 0 {
							s += lv * out.At(k, bi)
						}
					}
					out.Set(i, bi, -s/diag)
				}
				_ = bi
			}
		}
	}
	return out, st, nil
}
