package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/obs"
	"repro/internal/workload"
)

// tracedInvert runs the pipeline with a tracer and metrics attached.
func tracedInvert(t *testing.T, n, nb, nodes int) (*obs.Tracer, *obs.Registry, *Report) {
	t.Helper()
	a := workload.Random(n, 42)
	p, err := NewPipeline(Options{NB: nb, Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	p.Tracer = obs.New()
	p.Metrics = obs.NewRegistry()
	_, rep, err := p.Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	return p.Tracer, p.Metrics, rep
}

// One KindJob span per executed MapReduce job — the acceptance criterion
// tying the trace to the Figure 2 pipeline shape.
func TestTraceOneSpanPerJob(t *testing.T) {
	tr, _, rep := tracedInvert(t, 48, 12, 4)
	spans := tr.Snapshot()
	var jobs int
	for _, s := range spans {
		if s.Kind == obs.KindJob {
			jobs++
			if s.End.IsZero() {
				t.Errorf("job span %q unfinished", s.Name)
			}
		}
	}
	if jobs != rep.JobsRun {
		t.Fatalf("got %d job spans, report says %d jobs ran", jobs, rep.JobsRun)
	}
	if rep.Trace == nil {
		t.Fatal("Report.Trace is nil on a traced run")
	}
}

// The root span's byte attrs must equal the Report's DFS deltas exactly,
// and summing the per-job deltas must reproduce the run totals.
func TestTraceBytesMatchDFSCounters(t *testing.T) {
	tr, _, rep := tracedInvert(t, 48, 12, 4)
	spans := tr.Snapshot()
	root := obs.Root(spans)
	if root == nil {
		t.Fatal("no root span")
	}
	want := map[string]int64{
		"dfs.bytes_read":        rep.FS.BytesRead,
		"dfs.bytes_written":     rep.FS.BytesWritten,
		"dfs.bytes_transferred": rep.FS.BytesTransferred,
		"dfs.files_created":     rep.FS.FilesCreated,
		"jobs":                  int64(rep.JobsRun),
	}
	for k, v := range want {
		if got := root.Attrs[k]; got != v {
			t.Errorf("root attr %s = %d, report says %d", k, got, v)
		}
	}
	// Job spans partition the run's writes: master-side writes (input
	// bands, leaf factors, combines) account for the remainder, so the sum
	// over job spans must not exceed the run total.
	var jobRead, jobWritten int64
	for _, s := range spans {
		if s.Kind == obs.KindJob {
			jobRead += s.Attrs["dfs.bytes_read"]
			jobWritten += s.Attrs["dfs.bytes_written"]
		}
	}
	if jobRead > rep.FS.BytesRead || jobWritten > rep.FS.BytesWritten {
		t.Errorf("job span byte sums (%d read, %d written) exceed run totals (%d, %d)",
			jobRead, jobWritten, rep.FS.BytesRead, rep.FS.BytesWritten)
	}
	if jobRead == 0 || jobWritten == 0 {
		t.Error("job spans recorded no byte flow")
	}
}

// The critical path over a real traced run must account for the root
// span's wall-clock within 5% (it partitions it exactly by construction;
// the tolerance guards the report against future drift).
func TestTraceCriticalPathCoversWallClock(t *testing.T) {
	tr, _, _ := tracedInvert(t, 48, 12, 4)
	spans := tr.Snapshot()
	root := obs.Root(spans)
	cp, err := obs.ComputeCriticalPath(spans, root.ID)
	if err != nil {
		t.Fatal(err)
	}
	wall := root.End.Sub(root.Start)
	diff := cp.Total - wall
	if diff < 0 {
		diff = -diff
	}
	if wall <= 0 || float64(diff) > 0.05*float64(wall) {
		t.Fatalf("critical path total %v vs wall-clock %v (diff %v > 5%%)", cp.Total, wall, diff)
	}
}

// The exported Chrome trace of a real run is valid JSON with one complete
// event per finished span.
func TestTraceChromeExportOfRealRun(t *testing.T) {
	tr, _, _ := tracedInvert(t, 48, 12, 4)
	spans := tr.Snapshot()
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	var complete int
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "X" {
			complete++
		}
	}
	// Only finished spans export; a losing speculative attempt may still be
	// draining when the snapshot is taken.
	var finished int
	for _, s := range spans {
		if !s.End.IsZero() {
			finished++
		}
	}
	if complete != finished {
		t.Fatalf("exported %d complete events for %d finished spans", complete, finished)
	}
}

// An untraced run records no spans anywhere and leaves Report.Trace nil —
// the regression guard for the nil no-op path.
func TestUntracedRunRecordsNothing(t *testing.T) {
	a := workload.Random(48, 42)
	p, err := NewPipeline(Options{NB: 12, Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := p.Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace != nil {
		t.Fatal("Report.Trace non-nil on an untraced run")
	}
	if p.Cluster.Tracer != nil {
		t.Fatal("cluster acquired a tracer without one being set")
	}
}

// Metrics attached to a run mirror the report's task accounting.
func TestMetricsMirrorReport(t *testing.T) {
	_, reg, rep := tracedInvert(t, 48, 12, 4)
	if got := reg.Counter("mapreduce.jobs").Value(); got != int64(rep.JobsRun) {
		t.Errorf("mapreduce.jobs = %d, report says %d", got, rep.JobsRun)
	}
	if got := reg.Counter("mapreduce.map_tasks").Value(); got != int64(rep.MapTasks) {
		t.Errorf("mapreduce.map_tasks = %d, report says %d", got, rep.MapTasks)
	}
	if got := reg.Counter("dfs.bytes_written").Value(); got < rep.FS.BytesWritten {
		t.Errorf("dfs.bytes_written counter %d below report delta %d", got, rep.FS.BytesWritten)
	}
}
