package core

import (
	"fmt"

	"repro/internal/mapreduce"
	"repro/internal/matrix"
)

// Multi-round multiplication strategies.
//
// The Section 6.2 block wrap computes C = A B in one round: reducer (i, j)
// of an f1 x f2 grid reads the whole row band A_i and column band B_j.
// Every band therefore fans out to f2 (resp. f1) reader nodes, and with
// the output's replication that costs (f1 + f2) n^2 transferred elements.
//
// The replicated strategy (Ceccarello & Silvestri) arranges the same m0
// reducers as a g1 x g2 x rho grid over rho inner-dimension segments:
// reducer (i, j, s) forms the partial product A_{i,s} B_{s,j}, and a
// deterministic sum round folds the rho partials of block (i, j) in
// ascending segment order. Each input piece now fans out to only g2
// (resp. g1) nodes, and with favored-placement writes (dfs.WriteFrom) the
// partials land directly on their sum node, so total transfer drops to
// (g1 + g2 + rho - 1) n^2 elements — the 3D/communication-optimal
// schedule, minimized near g1 = g2 = rho = m0^(1/3).
//
// The space-round strategy (Pietracaprina et al.) keeps the f1 x f2 grid
// but streams the inner dimension in rho rounds, accumulating
// C += A_s B_s into a state block persisted on the reducer's own node
// between rounds. Transfer matches single-round while the per-reducer
// working set shrinks by a factor of rho — rounds traded for space.
//
// All three strategies produce bit-identical results to the sequential
// segmented reference matrix.MulSegTransB over the same segment bounds:
// every partial is formed by matrix.MulAddTransB (the MulTransB row-dot
// kernel) and folded in ascending segment order, so the floating-point
// operations and their order match the reference exactly.

// mulPlan is the resolved execution shape of one distributed product.
type mulPlan struct {
	strategy MultiplyStrategy
	g1, g2   int // output block grid; block (i, j) is owned by node i*g2+j
	rho      int // inner-dimension segments; 1 collapses to single-round
}

// jobs returns how many MapReduce jobs the plan launches.
func (pl mulPlan) jobs() int {
	switch {
	case pl.rho <= 1:
		return 1
	case pl.strategy == MultiplyReplicated:
		return 2
	default:
		return pl.rho
	}
}

// planMultiply resolves the options into a concrete plan for a
// rows x inner by inner x cols product on opts.Nodes nodes.
func planMultiply(opts Options, rows, inner, cols int) mulPlan {
	m0 := opts.Nodes
	f1, f2 := FactorPair(m0)
	if !opts.BlockWrap {
		f1, f2 = m0, 1
	}
	single := mulPlan{strategy: MultiplySingleRound, g1: f1, g2: f2, rho: 1}
	switch opts.Multiply {
	case MultiplyReplicated:
		rho := opts.MultiplyRho
		if rho < 2 {
			rho = bestReplicatedRho(m0)
		}
		// The reducer grid is g1 x g2 x rho with g1*g2*rho = m0, so rho
		// must divide m0; it also cannot exceed the inner dimension.
		for rho > 1 && (m0%rho != 0 || rho > inner) {
			rho--
		}
		if rho < 2 {
			return single
		}
		g1, g2 := FactorPair(m0 / rho)
		return mulPlan{strategy: MultiplyReplicated, g1: g1, g2: g2, rho: rho}
	case MultiplySpaceRound:
		rho := opts.MultiplyRho
		if rho < 1 && opts.MultiplyMemory > 0 {
			rho = roundsForMemory(opts.MultiplyMemory, f1, f2, rows, inner, cols)
		}
		if rho < 1 {
			rho = 2
		}
		if rho > inner {
			rho = inner
		}
		if rho < 2 {
			return single
		}
		return mulPlan{strategy: MultiplySpaceRound, g1: f1, g2: f2, rho: rho}
	default:
		return single
	}
}

// bestReplicatedRho picks the divisor rho of m0 minimizing the replicated
// strategy's transfer coefficient g1 + g2 + rho (the 3D grid optimum sits
// near m0^(1/3)). Returns 1 when no divisor >= 2 helps.
func bestReplicatedRho(m0 int) int {
	best, bestCost := 1, m0*3+1
	for rho := 2; rho <= m0; rho++ {
		if m0%rho != 0 {
			continue
		}
		g1, g2 := FactorPair(m0 / rho)
		if cost := g1 + g2 + rho; cost < bestCost {
			best, bestCost = rho, cost
		}
	}
	return best
}

// roundsForMemory returns the smallest round count whose per-round
// reducer working set (A segment + B segment + output block) fits the
// byte budget. When even one inner column per round does not fit, the
// round count is capped at the inner dimension.
func roundsForMemory(budget int64, g1, g2, rows, inner, cols int) int {
	const elem = 8
	out := int64(rows) * int64(cols) / int64(g1*g2) * elem
	per := (int64(rows)*int64(inner)/int64(g1) + int64(inner)*int64(cols)/int64(g2)) * elem
	if budget <= out || per <= 0 {
		return inner
	}
	rho := int((per + budget - out - 1) / (budget - out))
	if rho < 1 {
		rho = 1
	}
	if rho > inner {
		rho = inner
	}
	return rho
}

// mulGeom fixes one product's geometry: plan, dimensions, piece paths and
// the deterministic node layout the favored-placement writes target.
type mulGeom struct {
	plan              mulPlan
	m0                int
	rows, inner, cols int
	root              string
	// durable gives single-replica intermediates (partials, round state,
	// narrow pieces) a backup replica so a node kill under fault
	// injection cannot strand the only copy. Off in clean runs, where it
	// would distort the transfer accounting the CI gate pins.
	durable bool
	// mapPrefer overrides the piece-writing map tasks' placement; nil
	// pins map task t to node t % m0 (right when task t's pieces are read
	// on node t, as in the standalone multiply's task grid). The block-LU
	// levels pin each band solver onto a reader of its own pieces instead.
	mapPrefer func(t int) []int
}

// split decomposes reduce task t of the first job into (segment, i, j).
func (g mulGeom) split(t int) (s, i, j int) {
	grid := g.plan.g1 * g.plan.g2
	return t / grid, (t % grid) / g.plan.g2, t % g.plan.g2
}

// sumNode is the node owning output block (i, j) in every round.
func (g mulGeom) sumNode(i, j int) int { return i*g.plan.g2 + j }

func (g mulGeom) rowBand(i int) (int, int) { return bandBounds(g.rows, g.plan.g1, i) }
func (g mulGeom) colBand(j int) (int, int) { return bandBounds(g.cols, g.plan.g2, j) }
func (g mulGeom) seg(s int) (int, int)     { return bandBounds(g.inner, g.plan.rho, s) }

func (g mulGeom) aPiecePath(i, s int) string  { return fmt.Sprintf("%s/A.%d.%d", g.root, i, s) }
func (g mulGeom) btPiecePath(j, s int) string { return fmt.Sprintf("%s/BT.%d.%d", g.root, j, s) }
func (g mulGeom) partialPath(i, j, s int) string {
	return fmt.Sprintf("%s/P.%d.%d.%d", g.root, i, j, s)
}
func (g mulGeom) statePath(i, j, t int) string { return fmt.Sprintf("%s/S.%d.%d.%d", g.root, i, j, t) }
func (g mulGeom) outPath(i, j int) string {
	return fmt.Sprintf("%s/C.%d", g.root, i*g.plan.g2+j)
}

// aPieceReaders lists the nodes reading A piece (i, s): the owners of
// output row band i — within segment layer s on the replicated grid,
// across all layers otherwise.
func (g mulGeom) aPieceReaders(i, s int) []int {
	base := 0
	if g.plan.strategy == MultiplyReplicated {
		base = s * g.plan.g1 * g.plan.g2
	}
	nodes := make([]int, 0, g.plan.g2)
	for j := 0; j < g.plan.g2; j++ {
		nodes = append(nodes, base+i*g.plan.g2+j)
	}
	return nodes
}

// btPieceReaders lists the nodes reading B^T piece (j, s): the owners of
// output column band j.
func (g mulGeom) btPieceReaders(j, s int) []int {
	base := 0
	if g.plan.strategy == MultiplyReplicated {
		base = s * g.plan.g1 * g.plan.g2
	}
	nodes := make([]int, 0, g.plan.g1)
	for i := 0; i < g.plan.g1; i++ {
		nodes = append(nodes, base+i*g.plan.g2+j)
	}
	return nodes
}

// withBackup pads a placement to two replicas under fault injection.
func (g mulGeom) withBackup(nodes []int) []int {
	if !g.durable || len(nodes) >= 2 || g.m0 < 2 || len(nodes) == 0 {
		return nodes
	}
	return append(nodes, (nodes[0]+1)%g.m0)
}

// pieceWriter materializes the operand pieces owned by map task t,
// writing them with favored placement on their reader nodes.
type pieceWriter func(ctx *mapreduce.TaskContext, t int) error

// segReader loads one operand segment: A's row band i (resp. B^T's
// column band j) restricted to inner segment s.
type segReader func(rd fsReader, band, s int) (*matrix.Dense, error)

// finishFunc consumes the finished product block (i, j) inside the task
// that owns it (writing C, or folding it into B = A4 - L2'U2).
type finishFunc func(ctx *mapreduce.TaskContext, i, j int, blk *matrix.Dense) error

// mulNames carries the job names of one product's rounds.
type mulNames struct {
	first string // piece-writing job (also the only job at rho = 1)
	sum   string // replicated sum round
	round string // space-round accumulation rounds
}

// numericPartition routes key "t" to reduce task t.
func numericPartition(key string, n int) int {
	var v int
	fmt.Sscanf(key, "%d", &v)
	return v % n
}

// runMulRounds executes one planned product: a piece-writing job whose
// reducers form (partial) products, then the plan's extra rounds. run
// executes a job through the caller (attaching spans, recording results);
// writePieces, readA, readBT and finish bind the product's operands and
// output. Every task is pinned to its deterministic node via Prefer /
// PreferReduce so favored-placement reads stay local and the transfer
// accounting is reproducible.
func runMulRounds(geom mulGeom, names mulNames, run func(*mapreduce.Job) error,
	writePieces pieceWriter, readA, readBT segReader, finish finishFunc) error {
	pl := geom.plan
	prefer := func(t int) []int { return []int{t % geom.m0} }
	mapPrefer := geom.mapPrefer
	if mapPrefer == nil {
		mapPrefer = prefer
	}
	grid := pl.g1 * pl.g2

	// accumulate folds segment s of block (i, j) into state with the
	// reference kernel; a nil state starts a fresh block.
	accumulate := func(rd fsReader, state *matrix.Dense, i, j, s int) (*matrix.Dense, error) {
		rlo, rhi := geom.rowBand(i)
		clo, chi := geom.colBand(j)
		if state == nil {
			state = matrix.New(rhi-rlo, chi-clo)
		}
		klo, khi := geom.seg(s)
		if khi == klo {
			return state, nil
		}
		am, err := readA(rd, i, s)
		if err != nil {
			return nil, fmt.Errorf("core: multiply block (%d,%d) seg %d A: %w", i, j, s, err)
		}
		btm, err := readBT(rd, j, s)
		if err != nil {
			return nil, fmt.Errorf("core: multiply block (%d,%d) seg %d B^T: %w", i, j, s, err)
		}
		if err := matrix.MulAddTransB(state, am, btm); err != nil {
			return nil, err
		}
		return state, nil
	}

	if pl.rho == 1 || pl.strategy == MultiplyReplicated {
		job := &mapreduce.Job{
			Name:           names.first,
			Splits:         mapreduce.ControlSplits(geom.m0),
			NumReduce:      geom.m0,
			Partition:      numericPartition,
			Prefer:         mapPrefer,
			PreferReduce:   prefer,
			StrictLocality: true,
			Map: func(ctx *mapreduce.TaskContext, split mapreduce.InputSplit, emit mapreduce.Emitter) error {
				if err := writePieces(ctx, split.ID); err != nil {
					return err
				}
				emit.Emit(fmt.Sprintf("%d", split.ID), nil)
				return nil
			},
			Reduce: func(ctx *mapreduce.TaskContext, key string, values [][]byte, emit mapreduce.Emitter) error {
				var t int
				if _, err := fmt.Sscanf(key, "%d", &t); err != nil {
					return err
				}
				s, i, j := geom.split(t)
				rlo, rhi := geom.rowBand(i)
				clo, chi := geom.colBand(j)
				if rlo == rhi || clo == chi {
					return nil
				}
				rd := nodeReader{fs: ctx.FS, node: ctx.Node}
				blk, err := accumulate(rd, nil, i, j, s)
				if err != nil {
					return err
				}
				if pl.rho == 1 {
					return finish(ctx, i, j, blk)
				}
				ctx.IncrCounter("mul.partial.elements", int64(blk.Rows)*int64(blk.Cols))
				return ctx.FS.WriteMatrixFrom(geom.partialPath(i, j, s), blk, ctx.Node,
					geom.withBackup([]int{geom.sumNode(i, j)}))
			},
		}
		if err := run(job); err != nil {
			return err
		}
		if pl.rho == 1 {
			return nil
		}
		// Deterministic sum round: map-only, block (i, j) pinned to its
		// sum node where every partial already resides, folding them in
		// ascending segment order — the same left fold as MulSegTransB.
		sum := &mapreduce.Job{
			Name:           names.sum,
			Splits:         mapreduce.ControlSplits(grid),
			Prefer:         prefer,
			StrictLocality: true,
			Map: func(ctx *mapreduce.TaskContext, split mapreduce.InputSplit, emit mapreduce.Emitter) error {
				r := split.ID
				i, j := r/pl.g2, r%pl.g2
				rlo, rhi := geom.rowBand(i)
				clo, chi := geom.colBand(j)
				if rlo == rhi || clo == chi {
					return nil
				}
				rd := nodeReader{fs: ctx.FS, node: ctx.Node}
				var acc *matrix.Dense
				for s := 0; s < pl.rho; s++ {
					p, err := rd.readMatrix(geom.partialPath(i, j, s))
					if err != nil {
						return fmt.Errorf("core: multiply sum (%d,%d) seg %d: %w", i, j, s, err)
					}
					if acc == nil {
						acc = p
					} else if err := matrix.AddInPlace(acc, p); err != nil {
						return err
					}
				}
				ctx.IncrCounter("mul.sum.elements", int64(acc.Rows)*int64(acc.Cols))
				return finish(ctx, i, j, acc)
			},
		}
		return run(sum)
	}

	// Space-round: rho chained jobs; block (i, j) stays pinned to one
	// node, streaming the inner dimension and persisting the running
	// state locally between rounds.
	for t := 0; t < pl.rho; t++ {
		t := t
		job := &mapreduce.Job{
			Name:           names.round,
			Splits:         mapreduce.ControlSplits(geom.m0),
			NumReduce:      grid,
			Partition:      numericPartition,
			Prefer:         mapPrefer,
			PreferReduce:   prefer,
			StrictLocality: true,
			Config:         map[string]string{"round": fmt.Sprintf("%d", t)},
			Map: func(ctx *mapreduce.TaskContext, split mapreduce.InputSplit, emit mapreduce.Emitter) error {
				if t == 0 {
					if err := writePieces(ctx, split.ID); err != nil {
						return err
					}
				}
				if split.ID < grid {
					emit.Emit(fmt.Sprintf("%d", split.ID), nil)
				}
				return nil
			},
			Reduce: func(ctx *mapreduce.TaskContext, key string, values [][]byte, emit mapreduce.Emitter) error {
				var r int
				if _, err := fmt.Sscanf(key, "%d", &r); err != nil {
					return err
				}
				i, j := r/pl.g2, r%pl.g2
				rlo, rhi := geom.rowBand(i)
				clo, chi := geom.colBand(j)
				if rlo == rhi || clo == chi {
					return nil
				}
				rd := nodeReader{fs: ctx.FS, node: ctx.Node}
				var state *matrix.Dense
				if t > 0 {
					prev, err := rd.readMatrix(geom.statePath(i, j, t-1))
					if err != nil {
						return fmt.Errorf("core: multiply round %d state (%d,%d): %w", t, i, j, err)
					}
					state = prev
				}
				state, err := accumulate(rd, state, i, j, t)
				if err != nil {
					return err
				}
				if t == pl.rho-1 {
					return finish(ctx, i, j, state)
				}
				ctx.IncrCounter("mul.round.elements", int64(state.Rows)*int64(state.Cols))
				return ctx.FS.WriteMatrixFrom(geom.statePath(i, j, t), state, ctx.Node,
					geom.withBackup([]int{geom.sumNode(i, j)}))
			},
		}
		if err := run(job); err != nil {
			return err
		}
	}
	return nil
}

// inMemoryPieces writes the pieces of in-memory operands a, b (the
// standalone Multiply). Map task (s, i, 0) owns A piece (i, s) and task
// (s, 0, j) owns B^T piece (j, s); on the non-replicated grids (where
// map tasks have s = 0) the owner writes its band's pieces for every
// segment. Each piece is placed on exactly its reader nodes, with the
// pinned writer among them, so piece reads are local and each input byte
// crosses the network (fan-out - 1) times — the strategy's whole win.
func inMemoryPieces(a, b *matrix.Dense, geom mulGeom) pieceWriter {
	return func(ctx *mapreduce.TaskContext, t int) error {
		s, i, j := geom.split(t)
		segs := []int{s}
		if geom.plan.strategy != MultiplyReplicated {
			segs = segs[:0]
			for s := 0; s < geom.plan.rho; s++ {
				segs = append(segs, s)
			}
		}
		if j == 0 {
			rlo, rhi := geom.rowBand(i)
			if rlo != rhi {
				for _, s := range segs {
					klo, khi := geom.seg(s)
					if klo == khi {
						continue
					}
					if err := ctx.FS.WriteMatrixFrom(geom.aPiecePath(i, s),
						a.Block(rlo, rhi, klo, khi), ctx.Node,
						geom.withBackup(geom.aPieceReaders(i, s))); err != nil {
						return err
					}
				}
			}
		}
		if i == 0 {
			clo, chi := geom.colBand(j)
			if clo != chi {
				for _, s := range segs {
					klo, khi := geom.seg(s)
					if klo == khi {
						continue
					}
					if err := ctx.FS.WriteMatrixFrom(geom.btPiecePath(j, s),
						b.Block(klo, khi, clo, chi).Transpose(), ctx.Node,
						geom.withBackup(geom.btPieceReaders(j, s))); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
}

// filePieceReaders reads the whole-piece files inMemoryPieces writes.
func filePieceReaders(geom mulGeom) (readA, readBT segReader) {
	readA = func(rd fsReader, i, s int) (*matrix.Dense, error) {
		return rd.readMatrix(geom.aPiecePath(i, s))
	}
	readBT = func(rd fsReader, j, s int) (*matrix.Dense, error) {
		return rd.readMatrix(geom.btPiecePath(j, s))
	}
	return readA, readBT
}

// MultiplyReport summarizes one strategy-routed distributed product,
// aggregated from the per-job DFS byte accounting.
type MultiplyReport struct {
	Strategy MultiplyStrategy
	Rho      int
	Grid     [2]int // g1 x g2 output block grid
	Jobs     int
	// ShuffledKVs and the byte counters sum the per-job accounting of
	// every round.
	ShuffledKVs      int
	BytesRead        int64
	BytesWritten     int64
	TransferredBytes int64
	// Elements counts the output elements produced by the final round.
	Elements int64
}

func (r *MultiplyReport) absorb(jr *mapreduce.JobResult) {
	r.Jobs++
	r.ShuffledKVs += jr.ShuffledKVs
	r.BytesRead += jr.BytesRead
	r.BytesWritten += jr.BytesWritten
	r.TransferredBytes += jr.TransferredBytes
	r.Elements += jr.Counters["mul.elements"]
}
