// Package core implements the HPDC 2014 paper's contribution: scalable
// matrix inversion as a pipeline of MapReduce jobs built on recursive block
// LU decomposition.
//
// The pipeline (Figure 2 of the paper) is:
//
//	partition job -> 2^d - 1 block-LU jobs -> triangular-inversion job
//
// where d = ceil(log2(n/nb)) is the recursion depth and nb is the "bound
// value": the order of the largest submatrix the MapReduce master
// decomposes locally with Algorithm 1. Each block-LU job computes L2' and
// U2 in its mappers (Equation 6) and B = A4 - L2'U2 in its reducers
// (Figure 5); the final job inverts L and U column-independently in its
// mappers (Equation 4) and multiplies U^-1 L^-1 with the block-wrap layout
// in its reducers, undoing pivoting by a column permutation (Section 5.4).
//
// The three Section 6 optimizations — separate intermediate files, block
// wrap, transposed U storage — are implemented and individually togglable
// so the Figure 7 ablation can be reproduced.
package core

import (
	"errors"
	"fmt"
)

// DefaultNB is the default bound value for laptop-scale runs. The paper
// uses 3200 on EC2; tests use much smaller values to force deep pipelines
// at small orders.
const DefaultNB = 512

// MultiplyStrategy selects how the pipeline's distributed matrix
// products are executed.
type MultiplyStrategy string

const (
	// MultiplySingleRound is the paper's Section 6.2 single-round
	// block-wrap product: one job, each reducer reads a full row band of
	// A and column band of B. The zero value of the option.
	MultiplySingleRound MultiplyStrategy = "single-round"
	// MultiplyReplicated is the replication-parameter multi-round product
	// of Ceccarello & Silvestri: the m0 reducers form a g1 x g2 x rho
	// grid over rho inner-dimension segments, compute partial products in
	// one round, and a deterministic sum round folds the rho partials of
	// each output block in ascending segment order. Cutting the reader
	// fan-out of every input piece from f2 (resp. f1) nodes to g2 (resp.
	// g1) is what makes the strategy communication-optimal: transfer
	// drops from (f1+f2-2) n^2 elements to (g1+g2+rho-3) n^2.
	MultiplyReplicated MultiplyStrategy = "replicated"
	// MultiplySpaceRound is the space-round tradeoff of Pietracaprina et
	// al.: the f1 x f2 reducer grid is kept, but each reducer streams the
	// inner dimension in rho rounds, accumulating C += A_s B_s into a
	// locally persisted state block. Transfer matches single-round while
	// per-reducer memory drops by a factor of rho; MultiplyMemory derives
	// rho from a byte budget.
	MultiplySpaceRound MultiplyStrategy = "space-round"
)

// Options configures the inversion pipeline.
type Options struct {
	// NB is the bound value n_b: submatrices of order <= NB are
	// LU-decomposed on the master node (Section 5).
	NB int
	// Nodes is m0, the number of compute nodes. It must be even and >= 2
	// so the per-job mapper population can split half L2' / half U2
	// (Figure 5); Validate rounds odd values up.
	Nodes int
	// SeparateFiles keeps every intermediate factor in its own file
	// (Section 6.1). When false the master serially combines L and U
	// files after every job — the unoptimized comparator of Figure 7.
	SeparateFiles bool
	// BlockWrap uses the f1 x f2 block-wrap layout for the two matrix
	// multiplications (Section 6.2). When false each reducer reads one
	// full operand — the naive layout of Figure 7.
	BlockWrap bool
	// TransposeU stores upper triangular factors transposed so inner
	// products walk rows (Section 6.3).
	TransposeU bool
	// Root is the HDFS work directory ("Root" in Figure 4).
	Root string
	// StreamingInversion makes the triangular-inversion mappers read the
	// factors in row bands instead of assembling them whole, bounding
	// per-task memory to one band plus the output columns — how the
	// paper's 42 GB factors fit 3.7 GB workers.
	StreamingInversion bool
	// TextInput stores and reads the input matrix in the paper's text
	// format ("a.txt") instead of binary — roughly 2.5x the bytes
	// (Table 3's Text vs Binary columns), visible in the partition job's
	// read accounting.
	TextInput bool
	// Priority is the fair-share scheduling priority carried by every
	// MapReduce job of this pipeline: when the cluster's slots are
	// contended by concurrent pipelines, higher-priority jobs are
	// granted slots first; equal priorities share round-robin. Zero is
	// the default class.
	Priority int
	// Multiply selects the strategy for the pipeline's distributed
	// products: Pipeline.Multiply and the B = A4 - L2'U2 step of every
	// block-LU level. The empty value means MultiplySingleRound.
	// costmodel.ChooseMultiply picks a strategy and rho from matrix size,
	// node count and per-node memory, the way ChooseEngine picks engines.
	Multiply MultiplyStrategy
	// MultiplyRho is the replication / round parameter rho of the
	// multi-round strategies. Zero derives it: for MultiplyReplicated the
	// divisor of Nodes minimizing modeled transfer, for MultiplySpaceRound
	// the round count implied by MultiplyMemory (or 2 when unset). The
	// effective rho is clamped to the product's inner dimension; rho = 1
	// degenerates to the single-round shape.
	MultiplyRho int
	// MultiplyMemory caps the per-reducer operand bytes of the
	// space-round strategy; the round count becomes the smallest rho that
	// fits the per-round working set (segment of A + segment of B +
	// output block) under the cap. Zero means uncapped.
	MultiplyMemory int64
}

// DefaultOptions returns the paper's optimized configuration on m0 nodes.
func DefaultOptions(nodes int) Options {
	return Options{
		NB:            DefaultNB,
		Nodes:         nodes,
		SeparateFiles: true,
		BlockWrap:     true,
		TransposeU:    true,
		Root:          "Root",
	}
}

// ErrBadOptions reports an invalid configuration.
var ErrBadOptions = errors.New("core: invalid options")

// ErrSingularBlock reports that a diagonal block of the recursion was
// singular. Because the block method pivots only within blocks, this can
// happen for invertible inputs; callers should fall back to a fully
// pivoted inverter (e.g. lu.Invert or the ScaLAPACK baseline).
var ErrSingularBlock = errors.New("core: singular diagonal block (block-local pivoting)")

// Validate normalizes o and reports configuration errors.
func (o *Options) Validate() error {
	if o.NB < 1 {
		return fmt.Errorf("core: NB = %d: %w", o.NB, ErrBadOptions)
	}
	if o.Nodes < 2 {
		o.Nodes = 2
	}
	if o.Nodes%2 == 1 {
		o.Nodes++
	}
	if o.Root == "" {
		o.Root = "Root"
	}
	switch o.Multiply {
	case "", MultiplySingleRound, MultiplyReplicated, MultiplySpaceRound:
	default:
		return fmt.Errorf("core: multiply strategy %q: %w", o.Multiply, ErrBadOptions)
	}
	if o.MultiplyRho < 0 || o.MultiplyMemory < 0 {
		return fmt.Errorf("core: multiply rho %d / memory %d: %w", o.MultiplyRho, o.MultiplyMemory, ErrBadOptions)
	}
	return nil
}

// Depth returns the recursion depth d = ceil(log2(n/nb)) of the block LU
// decomposition: the number of times the matrix halves before submatrices
// fit on the master node. Depth is 0 when n <= nb.
func Depth(n, nb int) int {
	if nb < 1 {
		nb = 1
	}
	d := 0
	for n > nb {
		// ceil(n/2): rounding up keeps every leaf at or below nb.
		n = (n + 1) / 2
		d++
	}
	return d
}

// LUJobs returns the number of MapReduce jobs in the LU phase for a
// *uniform* recursion of depth d: each internal node contributes one job
// (computing L2', U2, and B), giving 2^d - 1. This is the paper's
// "2^ceil(log2 n/nb)" estimate; LUJobCount gives the exact value when
// rounding makes the tree asymmetric.
func LUJobs(d int) int {
	return (1 << uint(d)) - 1
}

// LUJobCount returns the exact number of LU-phase jobs for an order-n
// matrix: the recursion splits into A1 of order ceil(n/2) and B of order
// floor(n/2), whose depths can differ by one when n is not a power of two
// times nb (the paper's "modulo rounding" caveat, Section 4.2).
func LUJobCount(n, nb int) int {
	if nb < 1 {
		nb = 1
	}
	if n <= nb {
		return 0
	}
	h := splitPoint(n)
	return 1 + LUJobCount(h, nb) + LUJobCount(n-h, nb)
}

// PipelineJobs returns the total number of MapReduce jobs to invert an
// order-n matrix with bound nb: one partition job, the LU-phase jobs, and
// one triangular-inversion/final-output job. For the paper's nb = 3200
// this reproduces the "Number of Jobs" column of Table 3
// (M1: 9, M2: 17, M3: 17, M4: 33, M5: 9).
func PipelineJobs(n, nb int) int {
	return 1 + LUJobCount(n, nb) + 1
}

// SeparateFileCount returns N(d), the number of files storing one
// triangular factor under the Section 6.1 optimization:
// N(d) = 2^d + (m0/2)(2^d - 1). Leaves contribute one file each (2^d of
// them); every internal node contributes m0/2 band files for L2' (or U2).
func SeparateFileCount(d, m0 int) int {
	p := 1 << uint(d)
	return p + m0/2*(p-1)
}

// FactorPair returns the block-wrap process grid (f1, f2) for m0 nodes:
// f2 <= f1, f1*f2 = m0, with no other factor of m0 between them
// (Section 6.2 chooses |f1 - f2| as small as possible).
func FactorPair(m0 int) (f1, f2 int) {
	if m0 < 1 {
		return 1, 1
	}
	for f := 1; f*f <= m0; f++ {
		if m0%f == 0 {
			f2 = f
		}
	}
	return m0 / f2, f2
}

// NaiveReadVolume returns the total bytes-equivalent element reads of the
// naive multiplication layout on m0 nodes for an n x n product:
// (m0 + 1) n^2 elements (Section 6.2).
func NaiveReadVolume(n, m0 int) int64 {
	return int64(m0+1) * int64(n) * int64(n)
}

// BlockWrapReadVolume returns the element reads of the block-wrap layout:
// (f1 + f2) n^2 (Section 6.2).
func BlockWrapReadVolume(n, m0 int) int64 {
	f1, f2 := FactorPair(m0)
	return int64(f1+f2) * int64(n) * int64(n)
}
