// Package core implements the HPDC 2014 paper's contribution: scalable
// matrix inversion as a pipeline of MapReduce jobs built on recursive block
// LU decomposition.
//
// The pipeline (Figure 2 of the paper) is:
//
//	partition job -> 2^d - 1 block-LU jobs -> triangular-inversion job
//
// where d = ceil(log2(n/nb)) is the recursion depth and nb is the "bound
// value": the order of the largest submatrix the MapReduce master
// decomposes locally with Algorithm 1. Each block-LU job computes L2' and
// U2 in its mappers (Equation 6) and B = A4 - L2'U2 in its reducers
// (Figure 5); the final job inverts L and U column-independently in its
// mappers (Equation 4) and multiplies U^-1 L^-1 with the block-wrap layout
// in its reducers, undoing pivoting by a column permutation (Section 5.4).
//
// The three Section 6 optimizations — separate intermediate files, block
// wrap, transposed U storage — are implemented and individually togglable
// so the Figure 7 ablation can be reproduced.
package core

import (
	"errors"
	"fmt"
)

// DefaultNB is the default bound value for laptop-scale runs. The paper
// uses 3200 on EC2; tests use much smaller values to force deep pipelines
// at small orders.
const DefaultNB = 512

// Options configures the inversion pipeline.
type Options struct {
	// NB is the bound value n_b: submatrices of order <= NB are
	// LU-decomposed on the master node (Section 5).
	NB int
	// Nodes is m0, the number of compute nodes. It must be even and >= 2
	// so the per-job mapper population can split half L2' / half U2
	// (Figure 5); Validate rounds odd values up.
	Nodes int
	// SeparateFiles keeps every intermediate factor in its own file
	// (Section 6.1). When false the master serially combines L and U
	// files after every job — the unoptimized comparator of Figure 7.
	SeparateFiles bool
	// BlockWrap uses the f1 x f2 block-wrap layout for the two matrix
	// multiplications (Section 6.2). When false each reducer reads one
	// full operand — the naive layout of Figure 7.
	BlockWrap bool
	// TransposeU stores upper triangular factors transposed so inner
	// products walk rows (Section 6.3).
	TransposeU bool
	// Root is the HDFS work directory ("Root" in Figure 4).
	Root string
	// StreamingInversion makes the triangular-inversion mappers read the
	// factors in row bands instead of assembling them whole, bounding
	// per-task memory to one band plus the output columns — how the
	// paper's 42 GB factors fit 3.7 GB workers.
	StreamingInversion bool
	// TextInput stores and reads the input matrix in the paper's text
	// format ("a.txt") instead of binary — roughly 2.5x the bytes
	// (Table 3's Text vs Binary columns), visible in the partition job's
	// read accounting.
	TextInput bool
	// Priority is the fair-share scheduling priority carried by every
	// MapReduce job of this pipeline: when the cluster's slots are
	// contended by concurrent pipelines, higher-priority jobs are
	// granted slots first; equal priorities share round-robin. Zero is
	// the default class.
	Priority int
}

// DefaultOptions returns the paper's optimized configuration on m0 nodes.
func DefaultOptions(nodes int) Options {
	return Options{
		NB:            DefaultNB,
		Nodes:         nodes,
		SeparateFiles: true,
		BlockWrap:     true,
		TransposeU:    true,
		Root:          "Root",
	}
}

// ErrBadOptions reports an invalid configuration.
var ErrBadOptions = errors.New("core: invalid options")

// ErrSingularBlock reports that a diagonal block of the recursion was
// singular. Because the block method pivots only within blocks, this can
// happen for invertible inputs; callers should fall back to a fully
// pivoted inverter (e.g. lu.Invert or the ScaLAPACK baseline).
var ErrSingularBlock = errors.New("core: singular diagonal block (block-local pivoting)")

// Validate normalizes o and reports configuration errors.
func (o *Options) Validate() error {
	if o.NB < 1 {
		return fmt.Errorf("core: NB = %d: %w", o.NB, ErrBadOptions)
	}
	if o.Nodes < 2 {
		o.Nodes = 2
	}
	if o.Nodes%2 == 1 {
		o.Nodes++
	}
	if o.Root == "" {
		o.Root = "Root"
	}
	return nil
}

// Depth returns the recursion depth d = ceil(log2(n/nb)) of the block LU
// decomposition: the number of times the matrix halves before submatrices
// fit on the master node. Depth is 0 when n <= nb.
func Depth(n, nb int) int {
	if nb < 1 {
		nb = 1
	}
	d := 0
	for n > nb {
		// ceil(n/2): rounding up keeps every leaf at or below nb.
		n = (n + 1) / 2
		d++
	}
	return d
}

// LUJobs returns the number of MapReduce jobs in the LU phase for a
// *uniform* recursion of depth d: each internal node contributes one job
// (computing L2', U2, and B), giving 2^d - 1. This is the paper's
// "2^ceil(log2 n/nb)" estimate; LUJobCount gives the exact value when
// rounding makes the tree asymmetric.
func LUJobs(d int) int {
	return (1 << uint(d)) - 1
}

// LUJobCount returns the exact number of LU-phase jobs for an order-n
// matrix: the recursion splits into A1 of order ceil(n/2) and B of order
// floor(n/2), whose depths can differ by one when n is not a power of two
// times nb (the paper's "modulo rounding" caveat, Section 4.2).
func LUJobCount(n, nb int) int {
	if nb < 1 {
		nb = 1
	}
	if n <= nb {
		return 0
	}
	h := splitPoint(n)
	return 1 + LUJobCount(h, nb) + LUJobCount(n-h, nb)
}

// PipelineJobs returns the total number of MapReduce jobs to invert an
// order-n matrix with bound nb: one partition job, the LU-phase jobs, and
// one triangular-inversion/final-output job. For the paper's nb = 3200
// this reproduces the "Number of Jobs" column of Table 3
// (M1: 9, M2: 17, M3: 17, M4: 33, M5: 9).
func PipelineJobs(n, nb int) int {
	return 1 + LUJobCount(n, nb) + 1
}

// SeparateFileCount returns N(d), the number of files storing one
// triangular factor under the Section 6.1 optimization:
// N(d) = 2^d + (m0/2)(2^d - 1). Leaves contribute one file each (2^d of
// them); every internal node contributes m0/2 band files for L2' (or U2).
func SeparateFileCount(d, m0 int) int {
	p := 1 << uint(d)
	return p + m0/2*(p-1)
}

// FactorPair returns the block-wrap process grid (f1, f2) for m0 nodes:
// f2 <= f1, f1*f2 = m0, with no other factor of m0 between them
// (Section 6.2 chooses |f1 - f2| as small as possible).
func FactorPair(m0 int) (f1, f2 int) {
	if m0 < 1 {
		return 1, 1
	}
	for f := 1; f*f <= m0; f++ {
		if m0%f == 0 {
			f2 = f
		}
	}
	return m0 / f2, f2
}

// NaiveReadVolume returns the total bytes-equivalent element reads of the
// naive multiplication layout on m0 nodes for an n x n product:
// (m0 + 1) n^2 elements (Section 6.2).
func NaiveReadVolume(n, m0 int) int64 {
	return int64(m0+1) * int64(n) * int64(n)
}

// BlockWrapReadVolume returns the element reads of the block-wrap layout:
// (f1 + f2) n^2 (Section 6.2).
func BlockWrapReadVolume(n, m0 int) int64 {
	f1, f2 := FactorPair(m0)
	return int64(f1+f2) * int64(n) * int64(n)
}
