package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/dfs"
	"repro/internal/lu"
	"repro/internal/mapreduce"
	"repro/internal/matrix"
	"repro/internal/workload"
)

// invertOnce runs the full pipeline and checks the Section 7.2 acceptance
// criterion.
func invertOnce(t *testing.T, n int, opts Options, seed int64) (*matrix.Dense, *Report) {
	t.Helper()
	a := workload.Random(n, seed)
	p, err := NewPipeline(opts)
	if err != nil {
		t.Fatal(err)
	}
	inv, rep, err := p.Invert(a)
	if err != nil {
		t.Fatalf("n=%d opts=%+v: %v", n, opts, err)
	}
	res, err := matrix.IdentityResidual(a, inv)
	if err != nil {
		t.Fatal(err)
	}
	if res > 1e-7 {
		t.Fatalf("n=%d: residual %g exceeds bound", n, res)
	}
	return inv, rep
}

func TestInvertEndToEndDepths(t *testing.T) {
	// Sweep depths 0..3 by shrinking nb relative to n.
	cases := []struct {
		n, nb, nodes int
	}{
		{48, 64, 2},  // depth 0: partition + master LU + invert
		{48, 32, 4},  // depth 1
		{96, 32, 4},  // depth 2
		{100, 13, 6}, // depth 3, odd sizes
		{64, 8, 8},   // depth 3, power of two
	}
	for _, c := range cases {
		opts := DefaultOptions(c.nodes)
		opts.NB = c.nb
		_, rep := invertOnce(t, c.n, opts, int64(c.n*c.nb))
		if rep.JobsRun != rep.ExpectedJobs {
			t.Errorf("n=%d nb=%d: ran %d jobs, expected %d", c.n, c.nb, rep.JobsRun, rep.ExpectedJobs)
		}
		if rep.Depth != Depth(c.n, c.nb) {
			t.Errorf("depth mismatch: %d vs %d", rep.Depth, Depth(c.n, c.nb))
		}
	}
}

func TestInvertMatchesSingleNode(t *testing.T) {
	n := 80
	a := workload.Random(n, 901)
	opts := DefaultOptions(4)
	opts.NB = 16
	p, err := NewPipeline(opts)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := p.Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	want, err := lu.Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(got, want); d > 1e-7 {
		t.Fatalf("pipeline and single-node inverses differ by %g", d)
	}
}

func TestInvertTridiagonalClosedForm(t *testing.T) {
	n := 60
	a := workload.Tridiagonal(n)
	opts := DefaultOptions(4)
	opts.NB = 16
	p, err := NewPipeline(opts)
	if err != nil {
		t.Fatal(err)
	}
	inv, _, err := p.Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(inv, workload.TridiagonalInverse(n)); d > 1e-8 {
		t.Fatalf("closed-form mismatch %g", d)
	}
}

func TestInvertAllOptimizationCombos(t *testing.T) {
	// Correctness must be independent of the Section 6 optimizations.
	n := 72
	a := workload.Random(n, 903)
	want, err := lu.Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	for mask := 0; mask < 8; mask++ {
		opts := DefaultOptions(4)
		opts.NB = 20
		opts.SeparateFiles = mask&1 != 0
		opts.BlockWrap = mask&2 != 0
		opts.TransposeU = mask&4 != 0
		p, err := NewPipeline(opts)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := p.Invert(a)
		if err != nil {
			t.Fatalf("mask=%d: %v", mask, err)
		}
		if d := matrix.MaxAbsDiff(got, want); d > 1e-7 {
			t.Fatalf("mask=%d: differs from reference by %g", mask, d)
		}
	}
}

func TestInvertVariousNodeCounts(t *testing.T) {
	n := 64
	a := workload.Random(n, 904)
	want, err := lu.Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, nodes := range []int{2, 4, 6, 8, 12} {
		opts := DefaultOptions(nodes)
		opts.NB = 24
		p, err := NewPipeline(opts)
		if err != nil {
			t.Fatal(err)
		}
		got, rep, err := p.Invert(a)
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		if d := matrix.MaxAbsDiff(got, want); d > 1e-7 {
			t.Fatalf("nodes=%d: differs by %g", nodes, d)
		}
		f1, f2 := FactorPair(nodes)
		if rep.F1 != f1 || rep.F2 != f2 {
			t.Fatalf("nodes=%d: grid %dx%d, want %dx%d", nodes, rep.F1, rep.F2, f1, f2)
		}
	}
}

func TestDecomposeReconstructsPA(t *testing.T) {
	n := 72
	a := workload.Random(n, 905)
	opts := DefaultOptions(4)
	opts.NB = 20
	p, err := NewPipeline(opts)
	if err != nil {
		t.Fatal(err)
	}
	perm, l, u, err := p.Decompose(a)
	if err != nil {
		t.Fatal(err)
	}
	if !perm.IsValid() {
		t.Fatal("invalid permutation")
	}
	// L unit lower, U upper.
	for i := 0; i < n; i++ {
		if l.At(i, i) != 1 {
			t.Fatalf("L[%d][%d] = %v", i, i, l.At(i, i))
		}
		for j := i + 1; j < n; j++ {
			if l.At(i, j) != 0 {
				t.Fatalf("L upper junk at (%d,%d)", i, j)
			}
			if u.At(j, i) != 0 {
				t.Fatalf("U lower junk at (%d,%d)", j, i)
			}
		}
	}
	prod, err := matrix.Mul(l, u)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(prod, perm.ApplyRows(a)); d > 1e-8 {
		t.Fatalf("LU != PA by %g", d)
	}
}

func TestSeparateFileCountMatchesFormula(t *testing.T) {
	// With SeparateFiles on, the handle must reference exactly
	// N(d) = 2^d + (m0/2)(2^d - 1) files per factor.
	for _, c := range []struct{ n, nb, nodes int }{
		{64, 64, 4},  // d=0
		{64, 32, 4},  // d=1
		{64, 16, 4},  // d=2
		{64, 16, 8},  // d=2, more nodes
		{128, 16, 6}, // d=3
	} {
		opts := DefaultOptions(c.nodes)
		opts.NB = c.nb
		_, rep := invertOnce(t, c.n, opts, int64(c.n+c.nodes))
		want := SeparateFileCount(Depth(c.n, c.nb), opts.Nodes)
		if rep.LFactorFiles != want {
			t.Errorf("n=%d nb=%d m0=%d: %d factor files, want N(d)=%d", c.n, c.nb, c.nodes, rep.LFactorFiles, want)
		}
	}
}

func TestCombinedFilesWhenOptimizationOff(t *testing.T) {
	opts := DefaultOptions(4)
	opts.NB = 16
	opts.SeparateFiles = false
	_, rep := invertOnce(t, 64, opts, 906)
	if rep.LFactorFiles != 1 {
		t.Fatalf("combined run has %d factor files, want 1", rep.LFactorFiles)
	}
	if rep.MasterCombines != LUJobs(Depth(64, 16)) {
		t.Fatalf("MasterCombines = %d, want %d", rep.MasterCombines, LUJobs(Depth(64, 16)))
	}
}

func TestUnoptimizedDoesMoreIO(t *testing.T) {
	n := 96
	run := func(sep bool) dfs.Stats {
		opts := DefaultOptions(4)
		opts.NB = 16
		opts.SeparateFiles = sep
		_, rep := invertOnce(t, n, opts, 907)
		return rep.FS
	}
	with := run(true)
	without := run(false)
	if without.BytesWritten <= with.BytesWritten {
		t.Fatalf("combining should write more: %d vs %d", without.BytesWritten, with.BytesWritten)
	}
}

func TestBlockWrapReadsLess(t *testing.T) {
	// With enough nodes the block-wrap reducers read measurably less than
	// the naive row-band reducers (Section 6.2).
	n := 128
	run := func(bw bool) int64 {
		opts := DefaultOptions(16)
		opts.NB = 64
		opts.BlockWrap = bw
		_, rep := invertOnce(t, n, opts, 908)
		return rep.FS.BytesRead
	}
	wrapped := run(true)
	naive := run(false)
	if wrapped >= naive {
		t.Fatalf("block wrap should read less: %d vs %d", wrapped, naive)
	}
}

func TestFailureRecoveryDuringPipeline(t *testing.T) {
	// Kill the first attempt of assorted tasks across all jobs; the
	// pipeline must still produce a correct inverse (the Section 7.4
	// failure-recovery behaviour).
	n := 64
	a := workload.Random(n, 909)
	opts := DefaultOptions(4)
	opts.NB = 16
	fs := dfs.New(opts.Nodes, dfs.DefaultReplication)
	cl := mapreduce.NewCluster(fs, opts.Nodes)
	var mu sync.Mutex
	killed := map[string]bool{}
	cl.InjectFailure = func(job string, taskID, attempt int, isMap bool) error {
		mu.Lock()
		defer mu.Unlock()
		key := fmt.Sprintf("%s/%d/%v", job, taskID, isMap)
		if attempt == 0 && taskID%2 == 0 && !killed[key] {
			killed[key] = true
			return errors.New("injected crash")
		}
		return nil
	}
	p, err := NewPipelineOn(opts, fs, cl)
	if err != nil {
		t.Fatal(err)
	}
	inv, rep, err := p.Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TaskFailures == 0 {
		t.Fatal("no failures recorded; injector did not fire")
	}
	res, err := matrix.IdentityResidual(a, inv)
	if err != nil {
		t.Fatal(err)
	}
	if res > 1e-7 {
		t.Fatalf("residual %g after failure recovery", res)
	}
}

func TestInvertRejectsNonSquare(t *testing.T) {
	p, err := NewPipeline(DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Invert(matrix.New(3, 4)); err == nil {
		t.Fatal("non-square accepted")
	}
	if _, _, _, err := p.Decompose(matrix.New(3, 4)); err == nil {
		t.Fatal("non-square accepted by Decompose")
	}
}

func TestInvertSingularFails(t *testing.T) {
	p, err := NewPipeline(DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Invert(matrix.New(8, 8)); err == nil {
		t.Fatal("singular matrix accepted")
	}
}

func TestInvertEmptyMatrix(t *testing.T) {
	p, err := NewPipeline(DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	inv, _, err := p.Invert(matrix.New(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if inv.Rows != 0 {
		t.Fatal("empty inverse not empty")
	}
}

func TestSingleFileNeverWrittenTwice(t *testing.T) {
	// Section 5.2: "no two mappers write data into the same file". Verify
	// every intermediate file was written exactly once.
	opts := DefaultOptions(4)
	opts.NB = 16
	a := workload.Random(64, 910)
	p, err := NewPipeline(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Invert(a); err != nil {
		t.Fatal(err)
	}
	for _, path := range p.FS.List("") {
		wc, err := p.FS.WriteCount(path)
		if err != nil {
			t.Fatal(err)
		}
		if wc != 1 {
			t.Errorf("%s written %d times", path, wc)
		}
	}
}

func TestDirectoryLayoutMatchesFigure4(t *testing.T) {
	opts := DefaultOptions(4)
	opts.NB = 16
	a := workload.Random(64, 911)
	p, err := NewPipeline(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Invert(a); err != nil {
		t.Fatal(err)
	}
	// Expect the Figure 4 shape: Root/MapInput, Root/A1/..., A2, A3, A4,
	// L2, U2, OUT at each internal level.
	mustHave := []string{
		"Root/MapInput/A.0",
		"Root/A2/", "Root/A3/", "Root/A4/",
		"Root/L2/L.0", "Root/U2/U.0", "Root/OUT/A.0",
		"Root/A1/A2/", "Root/A1/L2/", "Root/A1/OUT/",
		"Root/p.bin",
	}
	all := strings.Join(p.FS.List(""), "\n") + "\n"
	for _, frag := range mustHave {
		if !strings.Contains(all, frag) {
			t.Errorf("layout missing %q", frag)
		}
	}
}

func TestTextInputFormat(t *testing.T) {
	// The paper's inputs are text ("a.txt", Table 3's 2.5x size penalty);
	// the pipeline must produce identical results and visibly larger
	// partition-phase reads.
	n := 64
	a := workload.Random(n, 1203)
	run := func(text bool) (*matrix.Dense, int64) {
		opts := DefaultOptions(4)
		opts.NB = 16
		opts.TextInput = text
		p, err := NewPipeline(opts)
		if err != nil {
			t.Fatal(err)
		}
		inv, rep, err := p.Invert(a)
		if err != nil {
			t.Fatal(err)
		}
		return inv, rep.FS.BytesRead
	}
	binInv, binRead := run(false)
	txtInv, txtRead := run(true)
	if d := matrix.MaxAbsDiff(binInv, txtInv); d > 1e-9 {
		t.Fatalf("text and binary inputs give different inverses (%g)", d)
	}
	if txtRead <= binRead {
		t.Fatalf("text input should read more: %d vs %d", txtRead, binRead)
	}
}

func TestDeepRecursion(t *testing.T) {
	// nb = 4 with n = 128 gives depth 5: 31 LU jobs + partition + invert,
	// the same pipeline length as the paper's M4 run (33 jobs).
	opts := DefaultOptions(4)
	opts.NB = 4
	_, rep := invertOnce(t, 128, opts, 1201)
	if rep.Depth != 5 {
		t.Fatalf("depth = %d", rep.Depth)
	}
	if rep.JobsRun != 33 {
		t.Fatalf("jobs = %d, want 33 (M4's pipeline length)", rep.JobsRun)
	}
	if rep.MasterLUs != 32 {
		t.Fatalf("leaf decompositions = %d, want 32", rep.MasterLUs)
	}
}

func TestReportJobLog(t *testing.T) {
	opts := DefaultOptions(4)
	opts.NB = 16
	_, rep := invertOnce(t, 64, opts, 1202)
	if len(rep.Jobs) != rep.JobsRun {
		t.Fatalf("job log has %d entries for %d jobs", len(rep.Jobs), rep.JobsRun)
	}
	if rep.Jobs[0].Name != "partition" {
		t.Fatalf("first job = %s", rep.Jobs[0].Name)
	}
	if rep.Jobs[len(rep.Jobs)-1].Name != "invert" {
		t.Fatalf("last job = %s", rep.Jobs[len(rep.Jobs)-1].Name)
	}
	for _, j := range rep.Jobs {
		if j.MapTasks == 0 {
			t.Fatalf("job %s has no map tasks", j.Name)
		}
	}
}

func TestReportAccounting(t *testing.T) {
	opts := DefaultOptions(4)
	opts.NB = 16
	_, rep := invertOnce(t, 64, opts, 912)
	if rep.MapTasks == 0 || rep.ReduceTasks == 0 {
		t.Fatalf("task counts empty: %+v", rep)
	}
	if rep.FS.BytesWritten == 0 || rep.FS.BytesRead == 0 {
		t.Fatal("FS accounting empty")
	}
	if rep.MasterLUs != 1<<uint(rep.Depth) {
		t.Fatalf("MasterLUs = %d, want 2^d = %d", rep.MasterLUs, 1<<uint(rep.Depth))
	}
	if rep.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}
}

func TestPipelineDeterminant(t *testing.T) {
	opts := DefaultOptions(4)
	opts.NB = 12
	p, err := NewPipeline(opts)
	if err != nil {
		t.Fatal(err)
	}
	a := workload.DiagonallyDominant(40, 1301)
	got, err := p.Determinant(a)
	if err != nil {
		t.Fatal(err)
	}
	f, err := lu.Decompose(a)
	if err != nil {
		t.Fatal(err)
	}
	want := f.Det()
	if rel := (got - want) / want; rel > 1e-9 || rel < -1e-9 {
		t.Fatalf("det = %g, want %g", got, want)
	}
	if _, err := p.Determinant(matrix.New(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
}
