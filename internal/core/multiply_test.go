package core

import (
	"testing"

	"repro/internal/lu"
	"repro/internal/matrix"
	"repro/internal/workload"
)

func TestMultiplyJob(t *testing.T) {
	for _, nodes := range []int{2, 4, 8} {
		opts := DefaultOptions(nodes)
		p, err := NewPipeline(opts)
		if err != nil {
			t.Fatal(err)
		}
		a := workload.RandomRect(37, 23, int64(nodes))
		b := workload.RandomRect(23, 41, int64(nodes+1))
		got, err := p.Multiply(a, b)
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		want, err := matrix.Mul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if d := matrix.MaxAbsDiff(got, want); d > 1e-12 {
			t.Fatalf("nodes=%d: product differs by %g", nodes, d)
		}
	}
}

func TestMultiplyJobShapeError(t *testing.T) {
	p, err := NewPipeline(DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Multiply(matrix.New(2, 3), matrix.New(2, 3)); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestMultiplyBlockWrapReadsLessThanNaive(t *testing.T) {
	// Section 6.2 measured at the job level, isolated from the rest of
	// the pipeline: block wrap reads (f1+f2)/(m0+1) of the naive volume.
	a := workload.Random(96, 77)
	b := workload.Random(96, 78)
	read := func(wrap bool) int64 {
		opts := DefaultOptions(16)
		opts.BlockWrap = wrap
		p, err := NewPipeline(opts)
		if err != nil {
			t.Fatal(err)
		}
		p.FS.ResetStats()
		if _, err := p.Multiply(a, b); err != nil {
			t.Fatal(err)
		}
		return p.FS.Stats().BytesRead
	}
	wrapped := read(true)
	naive := read(false)
	if wrapped >= naive {
		t.Fatalf("block wrap read %d >= naive %d", wrapped, naive)
	}
}

func TestSolvePipeline(t *testing.T) {
	n, k := 72, 9
	a := workload.Random(n, 79)
	x := workload.RandomRect(n, k, 80)
	b, err := matrix.Mul(a, x)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(4)
	opts.NB = 20
	p, err := NewPipeline(opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(got, x); d > 1e-8 {
		t.Fatalf("solve error %g", d)
	}
}

func TestSolveMatchesInverseRoute(t *testing.T) {
	n := 48
	a := workload.Random(n, 81)
	b := workload.RandomRect(n, 5, 82)
	opts := DefaultOptions(4)
	opts.NB = 16

	p1, err := NewPipeline(opts)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := p1.Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}

	f, err := lu.Decompose(a)
	if err != nil {
		t.Fatal(err)
	}
	viaLU, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(direct, viaLU); d > 1e-8 {
		t.Fatalf("pipeline solve differs from reference by %g", d)
	}
}

func TestSolveShapeErrors(t *testing.T) {
	p, err := NewPipeline(DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Solve(matrix.New(3, 4), matrix.New(3, 1)); err == nil {
		t.Fatal("non-square A accepted")
	}
	if _, err := p.Solve(matrix.New(3, 3), matrix.New(4, 1)); err == nil {
		t.Fatal("mismatched B accepted")
	}
}

func TestSolveFewerJobsThanInvert(t *testing.T) {
	// Solving runs partition + LU + one solve job: one fewer dependency
	// on the triangular-inversion machinery, and no n^3 inversion work.
	n := 64
	a := workload.Random(n, 83)
	b := workload.RandomRect(n, 2, 84)
	opts := DefaultOptions(4)
	opts.NB = 16
	p, err := NewPipeline(opts)
	if err != nil {
		t.Fatal(err)
	}
	before := p.Cluster.JobsRun()
	if _, err := p.Solve(a, b); err != nil {
		t.Fatal(err)
	}
	jobs := p.Cluster.JobsRun() - before
	if jobs != PipelineJobs(n, opts.NB) {
		// Same count: partition + LU jobs + 1 solve job (instead of the
		// inversion job).
		t.Fatalf("solve ran %d jobs, want %d", jobs, PipelineJobs(n, opts.NB))
	}
}
