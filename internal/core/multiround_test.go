package core

import (
	"math"
	"testing"

	"repro/internal/dfs"
	"repro/internal/matrix"
	"repro/internal/workload"
)

// segBoundsOf reconstructs the inner-dimension segment edges a plan uses,
// so tests can run the sequential reference over the same fold.
func segBoundsOf(pl mulPlan, inner int) []int {
	bounds := []int{0}
	for s := 0; s < pl.rho; s++ {
		_, hi := bandBounds(inner, pl.rho, s)
		bounds = append(bounds, hi)
	}
	return bounds
}

func bitIdentical(a, b *matrix.Dense) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		if math.Float64bits(v) != math.Float64bits(b.Data[i]) {
			return false
		}
	}
	return true
}

func TestPlanMultiplyResolution(t *testing.T) {
	base := DefaultOptions(16)
	if pl := planMultiply(base, 64, 64, 64); pl.strategy != MultiplySingleRound || pl.rho != 1 {
		t.Fatalf("default plan = %+v, want single-round rho 1", pl)
	}
	repl := base
	repl.Multiply = MultiplyReplicated
	pl := planMultiply(repl, 64, 64, 64)
	if pl.strategy != MultiplyReplicated || pl.rho < 2 || 16%pl.rho != 0 {
		t.Fatalf("replicated plan = %+v", pl)
	}
	// m0 = 16: rho = 2 gives grid (4,2) and cost 4+2+2 = 8, the minimum.
	if pl.rho != 2 || pl.g1 != 4 || pl.g2 != 2 {
		t.Fatalf("replicated plan = %+v, want rho 2 grid (4,2)", pl)
	}
	// rho is clamped to the inner dimension: inner = 1 degenerates.
	if pl := planMultiply(repl, 64, 1, 64); pl.strategy != MultiplySingleRound {
		t.Fatalf("inner=1 plan = %+v, want single-round", pl)
	}
	sr := base
	sr.Multiply = MultiplySpaceRound
	if pl := planMultiply(sr, 64, 64, 64); pl.strategy != MultiplySpaceRound || pl.rho != 2 {
		t.Fatalf("space-round default plan = %+v, want rho 2", pl)
	}
	sr.MultiplyRho = 4
	if pl := planMultiply(sr, 64, 64, 64); pl.rho != 4 {
		t.Fatalf("space-round rho=4 plan = %+v", pl)
	}
	// A memory budget derives the round count: on the (4,4) grid the
	// full-width operands are per = 8*(64*64/4 + 64*64/4) = 16 KiB and
	// the output block out = 2 KiB; a budget of out + per/3 forces three
	// rounds.
	out := int64(8 * 64 * 64 / 16)
	per := int64(8 * (64*64/4 + 64*64/4))
	sr.MultiplyRho = 0
	sr.MultiplyMemory = out + per/3
	pl = planMultiply(sr, 64, 64, 64)
	if pl.rho < 2 {
		t.Fatalf("space-round memory plan = %+v, want rho >= 2", pl)
	}
	if got := per / int64(pl.rho); got > sr.MultiplyMemory-out {
		t.Fatalf("rho %d leaves per-round bytes %d over budget %d", pl.rho, got, sr.MultiplyMemory-out)
	}
}

func TestBestReplicatedRho(t *testing.T) {
	// m0 = 64: the 3D optimum 4x4x4 has cost 12, beating every other
	// divisor split.
	if rho := bestReplicatedRho(64); rho != 4 {
		t.Fatalf("bestReplicatedRho(64) = %d, want 4", rho)
	}
	if rho := bestReplicatedRho(2); rho != 1 {
		// 2 = 1x1x2 costs 1+1+2 = 4 > FactorPair cost 2+1+1... the
		// degenerate grid never beats (2,1) single-round shape, but the
		// chosen rho must at least be a valid divisor.
		if 2%rho != 0 {
			t.Fatalf("bestReplicatedRho(2) = %d, not a divisor", rho)
		}
	}
}

// Every strategy and rho must reproduce the sequential segmented
// reference bit for bit, across rectangular shapes, node counts and
// segment counts — the acceptance criterion that makes the strategies
// interchangeable mid-pipeline.
func TestMultiplyStrategiesBitIdentical(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{37, 23, 41},
		{64, 64, 64},
		{16, 95, 31},
	}
	for _, nodes := range []int{4, 16} {
		for _, sh := range shapes {
			a := workload.RandomRect(sh.m, sh.k, int64(nodes))
			b := workload.RandomRect(sh.k, sh.n, int64(nodes+1))
			for _, cfg := range []struct {
				strategy MultiplyStrategy
				rho      int
			}{
				{MultiplySingleRound, 0},
				{MultiplyReplicated, 0},
				{MultiplyReplicated, 2},
				{MultiplyReplicated, 4},
				{MultiplySpaceRound, 2},
				{MultiplySpaceRound, 3},
			} {
				opts := DefaultOptions(nodes)
				opts.Multiply = cfg.strategy
				opts.MultiplyRho = cfg.rho
				p, err := NewPipeline(opts)
				if err != nil {
					t.Fatal(err)
				}
				got, rep, err := p.MultiplyWithReport(a, b)
				if err != nil {
					t.Fatalf("nodes=%d shape=%v %s/rho=%d: %v", nodes, sh, cfg.strategy, cfg.rho, err)
				}
				pl := planMultiply(opts, sh.m, sh.k, sh.n)
				want, err := matrix.MulSegTransB(a, b.Transpose(), segBoundsOf(pl, sh.k))
				if err != nil {
					t.Fatal(err)
				}
				if !bitIdentical(got, want) {
					t.Fatalf("nodes=%d shape=%v %s/rho=%d: differs from segmented reference by %g",
						nodes, sh, cfg.strategy, cfg.rho, matrix.MaxAbsDiff(got, want))
				}
				// And within rounding of the unsegmented product.
				exact, err := matrix.Mul(a, b)
				if err != nil {
					t.Fatal(err)
				}
				if d := matrix.MaxAbsDiff(got, exact); d > 1e-9 {
					t.Fatalf("nodes=%d shape=%v %s/rho=%d: differs from Mul by %g", nodes, sh, cfg.strategy, cfg.rho, d)
				}
				if rep.Strategy != pl.strategy || rep.Rho != pl.rho {
					t.Fatalf("report %+v does not match plan %+v", rep, pl)
				}
			}
		}
	}
}

// Jobs per strategy: single-round 1, replicated 2 (partials + sum),
// space-round rho chained rounds.
func TestMultiplyReportJobCounts(t *testing.T) {
	a := workload.RandomRect(48, 48, 7)
	b := workload.RandomRect(48, 48, 8)
	cases := []struct {
		strategy MultiplyStrategy
		rho      int
		jobs     int
	}{
		{MultiplySingleRound, 0, 1},
		{MultiplyReplicated, 2, 2},
		{MultiplySpaceRound, 3, 3},
	}
	for _, c := range cases {
		opts := DefaultOptions(16)
		opts.Multiply = c.strategy
		opts.MultiplyRho = c.rho
		p, err := NewPipeline(opts)
		if err != nil {
			t.Fatal(err)
		}
		_, rep, err := p.MultiplyWithReport(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Jobs != c.jobs {
			t.Errorf("%s/rho=%d: %d jobs, want %d", c.strategy, c.rho, rep.Jobs, c.jobs)
		}
	}
}

// The tentpole's measurable claim: on the gated shape the replicated
// strategy moves strictly fewer bytes than single-round. With explicit
// placement both byte counts are deterministic, so the comparison is
// exact, not statistical.
func TestMultiplyReplicatedTransfersLessThanSingleRound(t *testing.T) {
	const n, nodes = 128, 16
	a := workload.Random(n, 11)
	b := workload.Random(n, 12)
	measure := func(strategy MultiplyStrategy) int64 {
		opts := DefaultOptions(nodes)
		opts.Multiply = strategy
		p, err := NewPipeline(opts)
		if err != nil {
			t.Fatal(err)
		}
		_, rep, err := p.MultiplyWithReport(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if rep.TransferredBytes <= 0 {
			t.Fatalf("%s: no transfer accounted", strategy)
		}
		return rep.TransferredBytes
	}
	single := measure(MultiplySingleRound)
	repl := measure(MultiplyReplicated)
	if repl >= single {
		t.Fatalf("replicated moved %d bytes, single-round %d — no win", repl, single)
	}
	// The model predicts (g1+g2+rho-1)/(f1+f2) = 7/8 at m0 = 16; allow
	// headroom for job-control bytes but require a real gap.
	if float64(repl) > 0.95*float64(single) {
		t.Fatalf("replicated won only %d vs %d (<5%%)", repl, single)
	}
}

// Space-round matches single-round transfer asymptotically but must not
// blow it up: the state blocks it persists between rounds stay on their
// own node and cost nothing.
func TestMultiplySpaceRoundTransferNearSingleRound(t *testing.T) {
	const n, nodes = 128, 16
	a := workload.Random(n, 21)
	b := workload.Random(n, 22)
	measure := func(strategy MultiplyStrategy, rho int) int64 {
		opts := DefaultOptions(nodes)
		opts.Multiply = strategy
		opts.MultiplyRho = rho
		p, err := NewPipeline(opts)
		if err != nil {
			t.Fatal(err)
		}
		_, rep, err := p.MultiplyWithReport(a, b)
		if err != nil {
			t.Fatal(err)
		}
		return rep.TransferredBytes
	}
	single := measure(MultiplySingleRound, 0)
	space := measure(MultiplySpaceRound, 4)
	if float64(space) > 1.10*float64(single) {
		t.Fatalf("space-round moved %d bytes vs single-round %d (>10%% over)", space, single)
	}
}

// The inversion pipeline accepts every strategy: the level jobs route
// B = A4 - L2'U2 through the multi-round runner and the result still
// inverts the input.
func TestInvertWithMultiRoundStrategies(t *testing.T) {
	const n = 64
	a := workload.DiagonallyDominant(n, 31)
	for _, strategy := range []MultiplyStrategy{MultiplyReplicated, MultiplySpaceRound} {
		for _, transposeU := range []bool{true, false} {
			opts := DefaultOptions(4)
			opts.NB = 16
			opts.Multiply = strategy
			opts.TransposeU = transposeU
			p, err := NewPipeline(opts)
			if err != nil {
				t.Fatal(err)
			}
			inv, rep, err := p.Invert(a)
			if err != nil {
				t.Fatalf("%s transposeU=%v: %v", strategy, transposeU, err)
			}
			resid, err := matrix.IdentityResidual(a, inv)
			if err != nil {
				t.Fatal(err)
			}
			if resid > 1e-8 {
				t.Fatalf("%s transposeU=%v: residual %g", strategy, transposeU, resid)
			}
			// Multi-round levels run more jobs than the single job per
			// internal node.
			if rep.JobsRun <= PipelineJobs(n, opts.NB) {
				t.Fatalf("%s: %d jobs, want more than the single-round %d",
					strategy, rep.JobsRun, PipelineJobs(n, opts.NB))
			}
		}
	}
}

// Solve still works when the decomposition ran with a multi-round
// strategy (the factor references are fine band x segment tilings).
func TestSolveWithReplicatedMultiply(t *testing.T) {
	const n = 48
	opts := DefaultOptions(4)
	opts.NB = 12
	opts.Multiply = MultiplyReplicated
	a := workload.DiagonallyDominant(n, 41)
	b := workload.RandomRect(n, 5, 42)
	p, err := NewPipeline(opts)
	if err != nil {
		t.Fatal(err)
	}
	x, err := p.Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ax, err := matrix.Mul(a, x)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(ax, b); d > 1e-7 {
		t.Fatalf("A X differs from B by %g", d)
	}
}

func TestMulPlanJobs(t *testing.T) {
	cases := []struct {
		plan mulPlan
		want int
	}{
		{mulPlan{strategy: MultiplySingleRound, g1: 4, g2: 4, rho: 1}, 1},
		{mulPlan{strategy: MultiplyReplicated, g1: 4, g2: 2, rho: 2}, 2},
		{mulPlan{strategy: MultiplySpaceRound, g1: 4, g2: 4, rho: 3}, 3},
	}
	for _, c := range cases {
		if got := c.plan.jobs(); got != c.want {
			t.Errorf("%s rho=%d: jobs() = %d, want %d", c.plan.strategy, c.plan.rho, got, c.want)
		}
	}
}

func TestRoundsForMemoryEdgeCases(t *testing.T) {
	// A budget that cannot even hold the output block degenerates to one
	// inner column per round.
	if got := roundsForMemory(10, 1, 1, 8, 8, 8); got != 8 {
		t.Fatalf("tiny budget: rho = %d, want 8", got)
	}
	// An effectively unbounded budget needs a single round.
	if got := roundsForMemory(1<<40, 4, 4, 64, 64, 64); got != 1 {
		t.Fatalf("huge budget: rho = %d, want 1", got)
	}
	// The derived round count never exceeds the inner dimension.
	out := int64(64*64) / 16 * 8
	if got := roundsForMemory(out+1, 4, 4, 64, 4, 64); got != 4 {
		t.Fatalf("clamp: rho = %d, want inner 4", got)
	}
}

func TestWithBackupPlacement(t *testing.T) {
	durable := mulGeom{m0: 4, durable: true}
	if got := durable.withBackup([]int{2}); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("backup for [2] = %v, want [2 3]", got)
	}
	if got := durable.withBackup([]int{3}); len(got) != 2 || got[1] != 0 {
		t.Fatalf("backup for [3] = %v, want wrap to node 0", got)
	}
	if got := durable.withBackup([]int{1, 2}); len(got) != 2 {
		t.Fatalf("two replicas gained a backup: %v", got)
	}
	clean := mulGeom{m0: 4, durable: false}
	if got := clean.withBackup([]int{2}); len(got) != 1 {
		t.Fatalf("clean run gained a backup: %v", got)
	}
	tiny := mulGeom{m0: 1, durable: true}
	if got := tiny.withBackup([]int{0}); len(got) != 1 {
		t.Fatalf("single-node cluster gained a backup: %v", got)
	}
}

// readRegionTransposed must fall back to read-then-transpose when the
// underlying blocks are stored in natural orientation (TransposeU off).
func TestReadRegionTransposedNaturalFallback(t *testing.T) {
	fs := dfs.New(1, 1)
	u2 := workload.Random(4, 77)
	u2 = u2.Block(0, 4, 0, 4) // fresh copy
	left, right := u2.Block(0, 4, 0, 2), u2.Block(0, 4, 2, 4)
	if err := fs.WriteMatrix("T/U.0", left); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteMatrix("T/U.1", right); err != nil {
		t.Fatal(err)
	}
	ref := matRef{Rows: 4, Cols: 4, Blocks: []blockFile{
		{Path: "T/U.0", R0: 0, R1: 4, C0: 0, C1: 2},
		{Path: "T/U.1", R0: 0, R1: 4, C0: 2, C1: 4},
	}}
	got, err := readRegionTransposed(masterReader(fs), ref, 1, 3, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := u2.Transpose().Block(1, 3, 0, 4)
	if !bitIdentical(got, want) {
		t.Fatal("transposed fallback read differs from reference")
	}
}
