package core

import (
	"fmt"
	"sort"

	"repro/internal/lu"
	"repro/internal/mapreduce"
	"repro/internal/matrix"
	"repro/internal/obs"
)

// The final MapReduce job (Section 5.4): mappers invert the triangular
// factors column-independently (Equation 4) — half of them computing
// interleaved columns of L^-1, the other half interleaved rows of U^-1
// (as columns of (U^T)^-1) — and reducers multiply U^-1 L^-1 on a grid of
// discrete rows x discrete columns (block wrap over interleaved index
// classes, which balances load because triangular work varies by index),
// applying the pivot permutation to produce A^-1.
//
// Permutation convention: from PA = LU it follows that
// A^-1 = U^-1 L^-1 P, a *column* permutation of the product — column k of
// U^-1 L^-1 becomes column p[k] of A^-1, which is what the reducers
// apply. (The paper's Section 4.3 one-liner "[A^-1][S]ij = sum U^-1ik
// L^-1kj" reads as a row scatter; with their S defined as "the permuted
// row number for the i-th row" the two statements coincide — the
// convention here is the one verified by the A*A^-1 = I tests.)

// runInvertJob executes the job and assembles the final inverse.
func (st *pipelineState) runInvertJob(hd *luHandle) (*matrix.Dense, error) {
	m0 := st.opts.Nodes
	mhalf := m0 / 2
	n := hd.n
	f1, f2 := FactorPair(m0)
	if !st.opts.BlockWrap {
		f1, f2 = m0, 1
	}
	root := st.opts.Root
	p := hd.p

	job := &mapreduce.Job{
		Name:      "invert",
		Splits:    mapreduce.ControlSplits(m0),
		NumReduce: m0,
		Priority:  st.opts.Priority,
		Partition: func(key string, nred int) int {
			var v int
			fmt.Sscanf(key, "%d", &v)
			return v % nred
		},
		Map: func(ctx *mapreduce.TaskContext, split mapreduce.InputSplit, emit mapreduce.Emitter) error {
			j := split.ID
			rd := nodeReader{fs: ctx.FS, node: ctx.Node}
			if j < mhalf {
				if err := invertLColumns(rd, st, root, j, mhalf, f2, hd); err != nil {
					return err
				}
			} else {
				if err := invertURows(rd, st, root, j-mhalf, mhalf, f1, hd); err != nil {
					return err
				}
			}
			emit.Emit(fmt.Sprintf("%d", j), nil)
			return nil
		},
		Reduce: func(ctx *mapreduce.TaskContext, key string, values [][]byte, emit mapreduce.Emitter) error {
			var r int
			if _, err := fmt.Sscanf(key, "%d", &r); err != nil {
				return err
			}
			return multiplyInverseBlock(nodeReader{fs: ctx.FS, node: ctx.Node}, st, root, r, mhalf, f1, f2, n, p)
		},
	}
	job.TraceParent = st.span
	jr, err := st.cluster.RunCtx(st.runCtx(), job)
	if err != nil {
		return nil, err
	}
	st.recordJob(jr)

	// Assemble A^-1 from the reducers' indexed output blocks.
	aspan := st.span.Child("assemble_output", obs.KindOp)
	defer aspan.Finish()
	out := matrix.New(n, n)
	rd := masterReader(st.fs)
	for r := 0; r < m0; r++ {
		path := fmt.Sprintf("%s/INV/A.%d", root, r)
		if !st.fs.Exists(path) {
			continue // empty grid cell (more nodes than rows)
		}
		blk, err := readIndexed(rd, path)
		if err != nil {
			return nil, err
		}
		for bi, gi := range blk.RowIdx {
			row := blk.Data.Row(bi)
			for bj, gj := range blk.ColIdx {
				out.Set(gi, gj, row[bj])
			}
		}
	}
	return out, nil
}

// interleaved returns the sorted indices {k : k ≡ j (mod m), k < n} — the
// paper's balanced assignment of non-contiguous columns to node j.
func interleaved(n, m, j int) []int {
	var out []int
	for k := j; k < n; k += m {
		out = append(out, k)
	}
	return out
}

// invertLColumns computes L-mapper j's interleaved columns of L^-1 and
// writes them grouped by column residue class mod f2, so that reducer
// column-group t reads exactly the files ending in .t.
func invertLColumns(rd nodeReader, st *pipelineState, root string, j, mhalf, f2 int, hd *luHandle) error {
	n := hd.n
	cols := interleaved(n, mhalf, j)
	var compact *matrix.Dense
	if st.opts.StreamingInversion {
		var err error
		compact, _, err = streamLowerInverseColumns(func(r0, r1 int) (*matrix.Dense, error) {
			return hd.readLRows(rd, r0, r1)
		}, n, cols, true, streamBandRows(n, st.opts.Nodes))
		if err != nil {
			return err
		}
	} else {
		l, err := hd.readL(rd)
		if err != nil {
			return err
		}
		compact = compactColumns(l, cols, true)
	}
	return writeInterleavedGroups(st, fmt.Sprintf("%s/LINV/L.%d", root, j), compact, cols, f2, false)
}

// invertURows computes U-mapper j's interleaved rows of U^-1 by inverting
// the corresponding columns of (U^T)^-1 (the Section 4.1 transpose trick),
// grouped by row residue class mod f1.
func invertURows(rd nodeReader, st *pipelineState, root string, j, mhalf, f1 int, hd *luHandle) error {
	n := hd.n
	rows := interleaved(n, mhalf, j)
	var compact *matrix.Dense
	if st.opts.StreamingInversion {
		var err error
		compact, _, err = streamLowerInverseColumns(func(r0, r1 int) (*matrix.Dense, error) {
			return hd.readUTRows(rd, r0, r1)
		}, n, rows, false, streamBandRows(n, st.opts.Nodes))
		if err != nil {
			return err
		}
	} else {
		ut, err := hd.readUT(rd)
		if err != nil {
			return err
		}
		compact = compactColumns(ut, rows, false)
	}
	// Column r of (U^T)^-1 is row r of U^-1.
	return writeInterleavedGroups(st, fmt.Sprintf("%s/UINV/U.%d", root, j), compact, rows, f1, true)
}

// streamBandRows picks the streaming band height: one m0-th of the order,
// at least one row.
func streamBandRows(n, m0 int) int {
	b := n / m0
	if b < 1 {
		b = 1
	}
	return b
}

// compactColumns computes the idx columns of the inverse of lower
// triangular lt into an n x len(idx) matrix (the in-memory path).
func compactColumns(lt *matrix.Dense, idx []int, unit bool) *matrix.Dense {
	n := lt.Rows
	dst := matrix.New(n, n)
	for _, c := range idx {
		lu.InvertLowerColumn(lt, c, unit, dst)
	}
	out := matrix.New(n, len(idx))
	for bi, c := range idx {
		for r := 0; r < n; r++ {
			out.Set(r, bi, dst.At(r, c))
		}
	}
	return out
}

// writeInterleavedGroups splits the compact column block (column bi is
// global index idx[bi]) into residue classes mod m and writes one indexed
// file per non-empty class. asRows stores each class transposed, i.e. the
// columns become rows of the stored block (used for U^-1 whose natural
// unit is a row).
func writeInterleavedGroups(st *pipelineState, base string, compact *matrix.Dense, idx []int, m int, asRows bool) error {
	n := compact.Rows
	for t := 0; t < m; t++ {
		var group []int
		var groupAt []int
		for bi, c := range idx {
			if c%m == t {
				group = append(group, c)
				groupAt = append(groupAt, bi)
			}
		}
		if len(group) == 0 {
			continue
		}
		block := matrix.New(n, len(group))
		for gi, bi := range groupAt {
			for r := 0; r < n; r++ {
				block.Set(r, gi, compact.At(r, bi))
			}
		}
		ib := indexedBlock{ColIdx: group, Data: block}
		if asRows {
			ib = indexedBlock{RowIdx: group, Data: block.Transpose()}
		}
		if err := writeIndexed(st.fs, fmt.Sprintf("%s.%d", base, t), ib); err != nil {
			return err
		}
	}
	return nil
}

// multiplyInverseBlock computes reducer r's grid block of U^-1 L^-1: rows
// of U^-1 with index ≡ r/f2 (mod f1) times columns of L^-1 with index
// ≡ r%f2 (mod f2). The result columns are scattered through the pivot
// permutation P (A^-1 = U^-1 L^-1 P) and written as an indexed block.
func multiplyInverseBlock(rd nodeReader, st *pipelineState, root string, r, mhalf, f1, f2, n int, p matrix.Perm) error {
	rg, cg := r/f2, r%f2

	// Gather U^-1 rows ≡ rg (mod f1) from the U-mappers' .rg files.
	var uRows []int
	uData := make(map[int][]float64)
	for i := 0; i < mhalf; i++ {
		path := fmt.Sprintf("%s/UINV/U.%d.%d", root, i, rg)
		if !st.fs.Exists(path) {
			continue
		}
		blk, err := readIndexed(rd, path)
		if err != nil {
			return err
		}
		for bi, gidx := range blk.RowIdx {
			uRows = append(uRows, gidx)
			uData[gidx] = blk.Data.Row(bi)
		}
	}
	// Gather L^-1 columns ≡ cg (mod f2) from the L-mappers' .cg files.
	var lCols []int
	lData := make(map[int][]float64)
	for i := 0; i < mhalf; i++ {
		path := fmt.Sprintf("%s/LINV/L.%d.%d", root, i, cg)
		if !st.fs.Exists(path) {
			continue
		}
		blk, err := readIndexed(rd, path)
		if err != nil {
			return err
		}
		for bj, gidx := range blk.ColIdx {
			col := make([]float64, blk.Data.Rows)
			for row := 0; row < blk.Data.Rows; row++ {
				col[row] = blk.Data.At(row, bj)
			}
			lCols = append(lCols, gidx)
			lData[gidx] = col
		}
	}
	if len(uRows) == 0 || len(lCols) == 0 {
		return nil
	}
	sort.Ints(uRows)
	sort.Ints(lCols)

	// C[i][j] = dot(U^-1 row i, L^-1 col j); final column index is p[j].
	out := matrix.New(len(uRows), len(lCols))
	colIdx := make([]int, len(lCols))
	for bj, c := range lCols {
		colIdx[bj] = p[c]
	}
	for bi, ri := range uRows {
		urow := uData[ri]
		orow := out.Row(bi)
		for bj, c := range lCols {
			orow[bj] = matrix.Dot(urow, lData[c])
		}
	}
	return writeIndexed(st.fs, fmt.Sprintf("%s/INV/A.%d", root, r),
		indexedBlock{RowIdx: uRows, ColIdx: colIdx, Data: out})
}
