package core

import (
	"errors"
	"fmt"

	"repro/internal/lu"
	"repro/internal/mapreduce"
	"repro/internal/matrix"
	"repro/internal/obs"
)

// Block LU decomposition as a pipeline of MapReduce jobs (Section 4.2 and
// Algorithm 2). Each internal recursion node runs exactly one job whose
// mappers compute L2' and U2 (Equation 6, via triangular solves) and whose
// reducers compute B = A4 - L2'U2 with the block-wrap layout (Section 6.2,
// Figure 5). Leaves are decomposed on the master with Algorithm 1.

// computeLU decomposes the submatrix described by node and returns its
// factor handle. jobs are appended to st's counters as they run. The
// run's context is observed before every leaf decomposition and recursion
// level, so a canceled run stops between jobs rather than mid-pipeline.
func (st *pipelineState) computeLU(node *nodeInput) (*luHandle, error) {
	if err := st.runCtx().Err(); err != nil {
		return nil, fmt.Errorf("core: %s: %w", node.dir, err)
	}
	if node.n <= st.opts.NB {
		return st.masterLU(node)
	}
	h := splitPoint(node.n)
	a1, a2ref, a3ref, a4ref := node.quadrants()

	// Step 1: recurse on A1 (Algorithm 2 line 6).
	h1, err := st.computeLU(a1)
	if err != nil {
		return nil, err
	}

	// Step 2: one MapReduce job computes L2', U2 and B (lines 7-9).
	hd, err := st.runLevelJob(node, h, h1, a2ref, a3ref, a4ref)
	if err != nil {
		return nil, err
	}

	// Step 3: recurse on B (line 10). Its partitioning is metadata only
	// (Section 5.2): bRef slices are never materialized.
	bRef := hd.bRef
	bInput := &nodeInput{dir: node.dir + "/OUT", n: node.n - h, whole: &bRef}
	h2, err := st.computeLU(bInput)
	if err != nil {
		return nil, err
	}

	// Step 4: combine (lines 11-13). With separate files this is pure
	// metadata: the handle records children and band files; P = P1 ⊕ P2.
	out := &luHandle{
		n:  node.n,
		h:  h,
		h1: h1,
		h2: h2,
		l2: hd.l2,
		u2: hd.u2,
		p:  matrix.Augment(h1.p, h2.p),
	}
	if err := writePerm(st.fs, node.dir+"/p.bin", out.p); err != nil {
		return nil, err
	}
	if !st.opts.SeparateFiles {
		// Figure 7's unoptimized comparator: serially combine the factor
		// files on the master after every job.
		return st.combineLevel(node.dir, out)
	}
	return out, nil
}

// masterLU decomposes a leaf submatrix on the master node (Algorithm 2
// lines 2-3) and writes its l/u/p files.
func (st *pipelineState) masterLU(node *nodeInput) (*luHandle, error) {
	//mrlint:allow obsnames -- per-leaf trace spans carry the node directory; bounded by the recursion tree
	op := st.span.Child("master-lu:"+node.dir, obs.KindOp)
	defer op.Finish()
	op.SetAttr("order", int64(node.n))
	ref := node.leafRef()
	a, err := readAll(masterReader(st.fs), ref)
	if err != nil {
		return nil, fmt.Errorf("core: leaf %s: %w", node.dir, err)
	}
	f, err := lu.Decompose(a)
	if err != nil {
		if errors.Is(err, lu.ErrSingular) {
			// The block method pivots only inside diagonal blocks
			// (Section 4.2): a singular leaf does not necessarily mean a
			// singular input. Surface a typed error so callers can fall
			// back to a fully pivoted inverter.
			return nil, fmt.Errorf("core: leaf %s of order %d: %w", node.dir, node.n, ErrSingularBlock)
		}
		return nil, fmt.Errorf("core: leaf %s: %w", node.dir, err)
	}
	st.masterDecompositions++
	return st.writeLeaf(node.dir, f.L(), f.U(), f.P)
}

// writeLeaf stores explicit L and U factors (and P) as single files and
// returns a leaf handle. U is stored transposed under the Section 6.3
// optimization.
func (st *pipelineState) writeLeaf(dir string, l, u *matrix.Dense, p matrix.Perm) (*luHandle, error) {
	n := l.Rows
	hd := &luHandle{n: n, leaf: true, p: p}
	hd.lFile = blockFile{Path: dir + "/l.bin", R0: 0, R1: n, C0: 0, C1: n}
	if err := st.fs.WriteMatrix(hd.lFile.Path, l); err != nil {
		return nil, err
	}
	hd.uFile = blockFile{Path: dir + "/u.bin", R0: 0, R1: n, C0: 0, C1: n, Transposed: st.opts.TransposeU}
	stored := u
	if st.opts.TransposeU {
		stored = u.Transpose()
	}
	if err := st.fs.WriteMatrix(hd.uFile.Path, stored); err != nil {
		return nil, err
	}
	if err := writePerm(st.fs, dir+"/p.bin", p); err != nil {
		return nil, err
	}
	return hd, nil
}

// combineLevel reads the full L and U of a freshly computed level and
// rewrites them as single files — the serial master-side work the
// Section 6.1 optimization eliminates.
func (st *pipelineState) combineLevel(dir string, hd *luHandle) (*luHandle, error) {
	//mrlint:allow obsnames -- per-level trace spans carry the level directory; bounded by the recursion depth
	op := st.span.Child("combine:"+dir, obs.KindOp)
	defer op.Finish()
	rd := masterReader(st.fs)
	l, err := hd.readL(rd)
	if err != nil {
		return nil, err
	}
	u, err := hd.readU(rd)
	if err != nil {
		return nil, err
	}
	st.masterCombines++
	return st.writeLeaf(dir, l, u, hd.p)
}

// levelResult carries what one LU-level job produced.
type levelResult struct {
	l2   matRef
	u2   matRef
	bRef matRef
}

// runLevelJob executes the MapReduce job of one internal node: mappers
// j < m0/2 compute L2' row bands, mappers j >= m0/2 compute U2 column
// bands, and reducer j computes block j of B = A4 - L2'U2 (Figure 5).
func (st *pipelineState) runLevelJob(node *nodeInput, h int, h1 *luHandle, a2ref, a3ref, a4ref matRef) (*levelResult, error) {
	m0 := st.opts.Nodes
	mhalf := m0 / 2
	nbot := node.n - h
	dir := node.dir
	opts := st.opts
	if pl := planMultiply(opts, nbot, h, nbot); pl.rho >= 2 {
		// A multi-round strategy routes the B = A4 - L2'U2 product through
		// the communication-optimal runner instead of the single job.
		return st.runLevelJobMulti(node, h, h1, a2ref, a3ref, a4ref, pl)
	}

	// Band layout is deterministic, so the master can precompute the
	// references the reducers and the next recursion level will read.
	res := &levelResult{
		l2: matRef{Rows: nbot, Cols: h},
		u2: matRef{Rows: h, Cols: nbot},
	}
	for j := 0; j < mhalf; j++ {
		if lo, hi := bandBounds(nbot, mhalf, j); lo != hi {
			res.l2.Blocks = append(res.l2.Blocks, blockFile{
				Path: fmt.Sprintf("%s/L2/L.%d", dir, j), R0: lo, R1: hi, C0: 0, C1: h,
			})
		}
		if lo, hi := bandBounds(nbot, mhalf, j); lo != hi {
			res.u2.Blocks = append(res.u2.Blocks, blockFile{
				Path: fmt.Sprintf("%s/U2/U.%d", dir, j), R0: 0, R1: h, C0: lo, C1: hi,
				Transposed: opts.TransposeU,
			})
		}
	}
	f1, f2 := FactorPair(m0)
	if !opts.BlockWrap {
		f1, f2 = m0, 1
	}
	res.bRef = matRef{Rows: nbot, Cols: nbot}
	for r := 0; r < m0; r++ {
		rg, cg := r/f2, r%f2
		rlo, rhi := bandBounds(nbot, f1, rg)
		clo, chi := bandBounds(nbot, f2, cg)
		if rlo == rhi || clo == chi {
			continue
		}
		res.bRef.Blocks = append(res.bRef.Blocks, blockFile{
			Path: fmt.Sprintf("%s/OUT/A.%d", dir, r), R0: rlo, R1: rhi, C0: clo, C1: chi,
		})
	}

	job := &mapreduce.Job{
		Name:      "lu:" + dir,
		Splits:    mapreduce.ControlSplits(m0),
		NumReduce: m0,
		Priority:  st.opts.Priority,
		Partition: func(key string, n int) int {
			var v int
			fmt.Sscanf(key, "%d", &v)
			return v % n
		},
		Map: func(ctx *mapreduce.TaskContext, split mapreduce.InputSplit, emit mapreduce.Emitter) error {
			j := split.ID
			rd := nodeReader{fs: ctx.FS, node: ctx.Node}
			if j < mhalf {
				if err := computeL2Band(rd, st, dir, j, mhalf, nbot, h1, a3ref); err != nil {
					return err
				}
				if lo, hi := bandBounds(nbot, mhalf, j); hi > lo {
					ctx.IncrCounter("l2.elements", int64(hi-lo)*int64(h))
				}
			} else {
				if err := computeU2Band(rd, st, dir, j-mhalf, mhalf, nbot, h1, a2ref); err != nil {
					return err
				}
				if lo, hi := bandBounds(nbot, mhalf, j-mhalf); hi > lo {
					ctx.IncrCounter("u2.elements", int64(hi-lo)*int64(h))
				}
			}
			emit.Emit(fmt.Sprintf("%d", j), nil)
			return nil
		},
		Reduce: func(ctx *mapreduce.TaskContext, key string, values [][]byte, emit mapreduce.Emitter) error {
			var r int
			if _, err := fmt.Sscanf(key, "%d", &r); err != nil {
				return err
			}
			if err := computeBBlock(nodeReader{fs: ctx.FS, node: ctx.Node}, st, dir, r, f1, f2, nbot, a4ref, res); err != nil {
				return err
			}
			rg, cg := r/f2, r%f2
			rlo, rhi := bandBounds(nbot, f1, rg)
			clo, chi := bandBounds(nbot, f2, cg)
			if rhi > rlo && chi > clo {
				ctx.IncrCounter("b.elements", int64(rhi-rlo)*int64(chi-clo))
			}
			return nil
		},
	}
	job.TraceParent = st.span
	jr, err := st.cluster.RunCtx(st.runCtx(), job)
	if err != nil {
		return nil, err
	}
	st.recordJob(jr)
	return res, nil
}

// runLevelJobMulti executes one internal node's level with a multi-round
// multiply strategy: the mappers of the first round solve the L2' / U2
// fine bands exactly as runLevelJob's do, but store them as fine band x
// inner-segment slices placed on their reader nodes, and the runner's
// rounds compute B = A4 - L2'U2 block by block on the plan's g1 x g2
// output grid.
func (st *pipelineState) runLevelJobMulti(node *nodeInput, h int, h1 *luHandle, a2ref, a3ref, a4ref matRef, pl mulPlan) (*levelResult, error) {
	m0 := st.opts.Nodes
	mhalf := m0 / 2
	nbot := node.n - h
	dir := node.dir

	geom := mulGeom{
		plan: pl, m0: m0,
		rows: nbot, inner: h, cols: nbot,
		root:    dir + "/OUT",
		durable: st.cluster.Faults != nil,
	}

	// The factor pieces tile L2' and U2 as fine band x segment slices, so
	// the next recursion level's region reads and the final inversion see
	// complete references; U2 slices are always stored transposed so the
	// accumulation rounds use the Equation 8 row-dot kernel.
	res := &levelResult{
		l2: matRef{Rows: nbot, Cols: h},
		u2: matRef{Rows: h, Cols: nbot},
	}
	for b := 0; b < mhalf; b++ {
		lo, hi := bandBounds(nbot, mhalf, b)
		if lo == hi {
			continue
		}
		for s := 0; s < pl.rho; s++ {
			klo, khi := geom.seg(s)
			if klo == khi {
				continue
			}
			res.l2.Blocks = append(res.l2.Blocks, blockFile{
				Path: fmt.Sprintf("%s/L2/L.%d.%d", dir, b, s), R0: lo, R1: hi, C0: klo, C1: khi,
			})
			res.u2.Blocks = append(res.u2.Blocks, blockFile{
				Path: fmt.Sprintf("%s/U2/U.%d.%d", dir, b, s), R0: klo, R1: khi, C0: lo, C1: hi,
				Transposed: true,
			})
		}
	}
	res.bRef = matRef{Rows: nbot, Cols: nbot}
	for i := 0; i < pl.g1; i++ {
		rlo, rhi := geom.rowBand(i)
		if rlo == rhi {
			continue
		}
		for j := 0; j < pl.g2; j++ {
			clo, chi := geom.colBand(j)
			if clo == chi {
				continue
			}
			res.bRef.Blocks = append(res.bRef.Blocks, blockFile{
				Path: fmt.Sprintf("%s/OUT/A.%d", dir, i*pl.g2+j), R0: rlo, R1: rhi, C0: clo, C1: chi,
			})
		}
	}

	// l2Readers / u2Readers list the nodes reading one fine piece: the
	// owners of every coarse output band overlapping it (fine bands need
	// not nest inside coarse bands when mhalf is not a multiple of g1).
	l2Readers := func(lo, hi, s int) []int {
		var nodes []int
		seen := make(map[int]bool)
		for i := 0; i < pl.g1; i++ {
			rlo, rhi := geom.rowBand(i)
			if rhi <= lo || rlo >= hi {
				continue
			}
			for _, nd := range geom.aPieceReaders(i, s) {
				if !seen[nd] {
					seen[nd] = true
					nodes = append(nodes, nd)
				}
			}
		}
		return nodes
	}
	u2Readers := func(lo, hi, s int) []int {
		var nodes []int
		seen := make(map[int]bool)
		for j := 0; j < pl.g2; j++ {
			clo, chi := geom.colBand(j)
			if chi <= lo || clo >= hi {
				continue
			}
			for _, nd := range geom.btPieceReaders(j, s) {
				if !seen[nd] {
					seen[nd] = true
					nodes = append(nodes, nd)
				}
			}
		}
		return nodes
	}
	// Pin each band solver onto the first reader of its segment-0 piece so
	// at least one slice per band is written locally.
	geom.mapPrefer = func(t int) []int {
		b, readers := t, l2Readers
		if t >= mhalf {
			b, readers = t-mhalf, u2Readers
		}
		if lo, hi := bandBounds(nbot, mhalf, b); lo != hi {
			if nodes := readers(lo, hi, 0); len(nodes) > 0 {
				return []int{nodes[0]}
			}
		}
		return []int{t % m0}
	}

	writePieces := func(ctx *mapreduce.TaskContext, t int) error {
		rd := nodeReader{fs: ctx.FS, node: ctx.Node}
		if t < mhalf {
			lo, hi := bandBounds(nbot, mhalf, t)
			if lo == hi {
				return nil
			}
			band, err := solveL2Band(rd, st, lo, hi, h1, a3ref)
			if err != nil {
				return fmt.Errorf("core: L2' mapper %d: %w", t, err)
			}
			for s := 0; s < pl.rho; s++ {
				klo, khi := geom.seg(s)
				if klo == khi {
					continue
				}
				if err := ctx.FS.WriteMatrixFrom(fmt.Sprintf("%s/L2/L.%d.%d", dir, t, s),
					band.Block(0, hi-lo, klo, khi), ctx.Node,
					geom.withBackup(l2Readers(lo, hi, s))); err != nil {
					return err
				}
			}
			ctx.IncrCounter("l2.elements", int64(hi-lo)*int64(h))
			return nil
		}
		b := t - mhalf
		lo, hi := bandBounds(nbot, mhalf, b)
		if lo == hi {
			return nil
		}
		band, err := solveU2Band(rd, st, lo, hi, h1, a2ref)
		if err != nil {
			return fmt.Errorf("core: U2 mapper %d: %w", b, err)
		}
		bandT := band.Transpose()
		for s := 0; s < pl.rho; s++ {
			klo, khi := geom.seg(s)
			if klo == khi {
				continue
			}
			if err := ctx.FS.WriteMatrixFrom(fmt.Sprintf("%s/U2/U.%d.%d", dir, b, s),
				bandT.Block(0, hi-lo, klo, khi), ctx.Node,
				geom.withBackup(u2Readers(lo, hi, s))); err != nil {
				return err
			}
		}
		ctx.IncrCounter("u2.elements", int64(hi-lo)*int64(h))
		return nil
	}
	readA := func(rd fsReader, i, s int) (*matrix.Dense, error) {
		rlo, rhi := geom.rowBand(i)
		klo, khi := geom.seg(s)
		return readRegion(rd, res.l2, rlo, rhi, klo, khi)
	}
	readBT := func(rd fsReader, j, s int) (*matrix.Dense, error) {
		clo, chi := geom.colBand(j)
		klo, khi := geom.seg(s)
		return readRegionTransposed(rd, res.u2, clo, chi, klo, khi)
	}
	finish := func(ctx *mapreduce.TaskContext, i, j int, blk *matrix.Dense) error {
		rlo, rhi := geom.rowBand(i)
		clo, chi := geom.colBand(j)
		rd := nodeReader{fs: ctx.FS, node: ctx.Node}
		a4blk, err := readRegion(rd, a4ref, rlo, rhi, clo, chi)
		if err != nil {
			return fmt.Errorf("core: reducer (%d,%d) A4: %w", i, j, err)
		}
		if err := matrix.SubInPlace(a4blk, blk); err != nil {
			return err
		}
		ctx.IncrCounter("b.elements", int64(a4blk.Rows)*int64(a4blk.Cols))
		return ctx.FS.WriteMatrix(fmt.Sprintf("%s/OUT/A.%d", dir, i*pl.g2+j), a4blk)
	}
	run := func(job *mapreduce.Job) error {
		job.Priority = st.opts.Priority
		job.TraceParent = st.span
		jr, err := st.cluster.RunCtx(st.runCtx(), job)
		if err != nil {
			return err
		}
		st.recordJob(jr)
		return nil
	}
	names := mulNames{first: "lu:" + dir, sum: "lu-sum:" + dir, round: "lu-round:" + dir}
	if err := runMulRounds(geom, names, run, writePieces, readA, readBT, finish); err != nil {
		return nil, err
	}
	return res, nil
}

// solveL2Band computes rows [lo, hi) of L2' from L2' U1 = A3
// (Equation 6, first line — a row-wise substitution against U1).
func solveL2Band(rd nodeReader, st *pipelineState, lo, hi int, h1 *luHandle, a3ref matRef) (*matrix.Dense, error) {
	a3band, err := readRegion(rd, a3ref, lo, hi, 0, a3ref.Cols)
	if err != nil {
		return nil, err
	}
	if st.opts.TransposeU {
		ut, err := h1.readUT(rd)
		if err != nil {
			return nil, err
		}
		return lu.SolveRowsUpperTrans(ut, a3band)
	}
	u1, err := h1.readU(rd)
	if err != nil {
		return nil, err
	}
	return lu.SolveRowsUpper(u1, a3band)
}

// computeL2Band solves fine band j of L2' and stores it as one file.
func computeL2Band(rd nodeReader, st *pipelineState, dir string, j, mhalf, nbot int, h1 *luHandle, a3ref matRef) error {
	lo, hi := bandBounds(nbot, mhalf, j)
	if lo == hi {
		return nil
	}
	band, err := solveL2Band(rd, st, lo, hi, h1, a3ref)
	if err != nil {
		return fmt.Errorf("core: L2' mapper %d: %w", j, err)
	}
	return st.fs.WriteMatrix(fmt.Sprintf("%s/L2/L.%d", dir, j), band)
}

// solveU2Band computes columns [lo, hi) of U2 from L1 U2 = P1 A2
// (Equation 6, second line — forward substitution with unit L1),
// returned in natural (untransposed) orientation.
func solveU2Band(rd nodeReader, st *pipelineState, lo, hi int, h1 *luHandle, a2ref matRef) (*matrix.Dense, error) {
	a2band, err := readRegion(rd, a2ref, 0, a2ref.Rows, lo, hi)
	if err != nil {
		return nil, err
	}
	l1, err := h1.readL(rd)
	if err != nil {
		return nil, err
	}
	return lu.ForwardSubstMatrix(l1, h1.p.ApplyRows(a2band), true)
}

// computeU2Band solves fine band j of U2 and stores it as one file,
// transposed under the Section 6.3 optimization.
func computeU2Band(rd nodeReader, st *pipelineState, dir string, j, mhalf, nbot int, h1 *luHandle, a2ref matRef) error {
	lo, hi := bandBounds(nbot, mhalf, j)
	if lo == hi {
		return nil
	}
	band, err := solveU2Band(rd, st, lo, hi, h1, a2ref)
	if err != nil {
		return fmt.Errorf("core: U2 mapper %d: %w", j, err)
	}
	if st.opts.TransposeU {
		band = band.Transpose()
	}
	return st.fs.WriteMatrix(fmt.Sprintf("%s/U2/U.%d", dir, j), band)
}

// computeBBlock computes one block-wrap block of B = A4 - L2'U2
// (Figure 5's reduce side) and writes it to OUT/A.<r>.
func computeBBlock(rd nodeReader, st *pipelineState, dir string, r, f1, f2, nbot int, a4ref matRef, res *levelResult) error {
	rg, cg := r/f2, r%f2
	rlo, rhi := bandBounds(nbot, f1, rg)
	clo, chi := bandBounds(nbot, f2, cg)
	if rlo == rhi || clo == chi {
		return nil
	}
	a4blk, err := readRegion(rd, a4ref, rlo, rhi, clo, chi)
	if err != nil {
		return fmt.Errorf("core: reducer %d A4: %w", r, err)
	}
	l2rows, err := readRegion(rd, res.l2, rlo, rhi, 0, res.l2.Cols)
	if err != nil {
		return fmt.Errorf("core: reducer %d L2': %w", r, err)
	}
	var prod *matrix.Dense
	if st.opts.TransposeU {
		// Read the needed U2 columns in transposed orientation and use the
		// Equation 8 row-dot kernel (Section 6.3).
		u2t, err := readRegionTransposed(rd, res.u2, clo, chi, 0, res.u2.Rows)
		if err != nil {
			return fmt.Errorf("core: reducer %d U2^T: %w", r, err)
		}
		prod, err = matrix.MulTransB(l2rows, u2t)
		if err != nil {
			return err
		}
	} else {
		u2cols, err := readRegion(rd, res.u2, 0, res.u2.Rows, clo, chi)
		if err != nil {
			return fmt.Errorf("core: reducer %d U2: %w", r, err)
		}
		// Unoptimized column-walk kernel (Equation 7).
		prod, err = matrix.MulNaiveColumnOrder(l2rows, u2cols)
		if err != nil {
			return err
		}
	}
	if err := matrix.SubInPlace(a4blk, prod); err != nil {
		return err
	}
	return st.fs.WriteMatrix(fmt.Sprintf("%s/OUT/A.%d", dir, r), a4blk)
}

// readRegionTransposed reads the region covering rows [clo, chi) and
// columns [klo, khi) of the transpose of a U2 reference whose files are
// stored transposed, without ever materializing the normal orientation.
// In the transposed frame rows index U2's columns and columns index U2's
// rows, so the multi-round segment reads pass the inner-dimension
// segment as [klo, khi).
func readRegionTransposed(rd fsReader, u2 matRef, clo, chi, klo, khi int) (*matrix.Dense, error) {
	// Build the transposed frame: file covering cols [C0, C1) of U2 holds
	// rows [C0, C1) of U2^T.
	t := matRef{Rows: u2.Cols, Cols: u2.Rows}
	for _, b := range u2.Blocks {
		if !b.Transposed {
			// Mixed orientation should not happen; fall back to the
			// normal path by transposing after read.
			normal, err := readRegion(rd, u2, klo, khi, clo, chi)
			if err != nil {
				return nil, err
			}
			return normal.Transpose(), nil
		}
		t.Blocks = append(t.Blocks, blockFile{Path: b.Path, R0: b.C0, R1: b.C1, C0: b.R0, C1: b.R1})
	}
	return readRegion(rd, t, clo, chi, klo, khi)
}

// readUT assembles U^T for a handle, used by the transposed solve kernel.
func (hd *luHandle) readUT(rd fsReader) (*matrix.Dense, error) {
	if hd.leaf && hd.uFile.Transposed {
		return rd.readMatrix(hd.uFile.Path)
	}
	u, err := hd.readU(rd)
	if err != nil {
		return nil, err
	}
	return u.Transpose(), nil
}
